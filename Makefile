# Convenience entry points; `make verify` is the PR gate (`make check` is the
# directed subset it subsumes).

DUNE ?= dune

.PHONY: all build test bench bench-sim bench-smt-scale bench-shootout examples check clean \
        serve-smoke verify verify-quick verify-baselines

all: build

build:
	$(DUNE) build

test:
	$(DUNE) runtest

bench:
	$(DUNE) exec bench/main.exe

# Simulation-kernel microbenchmark (flat vs boxed, trajectories, density).
# The env knobs shrink it to a smoke run for `make check`; unset them for
# real measurements (defaults: 16 qubits, 200 trials, 300 ms budget).
bench-sim:
	$(DUNE) build bench/main.exe
	FASTSC_SIM_QUBITS=$${FASTSC_SIM_QUBITS:-6} \
	FASTSC_SIM_BIG_QUBITS=$${FASTSC_SIM_BIG_QUBITS:-8} \
	FASTSC_SIM_CYCLES=$${FASTSC_SIM_CYCLES:-2} \
	FASTSC_SIM_TRIALS=$${FASTSC_SIM_TRIALS:-20} \
	FASTSC_SIM_TRAJ_QUBITS=$${FASTSC_SIM_TRAJ_QUBITS:-4} \
	FASTSC_SIM_DENSITY_QUBITS=$${FASTSC_SIM_DENSITY_QUBITS:-4} \
	FASTSC_SIM_BUDGET_MS=$${FASTSC_SIM_BUDGET_MS:-20} \
	$(DUNE) exec bench/main.exe -- sim > /dev/null

# SMT scaling smoke run: a tiny mesh sweep under FASTSC_JOBS=1 and 4 with
# every wall-clock field scrubbed — the two JSON files must be byte-identical
# (the decomposed solver's determinism contract, docs/DESIGN.md §10).  Unset
# the env knobs for real measurements (defaults: meshes 10/20/50, density 6%).
# Both legs run inside _build/smt_scale_smoke/ scratch directories, so any
# BENCH_smt_scale.json in the working tree is never touched — the earlier
# save/restore dance here left the file hidden behind a .keep suffix whenever
# the cmp failed and make aborted before the restore line.
bench-smt-scale:
	$(DUNE) build bench/main.exe
	rm -rf _build/smt_scale_smoke
	mkdir -p _build/smt_scale_smoke/jobs1 _build/smt_scale_smoke/jobs4
	cd _build/smt_scale_smoke/jobs1 && \
	FASTSC_SMT_SIZES=$${FASTSC_SMT_SIZES:-5,7} \
	FASTSC_SMT_MOMENTS=$${FASTSC_SMT_MOMENTS:-2} \
	FASTSC_SMT_DENSITY=$${FASTSC_SMT_DENSITY:-10} \
	FASTSC_SMT_SCRUB=1 FASTSC_JOBS=1 \
	$(CURDIR)/_build/default/bench/main.exe smt-scale > /dev/null
	cd _build/smt_scale_smoke/jobs4 && \
	FASTSC_SMT_SIZES=$${FASTSC_SMT_SIZES:-5,7} \
	FASTSC_SMT_MOMENTS=$${FASTSC_SMT_MOMENTS:-2} \
	FASTSC_SMT_DENSITY=$${FASTSC_SMT_DENSITY:-10} \
	FASTSC_SMT_SCRUB=1 FASTSC_JOBS=4 \
	$(CURDIR)/_build/default/bench/main.exe smt-scale > /dev/null
	cmp _build/smt_scale_smoke/jobs1/BENCH_smt_scale.json \
	    _build/smt_scale_smoke/jobs4/BENCH_smt_scale.json

# Cross-compiler shootout smoke run: a shrunken scheduler-zoo x topology-zoo
# sweep under FASTSC_JOBS=1 and 4 with wall-clock fields scrubbed — both the
# stdout tables and BENCH_shootout.json must be byte-identical across job
# counts (ISSUE 9 acceptance).  Unset the env knobs for the full surface
# (defaults: sizes 4/9/16, five benchmarks, five topologies).
bench-shootout:
	$(DUNE) build bench/main.exe
	rm -rf _build/shootout_smoke
	mkdir -p _build/shootout_smoke/jobs1 _build/shootout_smoke/jobs4
	cd _build/shootout_smoke/jobs1 && \
	FASTSC_SHOOTOUT_SIZES=$${FASTSC_SHOOTOUT_SIZES:-4,9} \
	FASTSC_SHOOTOUT_BENCHES=$${FASTSC_SHOOTOUT_BENCHES:-bv,qaoa,xeb} \
	FASTSC_SHOOTOUT_TOPOLOGIES=$${FASTSC_SHOOTOUT_TOPOLOGIES:-mesh,ring,heavy-hex} \
	FASTSC_SHOOTOUT_SCRUB=1 FASTSC_JOBS=1 \
	$(CURDIR)/_build/default/bench/main.exe shootout > stdout.txt 2> /dev/null
	cd _build/shootout_smoke/jobs4 && \
	FASTSC_SHOOTOUT_SIZES=$${FASTSC_SHOOTOUT_SIZES:-4,9} \
	FASTSC_SHOOTOUT_BENCHES=$${FASTSC_SHOOTOUT_BENCHES:-bv,qaoa,xeb} \
	FASTSC_SHOOTOUT_TOPOLOGIES=$${FASTSC_SHOOTOUT_TOPOLOGIES:-mesh,ring,heavy-hex} \
	FASTSC_SHOOTOUT_SCRUB=1 FASTSC_JOBS=4 \
	$(CURDIR)/_build/default/bench/main.exe shootout > stdout.txt 2> /dev/null
	cmp _build/shootout_smoke/jobs1/stdout.txt _build/shootout_smoke/jobs4/stdout.txt
	cmp _build/shootout_smoke/jobs1/BENCH_shootout.json \
	    _build/shootout_smoke/jobs4/BENCH_shootout.json
	grep -q "headline: mesh" _build/shootout_smoke/jobs1/stdout.txt

# Smoke-run every worked example (examples/*.ml are documentation that must
# keep compiling AND running); output is discarded, a non-zero exit fails.
examples:
	$(DUNE) build examples
	@for e in quickstart qaoa_maxcut xeb_calibration topology_explorer error_diagnosis; do \
	  echo "running examples/$$e"; \
	  ./_build/default/examples/$$e.exe > /dev/null || exit 1; \
	done

# Serve-daemon smoke test (DESIGN.md §12): a JSONL batch with an
# over-deadline request must come back fully answered (the budget-0 request
# as a structured greedy-tier response), byte-identically across FASTSC_JOBS
# 1 and 4; SIGTERM must drain and snapshot; a corrupt snapshot must be
# quarantined on reboot, never a crash.
serve-smoke:
	$(DUNE) build bin/fastsc.exe
	sh scripts/serve_smoke.sh

# The PR gate: full build (warnings are errors, see the root `dune` env
# stanza), then the whole test suite under both a serial and a parallel
# domain pool — the determinism contract says results must not depend on
# the job count, so both legs must pass — and the example programs.
check:
	$(DUNE) build @all
	FASTSC_JOBS=1 $(DUNE) runtest --force
	FASTSC_JOBS=4 $(DUNE) runtest --force
	$(MAKE) examples
	$(MAKE) bench-sim
	$(MAKE) bench-smt-scale
	$(MAKE) bench-shootout
	$(MAKE) serve-smoke

# The layered PR gate (docs/DESIGN.md §11): tier R sweeps the property
# suites over seeds x jobs x case counts, tier D runs the directed suites
# plus the seeded-fault sweep (every FASTSC_FAULT in the catalog must be
# caught by at least one of its suites), tier W replays the paper workloads
# for any-jobs determinism and gates fresh benchmark runs against
# bench/baselines/*.json.  Writes verify_report.json.
verify:
	$(DUNE) build @all
	$(DUNE) exec bin/verify.exe

# Pre-commit subset: reduced tier R matrix + directed tier D; under 2 minutes.
verify-quick:
	$(DUNE) build @all
	$(DUNE) exec bin/verify.exe -- --quick
	$(MAKE) serve-smoke

# Re-record the perf-gate baselines (bench/baselines/*.json) from fresh
# pinned benchmark runs on this machine; commit the result.
verify-baselines:
	$(DUNE) build @all
	$(DUNE) exec bin/verify.exe -- --write-baselines

clean:
	$(DUNE) clean
