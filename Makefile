# Convenience entry points; `make check` is the PR gate.

DUNE ?= dune

.PHONY: all build test bench bench-sim bench-smt-scale examples check clean

all: build

build:
	$(DUNE) build

test:
	$(DUNE) runtest

bench:
	$(DUNE) exec bench/main.exe

# Simulation-kernel microbenchmark (flat vs boxed, trajectories, density).
# The env knobs shrink it to a smoke run for `make check`; unset them for
# real measurements (defaults: 16 qubits, 200 trials, 300 ms budget).
bench-sim:
	$(DUNE) build bench/main.exe
	FASTSC_SIM_QUBITS=$${FASTSC_SIM_QUBITS:-6} \
	FASTSC_SIM_TRIALS=$${FASTSC_SIM_TRIALS:-20} \
	FASTSC_SIM_DENSITY_QUBITS=$${FASTSC_SIM_DENSITY_QUBITS:-4} \
	FASTSC_SIM_BUDGET_MS=$${FASTSC_SIM_BUDGET_MS:-20} \
	$(DUNE) exec bench/main.exe -- sim > /dev/null

# SMT scaling smoke run: a tiny mesh sweep under FASTSC_JOBS=1 and 4 with
# every wall-clock field scrubbed — the two JSON files must be byte-identical
# (the decomposed solver's determinism contract, docs/DESIGN.md §10).  Unset
# the env knobs for real measurements (defaults: meshes 10/20/50, density 6%).
# The committed BENCH_smt_scale.json (full-scale run) is saved and restored
# around the smoke legs so `make check` never clobbers it.
bench-smt-scale:
	$(DUNE) build bench/main.exe
	@if [ -f BENCH_smt_scale.json ]; then mv BENCH_smt_scale.json BENCH_smt_scale.json.keep; fi
	FASTSC_SMT_SIZES=$${FASTSC_SMT_SIZES:-5,7} \
	FASTSC_SMT_MOMENTS=$${FASTSC_SMT_MOMENTS:-2} \
	FASTSC_SMT_DENSITY=$${FASTSC_SMT_DENSITY:-10} \
	FASTSC_SMT_SCRUB=1 FASTSC_JOBS=1 \
	$(DUNE) exec bench/main.exe -- smt-scale > /dev/null
	mv BENCH_smt_scale.json BENCH_smt_scale.jobs1.json
	FASTSC_SMT_SIZES=$${FASTSC_SMT_SIZES:-5,7} \
	FASTSC_SMT_MOMENTS=$${FASTSC_SMT_MOMENTS:-2} \
	FASTSC_SMT_DENSITY=$${FASTSC_SMT_DENSITY:-10} \
	FASTSC_SMT_SCRUB=1 FASTSC_JOBS=4 \
	$(DUNE) exec bench/main.exe -- smt-scale > /dev/null
	cmp BENCH_smt_scale.json BENCH_smt_scale.jobs1.json
	rm -f BENCH_smt_scale.json BENCH_smt_scale.jobs1.json
	@if [ -f BENCH_smt_scale.json.keep ]; then mv BENCH_smt_scale.json.keep BENCH_smt_scale.json; fi

# Smoke-run every worked example (examples/*.ml are documentation that must
# keep compiling AND running); output is discarded, a non-zero exit fails.
examples:
	$(DUNE) build examples
	@for e in quickstart qaoa_maxcut xeb_calibration topology_explorer error_diagnosis; do \
	  echo "running examples/$$e"; \
	  ./_build/default/examples/$$e.exe > /dev/null || exit 1; \
	done

# The PR gate: full build (warnings are errors, see the root `dune` env
# stanza), then the whole test suite under both a serial and a parallel
# domain pool — the determinism contract says results must not depend on
# the job count, so both legs must pass — and the example programs.
check:
	$(DUNE) build @all
	FASTSC_JOBS=1 $(DUNE) runtest --force
	FASTSC_JOBS=4 $(DUNE) runtest --force
	$(MAKE) examples
	$(MAKE) bench-sim
	$(MAKE) bench-smt-scale

clean:
	$(DUNE) clean
