# Convenience entry points; `make check` is the PR gate.

DUNE ?= dune

.PHONY: all build test bench check clean

all: build

build:
	$(DUNE) build

test:
	$(DUNE) runtest

bench:
	$(DUNE) exec bench/main.exe

# The PR gate: full build (warnings are errors, see the root `dune` env
# stanza), then the whole test suite under both a serial and a parallel
# domain pool — the determinism contract says results must not depend on
# the job count, so both legs must pass.
check:
	$(DUNE) build @all
	FASTSC_JOBS=1 $(DUNE) runtest --force
	FASTSC_JOBS=4 $(DUNE) runtest --force

clean:
	$(DUNE) clean
