# Convenience entry points; `make check` is the PR gate.

DUNE ?= dune

.PHONY: all build test bench bench-sim examples check clean

all: build

build:
	$(DUNE) build

test:
	$(DUNE) runtest

bench:
	$(DUNE) exec bench/main.exe

# Simulation-kernel microbenchmark (flat vs boxed, trajectories, density).
# The env knobs shrink it to a smoke run for `make check`; unset them for
# real measurements (defaults: 16 qubits, 200 trials, 300 ms budget).
bench-sim:
	$(DUNE) build bench/main.exe
	FASTSC_SIM_QUBITS=$${FASTSC_SIM_QUBITS:-6} \
	FASTSC_SIM_TRIALS=$${FASTSC_SIM_TRIALS:-20} \
	FASTSC_SIM_DENSITY_QUBITS=$${FASTSC_SIM_DENSITY_QUBITS:-4} \
	FASTSC_SIM_BUDGET_MS=$${FASTSC_SIM_BUDGET_MS:-20} \
	$(DUNE) exec bench/main.exe -- sim > /dev/null

# Smoke-run every worked example (examples/*.ml are documentation that must
# keep compiling AND running); output is discarded, a non-zero exit fails.
examples:
	$(DUNE) build examples
	@for e in quickstart qaoa_maxcut xeb_calibration topology_explorer error_diagnosis; do \
	  echo "running examples/$$e"; \
	  ./_build/default/examples/$$e.exe > /dev/null || exit 1; \
	done

# The PR gate: full build (warnings are errors, see the root `dune` env
# stanza), then the whole test suite under both a serial and a parallel
# domain pool — the determinism contract says results must not depend on
# the job count, so both legs must pass — and the example programs.
check:
	$(DUNE) build @all
	FASTSC_JOBS=1 $(DUNE) runtest --force
	FASTSC_JOBS=4 $(DUNE) runtest --force
	$(MAKE) examples
	$(MAKE) bench-sim

clean:
	$(DUNE) clean
