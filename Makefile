# Convenience entry points; `make check` is the PR gate.

DUNE ?= dune

.PHONY: all build test bench examples check clean

all: build

build:
	$(DUNE) build

test:
	$(DUNE) runtest

bench:
	$(DUNE) exec bench/main.exe

# Smoke-run every worked example (examples/*.ml are documentation that must
# keep compiling AND running); output is discarded, a non-zero exit fails.
examples:
	$(DUNE) build examples
	@for e in quickstart qaoa_maxcut xeb_calibration topology_explorer error_diagnosis; do \
	  echo "running examples/$$e"; \
	  ./_build/default/examples/$$e.exe > /dev/null || exit 1; \
	done

# The PR gate: full build (warnings are errors, see the root `dune` env
# stanza), then the whole test suite under both a serial and a parallel
# domain pool — the determinism contract says results must not depend on
# the job count, so both legs must pass — and the example programs.
check:
	$(DUNE) build @all
	FASTSC_JOBS=1 $(DUNE) runtest --force
	FASTSC_JOBS=4 $(DUNE) runtest --force
	$(MAKE) examples

clean:
	$(DUNE) clean
