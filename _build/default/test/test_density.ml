open Helpers

let test_initial_state () =
  let rho = Density.create 2 in
  check_float ~eps:1e-12 "trace" 1.0 (Density.trace rho);
  check_float ~eps:1e-12 "pure" 1.0 (Density.purity rho);
  check_float ~eps:1e-12 "in |00>" 1.0 (Density.population rho 0)

let test_matches_statevector_on_unitaries () =
  let rho = Density.create 3 in
  let sv = Statevector.create 3 in
  let gates = [ (Gate.H, [ 0 ]); (Gate.Cnot, [ 0; 1 ]); (Gate.T, [ 2 ]); (Gate.Iswap, [ 1; 2 ]) ] in
  List.iter
    (fun (g, qs) ->
      Density.apply_gate rho g qs;
      Statevector.apply sv g qs)
    gates;
  check_float ~eps:1e-9 "still pure" 1.0 (Density.purity rho);
  check_float ~eps:1e-9 "fidelity with the statevector" 1.0 (Density.fidelity_pure rho sv);
  (* populations agree *)
  Array.iteri
    (fun k p -> check_float ~eps:1e-9 "population" p (Density.population rho k))
    (Statevector.probabilities sv)

let test_of_statevector () =
  let sv = Statevector.create 2 in
  Statevector.apply sv Gate.H [ 0 ];
  let rho = Density.of_statevector sv in
  check_float ~eps:1e-12 "pure" 1.0 (Density.purity rho);
  check_float ~eps:1e-12 "p0" 0.5 (Density.population rho 0)

let test_amplitude_damping () =
  let rho = Density.create 1 in
  Density.apply_gate rho Gate.X [ 0 ];
  (* |1> decays toward |0> *)
  Density.apply_kraus1 rho (Density.amplitude_damping ~gamma:0.3) 0;
  check_float ~eps:1e-12 "trace preserved" 1.0 (Density.trace rho);
  check_float ~eps:1e-12 "decayed" 0.3 (Density.population rho 0);
  check_float ~eps:1e-12 "remaining" 0.7 (Density.population rho 1)

let test_phase_damping_kills_coherence () =
  let rho = Density.create 1 in
  Density.apply_gate rho Gate.H [ 0 ];
  let before = Density.purity rho in
  Density.apply_kraus1 rho (Density.phase_damping ~lambda:1.0) 0;
  check_float ~eps:1e-12 "populations untouched" 0.5 (Density.population rho 0);
  check_true "purity lost" (Density.purity rho < before -. 0.4);
  check_float ~eps:1e-9 "maximally mixed" 0.5 (Density.purity rho)

let test_thermal_relaxation_long_time () =
  let rho = Density.create 1 in
  Density.apply_gate rho Gate.X [ 0 ];
  Density.thermal_relaxation rho ~q:0 ~t1:100.0 ~t2:80.0 ~time:100_000.0;
  (* t >> T1: relaxed to the ground state *)
  check_float ~eps:1e-6 "ground state" 1.0 (Density.population rho 0);
  check_float ~eps:1e-6 "pure again" 1.0 (Density.purity rho)

let test_kraus_completeness_checked () =
  let rho = Density.create 1 in
  let bad = [ Matrix.scale_re 0.5 (Matrix.identity 2) ] in
  Alcotest.check_raises "incomplete"
    (Invalid_argument "Density.apply_kraus1: Kraus operators do not sum to identity")
    (fun () -> Density.apply_kraus1 rho bad 0)

let test_agrees_with_trajectory_average () =
  (* same lowered steps: the density matrix must match the trajectory
     average within sampling error *)
  let steps =
    [
      [ Noisy_sim.Unitary (Gate.H, [ 0 ]); Noisy_sim.Unitary (Gate.X, [ 1 ]) ];
      [
        Noisy_sim.Unitary (Gate.Cnot, [ 0; 1 ]);
        Noisy_sim.Pauli_noise { q = 0; p_x = 0.05; p_y = 0.02; p_z = 0.08 };
        Noisy_sim.Pauli_noise { q = 1; p_x = 0.03; p_y = 0.0; p_z = 0.1 };
      ];
      [ Noisy_sim.Partial_exchange { a = 0; b = 1; theta = 0.4 } ];
    ]
  in
  let ideal = Noisy_sim.ideal_of_steps ~n_qubits:2 steps in
  let exact = Density.fidelity_pure (Density.run_steps ~n_qubits:2 steps) ideal in
  let sampled =
    Noisy_sim.average_fidelity (Rng.create 11) ~n_qubits:2 ~ideal ~steps ~trials:4000
  in
  check_true "exact within sampling error of trajectories"
    (Float.abs (exact -. sampled) < 0.03)

let test_trace_preserved_through_everything () =
  let steps =
    [
      [ Noisy_sim.Unitary (Gate.H, [ 0 ]) ];
      [ Noisy_sim.Pauli_noise { q = 0; p_x = 0.2; p_y = 0.1; p_z = 0.15 } ];
      [ Noisy_sim.Partial_exchange { a = 0; b = 1; theta = 1.0 } ];
    ]
  in
  let rho = Density.run_steps ~n_qubits:2 steps in
  check_float ~eps:1e-9 "trace" 1.0 (Density.trace rho)

let test_unitary2_ordering_convention () =
  (* CNOT with control = first operand, matching Statevector *)
  let rho = Density.create 2 in
  Density.apply_gate rho Gate.X [ 1 ];
  Density.apply_gate rho Gate.Cnot [ 1; 0 ];
  check_float ~eps:1e-12 "controlled flip" 1.0 (Density.population rho 3)

let prop_purity_bounded =
  qcheck_case ~count:40 "purity stays in [1/2^n, 1]" QCheck.(int_range 1 10_000) (fun seed ->
      let rng = Rng.create seed in
      let rho = Density.create 2 in
      for _ = 1 to 6 do
        match Rng.int rng 3 with
        | 0 -> Density.apply_gate rho Gate.H [ Rng.int rng 2 ]
        | 1 ->
          Density.apply_kraus1 rho
            (Density.amplitude_damping ~gamma:(Rng.float rng *. 0.5))
            (Rng.int rng 2)
        | _ -> Density.apply_gate rho Gate.Cz [ 0; 1 ]
      done;
      let p = Density.purity rho in
      p <= 1.0 +. 1e-9 && p >= 0.25 -. 1e-9 && Float.abs (Density.trace rho -. 1.0) < 1e-9)

let suite =
  [
    Alcotest.test_case "initial state" `Quick test_initial_state;
    Alcotest.test_case "matches statevector" `Quick test_matches_statevector_on_unitaries;
    Alcotest.test_case "of statevector" `Quick test_of_statevector;
    Alcotest.test_case "amplitude damping" `Quick test_amplitude_damping;
    Alcotest.test_case "phase damping" `Quick test_phase_damping_kills_coherence;
    Alcotest.test_case "thermal relaxation" `Quick test_thermal_relaxation_long_time;
    Alcotest.test_case "kraus completeness" `Quick test_kraus_completeness_checked;
    Alcotest.test_case "agrees with trajectories" `Quick test_agrees_with_trajectory_average;
    Alcotest.test_case "trace preserved" `Quick test_trace_preserved_through_everything;
    Alcotest.test_case "operand convention" `Quick test_unitary2_ordering_convention;
    prop_purity_bounded;
  ]
