open Helpers
open Fastsc_device
open Fastsc_core

let device () = Device.create ~seed:2020 (Topology.grid 3 3)

let xeb device =
  let classes = Baseline_gmon.edge_classes device in
  Fastsc_benchmarks.Xeb.circuit (Rng.create 7) ~graph:(Device.graph device) ~classes
    ~cycles:3 ()

let test_valid_schedule () =
  let d = device () in
  let s = Compile.run Compile.Anneal_dynamic d (xeb d) in
  match Schedule.check s with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_deterministic () =
  let d = device () in
  let native = Compile.prepare Compile.default_options d (xeb d) in
  let a = Anneal_dynamic.run ~seed:5 d native in
  let b = Anneal_dynamic.run ~seed:5 d native in
  check_float "same result for same seed"
    (Schedule.evaluate a).Schedule.log10_success
    (Schedule.evaluate b).Schedule.log10_success

let test_max_parallelism () =
  (* the spectral strategy never serializes qubit-disjoint gates *)
  let d = device () in
  let circuit =
    Circuit.of_gates 9 [ (Gate.Iswap, [ 0; 1 ]); (Gate.Iswap, [ 2; 5 ]); (Gate.Iswap, [ 7; 8 ]) ]
  in
  let s = Compile.schedule_native Compile.default_options Compile.Anneal_dynamic d circuit in
  check_int "single step" 1 (Schedule.depth s)

let test_separates_colliding_gates () =
  (* two adjacent parallel gates: annealing must pull their frequencies apart *)
  let d = device () in
  let circuit = Circuit.of_gates 9 [ (Gate.Iswap, [ 0; 1 ]); (Gate.Iswap, [ 2; 5 ]) ] in
  let s = Compile.schedule_native Compile.default_options Compile.Anneal_dynamic d circuit in
  match s.Schedule.steps with
  | [ step ] ->
    let f01 = step.Schedule.freqs.(0) and f25 = step.Schedule.freqs.(2) in
    check_true "pulled apart" (Float.abs (f01 -. f25) > 0.05)
  | _ -> Alcotest.fail "expected one step"

let test_comparable_to_colordynamic () =
  let d = device () in
  let circuit = xeb d in
  let cd = Schedule.evaluate (Compile.run Compile.Color_dynamic d circuit) in
  let an = Schedule.evaluate (Compile.run Compile.Anneal_dynamic d circuit) in
  (* within one decade either way on this scale *)
  check_true "comparable quality"
    (Float.abs (cd.Schedule.log10_success -. an.Schedule.log10_success) < 1.0)

let suite =
  [
    Alcotest.test_case "valid schedule" `Quick test_valid_schedule;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "max parallelism" `Quick test_max_parallelism;
    Alcotest.test_case "separates colliding gates" `Quick test_separates_colliding_gates;
    Alcotest.test_case "comparable to colordynamic" `Quick test_comparable_to_colordynamic;
  ]
