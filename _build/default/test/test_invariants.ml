(* Cross-cutting properties every (device, circuit, algorithm) combination
   must satisfy — the compiler's contract, enforced over randomized
   inputs. *)
open Helpers
open Fastsc_device
open Fastsc_core

let random_topology rng =
  match Rng.int rng 5 with
  | 0 -> Topology.grid 3 3
  | 1 -> Topology.grid 2 4
  | 2 -> Topology.path 8
  | 3 -> Topology.express_1d 8 3
  | _ -> Topology.ring 8

let random_circuit rng n =
  let b = Circuit.builder n in
  for _ = 1 to 4 + Rng.int rng 18 do
    match Rng.int rng 6 with
    | 0 -> Circuit.add b Gate.H [ Rng.int rng n ]
    | 1 -> Circuit.add b (Gate.Rz (Rng.float rng)) [ Rng.int rng n ]
    | 2 | 3 ->
      let a = Rng.int rng n in
      Circuit.add b Gate.Cnot [ a; (a + 1 + Rng.int rng (n - 1)) mod n ]
    | 4 ->
      let a = Rng.int rng n in
      Circuit.add b Gate.Cz [ a; (a + 1 + Rng.int rng (n - 1)) mod n ]
    | _ ->
      let a = Rng.int rng n in
      Circuit.add b Gate.Swap [ a; (a + 1 + Rng.int rng (n - 1)) mod n ]
  done;
  Circuit.finish b

let scenario seed =
  let rng = Rng.create seed in
  let topology = random_topology rng in
  let device = Device.create ~seed:(Rng.int rng 100_000) topology in
  let circuit = random_circuit rng (Device.n_qubits device) in
  let algorithm =
    List.nth Compile.extended_algorithms
      (Rng.int rng (List.length Compile.extended_algorithms))
  in
  (device, circuit, algorithm)

let prop name f = qcheck_case ~count:40 name QCheck.(int_range 1 1_000_000) f

let prop_schedule_always_checks =
  prop "every schedule passes Schedule.check" (fun seed ->
      let device, circuit, algorithm = scenario seed in
      Result.is_ok (Schedule.check (Compile.run algorithm device circuit)))

let prop_gate_count_preserved =
  prop "scheduling never loses or duplicates gates" (fun seed ->
      let device, circuit, algorithm = scenario seed in
      let native = Compile.prepare Compile.default_options device circuit in
      let schedule = Compile.schedule_native Compile.default_options algorithm device native in
      Schedule.n_gates schedule = Circuit.length native)

let prop_metrics_well_formed =
  prop "metrics stay in range" (fun seed ->
      let device, circuit, algorithm = scenario seed in
      let m = Schedule.evaluate (Compile.run algorithm device circuit) in
      m.Schedule.success >= 0.0
      && m.Schedule.success <= 1.0
      && m.Schedule.gate_error >= 0.0
      && m.Schedule.gate_error <= 1.0
      && m.Schedule.crosstalk_error >= 0.0
      && m.Schedule.crosstalk_error <= 1.0
      && m.Schedule.decoherence_error >= 0.0
      && m.Schedule.decoherence_error <= 1.0
      && m.Schedule.total_time >= 0.0)

let prop_no_frequency_in_exclusion =
  prop "no operating frequency inside the exclusion band" (fun seed ->
      let device, circuit, algorithm = scenario seed in
      let schedule = Compile.run algorithm device circuit in
      let p = Device.partition device in
      List.for_all
        (fun step ->
          Array.for_all
            (fun f ->
              not
                (f > p.Partition.exclusion_lo +. 1e-9
                && f < p.Partition.exclusion_hi -. 1e-9
                (* CZ partners sit |alpha| below their color, still above
                   the exclusion band thanks to the reserved margin *)
                ))
            step.Schedule.freqs)
        schedule.Schedule.steps)

let prop_idle_qubits_parked =
  prop "non-interacting qubits hold their idle frequency" (fun seed ->
      let device, circuit, algorithm = scenario seed in
      let schedule = Compile.run algorithm device circuit in
      List.for_all
        (fun step ->
          let active = Array.make (Device.n_qubits device) false in
          List.iter
            (fun (a, b) ->
              active.(a) <- true;
              active.(b) <- true)
            step.Schedule.interacting;
          Array.for_all Fun.id
            (Array.mapi
               (fun q f ->
                 active.(q) || Float.abs (f -. schedule.Schedule.idle_freqs.(q)) < 1e-9)
               step.Schedule.freqs))
        schedule.Schedule.steps)

let prop_semantics_preserved_small =
  qcheck_case ~count:15 "scheduled gate order is execution-equivalent"
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let device = Device.create ~seed:(Rng.int rng 100_000) (Topology.grid 2 2) in
      let circuit = random_circuit rng 4 in
      let native = Compile.prepare Compile.default_options device circuit in
      let algorithm =
        List.nth Compile.all_algorithms (Rng.int rng (List.length Compile.all_algorithms))
      in
      let schedule = Compile.schedule_native Compile.default_options algorithm device native in
      (* flatten the schedule back to a circuit: it must act as the same
         unitary as the native circuit (scheduling only reorders commuting
         gates) *)
      let flattened =
        Circuit.of_gates 4
          (List.concat_map
             (fun step ->
               List.map
                 (fun app -> (app.Gate.gate, Array.to_list app.Gate.qubits))
                 step.Schedule.gates)
             schedule.Schedule.steps)
      in
      Unitary.equivalent native flattened)

let prop_waveforms_always_check =
  prop "pulse lowering always validates" (fun seed ->
      let device, circuit, algorithm = scenario seed in
      let schedule = Compile.run algorithm device circuit in
      Result.is_ok (Control.check schedule (Control.lower schedule)))

let prop_export_well_formed =
  prop "JSON export is structurally sound" (fun seed ->
      let device, circuit, algorithm = scenario seed in
      let schedule = Compile.run algorithm device circuit in
      let text = Export.to_string (Export.bundle ~include_waveforms:false schedule) in
      (* balanced structure check borrowed from the json tests *)
      let depth = ref 0 and in_string = ref false and escaped = ref false and ok = ref true in
      String.iter
        (fun c ->
          if !in_string then begin
            if !escaped then escaped := false
            else if c = '\\' then escaped := true
            else if c = '"' then in_string := false
          end
          else
            match c with
            | '"' -> in_string := true
            | '{' | '[' -> incr depth
            | '}' | ']' ->
              decr depth;
              if !depth < 0 then ok := false
            | _ -> ())
        text;
      !ok && !depth = 0)

let suite =
  [
    prop_schedule_always_checks;
    prop_gate_count_preserved;
    prop_metrics_well_formed;
    prop_no_frequency_in_exclusion;
    prop_idle_qubits_parked;
    prop_semantics_preserved_small;
    prop_waveforms_always_check;
    prop_export_well_formed;
  ]
