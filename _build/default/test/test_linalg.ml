open Helpers

let c = Complex_ext.make

let test_complex_helpers () =
  check_true "i^2 = -1" (Complex_ext.approx_equal (Complex.mul Complex_ext.i Complex_ext.i) (c (-1.0) 0.0));
  check_true "exp_i pi = -1" (Complex_ext.approx_equal (Complex_ext.exp_i Float.pi) (c (-1.0) 0.0));
  check_float "norm2" 25.0 (Complex_ext.norm2 (c 3.0 4.0));
  check_true "scale" (Complex_ext.approx_equal (Complex_ext.scale 2.0 (c 1.0 (-1.0))) (c 2.0 (-2.0)))

let test_matrix_construction () =
  let m = Matrix.of_real_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  check_int "rows" 2 (Matrix.rows m);
  check_true "entry" (Complex_ext.approx_equal (Matrix.get m 1 0) (c 3.0 0.0));
  Alcotest.check_raises "ragged" (Invalid_argument "Matrix.of_arrays: ragged rows")
    (fun () ->
      ignore (Matrix.of_arrays [| [| Complex.one |]; [| Complex.one; Complex.one |] |]))

let test_identity_mul () =
  let m = Matrix.of_real_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  check_true "I * m = m" (Matrix.approx_equal (Matrix.mul (Matrix.identity 2) m) m);
  check_true "m * I = m" (Matrix.approx_equal (Matrix.mul m (Matrix.identity 2)) m)

let test_mul_known () =
  let a = Matrix.of_real_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = Matrix.of_real_arrays [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  let expected = Matrix.of_real_arrays [| [| 19.0; 22.0 |]; [| 43.0; 50.0 |] |] in
  check_true "product" (Matrix.approx_equal (Matrix.mul a b) expected)

let test_adjoint () =
  let m = Matrix.of_arrays [| [| c 1.0 1.0; c 0.0 2.0 |]; [| c 3.0 0.0; c 0.0 (-1.0) |] |] in
  let adj = Matrix.adjoint m in
  check_true "conj transpose" (Complex_ext.approx_equal (Matrix.get adj 0 1) (c 3.0 0.0));
  check_true "conj" (Complex_ext.approx_equal (Matrix.get adj 1 0) (c 0.0 (-2.0)))

let test_kron () =
  let x = Matrix.of_real_arrays [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let i2 = Matrix.identity 2 in
  let xi = Matrix.kron x i2 in
  check_int "dim" 4 (Matrix.rows xi);
  (* X (x) I applied to |00> = |10> : column 0 has a 1 at row 2 *)
  check_true "block structure" (Complex_ext.approx_equal (Matrix.get xi 2 0) Complex.one);
  check_true "zero elsewhere" (Complex_ext.approx_equal (Matrix.get xi 1 0) Complex.zero)

let test_mat_vec () =
  let m = Matrix.of_real_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let v = [| c 1.0 0.0; c 1.0 0.0 |] in
  let out = Matrix.mat_vec m v in
  check_true "row sums" (Complex_ext.approx_equal out.(0) (c 3.0 0.0));
  check_true "row sums" (Complex_ext.approx_equal out.(1) (c 7.0 0.0))

let test_trace_norm () =
  let m = Matrix.of_real_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  check_true "trace" (Complex_ext.approx_equal (Matrix.trace m) (c 5.0 0.0));
  check_float ~eps:1e-9 "frobenius" (sqrt 30.0) (Matrix.frobenius_norm m)

let test_hermitian_unitary_predicates () =
  let h = Matrix.of_arrays [| [| c 1.0 0.0; c 0.0 1.0 |]; [| c 0.0 (-1.0); c 2.0 0.0 |] |] in
  check_true "hermitian" (Matrix.is_hermitian h);
  check_true "not unitary" (not (Matrix.is_unitary h));
  let had =
    Matrix.scale_re (1.0 /. sqrt 2.0) (Matrix.of_real_arrays [| [| 1.0; 1.0 |]; [| 1.0; -1.0 |] |])
  in
  check_true "hadamard unitary" (Matrix.is_unitary had)

let test_jacobi_2x2 () =
  let values, vectors = Eig.jacobi_symmetric [| [| 2.0; 1.0 |]; [| 1.0; 2.0 |] |] in
  check_float ~eps:1e-10 "lambda0" 1.0 values.(0);
  check_float ~eps:1e-10 "lambda1" 3.0 values.(1);
  (* eigenvector for 1 is (1,-1)/sqrt2 up to sign *)
  let v0 = vectors.(0) in
  check_float ~eps:1e-9 "orthonormal" 1.0 ((v0.(0) *. v0.(0)) +. (v0.(1) *. v0.(1)));
  check_float ~eps:1e-9 "direction" 0.0 (v0.(0) +. v0.(1))

let test_jacobi_diagonal () =
  let values, _ = Eig.jacobi_symmetric [| [| 3.0; 0.0 |]; [| 0.0; -1.0 |] |] in
  check_float "sorted ascending" (-1.0) values.(0);
  check_float "second" 3.0 values.(1)

let test_eigh_reconstruction () =
  let h =
    Matrix.of_arrays
      [|
        [| c 2.0 0.0; c 0.0 1.0; c 0.5 0.0 |];
        [| c 0.0 (-1.0); c 1.0 0.0; c 0.0 0.3 |];
        [| c 0.5 0.0; c 0.0 (-0.3); c (-1.0) 0.0 |];
      |]
  in
  let values, vectors = Eig.eigh h in
  (* H v_k = lambda_k v_k for every k *)
  for k = 0 to 2 do
    let vk = Array.init 3 (fun r -> Matrix.get vectors r k) in
    let hv = Matrix.mat_vec h vk in
    for r = 0 to 2 do
      check_true "eigen equation"
        (Complex_ext.approx_equal ~tol:1e-7 hv.(r) (Complex_ext.scale values.(k) vk.(r)))
    done
  done;
  check_true "ascending" (values.(0) <= values.(1) && values.(1) <= values.(2))

let test_eigh_requires_hermitian () =
  let m = Matrix.of_real_arrays [| [| 0.0; 1.0 |]; [| 0.0; 0.0 |] |] in
  Alcotest.check_raises "non-hermitian" (Invalid_argument "Eig.eigh: matrix is not Hermitian")
    (fun () -> ignore (Eig.eigh m))

let test_expm_hermitian_unitary () =
  let h = Matrix.of_arrays [| [| c 1.0 0.0; c 0.3 0.2 |]; [| c 0.3 (-0.2); c (-0.5) 0.0 |] |] in
  let u = Eig.expm_hermitian h 0.7 in
  check_true "unitary" (Matrix.is_unitary ~tol:1e-8 u)

let test_expm_pauli_x () =
  (* exp(-i X t) = cos t I - i sin t X *)
  let x = Matrix.of_real_arrays [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let t = 0.4 in
  let u = Eig.expm_hermitian x t in
  let expected =
    Matrix.of_arrays
      [| [| c (cos t) 0.0; c 0.0 (-.sin t) |]; [| c 0.0 (-.sin t); c (cos t) 0.0 |] |]
  in
  check_true "matches closed form" (Matrix.approx_equal ~tol:1e-8 u expected)

let random_matrix rng n =
  Matrix.init n n (fun _ _ -> Complex_ext.make (Rng.gaussian rng) (Rng.gaussian rng))

let prop_kron_mixed_product =
  (* (A (x) B)(C (x) D) = AC (x) BD *)
  qcheck_case ~count:30 "kronecker mixed-product identity" QCheck.(int_range 1 5000) (fun seed ->
      let rng = Rng.create seed in
      let a = random_matrix rng 2 and b = random_matrix rng 2 in
      let cm = random_matrix rng 2 and d = random_matrix rng 2 in
      Matrix.approx_equal ~tol:1e-9
        (Matrix.mul (Matrix.kron a b) (Matrix.kron cm d))
        (Matrix.kron (Matrix.mul a cm) (Matrix.mul b d)))

let prop_adjoint_antihomomorphism =
  (* (AB)† = B† A† *)
  qcheck_case ~count:30 "adjoint reverses products" QCheck.(int_range 1 5000) (fun seed ->
      let rng = Rng.create seed in
      let a = random_matrix rng 3 and b = random_matrix rng 3 in
      Matrix.approx_equal ~tol:1e-9
        (Matrix.adjoint (Matrix.mul a b))
        (Matrix.mul (Matrix.adjoint b) (Matrix.adjoint a)))

let prop_eigh_trace_preserved =
  (* sum of eigenvalues = trace for Hermitian matrices *)
  qcheck_case ~count:25 "eigenvalues sum to the trace" QCheck.(int_range 1 5000) (fun seed ->
      let rng = Rng.create seed in
      let raw = random_matrix rng 4 in
      let h = Matrix.scale_re 0.5 (Matrix.add raw (Matrix.adjoint raw)) in
      let values, _ = Eig.eigh h in
      let sum = Array.fold_left ( +. ) 0.0 values in
      Float.abs (sum -. (Matrix.trace h).Complex.re) < 1e-6)

let prop_expm_preserves_norm =
  qcheck_case "evolution preserves vector norm" QCheck.(float_range 0.0 5.0) (fun t ->
      let h =
        Matrix.of_arrays [| [| c 2.0 0.0; c 0.1 0.4 |]; [| c 0.1 (-0.4); c 1.0 0.0 |] |]
      in
      let u = Eig.expm_hermitian h t in
      let v = [| c 0.6 0.0; c 0.0 0.8 |] in
      let out = Matrix.mat_vec u v in
      let n = Array.fold_left (fun acc z -> acc +. Complex_ext.norm2 z) 0.0 out in
      Float.abs (n -. 1.0) < 1e-8)

let suite =
  [
    Alcotest.test_case "complex helpers" `Quick test_complex_helpers;
    Alcotest.test_case "matrix construction" `Quick test_matrix_construction;
    Alcotest.test_case "identity mul" `Quick test_identity_mul;
    Alcotest.test_case "mul known" `Quick test_mul_known;
    Alcotest.test_case "adjoint" `Quick test_adjoint;
    Alcotest.test_case "kron" `Quick test_kron;
    Alcotest.test_case "mat_vec" `Quick test_mat_vec;
    Alcotest.test_case "trace/norm" `Quick test_trace_norm;
    Alcotest.test_case "hermitian/unitary predicates" `Quick test_hermitian_unitary_predicates;
    Alcotest.test_case "jacobi 2x2" `Quick test_jacobi_2x2;
    Alcotest.test_case "jacobi diagonal" `Quick test_jacobi_diagonal;
    Alcotest.test_case "eigh reconstruction" `Quick test_eigh_reconstruction;
    Alcotest.test_case "eigh requires hermitian" `Quick test_eigh_requires_hermitian;
    Alcotest.test_case "expm unitary" `Quick test_expm_hermitian_unitary;
    Alcotest.test_case "expm pauli x" `Quick test_expm_pauli_x;
    prop_kron_mixed_product;
    prop_adjoint_antihomomorphism;
    prop_eigh_trace_preserved;
    prop_expm_preserves_norm;
  ]
