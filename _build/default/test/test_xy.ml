open Helpers
open Fastsc_device
open Fastsc_core

let test_xy_specializations () =
  check_true "xy(pi) = iswap"
    (equal_up_to_phase (Gate.unitary (Gate.Xy Float.pi)) (Gate.unitary Gate.Iswap));
  check_true "xy(pi/2) = sqrt_iswap"
    (equal_up_to_phase (Gate.unitary (Gate.Xy (Float.pi /. 2.0))) (Gate.unitary Gate.Sqrt_iswap));
  check_true "xy(0) = identity"
    (Matrix.approx_equal (Gate.unitary (Gate.Xy 0.0)) (Matrix.identity 4))

let test_xy_unitary_and_composition () =
  check_true "unitary" (Matrix.is_unitary (Gate.unitary (Gate.Xy 0.7)));
  let composed = Matrix.mul (Gate.unitary (Gate.Xy 0.4)) (Gate.unitary (Gate.Xy 0.3)) in
  check_true "angles add" (Matrix.approx_equal ~tol:1e-9 composed (Gate.unitary (Gate.Xy 0.7)))

let test_gate_time_scales_linearly () =
  let d = Device.create ~seed:1 (Topology.grid 2 2) in
  let tuning = (Device.params d).Device.flux_tuning_time in
  let hold theta = Device.gate_time d (Gate.Xy theta) -. tuning in
  check_float ~eps:1e-9 "xy(pi) holds like iswap"
    (Device.gate_time d Gate.Iswap -. tuning)
    (hold Float.pi);
  check_float ~eps:1e-9 "half angle, half hold" (hold Float.pi /. 2.0) (hold (Float.pi /. 2.0))

let test_optimizer_fuses_xy () =
  let c = Circuit.of_gates 2 [ (Gate.Xy 0.5, [ 0; 1 ]); (Gate.Xy 0.9, [ 1; 0 ]) ] in
  let o = Optimize.run c in
  check_int "fused" 1 (Circuit.length o);
  (match (Circuit.instructions o).(0).Gate.gate with
  | Gate.Xy t -> check_float ~eps:1e-12 "sum" 1.4 t
  | g -> Alcotest.failf "expected xy, got %s" (Gate.name g));
  check_true "semantics" (Unitary.equivalent c o);
  (* full 4pi turn cancels entirely *)
  let full =
    Circuit.of_gates 2
      [ (Gate.Xy (2.0 *. Float.pi), [ 0; 1 ]); (Gate.Xy (2.0 *. Float.pi), [ 0; 1 ]) ]
  in
  check_int "4pi cancels" 0 (Circuit.length (Optimize.run full));
  (* a 2pi turn is Z(x)Z, NOT identity: must not cancel *)
  let half =
    Circuit.of_gates 2 [ (Gate.Xy Float.pi, [ 0; 1 ]); (Gate.Xy Float.pi, [ 0; 1 ]) ] in
  let oh = Optimize.run half in
  check_true "2pi does not vanish" (Circuit.length oh >= 1);
  check_true "2pi semantics" (Unitary.equivalent half oh)

let test_qasm_roundtrip () =
  let c = Circuit.of_gates 2 [ (Gate.Xy 1.25, [ 0; 1 ]) ] in
  let c' = Qasm.of_string (Qasm.to_string c) in
  match (Circuit.instructions c').(0).Gate.gate with
  | Gate.Xy t -> check_float ~eps:1e-12 "angle survives" 1.25 t
  | g -> Alcotest.failf "expected xy, got %s" (Gate.name g)

let test_schedulable () =
  let d = Device.create ~seed:3 (Topology.grid 3 3) in
  let c =
    Circuit.of_gates 9
      [ (Gate.Xy 0.8, [ 0; 1 ]); (Gate.Xy (Float.pi /. 3.0), [ 7; 8 ]); (Gate.H, [ 4 ]) ]
  in
  List.iter
    (fun algorithm ->
      let s = Compile.run algorithm d c in
      match Schedule.check s with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s: %s" (Compile.algorithm_to_string algorithm) msg)
    Compile.extended_algorithms

let test_statevector_action () =
  (* |01> -> cos(t/2)|01> - i sin(t/2)|10> *)
  let theta = 0.9 in
  let s = Statevector.create 2 in
  Statevector.apply s Gate.X [ 0 ];
  Statevector.apply s (Gate.Xy theta) [ 1; 0 ];
  check_float ~eps:1e-12 "stay" (cos (theta /. 2.0) ** 2.0) (Statevector.probability s 1);
  check_float ~eps:1e-12 "transfer" (sin (theta /. 2.0) ** 2.0) (Statevector.probability s 2)

let prop_xy_transfer_matches_physics =
  qcheck_case "scheduled xy hold reproduces its angle in the Hamiltonian"
    QCheck.(float_range 0.6 3.0)
    (fun theta ->
      (* two resonant transmons held for the xy hold time transfer
         sin^2(theta/2), matching the gate's matrix *)
      let g = 0.007 in
      let spec =
        {
          Fastsc_physics.Multi_transmon.freqs = [| 6.0; 6.0 |];
          alphas = [| -0.2; -0.2 |];
          couplings = [ (0, 1, g) ];
        }
      in
      let hold = Float.abs theta /. Float.pi *. Fastsc_physics.Coupled_pair.iswap_time ~g in
      let p =
        Fastsc_physics.Multi_transmon.transfer_probability spec ~from_levels:[| 0; 1 |]
          ~to_levels:[| 1; 0 |] ~t:hold
      in
      Float.abs (p -. (sin (theta /. 2.0) ** 2.0)) < 1e-3)

let suite =
  [
    Alcotest.test_case "specializations" `Quick test_xy_specializations;
    Alcotest.test_case "unitary + composition" `Quick test_xy_unitary_and_composition;
    Alcotest.test_case "gate time" `Quick test_gate_time_scales_linearly;
    Alcotest.test_case "optimizer fusion" `Quick test_optimizer_fuses_xy;
    Alcotest.test_case "qasm roundtrip" `Quick test_qasm_roundtrip;
    Alcotest.test_case "schedulable" `Quick test_schedulable;
    Alcotest.test_case "statevector action" `Quick test_statevector_action;
    prop_xy_transfer_matches_physics;
  ]
