open Helpers
open Fastsc_device
open Fastsc_core

let schedule () =
  let device = Device.create ~seed:2020 (Topology.grid 3 3) in
  let circuit =
    Circuit.of_gates 9 [ (Gate.Iswap, [ 0; 1 ]); (Gate.Iswap, [ 2; 5 ]); (Gate.H, [ 4 ]) ]
  in
  Compile.schedule_native Compile.default_options Compile.Color_dynamic device circuit

let test_shape () =
  let s = schedule () in
  let text = Freq_chart.render s in
  let lines = String.split_on_char '\n' text in
  (* 9 qubit rows + legend *)
  check_int "rows" 10 (List.length lines);
  (* each qubit row has one cell per step *)
  let first = List.hd lines in
  check_int "cells per row" (4 + Schedule.depth s) (String.length first)

let test_semantics () =
  let s = schedule () in
  (* parked qubits are dots throughout *)
  let row8 = Freq_chart.row s 8 in
  String.iteri (fun i c -> if i >= 4 then check_true "parked is dot" (c = '.')) row8;
  (* active qubits carry a letter in some step *)
  let has_letter row =
    let found = ref false in
    String.iter (fun c -> if c >= 'A' && c <= 'Z' then found := true) row;
    !found
  in
  check_true "q0 active" (has_letter (Freq_chart.row s 0));
  check_true "q2 active" (has_letter (Freq_chart.row s 2));
  (* the two parallel gates sit on different letters (different colors) *)
  let letter_of row =
    let letter = ref ' ' in
    String.iter (fun c -> if c >= 'A' && c <= 'Z' then letter := c) row;
    !letter
  in
  check_true "distinct colors visible"
    (letter_of (Freq_chart.row s 0) <> letter_of (Freq_chart.row s 2));
  (* never an exclusion-band excursion *)
  String.iter (fun c -> check_true "no '!'" (c <> '!')) (Freq_chart.render s)

let test_out_of_range () =
  check_true "raises"
    (try
       ignore (Freq_chart.row (schedule ()) 99);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "shape" `Quick test_shape;
    Alcotest.test_case "semantics" `Quick test_semantics;
    Alcotest.test_case "out of range" `Quick test_out_of_range;
  ]
