open Helpers
open Fastsc_benchmarks

let test_bv_structure () =
  let c = Bv.circuit ~n:5 () in
  check_int "qubits" 5 (Circuit.n_qubits c);
  (* all-ones secret: one CNOT per data qubit *)
  check_int "cnots" 4 (Circuit.count (fun g -> g = Gate.Cnot) c);
  check_int "hadamards" 10 (Circuit.count (fun g -> g = Gate.H) c)

let test_bv_secret_weight () =
  let c = Bv.circuit ~secret:0b101 ~n:5 () in
  check_int "two cnots" 2 (Circuit.count (fun g -> g = Gate.Cnot) c)

let test_bv_ideal_outcome () =
  (* simulate: the algorithm recovers the secret deterministically *)
  let n = 4 and secret = 0b011 in
  let c = Bv.circuit ~secret ~n () in
  let state = Statevector.of_circuit c in
  let expected = Bv.expected_outcome ~secret ~n () in
  check_float ~eps:1e-9 "deterministic readout" 1.0 (Statevector.probability state expected)

let test_bv_validation () =
  Alcotest.check_raises "too small" (Invalid_argument "Bv.circuit: needs at least 2 qubits")
    (fun () -> ignore (Bv.circuit ~n:1 ()));
  Alcotest.check_raises "negative" (Invalid_argument "Bv.circuit: negative secret") (fun () ->
      ignore (Bv.circuit ~secret:(-1) ~n:3 ()))

let test_qaoa_structure () =
  let rng = Rng.create 9 in
  let g = Qaoa.problem_graph rng ~n:6 () in
  let c = Qaoa.circuit_of_graph (Rng.create 10) g in
  check_int "qubits" 6 (Circuit.n_qubits c);
  (* 2 CNOTs per edge *)
  check_int "cnot count" (2 * Graph.n_edges g) (Circuit.count (fun g -> g = Gate.Cnot) c);
  (* one mixer rotation per qubit per round plus initial H layer *)
  check_int "h count" 6 (Circuit.count (fun g -> g = Gate.H) c)

let test_qaoa_deterministic_per_seed () =
  let mk () = Qaoa.circuit (Rng.create 77) ~n:5 () in
  let a = mk () and b = mk () in
  check_int "same length" (Circuit.length a) (Circuit.length b)

let test_qaoa_rounds_scale () =
  let c1 = Qaoa.circuit (Rng.create 3) ~n:5 ~rounds:1 () in
  let c2 = Qaoa.circuit (Rng.create 3) ~n:5 ~rounds:3 () in
  check_true "more rounds, more gates" (Circuit.length c2 > Circuit.length c1)

let test_ising_structure () =
  let c = Ising.circuit ~n:5 () in
  check_int "qubits" 5 (Circuit.n_qubits c);
  (* 3 steps x 4 bonds x 2 cnots *)
  check_int "cnots" 24 (Circuit.count (fun g -> g = Gate.Cnot) c);
  (* only nearest-neighbour pairs *)
  List.iter
    (fun (a, b) -> check_int "chain pair" 1 (b - a))
    (Circuit.two_qubit_pairs c)

let test_ising_validation () =
  Alcotest.check_raises "steps" (Invalid_argument "Ising.circuit: needs at least 1 Trotter step")
    (fun () -> ignore (Ising.circuit ~steps:0 ~n:4 ()))

let test_qgan_structure () =
  let c = Qgan.circuit (Rng.create 4) ~n:4 () in
  check_int "qubits" 4 (Circuit.n_qubits c);
  (* default 2 layers: 2 * 3 ladder cnots *)
  check_int "cnots" 6 (Circuit.count (fun g -> g = Gate.Cnot) c);
  check_int "parameters" (Qgan.n_parameters ~n:4 ())
    (Circuit.count (function Gate.Ry _ | Gate.Rz _ -> true | _ -> false) c)

let test_xeb_structure () =
  let rng = Rng.create 12 in
  let topo = Topology.grid 3 3 in
  let classes =
    List.map
      (fun (e, c) ->
        (e, match c with Topology.A -> 0 | Topology.B -> 1 | Topology.C -> 2 | Topology.D -> 3))
      (Topology.grid_edge_classes 3 3)
  in
  let cycles = 8 in
  let c = Xeb.circuit rng ~graph:topo.Topology.graph ~classes ~cycles () in
  check_int "qubits" 9 (Circuit.n_qubits c);
  (* one single-qubit gate per qubit per cycle *)
  check_int "1q gates" (9 * cycles)
    (Circuit.count (fun g -> not (Gate.is_two_qubit g)) c);
  (* every two-qubit gate on a device coupling *)
  List.iter
    (fun (a, b) -> check_true "coupling" (Graph.mem_edge topo.Topology.graph a b))
    (Circuit.two_qubit_pairs c);
  (* 8 cycles cover each class twice: all 12 couplings were activated *)
  check_int "all couplings used" 12 (List.length (Circuit.two_qubit_pairs c))

let test_xeb_no_repeat_single_qubit () =
  let rng = Rng.create 5 in
  let topo = Topology.grid 2 2 in
  let classes =
    List.map
      (fun (e, c) ->
        (e, match c with Topology.A -> 0 | Topology.B -> 1 | Topology.C -> 2 | Topology.D -> 3))
      (Topology.grid_edge_classes 2 2)
  in
  let c = Xeb.circuit rng ~graph:topo.Topology.graph ~classes ~cycles:20 () in
  (* per qubit, consecutive single-qubit gates always differ *)
  let last = Array.make 4 Gate.I in
  Array.iter
    (fun app ->
      if not (Gate.is_two_qubit app.Gate.gate) then begin
        let q = app.Gate.qubits.(0) in
        check_true "no immediate repetition" (not (Gate.equal last.(q) app.Gate.gate));
        last.(q) <- app.Gate.gate
      end)
    (Circuit.instructions c)

let test_xeb_missing_class_rejected () =
  let topo = Topology.grid 2 2 in
  check_true "raises"
    (try
       ignore (Xeb.circuit (Rng.create 1) ~graph:topo.Topology.graph ~classes:[] ~cycles:1 ());
       false
     with Invalid_argument _ -> true)

let prop_generators_total =
  qcheck_case ~count:40 "generators never raise on valid sizes"
    QCheck.(pair (int_range 2 10) (int_range 1 200))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      ignore (Bv.circuit ~n ());
      ignore (Qaoa.circuit rng ~n ());
      ignore (Ising.circuit ~n ());
      ignore (Qgan.circuit rng ~n ());
      true)

let suite =
  [
    Alcotest.test_case "bv structure" `Quick test_bv_structure;
    Alcotest.test_case "bv secret weight" `Quick test_bv_secret_weight;
    Alcotest.test_case "bv ideal outcome" `Quick test_bv_ideal_outcome;
    Alcotest.test_case "bv validation" `Quick test_bv_validation;
    Alcotest.test_case "qaoa structure" `Quick test_qaoa_structure;
    Alcotest.test_case "qaoa deterministic" `Quick test_qaoa_deterministic_per_seed;
    Alcotest.test_case "qaoa rounds" `Quick test_qaoa_rounds_scale;
    Alcotest.test_case "ising structure" `Quick test_ising_structure;
    Alcotest.test_case "ising validation" `Quick test_ising_validation;
    Alcotest.test_case "qgan structure" `Quick test_qgan_structure;
    Alcotest.test_case "xeb structure" `Quick test_xeb_structure;
    Alcotest.test_case "xeb no repeat" `Quick test_xeb_no_repeat_single_qubit;
    Alcotest.test_case "xeb missing class" `Quick test_xeb_missing_class_rejected;
    prop_generators_total;
  ]
