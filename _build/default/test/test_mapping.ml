open Helpers

let grid3 = lazy (Topology.grid 3 3).Topology.graph

let test_adjacent_untouched () =
  let g = Lazy.force grid3 in
  let c = Circuit.of_gates 9 [ (Gate.Cz, [ 0; 1 ]); (Gate.H, [ 4 ]) ] in
  let r = Mapping.route g c in
  check_int "no swaps" 0 r.Mapping.n_swaps;
  check_int "same length" 2 (Circuit.length r.Mapping.circuit)

let test_distant_gate_inserts_swaps () =
  let g = Lazy.force grid3 in
  let c = Circuit.of_gates 9 [ (Gate.Cz, [ 0; 8 ]) ] in
  let r = Mapping.route g c in
  (* distance 4, so 3 swaps needed *)
  check_int "swaps" 3 r.Mapping.n_swaps;
  check_true "routed circuit valid" (Mapping.verify g r.Mapping.circuit)

let test_routing_preserves_semantics () =
  (* route on a path, then undo the permutation: states must match *)
  let line = (Topology.path 4).Topology.graph in
  let c =
    Circuit.of_gates 4 [ (Gate.H, [ 0 ]); (Gate.Cnot, [ 0; 3 ]); (Gate.Cnot, [ 1; 2 ]) ]
  in
  let r = Mapping.route line c in
  check_true "verified" (Mapping.verify line r.Mapping.circuit);
  (* simulate original on logical qubits *)
  let ideal = Statevector.of_circuit c in
  (* simulate routed, then read out through the final mapping *)
  let routed = Statevector.of_circuit r.Mapping.circuit in
  let ideal_probs = Statevector.probabilities ideal in
  let routed_probs = Statevector.probabilities routed in
  (* basis index remap: logical bit q lives at physical r.final.(q) *)
  let remap idx =
    let out = ref 0 in
    for q = 0 to 3 do
      if idx land (1 lsl q) <> 0 then out := !out lor (1 lsl r.Mapping.final.(q))
    done;
    !out
  in
  Array.iteri
    (fun idx p -> check_float ~eps:1e-9 "probabilities match" p routed_probs.(remap idx))
    ideal_probs

let test_verify_detects_bad_circuit () =
  let g = Lazy.force grid3 in
  let bad = Circuit.of_gates 9 [ (Gate.Cz, [ 0; 8 ]) ] in
  check_true "invalid" (not (Mapping.verify g bad))

let test_identity_placement () =
  let g = Lazy.force grid3 in
  let c = Circuit.of_gates 4 [ (Gate.H, [ 0 ]) ] in
  Alcotest.(check (array int)) "identity" [| 0; 1; 2; 3 |] (Mapping.identity_placement g c)

let test_too_small_device () =
  let g = (Topology.path 2).Topology.graph in
  let c = Circuit.of_gates 5 [] in
  Alcotest.check_raises "too small"
    (Invalid_argument "Mapping: device has 2 qubits, circuit needs 5") (fun () ->
      ignore (Mapping.route g c))

let test_degree_placement_valid () =
  let g = Lazy.force grid3 in
  let c =
    Circuit.of_gates 5
      [ (Gate.Cz, [ 0; 1 ]); (Gate.Cz, [ 0; 2 ]); (Gate.Cz, [ 0; 3 ]); (Gate.Cz, [ 0; 4 ]) ]
  in
  let p = Mapping.degree_placement g c in
  check_int "size" 5 (Array.length p);
  check_int "distinct" 5 (List.length (List.sort_uniq compare (Array.to_list p)));
  (* the hub qubit should land on the center (degree 4) *)
  check_int "hub on center" 4 p.(0)

let test_degree_placement_reduces_swaps () =
  let g = Lazy.force grid3 in
  let star =
    Circuit.of_gates 9
      (List.init 8 (fun i -> (Gate.Cz, [ 0; i + 1 ])))
  in
  let naive = Mapping.route g star in
  let smart = Mapping.route ~placement:(Mapping.degree_placement g star) g star in
  check_true "placement helps" (smart.Mapping.n_swaps <= naive.Mapping.n_swaps)

let test_quality_placement () =
  let g = (Topology.path 8).Topology.graph in
  (* quality peaks at qubits 4..6 *)
  let quality p = if p >= 4 && p <= 6 then 10.0 +. float_of_int p else float_of_int p in
  let c = Circuit.of_gates 3 [ (Gate.Cz, [ 0; 1 ]); (Gate.Cz, [ 1; 2 ]) ] in
  let placement = Mapping.quality_placement ~quality g c in
  check_int "size" 3 (Array.length placement);
  check_int "distinct" 3 (List.length (List.sort_uniq compare (Array.to_list placement)));
  (* the busiest logical qubit (1, two partners) lands on the best spot *)
  check_int "hub on best qubit" 6 placement.(1);
  (* partners stay adjacent to it *)
  Array.iteri
    (fun logical spot ->
      if logical <> 1 then check_true "adjacent to hub" (Graph.mem_edge g spot placement.(1)))
    placement;
  (* routing with it needs no SWAPs at all *)
  check_int "no swaps" 0 (Mapping.route ~placement g c).Mapping.n_swaps

let test_coherence_placement_avoids_duds () =
  (* a device with spares: the coherence policy must use the good qubits *)
  let device = Fastsc_device.Device.create ~seed:123 (Topology.path 8) in
  let circuit = Circuit.of_gates 4 [ (Gate.Cz, [ 0; 1 ]); (Gate.Cz, [ 2; 3 ]) ] in
  let options =
    { Fastsc_core.Compile.default_options with Fastsc_core.Compile.placement = `Coherence }
  in
  let schedule =
    Fastsc_core.Compile.run ~options Fastsc_core.Compile.Color_dynamic device circuit
  in
  check_true "valid" (Result.is_ok (Fastsc_core.Schedule.check schedule));
  let used = Fastsc_core.Schedule.used_qubits schedule in
  let quality q =
    1.0
    /. ((1.0 /. Fastsc_device.Device.t1 device q) +. (1.0 /. Fastsc_device.Device.t2 device q))
  in
  let worst_used = List.fold_left (fun acc q -> Float.min acc (quality q)) infinity used in
  let unused = List.filter (fun q -> not (List.mem q used)) (List.init 8 Fun.id) in
  (* at least one avoided qubit is worse than everything we used *)
  check_true "duds avoided" (List.exists (fun q -> quality q < worst_used) unused)

let test_non_injective_placement_rejected () =
  let g = Lazy.force grid3 in
  let c = Circuit.of_gates 2 [] in
  Alcotest.check_raises "duplicate placement"
    (Invalid_argument "Mapping.route: placement is not injective into the device") (fun () ->
      ignore (Mapping.route ~placement:[| 0; 0 |] g c))

let test_lookahead_valid_and_semantic () =
  let line = (Topology.path 4).Topology.graph in
  let c =
    Circuit.of_gates 4 [ (Gate.H, [ 0 ]); (Gate.Cnot, [ 0; 3 ]); (Gate.Cnot, [ 1; 2 ]) ]
  in
  let r = Mapping.route_lookahead line c in
  check_true "verified" (Mapping.verify line r.Mapping.circuit);
  let ideal = Statevector.of_circuit c in
  let routed = Statevector.of_circuit r.Mapping.circuit in
  let ideal_probs = Statevector.probabilities ideal in
  let routed_probs = Statevector.probabilities routed in
  let remap idx =
    let out = ref 0 in
    for q = 0 to 3 do
      if idx land (1 lsl q) <> 0 then out := !out lor (1 lsl r.Mapping.final.(q))
    done;
    !out
  in
  Array.iteri
    (fun idx p -> check_float ~eps:1e-9 "probabilities match" p routed_probs.(remap idx))
    ideal_probs

let test_lookahead_beats_greedy_on_shared_traffic () =
  (* several gates crossing the same region: one SWAP should serve many *)
  let line = (Topology.path 6).Topology.graph in
  let c =
    Circuit.of_gates 6
      [
        (Gate.Cz, [ 0; 2 ]); (Gate.Cz, [ 1; 3 ]); (Gate.Cz, [ 0; 3 ]); (Gate.Cz, [ 2; 4 ]);
        (Gate.Cz, [ 1; 4 ]); (Gate.Cz, [ 3; 5 ]);
      ]
  in
  let greedy = Mapping.route line c in
  let smart = Mapping.route_lookahead line c in
  check_true "verified" (Mapping.verify line smart.Mapping.circuit);
  check_true "no more swaps than greedy" (smart.Mapping.n_swaps <= greedy.Mapping.n_swaps)

let test_lookahead_adjacent_needs_no_swaps () =
  let g = Lazy.force grid3 in
  let c = Circuit.of_gates 9 [ (Gate.Cz, [ 0; 1 ]); (Gate.Cz, [ 4; 5 ]) ] in
  check_int "no swaps" 0 (Mapping.route_lookahead g c).Mapping.n_swaps

let prop_lookahead_always_validates =
  qcheck_case ~count:40 "lookahead-routed circuits always verify" QCheck.(int_range 1 5000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Lazy.force grid3 in
      let b = Circuit.builder 9 in
      for _ = 1 to 15 do
        let a = Rng.int rng 9 in
        let bq = (a + 1 + Rng.int rng 8) mod 9 in
        Circuit.add b Gate.Cz [ a; bq ]
      done;
      let r = Mapping.route_lookahead g (Circuit.finish b) in
      Mapping.verify g r.Mapping.circuit)

let prop_lookahead_never_loses_gates =
  qcheck_case ~count:40 "lookahead preserves all gates" QCheck.(int_range 1 5000) (fun seed ->
      let rng = Rng.create seed in
      let g = Lazy.force grid3 in
      let b = Circuit.builder 9 in
      let n_gates = 12 in
      for _ = 1 to n_gates do
        let a = Rng.int rng 9 in
        Circuit.add b Gate.Cz [ a; (a + 1 + Rng.int rng 8) mod 9 ]
      done;
      let r = Mapping.route_lookahead g (Circuit.finish b) in
      Circuit.length r.Mapping.circuit = n_gates + r.Mapping.n_swaps)

let prop_routing_always_validates =
  qcheck_case ~count:50 "routed circuits always verify" QCheck.(int_range 1 5000) (fun seed ->
      let rng = Rng.create seed in
      let g = Lazy.force grid3 in
      let b = Circuit.builder 9 in
      for _ = 1 to 15 do
        let a = Rng.int rng 9 in
        let bq = (a + 1 + Rng.int rng 8) mod 9 in
        Circuit.add b Gate.Cz [ a; bq ]
      done;
      let r = Mapping.route g (Circuit.finish b) in
      Mapping.verify g r.Mapping.circuit)

let suite =
  [
    Alcotest.test_case "adjacent untouched" `Quick test_adjacent_untouched;
    Alcotest.test_case "distant gate swaps" `Quick test_distant_gate_inserts_swaps;
    Alcotest.test_case "routing preserves semantics" `Quick test_routing_preserves_semantics;
    Alcotest.test_case "verify detects bad" `Quick test_verify_detects_bad_circuit;
    Alcotest.test_case "identity placement" `Quick test_identity_placement;
    Alcotest.test_case "too small device" `Quick test_too_small_device;
    Alcotest.test_case "degree placement valid" `Quick test_degree_placement_valid;
    Alcotest.test_case "degree placement helps" `Quick test_degree_placement_reduces_swaps;
    Alcotest.test_case "quality placement" `Quick test_quality_placement;
    Alcotest.test_case "coherence placement" `Quick test_coherence_placement_avoids_duds;
    Alcotest.test_case "non-injective placement" `Quick test_non_injective_placement_rejected;
    Alcotest.test_case "lookahead valid + semantic" `Quick test_lookahead_valid_and_semantic;
    Alcotest.test_case "lookahead beats greedy" `Quick test_lookahead_beats_greedy_on_shared_traffic;
    Alcotest.test_case "lookahead adjacent no swaps" `Quick test_lookahead_adjacent_needs_no_swaps;
    prop_lookahead_always_validates;
    prop_lookahead_never_loses_gates;
    prop_routing_always_validates;
  ]
