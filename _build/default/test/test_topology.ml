open Helpers

let test_grid () =
  let t = Topology.grid 3 4 in
  check_int "vertices" 12 (Graph.n_vertices t.Topology.graph);
  (* edges: 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8 *)
  check_int "edges" 17 (Graph.n_edges t.Topology.graph);
  check_true "connected" (Graph.is_connected t.Topology.graph);
  check_true "coords" (Topology.coords_exn t 5 = (1, 1))

let test_grid_bipartite () =
  let t = Topology.grid 5 5 in
  check_true "grid is 2-colorable" (Coloring.two_color t.Topology.graph <> None)

let test_path_ring () =
  let p = Topology.path 6 in
  check_int "path edges" 5 (Graph.n_edges p.Topology.graph);
  let r = Topology.ring 6 in
  check_int "ring edges" 6 (Graph.n_edges r.Topology.graph);
  List.iter (fun v -> check_int "ring degree" 2 (Graph.degree r.Topology.graph v))
    (Graph.vertices r.Topology.graph)

let test_ring_too_small () =
  Alcotest.check_raises "n=2" (Invalid_argument "Topology.ring: needs at least 3 vertices")
    (fun () -> ignore (Topology.ring 2))

let test_complete () =
  let t = Topology.complete 5 in
  check_int "edges" 10 (Graph.n_edges t.Topology.graph)

let test_square_grid () =
  check_int "16 -> 4x4" 24 (Graph.n_edges (Topology.square_grid 16).Topology.graph);
  check_int "12 -> 3x4" 17 (Graph.n_edges (Topology.square_grid 12).Topology.graph);
  (* prime size falls back to a path *)
  check_int "7 -> path" 6 (Graph.n_edges (Topology.square_grid 7).Topology.graph)

let test_express_1d () =
  let t = Topology.express_1d 9 4 in
  let g = t.Topology.graph in
  check_true "name" (t.Topology.name = "1EX-4");
  (* path edges 8, express edges (0,4) and (4,8) *)
  check_int "edges" 10 (Graph.n_edges g);
  check_true "express link" (Graph.mem_edge g 0 4 && Graph.mem_edge g 4 8);
  (* express links shorten the diameter *)
  check_true "diameter shrinks" (Paths.diameter g < 8)

let test_express_2d () =
  let base = (Topology.grid 5 5).Topology.graph in
  let t = Topology.express_2d 5 5 2 in
  let g = t.Topology.graph in
  check_true "denser than grid" (Graph.n_edges g > Graph.n_edges base);
  check_true "express row link" (Graph.mem_edge g 0 2);
  check_true "express column link" (Graph.mem_edge g 0 10)

let test_express_validation () =
  Alcotest.check_raises "k=1" (Invalid_argument "Topology.express_1d: k must be >= 2")
    (fun () -> ignore (Topology.express_1d 5 1))

let test_tiling_classes_cover () =
  let rows = 4 and cols = 4 in
  let classes = Topology.grid_edge_classes rows cols in
  let g = (Topology.grid rows cols).Topology.graph in
  check_int "every edge classified" (Graph.n_edges g) (List.length classes);
  List.iter
    (fun ((u, v), _) -> check_true "edge exists" (Graph.mem_edge g u v))
    classes

let test_tiling_classes_are_matchings () =
  let classes = Topology.grid_edge_classes 5 5 in
  List.iter
    (fun cls ->
      let members = List.filter (fun (_, c) -> c = cls) classes in
      let qubits = List.concat_map (fun ((u, v), _) -> [ u; v ]) members in
      check_int "no qubit repeats within a class"
        (List.length qubits)
        (List.length (List.sort_uniq compare qubits)))
    [ Topology.A; Topology.B; Topology.C; Topology.D ]

let test_honeycomb () =
  let t = Topology.honeycomb 2 2 in
  let g = t.Topology.graph in
  check_true "connected" (Graph.is_connected g);
  check_true "degree at most 3" (Graph.max_degree g <= 3);
  check_true "bipartite (hexagonal faces)" (Coloring.two_color g <> None)

let test_subdivide () =
  let base = Topology.grid 2 2 in
  let sub = Topology.subdivide base in
  let g = sub.Topology.graph in
  check_int "vertices = n + m" (4 + 4) (Graph.n_vertices g);
  check_int "edges doubled" 8 (Graph.n_edges g);
  check_true "connected" (Graph.is_connected g);
  (* original vertices are never adjacent after subdivision *)
  Graph.iter_edges (fun u v -> check_true "bridge structure" (u >= 4 || v >= 4)) g

let test_heavy_hex () =
  let t = Topology.heavy_hex 2 2 in
  let g = t.Topology.graph in
  check_true "named" (t.Topology.name = "HH-2x2");
  check_true "connected" (Graph.is_connected g);
  (* inserted qubits have degree exactly 2 *)
  let base = Graph.n_vertices (Topology.honeycomb 2 2).Topology.graph in
  List.iter
    (fun v -> if v >= base then check_int "edge qubit degree" 2 (Graph.degree g v))
    (Graph.vertices g)

let test_octagonal () =
  let t = Topology.octagonal 2 2 in
  let g = t.Topology.graph in
  check_int "qubits" 32 (Graph.n_vertices g);
  (* 4 rings x 8 edges + 2 horizontal pairs x 2 + 2 vertical pairs x 2 *)
  check_int "edges" ((4 * 8) + (2 * 2) + (2 * 2)) (Graph.n_edges g);
  check_true "connected" (Graph.is_connected g);
  check_true "degree at most 3" (Graph.max_degree g <= 3)

let test_coords_missing () =
  Alcotest.check_raises "no embedding"
    (Invalid_argument "Topology.coords_exn: RING-4 has no embedding") (fun () ->
      ignore (Topology.coords_exn (Topology.ring 4) 0))

let prop_express_2d_connected =
  qcheck_case "express cubes stay connected" QCheck.(pair (int_range 2 6) (int_range 2 5))
    (fun (n, k) ->
      Graph.is_connected (Topology.express_2d n n k).Topology.graph
      && Graph.is_connected (Topology.express_1d (n * n) k).Topology.graph)

let suite =
  [
    Alcotest.test_case "grid" `Quick test_grid;
    Alcotest.test_case "grid bipartite" `Quick test_grid_bipartite;
    Alcotest.test_case "path/ring" `Quick test_path_ring;
    Alcotest.test_case "ring too small" `Quick test_ring_too_small;
    Alcotest.test_case "complete" `Quick test_complete;
    Alcotest.test_case "square grid" `Quick test_square_grid;
    Alcotest.test_case "express 1d" `Quick test_express_1d;
    Alcotest.test_case "express 2d" `Quick test_express_2d;
    Alcotest.test_case "express validation" `Quick test_express_validation;
    Alcotest.test_case "honeycomb" `Quick test_honeycomb;
    Alcotest.test_case "subdivide" `Quick test_subdivide;
    Alcotest.test_case "heavy hex" `Quick test_heavy_hex;
    Alcotest.test_case "octagonal" `Quick test_octagonal;
    Alcotest.test_case "tiling covers edges" `Quick test_tiling_classes_cover;
    Alcotest.test_case "tiling classes are matchings" `Quick test_tiling_classes_are_matchings;
    Alcotest.test_case "coords missing" `Quick test_coords_missing;
    prop_express_2d_connected;
  ]
