open Helpers
open Fastsc_core

let sample () =
  Circuit.of_gates 3
    [
      (Gate.H, [ 0 ]);
      (Gate.Cz, [ 0; 1 ]);
      (Gate.H, [ 2 ]);
      (Gate.Cz, [ 1; 2 ]);
      (Gate.H, [ 1 ]);
    ]

let test_initial_ready () =
  let p = Pending.create (sample ()) in
  let ready = Pending.ready p in
  (* h0 and h2 are ready; cz(0,1) waits for h0, cz(1,2) for cz(0,1)... no:
     cz(0,1) needs h0 done AND is first on qubit 1 -> blocked by h0 only *)
  Alcotest.(check (list int)) "ready ids" [ 0; 2 ] (List.map (fun a -> a.Gate.id) ready)

let test_criticality_ordering () =
  let p = Pending.create (sample ()) in
  match Pending.ready p with
  | first :: _ ->
    (* h0 heads the longest chain h0 -> cz01 -> cz12 -> h1 *)
    check_int "deepest first" 0 first.Gate.id;
    check_int "its criticality" 4 (Pending.criticality p first)
  | [] -> Alcotest.fail "expected ready gates"

let test_schedule_unblocks () =
  let c = sample () in
  let p = Pending.create c in
  let instrs = Circuit.instructions c in
  Pending.schedule p instrs.(0);
  let ready_ids = List.map (fun a -> a.Gate.id) (Pending.ready p) in
  check_true "cz01 now ready" (List.mem 1 ready_ids);
  check_int "remaining" 4 (Pending.n_remaining p)

let test_schedule_not_ready_rejected () =
  let c = sample () in
  let p = Pending.create c in
  let instrs = Circuit.instructions c in
  Alcotest.check_raises "dependency violation"
    (Invalid_argument "Pending.schedule: gate 1 is not ready (dependency violation)")
    (fun () -> Pending.schedule p instrs.(1))

let test_drain_respects_dependencies () =
  let c = sample () in
  let p = Pending.create c in
  let scheduled = ref [] in
  while not (Pending.is_empty p) do
    match Pending.ready p with
    | [] -> Alcotest.fail "deadlock"
    | app :: _ ->
      Pending.schedule p app;
      scheduled := app.Gate.id :: !scheduled
  done;
  let order = List.rev !scheduled in
  check_int "all gates" 5 (List.length order);
  (* per-qubit order is preserved *)
  let position id = Option.get (List.find_index (fun x -> x = id) order) in
  check_true "0 before 1" (position 0 < position 1);
  check_true "1 before 3" (position 1 < position 3);
  check_true "3 before 4" (position 3 < position 4)

let test_empty_circuit () =
  let p = Pending.create (Circuit.of_gates 2 []) in
  check_true "immediately empty" (Pending.is_empty p);
  check_int "nothing ready" 0 (List.length (Pending.ready p))

let prop_drain_is_topological =
  qcheck_case ~count:50 "greedy drain visits every gate exactly once" QCheck.(int_range 1 5000)
    (fun seed ->
      let rng = Rng.create seed in
      let b = Circuit.builder 5 in
      for _ = 1 to 20 do
        if Rng.bool rng then Circuit.add b Gate.H [ Rng.int rng 5 ]
        else begin
          let a = Rng.int rng 5 in
          Circuit.add b Gate.Cz [ a; (a + 1 + Rng.int rng 4) mod 5 ]
        end
      done;
      let c = Circuit.finish b in
      let p = Pending.create c in
      let count = ref 0 in
      while not (Pending.is_empty p) do
        match Pending.ready p with
        | [] -> failwith "deadlock"
        | app :: _ ->
          Pending.schedule p app;
          incr count
      done;
      !count = Circuit.length c)

let suite =
  [
    Alcotest.test_case "initial ready" `Quick test_initial_ready;
    Alcotest.test_case "criticality ordering" `Quick test_criticality_ordering;
    Alcotest.test_case "schedule unblocks" `Quick test_schedule_unblocks;
    Alcotest.test_case "not ready rejected" `Quick test_schedule_not_ready_rejected;
    Alcotest.test_case "drain respects dependencies" `Quick test_drain_respects_dependencies;
    Alcotest.test_case "empty circuit" `Quick test_empty_circuit;
    prop_drain_is_topological;
  ]
