open Helpers
open Fastsc_benchmarks

let test_cp_gadget_unitary () =
  (* CP(theta) = diag(1,1,1,e^{i theta}) up to global phase *)
  let theta = 0.9 in
  let gadget = Circuit.of_gates 2 (Qft.controlled_phase theta 1 0) in
  let expected =
    Matrix.of_arrays
      [|
        [| Complex.one; Complex.zero; Complex.zero; Complex.zero |];
        [| Complex.zero; Complex.one; Complex.zero; Complex.zero |];
        [| Complex.zero; Complex.zero; Complex.one; Complex.zero |];
        [| Complex.zero; Complex.zero; Complex.zero; Complex_ext.exp_i theta |];
      |]
  in
  check_true "cp gadget" (equal_up_to_phase (circuit_unitary gadget) expected)

let test_qft_unitary () =
  (* QFT matrix: entry (j,k) = omega^{jk} / sqrt(N) *)
  let n = 3 in
  let dim = 1 lsl n in
  let expected =
    Matrix.init dim dim (fun j k ->
        Complex_ext.scale
          (1.0 /. sqrt (float_of_int dim))
          (Complex_ext.exp_i (2.0 *. Float.pi *. float_of_int (j * k) /. float_of_int dim)))
  in
  let c = Qft.circuit ~n () in
  check_true "qft matrix" (equal_up_to_phase (circuit_unitary c) expected)

let test_qft_without_reversal () =
  let c = Qft.circuit ~reverse:false ~n:4 () in
  check_int "no swaps" 0 (Circuit.count (fun g -> g = Gate.Swap) c)

let test_qft_approximation_drops_gates () =
  let exact = Qft.circuit ~n:6 () in
  let approx = Qft.circuit ~approximation:2 ~n:6 () in
  check_true "fewer gates" (Circuit.length approx < Circuit.length exact)

let test_qft_validation () =
  check_true "n=0 rejected"
    (try
       ignore (Qft.circuit ~n:0 ());
       false
     with Invalid_argument _ -> true)

let test_ghz_chain_state () =
  let c = Ghz.circuit ~n:4 () in
  let sv = Statevector.of_circuit c in
  List.iter
    (fun (outcome, p) -> check_float ~eps:1e-12 "ghz outcome" p (Statevector.probability sv outcome))
    (Ghz.expected_probabilities ~n:4);
  check_float ~eps:1e-12 "nothing else" 0.0 (Statevector.probability sv 5)

let test_ghz_fanout_state_and_depth () =
  let chain = Ghz.circuit ~n:8 () in
  let tree = Ghz.circuit ~fanout:true ~n:8 () in
  (* same state *)
  check_float ~eps:1e-12 "same state" 1.0
    (Statevector.fidelity (Statevector.of_circuit chain) (Statevector.of_circuit tree));
  (* logarithmic vs linear depth *)
  check_true "tree shallower" (Layers.depth tree < Layers.depth chain);
  check_int "tree depth" 4 (Layers.depth tree)

let test_ghz_compiles_everywhere () =
  let device = Fastsc_device.Device.create ~seed:5 (Topology.grid 3 3) in
  List.iter
    (fun algorithm ->
      let s = Fastsc_core.Compile.run algorithm device (Ghz.circuit ~fanout:true ~n:9 ()) in
      check_true "valid" (Result.is_ok (Fastsc_core.Schedule.check s)))
    Fastsc_core.Compile.extended_algorithms

let test_qft_compiles () =
  let device = Fastsc_device.Device.create ~seed:5 (Topology.grid 3 3) in
  let s = Fastsc_core.Compile.run Fastsc_core.Compile.Color_dynamic device (Qft.circuit ~n:6 ()) in
  check_true "valid" (Result.is_ok (Fastsc_core.Schedule.check s))

let prop_qft_sizes =
  qcheck_case "qft gate count formula" QCheck.(int_range 1 8) (fun n ->
      let c = Qft.circuit ~reverse:false ~n () in
      (* n Hadamards + 5 gates per controlled phase, n(n-1)/2 phases *)
      Circuit.length c = n + (5 * n * (n - 1) / 2))

let prop_ghz_fanout_always_ghz =
  qcheck_case "fanout ghz correct for all sizes" QCheck.(int_range 2 10) (fun n ->
      let sv = Statevector.of_circuit (Ghz.circuit ~fanout:true ~n ()) in
      Float.abs (Statevector.probability sv 0 -. 0.5) < 1e-9
      && Float.abs (Statevector.probability sv ((1 lsl n) - 1) -. 0.5) < 1e-9)

let suite =
  [
    Alcotest.test_case "cp gadget" `Quick test_cp_gadget_unitary;
    Alcotest.test_case "qft unitary" `Quick test_qft_unitary;
    Alcotest.test_case "qft without reversal" `Quick test_qft_without_reversal;
    Alcotest.test_case "qft approximation" `Quick test_qft_approximation_drops_gates;
    Alcotest.test_case "qft validation" `Quick test_qft_validation;
    Alcotest.test_case "ghz chain state" `Quick test_ghz_chain_state;
    Alcotest.test_case "ghz fanout" `Quick test_ghz_fanout_state_and_depth;
    Alcotest.test_case "ghz compiles everywhere" `Quick test_ghz_compiles_everywhere;
    Alcotest.test_case "qft compiles" `Quick test_qft_compiles;
    prop_qft_sizes;
    prop_ghz_fanout_always_ghz;
  ]
