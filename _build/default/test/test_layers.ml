open Helpers

let sample () =
  (* ASAP layers: {h0, h1, rz2}, {cz(0,1)}, {cz(1,2)} *)
  Circuit.of_gates 3
    [
      (Gate.H, [ 0 ]);
      (Gate.H, [ 1 ]);
      (Gate.Cz, [ 0; 1 ]);
      (Gate.Rz 0.1, [ 2 ]);
      (Gate.Cz, [ 1; 2 ]);
    ]

let test_slice_structure () =
  let layers = Layers.slice (sample ()) in
  check_int "three layers" 3 (List.length layers);
  Alcotest.(check (list int)) "layer sizes" [ 3; 1; 1 ] (List.map List.length layers)

let test_slice_disjoint () =
  let layers = Layers.slice (sample ()) in
  List.iter
    (fun layer ->
      let qubits = List.concat_map (fun app -> Array.to_list app.Gate.qubits) layer in
      check_int "qubit-disjoint" (List.length qubits) (List.length (List.sort_uniq compare qubits)))
    layers

let test_slice_preserves_order () =
  let c = sample () in
  let flat = List.concat (Layers.slice c) in
  check_int "all instructions present" (Circuit.length c) (List.length flat);
  (* dependencies respected: an instruction never appears in an earlier layer
     than one it depends on *)
  let idx = Layers.layer_index c in
  Array.iter
    (fun app ->
      Array.iter
        (fun q ->
          Array.iter
            (fun other ->
              if other.Gate.id < app.Gate.id && Array.mem q other.Gate.qubits then
                check_true "dependency ordered" (idx.(other.Gate.id) < idx.(app.Gate.id)))
            (Circuit.instructions c))
        app.Gate.qubits)
    (Circuit.instructions c)

let test_depth () =
  check_int "depth" 3 (Layers.depth (sample ()));
  check_int "empty circuit depth" 0 (Layers.depth (Circuit.of_gates 2 []))

let test_criticality () =
  let c = sample () in
  let crit = Layers.criticality c in
  (* h1 (id 1) heads the chain h1 -> cz01 -> cz12 of length 3 *)
  check_int "h1 criticality" 3 crit.(1);
  check_int "cz12 last" 1 crit.(4);
  check_int "rz2 chain" 2 crit.(3)

let test_criticality_bounded_by_depth () =
  let c = sample () in
  let depth = Layers.depth c in
  Array.iter (fun k -> check_true "within depth" (k >= 1 && k <= depth)) (Layers.criticality c)

let test_qubit_busy_layers () =
  let busy = Layers.qubit_busy_layers (sample ()) in
  check_int "qubit 0" 2 busy.(0);
  check_int "qubit 1" 3 busy.(1);
  check_int "qubit 2" 2 busy.(2)

let random_circuit seed n_qubits n_gates =
  let rng = Rng.create seed in
  let b = Circuit.builder n_qubits in
  for _ = 1 to n_gates do
    if Rng.bool rng && n_qubits >= 2 then begin
      let a = Rng.int rng n_qubits in
      let bq = (a + 1 + Rng.int rng (n_qubits - 1)) mod n_qubits in
      Circuit.add b Gate.Cz [ a; bq ]
    end
    else Circuit.add b Gate.H [ Rng.int rng n_qubits ]
  done;
  Circuit.finish b

let prop_depth_le_length =
  qcheck_case "depth <= gate count" QCheck.(pair (int_range 1 500) (int_range 1 40)) (fun (seed, n) ->
      let c = random_circuit seed 5 n in
      Layers.depth c <= Circuit.length c && Layers.depth c >= 1)

let prop_max_criticality_is_depth =
  qcheck_case "max criticality = depth" QCheck.(int_range 1 500) (fun seed ->
      let c = random_circuit seed 4 25 in
      let crit = Layers.criticality c in
      Array.fold_left max 0 crit = Layers.depth c)

let prop_layers_partition =
  qcheck_case "slicing is a partition" QCheck.(int_range 1 500) (fun seed ->
      let c = random_circuit seed 6 30 in
      let flat = List.concat (Layers.slice c) in
      let ids = List.sort compare (List.map (fun app -> app.Gate.id) flat) in
      ids = List.init (Circuit.length c) Fun.id)

let suite =
  [
    Alcotest.test_case "slice structure" `Quick test_slice_structure;
    Alcotest.test_case "slice disjoint" `Quick test_slice_disjoint;
    Alcotest.test_case "slice preserves order" `Quick test_slice_preserves_order;
    Alcotest.test_case "depth" `Quick test_depth;
    Alcotest.test_case "criticality" `Quick test_criticality;
    Alcotest.test_case "criticality bounded" `Quick test_criticality_bounded_by_depth;
    Alcotest.test_case "busy layers" `Quick test_qubit_busy_layers;
    prop_depth_le_length;
    prop_max_criticality_is_depth;
    prop_layers_partition;
  ]
