open Helpers
open Fastsc_device
open Fastsc_core

let device () = Device.create ~seed:5 (Topology.grid 2 2)

let native_circuit () =
  (* already routed for the 2x2 grid: edges (0,1) (0,2) (1,3) (2,3) *)
  Circuit.of_gates 4
    [ (Gate.H, [ 0 ]); (Gate.Iswap, [ 0; 1 ]); (Gate.Cz, [ 2; 3 ]); (Gate.H, [ 3 ]) ]

let schedule () = Baseline_naive.run (device ()) (native_circuit ())

let test_accessors () =
  let s = schedule () in
  check_true "depth positive" (Schedule.depth s >= 2);
  check_true "time positive" (Schedule.total_time s > 0.0);
  check_int "gates" 4 (Schedule.n_gates s);
  check_int "two-qubit" 2 (Schedule.n_two_qubit_gates s)

let test_check_passes () =
  match Schedule.check (schedule ()) with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_check_detects_overlap () =
  let s = schedule () in
  let bad_step =
    match s.Schedule.steps with
    | step :: _ ->
      { step with Schedule.gates = step.Schedule.gates @ step.Schedule.gates }
    | [] -> Alcotest.fail "no steps"
  in
  let bad = { s with Schedule.steps = [ bad_step ] } in
  check_true "overlap rejected" (Result.is_error (Schedule.check bad))

let test_check_detects_bad_resonance () =
  let s = schedule () in
  let break_step step =
    (* knock an interacting pair off resonance *)
    match step.Schedule.interacting with
    | (a, _) :: _ ->
      let freqs = Array.copy step.Schedule.freqs in
      freqs.(a) <- freqs.(a) +. 0.05;
      Some { step with Schedule.freqs = freqs }
    | [] -> None
  in
  let steps = List.filter_map break_step s.Schedule.steps in
  if steps = [] then Alcotest.fail "expected an interacting step";
  check_true "off resonance rejected"
    (Result.is_error (Schedule.check { s with Schedule.steps = steps }))

let test_check_detects_duration () =
  let s = schedule () in
  let steps =
    List.map (fun step -> { step with Schedule.duration = 0.0 }) s.Schedule.steps
  in
  check_true "zero duration rejected" (Result.is_error (Schedule.check { s with Schedule.steps = steps }))

let test_metrics_sane () =
  let m = Schedule.evaluate (schedule ()) in
  check_true "success in (0,1]" (m.Schedule.success > 0.0 && m.Schedule.success <= 1.0);
  check_true "log10 matches" (Float.abs (m.Schedule.log10_success -. log10 m.Schedule.success) < 1e-6);
  check_true "errors within [0,1]"
    (m.Schedule.gate_error >= 0.0 && m.Schedule.crosstalk_error >= 0.0
   && m.Schedule.decoherence_error >= 0.0);
  check_int "depth consistent" (Schedule.depth (schedule ())) m.Schedule.depth

let test_worst_case_bounds_timed () =
  let s = schedule () in
  let wc = Schedule.evaluate ~worst_case:true s in
  let timed = Schedule.evaluate s in
  check_true "worst-case success lower" (wc.Schedule.success <= timed.Schedule.success +. 1e-12)

let test_distance2_adds_error () =
  let s = schedule () in
  let near = Schedule.evaluate ~crosstalk_distance:2 s in
  let base = Schedule.evaluate ~crosstalk_distance:1 s in
  check_true "parasitic terms reduce success" (near.Schedule.success <= base.Schedule.success +. 1e-12)

let test_to_noisy_steps_structure () =
  let s = schedule () in
  let steps = Schedule.to_noisy_steps s in
  check_int "one noisy step per schedule step" (Schedule.depth s) (List.length steps);
  (* every step carries the pauli noise of each qubit *)
  List.iter
    (fun events ->
      let paulis =
        List.length
          (List.filter (function Noisy_sim.Pauli_noise _ -> true | _ -> false) events)
      in
      check_int "pauli per qubit" 4 paulis)
    steps

let test_noisy_steps_ideal_matches_circuit () =
  let s = schedule () in
  let steps = Schedule.to_noisy_steps s in
  let ideal = Noisy_sim.ideal_of_steps ~n_qubits:4 steps in
  (* the unitary content equals the scheduled gates in order *)
  let direct = Statevector.create 4 in
  List.iter
    (fun step ->
      List.iter
        (fun app -> Statevector.apply direct app.Gate.gate (Array.to_list app.Gate.qubits))
        step.Schedule.gates)
    s.Schedule.steps;
  check_float ~eps:1e-9 "same ideal state" 1.0 (Statevector.fidelity ideal direct)

let test_flux_profile () =
  let s = schedule () in
  let profile = Schedule.flux_profile s 0 in
  check_int "one value per step" (Schedule.depth s) (List.length profile);
  List.iter (fun phi -> check_true "flux in [0, 1/2]" (phi >= 0.0 && phi <= 0.5)) profile

let test_spare_qubits_cost_nothing () =
  (* a 2-qubit program on a 2x2 device: qubits 2 and 3 never carry state and
     must not be charged decoherence *)
  let d = device () in
  let tiny = Circuit.of_gates 4 [ (Gate.H, [ 0 ]); (Gate.Iswap, [ 0; 1 ]) ] in
  let s = Baseline_naive.run d tiny in
  Alcotest.(check (list int)) "used qubits" [ 0; 1 ] (Schedule.used_qubits s);
  let m = Schedule.evaluate s in
  (* manually: decoherence over only the two used qubits *)
  let expected =
    let t = Schedule.total_time s in
    1.0
    -. List.fold_left
         (fun acc q ->
           acc
           *. (1.0
              -. Fastsc_noise.Decoherence.error ~model:Fastsc_noise.Decoherence.Exponential
                   ~t1:(Device.t1 d q)
                   ~t2:(Device.t2 d q) ~t ()))
         1.0 [ 0; 1 ]
  in
  check_float ~eps:1e-12 "only used qubits decohere" expected m.Schedule.decoherence_error

let test_pp_smoke () =
  let s = schedule () in
  check_true "summary renders" (String.length (Format.asprintf "%a" Schedule.pp_summary s) > 0);
  match s.Schedule.steps with
  | step :: _ ->
    check_true "step renders"
      (String.length (Format.asprintf "%a" (Schedule.pp_step s.Schedule.device) step) > 0)
  | [] -> ()

let suite =
  [
    Alcotest.test_case "accessors" `Quick test_accessors;
    Alcotest.test_case "check passes" `Quick test_check_passes;
    Alcotest.test_case "check detects overlap" `Quick test_check_detects_overlap;
    Alcotest.test_case "check detects resonance break" `Quick test_check_detects_bad_resonance;
    Alcotest.test_case "check detects duration" `Quick test_check_detects_duration;
    Alcotest.test_case "metrics sane" `Quick test_metrics_sane;
    Alcotest.test_case "worst case bounds" `Quick test_worst_case_bounds_timed;
    Alcotest.test_case "distance 2 adds error" `Quick test_distance2_adds_error;
    Alcotest.test_case "noisy steps structure" `Quick test_to_noisy_steps_structure;
    Alcotest.test_case "noisy ideal matches" `Quick test_noisy_steps_ideal_matches_circuit;
    Alcotest.test_case "flux profile" `Quick test_flux_profile;
    Alcotest.test_case "spare qubits free" `Quick test_spare_qubits_cost_nothing;
    Alcotest.test_case "pp smoke" `Quick test_pp_smoke;
  ]
