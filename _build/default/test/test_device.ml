open Helpers
open Fastsc_device

let device ?(seed = 7) ?(n = 3) () = Device.create ~seed (Topology.grid n n)

let test_partition_make () =
  let p = Partition.make ~lo:5.0 ~hi:7.0 in
  check_float ~eps:1e-9 "parking hi" 5.24 p.Partition.parking_hi;
  check_float ~eps:1e-9 "interaction lo" 6.1 p.Partition.interaction_lo;
  check_true "parking membership" (Partition.in_parking p 5.2);
  check_true "exclusion membership" (Partition.in_exclusion p 6.0);
  check_true "interaction membership" (Partition.in_interaction p 6.5);
  check_true "no overlap" (not (Partition.in_parking p 6.5));
  check_true "exclusion is the widest band"
    (p.Partition.exclusion_hi -. p.Partition.exclusion_lo > Partition.parking_width p)

let test_partition_validation () =
  Alcotest.check_raises "inverted" (Invalid_argument "Partition.make: lo >= hi") (fun () ->
      ignore (Partition.make ~lo:7.0 ~hi:5.0));
  Alcotest.check_raises "bad custom"
    (Invalid_argument "Partition.custom: bands must be disjoint and ordered") (fun () ->
      ignore
        (Partition.custom ~parking:(5.0, 6.0) ~exclusion:(5.5, 5.9) ~interaction:(6.0, 7.0)))

let test_device_deterministic () =
  let a = device () and b = device () in
  for q = 0 to Device.n_qubits a - 1 do
    let ta = Device.transmon a q and tb = Device.transmon b q in
    check_float "same omega_max" ta.Fastsc_physics.Transmon.omega_max
      tb.Fastsc_physics.Transmon.omega_max
  done

let test_device_seed_changes_fabrication () =
  let a = device ~seed:1 () and b = device ~seed:2 () in
  let same = ref true in
  for q = 0 to Device.n_qubits a - 1 do
    let ta = Device.transmon a q and tb = Device.transmon b q in
    if ta.Fastsc_physics.Transmon.omega_max <> tb.Fastsc_physics.Transmon.omega_max then
      same := false
  done;
  check_true "different fabrication" (not !same)

let test_fabrication_spread () =
  let d = Device.create ~seed:3 (Topology.grid 8 8) in
  let omegas =
    List.init (Device.n_qubits d) (fun q ->
        (Device.transmon d q).Fastsc_physics.Transmon.omega_max)
  in
  let mean = Stats.mean omegas and sd = Stats.stddev omegas in
  check_true "mean near 7" (Float.abs (mean -. 7.0) < 0.08);
  check_true "spread near 0.1" (sd > 0.04 && sd < 0.16);
  (* clamped at 3 sigma *)
  List.iter (fun w -> check_true "within clamp" (w >= 6.7 -. 1e-9 && w <= 7.3 +. 1e-9)) omegas

let test_common_range () =
  let d = device () in
  let lo, hi = Device.common_range d in
  check_true "nontrivial" (lo < hi);
  for q = 0 to Device.n_qubits d - 1 do
    let qlo, qhi = Device.tunable_range d q in
    check_true "common within each" (qlo <= lo && hi <= qhi)
  done

let test_coupling_by_distance () =
  let d = device () in
  let g0 = (Device.params d).Device.g0 in
  (* grid 3x3: 0-1 adjacent, 0-2 distance 2, 0-8 distance 4 *)
  check_float "adjacent" g0 (Device.coupling d 0 1);
  check_float ~eps:1e-12 "distance 2 parasitic" (0.05 *. g0) (Device.coupling d 0 2);
  check_float "far" 0.0 (Device.coupling d 0 8);
  check_float "self" 0.0 (Device.coupling d 4 4);
  check_float "symmetric" (Device.coupling d 1 0) (Device.coupling d 0 1)

let test_gate_times () =
  let d = device () in
  let p = Device.params d in
  check_float ~eps:1e-9 "1q" p.Device.single_qubit_time (Device.gate_time d Gate.H);
  check_true "2q includes flux overhead"
    (Device.gate_time d Gate.Iswap
    > Fastsc_physics.Coupled_pair.iswap_time ~g:p.Device.g0);
  Alcotest.check_raises "non-native"
    (Invalid_argument "Device.gate_time: non-native gate (decompose first)") (fun () ->
      ignore (Device.gate_time d Gate.Cnot))

let test_pairs () =
  let d = device () in
  check_int "couplings" 12 (List.length (Device.coupled_pairs d));
  List.iter
    (fun (a, b) -> check_true "parasitic pairs at distance 2"
        (Fastsc_graphlib.Paths.distance (Device.graph d) a b = 2))
    (Device.distance2_pairs d)

let test_partition_within_common_range () =
  let d = device () in
  let lo, hi = Device.common_range d in
  let p = Device.partition d in
  check_float "partition spans range lo" lo p.Partition.parking_lo;
  check_float "partition spans range hi" hi p.Partition.interaction_hi

let test_presets () =
  let early = Device.preset `Early_nisq in
  let sycamore = Device.preset `Sycamore_era in
  let modern = Device.preset `Modern in
  check_true "early = default" (early = Device.default_params);
  check_true "coherence improves monotonically"
    (early.Device.t1_mean < sycamore.Device.t1_mean
    && sycamore.Device.t1_mean < modern.Device.t1_mean);
  check_true "gate errors improve"
    (modern.Device.base_error_2q < sycamore.Device.base_error_2q
    && sycamore.Device.base_error_2q < early.Device.base_error_2q);
  (* presets fabricate working devices *)
  List.iter
    (fun preset ->
      let d = Device.create ~params:(Device.preset preset) ~seed:1 (Topology.grid 2 2) in
      let lo, hi = Device.common_range d in
      check_true "sane range" (lo < hi))
    [ `Early_nisq; `Sycamore_era; `Modern ]

let prop_coherence_positive =
  qcheck_case "sampled coherence times stay positive" QCheck.(int_range 1 500) (fun seed ->
      let d = Device.create ~seed (Topology.path 6) in
      List.for_all (fun q -> Device.t1 d q > 0.0 && Device.t2 d q > 0.0)
        (List.init (Device.n_qubits d) Fun.id))

let suite =
  [
    Alcotest.test_case "partition make" `Quick test_partition_make;
    Alcotest.test_case "partition validation" `Quick test_partition_validation;
    Alcotest.test_case "device deterministic" `Quick test_device_deterministic;
    Alcotest.test_case "seed changes fabrication" `Quick test_device_seed_changes_fabrication;
    Alcotest.test_case "fabrication spread" `Quick test_fabrication_spread;
    Alcotest.test_case "common range" `Quick test_common_range;
    Alcotest.test_case "coupling by distance" `Quick test_coupling_by_distance;
    Alcotest.test_case "gate times" `Quick test_gate_times;
    Alcotest.test_case "pairs" `Quick test_pairs;
    Alcotest.test_case "partition spans common range" `Quick test_partition_within_common_range;
    Alcotest.test_case "presets" `Quick test_presets;
    prop_coherence_positive;
  ]
