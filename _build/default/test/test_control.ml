open Helpers
open Fastsc_device
open Fastsc_core

let schedule () =
  let device = Device.create ~seed:9 (Topology.grid 2 2) in
  let circuit =
    Circuit.of_gates 4
      [ (Gate.H, [ 0 ]); (Gate.Iswap, [ 0; 1 ]); (Gate.Cz, [ 2; 3 ]); (Gate.H, [ 2 ]) ]
  in
  Baseline_naive.run device circuit

let test_lower_shape () =
  let s = schedule () in
  let waveforms = Control.lower s in
  check_int "one per qubit" 4 (Array.length waveforms);
  Array.iter
    (fun w ->
      check_float ~eps:1e-6 "spans the schedule" (Schedule.total_time s) (Control.total_duration w))
    waveforms

let test_check_passes () =
  let s = schedule () in
  match Control.check s (Control.lower s) with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_idle_qubit_is_flat () =
  let device = Device.create ~seed:9 (Topology.grid 2 2) in
  let circuit = Circuit.of_gates 4 [ (Gate.H, [ 0 ]); (Gate.H, [ 0 ]); (Gate.H, [ 0 ]) ] in
  let s = Baseline_naive.run device circuit in
  let waveforms = Control.lower s in
  (* qubit 3 never moves: a single merged hold *)
  check_int "single segment" 1 (List.length waveforms.(3));
  check_float "no slew" 0.0 (Control.max_slew_rate waveforms.(3))

let test_active_qubit_ramps () =
  let s = schedule () in
  let waveforms = Control.lower s in
  (* qubit 1 joins an iSWAP: it must ramp at least twice (up and eventually
     it stays — at least one ramp exists) *)
  let ramps =
    List.length
      (List.filter (function Control.Ramp _ -> true | Control.Hold _ -> false) waveforms.(1))
  in
  check_true "has ramps" (ramps >= 1);
  check_true "bounded slew" (Control.max_slew_rate waveforms.(1) < 0.5)

let test_flux_at_continuity () =
  let s = schedule () in
  let waveforms = Control.lower s in
  let w = waveforms.(0) in
  (* sampling on a fine grid never jumps by more than slew * dt *)
  let slew = Float.max (Control.max_slew_rate w) 1e-9 in
  let dt = 0.25 in
  let total = Control.total_duration w in
  let t = ref 0.0 in
  while !t +. dt <= total do
    let a = Control.flux_at w !t and b = Control.flux_at w (!t +. dt) in
    check_true "continuous" (Float.abs (b -. a) <= (slew *. dt) +. 1e-9);
    t := !t +. dt
  done

let test_flux_at_clamps () =
  let s = schedule () in
  let w = (Control.lower s).(0) in
  check_float ~eps:1e-12 "before start" (Control.flux_at w 0.0) (Control.flux_at w (-5.0));
  check_float ~eps:1e-12 "after end" (Control.final_flux w)
    (Control.flux_at w (Control.total_duration w +. 100.0))

let test_check_detects_mismatch () =
  let s = schedule () in
  let waveforms = Control.lower s in
  waveforms.(2) <- [ Control.Hold { flux = 0.1; duration = 1.0 } ];
  check_true "bad duration rejected" (Result.is_error (Control.check s waveforms))

let test_check_detects_discontinuity () =
  let s = schedule () in
  let waveforms = Control.lower s in
  let total = Schedule.total_time s in
  waveforms.(0) <-
    [
      Control.Hold { flux = 0.1; duration = total /. 2.0 };
      Control.Hold { flux = 0.3; duration = total /. 2.0 };
    ];
  check_true "jump rejected" (Result.is_error (Control.check s waveforms))

let test_matches_flux_profile () =
  (* the waveform's per-step plateaus equal Schedule.flux_profile *)
  let s = schedule () in
  let waveforms = Control.lower s in
  List.iteri
    (fun _ _ -> ())
    s.Schedule.steps;
  let q = 1 in
  let profile = Schedule.flux_profile s q in
  (* sample each step just before its end: must sit on the plateau *)
  let clock = ref 0.0 in
  List.iteri
    (fun i step ->
      clock := !clock +. step.Schedule.duration;
      let sampled = Control.flux_at waveforms.(q) (!clock -. 1e-6) in
      check_float ~eps:1e-6
        (Printf.sprintf "step %d plateau" i)
        (List.nth profile i) sampled)
    s.Schedule.steps

let test_all_algorithms_lower () =
  let device = Device.create ~seed:3 (Topology.grid 3 3) in
  let circuit = Fastsc_benchmarks.Ising.circuit ~n:9 () in
  List.iter
    (fun algorithm ->
      let s = Compile.run algorithm device circuit in
      match Control.check s (Control.lower s) with
      | Ok () -> ()
      | Error msg ->
        Alcotest.failf "%s: %s" (Compile.algorithm_to_string algorithm) msg)
    Compile.extended_algorithms

let suite =
  [
    Alcotest.test_case "lower shape" `Quick test_lower_shape;
    Alcotest.test_case "check passes" `Quick test_check_passes;
    Alcotest.test_case "idle qubit flat" `Quick test_idle_qubit_is_flat;
    Alcotest.test_case "active qubit ramps" `Quick test_active_qubit_ramps;
    Alcotest.test_case "flux_at continuity" `Quick test_flux_at_continuity;
    Alcotest.test_case "flux_at clamps" `Quick test_flux_at_clamps;
    Alcotest.test_case "check duration mismatch" `Quick test_check_detects_mismatch;
    Alcotest.test_case "check discontinuity" `Quick test_check_detects_discontinuity;
    Alcotest.test_case "matches flux profile" `Quick test_matches_flux_profile;
    Alcotest.test_case "all algorithms lower" `Quick test_all_algorithms_lower;
  ]
