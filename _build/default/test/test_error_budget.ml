open Helpers
open Fastsc_device
open Fastsc_core

let schedule () =
  let device = Device.create ~seed:2020 (Topology.grid 3 3) in
  let circuit = Fastsc_benchmarks.Ising.circuit ~n:9 () in
  Compile.run Compile.Color_dynamic device circuit

let test_structure () =
  let s = schedule () in
  let budget = Error_budget.compute s in
  check_int "one budget per step" (Schedule.depth s) (List.length budget.Error_budget.steps);
  check_int "one decoherence entry per qubit" 9
    (Array.length budget.Error_budget.decoherence_per_qubit);
  List.iteri
    (fun i sb -> check_int "indices in order" i sb.Error_budget.index)
    budget.Error_budget.steps

let test_step_sums_consistent () =
  (* folding per-step survival products reproduces the aggregate metrics *)
  let s = schedule () in
  let budget = Error_budget.compute s in
  let product select =
    List.fold_left (fun acc sb -> acc *. (1.0 -. select sb)) 1.0 budget.Error_budget.steps
  in
  check_float ~eps:1e-9 "gate error consistent"
    budget.Error_budget.totals.Schedule.gate_error
    (1.0 -. product (fun sb -> sb.Error_budget.gate_error));
  check_float ~eps:1e-9 "crosstalk consistent"
    budget.Error_budget.totals.Schedule.crosstalk_error
    (1.0 -. product (fun sb -> sb.Error_budget.crosstalk_error));
  let dec_product =
    Array.fold_left (fun acc e -> acc *. (1.0 -. e)) 1.0
      budget.Error_budget.decoherence_per_qubit
  in
  check_float ~eps:1e-9 "decoherence consistent"
    budget.Error_budget.totals.Schedule.decoherence_error (1.0 -. dec_product)

let test_hotspots_sorted () =
  let budget = Error_budget.compute (schedule ()) in
  let hot = Error_budget.hotspots ~limit:10 budget in
  check_int "limited" 10 (List.length hot);
  let rec sorted = function
    | a :: (b :: _ as rest) ->
      a.Error_budget.gate_error +. a.Error_budget.crosstalk_error
      >= b.Error_budget.gate_error +. b.Error_budget.crosstalk_error -. 1e-12
      && sorted rest
    | _ -> true
  in
  check_true "descending" (sorted hot);
  (* hotspots carry two-qubit gates, not bare 1q layers *)
  match hot with
  | worst :: _ -> check_true "worst step has a 2q gate" (worst.Error_budget.n_two_qubit >= 1)
  | [] -> Alcotest.fail "no hotspots"

let test_worst_qubit () =
  let budget = Error_budget.compute (schedule ()) in
  let q, e = Error_budget.worst_qubit budget in
  check_true "in range" (q >= 0 && q < 9);
  Array.iter (fun other -> check_true "maximal" (other <= e)) budget.Error_budget.decoherence_per_qubit

let test_pp () =
  let budget = Error_budget.compute (schedule ()) in
  let text = Format.asprintf "%a" Error_budget.pp budget in
  check_true "renders" (String.length text > 100)

let test_decoherence_model_threaded () =
  let s = schedule () in
  let standard = Error_budget.compute s in
  let combined = Error_budget.compute ~decoherence:Fastsc_noise.Decoherence.Combined s in
  check_true "combined model is milder"
    (combined.Error_budget.totals.Schedule.decoherence_error
    < standard.Error_budget.totals.Schedule.decoherence_error)

let suite =
  [
    Alcotest.test_case "structure" `Quick test_structure;
    Alcotest.test_case "step sums consistent" `Quick test_step_sums_consistent;
    Alcotest.test_case "hotspots sorted" `Quick test_hotspots_sorted;
    Alcotest.test_case "worst qubit" `Quick test_worst_qubit;
    Alcotest.test_case "pp" `Quick test_pp;
    Alcotest.test_case "decoherence model" `Quick test_decoherence_model_threaded;
  ]
