open Helpers

let grid3 = lazy (Topology.grid 3 3).Topology.graph

let test_bfs_distances () =
  let g = Lazy.force grid3 in
  let d = Paths.bfs_distances g 0 in
  check_int "self" 0 d.(0);
  check_int "adjacent" 1 d.(1);
  check_int "corner to corner" 4 d.(8)

let test_unreachable () =
  let g = Graph.of_edges 4 [ (0, 1) ] in
  let d = Paths.bfs_distances g 0 in
  check_int "unreachable is -1" (-1) d.(3)

let test_all_pairs_symmetric () =
  let g = Lazy.force grid3 in
  let d = Paths.all_pairs g in
  for u = 0 to 8 do
    for v = 0 to 8 do
      check_int "symmetric" d.(u).(v) d.(v).(u)
    done
  done

let test_shortest_path () =
  let g = Lazy.force grid3 in
  match Paths.shortest_path g 0 8 with
  | None -> Alcotest.fail "expected a path"
  | Some p ->
    check_int "length" 5 (List.length p);
    check_int "starts at src" 0 (List.hd p);
    check_int "ends at dst" 8 (List.nth p 4);
    (* consecutive vertices adjacent *)
    let rec ok = function
      | a :: (b :: _ as rest) -> Graph.mem_edge g a b && ok rest
      | _ -> true
    in
    check_true "edges valid" (ok p)

let test_shortest_path_disconnected () =
  let g = Graph.of_edges 4 [ (0, 1) ] in
  check_true "no path" (Paths.shortest_path g 0 3 = None)

let test_shortest_path_deterministic () =
  let g = Lazy.force grid3 in
  check_true "same result twice" (Paths.shortest_path g 0 8 = Paths.shortest_path g 0 8)

let test_diameter () =
  check_int "3x3 grid diameter" 4 (Paths.diameter (Lazy.force grid3));
  check_int "path diameter" 4 (Paths.diameter (Topology.path 5).Topology.graph);
  check_int "disconnected" (-1) (Paths.diameter (Graph.create 3))

let test_eccentricity () =
  let g = Lazy.force grid3 in
  check_int "center" 2 (Paths.eccentricity g 4);
  check_int "corner" 4 (Paths.eccentricity g 0)

let test_edge_distance () =
  let g = Lazy.force grid3 in
  (* edges (0,1) and (1,2) share vertex 1 *)
  check_int "sharing vertex" 0 (Paths.edge_distance g (0, 1) (1, 2));
  (* edges (0,1) and (2,5): endpoint distance 1 *)
  check_int "distance one" 1 (Paths.edge_distance g (0, 1) (2, 5));
  (* far apart: (0,1) and (7,8) *)
  check_int "far" 2 (Paths.edge_distance g (0, 1) (7, 8))

let prop_triangle_inequality =
  qcheck_case "distance triangle inequality" QCheck.(triple (int_range 0 8) (int_range 0 8) (int_range 0 8))
    (fun (a, b, c) ->
      let g = Lazy.force grid3 in
      let d = Paths.all_pairs g in
      d.(a).(c) <= d.(a).(b) + d.(b).(c))

let suite =
  [
    Alcotest.test_case "bfs distances" `Quick test_bfs_distances;
    Alcotest.test_case "unreachable" `Quick test_unreachable;
    Alcotest.test_case "all pairs symmetric" `Quick test_all_pairs_symmetric;
    Alcotest.test_case "shortest path" `Quick test_shortest_path;
    Alcotest.test_case "shortest path disconnected" `Quick test_shortest_path_disconnected;
    Alcotest.test_case "shortest path deterministic" `Quick test_shortest_path_deterministic;
    Alcotest.test_case "diameter" `Quick test_diameter;
    Alcotest.test_case "eccentricity" `Quick test_eccentricity;
    Alcotest.test_case "edge distance" `Quick test_edge_distance;
    prop_triangle_inequality;
  ]
