(* Shared assertion helpers for the test suites. *)

let check_float ?(eps = 1e-9) name expected actual =
  Alcotest.check (Alcotest.float eps) name expected actual

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let check_true name actual = check_bool name true actual

(* Re-exports of the library's own equivalence tooling (kept under the old
   helper names so the suites read naturally). *)
let equal_up_to_phase ?tol a b = Unitary.equal_up_to_phase ?tol a b

let circuit_unitary = Unitary.of_circuit

let qcheck_case ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)
