open Helpers

let sample () =
  Circuit.of_gates 3
    [
      (Gate.H, [ 0 ]);
      (Gate.Rz 0.7853981633974483, [ 1 ]);
      (Gate.Cnot, [ 0; 1 ]);
      (Gate.Iswap, [ 1; 2 ]);
      (Gate.Sqrt_iswap, [ 0; 2 ]);
      (Gate.Sdg, [ 2 ]);
    ]

let circuits_equal a b =
  Circuit.n_qubits a = Circuit.n_qubits b
  && Circuit.length a = Circuit.length b
  && Array.for_all2
       (fun x y -> Gate.equal x.Gate.gate y.Gate.gate && x.Gate.qubits = y.Gate.qubits)
       (Circuit.instructions a) (Circuit.instructions b)

let test_writer_format () =
  let text = Qasm.to_string (sample ()) in
  let has needle =
    let n = String.length needle and h = String.length text in
    let rec scan i = i + n <= h && (String.sub text i n = needle || scan (i + 1)) in
    scan 0
  in
  check_true "header" (has "OPENQASM 2.0;");
  check_true "qelib include" (has "include \"qelib1.inc\";");
  check_true "register" (has "qreg q[3];");
  check_true "cx line" (has "cx q[0], q[1];");
  check_true "iswap opaque" (has "opaque iswap a, b;");
  check_true "rz angle" (has "rz(0.78539816339744828) q[1];")

let test_roundtrip () =
  let c = sample () in
  check_true "roundtrip" (circuits_equal c (Qasm.of_string (Qasm.to_string c)))

let test_parse_minimal () =
  let c = Qasm.of_string "qreg q[2];\nh q[0];\ncx q[0], q[1];\n" in
  check_int "qubits" 2 (Circuit.n_qubits c);
  check_int "gates" 2 (Circuit.length c)

let test_parse_comments_and_blanks () =
  let c = Qasm.of_string "// a comment\n\nqreg q[1];\nx q[0]; // trailing\n" in
  check_int "one gate" 1 (Circuit.length c)

let test_parse_angle () =
  let c = Qasm.of_string "qreg q[1];\nrx(-1.5) q[0];\n" in
  match (Circuit.instructions c).(0).Gate.gate with
  | Gate.Rx t -> check_float ~eps:1e-12 "angle" (-1.5) t
  | g -> Alcotest.failf "expected rx, got %s" (Gate.name g)

let expect_parse_error text =
  try
    ignore (Qasm.of_string text);
    false
  with Qasm.Parse_error _ -> true

let test_parse_errors () =
  check_true "no qreg" (expect_parse_error "h q[0];\n");
  check_true "unknown gate" (expect_parse_error "qreg q[1];\nfrobnicate q[0];\n");
  check_true "missing semicolon" (expect_parse_error "qreg q[1];\nh q[0]\n");
  check_true "out of register" (expect_parse_error "qreg q[1];\nh q[5];\n");
  check_true "operand count" (expect_parse_error "qreg q[2];\ncx q[0];\n");
  check_true "bad angle" (expect_parse_error "qreg q[1];\nrx(xyz) q[0];\n");
  check_true "param on plain gate" (expect_parse_error "qreg q[1];\nh(0.5) q[0];\n");
  check_true "missing param" (expect_parse_error "qreg q[1];\nrx q[0];\n");
  check_true "double qreg" (expect_parse_error "qreg q[1];\nqreg q[2];\n")

let test_roundtrip_preserves_semantics () =
  let c = sample () in
  let c' = Qasm.of_string (Qasm.to_string c) in
  check_true "unitaries match" (equal_up_to_phase (circuit_unitary c') (circuit_unitary c))

let all_gate_circuit () =
  Circuit.of_gates 2
    [
      (Gate.I, [ 0 ]); (Gate.X, [ 0 ]); (Gate.Y, [ 0 ]); (Gate.Z, [ 0 ]); (Gate.H, [ 0 ]);
      (Gate.S, [ 0 ]); (Gate.Sdg, [ 0 ]); (Gate.T, [ 0 ]); (Gate.Tdg, [ 0 ]);
      (Gate.Sx, [ 0 ]); (Gate.Sy, [ 0 ]); (Gate.Sw, [ 0 ]);
      (Gate.Rx 0.1, [ 0 ]); (Gate.Ry (-2.3), [ 1 ]); (Gate.Rz 3.0, [ 1 ]);
      (Gate.Cz, [ 0; 1 ]); (Gate.Iswap, [ 0; 1 ]); (Gate.Sqrt_iswap, [ 1; 0 ]);
      (Gate.Cnot, [ 1; 0 ]); (Gate.Swap, [ 0; 1 ]);
    ]

let test_every_gate_roundtrips () =
  let c = all_gate_circuit () in
  check_true "all gates" (circuits_equal c (Qasm.of_string (Qasm.to_string c)))

let prop_random_roundtrip =
  qcheck_case ~count:50 "random circuits roundtrip" QCheck.(int_range 1 100_000) (fun seed ->
      let rng = Rng.create seed in
      let b = Circuit.builder 4 in
      for _ = 1 to 20 do
        match Rng.int rng 5 with
        | 0 -> Circuit.add b Gate.H [ Rng.int rng 4 ]
        | 1 -> Circuit.add b (Gate.Rz (Rng.uniform rng (-6.0) 6.0)) [ Rng.int rng 4 ]
        | 2 -> Circuit.add b (Gate.Rx (Rng.uniform rng (-6.0) 6.0)) [ Rng.int rng 4 ]
        | 3 ->
          let a = Rng.int rng 4 in
          Circuit.add b Gate.Cz [ a; (a + 1 + Rng.int rng 3) mod 4 ]
        | _ ->
          let a = Rng.int rng 4 in
          Circuit.add b Gate.Cnot [ a; (a + 1 + Rng.int rng 3) mod 4 ]
      done;
      let c = Circuit.finish b in
      circuits_equal c (Qasm.of_string (Qasm.to_string c)))

let suite =
  [
    Alcotest.test_case "writer format" `Quick test_writer_format;
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "parse minimal" `Quick test_parse_minimal;
    Alcotest.test_case "comments and blanks" `Quick test_parse_comments_and_blanks;
    Alcotest.test_case "parse angle" `Quick test_parse_angle;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "semantics preserved" `Quick test_roundtrip_preserves_semantics;
    Alcotest.test_case "every gate roundtrips" `Quick test_every_gate_roundtrips;
    prop_random_roundtrip;
  ]
