open Helpers

let test_exchange_unitary_limits () =
  let u0 = Noisy_sim.exchange_unitary 0.0 in
  check_true "theta=0 is identity" (Matrix.approx_equal u0 (Matrix.identity 4));
  let u_full = Noisy_sim.exchange_unitary (Float.pi /. 2.0) in
  check_true "theta=pi/2 is iswap" (Matrix.approx_equal u_full (Gate.unitary Gate.Iswap));
  check_true "always unitary" (Matrix.is_unitary (Noisy_sim.exchange_unitary 0.37))

let test_noise_free_trajectory_matches_ideal () =
  let steps =
    [
      [ Noisy_sim.Unitary (Gate.H, [ 0 ]) ];
      [ Noisy_sim.Unitary (Gate.Cnot, [ 0; 1 ]) ];
    ]
  in
  let rng = Rng.create 1 in
  let final = Noisy_sim.run_trajectory rng ~n_qubits:2 steps in
  let ideal = Noisy_sim.ideal_of_steps ~n_qubits:2 steps in
  check_float ~eps:1e-12 "identical" 1.0 (Statevector.fidelity ideal final)

let test_partial_exchange_leaks () =
  (* |10> leaks into |01> with probability sin^2 theta *)
  let theta = 0.3 in
  let steps =
    [
      [ Noisy_sim.Unitary (Gate.X, [ 1 ]) ];
      [ Noisy_sim.Partial_exchange { a = 1; b = 0; theta } ];
    ]
  in
  let rng = Rng.create 2 in
  let final = Noisy_sim.run_trajectory rng ~n_qubits:2 steps in
  check_float ~eps:1e-9 "leak probability" (sin theta ** 2.0) (Statevector.probability final 1)

let test_pauli_noise_statistics () =
  (* X noise with p=0.3 on a |0> qubit flips it 30% of the time *)
  let steps = [ [ Noisy_sim.Pauli_noise { q = 0; p_x = 0.3; p_y = 0.0; p_z = 0.0 } ] ] in
  let rng = Rng.create 3 in
  let flips = ref 0 in
  let trials = 5000 in
  for _ = 1 to trials do
    let final = Noisy_sim.run_trajectory rng ~n_qubits:1 steps in
    if Statevector.probability final 1 > 0.5 then incr flips
  done;
  let rate = float_of_int !flips /. float_of_int trials in
  check_true "about 30%" (rate > 0.27 && rate < 0.33)

let test_average_fidelity_degrades_with_noise () =
  let mk p = [ [ Noisy_sim.Unitary (Gate.H, [ 0 ]) ];
               [ Noisy_sim.Pauli_noise { q = 0; p_x = p; p_y = 0.0; p_z = p } ] ]
  in
  let ideal = Noisy_sim.ideal_of_steps ~n_qubits:1 (mk 0.0) in
  let fid p =
    Noisy_sim.average_fidelity (Rng.create 4) ~n_qubits:1 ~ideal ~steps:(mk p) ~trials:800
  in
  let clean = fid 0.0 and noisy = fid 0.2 and noisier = fid 0.4 in
  check_float ~eps:1e-9 "no noise = 1" 1.0 clean;
  check_true "fidelity decreases" (noisy > noisier && clean > noisy)

let test_average_fidelity_validation () =
  let ideal = Noisy_sim.ideal_of_steps ~n_qubits:1 [] in
  Alcotest.check_raises "trials"
    (Invalid_argument "Noisy_sim.average_fidelity: trials must be positive") (fun () ->
      ignore (Noisy_sim.average_fidelity (Rng.create 1) ~n_qubits:1 ~ideal ~steps:[] ~trials:0))

let test_crosstalk_error_matches_eq6 () =
  (* the microscopic simulation reproduces the paper's eq 6 rate: a spectator
     pair detuned by delta for time t suffers sin^2(2 pi g' t) leakage *)
  let g0 = 0.03 and delta = 0.5 and t = 20.0 in
  let g' = g0 *. g0 /. delta in
  let theta = 2.0 *. Float.pi *. g' *. t in
  let steps =
    [
      [ Noisy_sim.Unitary (Gate.X, [ 0 ]) ];
      [ Noisy_sim.Partial_exchange { a = 1; b = 0; theta } ];
    ]
  in
  let rng = Rng.create 5 in
  let final = Noisy_sim.run_trajectory rng ~n_qubits:2 steps in
  check_float ~eps:1e-9 "leak = sin^2(theta)" (sin theta ** 2.0) (Statevector.probability final 2)

let suite =
  [
    Alcotest.test_case "exchange unitary limits" `Quick test_exchange_unitary_limits;
    Alcotest.test_case "noise-free trajectory" `Quick test_noise_free_trajectory_matches_ideal;
    Alcotest.test_case "partial exchange leaks" `Quick test_partial_exchange_leaks;
    Alcotest.test_case "pauli noise statistics" `Quick test_pauli_noise_statistics;
    Alcotest.test_case "fidelity degrades with noise" `Quick test_average_fidelity_degrades_with_noise;
    Alcotest.test_case "fidelity validation" `Quick test_average_fidelity_validation;
    Alcotest.test_case "crosstalk matches eq 6" `Quick test_crosstalk_error_matches_eq6;
  ]
