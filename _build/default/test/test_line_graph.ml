open Helpers

let test_path_line_graph () =
  (* line graph of a path is a shorter path *)
  let g = (Topology.path 5).Topology.graph in
  let lg, edges = Line_graph.build g in
  check_int "vertices = edges of g" 4 (Graph.n_vertices lg);
  check_int "edges" 3 (Graph.n_edges lg);
  check_int "edge array length" 4 (Array.length edges)

let test_triangle_line_graph () =
  (* line graph of a triangle is a triangle *)
  let g = Graph.of_edges 3 [ (0, 1); (1, 2); (0, 2) ] in
  let lg, _ = Line_graph.build g in
  check_int "vertices" 3 (Graph.n_vertices lg);
  check_int "edges" 3 (Graph.n_edges lg)

let test_star_line_graph () =
  (* line graph of a star K(1,4) is K4 *)
  let g = Graph.of_edges 5 [ (0, 1); (0, 2); (0, 3); (0, 4) ] in
  let lg, _ = Line_graph.build g in
  check_int "K4 edges" 6 (Graph.n_edges lg)

let test_adjacency_semantics () =
  let g = (Topology.grid 2 2).Topology.graph in
  let lg, edges = Line_graph.build g in
  Graph.iter_edges
    (fun i j ->
      let u1, v1 = edges.(i) and u2, v2 = edges.(j) in
      check_true "adjacent line vertices share an endpoint"
        (u1 = u2 || u1 = v2 || v1 = u2 || v1 = v2))
    lg

let test_vertex_of_edge () =
  let g = (Topology.path 4).Topology.graph in
  let _, edges = Line_graph.build g in
  let idx = Line_graph.vertex_of_edge edges (2, 1) in
  check_true "lookup accepts reversed order" (edges.(idx) = (1, 2));
  Alcotest.check_raises "missing edge" Not_found (fun () ->
      ignore (Line_graph.vertex_of_edge edges (0, 3)))

let prop_line_graph_size =
  (* m(L(G)) = sum over vertices of C(deg, 2) *)
  qcheck_case "line graph edge count formula" QCheck.(int_range 2 7) (fun n ->
      let g = (Topology.grid n n).Topology.graph in
      let lg, _ = Line_graph.build g in
      let expected =
        List.fold_left
          (fun acc v ->
            let d = Graph.degree g v in
            acc + (d * (d - 1) / 2))
          0 (Graph.vertices g)
      in
      Graph.n_edges lg = expected)

let suite =
  [
    Alcotest.test_case "path" `Quick test_path_line_graph;
    Alcotest.test_case "triangle" `Quick test_triangle_line_graph;
    Alcotest.test_case "star" `Quick test_star_line_graph;
    Alcotest.test_case "adjacency semantics" `Quick test_adjacency_semantics;
    Alcotest.test_case "vertex_of_edge" `Quick test_vertex_of_edge;
    prop_line_graph_size;
  ]
