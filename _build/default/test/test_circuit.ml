open Helpers

let sample () =
  Circuit.of_gates 3
    [
      (Gate.H, [ 0 ]);
      (Gate.Cnot, [ 0; 1 ]);
      (Gate.Cz, [ 1; 2 ]);
      (Gate.Rz 0.5, [ 2 ]);
      (Gate.Cnot, [ 0; 1 ]);
    ]

let test_build () =
  let c = sample () in
  check_int "qubits" 3 (Circuit.n_qubits c);
  check_int "length" 5 (Circuit.length c);
  check_int "two-qubit gates" 3 (Circuit.n_two_qubit c)

let test_instruction_ids () =
  let c = sample () in
  Array.iteri (fun i app -> check_int "id = position" i app.Gate.id) (Circuit.instructions c)

let test_validation () =
  let b = Circuit.builder 2 in
  Alcotest.check_raises "arity" (Invalid_argument "Circuit.add: cz expects 2 operand(s)")
    (fun () -> Circuit.add b Gate.Cz [ 0 ]);
  Alcotest.check_raises "range" (Invalid_argument "Circuit.add: qubit 5 out of range [0,2)")
    (fun () -> Circuit.add b Gate.H [ 5 ]);
  Alcotest.check_raises "duplicate" (Invalid_argument "Circuit.add: duplicate operand")
    (fun () -> Circuit.add b Gate.Cz [ 1; 1 ]);
  Alcotest.check_raises "zero qubits" (Invalid_argument "Circuit.builder: qubit count must be positive")
    (fun () -> ignore (Circuit.builder 0))

let test_count () =
  let c = sample () in
  check_int "cnots" 2 (Circuit.count (fun g -> g = Gate.Cnot) c);
  check_int "native" 3 (Circuit.count Gate.is_native c)

let test_two_qubit_pairs () =
  let c = sample () in
  Alcotest.(check (list (pair int int))) "pairs deduped" [ (0, 1); (1, 2) ] (Circuit.two_qubit_pairs c)

let test_map_qubits () =
  let c = sample () in
  let mapped = Circuit.map_qubits (fun q -> 2 - q) c in
  let first = (Circuit.instructions mapped).(0) in
  check_int "h moved to qubit 2" 2 first.Gate.qubits.(0);
  Alcotest.check_raises "non-injective"
    (Invalid_argument "Circuit.map_qubits: relabeling is not injective") (fun () ->
      ignore (Circuit.map_qubits (fun _ -> 0) c))

let test_append () =
  let a = Circuit.of_gates 2 [ (Gate.H, [ 0 ]) ] in
  let b = Circuit.of_gates 2 [ (Gate.X, [ 1 ]) ] in
  let ab = Circuit.append a b in
  check_int "length" 2 (Circuit.length ab);
  check_int "ids renumbered" 1 (Circuit.instructions ab).(1).Gate.id;
  let c3 = Circuit.of_gates 3 [] in
  Alcotest.check_raises "mismatch" (Invalid_argument "Circuit.append: qubit count mismatch")
    (fun () -> ignore (Circuit.append a c3))

let test_concat_gates () =
  let c = Circuit.of_gates 2 [ (Gate.H, [ 0 ]) ] in
  let c' = Circuit.concat_gates c [ (Gate.Cz, [ 0; 1 ]); (Gate.X, [ 1 ]) ] in
  check_int "length" 3 (Circuit.length c');
  check_int "original unchanged" 1 (Circuit.length c)

let test_pp_smoke () =
  let s = Format.asprintf "%a" Circuit.pp (sample ()) in
  check_true "mentions cz" (String.length s > 0 && String.sub s 0 1 = "h")

let prop_of_gates_roundtrip =
  qcheck_case "instructions match inputs" QCheck.(int_range 1 30) (fun n_gates ->
      let gates = List.init n_gates (fun i -> (Gate.Rz (float_of_int i), [ i mod 4 ])) in
      let c = Circuit.of_gates 4 gates in
      Circuit.length c = n_gates
      && Array.for_all
           (fun app -> Gate.equal app.Gate.gate (Gate.Rz (float_of_int app.Gate.id)))
           (Circuit.instructions c))

let suite =
  [
    Alcotest.test_case "build" `Quick test_build;
    Alcotest.test_case "instruction ids" `Quick test_instruction_ids;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "count" `Quick test_count;
    Alcotest.test_case "two qubit pairs" `Quick test_two_qubit_pairs;
    Alcotest.test_case "map qubits" `Quick test_map_qubits;
    Alcotest.test_case "append" `Quick test_append;
    Alcotest.test_case "concat gates" `Quick test_concat_gates;
    Alcotest.test_case "pp smoke" `Quick test_pp_smoke;
    prop_of_gates_roundtrip;
  ]
