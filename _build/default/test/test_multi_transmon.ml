open Helpers

let pair ?(omega_a = 6.0) ?(omega_b = 6.0) ?(g = 0.03) () =
  {
    Multi_transmon.freqs = [| omega_a; omega_b |];
    alphas = [| -0.2; -0.2 |];
    couplings = [ (0, 1, g) ];
  }

let test_indexing () =
  let spec = pair () in
  check_int "dimension" 9 (Multi_transmon.dimension spec);
  check_int "index of |21>" (2 + (1 * 3)) (Multi_transmon.basis_index spec [| 2; 1 |]);
  Alcotest.(check (array int)) "roundtrip" [| 2; 1 |]
    (Multi_transmon.levels_of_index spec (Multi_transmon.basis_index spec [| 2; 1 |]))

let test_validation () =
  let bad = { (pair ()) with Multi_transmon.couplings = [ (0, 5, 0.1) ] } in
  check_true "bad coupling"
    (try
       ignore (Multi_transmon.dimension bad);
       false
     with Invalid_argument _ -> true)

let test_hamiltonian_hermitian_action () =
  (* <phi|H psi> = conj(<psi|H phi>) on random vectors *)
  let spec = pair ~omega_a:6.1 () in
  let rng = Rng.create 4 in
  let random_state () =
    Array.init 9 (fun _ -> Complex_ext.make (Rng.gaussian rng) (Rng.gaussian rng))
  in
  let phi = random_state () and psi = random_state () in
  let dot a b =
    Array.to_list (Array.mapi (fun i x -> Complex.mul (Complex.conj x) b.(i)) a)
    |> List.fold_left Complex.add Complex.zero
  in
  let lhs = dot phi (Multi_transmon.apply_hamiltonian spec psi) in
  let rhs = Complex.conj (dot psi (Multi_transmon.apply_hamiltonian spec phi)) in
  check_true "hermitian" (Complex_ext.approx_equal ~tol:1e-9 lhs rhs)

let test_matches_coupled_pair_resonant () =
  (* RK4 at qutrit level vs exact eigen-evolution of Coupled_pair *)
  let g = 0.03 in
  let spec = pair ~g () in
  let t_swap = Coupled_pair.iswap_time ~g in
  let p =
    Multi_transmon.transfer_probability spec ~from_levels:[| 0; 1 |] ~to_levels:[| 1; 0 |]
      ~t:t_swap
  in
  check_float ~eps:1e-4 "full exchange" 1.0 p;
  let p_half =
    Multi_transmon.transfer_probability spec ~from_levels:[| 0; 1 |] ~to_levels:[| 1; 0 |]
      ~t:(Coupled_pair.sqrt_iswap_time ~g)
  in
  check_float ~eps:1e-4 "half exchange" 0.5 p_half

let test_matches_coupled_pair_detuned () =
  let g = 0.03 and omega_a = 6.08 in
  let spec = pair ~omega_a ~g () in
  let h =
    Coupled_pair.hamiltonian
      { Coupled_pair.omega_a; omega_b = 6.0; alpha_a = -0.2; alpha_b = -0.2; g }
  in
  let idx = Coupled_pair.state_index ~levels:3 in
  List.iter
    (fun t ->
      let exact = Evolution.transition_probability h ~src:(idx 0 1) ~dst:(idx 1 0) ~t in
      (* Coupled_pair indexes |la lb>, Multi_transmon levels are [|a; b|] *)
      let rk4 =
        Multi_transmon.transfer_probability spec ~from_levels:[| 0; 1 |]
          ~to_levels:[| 1; 0 |] ~t
      in
      check_float ~eps:1e-3 (Printf.sprintf "detuned t=%.0f" t) exact rk4)
    [ 3.0; 8.0; 15.0 ]

let test_cz_resonance_leakage_channel () =
  (* |11> <-> |20> at the CZ resonance: qutrit physics invisible to qubits *)
  let g = 0.03 in
  let spec = pair ~omega_a:5.8 ~omega_b:6.0 ~g () in
  (* omega_a + alpha_a = 5.6 ... CZ condition is omega_b = omega_a - alpha:
     5.8 + (-0.2) gives |2 0> energy 2*5.8-0.2 = 11.4 vs |11| = 11.8: detuned.
     use omega_a = 6.2: |20> = 2*6.2 - 0.2 = 12.2 = |11> = 6.2 + 6.0. *)
  ignore spec;
  let spec = pair ~omega_a:6.2 ~omega_b:6.0 ~g () in
  let t_transfer = 1.0 /. (4.0 *. sqrt 2.0 *. g) in
  let p =
    Multi_transmon.transfer_probability spec ~from_levels:[| 1; 1 |] ~to_levels:[| 2; 0 |]
      ~t:t_transfer
  in
  check_true "strong transfer into |20>" (p > 0.9);
  (* and this is pure leakage *)
  let psi =
    Multi_transmon.evolve spec (Multi_transmon.basis_state spec [| 1; 1 |]) ~t:t_transfer
  in
  check_true "leakage detected" (Multi_transmon.leakage spec psi > 0.9)

let test_three_transmon_spectator () =
  (* chain a-b-c: gate pair (a,b) on resonance, spectator c detuned;
     spectator pickup stays below the far-detuned envelope *)
  let spec =
    {
      Multi_transmon.freqs = [| 6.5; 6.5; 5.2 |];
      alphas = [| -0.2; -0.2; -0.2 |];
      couplings = [ (0, 1, 0.03); (1, 2, 0.03) ];
    }
  in
  let t_swap = Coupled_pair.iswap_time ~g:0.03 in
  let psi =
    Multi_transmon.evolve spec (Multi_transmon.basis_state spec [| 0; 1; 0 |]) ~t:t_swap
  in
  (* intended transfer still dominates *)
  check_true "intended transfer"
    (Multi_transmon.population psi (Multi_transmon.basis_index spec [| 1; 0; 0 |]) > 0.95);
  (* spectator stays quiet *)
  let spectator_excited =
    Multi_transmon.subspace_population spec psi (fun levels -> levels.(2) > 0)
  in
  check_true "spectator below envelope"
    (spectator_excited < Fastsc_noise.Crosstalk.transfer_envelope ~g:0.03 ~delta:1.3 +. 0.01)

let test_resonant_spectator_steals () =
  (* same chain but the spectator is parked ON the interaction frequency:
     the microscopic origin of the paper's Fig 6 collision *)
  let spec =
    {
      Multi_transmon.freqs = [| 6.5; 6.5; 6.5 |];
      alphas = [| -0.2; -0.2; -0.2 |];
      couplings = [ (0, 1, 0.03); (1, 2, 0.03) ];
    }
  in
  let t_swap = Coupled_pair.iswap_time ~g:0.03 in
  let psi =
    Multi_transmon.evolve spec (Multi_transmon.basis_state spec [| 0; 1; 0 |]) ~t:t_swap
  in
  let stolen = Multi_transmon.subspace_population spec psi (fun levels -> levels.(2) > 0) in
  check_true "resonant spectator steals population" (stolen > 0.2)

let test_evolution_preserves_norm_and_excitation () =
  let spec = pair ~omega_a:6.3 () in
  let psi = Multi_transmon.evolve spec (Multi_transmon.basis_state spec [| 1; 1 |]) ~t:23.0 in
  let norm = Array.fold_left (fun acc z -> acc +. Complex_ext.norm2 z) 0.0 psi in
  check_float ~eps:1e-9 "normalized" 1.0 norm;
  (* exchange conserves total excitation number: only N=2 states populated *)
  let wrong_sector =
    Multi_transmon.subspace_population spec psi (fun levels ->
        levels.(0) + levels.(1) <> 2)
  in
  check_float ~eps:1e-6 "number conserved" 0.0 wrong_sector

let test_dt_convergence () =
  let spec = pair ~omega_a:6.05 () in
  let p dt =
    Multi_transmon.transfer_probability ~dt spec ~from_levels:[| 0; 1 |] ~to_levels:[| 1; 0 |]
      ~t:10.0
  in
  check_float ~eps:1e-4 "halving dt agrees" (p 0.01) (p 0.005)

let suite =
  [
    Alcotest.test_case "indexing" `Quick test_indexing;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "hermitian action" `Quick test_hamiltonian_hermitian_action;
    Alcotest.test_case "matches exact resonant" `Quick test_matches_coupled_pair_resonant;
    Alcotest.test_case "matches exact detuned" `Quick test_matches_coupled_pair_detuned;
    Alcotest.test_case "cz leakage channel" `Quick test_cz_resonance_leakage_channel;
    Alcotest.test_case "detuned spectator quiet" `Quick test_three_transmon_spectator;
    Alcotest.test_case "resonant spectator steals" `Quick test_resonant_spectator_steals;
    Alcotest.test_case "norm and number conserved" `Quick test_evolution_preserves_norm_and_excitation;
    Alcotest.test_case "dt convergence" `Quick test_dt_convergence;
  ]
