open Helpers

let test_of_circuit_is_unitary () =
  let c = Circuit.of_gates 3 [ (Gate.H, [ 0 ]); (Gate.Cnot, [ 0; 1 ]); (Gate.T, [ 2 ]) ] in
  check_true "unitary" (Matrix.is_unitary ~tol:1e-9 (Unitary.of_circuit c))

let test_of_gate_embedding () =
  (* X on qubit 1 of a 2-qubit register = X (x) I in our bit order *)
  let u = Unitary.of_gate Gate.X [ 1 ] ~n_qubits:2 in
  let expected = Matrix.kron (Gate.unitary Gate.X) (Matrix.identity 2) in
  check_true "embedded" (Matrix.approx_equal ~tol:1e-9 u expected)

let test_global_phase_detection () =
  let a = Gate.unitary Gate.H in
  let b = Matrix.scale (Complex_ext.exp_i 0.7) a in
  (match Unitary.global_phase_between a b with
  | Some p -> check_true "phase found" (Complex_ext.approx_equal ~tol:1e-9 p (Complex_ext.exp_i 0.7))
  | None -> Alcotest.fail "expected a phase");
  check_true "different operators rejected"
    (Unitary.global_phase_between a (Gate.unitary Gate.X) = None)

let test_equivalent () =
  let a = Circuit.of_gates 2 [ (Gate.Cnot, [ 0; 1 ]) ] in
  let b = Circuit.of_gates 2 (Decompose.cnot_via_cz 0 1) in
  check_true "equivalent decomposition" (Unitary.equivalent a b);
  let c = Circuit.of_gates 2 [ (Gate.Swap, [ 0; 1 ]) ] in
  check_true "different circuits" (not (Unitary.equivalent a c));
  let d = Circuit.of_gates 3 [] in
  check_true "size mismatch raises"
    (try
       ignore (Unitary.equivalent a d);
       false
     with Invalid_argument _ -> true)

let prop_phase_invariance =
  qcheck_case "scaling by any phase preserves equivalence" QCheck.(float_range (-3.14) 3.14)
    (fun theta ->
      let u = Unitary.of_circuit (Circuit.of_gates 2 [ (Gate.Iswap, [ 0; 1 ]) ]) in
      Unitary.equal_up_to_phase u (Matrix.scale (Complex_ext.exp_i theta) u))

let suite =
  [
    Alcotest.test_case "of_circuit unitary" `Quick test_of_circuit_is_unitary;
    Alcotest.test_case "of_gate embedding" `Quick test_of_gate_embedding;
    Alcotest.test_case "global phase" `Quick test_global_phase_detection;
    Alcotest.test_case "equivalent" `Quick test_equivalent;
    prop_phase_invariance;
  ]
