open Helpers

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check_true "same stream" (Rng.int64 a = Rng.int64 b)
  done

let test_copy_independent () =
  let a = Rng.create 7 in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  check_true "copy continues the stream" (Rng.int64 a = Rng.int64 b);
  ignore (Rng.int64 a);
  (* b is one draw behind now; drawing from b must not affect a *)
  let a_next = Rng.int64 (Rng.copy a) in
  ignore (Rng.int64 b);
  check_true "streams are independent" (Rng.int64 a = a_next)

let test_split_differs () =
  let parent = Rng.create 3 in
  let child = Rng.split parent in
  let xs = List.init 20 (fun _ -> Rng.int64 parent) in
  let ys = List.init 20 (fun _ -> Rng.int64 child) in
  check_true "split stream differs from parent" (xs <> ys)

let test_int_bounds () =
  let rng = Rng.create 11 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    check_true "in range" (v >= 0 && v < 17)
  done

let test_int_rejects_nonpositive () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_float_range () =
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Rng.float rng in
    check_true "in [0,1)" (v >= 0.0 && v < 1.0)
  done

let test_uniform_range () =
  let rng = Rng.create 5 in
  for _ = 1 to 500 do
    let v = Rng.uniform rng 4.5 6.5 in
    check_true "in [4.5,6.5)" (v >= 4.5 && v < 6.5)
  done

let test_gaussian_moments () =
  let rng = Rng.create 2024 in
  let n = 50_000 in
  let samples = List.init n (fun _ -> Rng.gaussian ~mean:5.0 ~std:0.1 rng) in
  check_float ~eps:0.005 "mean" 5.0 (Stats.mean samples);
  check_float ~eps:0.005 "stddev" 0.1 (Stats.stddev samples)

let test_shuffle_permutation () =
  let rng = Rng.create 9 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check_true "is a permutation" (sorted = Array.init 50 Fun.id);
  check_true "actually shuffled" (arr <> Array.init 50 Fun.id)

let test_choose () =
  let rng = Rng.create 1 in
  let arr = [| 10; 20; 30 |] in
  for _ = 1 to 50 do
    check_true "chosen from array" (Array.mem (Rng.choose rng arr) arr)
  done

let test_choose_empty () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "empty" (Invalid_argument "Rng.choose: empty array") (fun () ->
      ignore (Rng.choose rng ([||] : int array)))

let test_sample () =
  let rng = Rng.create 77 in
  let xs = List.init 30 Fun.id in
  let picked = Rng.sample rng 10 xs in
  check_int "size" 10 (List.length picked);
  check_int "distinct" 10 (List.length (List.sort_uniq compare picked));
  List.iter (fun x -> check_true "element of source" (List.mem x xs)) picked;
  check_int "k >= n returns all" 30 (List.length (Rng.sample rng 50 xs))

let prop_bool_balanced =
  qcheck_case "bool is roughly balanced" QCheck.(int_range 1 1000) (fun seed ->
      let rng = Rng.create seed in
      let trues = ref 0 in
      for _ = 1 to 1000 do
        if Rng.bool rng then incr trues
      done;
      !trues > 400 && !trues < 600)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "copy independence" `Quick test_copy_independent;
    Alcotest.test_case "split differs" `Quick test_split_differs;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int rejects nonpositive" `Quick test_int_rejects_nonpositive;
    Alcotest.test_case "float range" `Quick test_float_range;
    Alcotest.test_case "uniform range" `Quick test_uniform_range;
    Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "choose" `Quick test_choose;
    Alcotest.test_case "choose empty" `Quick test_choose_empty;
    Alcotest.test_case "sample" `Quick test_sample;
    prop_bool_balanced;
  ]
