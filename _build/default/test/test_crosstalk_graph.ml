open Helpers
open Fastsc_core

let test_build_path () =
  (* path 0-1-2-3: couplings e01, e12, e23.  At d=1 all pairs are within
     reach: e01/e12 share a vertex, e01/e23 have endpoint distance 1. *)
  let g = (Topology.path 4).Topology.graph in
  let xg = Crosstalk_graph.build g in
  check_int "vertices" 3 (Graph.n_vertices xg.Crosstalk_graph.graph);
  check_int "all pairs conflict" 3 (Graph.n_edges xg.Crosstalk_graph.graph)

let test_longer_path_localized () =
  (* path of 6: e01 and e45 are far apart and must NOT conflict at d=1 *)
  let g = (Topology.path 6).Topology.graph in
  let xg = Crosstalk_graph.build g in
  let v01 = Crosstalk_graph.vertex_of_pair xg (0, 1) in
  let v45 = Crosstalk_graph.vertex_of_pair xg (4, 5) in
  check_true "distant couplings independent"
    (not (Graph.mem_edge xg.Crosstalk_graph.graph v01 v45));
  let v23 = Crosstalk_graph.vertex_of_pair xg (2, 3) in
  check_true "nearby couplings conflict" (Graph.mem_edge xg.Crosstalk_graph.graph v01 v23)

let test_distance_2_reaches_further () =
  let g = (Topology.path 6).Topology.graph in
  let xg1 = Crosstalk_graph.build ~distance:1 g in
  let xg2 = Crosstalk_graph.build ~distance:2 g in
  check_true "d=2 denser"
    (Graph.n_edges xg2.Crosstalk_graph.graph > Graph.n_edges xg1.Crosstalk_graph.graph);
  let v01 = Crosstalk_graph.vertex_of_pair xg2 (0, 1) in
  let v34 = Crosstalk_graph.vertex_of_pair xg2 (3, 4) in
  check_true "d=2 connects endpoint-distance-2 couplings"
    (Graph.mem_edge xg2.Crosstalk_graph.graph v01 v34)

let test_supergraph_of_line_graph () =
  let g = (Topology.grid 3 3).Topology.graph in
  let line, _ = Line_graph.build g in
  let xg = Crosstalk_graph.build g in
  Graph.iter_edges
    (fun u v ->
      check_true "line graph edges preserved" (Graph.mem_edge xg.Crosstalk_graph.graph u v))
    line

let test_mesh_colorable_with_8 () =
  (* the paper's Fig 7 structural result: distance-1 crosstalk graphs of 2-D
     meshes are 8-colorable *)
  List.iter
    (fun n ->
      let g = (Topology.grid n n).Topology.graph in
      let xg = Crosstalk_graph.build g in
      let coloring = Coloring.welsh_powell xg.Crosstalk_graph.graph in
      check_true
        (Printf.sprintf "%dx%d mesh within 8+slack colors" n n)
        (Coloring.n_colors coloring <= Crosstalk_graph.max_colors_mesh + 2);
      check_true "proper" (Coloring.is_proper xg.Crosstalk_graph.graph coloring))
    [ 3; 4; 5 ]

let test_mesh_chromatic_number_exactly_8 () =
  (* the stronger half of the Fig 7 claim, verified exactly: 8 is the MINIMUM
     for N x N meshes from 3x3 up *)
  List.iter
    (fun n ->
      let g = (Topology.grid n n).Topology.graph in
      let xg = Crosstalk_graph.build g in
      check_int
        (Printf.sprintf "chi of %dx%d mesh crosstalk graph" n n)
        Crosstalk_graph.max_colors_mesh
        (Coloring.chromatic_number xg.Crosstalk_graph.graph))
    [ 3; 4 ]

let test_conflict_count () =
  let g = (Topology.path 4).Topology.graph in
  let xg = Crosstalk_graph.build g in
  let v01 = Crosstalk_graph.vertex_of_pair xg (0, 1) in
  let v12 = Crosstalk_graph.vertex_of_pair xg (1, 2) in
  let v23 = Crosstalk_graph.vertex_of_pair xg (2, 3) in
  check_int "two conflicts" 2 (Crosstalk_graph.conflict_count xg v01 [ v12; v23 ]);
  check_int "self not counted" 0 (Crosstalk_graph.conflict_count xg v01 [ v01 ]);
  check_int "empty" 0 (Crosstalk_graph.conflict_count xg v01 [])

let test_active_subgraph () =
  let g = (Topology.path 5).Topology.graph in
  let xg = Crosstalk_graph.build g in
  let v01 = Crosstalk_graph.vertex_of_pair xg (0, 1) in
  let v34 = Crosstalk_graph.vertex_of_pair xg (3, 4) in
  let h = Crosstalk_graph.active_subgraph xg [ v01; v34 ] in
  check_int "no conflicts among chosen" 0 (Graph.n_edges h)

let test_validation () =
  let g = (Topology.path 3).Topology.graph in
  Alcotest.check_raises "d=0" (Invalid_argument "Crosstalk_graph.build: distance must be >= 1")
    (fun () -> ignore (Crosstalk_graph.build ~distance:0 g))

let prop_vertices_match_couplings =
  qcheck_case "one vertex per coupling" QCheck.(int_range 2 6) (fun n ->
      let g = (Topology.grid n n).Topology.graph in
      let xg = Crosstalk_graph.build g in
      Graph.n_vertices xg.Crosstalk_graph.graph = Graph.n_edges g)

let suite =
  [
    Alcotest.test_case "build path" `Quick test_build_path;
    Alcotest.test_case "localized on longer path" `Quick test_longer_path_localized;
    Alcotest.test_case "distance 2" `Quick test_distance_2_reaches_further;
    Alcotest.test_case "supergraph of line graph" `Quick test_supergraph_of_line_graph;
    Alcotest.test_case "mesh 8-colorable" `Quick test_mesh_colorable_with_8;
    Alcotest.test_case "mesh chromatic number = 8" `Quick test_mesh_chromatic_number_exactly_8;
    Alcotest.test_case "conflict count" `Quick test_conflict_count;
    Alcotest.test_case "active subgraph" `Quick test_active_subgraph;
    Alcotest.test_case "validation" `Quick test_validation;
    prop_vertices_match_couplings;
  ]
