open Helpers

let test_mean () =
  check_float "mean" 2.5 (Stats.mean [ 1.0; 2.0; 3.0; 4.0 ]);
  check_float "empty" 0.0 (Stats.mean [])

let test_geomean () =
  check_float "geomean" 4.0 (Stats.geomean [ 2.0; 8.0 ]);
  check_float "singleton" 3.0 (Stats.geomean [ 3.0 ]);
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Stats.geomean: non-positive element") (fun () ->
      ignore (Stats.geomean [ 1.0; 0.0 ]))

let test_geomean_stability () =
  (* success rates around 1e-60 must not underflow the geometric mean *)
  let xs = List.init 100 (fun _ -> 1e-60) in
  check_float ~eps:1e-65 "tiny values" 1e-60 (Stats.geomean xs)

let test_variance_stddev () =
  check_float ~eps:1e-9 "population variance" (8.0 /. 3.0) (Stats.variance [ 1.0; 3.0; 5.0 ]);
  check_float "singleton variance" 0.0 (Stats.variance [ 42.0 ]);
  check_float ~eps:1e-9 "stddev" (sqrt (8.0 /. 3.0)) (Stats.stddev [ 1.0; 3.0; 5.0 ])

let test_median_percentile () =
  check_float "odd median" 3.0 (Stats.median [ 5.0; 1.0; 3.0 ]);
  check_float "even median" 2.5 (Stats.median [ 4.0; 1.0; 2.0; 3.0 ]);
  check_float "p0" 1.0 (Stats.percentile 0.0 [ 1.0; 2.0; 3.0 ]);
  check_float "p100" 3.0 (Stats.percentile 100.0 [ 1.0; 2.0; 3.0 ]);
  check_float "p25 interpolation" 1.5 (Stats.percentile 25.0 [ 1.0; 2.0; 3.0 ])

let test_min_max () =
  let lo, hi = Stats.min_max [ 3.0; -1.0; 7.0 ] in
  check_float "min" (-1.0) lo;
  check_float "max" 7.0 hi;
  Alcotest.check_raises "empty" (Invalid_argument "Stats.min_max: empty list") (fun () ->
      ignore (Stats.min_max []))

let test_sum_kahan () =
  (* naive summation loses the small terms entirely *)
  let xs = 1.0 :: List.init 10_000 (fun _ -> 1e-16) in
  check_float ~eps:1e-18 "compensated" (1.0 +. 1e-12) (Stats.sum xs)

let test_product () =
  check_float "product" 24.0 (Stats.product [ 2.0; 3.0; 4.0 ]);
  check_float "empty product" 1.0 (Stats.product [])

let prop_mean_bounds =
  qcheck_case "mean within min/max" QCheck.(list_of_size (Gen.int_range 1 50) (float_range (-100.) 100.))
    (fun xs ->
      let m = Stats.mean xs in
      let lo, hi = Stats.min_max xs in
      m >= lo -. 1e-9 && m <= hi +. 1e-9)

let prop_geomean_le_mean =
  qcheck_case "AM-GM inequality" QCheck.(list_of_size (Gen.int_range 1 50) (float_range 0.001 100.))
    (fun xs -> Stats.geomean xs <= Stats.mean xs +. 1e-9)

let suite =
  [
    Alcotest.test_case "mean" `Quick test_mean;
    Alcotest.test_case "geomean" `Quick test_geomean;
    Alcotest.test_case "geomean stability" `Quick test_geomean_stability;
    Alcotest.test_case "variance/stddev" `Quick test_variance_stddev;
    Alcotest.test_case "median/percentile" `Quick test_median_percentile;
    Alcotest.test_case "min_max" `Quick test_min_max;
    Alcotest.test_case "kahan sum" `Quick test_sum_kahan;
    Alcotest.test_case "product" `Quick test_product;
    prop_mean_bounds;
    prop_geomean_le_mean;
  ]
