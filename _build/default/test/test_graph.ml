open Helpers

let triangle () = Graph.of_edges 3 [ (0, 1); (1, 2); (0, 2) ]

let test_create_empty () =
  let g = Graph.create 4 in
  check_int "vertices" 4 (Graph.n_vertices g);
  check_int "edges" 0 (Graph.n_edges g);
  check_true "not connected" (not (Graph.is_connected g))

let test_add_edge () =
  let g = Graph.create 3 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 0;
  (* duplicate, reversed *)
  check_int "one edge" 1 (Graph.n_edges g);
  check_true "mem both ways" (Graph.mem_edge g 0 1 && Graph.mem_edge g 1 0);
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_edge: self-loop")
    (fun () -> Graph.add_edge g 1 1)

let test_remove_edge () =
  let g = triangle () in
  Graph.remove_edge g 0 1;
  check_int "edges after removal" 2 (Graph.n_edges g);
  check_true "edge gone" (not (Graph.mem_edge g 0 1));
  Graph.remove_edge g 0 1;
  check_int "idempotent" 2 (Graph.n_edges g)

let test_neighbors_degree () =
  let g = triangle () in
  Alcotest.(check (list int)) "neighbors sorted" [ 1; 2 ] (Graph.neighbors g 0);
  check_int "degree" 2 (Graph.degree g 0);
  check_int "max degree" 2 (Graph.max_degree g)

let test_edges_canonical () =
  let g = Graph.of_edges 4 [ (3, 1); (2, 0); (1, 0) ] in
  Alcotest.(check (list (pair int int)))
    "canonical sorted" [ (0, 1); (0, 2); (1, 3) ] (Graph.edges g)

let test_copy_isolated () =
  let g = triangle () in
  let h = Graph.copy g in
  Graph.remove_edge h 0 1;
  check_true "original untouched" (Graph.mem_edge g 0 1)

let test_subgraph () =
  let g = triangle () in
  let h = Graph.subgraph g [ 0; 1 ] in
  check_int "same vertex count" 3 (Graph.n_vertices h);
  check_int "only internal edge" 1 (Graph.n_edges h);
  check_true "kept edge" (Graph.mem_edge h 0 1)

let test_connected () =
  check_true "triangle connected" (Graph.is_connected (triangle ()));
  let g = Graph.of_edges 4 [ (0, 1); (2, 3) ] in
  check_true "two components" (not (Graph.is_connected g))

let test_complement_vertices () =
  let g = Graph.create 5 in
  Alcotest.(check (list int)) "complement" [ 0; 2; 4 ] (Graph.complement_vertices g [ 1; 3 ])

let test_out_of_range () =
  let g = Graph.create 2 in
  Alcotest.check_raises "bad vertex" (Invalid_argument "Graph: vertex 5 out of range [0,2)")
    (fun () -> ignore (Graph.neighbors g 5))

let prop_handshake =
  qcheck_case "sum of degrees = 2m"
    QCheck.(pair (int_range 2 20) (list_of_size (Gen.int_range 0 60) (pair small_nat small_nat)))
    (fun (n, pairs) ->
      let g = Graph.create n in
      List.iter (fun (a, b) -> if a mod n <> b mod n then Graph.add_edge g (a mod n) (b mod n)) pairs;
      let degree_sum = List.fold_left (fun acc v -> acc + Graph.degree g v) 0 (Graph.vertices g) in
      degree_sum = 2 * Graph.n_edges g)

let prop_edges_match_mem =
  qcheck_case "edges list matches mem_edge"
    QCheck.(pair (int_range 2 15) (list_of_size (Gen.int_range 0 40) (pair small_nat small_nat)))
    (fun (n, pairs) ->
      let g = Graph.create n in
      List.iter (fun (a, b) -> if a mod n <> b mod n then Graph.add_edge g (a mod n) (b mod n)) pairs;
      List.for_all (fun (u, v) -> Graph.mem_edge g u v) (Graph.edges g)
      && List.length (Graph.edges g) = Graph.n_edges g)

let suite =
  [
    Alcotest.test_case "create empty" `Quick test_create_empty;
    Alcotest.test_case "add edge" `Quick test_add_edge;
    Alcotest.test_case "remove edge" `Quick test_remove_edge;
    Alcotest.test_case "neighbors/degree" `Quick test_neighbors_degree;
    Alcotest.test_case "edges canonical" `Quick test_edges_canonical;
    Alcotest.test_case "copy isolated" `Quick test_copy_isolated;
    Alcotest.test_case "subgraph" `Quick test_subgraph;
    Alcotest.test_case "connectivity" `Quick test_connected;
    Alcotest.test_case "complement vertices" `Quick test_complement_vertices;
    Alcotest.test_case "out of range" `Quick test_out_of_range;
    prop_handshake;
    prop_edges_match_mem;
  ]
