open Helpers

let transmon () = Transmon.create ~omega_max:7.0 ~omega_min:5.0 ()

let test_sweet_spots () =
  let t = transmon () in
  check_float ~eps:1e-9 "upper sweet spot" 7.0 (Transmon.freq_01 t ~flux:0.0);
  check_float ~eps:1e-6 "lower sweet spot" 5.0 (Transmon.freq_01 t ~flux:0.5)

let test_monotone_between_spots () =
  let t = transmon () in
  let prev = ref (Transmon.freq_01 t ~flux:0.0) in
  for k = 1 to 50 do
    let f = Transmon.freq_01 t ~flux:(0.5 *. float_of_int k /. 50.0) in
    check_true "decreasing on [0, 1/2]" (f <= !prev +. 1e-9);
    prev := f
  done

let test_periodicity () =
  let t = transmon () in
  check_float ~eps:1e-9 "period 1" (Transmon.freq_01 t ~flux:0.2) (Transmon.freq_01 t ~flux:1.2)

let test_anharmonicity () =
  let t = transmon () in
  check_float "alpha" (-0.2) (Transmon.anharmonicity t);
  check_float ~eps:1e-9 "omega12 = omega01 + alpha" (Transmon.freq_01 t ~flux:0.1 -. 0.2)
    (Transmon.freq_12 t ~flux:0.1);
  check_float ~eps:1e-9 "omega02 = 2 omega01 + alpha"
    ((2.0 *. Transmon.freq_01 t ~flux:0.1) -. 0.2)
    (Transmon.freq_02 t ~flux:0.1)

let test_flux_inverse () =
  let t = transmon () in
  List.iter
    (fun omega ->
      let flux = Transmon.flux_for_freq t omega in
      check_float ~eps:1e-6 "roundtrip" omega (Transmon.freq_01 t ~flux))
    [ 5.0; 5.5; 6.0; 6.5; 7.0 ]

let test_flux_inverse_out_of_range () =
  let t = transmon () in
  check_true "raises"
    (try
       ignore (Transmon.flux_for_freq t 8.0);
       false
     with Invalid_argument _ -> true)

let test_sensitivity_vanishes_at_sweet_spots () =
  let t = transmon () in
  let mid = Transmon.flux_sensitivity t ~flux:0.25 in
  check_true "sweet spot 0 flat" (Transmon.flux_sensitivity t ~flux:0.0 < mid /. 100.0);
  check_true "sweet spot 1/2 flat" (Transmon.flux_sensitivity t ~flux:0.5 < mid /. 100.0)

let test_create_validation () =
  check_true "omega_min >= omega_max rejected"
    (try
       ignore (Transmon.create ~omega_max:5.0 ~omega_min:6.0 ());
       false
     with Invalid_argument _ -> true)

let params ?(g = 0.03) ?(omega_a = 6.0) ?(omega_b = 6.0) () =
  { Coupled_pair.omega_a; omega_b; alpha_a = -0.2; alpha_b = -0.2; g }

let test_hamiltonian_hermitian () =
  let h = Coupled_pair.hamiltonian (params ()) in
  check_int "dim 9" 9 (Matrix.rows h);
  check_true "hermitian" (Matrix.is_hermitian h)

let test_hamiltonian_energies () =
  let p = params ~omega_a:6.0 ~omega_b:5.5 () in
  let h = Coupled_pair.hamiltonian p in
  let idx = Coupled_pair.state_index ~levels:3 in
  let e la lb = (Matrix.get h (idx la lb) (idx la lb)).Complex.re /. (2.0 *. Float.pi) in
  check_float ~eps:1e-9 "ground" 0.0 (e 0 0);
  check_float ~eps:1e-9 "|10> = omega_a" 6.0 (e 1 0);
  check_float ~eps:1e-9 "|01> = omega_b" 5.5 (e 0 1);
  (* |20> = 2 omega_a + alpha *)
  check_float ~eps:1e-9 "|20>" 11.8 (e 2 0)

let test_exchange_strength () =
  check_float ~eps:1e-12 "on resonance = g" 0.03
    (Coupled_pair.exchange_strength ~omega_a:6.0 ~omega_b:6.0 ~g:0.03);
  (* far detuned: approximately g^2 / delta *)
  let far = Coupled_pair.exchange_strength ~omega_a:7.0 ~omega_b:6.0 ~g:0.03 in
  check_float ~eps:1e-5 "dispersive limit" (0.03 ** 2.0 /. 1.0) far;
  (* symmetric in detuning sign *)
  check_float ~eps:1e-12 "symmetric" far
    (Coupled_pair.exchange_strength ~omega_a:6.0 ~omega_b:7.0 ~g:0.03)

let test_resonant_full_exchange () =
  (* on resonance, |01> fully transfers to |10> at t = 1/(4g) *)
  let p = params () in
  let h = Coupled_pair.hamiltonian p in
  let idx = Coupled_pair.state_index ~levels:3 in
  let t_swap = Coupled_pair.iswap_time ~g:0.03 in
  let prob =
    Evolution.transition_probability h ~src:(idx 0 1) ~dst:(idx 1 0) ~t:t_swap
  in
  check_float ~eps:1e-6 "full transfer" 1.0 prob;
  (* and at half that time, half transfer *)
  let prob_half =
    Evolution.transition_probability h ~src:(idx 0 1) ~dst:(idx 1 0)
      ~t:(Coupled_pair.sqrt_iswap_time ~g:0.03)
  in
  check_float ~eps:1e-6 "half transfer" 0.5 prob_half

let test_detuned_partial_exchange () =
  (* detuned by delta: max transfer = 4g^2/(4g^2 + delta^2) < 1 *)
  let g = 0.03 and delta = 0.06 in
  let p = params ~omega_a:6.06 ~omega_b:6.0 ~g () in
  let h = Coupled_pair.hamiltonian p in
  let idx = Coupled_pair.state_index ~levels:3 in
  let expected_max = 4.0 *. g *. g /. ((4.0 *. g *. g) +. (delta *. delta)) in
  let rabi = sqrt ((delta *. delta) +. (4.0 *. g *. g)) in
  let t_peak = 1.0 /. (2.0 *. rabi) in
  let prob = Evolution.transition_probability h ~src:(idx 0 1) ~dst:(idx 1 0) ~t:t_peak in
  check_float ~eps:1e-4 "detuned peak transfer" expected_max prob

let test_cz_resonance () =
  (* with omega_a = omega_b + alpha... i.e. |11> resonant with |20>:
     omega_a + omega_b = 2 omega_a + alpha_a  =>  omega_b = omega_a + alpha_a *)
  let omega_a = 6.0 in
  let omega_b = omega_a +. (-0.2) in
  let p = params ~omega_a ~omega_b () in
  let h = Coupled_pair.hamiltonian p in
  let idx = Coupled_pair.state_index ~levels:3 in
  (* transfer |11> -> |20> completes at sqrt(2) enhanced coupling *)
  let t_transfer = 1.0 /. (4.0 *. sqrt 2.0 *. 0.03) in
  let prob =
    Evolution.transition_probability h ~src:(idx 1 1) ~dst:(idx 2 0) ~t:t_transfer
  in
  check_true "strong 11-20 transfer on CZ resonance" (prob > 0.95)

let test_evolution_norm_preserved () =
  let h = Coupled_pair.hamiltonian (params ()) in
  let psi0 = Evolution.basis_state 9 4 in
  let psi = Evolution.evolve h psi0 17.3 in
  check_float ~eps:1e-8 "norm 1" 1.0 (Evolution.norm psi)

let test_transition_series_matches_pointwise () =
  let h = Coupled_pair.hamiltonian (params ()) in
  let idx = Coupled_pair.state_index ~levels:3 in
  let times = [ 0.0; 1.0; 2.5; 7.0 ] in
  let series = Evolution.transition_series h ~src:(idx 0 1) ~dst:(idx 1 0) ~times in
  List.iter
    (fun (t, p) ->
      let direct = Evolution.transition_probability h ~src:(idx 0 1) ~dst:(idx 1 0) ~t in
      check_float ~eps:1e-8 "series matches direct" direct p)
    series

let test_gate_times () =
  check_float ~eps:1e-12 "iswap" (1.0 /. 0.12) (Coupled_pair.iswap_time ~g:0.03);
  check_float ~eps:1e-12 "sqrt iswap is half" (Coupled_pair.iswap_time ~g:0.03 /. 2.0)
    (Coupled_pair.sqrt_iswap_time ~g:0.03);
  (* Appendix B: t_CZ = pi / (sqrt 2 g_angular) > t_iSWAP = pi / (2 g_angular) *)
  check_float ~eps:1e-12 "cz/iswap time ratio" (2.0 /. sqrt 2.0)
    (Coupled_pair.cz_time ~g:0.03 /. Coupled_pair.iswap_time ~g:0.03)

let prop_exchange_decreases_with_detuning =
  qcheck_case "exchange strength monotone in detuning" QCheck.(pair (float_range 0.0 1.0) (float_range 0.0 1.0))
    (fun (d1, d2) ->
      let lo = Float.min d1 d2 and hi = Float.max d1 d2 in
      Coupled_pair.exchange_strength ~omega_a:(6.0 +. hi) ~omega_b:6.0 ~g:0.03
      <= Coupled_pair.exchange_strength ~omega_a:(6.0 +. lo) ~omega_b:6.0 ~g:0.03 +. 1e-12)

let suite =
  [
    Alcotest.test_case "sweet spots" `Quick test_sweet_spots;
    Alcotest.test_case "monotone between spots" `Quick test_monotone_between_spots;
    Alcotest.test_case "periodicity" `Quick test_periodicity;
    Alcotest.test_case "anharmonicity" `Quick test_anharmonicity;
    Alcotest.test_case "flux inverse" `Quick test_flux_inverse;
    Alcotest.test_case "flux inverse out of range" `Quick test_flux_inverse_out_of_range;
    Alcotest.test_case "sensitivity at sweet spots" `Quick test_sensitivity_vanishes_at_sweet_spots;
    Alcotest.test_case "create validation" `Quick test_create_validation;
    Alcotest.test_case "hamiltonian hermitian" `Quick test_hamiltonian_hermitian;
    Alcotest.test_case "hamiltonian energies" `Quick test_hamiltonian_energies;
    Alcotest.test_case "exchange strength" `Quick test_exchange_strength;
    Alcotest.test_case "resonant full exchange" `Quick test_resonant_full_exchange;
    Alcotest.test_case "detuned partial exchange" `Quick test_detuned_partial_exchange;
    Alcotest.test_case "cz resonance" `Quick test_cz_resonance;
    Alcotest.test_case "evolution preserves norm" `Quick test_evolution_norm_preserved;
    Alcotest.test_case "transition series" `Quick test_transition_series_matches_pointwise;
    Alcotest.test_case "gate times" `Quick test_gate_times;
    prop_exchange_decreases_with_detuning;
  ]
