open Helpers

let all_gates =
  [
    Gate.I; Gate.X; Gate.Y; Gate.Z; Gate.H; Gate.S; Gate.Sdg; Gate.T; Gate.Tdg;
    Gate.Sx; Gate.Sy; Gate.Sw; Gate.Rx 0.3; Gate.Ry 1.1; Gate.Rz (-0.7);
    Gate.Cz; Gate.Iswap; Gate.Sqrt_iswap; Gate.Cnot; Gate.Swap;
  ]

let test_arity () =
  check_int "h" 1 (Gate.arity Gate.H);
  check_int "cz" 2 (Gate.arity Gate.Cz);
  check_true "two qubit" (Gate.is_two_qubit Gate.Iswap);
  check_true "single" (not (Gate.is_two_qubit (Gate.Rz 0.1)))

let test_native () =
  check_true "cz native" (Gate.is_native Gate.Cz);
  check_true "cnot not native" (not (Gate.is_native Gate.Cnot));
  check_true "swap not native" (not (Gate.is_native Gate.Swap))

let test_all_unitary () =
  List.iter
    (fun g ->
      check_true (Gate.name g ^ " unitary") (Matrix.is_unitary ~tol:1e-9 (Gate.unitary g)))
    all_gates

let test_unitary_dims () =
  List.iter
    (fun g ->
      let expected = if Gate.is_two_qubit g then 4 else 2 in
      check_int (Gate.name g ^ " dim") expected (Matrix.rows (Gate.unitary g)))
    all_gates

let test_sqrt_gates () =
  let check_square name half full =
    check_true name
      (equal_up_to_phase (Matrix.mul (Gate.unitary half) (Gate.unitary half))
         (Gate.unitary full))
  in
  check_square "sx^2 = x" Gate.Sx Gate.X;
  check_square "sy^2 = y" Gate.Sy Gate.Y;
  check_square "sqrt_iswap^2 = iswap" Gate.Sqrt_iswap Gate.Iswap

let test_sw_squares_to_w () =
  let s = 1.0 /. sqrt 2.0 in
  let w =
    Matrix.of_arrays
      [|
        [| Complex.zero; Complex_ext.make s (-.s) |];
        [| Complex_ext.make s s; Complex.zero |];
      |]
  in
  check_true "sw^2 = w"
    (equal_up_to_phase (Matrix.mul (Gate.unitary Gate.Sw) (Gate.unitary Gate.Sw)) w)

let test_paper_iswap_convention () =
  let u = Gate.unitary Gate.Iswap in
  check_true "-i on exchange"
    (Complex_ext.approx_equal (Matrix.get u 1 2) (Complex_ext.make 0.0 (-1.0)))

let test_h_via_rotations () =
  (* H = Ry(pi/2) then Z, up to phase: H = Z . Ry(pi/2)?  verify the standard
     identity H ~ Rx(pi) Ry(pi/2) *)
  let candidate = Matrix.mul (Gate.unitary (Gate.Rx Float.pi)) (Gate.unitary (Gate.Ry (Float.pi /. 2.0))) in
  check_true "h from rotations" (equal_up_to_phase candidate (Gate.unitary Gate.H))

let test_daggers () =
  List.iter
    (fun g ->
      match Gate.dagger g with
      | None -> ()
      | Some gd ->
        let product = Matrix.mul (Gate.unitary gd) (Gate.unitary g) in
        check_true
          (Gate.name g ^ " dagger")
          (equal_up_to_phase product (Matrix.identity (Matrix.rows product))))
    all_gates

let test_equal_tolerance () =
  check_true "rz angles equal" (Gate.equal (Gate.Rz 0.5) (Gate.Rz (0.5 +. 1e-13)));
  check_true "rz angles differ" (not (Gate.equal (Gate.Rz 0.5) (Gate.Rz 0.6)));
  check_true "different constructors" (not (Gate.equal Gate.X Gate.Y))

let test_names () =
  check_true "rz name" (Gate.name (Gate.Rz 0.79) = "rz(0.79)");
  check_true "sqrt_iswap name" (Gate.name Gate.Sqrt_iswap = "sqrt_iswap")

let test_s_t_relations () =
  (* T^2 = S, S^2 = Z *)
  check_true "t^2 = s"
    (equal_up_to_phase (Matrix.mul (Gate.unitary Gate.T) (Gate.unitary Gate.T)) (Gate.unitary Gate.S));
  check_true "s^2 = z"
    (equal_up_to_phase (Matrix.mul (Gate.unitary Gate.S) (Gate.unitary Gate.S)) (Gate.unitary Gate.Z))

let prop_rz_composition =
  qcheck_case "Rz(a) Rz(b) = Rz(a+b)" QCheck.(pair (float_range (-3.0) 3.0) (float_range (-3.0) 3.0))
    (fun (a, b) ->
      let lhs = Matrix.mul (Gate.unitary (Gate.Rz a)) (Gate.unitary (Gate.Rz b)) in
      equal_up_to_phase lhs (Gate.unitary (Gate.Rz (a +. b))))

let prop_rotations_unitary =
  qcheck_case "rotations are unitary" QCheck.(float_range (-10.0) 10.0) (fun theta ->
      Matrix.is_unitary ~tol:1e-9 (Gate.unitary (Gate.Rx theta))
      && Matrix.is_unitary ~tol:1e-9 (Gate.unitary (Gate.Ry theta))
      && Matrix.is_unitary ~tol:1e-9 (Gate.unitary (Gate.Rz theta)))

let suite =
  [
    Alcotest.test_case "arity" `Quick test_arity;
    Alcotest.test_case "native set" `Quick test_native;
    Alcotest.test_case "all unitary" `Quick test_all_unitary;
    Alcotest.test_case "unitary dims" `Quick test_unitary_dims;
    Alcotest.test_case "sqrt gates" `Quick test_sqrt_gates;
    Alcotest.test_case "sw squares to w" `Quick test_sw_squares_to_w;
    Alcotest.test_case "paper iswap convention" `Quick test_paper_iswap_convention;
    Alcotest.test_case "h via rotations" `Quick test_h_via_rotations;
    Alcotest.test_case "daggers" `Quick test_daggers;
    Alcotest.test_case "equal tolerance" `Quick test_equal_tolerance;
    Alcotest.test_case "names" `Quick test_names;
    Alcotest.test_case "s/t relations" `Quick test_s_t_relations;
    prop_rz_composition;
    prop_rotations_unitary;
  ]
