test/test_multi_transmon.ml: Alcotest Array Complex Complex_ext Coupled_pair Evolution Fastsc_noise Helpers List Multi_transmon Printf Rng
