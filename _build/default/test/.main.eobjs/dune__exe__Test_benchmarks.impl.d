test/test_benchmarks.ml: Alcotest Array Bv Circuit Fastsc_benchmarks Gate Graph Helpers Ising List QCheck Qaoa Qgan Rng Statevector Topology Xeb
