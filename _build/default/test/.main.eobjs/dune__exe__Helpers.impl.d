test/helpers.ml: Alcotest QCheck QCheck_alcotest Unitary
