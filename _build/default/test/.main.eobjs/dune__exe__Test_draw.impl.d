test/test_draw.ml: Alcotest Circuit Draw Gate Helpers List QCheck String
