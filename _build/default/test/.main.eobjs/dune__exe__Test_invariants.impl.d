test/test_invariants.ml: Array Circuit Compile Control Device Export Fastsc_core Fastsc_device Float Fun Gate Helpers List Partition QCheck Result Rng Schedule String Topology Unitary
