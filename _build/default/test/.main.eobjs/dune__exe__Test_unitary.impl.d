test/test_unitary.ml: Alcotest Circuit Complex_ext Decompose Gate Helpers Matrix QCheck Unitary
