test/test_density.ml: Alcotest Array Density Float Gate Helpers List Matrix Noisy_sim QCheck Rng Statevector
