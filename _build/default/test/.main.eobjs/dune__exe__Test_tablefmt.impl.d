test/test_tablefmt.ml: Alcotest Helpers List String Tablefmt
