test/test_cli.ml: Alcotest Array Circuit Filename Gate Helpers Printf Qasm String Sys
