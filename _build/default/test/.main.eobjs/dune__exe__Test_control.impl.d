test/test_control.ml: Alcotest Array Baseline_naive Circuit Compile Control Device Fastsc_benchmarks Fastsc_core Fastsc_device Float Gate Helpers List Printf Result Schedule Topology
