test/test_noise.ml: Alcotest Crosstalk Decoherence Fastsc_noise Float Gen Helpers List QCheck Success
