test/test_anneal.ml: Alcotest Anneal_dynamic Array Baseline_gmon Circuit Compile Device Fastsc_benchmarks Fastsc_core Fastsc_device Float Gate Helpers Rng Schedule Topology
