test/test_gate.ml: Alcotest Complex Complex_ext Float Gate Helpers List Matrix QCheck
