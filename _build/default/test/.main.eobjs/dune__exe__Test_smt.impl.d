test/test_smt.ml: Alcotest Array Fastsc_smt Float Helpers QCheck
