test/test_device.ml: Alcotest Device Fastsc_device Fastsc_graphlib Fastsc_physics Float Fun Gate Helpers List Partition QCheck Stats Topology
