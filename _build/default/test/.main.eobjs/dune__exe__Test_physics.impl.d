test/test_physics.ml: Alcotest Complex Coupled_pair Evolution Float Helpers List Matrix QCheck Transmon
