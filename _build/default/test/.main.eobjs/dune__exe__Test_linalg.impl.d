test/test_linalg.ml: Alcotest Array Complex Complex_ext Eig Float Helpers Matrix QCheck Rng
