test/test_statevector.ml: Alcotest Array Circuit Complex Complex_ext Float Gate Helpers QCheck Rng Statevector
