test/test_graph.ml: Alcotest Gen Graph Helpers List QCheck
