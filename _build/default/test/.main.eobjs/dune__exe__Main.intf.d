test/main.mli:
