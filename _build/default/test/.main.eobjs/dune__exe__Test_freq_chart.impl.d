test/test_freq_chart.ml: Alcotest Circuit Compile Device Fastsc_core Fastsc_device Freq_chart Gate Helpers List Schedule String Topology
