test/test_freq_alloc.ml: Alcotest Array Coloring Device Fastsc_core Fastsc_device Float Freq_alloc Graph Helpers Partition QCheck Topology
