test/test_calibration.ml: Alcotest Array Calibration Device Export Fastsc_core Fastsc_device Fastsc_physics Float Format Helpers List QCheck Result String Topology
