test/test_pending.ml: Alcotest Array Circuit Fastsc_core Gate Helpers List Option Pending QCheck Rng
