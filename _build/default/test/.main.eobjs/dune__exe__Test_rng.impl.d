test/test_rng.ml: Alcotest Array Fun Helpers List QCheck Rng Stats
