test/test_xy.ml: Alcotest Array Circuit Compile Device Fastsc_core Fastsc_device Fastsc_physics Float Gate Helpers List Matrix Optimize QCheck Qasm Schedule Statevector Topology Unitary
