test/test_leakage_audit.ml: Alcotest Circuit Compile Device Fastsc_core Fastsc_device Gate Helpers Leakage_audit List Schedule Topology
