test/test_ext_benchmarks.ml: Alcotest Circuit Complex Complex_ext Fastsc_benchmarks Fastsc_core Fastsc_device Float Gate Ghz Helpers Layers List Matrix QCheck Qft Result Statevector Topology
