test/test_qasm.ml: Alcotest Array Circuit Gate Helpers QCheck Qasm Rng String
