test/test_circuit.ml: Alcotest Array Circuit Format Gate Helpers List QCheck String
