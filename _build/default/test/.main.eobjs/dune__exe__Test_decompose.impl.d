test/test_decompose.ml: Alcotest Array Circuit Coupled_pair Decompose Format Gate Helpers List QCheck Rng
