test/test_layers.ml: Alcotest Array Circuit Fun Gate Helpers Layers List QCheck Rng
