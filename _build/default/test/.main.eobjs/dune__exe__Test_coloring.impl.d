test/test_coloring.ml: Alcotest Array Coloring Graph Helpers List QCheck Rng Topology
