test/test_noisy_sim.ml: Alcotest Float Gate Helpers Matrix Noisy_sim Rng Statevector
