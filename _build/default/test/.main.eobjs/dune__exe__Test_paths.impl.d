test/test_paths.ml: Alcotest Array Graph Helpers Lazy List Paths QCheck Topology
