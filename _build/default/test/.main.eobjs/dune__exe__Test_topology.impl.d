test/test_topology.ml: Alcotest Coloring Graph Helpers List Paths QCheck Topology
