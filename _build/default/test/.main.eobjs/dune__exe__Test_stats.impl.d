test/test_stats.ml: Alcotest Gen Helpers List QCheck Stats
