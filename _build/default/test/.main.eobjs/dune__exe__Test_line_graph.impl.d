test/test_line_graph.ml: Alcotest Array Graph Helpers Line_graph List QCheck Topology
