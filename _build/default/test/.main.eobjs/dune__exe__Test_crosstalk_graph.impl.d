test/test_crosstalk_graph.ml: Alcotest Coloring Crosstalk_graph Fastsc_core Graph Helpers Line_graph List Printf QCheck Topology
