test/test_optimize.ml: Alcotest Array Circuit Decompose Float Gate Helpers Optimize QCheck Rng
