test/test_error_budget.ml: Alcotest Array Compile Device Error_budget Fastsc_benchmarks Fastsc_core Fastsc_device Fastsc_noise Format Helpers List Schedule String Topology
