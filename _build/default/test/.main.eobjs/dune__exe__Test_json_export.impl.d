test/test_json_export.ml: Alcotest Circuit Compile Device Export Fastsc_core Fastsc_device Float Gate Gen Helpers Json QCheck Schedule String Topology
