test/test_schedule.ml: Alcotest Array Baseline_naive Circuit Device Fastsc_core Fastsc_device Fastsc_noise Float Format Gate Helpers List Noisy_sim Result Schedule Statevector String Topology
