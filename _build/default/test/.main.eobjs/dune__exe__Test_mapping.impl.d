test/test_mapping.ml: Alcotest Array Circuit Fastsc_core Fastsc_device Float Fun Gate Graph Helpers Lazy List Mapping QCheck Result Rng Statevector Topology
