open Helpers
open Fastsc_device
open Fastsc_core

let device () = Device.create ~seed:2020 (Topology.grid 3 3)

let find_2q_step schedule =
  List.find
    (fun step ->
      List.exists (fun g -> Gate.is_two_qubit g.Gate.gate) step.Schedule.gates)
    schedule.Schedule.steps

let test_colordynamic_gate_audits_clean () =
  let d = device () in
  let circuit = Circuit.of_gates 9 [ (Gate.Iswap, [ 0; 1 ]); (Gate.Iswap, [ 7; 8 ]) ] in
  let schedule = Compile.schedule_native Compile.default_options Compile.Color_dynamic d circuit in
  let step = find_2q_step schedule in
  let audits = Leakage_audit.audit_step d step in
  check_true "audited something" (audits <> []);
  List.iter
    (fun audit ->
      check_true "intended transfer high" (audit.Leakage_audit.intended_transfer > 0.9);
      check_true "spectators quiet" (audit.Leakage_audit.spectator_pickup < 0.05);
      check_true "low leakage" (audit.Leakage_audit.leakage < 0.05))
    audits

let test_naive_parallel_collision_detected () =
  (* two adjacent iSWAPs at the same frequency: the Fig 6 collision *)
  let d = device () in
  let circuit = Circuit.of_gates 9 [ (Gate.Iswap, [ 0; 1 ]); (Gate.Iswap, [ 2; 5 ]) ] in
  let naive = Compile.schedule_native Compile.default_options Compile.Naive d circuit in
  let cd = Compile.schedule_native Compile.default_options Compile.Color_dynamic d circuit in
  let worst s =
    match Leakage_audit.worst_of (Leakage_audit.audit_step d (find_2q_step s)) with
    | Some (pickup, _) -> pickup
    | None -> Alcotest.fail "no audits"
  in
  let naive_pickup = worst naive and cd_pickup = worst cd in
  check_true "naive collision visible" (naive_pickup > 0.1);
  check_true "colordynamic cleaner" (cd_pickup < naive_pickup /. 4.0)

let test_cz_round_trip () =
  let d = device () in
  let circuit = Circuit.of_gates 9 [ (Gate.Cz, [ 3; 4 ]) ] in
  let schedule = Compile.schedule_native Compile.default_options Compile.Color_dynamic d circuit in
  let step = find_2q_step schedule in
  match Leakage_audit.audit_step d step with
  | [ audit ] ->
    check_true "back to |11>" (audit.Leakage_audit.intended_transfer > 0.85);
    check_true "leakage returned" (audit.Leakage_audit.leakage < 0.15)
  | _ -> Alcotest.fail "expected exactly one audit"

let test_subsystem_capped () =
  let d = device () in
  let circuit = Circuit.of_gates 9 [ (Gate.Iswap, [ 4; 1 ]) ] in
  let schedule = Compile.schedule_native Compile.default_options Compile.Color_dynamic d circuit in
  let step = find_2q_step schedule in
  let audit =
    Leakage_audit.audit_gate ~max_spectators:2 d step
      (List.find (fun g -> Gate.is_two_qubit g.Gate.gate) step.Schedule.gates)
  in
  check_int "pair + 2 spectators" 4 (List.length audit.Leakage_audit.subsystem)

let test_audit_rejects_foreign_gate () =
  let d = device () in
  let circuit = Circuit.of_gates 9 [ (Gate.Iswap, [ 0; 1 ]) ] in
  let schedule = Compile.schedule_native Compile.default_options Compile.Color_dynamic d circuit in
  let step = find_2q_step schedule in
  let foreign = { Gate.id = 999; gate = Gate.Cz; qubits = [| 7; 8 |] } in
  check_true "foreign gate rejected"
    (try
       ignore (Leakage_audit.audit_gate d step foreign);
       false
     with Invalid_argument _ -> true)

let test_worst_of () =
  check_true "empty" (Leakage_audit.worst_of [] = None)

let suite =
  [
    Alcotest.test_case "colordynamic audits clean" `Slow test_colordynamic_gate_audits_clean;
    Alcotest.test_case "naive collision detected" `Slow test_naive_parallel_collision_detected;
    Alcotest.test_case "cz round trip" `Slow test_cz_round_trip;
    Alcotest.test_case "subsystem capped" `Quick test_subsystem_capped;
    Alcotest.test_case "foreign gate rejected" `Quick test_audit_rejects_foreign_gate;
    Alcotest.test_case "worst_of empty" `Quick test_worst_of;
  ]
