(* Diagnosing where a compiled program loses fidelity.

   A workflow the paper's tooling enables but never spells out: compile,
   split the success estimate into per-step budgets, find the hotspot, and
   then drop to the microscopic three-level Hamiltonian to see what actually
   happens physically during that step — for a crosstalk-unaware baseline
   and for ColorDynamic.

   Run with: dune exec examples/error_diagnosis.exe *)

let busiest schedule =
  List.fold_left
    (fun best step ->
      match best with
      | Some b
        when List.length b.Schedule.interacting >= List.length step.Schedule.interacting ->
        best
      | _ -> Some step)
    None schedule.Schedule.steps

let diagnose device circuit algorithm =
  Printf.printf "==== %s ====\n" (Compile.algorithm_to_string algorithm);
  let schedule = Compile.run algorithm device circuit in
  let budget = Error_budget.compute schedule in
  Format.printf "%a@." Error_budget.pp budget;
  (* microscopic look at the busiest step *)
  match busiest schedule with
  | None -> ()
  | Some step ->
    Printf.printf "microscopic audit of the busiest step (%d parallel 2q gates):\n"
      (List.length step.Schedule.interacting);
    List.iter
      (fun audit ->
        let a, b =
          match audit.Leakage_audit.gate.Gate.qubits with
          | [| a; b |] -> (a, b)
          | _ -> assert false
        in
        Printf.printf
          "  %s(%d,%d): intended %.3f, spectators stole %.3f, leakage %.4f\n"
          (Gate.name audit.Leakage_audit.gate.Gate.gate)
          a b audit.Leakage_audit.intended_transfer audit.Leakage_audit.spectator_pickup
          audit.Leakage_audit.leakage)
      (Leakage_audit.audit_step device step);
    print_newline ()

let () =
  let device = Device.create ~seed:2020 (Topology.grid 3 3) in
  let circuit =
    let classes = Baseline_gmon.edge_classes device in
    Xeb.circuit (Rng.create 7) ~graph:(Device.graph device) ~classes ~cycles:2 ()
  in
  Format.printf "%a@.@." Device.pp_summary device;
  diagnose device circuit Compile.Naive;
  diagnose device circuit Compile.Color_dynamic;
  print_endline
    "The budget shows WHERE the estimate loses probability; the audit shows WHY:\n\
     under the naive schedule, parallel gates on one frequency resonate with\n\
     their spectators and the intended transfer collapses.  ColorDynamic's\n\
     per-step coloring keeps every gate's physics clean."
