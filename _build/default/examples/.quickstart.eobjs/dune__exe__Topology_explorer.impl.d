examples/topology_explorer.ml: Circuit Color_dynamic Compile Device Graph List Mapping Paths Printf Qaoa Rng Schedule Tablefmt Topology
