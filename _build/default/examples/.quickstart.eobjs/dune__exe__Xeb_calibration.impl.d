examples/xeb_calibration.ml: Array Baseline_gmon Color_dynamic Compile Device Format List Printf Rng Schedule Tablefmt Topology Xeb
