examples/topology_explorer.mli:
