examples/quickstart.mli:
