examples/qaoa_maxcut.ml: Array Compile Device Float Format Graph List Printf Qaoa Rng Schedule Seq Statevector Tablefmt Topology
