examples/error_diagnosis.mli:
