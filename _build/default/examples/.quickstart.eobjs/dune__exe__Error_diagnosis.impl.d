examples/error_diagnosis.ml: Baseline_gmon Compile Device Error_budget Format Gate Leakage_audit List Printf Rng Schedule Topology Xeb
