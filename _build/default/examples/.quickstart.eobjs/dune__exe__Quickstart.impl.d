examples/quickstart.ml: Array Baseline_gmon Bv Circuit Compile Device Format Freq_alloc Layers Printf Rng Schedule Topology Xeb
