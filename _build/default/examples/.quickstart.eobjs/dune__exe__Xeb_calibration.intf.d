examples/xeb_calibration.mli:
