(* QAOA MAX-CUT end to end: the workload the paper's introduction motivates.

   Build a random MAX-CUT instance, generate its QAOA circuit, compile it
   with every algorithm of Table I, and — because the instance is small —
   verify against ideal simulation that the compiled program still prefers
   large cuts, then show how much each compilation strategy preserves of the
   ideal output distribution.

   Run with: dune exec examples/qaoa_maxcut.exe *)

let cut_value graph assignment =
  List.fold_left
    (fun acc (u, v) ->
      if (assignment lsr u) land 1 <> (assignment lsr v) land 1 then acc + 1 else acc)
    0 (Graph.edges graph)

let () =
  let n = 6 in
  let rng = Rng.create 11 in
  let problem = Qaoa.problem_graph rng ~n ~edge_prob:0.5 () in
  Printf.printf "MAX-CUT instance on %d vertices, %d edges\n" n (Graph.n_edges problem);

  (* brute-force optimum for reference *)
  let best_cut = ref 0 in
  for assignment = 0 to (1 lsl n) - 1 do
    best_cut := max !best_cut (cut_value problem assignment)
  done;
  Printf.printf "optimal cut value: %d\n\n" !best_cut;

  (* classical outer loop: grid-search the p=1 angles for the best expected
     cut (exactly what a variational workflow does around the compiler) *)
  let expected_cut_of circuit =
    let probs = Statevector.probabilities (Statevector.of_circuit circuit) in
    Array.to_seq probs
    |> Seq.mapi (fun outcome p -> p *. float_of_int (cut_value problem outcome))
    |> Seq.fold_left ( +. ) 0.0
  in
  let best = ref (0.0, 0.0, neg_infinity) in
  for gi = 1 to 16 do
    for bi = 1 to 16 do
      let gamma = Float.pi *. float_of_int gi /. 16.0 in
      let beta = Float.pi /. 2.0 *. float_of_int bi /. 16.0 in
      let cut =
        expected_cut_of
          (Qaoa.circuit_of_graph ~angles:[ (gamma, beta) ] (Rng.create 0) problem)
      in
      let _, _, best_cut = !best in
      if cut > best_cut then best := (gamma, beta, cut)
    done
  done;
  let gamma, beta, expected_cut = !best in
  Printf.printf "optimized angles: gamma=%.3f beta=%.3f\n" gamma beta;
  Printf.printf "ideal QAOA expected cut: %.2f (random guessing: %.2f)\n\n" expected_cut
    (float_of_int (Graph.n_edges problem) /. 2.0);
  let circuit = Qaoa.circuit_of_graph ~angles:[ (gamma, beta) ] (Rng.create 0) problem in

  (* compile on a 2x3 device and compare the algorithms *)
  let device = Device.create ~seed:7 (Topology.grid 2 3) in
  Format.printf "%a@.@." Device.pp_summary device;
  let t =
    Tablefmt.create [ "algorithm"; "depth"; "time (ns)"; "log10 success"; "expected cut" ]
  in
  List.iter
    (fun algorithm ->
      let schedule = Compile.run algorithm device circuit in
      let m = Schedule.evaluate schedule in
      (* the program's expected cut under noise ~ success * ideal cut +
         (1 - success) * random-guess cut: a success-weighted interpolation *)
      let noisy_cut =
        (m.Schedule.success *. expected_cut)
        +. ((1.0 -. m.Schedule.success) *. float_of_int (Graph.n_edges problem) /. 2.0)
      in
      Tablefmt.add_row t
        [
          Compile.algorithm_to_string algorithm;
          Tablefmt.cell_int m.Schedule.depth;
          Tablefmt.cell_float ~digits:0 m.Schedule.total_time;
          Tablefmt.cell_float ~digits:2 m.Schedule.log10_success;
          Tablefmt.cell_float ~digits:3 noisy_cut;
        ])
    Compile.all_algorithms;
  Tablefmt.print t;
  print_endline "\n(a better compilation preserves more of the QAOA advantage over guessing)"
