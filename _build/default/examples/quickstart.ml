(* Quickstart: the whole pipeline in ~40 lines.

   Fabricate a 3x3 frequency-tunable transmon device, build a
   Bernstein-Vazirani circuit, compile it with ColorDynamic, and compare the
   estimated success rate against the serialized single-frequency baseline.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. A device: 3x3 mesh of flux-tunable transmons with fabrication
     variation, seeded for reproducibility. *)
  let device = Device.create ~seed:42 (Topology.grid 3 3) in
  Format.printf "%a@.@." Device.pp_summary device;

  (* 2. A program: Bernstein-Vazirani on 9 qubits (secret = all ones). *)
  let circuit = Bv.circuit ~n:9 () in
  Printf.printf "logical circuit: %d gates (%d two-qubit), depth %d\n\n"
    (Circuit.length circuit) (Circuit.n_two_qubit circuit) (Layers.depth circuit);

  (* 3. Compile with the paper's ColorDynamic and with Baseline U
     (single interaction frequency + serialization). *)
  let compare_algorithm algorithm =
    let schedule = Compile.run algorithm device circuit in
    (match Schedule.check schedule with
    | Ok () -> ()
    | Error msg -> failwith msg);
    let m = Schedule.evaluate schedule in
    Printf.printf "%-14s  depth %3d  time %6.0f ns  log10(success) %6.2f\n"
      schedule.Schedule.algorithm m.Schedule.depth m.Schedule.total_time
      m.Schedule.log10_success;
    m.Schedule.success
  in
  let cd = compare_algorithm Compile.Color_dynamic in
  let u = compare_algorithm Compile.Uniform in
  Printf.printf "\nColorDynamic improves success by %.1fx over the serialized baseline.\n"
    (cd /. u);
  Printf.printf
    "(BV is nearly serial, so the gap is small — the advantage grows with\n\
     parallelism; try the xeb_calibration example for the stress test)\n";

  (* The same comparison on a gate-parallel workload. *)
  let classes = Baseline_gmon.edge_classes device in
  let xeb =
    Xeb.circuit (Rng.create 1) ~graph:(Device.graph device) ~classes ~cycles:5 ()
  in
  Printf.printf "\nsame device, xeb(9,5) — maximally parallel two-qubit layers:\n";
  let cd =
    (Schedule.evaluate (Compile.run Compile.Color_dynamic device xeb)).Schedule.success
  in
  let u = (Schedule.evaluate (Compile.run Compile.Uniform device xeb)).Schedule.success in
  Printf.printf "ColorDynamic %.3e vs serialized baseline %.3e: %.1fx better\n" cd u (cd /. u);

  (* 4. Peek at the frequency plan: idle (parked) frequencies per qubit. *)
  let idle = Freq_alloc.idle_per_qubit device in
  Printf.printf "\nidle frequencies (GHz):";
  Array.iteri (fun q f -> Printf.printf " q%d:%.2f" q f) idle;
  print_newline ()
