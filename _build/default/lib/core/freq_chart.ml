let symbol ?(bins = 8) schedule q step =
  let device = schedule.Schedule.device in
  let partition = Device.partition device in
  let f = step.Schedule.freqs.(q) in
  if Float.abs (f -. schedule.Schedule.idle_freqs.(q)) < 1e-9 then '.'
  else begin
    let lo = partition.Partition.interaction_lo in
    let hi = partition.Partition.interaction_hi in
    if f < lo -. 1e-9 then '!' (* exclusion-band excursion: should not happen *)
    else begin
      let ratio = (f -. lo) /. Float.max 1e-12 (hi -. lo) in
      let bin = min (bins - 1) (max 0 (int_of_float (ratio *. float_of_int bins))) in
      Char.chr (Char.code 'A' + bin)
    end
  end

let row ?bins schedule q =
  if q < 0 || q >= Device.n_qubits schedule.Schedule.device then
    invalid_arg "Freq_chart.row: qubit out of range";
  let cells =
    List.map (fun step -> String.make 1 (symbol ?bins schedule q step)) schedule.Schedule.steps
  in
  Printf.sprintf "q%-2d %s" q (String.concat "" cells)

let render ?bins schedule =
  let device = schedule.Schedule.device in
  let partition = Device.partition device in
  let rows =
    List.init (Device.n_qubits device) (fun q -> row ?bins schedule q)
  in
  let legend =
    Printf.sprintf
      "legend: '.' parked at idle; 'A'..'%c' interaction band [%.2f, %.2f] GHz (low to high)"
      (Char.chr (Char.code 'A' + Option.value bins ~default:8 - 1))
      partition.Partition.interaction_lo partition.Partition.interaction_hi
  in
  String.concat "\n" (rows @ [ legend ])
