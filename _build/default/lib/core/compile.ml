type algorithm = Naive | Gmon | Uniform | Static | Color_dynamic | Gmon_dynamic | Anneal_dynamic

let all_algorithms = [ Naive; Gmon; Uniform; Static; Color_dynamic ]

let extended_algorithms = all_algorithms @ [ Gmon_dynamic; Anneal_dynamic ]

let algorithm_to_string = function
  | Naive -> "baseline-n"
  | Gmon -> "baseline-g"
  | Uniform -> "baseline-u"
  | Static -> "baseline-s"
  | Color_dynamic -> "color-dynamic"
  | Gmon_dynamic -> "gmon-dynamic"
  | Anneal_dynamic -> "anneal-dynamic"

let algorithm_of_string = function
  | "baseline-n" | "naive" | "n" -> Some Naive
  | "baseline-g" | "gmon" | "g" -> Some Gmon
  | "baseline-u" | "uniform" | "u" -> Some Uniform
  | "baseline-s" | "static" | "s" -> Some Static
  | "color-dynamic" | "colordynamic" | "cd" -> Some Color_dynamic
  | "gmon-dynamic" | "gmondynamic" | "gd" -> Some Gmon_dynamic
  | "anneal-dynamic" | "annealdynamic" | "ad" -> Some Anneal_dynamic
  | _ -> None

type options = {
  decomposition : Decompose.strategy;
  crosstalk_distance : int;
  max_colors : int option;
  conflict_threshold : int;
  residual_coupling : float;
  placement : [ `Identity | `Degree | `Coherence | `Auto ];
  optimize : bool;
  router : [ `Greedy | `Lookahead ];
}

let default_options =
  {
    decomposition = Decompose.Hybrid;
    crosstalk_distance = 1;
    max_colors = None;
    conflict_threshold = 2;
    residual_coupling = 0.0;
    placement = `Auto;
    optimize = false;
    router = `Lookahead;
  }

let prepare options device circuit =
  let graph = Device.graph device in
  let route_with placement =
    match options.router with
    | `Greedy -> Mapping.route ~placement graph circuit
    | `Lookahead -> Mapping.route_lookahead ~placement graph circuit
  in
  let routed =
    match options.placement with
    | `Identity -> route_with (Mapping.identity_placement graph circuit)
    | `Degree -> route_with (Mapping.degree_placement graph circuit)
    | `Coherence ->
      let quality q =
        1.0 /. ((1.0 /. Device.t1 device q) +. (1.0 /. Device.t2 device q))
      in
      route_with (Mapping.quality_placement ~quality graph circuit)
    | `Auto ->
      let by_identity = route_with (Mapping.identity_placement graph circuit) in
      let by_degree = route_with (Mapping.degree_placement graph circuit) in
      if by_degree.Mapping.n_swaps < by_identity.Mapping.n_swaps then by_degree
      else by_identity
  in
  let native = Decompose.run options.decomposition routed.Mapping.circuit in
  if options.optimize then Optimize.run native else native

let schedule_native options algorithm device native =
  match algorithm with
  | Naive -> Baseline_naive.run device native
  | Gmon -> Baseline_gmon.run ~residual_coupling:options.residual_coupling device native
  | Uniform ->
    Baseline_uniform.run ~crosstalk_distance:options.crosstalk_distance device native
  | Static -> Baseline_static.run ~crosstalk_distance:options.crosstalk_distance device native
  | Color_dynamic ->
    fst
      (Color_dynamic.run ~crosstalk_distance:options.crosstalk_distance
         ~max_colors:options.max_colors ~conflict_threshold:options.conflict_threshold device
         native)
  | Gmon_dynamic ->
    fst
      (Gmon_dynamic.run ~crosstalk_distance:options.crosstalk_distance
         ~max_colors:options.max_colors ~conflict_threshold:options.conflict_threshold
         ~residual_coupling:options.residual_coupling device native)
  | Anneal_dynamic -> Anneal_dynamic.run device native

let run ?(options = default_options) algorithm device circuit =
  schedule_native options algorithm device (prepare options device circuit)

let run_with_stats ?(options = default_options) device circuit =
  let native = prepare options device circuit in
  Color_dynamic.run ~crosstalk_distance:options.crosstalk_distance
    ~max_colors:options.max_colors ~conflict_threshold:options.conflict_threshold device native
