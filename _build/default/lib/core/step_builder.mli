(** Assembling schedule steps from a gate set and an interaction-frequency
    choice (shared by all five algorithms).

    Given the gates of one time slice and a per-gate interaction frequency,
    this computes the full frequency vector: idle qubits stay parked, iSWAP
    family pairs sit together on the interaction frequency, CZ pairs are
    offset by the anharmonicity so the first operand's 1-2 ladder meets the
    second operand's 0-1 transition (paper §IV-A condition ii).  Step
    duration is the longest gate in the slice (flux-retuning overhead is
    already folded into {!Device.gate_time}). *)

val interaction_center : Device.t -> float
(** Midpoint of the interaction region — the shared frequency of the
    single-frequency baselines (N, U, G). *)

val make :
  Device.t ->
  idle_freqs:float array ->
  freq_of_gate:(Gate.application -> float) ->
  Gate.application list ->
  Schedule.step
(** Build one step.  [freq_of_gate] is consulted for two-qubit gates only.
    @raise Invalid_argument on an empty gate list (a schedule has no idle
    steps). *)
