(** ASCII frequency charts of schedules.

    One row per qubit, one column per step: a dot while the qubit is parked,
    a letter when it is driven into the interaction band (binned by
    frequency, 'A' lowest to 'H' highest), so simultaneous gates on the same
    letter are on the same color and the "frequency dance" of the schedule is
    visible at a glance — the textual analogue of the colored timelines in
    the paper's Fig 3/Fig 6 illustrations. *)

val render : ?bins:int -> Schedule.t -> string
(** [bins] (default 8) controls the letter resolution across the interaction
    band.  Includes a legend line. *)

val row : ?bins:int -> Schedule.t -> int -> string
(** One qubit's row, without the legend.
    @raise Invalid_argument if the qubit is out of range. *)
