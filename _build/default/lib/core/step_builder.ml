open Fastsc_physics

let interaction_center device =
  let partition = Device.partition device in
  (* center of the color band (the bottom |alpha| of the region is reserved
     for CZ partner qubits, cf. Freq_alloc.interaction) *)
  let lo =
    partition.Partition.interaction_lo +. (Device.params device).Device.anharmonicity
  in
  (Float.min lo partition.Partition.interaction_hi +. partition.Partition.interaction_hi)
  /. 2.0

let make device ~idle_freqs ~freq_of_gate gates =
  if gates = [] then invalid_arg "Step_builder.make: empty step";
  let freqs = Array.copy idle_freqs in
  let interacting = ref [] in
  let duration = ref 0.0 in
  List.iter
    (fun app ->
      duration := Float.max !duration (Device.gate_time device app.Gate.gate);
      match app.Gate.qubits with
      | [| a; b |] ->
        let omega = freq_of_gate app in
        (match app.Gate.gate with
        | Gate.Cz ->
          (* omega_a01 = omega_b01 + alpha_b: park b on the interaction
             frequency and a one anharmonicity below it. *)
          let alpha_b = Transmon.anharmonicity (Device.transmon device b) in
          freqs.(a) <- omega +. alpha_b;
          freqs.(b) <- omega
        | _ ->
          freqs.(a) <- omega;
          freqs.(b) <- omega);
        interacting := (a, b) :: !interacting
      | _ -> ())
    gates;
  { Schedule.gates; freqs; interacting = List.rev !interacting; duration = !duration }
