type t = {
  instrs : Gate.application array;
  crit : int array;
  queues : int Queue.t array;  (* per qubit: gate ids in program order *)
  mutable remaining : int;
}

let create circuit =
  let instrs = Circuit.instructions circuit in
  let queues = Array.init (Circuit.n_qubits circuit) (fun _ -> Queue.create ()) in
  Array.iter
    (fun app -> Array.iter (fun q -> Queue.add app.Gate.id queues.(q)) app.Gate.qubits)
    instrs;
  {
    instrs;
    crit = Layers.criticality circuit;
    queues;
    remaining = Array.length instrs;
  }

let is_empty t = t.remaining = 0

let n_remaining t = t.remaining

let is_ready t app =
  Array.for_all
    (fun q -> (not (Queue.is_empty t.queues.(q))) && Queue.peek t.queues.(q) = app.Gate.id)
    app.Gate.qubits

let ready t =
  let module ISet = Set.Make (Int) in
  let candidates =
    Array.fold_left
      (fun acc queue ->
        if Queue.is_empty queue then acc else ISet.add (Queue.peek queue) acc)
      ISet.empty t.queues
  in
  let apps =
    List.filter (fun app -> is_ready t app)
      (List.map (fun id -> t.instrs.(id)) (ISet.elements candidates))
  in
  List.sort
    (fun a b ->
      match compare t.crit.(b.Gate.id) t.crit.(a.Gate.id) with
      | 0 -> compare a.Gate.id b.Gate.id
      | c -> c)
    apps

let criticality t app = t.crit.(app.Gate.id)

let schedule t app =
  if not (is_ready t app) then
    invalid_arg
      (Printf.sprintf "Pending.schedule: gate %d is not ready (dependency violation)"
         app.Gate.id);
  Array.iter (fun q -> ignore (Queue.pop t.queues.(q))) app.Gate.qubits;
  t.remaining <- t.remaining - 1
