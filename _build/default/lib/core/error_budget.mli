(** Per-step error budgets.

    Where does a compiled program actually lose its success probability?
    This report splits the eq 4 estimate across the schedule: every step's
    gate-control and crosstalk contributions, plus the per-qubit decoherence
    over the program — so a user can see {e which} scheduling decisions cost
    the most and iterate (throttle a step's parallelism, re-place a hot
    qubit, shorten the critical path). *)

type step_budget = {
  index : int;
  duration : float;
  n_gates : int;
  n_two_qubit : int;
  gate_error : float;
  crosstalk_error : float;
}

type t = {
  steps : step_budget list;  (** In schedule order. *)
  decoherence_per_qubit : float array;
  totals : Schedule.metrics;
}

val compute :
  ?worst_case:bool ->
  ?crosstalk_distance:int ->
  ?decoherence:Decoherence.model ->
  Schedule.t -> t

val hotspots : ?limit:int -> t -> step_budget list
(** Steps ordered by combined (gate + crosstalk) error, worst first;
    [limit] defaults to 5. *)

val worst_qubit : t -> int * float
(** The qubit losing the most to decoherence.
    @raise Invalid_argument on a zero-qubit budget. *)

val pp : Format.formatter -> t -> unit
(** Render the totals, the hotspot steps and the worst qubit. *)
