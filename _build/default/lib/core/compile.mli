(** Front door of the compiler: algorithm zoo + shared pipeline
    (paper Table I, §VI-A).

    [run] takes a {e logical} circuit (arbitrary qubit pairs, CNOT/SWAP
    allowed), routes it onto the device ({!Fastsc_quantum.Mapping}),
    decomposes it into native gates ({!Fastsc_quantum.Decompose}), and
    schedules it with the selected algorithm.  All evaluation figures of the
    paper drive this entry point. *)

type algorithm =
  | Naive  (** Baseline N. *)
  | Gmon  (** Baseline G (tunable couplers). *)
  | Uniform  (** Baseline U (single frequency + serialization). *)
  | Static  (** Baseline S (static crosstalk-graph coloring). *)
  | Color_dynamic  (** This work. *)
  | Gmon_dynamic
      (** Extension (paper §VIII): ColorDynamic scheduling on tunable-coupler
          hardware. *)
  | Anneal_dynamic
      (** Extension (paper §III's [31] comparison): direct per-step frequency
          annealing, Snake-optimizer style. *)

val all_algorithms : algorithm list
(** The five algorithms of Table I (evaluation columns). *)

val extended_algorithms : algorithm list
(** Table I plus the {!Gmon_dynamic} extension. *)

val algorithm_to_string : algorithm -> string

val algorithm_of_string : string -> algorithm option

type options = {
  decomposition : Decompose.strategy;  (** Default [Hybrid] (§V-B5). *)
  crosstalk_distance : int;  (** The [d] of G_x^(d); default 1. *)
  max_colors : int option;  (** Per-step color cap (Fig 11); default none. *)
  conflict_threshold : int;  (** noise_conflict neighbour cap; default 2. *)
  residual_coupling : float;  (** Gmon coupler leakage eta (Fig 12); default 0. *)
  placement : [ `Identity | `Degree | `Coherence | `Auto ];
      (** Initial mapping heuristic; [`Auto] (default) routes with identity
          and degree placements and keeps whichever inserts fewer SWAPs —
          device-native circuits (XEB) stay in place, hub-shaped circuits
          (BV) get packed.  [`Coherence] is the variability-aware policy:
          busiest logical qubits on the best-coherence physical qubits
          (matters when the device has spare qubits). *)
  optimize : bool;
      (** Run the peephole optimizer ({!Optimize}) after decomposition;
          default false so the evaluation matches the paper's unoptimized
          pipeline (the `ablate-optimize` bench measures the benefit). *)
  router : [ `Greedy | `Lookahead ];
      (** SWAP-insertion strategy: per-gate shortest paths, or SABRE-style
          lookahead scoring (default; the `ablate-router` bench measures the
          difference). *)
}

val default_options : options

val prepare : options -> Device.t -> Circuit.t -> Circuit.t
(** Route + decompose: returns the physical native-gate circuit every
    scheduler consumes.  Exposed so ablations can share one preparation. *)

val schedule_native : options -> algorithm -> Device.t -> Circuit.t -> Schedule.t
(** Schedule an already-prepared (routed, native) circuit. *)

val run : ?options:options -> algorithm -> Device.t -> Circuit.t -> Schedule.t
(** The full pipeline. *)

val run_with_stats :
  ?options:options -> Device.t -> Circuit.t -> Schedule.t * Color_dynamic.stats
(** ColorDynamic with its per-compilation statistics (color counts for
    Fig 13). *)
