(** Microscopic audit of scheduled two-qubit gates.

    For any gate in any schedule step, this rebuilds the local physics —
    the gate pair plus its strongest spectator neighbours, all three levels
    per transmon, at the step's exact frequencies — and integrates the full
    Hamiltonian ({!Fastsc_physics.Multi_transmon}) over the gate's
    interaction window.  The result is ground truth the per-channel error
    heuristic can be checked against, including what no qubit-level model
    can see: leakage through |2>.

    This is the microscopic version of the paper's Fig 6 collision story:
    auditing a crosstalk-unaware schedule shows spectators resonantly
    stealing population, while a ColorDynamic schedule of the same circuit
    audits clean. *)

type gate_audit = {
  gate : Gate.application;
  subsystem : int list;  (** Device qubits simulated (pair first). *)
  intended_transfer : float;
      (** Population of the gate's intended outcome: the exchanged state for
          the iSWAP family, the |11> round trip for CZ. *)
  spectator_pickup : float;
      (** Population found on spectator qubits at the end of the window. *)
  leakage : float;  (** Population outside the computational subspace. *)
}

val audit_gate :
  ?max_spectators:int -> ?dt:float ->
  Device.t -> Schedule.step -> Gate.application -> gate_audit
(** Audit one two-qubit gate of the step.  [max_spectators] bounds the
    subsystem size (default 3, i.e. up to 5 simulated transmons); the
    strongest-coupled spectators are kept.
    @raise Invalid_argument if the gate is not a two-qubit gate of this
    step. *)

val audit_step :
  ?max_spectators:int -> ?dt:float -> Device.t -> Schedule.step -> gate_audit list
(** Audit every two-qubit gate in the step. *)

val worst_of : gate_audit list -> (float * float) option
(** [(max spectator pickup, max leakage)] over the audits; [None] on []. *)
