type t = {
  graph : Graph.t;
  edge_of_vertex : (int * int) array;
  distance : int;
}

let build ?(distance = 1) connectivity =
  if distance < 1 then invalid_arg "Crosstalk_graph.build: distance must be >= 1";
  let line, edge_of_vertex = Line_graph.build connectivity in
  (* Algorithm 2: beyond shared endpoints (already in the line graph), connect
     couplings whose endpoints are within [distance] of each other. *)
  let dist = Paths.all_pairs connectivity in
  let m = Array.length edge_of_vertex in
  for i = 0 to m - 1 do
    let u1, v1 = edge_of_vertex.(i) in
    for j = i + 1 to m - 1 do
      let u2, v2 = edge_of_vertex.(j) in
      let within a b = dist.(a).(b) >= 0 && dist.(a).(b) <= distance in
      if within u1 u2 || within u1 v2 || within v1 u2 || within v1 v2 then
        Graph.add_edge line i j
    done
  done;
  { graph = line; edge_of_vertex; distance }

let vertex_of_pair t pair = Line_graph.vertex_of_edge t.edge_of_vertex pair

let conflict_count t v active =
  List.fold_left
    (fun acc u -> if u <> v && Graph.mem_edge t.graph v u then acc + 1 else acc)
    0 active

let active_subgraph t active = Graph.subgraph t.graph active

let max_colors_mesh = 8
