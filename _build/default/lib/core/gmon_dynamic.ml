let run ?crosstalk_distance ?max_colors ?conflict_threshold ?(residual_coupling = 0.0)
    device circuit =
  let schedule, stats =
    Color_dynamic.run ?crosstalk_distance ?max_colors ?conflict_threshold device circuit
  in
  ( {
      schedule with
      Schedule.algorithm = "gmon-dynamic";
      coupler = Schedule.Tunable_coupler residual_coupling;
    },
    stats )
