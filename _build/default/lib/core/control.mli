(** Pulse-level lowering: from schedules to per-qubit flux waveforms.

    The last stage of the paper's compiler stack (§II-B: the compiler
    "finally outputs low-level control pulses").  Every qubit's frequency
    trajectory becomes a piecewise-linear external-flux waveform: at each
    step boundary the qubit ramps to its new operating flux within the
    device's flux-retuning window (Appendix C, ~2 ns) and holds there for
    the remainder of the step.  Consecutive holds at the same flux merge, so
    parked qubits produce a single flat segment.

    The waveform is what a control system would actually play; the [check]
    validator asserts it is physically sane (fluxes within one half flux
    quantum, durations consistent with the schedule) and [max_slew_rate]
    exposes the control-bandwidth requirement the schedule implies. *)

type segment =
  | Hold of { flux : float; duration : float }
  | Ramp of { flux_from : float; flux_to : float; duration : float }

type waveform = segment list
(** Time-ordered; durations in ns, flux in units of the flux quantum. *)

val lower : Schedule.t -> waveform array
(** One waveform per qubit.  Each qubit starts at its idle flux; per step it
    ramps (within the device's [flux_tuning_time], clipped to the step) to
    the step's flux and holds. *)

val total_duration : waveform -> float

val final_flux : waveform -> float
(** Flux at the end of the waveform.
    @raise Invalid_argument on an empty waveform. *)

val flux_at : waveform -> float -> float
(** Sample the waveform at absolute time [t] (ns); clamps beyond the ends. *)

val max_slew_rate : waveform -> float
(** Largest [|dflux/dt|] over all ramps, in flux quanta per ns; 0 for flat
    waveforms. *)

val check : Schedule.t -> waveform array -> (unit, string) result
(** Invariants: one waveform per qubit; every waveform spans exactly the
    schedule's total time; all fluxes lie in [\[0, 0.5\]]; all durations are
    non-negative; ramps are continuous with their neighbours. *)

val pp_waveform : Format.formatter -> waveform -> unit
