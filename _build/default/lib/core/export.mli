(** JSON export of compilation artifacts.

    The hand-off format between this compiler and external tooling: the full
    schedule (gates, frequencies, resonant pairs, durations per step), its
    evaluated metrics, and the lowered per-qubit flux waveforms — everything
    a control stack or a plotting script needs, in one self-describing
    document. *)

val schedule : Schedule.t -> Json.t
(** Device summary, idle frequencies, coupler model, and every step. *)

val metrics : Schedule.metrics -> Json.t

val waveforms : Control.waveform array -> Json.t

val bundle : ?include_waveforms:bool -> Schedule.t -> Json.t
(** The complete artifact: [schedule], [metrics] (evaluated with defaults)
    and, with [include_waveforms] (default true), the lowered pulses. *)

val to_string : Json.t -> string
(** Pretty-printed serialization (re-exported for callers that only use this
    module). *)
