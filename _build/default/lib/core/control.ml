open Fastsc_physics

type segment =
  | Hold of { flux : float; duration : float }
  | Ramp of { flux_from : float; flux_to : float; duration : float }

type waveform = segment list

let segment_duration = function
  | Hold { duration; _ } -> duration
  | Ramp { duration; _ } -> duration

let total_duration waveform =
  List.fold_left (fun acc s -> acc +. segment_duration s) 0.0 waveform

let segment_end_flux = function
  | Hold { flux; _ } -> flux
  | Ramp { flux_to; _ } -> flux_to

let final_flux = function
  | [] -> invalid_arg "Control.final_flux: empty waveform"
  | waveform -> segment_end_flux (List.nth waveform (List.length waveform - 1))

let lower schedule =
  let device = schedule.Schedule.device in
  let tuning = (Device.params device).Device.flux_tuning_time in
  let flux_of q freq =
    let tr = Device.transmon device q in
    let clamped = Float.max tr.Transmon.omega_min (Float.min tr.Transmon.omega_max freq) in
    Transmon.flux_for_freq tr clamped
  in
  Array.init (Device.n_qubits device) (fun q ->
      let idle_flux = flux_of q schedule.Schedule.idle_freqs.(q) in
      let reversed = ref [] in
      let current = ref idle_flux in
      List.iter
        (fun step ->
          let target = flux_of q step.Schedule.freqs.(q) in
          let duration = step.Schedule.duration in
          if Float.abs (target -. !current) < 1e-12 then begin
            (* merge consecutive holds at the same flux *)
            match !reversed with
            | Hold { flux; duration = d } :: rest when Float.abs (flux -. target) < 1e-12 ->
              reversed := Hold { flux; duration = d +. duration } :: rest
            | _ -> reversed := Hold { flux = target; duration } :: !reversed
          end
          else begin
            let ramp_time = Float.min tuning duration in
            reversed :=
              Ramp { flux_from = !current; flux_to = target; duration = ramp_time }
              :: !reversed;
            let hold_time = duration -. ramp_time in
            if hold_time > 0.0 then
              reversed := Hold { flux = target; duration = hold_time } :: !reversed
          end;
          current := target)
        schedule.Schedule.steps;
      List.rev !reversed)

let flux_at waveform t =
  match waveform with
  | [] -> invalid_arg "Control.flux_at: empty waveform"
  | first :: _ ->
    let start_flux =
      match first with Hold { flux; _ } -> flux | Ramp { flux_from; _ } -> flux_from
    in
    if t <= 0.0 then start_flux
    else begin
      let rec walk clock = function
        | [] -> final_flux waveform
        | segment :: rest ->
          let finish = clock +. segment_duration segment in
          if t <= finish then begin
            match segment with
            | Hold { flux; _ } -> flux
            | Ramp { flux_from; flux_to; duration } ->
              if duration <= 0.0 then flux_to
              else flux_from +. ((flux_to -. flux_from) *. (t -. clock) /. duration)
          end
          else walk finish rest
      in
      walk 0.0 waveform
    end

let max_slew_rate waveform =
  List.fold_left
    (fun acc segment ->
      match segment with
      | Hold _ -> acc
      | Ramp { flux_from; flux_to; duration } ->
        if duration <= 0.0 then acc
        else Float.max acc (Float.abs (flux_to -. flux_from) /. duration))
    0.0 waveform

let check schedule waveforms =
  let exception Bad of string in
  try
    let n = Device.n_qubits schedule.Schedule.device in
    if Array.length waveforms <> n then raise (Bad "waveform count mismatch");
    let expected = Schedule.total_time schedule in
    Array.iteri
      (fun q waveform ->
        let fail msg = raise (Bad (Printf.sprintf "qubit %d: %s" q msg)) in
        if Float.abs (total_duration waveform -. expected) > 1e-6 then
          fail
            (Printf.sprintf "duration %.3f does not span the schedule (%.3f)"
               (total_duration waveform) expected);
        let check_flux f =
          if f < -1e-9 || f > 0.5 +. 1e-9 then fail (Printf.sprintf "flux %.4f out of [0, 0.5]" f)
        in
        let previous_end = ref None in
        List.iter
          (fun segment ->
            if segment_duration segment < 0.0 then fail "negative duration";
            let start_flux =
              match segment with
              | Hold { flux; _ } -> flux
              | Ramp { flux_from; _ } -> flux_from
            in
            check_flux start_flux;
            check_flux (segment_end_flux segment);
            (match !previous_end with
            | Some f when Float.abs (f -. start_flux) > 1e-9 -> fail "discontinuous waveform"
            | _ -> ());
            previous_end := Some (segment_end_flux segment))
          waveform)
      waveforms;
    Ok ()
  with Bad msg -> Error msg

let pp_waveform fmt waveform =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun segment ->
      match segment with
      | Hold { flux; duration } -> Format.fprintf fmt "hold %.4f for %.1f ns@," flux duration
      | Ramp { flux_from; flux_to; duration } ->
        Format.fprintf fmt "ramp %.4f -> %.4f over %.1f ns@," flux_from flux_to duration)
    waveform;
  Format.fprintf fmt "@]"
