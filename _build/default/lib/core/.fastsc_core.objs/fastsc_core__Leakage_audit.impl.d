lib/core/leakage_audit.ml: Array Device Fastsc_physics Float Gate List Multi_transmon Schedule Transmon
