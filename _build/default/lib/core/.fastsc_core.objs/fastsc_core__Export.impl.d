lib/core/export.ml: Array Control Device Gate Graph Json List Schedule Topology
