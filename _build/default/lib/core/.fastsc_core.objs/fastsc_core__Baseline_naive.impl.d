lib/core/baseline_naive.ml: Freq_alloc Layers List Schedule Step_builder
