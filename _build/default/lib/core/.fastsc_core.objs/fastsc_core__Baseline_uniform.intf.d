lib/core/baseline_uniform.mli: Circuit Device Schedule
