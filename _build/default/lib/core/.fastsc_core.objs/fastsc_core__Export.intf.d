lib/core/export.mli: Control Json Schedule
