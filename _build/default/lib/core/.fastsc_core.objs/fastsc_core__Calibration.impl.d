lib/core/calibration.ml: Array Coloring Crosstalk_graph Device Fastsc_physics Float Format Freq_alloc Gate Graph Json List Printf Topology Transmon
