lib/core/crosstalk_graph.mli: Graph
