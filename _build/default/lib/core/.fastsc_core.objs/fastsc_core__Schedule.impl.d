lib/core/schedule.ml: Array Crosstalk Decoherence Device Fastsc_physics Fastsc_quantum Float Format Gate Graph List Printf String Success Transmon
