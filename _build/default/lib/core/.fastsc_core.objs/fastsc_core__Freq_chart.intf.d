lib/core/freq_chart.mli: Schedule
