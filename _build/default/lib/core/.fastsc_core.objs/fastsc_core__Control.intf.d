lib/core/control.mli: Format Schedule
