lib/core/baseline_gmon.ml: Array Coloring Device Freq_alloc Gate Hashtbl Line_graph List Option Pending Schedule Step_builder String Topology
