lib/core/error_budget.ml: Array Decoherence Device Format Gate List Option Schedule
