lib/core/freq_chart.ml: Array Char Device Float List Option Partition Printf Schedule String
