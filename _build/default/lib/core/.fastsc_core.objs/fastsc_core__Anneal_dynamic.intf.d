lib/core/anneal_dynamic.mli: Circuit Device Schedule
