lib/core/step_builder.mli: Device Gate Schedule
