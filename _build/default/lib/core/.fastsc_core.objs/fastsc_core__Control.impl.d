lib/core/control.ml: Array Device Fastsc_physics Float Format List Printf Schedule Transmon
