lib/core/crosstalk_graph.ml: Array Graph Line_graph List Paths
