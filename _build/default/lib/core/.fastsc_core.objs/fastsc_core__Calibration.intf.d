lib/core/calibration.mli: Device Format Json
