lib/core/step_builder.ml: Array Device Fastsc_physics Float Gate List Partition Schedule Transmon
