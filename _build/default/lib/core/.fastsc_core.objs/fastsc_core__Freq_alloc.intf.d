lib/core/freq_alloc.mli: Coloring Device
