lib/core/leakage_audit.mli: Device Gate Schedule
