lib/core/baseline_uniform.ml: Array Crosstalk_graph Device Freq_alloc Gate List Pending Schedule Step_builder
