lib/core/gmon_dynamic.ml: Color_dynamic Schedule
