lib/core/anneal_dynamic.ml: Array Device Float Freq_alloc Gate Hashtbl List Partition Pending Rng Schedule Step_builder
