lib/core/compile.mli: Circuit Color_dynamic Decompose Device Schedule
