lib/core/baseline_gmon.mli: Circuit Device Schedule
