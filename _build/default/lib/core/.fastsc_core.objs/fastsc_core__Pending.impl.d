lib/core/pending.ml: Array Circuit Gate Int Layers List Printf Queue Set
