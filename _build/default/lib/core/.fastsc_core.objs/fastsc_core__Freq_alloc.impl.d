lib/core/freq_alloc.ml: Array Coloring Device Fastsc_smt Float Fun List Option Partition
