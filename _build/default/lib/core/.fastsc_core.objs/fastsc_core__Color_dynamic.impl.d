lib/core/color_dynamic.ml: Array Coloring Crosstalk_graph Device Freq_alloc Gate Hashtbl List Option Pending Schedule Step_builder
