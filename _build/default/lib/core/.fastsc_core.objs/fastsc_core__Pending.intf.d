lib/core/pending.mli: Circuit Gate
