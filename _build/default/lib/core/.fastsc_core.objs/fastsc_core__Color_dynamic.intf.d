lib/core/color_dynamic.mli: Circuit Coloring Device Graph Schedule
