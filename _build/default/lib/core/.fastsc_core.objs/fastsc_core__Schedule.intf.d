lib/core/schedule.mli: Decoherence Device Fastsc_quantum Format Gate
