lib/core/baseline_static.mli: Circuit Device Schedule
