lib/core/baseline_static.ml: Array Coloring Crosstalk_graph Device Freq_alloc Gate Layers List Schedule Step_builder
