lib/core/gmon_dynamic.mli: Circuit Color_dynamic Device Schedule
