lib/core/error_budget.mli: Decoherence Format Schedule
