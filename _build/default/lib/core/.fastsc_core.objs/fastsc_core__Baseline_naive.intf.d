lib/core/baseline_naive.mli: Circuit Device Schedule
