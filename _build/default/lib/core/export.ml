let float_array values = Json.List (List.map (fun v -> Json.Float v) (Array.to_list values))

let gate_json app =
  Json.Obj
    [
      ("gate", Json.String (Gate.name app.Gate.gate));
      ( "qubits",
        Json.List (List.map (fun q -> Json.Int q) (Array.to_list app.Gate.qubits)) );
    ]

let step_json step =
  Json.Obj
    [
      ("duration_ns", Json.Float step.Schedule.duration);
      ("gates", Json.List (List.map gate_json step.Schedule.gates));
      ( "interacting",
        Json.List
          (List.map
             (fun (a, b) -> Json.List [ Json.Int a; Json.Int b ])
             step.Schedule.interacting) );
      ("frequencies_ghz", float_array step.Schedule.freqs);
    ]

let coupler_json = function
  | Schedule.Fixed_coupler -> Json.String "fixed"
  | Schedule.Tunable_coupler eta ->
    Json.Obj [ ("tunable", Json.Bool true); ("residual_coupling", Json.Float eta) ]

let schedule s =
  let device = s.Schedule.device in
  let lo, hi = Device.common_range device in
  Json.Obj
    [
      ("algorithm", Json.String s.Schedule.algorithm);
      ( "device",
        Json.Obj
          [
            ("topology", Json.String (Device.topology device).Topology.name);
            ("qubits", Json.Int (Device.n_qubits device));
            ("couplings", Json.Int (Graph.n_edges (Device.graph device)));
            ("seed", Json.Int (Device.seed device));
            ("common_range_ghz", Json.List [ Json.Float lo; Json.Float hi ]);
            ("g0_ghz", Json.Float (Device.params device).Device.g0);
          ] );
      ("coupler", coupler_json s.Schedule.coupler);
      ("idle_frequencies_ghz", float_array s.Schedule.idle_freqs);
      ("steps", Json.List (List.map step_json s.Schedule.steps));
    ]

let metrics (m : Schedule.metrics) =
  Json.Obj
    [
      ("success", Json.Float m.Schedule.success);
      ("log10_success", Json.Float m.Schedule.log10_success);
      ("gate_error", Json.Float m.Schedule.gate_error);
      ("crosstalk_error", Json.Float m.Schedule.crosstalk_error);
      ("decoherence_error", Json.Float m.Schedule.decoherence_error);
      ("depth", Json.Int m.Schedule.depth);
      ("total_time_ns", Json.Float m.Schedule.total_time);
      ("n_gates", Json.Int m.Schedule.n_gates);
      ("n_two_qubit", Json.Int m.Schedule.n_two_qubit);
    ]

let segment_json = function
  | Control.Hold { flux; duration } ->
    Json.Obj [ ("hold", Json.Float flux); ("duration_ns", Json.Float duration) ]
  | Control.Ramp { flux_from; flux_to; duration } ->
    Json.Obj
      [
        ("ramp_from", Json.Float flux_from);
        ("ramp_to", Json.Float flux_to);
        ("duration_ns", Json.Float duration);
      ]

let waveforms ws =
  Json.List
    (Array.to_list
       (Array.mapi
          (fun q w ->
            Json.Obj
              [ ("qubit", Json.Int q); ("segments", Json.List (List.map segment_json w)) ])
          ws))

let bundle ?(include_waveforms = true) s =
  let base =
    [ ("schedule", schedule s); ("metrics", metrics (Schedule.evaluate s)) ]
  in
  let fields =
    if include_waveforms then base @ [ ("waveforms", waveforms (Control.lower s)) ]
    else base
  in
  Json.Obj fields

let to_string = Json.to_string ~pretty:true
