open Fastsc_physics

type gate_audit = {
  gate : Gate.application;
  subsystem : int list;
  intended_transfer : float;
  spectator_pickup : float;
  leakage : float;
}

let audit_gate ?(max_spectators = 3) ?dt device step app =
  let a, b =
    match app.Gate.qubits with
    | [| a; b |] -> (a, b)
    | _ -> invalid_arg "Leakage_audit.audit_gate: not a two-qubit gate"
  in
  if
    not
      (List.exists
         (fun other -> other.Gate.id = app.Gate.id)
         (List.filter (fun g -> Gate.is_two_qubit g.Gate.gate) step.Schedule.gates))
  then invalid_arg "Leakage_audit.audit_gate: gate is not part of this step";
  (* strongest-coupled spectators of the pair *)
  let n = Device.n_qubits device in
  let candidates = ref [] in
  for y = 0 to n - 1 do
    if y <> a && y <> b then begin
      let g = Float.max (Device.coupling device a y) (Device.coupling device b y) in
      if g > 0.0 then candidates := (g, y) :: !candidates
    end
  done;
  let spectators =
    !candidates
    |> List.sort (fun (g1, _) (g2, _) -> compare g2 g1)
    |> List.filteri (fun i _ -> i < max_spectators)
    |> List.map snd
  in
  let subsystem = a :: b :: spectators in
  let local = Array.of_list subsystem in
  let index_of q =
    let rec find i = if local.(i) = q then i else find (i + 1) in
    find 0
  in
  let spec =
    {
      Multi_transmon.freqs = Array.map (fun q -> step.Schedule.freqs.(q)) local;
      alphas = Array.map (fun q -> Transmon.anharmonicity (Device.transmon device q)) local;
      couplings =
        (let acc = ref [] in
         Array.iteri
           (fun i qi ->
             Array.iteri
               (fun j qj ->
                 if i < j then begin
                   let g = Device.coupling device qi qj in
                   if g > 0.0 then acc := (i, j, g) :: !acc
                 end)
               local)
           local;
         !acc);
    }
  in
  (* interaction window: the gate's resonance hold time *)
  let hold =
    Device.gate_time device app.Gate.gate -. (Device.params device).Device.flux_tuning_time
  in
  let zeros () = Array.make (Array.length local) 0 in
  let ia = index_of a and ib = index_of b in
  let start = zeros () in
  let target = zeros () in
  (match app.Gate.gate with
  | Gate.Cz ->
    (* |11> round trip through |20> *)
    start.(ia) <- 1;
    start.(ib) <- 1;
    target.(ia) <- 1;
    target.(ib) <- 1
  | _ ->
    (* exchange channel: |01> -> |10> (full for iSWAP, half for sqrt) *)
    start.(ib) <- 1;
    target.(ia) <- 1);
  let psi = Multi_transmon.evolve ?dt spec (Multi_transmon.basis_state spec start) ~t:hold in
  let intended_transfer =
    match app.Gate.gate with
    | Gate.Sqrt_iswap ->
      (* half exchange: credit population on either side of the pair *)
      Multi_transmon.subspace_population spec psi (fun levels ->
          levels.(ia) + levels.(ib) = 1
          && Array.for_all (fun d -> d < 2) levels
          && List.for_all (fun s -> levels.(index_of s) = 0) spectators)
    | _ -> Multi_transmon.population psi (Multi_transmon.basis_index spec target)
  in
  let spectator_pickup =
    Multi_transmon.subspace_population spec psi (fun levels ->
        List.exists (fun s -> levels.(index_of s) > 0) spectators)
  in
  {
    gate = app;
    subsystem;
    intended_transfer;
    spectator_pickup;
    leakage = Multi_transmon.leakage spec psi;
  }

let audit_step ?max_spectators ?dt device step =
  List.filter_map
    (fun app ->
      if Gate.is_two_qubit app.Gate.gate then
        Some (audit_gate ?max_spectators ?dt device step app)
      else None)
    step.Schedule.gates

let worst_of = function
  | [] -> None
  | audits ->
    Some
      (List.fold_left
         (fun (pickup, leak) audit ->
           (Float.max pickup audit.spectator_pickup, Float.max leak audit.leakage))
         (0.0, 0.0) audits)
