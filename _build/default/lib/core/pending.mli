(** Ready-gate tracking for the queueing schedulers (Algorithm 1 lines 9-16).

    All five scheduling algorithms consume the circuit through this
    structure: a gate is {e ready} once every earlier gate sharing one of its
    qubits has been scheduled.  Ready gates are served in order of
    non-increasing criticality (longest dependency chain to the end of the
    program), which is how the paper's scheduler protects the critical path
    while serializing. *)

type t

val create : Circuit.t -> t
(** Builds per-qubit queues and the criticality table for a (native-gate)
    circuit. *)

val is_empty : t -> bool
(** All gates scheduled. *)

val n_remaining : t -> int

val ready : t -> Gate.application list
(** Currently ready gates, sorted by criticality descending (ties by id
    ascending, i.e. program order). *)

val criticality : t -> Gate.application -> int

val schedule : t -> Gate.application -> unit
(** Mark a gate as executed, unblocking its successors.
    @raise Invalid_argument if the gate is not currently ready (this guards
    the schedulers against dependency violations). *)
