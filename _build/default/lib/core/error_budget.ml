type step_budget = {
  index : int;
  duration : float;
  n_gates : int;
  n_two_qubit : int;
  gate_error : float;
  crosstalk_error : float;
}

type t = {
  steps : step_budget list;
  decoherence_per_qubit : float array;
  totals : Schedule.metrics;
}

let compute ?worst_case ?crosstalk_distance ?decoherence schedule =
  let steps =
    List.mapi
      (fun index step ->
        let gate_error, crosstalk_error =
          Schedule.step_errors ?worst_case ?crosstalk_distance schedule step
        in
        {
          index;
          duration = step.Schedule.duration;
          n_gates = List.length step.Schedule.gates;
          n_two_qubit =
            List.length
              (List.filter (fun g -> Gate.is_two_qubit g.Gate.gate) step.Schedule.gates);
          gate_error;
          crosstalk_error;
        })
      schedule.Schedule.steps
  in
  let total = Schedule.total_time schedule in
  let device = schedule.Schedule.device in
  (* same default model as Schedule.evaluate (standard exponential); spare
     qubits carry no program state and lose nothing *)
  let model = Option.value decoherence ~default:Decoherence.Exponential in
  let used = Schedule.used_qubits schedule in
  let decoherence_per_qubit =
    Array.init (Device.n_qubits device) (fun q ->
        if List.mem q used then
          Decoherence.error ~model ~t1:(Device.t1 device q) ~t2:(Device.t2 device q) ~t:total ()
        else 0.0)
  in
  {
    steps;
    decoherence_per_qubit;
    totals = Schedule.evaluate ?worst_case ?crosstalk_distance ?decoherence schedule;
  }

let hotspots ?(limit = 5) t =
  let ranked =
    List.sort
      (fun a b ->
        compare (b.gate_error +. b.crosstalk_error) (a.gate_error +. a.crosstalk_error))
      t.steps
  in
  List.filteri (fun i _ -> i < limit) ranked

let worst_qubit t =
  if Array.length t.decoherence_per_qubit = 0 then
    invalid_arg "Error_budget.worst_qubit: no qubits";
  let best = ref 0 in
  Array.iteri
    (fun q e -> if e > t.decoherence_per_qubit.(!best) then best := q)
    t.decoherence_per_qubit;
  (!best, t.decoherence_per_qubit.(!best))

let pp fmt t =
  Format.fprintf fmt "@[<v>error budget: log10 success %.2f over %d steps@,"
    t.totals.Schedule.log10_success (List.length t.steps);
  Format.fprintf fmt "gate %.3e | crosstalk %.3e | decoherence %.3e@,"
    t.totals.Schedule.gate_error t.totals.Schedule.crosstalk_error
    t.totals.Schedule.decoherence_error;
  Format.fprintf fmt "hotspot steps:@,";
  List.iter
    (fun s ->
      Format.fprintf fmt "  step %3d: %d gates (%d 2q), gate %.2e, crosstalk %.2e@," s.index
        s.n_gates s.n_two_qubit s.gate_error s.crosstalk_error)
    (hotspots t);
  (if Array.length t.decoherence_per_qubit > 0 then
     let q, e = worst_qubit t in
     Format.fprintf fmt "worst qubit: q%d loses %.3e to decoherence@," q e);
  Format.fprintf fmt "@]"
