let zero = Complex.zero

let one = Complex.one

let i = Complex.i

let re x = { Complex.re = x; im = 0.0 }

let im y = { Complex.re = 0.0; im = y }

let make re im = { Complex.re; im }

let scale s z = { Complex.re = s *. z.Complex.re; im = s *. z.Complex.im }

let exp_i theta = { Complex.re = cos theta; im = sin theta }

let norm2 z = (z.Complex.re *. z.Complex.re) +. (z.Complex.im *. z.Complex.im)

let approx_equal ?(tol = 1e-9) a b =
  Float.abs (a.Complex.re -. b.Complex.re) <= tol
  && Float.abs (a.Complex.im -. b.Complex.im) <= tol

let to_string z =
  if z.Complex.im >= 0.0 then Printf.sprintf "%g+%gi" z.Complex.re z.Complex.im
  else Printf.sprintf "%g-%gi" z.Complex.re (Float.abs z.Complex.im)

let pp fmt z = Format.pp_print_string fmt (to_string z)
