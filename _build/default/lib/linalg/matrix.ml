type t = { rows : int; cols : int; data : Complex.t array }

let create rows cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Matrix.create: non-positive dimension";
  { rows; cols; data = Array.make (rows * cols) Complex.zero }

let rows m = m.rows

let cols m = m.cols

let index m r c =
  if r < 0 || r >= m.rows || c < 0 || c >= m.cols then
    invalid_arg (Printf.sprintf "Matrix: index (%d,%d) out of %dx%d" r c m.rows m.cols);
  (r * m.cols) + c

let get m r c = m.data.(index m r c)

let set m r c v = m.data.(index m r c) <- v

let init rows cols f =
  let m = create rows cols in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      m.data.((r * cols) + c) <- f r c
    done
  done;
  m

let identity n = init n n (fun r c -> if r = c then Complex.one else Complex.zero)

let of_arrays arr =
  let rows = Array.length arr in
  if rows = 0 then invalid_arg "Matrix.of_arrays: empty";
  let cols = Array.length arr.(0) in
  if cols = 0 then invalid_arg "Matrix.of_arrays: empty row";
  Array.iter
    (fun row -> if Array.length row <> cols then invalid_arg "Matrix.of_arrays: ragged rows")
    arr;
  init rows cols (fun r c -> arr.(r).(c))

let of_real_arrays arr =
  of_arrays (Array.map (Array.map (fun x -> { Complex.re = x; im = 0.0 })) arr)

let copy m = { m with data = Array.copy m.data }

let map2 op a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Matrix: dimension mismatch";
  { a with data = Array.init (Array.length a.data) (fun i -> op a.data.(i) b.data.(i)) }

let add = map2 Complex.add

let sub = map2 Complex.sub

let scale s m = { m with data = Array.map (Complex.mul s) m.data }

let scale_re s m = scale { Complex.re = s; im = 0.0 } m

let mul a b =
  if a.cols <> b.rows then invalid_arg "Matrix.mul: dimension mismatch";
  let result = create a.rows b.cols in
  for r = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.((r * a.cols) + k) in
      if aik <> Complex.zero then
        for c = 0 to b.cols - 1 do
          let idx = (r * b.cols) + c in
          result.data.(idx) <-
            Complex.add result.data.(idx) (Complex.mul aik b.data.((k * b.cols) + c))
        done
    done
  done;
  result

let transpose m = init m.cols m.rows (fun r c -> get m c r)

let conj m = { m with data = Array.map Complex.conj m.data }

let adjoint m = transpose (conj m)

let kron a b =
  init (a.rows * b.rows) (a.cols * b.cols) (fun r c ->
      let ar = r / b.rows and br = r mod b.rows in
      let ac = c / b.cols and bc = c mod b.cols in
      Complex.mul (get a ar ac) (get b br bc))

let mat_vec m v =
  if Array.length v <> m.cols then invalid_arg "Matrix.mat_vec: dimension mismatch";
  Array.init m.rows (fun r ->
      let acc = ref Complex.zero in
      for c = 0 to m.cols - 1 do
        acc := Complex.add !acc (Complex.mul m.data.((r * m.cols) + c) v.(c))
      done;
      !acc)

let trace m =
  let n = min m.rows m.cols in
  let acc = ref Complex.zero in
  for k = 0 to n - 1 do
    acc := Complex.add !acc (get m k k)
  done;
  !acc

let frobenius_norm m =
  sqrt (Array.fold_left (fun acc z -> acc +. Complex_ext.norm2 z) 0.0 m.data)

let max_abs_diff a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Matrix: dimension mismatch";
  let worst = ref 0.0 in
  Array.iteri
    (fun i za -> worst := Float.max !worst (Complex.norm (Complex.sub za b.data.(i))))
    a.data;
  !worst

let approx_equal ?(tol = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols && max_abs_diff a b <= tol

let is_hermitian ?(tol = 1e-9) m =
  m.rows = m.cols && max_abs_diff m (adjoint m) <= tol

let is_unitary ?(tol = 1e-9) m =
  m.rows = m.cols && max_abs_diff (mul m (adjoint m)) (identity m.rows) <= tol

let pp fmt m =
  Format.fprintf fmt "@[<v>";
  for r = 0 to m.rows - 1 do
    Format.fprintf fmt "[";
    for c = 0 to m.cols - 1 do
      if c > 0 then Format.fprintf fmt ", ";
      Complex_ext.pp fmt (get m r c)
    done;
    Format.fprintf fmt "]";
    if r < m.rows - 1 then Format.pp_print_cut fmt ()
  done;
  Format.fprintf fmt "@]"
