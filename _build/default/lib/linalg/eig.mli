(** Eigendecomposition of Hermitian matrices.

    Used by the physics layer: the avoided-crossing curve of Fig 2 comes from
    diagonalising the coupled two-transmon Hamiltonian, and unitary time
    evolution (Fig 15) is computed exactly as
    [U(t) = V exp(-i diag(lambda) t) V†].

    The implementation is the cyclic Jacobi method on the real-symmetric
    embedding of the Hermitian matrix [H = A + iB] into
    [[A, -B; B, A]] — each eigenpair of [H] appears twice in the embedding,
    and the complex eigenvector is recovered as [x + iy] from the stacked
    real vector [(x; y)].  Exact enough for the <= 10x10 operators this
    system manipulates. *)

val jacobi_symmetric :
  ?max_sweeps:int -> ?tol:float -> float array array ->
  float array * float array array
(** [jacobi_symmetric a] diagonalises the real symmetric matrix [a]
    (not modified).  Returns [(eigenvalues, eigenvectors)] with eigenvalues
    ascending and [eigenvectors.(k)] the unit eigenvector for
    [eigenvalues.(k)].
    @raise Invalid_argument if [a] is not square. *)

val eigh : Matrix.t -> float array * Matrix.t
(** [eigh h] for Hermitian [h] returns eigenvalues ascending and a matrix
    whose [k]-th {e column} is the corresponding eigenvector.
    @raise Invalid_argument if [h] is not (numerically) Hermitian. *)

val expm_hermitian : Matrix.t -> float -> Matrix.t
(** [expm_hermitian h t] is the unitary [exp(-i h t)], computed through
    {!eigh}. *)
