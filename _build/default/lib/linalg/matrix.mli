(** Dense complex matrices.

    Replaces the numpy arrays of the reference implementation.  Sized for the
    small operators this system needs — gate unitaries (2x2, 4x4), coupled
    two-transmon Hamiltonians (9x9 for three levels per transmon) — so the
    implementation favours clarity over blocking/vectorisation. *)

type t
(** Row-major dense matrix of [Complex.t]. *)

val create : int -> int -> t
(** [create rows cols] is the zero matrix.
    @raise Invalid_argument on non-positive dimensions. *)

val identity : int -> t

val of_arrays : Complex.t array array -> t
(** Rows must be non-empty and of equal length. *)

val of_real_arrays : float array array -> t

val init : int -> int -> (int -> int -> Complex.t) -> t

val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> Complex.t
val set : t -> int -> int -> Complex.t -> unit

val copy : t -> t

val add : t -> t -> t
val sub : t -> t -> t
val scale : Complex.t -> t -> t
val scale_re : float -> t -> t

val mul : t -> t -> t
(** Matrix product.
    @raise Invalid_argument on dimension mismatch. *)

val transpose : t -> t
val conj : t -> t
val adjoint : t -> t
(** Conjugate transpose. *)

val kron : t -> t -> t
(** Kronecker (tensor) product; builds multi-qubit/qutrit operators. *)

val mat_vec : t -> Complex.t array -> Complex.t array
(** Matrix–vector product. *)

val trace : t -> Complex.t

val frobenius_norm : t -> float

val max_abs_diff : t -> t -> float
(** Largest entrywise modulus of the difference. *)

val approx_equal : ?tol:float -> t -> t -> bool
(** Entrywise comparison with absolute tolerance (default [1e-9]). *)

val is_hermitian : ?tol:float -> t -> bool

val is_unitary : ?tol:float -> t -> bool
(** [A x A† = I] within tolerance. *)

val pp : Format.formatter -> t -> unit
