lib/linalg/matrix.mli: Complex Format
