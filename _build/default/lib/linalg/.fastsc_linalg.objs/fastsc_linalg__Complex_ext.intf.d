lib/linalg/complex_ext.mli: Complex Format
