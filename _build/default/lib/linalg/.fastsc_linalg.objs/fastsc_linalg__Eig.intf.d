lib/linalg/eig.mli: Matrix
