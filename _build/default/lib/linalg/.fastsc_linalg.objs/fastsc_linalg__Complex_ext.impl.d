lib/linalg/complex_ext.ml: Complex Float Format Printf
