lib/linalg/eig.ml: Array Complex Complex_ext Float Fun List Matrix
