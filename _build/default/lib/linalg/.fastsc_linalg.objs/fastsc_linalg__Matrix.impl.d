lib/linalg/matrix.ml: Array Complex Complex_ext Float Format Printf
