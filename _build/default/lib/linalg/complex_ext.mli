(** Conveniences over the standard-library [Complex] type.

    The quantum substrates (gate unitaries, state vectors, transmon
    Hamiltonians) use [Complex.t] as scalar; this module collects the small
    helpers the stdlib omits. *)

val zero : Complex.t
val one : Complex.t
val i : Complex.t

val re : float -> Complex.t
(** Real number as a complex. *)

val im : float -> Complex.t
(** Purely imaginary number. *)

val make : float -> float -> Complex.t

val scale : float -> Complex.t -> Complex.t

val exp_i : float -> Complex.t
(** [exp_i theta = e^{i theta}]. *)

val norm2 : Complex.t -> float
(** Squared modulus. *)

val approx_equal : ?tol:float -> Complex.t -> Complex.t -> bool
(** Componentwise comparison with absolute tolerance (default [1e-9]). *)

val to_string : Complex.t -> string
(** Readable rendering such as ["0.707-0.707i"]. *)

val pp : Format.formatter -> Complex.t -> unit
