let residual_coupling ~g0 ~delta =
  let d = Float.abs delta in
  if d < g0 then g0 else g0 *. g0 /. d

let transfer_envelope ~g ~delta =
  let four_g2 = 4.0 *. g *. g in
  four_g2 /. (four_g2 +. (delta *. delta))

let transfer_probability ~g ~delta ~t =
  let rabi = sqrt ((delta *. delta) +. (4.0 *. g *. g)) in
  transfer_envelope ~g ~delta *. (sin (Float.pi *. rabi *. t) ** 2.0)

type channel = { label : string; delta : float; g : float }

let channels ~alpha_a ~alpha_b ~g ~omega_a ~omega_b =
  [
    (* |01> <-> |10> exchange *)
    { label = "01-01"; delta = Float.abs (omega_a -. omega_b); g };
    (* |11> <-> |20>: omega_a's 1->2 ladder meets omega_b's 0->1 *)
    { label = "12-01"; delta = Float.abs (omega_a +. alpha_a -. omega_b); g = sqrt 2.0 *. g };
    (* |11> <-> |02> *)
    { label = "01-12"; delta = Float.abs (omega_a -. (omega_b +. alpha_b)); g = sqrt 2.0 *. g };
  ]

let pair_error ?(worst_case = false) ~alpha_a ~alpha_b ~g ~omega_a ~omega_b ~t () =
  if g <= 0.0 then 0.0
  else
    let survive =
      List.fold_left
        (fun acc { delta; g; _ } ->
          let p =
            if worst_case then transfer_envelope ~g ~delta
            else transfer_probability ~g ~delta ~t
          in
          acc *. (1.0 -. p))
        1.0
        (channels ~alpha_a ~alpha_b ~g ~omega_a ~omega_b)
    in
    1.0 -. survive
