(** Program success-rate heuristic (paper eq 4, §VI-C).

    {v P_success = prod_g (1 - eps_g) * prod_q (1 - eps_q) v}

    where [eps_g] runs over gate/crosstalk error terms and [eps_q] over
    per-qubit decoherence.  Probabilities this small are best handled in log
    space; the accumulator keeps a log10 tally so the Fig 9 log-scale series
    never underflow. *)

type t
(** A success-probability accumulator. *)

val create : unit -> t

val add_error : t -> float -> unit
(** Fold one error term [eps] (clamped into [\[0, 1\]]) into the product.  An
    [eps >= 1] drives success to exactly zero. *)

val add_errors : t -> float list -> unit

val probability : t -> float
(** The accumulated product; 0 if any term saturated. *)

val log10_probability : t -> float
(** Log-scale value (negative infinity when zero). *)

val n_terms : t -> int

val combine : t -> t -> t
(** Product of two independent accumulators (e.g. gate terms and qubit
    terms). *)

val of_errors : float list -> float
(** One-shot convenience: [prod (1 - eps)]. *)
