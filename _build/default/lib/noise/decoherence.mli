(** Qubit decoherence model (paper §II-B1).

    The paper prints the combined form
    [eps_q(t) = (1 - e^{-t/T1}) (1 - e^{-t/T2})]; the more conventional
    expression is [1 - e^{-t/T1} e^{-t/T2}].  Both are monotone in [t] and
    selectable; the combined (paper) form is the default so headline numbers
    follow the paper's metric.  See DESIGN.md for the discussion. *)

type model =
  | Combined  (** The paper's printed product form (default). *)
  | Exponential  (** [1 - exp(-t/T1) exp(-t/T2)]. *)

val error : ?model:model -> t1:float -> t2:float -> t:float -> unit -> float
(** Decoherence error accumulated over [t] ns.
    @raise Invalid_argument on non-positive [t1]/[t2] or negative [t]. *)

val pauli_rates : t1:float -> t2:float -> t:float -> float * float * float
(** [(p_x, p_y, p_z)] of the Pauli-twirled thermal-relaxation channel over a
    slice of [t] ns — the stochastic-noise input of the trajectory
    simulator: bit-flip components [p_x = p_y = (1 - e^{-t/T1})/4] and phase
    component [p_z = (1 - e^{-t/Tphi})/2] with the pure-dephasing rate
    [1/Tphi = 1/T2 - 1/(2 T1)] (floored at 0). *)
