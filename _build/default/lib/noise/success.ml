type t = { mutable log10_sum : float; mutable saturated : bool; mutable n : int }

let create () = { log10_sum = 0.0; saturated = false; n = 0 }

let add_error t eps =
  let eps = Float.max 0.0 eps in
  t.n <- t.n + 1;
  if eps >= 1.0 then t.saturated <- true
  else t.log10_sum <- t.log10_sum +. (log10 (1.0 -. eps))

let add_errors t = List.iter (add_error t)

let probability t = if t.saturated then 0.0 else 10.0 ** t.log10_sum

let log10_probability t = if t.saturated then neg_infinity else t.log10_sum

let n_terms t = t.n

let combine a b =
  {
    log10_sum = a.log10_sum +. b.log10_sum;
    saturated = a.saturated || b.saturated;
    n = a.n + b.n;
  }

let of_errors errors =
  let t = create () in
  add_errors t errors;
  probability t
