type model = Combined | Exponential

let validate ~t1 ~t2 ~t =
  if t1 <= 0.0 || t2 <= 0.0 then invalid_arg "Decoherence: T1 and T2 must be positive";
  if t < 0.0 then invalid_arg "Decoherence: negative duration"

let error ?(model = Combined) ~t1 ~t2 ~t () =
  validate ~t1 ~t2 ~t;
  match model with
  | Combined -> (1.0 -. exp (-.t /. t1)) *. (1.0 -. exp (-.t /. t2))
  | Exponential -> 1.0 -. (exp (-.t /. t1) *. exp (-.t /. t2))

let pauli_rates ~t1 ~t2 ~t =
  validate ~t1 ~t2 ~t;
  let p_relax = 1.0 -. exp (-.t /. t1) in
  let phi_rate = Float.max 0.0 ((1.0 /. t2) -. (1.0 /. (2.0 *. t1))) in
  let p_phi = 1.0 -. exp (-.t *. phi_rate) in
  (p_relax /. 4.0, p_relax /. 4.0, p_phi /. 2.0)
