lib/noise/crosstalk.ml: Float List
