lib/noise/success.mli:
