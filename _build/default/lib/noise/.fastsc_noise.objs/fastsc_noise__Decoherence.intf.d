lib/noise/decoherence.mli:
