lib/noise/crosstalk.mli:
