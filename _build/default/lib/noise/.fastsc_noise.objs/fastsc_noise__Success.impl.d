lib/noise/success.ml: Float List
