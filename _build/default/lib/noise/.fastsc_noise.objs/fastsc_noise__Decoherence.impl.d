lib/noise/decoherence.ml: Float
