(** Quantum GAN generator circuits (paper Table II, QGAN(n)).

    The generator of a quantum generative adversarial network over training
    data of dimension 2^n is a hardware-efficient variational ansatz (after
    Lloyd & Weedbrook 2018 / Zoufal et al.): alternating layers of
    single-qubit Ry/Rz rotations and a CNOT entangling ladder.  Rotation
    angles are drawn from the supplied generator (a trained or initialised
    parameter vector). *)

val circuit : Rng.t -> ?layers:int -> n:int -> unit -> Circuit.t
(** [circuit rng ~n ()] builds the ansatz on [n >= 2] qubits with [layers]
    entangling blocks (default 2).
    @raise Invalid_argument if [n < 2] or [layers < 1]. *)

val n_parameters : ?layers:int -> n:int -> unit -> int
(** Number of rotation parameters the ansatz consumes. *)
