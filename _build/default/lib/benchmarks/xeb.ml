let single_qubit_set = [ Gate.Sx; Gate.Sy; Gate.Sw ]

let circuit rng ?(two_qubit_gate = Gate.Iswap) ~graph ~classes ~cycles () =
  if cycles < 1 then invalid_arg "Xeb.circuit: needs at least 1 cycle";
  if not (Gate.is_two_qubit two_qubit_gate) then
    invalid_arg "Xeb.circuit: two_qubit_gate must be a two-qubit gate";
  let n = Graph.n_vertices graph in
  Graph.iter_edges
    (fun u v ->
      if not (List.mem_assoc (min u v, max u v) classes) then
        invalid_arg (Printf.sprintf "Xeb.circuit: coupling (%d,%d) has no class" u v))
    graph;
  let n_classes =
    1 + List.fold_left (fun acc (_, c) -> max acc c) 0 classes
  in
  let b = Circuit.builder n in
  let previous = Array.make n (-1) in
  let gates = Array.of_list single_qubit_set in
  for cycle = 0 to cycles - 1 do
    (* random single-qubit layer, never repeating the last choice *)
    for q = 0 to n - 1 do
      let pick () = Rng.int rng (Array.length gates) in
      let rec fresh () =
        let k = pick () in
        if k = previous.(q) then fresh () else k
      in
      let k = fresh () in
      previous.(q) <- k;
      Circuit.add b gates.(k) [ q ]
    done;
    (* one activation class of couplings *)
    let active_class = cycle mod n_classes in
    List.iter
      (fun ((u, v), c) -> if c = active_class then Circuit.add b two_qubit_gate [ u; v ])
      classes
  done;
  Circuit.finish b
