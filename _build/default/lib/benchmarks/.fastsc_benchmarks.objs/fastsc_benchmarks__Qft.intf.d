lib/benchmarks/qft.mli: Circuit Gate
