lib/benchmarks/qft.ml: Circuit Float Gate List
