lib/benchmarks/ghz.ml: Circuit Gate
