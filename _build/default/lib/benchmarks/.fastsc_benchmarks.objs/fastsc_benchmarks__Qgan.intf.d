lib/benchmarks/qgan.mli: Circuit Rng
