lib/benchmarks/ising.mli: Circuit
