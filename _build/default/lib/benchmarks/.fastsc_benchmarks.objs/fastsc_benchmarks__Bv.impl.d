lib/benchmarks/bv.ml: Circuit Gate
