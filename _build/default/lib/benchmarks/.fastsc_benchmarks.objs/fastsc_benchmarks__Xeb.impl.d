lib/benchmarks/xeb.ml: Array Circuit Gate Graph List Printf Rng
