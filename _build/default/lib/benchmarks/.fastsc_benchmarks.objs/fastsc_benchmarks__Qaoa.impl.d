lib/benchmarks/qaoa.ml: Circuit Float Gate Graph List Rng
