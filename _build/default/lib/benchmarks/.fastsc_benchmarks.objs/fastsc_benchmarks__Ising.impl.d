lib/benchmarks/ising.ml: Circuit Gate
