lib/benchmarks/ghz.mli: Circuit
