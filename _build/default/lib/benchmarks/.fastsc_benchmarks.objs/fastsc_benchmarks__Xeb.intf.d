lib/benchmarks/xeb.mli: Circuit Gate Graph Rng
