lib/benchmarks/qaoa.mli: Circuit Graph Rng
