lib/benchmarks/qgan.ml: Circuit Float Gate Rng
