let controlled_phase theta c t =
  let half = theta /. 2.0 in
  [
    (Gate.Rz half, [ c ]);
    (Gate.Rz half, [ t ]);
    (Gate.Cnot, [ c; t ]);
    (Gate.Rz (-.half), [ t ]);
    (Gate.Cnot, [ c; t ]);
  ]

let circuit ?(approximation = 0) ?(reverse = true) ~n () =
  if n < 1 then invalid_arg "Qft.circuit: needs at least 1 qubit";
  if approximation < 0 then invalid_arg "Qft.circuit: negative approximation level";
  let b = Circuit.builder n in
  for i = n - 1 downto 0 do
    Circuit.add b Gate.H [ i ];
    for j = i - 1 downto 0 do
      let k = i - j in
      (* rotation pi / 2^k, controlled on the lower qubit *)
      if approximation = 0 || k < approximation then
        List.iter
          (fun (g, qs) -> Circuit.add b g qs)
          (controlled_phase (Float.pi /. float_of_int (1 lsl k)) j i)
    done
  done;
  if reverse then
    for q = 0 to (n / 2) - 1 do
      Circuit.add b Gate.Swap [ q; n - 1 - q ]
    done;
  Circuit.finish b
