(** GHZ state preparation.

    The smallest globally-entangling benchmark: a Hadamard and a CNOT chain
    produce (|0...0> + |1...1>)/sqrt 2.  Its linear entangling chain makes it
    a clean probe of how much a compilation strategy pays on strictly
    sequential two-qubit structure (the opposite extreme from XEB). *)

val circuit : ?fanout:bool -> n:int -> unit -> Circuit.t
(** [circuit ~n ()]: GHZ on [n >= 2] qubits.  With [fanout] (default false)
    the CNOTs form a balanced binary fan-out tree instead of a chain —
    logarithmic depth, same state, a scheduling stress variant.
    @raise Invalid_argument if [n < 2]. *)

val expected_probabilities : n:int -> (int * float) list
(** The two ideal outcomes and their probabilities. *)
