(** Linear Ising-chain simulation circuits (paper Table II, ISING(n)).

    Digitized adiabatic evolution of a transverse-field Ising spin chain
    (after Barends et al. 2016): each Trotter step applies a ZZ interaction
    on every nearest-neighbour pair of the chain followed by transverse- and
    longitudinal-field rotations on every spin.  The interaction and field
    strengths ramp linearly over the steps as in the digitized-adiabatic
    protocol. *)

val circuit : ?steps:int -> ?coupling:float -> ?field:float -> n:int -> unit -> Circuit.t
(** [circuit ~n ()] simulates a chain of [n >= 2] spins for [steps] Trotter
    steps (default 3) with interaction angle scale [coupling] (default 1.0)
    and transverse field scale [field] (default 1.0).
    @raise Invalid_argument if [n < 2] or [steps < 1]. *)
