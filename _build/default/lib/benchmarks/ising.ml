let circuit ?(steps = 3) ?(coupling = 1.0) ?(field = 1.0) ~n () =
  if n < 2 then invalid_arg "Ising.circuit: needs at least 2 spins";
  if steps < 1 then invalid_arg "Ising.circuit: needs at least 1 Trotter step";
  let b = Circuit.builder n in
  for q = 0 to n - 1 do
    Circuit.add b Gate.H [ q ]
  done;
  for step = 1 to steps do
    (* linear adiabatic ramp: interactions grow, transverse field decays *)
    let s = float_of_int step /. float_of_int steps in
    let zz_angle = coupling *. s in
    let x_angle = field *. (1.0 -. s) +. 0.1 in
    for q = 0 to n - 2 do
      Circuit.add b Gate.Cnot [ q; q + 1 ];
      Circuit.add b (Gate.Rz zz_angle) [ q + 1 ];
      Circuit.add b Gate.Cnot [ q; q + 1 ]
    done;
    for q = 0 to n - 1 do
      Circuit.add b (Gate.Rx x_angle) [ q ]
    done
  done;
  Circuit.finish b
