let problem_graph rng ~n ?(edge_prob = 0.5) () =
  if n < 2 then invalid_arg "Qaoa.problem_graph: needs at least 2 vertices";
  let g = Graph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Rng.float rng < edge_prob then Graph.add_edge g u v
    done
  done;
  g

let circuit_of_graph ?(angles = []) rng ?(rounds = 1) graph =
  let n = Graph.n_vertices graph in
  let b = Circuit.builder n in
  for q = 0 to n - 1 do
    Circuit.add b Gate.H [ q ]
  done;
  for round = 1 to rounds do
    let gamma, beta =
      match List.nth_opt angles (round - 1) with
      | Some pair -> pair
      | None -> (Rng.uniform rng 0.0 (2.0 *. Float.pi), Rng.uniform rng 0.0 Float.pi)
    in
    Graph.iter_edges
      (fun u v ->
        (* exp(-i gamma/2 Z_u Z_v) *)
        Circuit.add b Gate.Cnot [ u; v ];
        Circuit.add b (Gate.Rz gamma) [ v ];
        Circuit.add b Gate.Cnot [ u; v ])
      graph;
    for q = 0 to n - 1 do
      Circuit.add b (Gate.Rx (2.0 *. beta)) [ q ]
    done
  done;
  Circuit.finish b

let circuit rng ~n ?edge_prob ?rounds () =
  circuit_of_graph rng ?rounds (problem_graph rng ~n ?edge_prob ())
