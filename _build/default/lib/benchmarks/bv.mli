(** Bernstein–Vazirani circuits (paper Table II, BV(n)).

    BV recovers a hidden bit string with one oracle query: Hadamards on all
    qubits, a phase oracle of CNOTs from each set-bit data qubit into the
    ancilla (prepared in |->), and closing Hadamards.  On [n] qubits the
    last qubit is the ancilla and the remaining [n - 1] hold the secret. *)

val circuit : ?secret:int -> n:int -> unit -> Circuit.t
(** [circuit ~n ()] builds BV on [n] qubits ([n >= 2]).  [secret] defaults to
    the all-ones string (maximum oracle weight, the usual benchmarking
    choice); only its low [n - 1] bits are used.
    @raise Invalid_argument if [n < 2] or [secret < 0]. *)

val expected_outcome : ?secret:int -> n:int -> unit -> int
(** The basis state an ideal run measures: secret bits on the data qubits,
    ancilla back in |1>. *)
