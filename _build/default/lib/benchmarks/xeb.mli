(** Cross-entropy benchmarking circuits (paper Table II, XEB(n, p)).

    The random-circuit family of the quantum-supremacy experiment, used to
    calibrate simultaneous two-qubit gates: [p] cycles, each applying a
    random single-qubit gate from {sqrt-X, sqrt-Y, sqrt-W} on every qubit
    (never repeating the previous choice on the same qubit) followed by
    two-qubit gates on one activation class of the device couplings, cycling
    through the classes.  This is the most parallel benchmark in the suite —
    the stress test for frequency crowding. *)

val circuit :
  Rng.t ->
  ?two_qubit_gate:Gate.t ->
  graph:Graph.t ->
  classes:((int * int) * int) list ->
  cycles:int ->
  unit ->
  Circuit.t
(** [circuit rng ~graph ~classes ~cycles ()] builds XEB over a device
    connectivity graph whose couplings are partitioned into activation
    [classes] (e.g. the Sycamore ABCD tiling).  [two_qubit_gate] defaults to
    [Iswap].
    @raise Invalid_argument if [cycles < 1], if [classes] misses a coupling,
    or if [two_qubit_gate] is not a two-qubit gate. *)

val single_qubit_set : Gate.t list
(** The {sqrt-X, sqrt-Y, sqrt-W} gate set. *)
