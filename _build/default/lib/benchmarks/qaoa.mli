(** QAOA MAX-CUT circuits (paper Table II, QAOA(n)).

    Quantum Approximate Optimization for MAX-CUT on an Erdos–Renyi random
    graph G(n, p): initial Hadamards, then [rounds] alternating layers of the
    cost unitary (one ZZ interaction [CNOT; Rz(gamma); CNOT] per graph edge)
    and the mixer (Rx(beta) on every qubit).  Random graph, gamma and beta
    are drawn from the supplied generator, so circuits are reproducible per
    seed. *)

val problem_graph : Rng.t -> n:int -> ?edge_prob:float -> unit -> Graph.t
(** The Erdos–Renyi instance ([edge_prob] defaults to 0.5). *)

val circuit_of_graph :
  ?angles:(float * float) list -> Rng.t -> ?rounds:int -> Graph.t -> Circuit.t
(** QAOA over an explicit problem graph ([rounds] defaults to 1).  [angles]
    supplies explicit [(gamma, beta)] per round (e.g. from a classical outer
    optimization loop); missing rounds draw from the generator. *)

val circuit : Rng.t -> n:int -> ?edge_prob:float -> ?rounds:int -> unit -> Circuit.t
(** Random instance + circuit in one call ([n >= 2]).
    @raise Invalid_argument if [n < 2]. *)
