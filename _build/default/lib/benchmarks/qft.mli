(** Quantum Fourier Transform circuits.

    The canonical structured kernel beyond the paper's Table II suite:
    a dense ladder of controlled-phase rotations whose angles shrink
    geometrically, ending (optionally) in the bit-reversal SWAP network.
    Controlled phases are decomposed into the CNOT + Rz identity

    {v CP(theta) = (Rz(t/2) (x) Rz(t/2)) CNOT (I (x) Rz(-t/2)) CNOT v}

    (exact up to global phase, verified in the test suite), so the circuit
    uses only gates the rest of the toolchain understands. *)

val controlled_phase : float -> int -> int -> (Gate.t * int list) list
(** [controlled_phase theta c t]: the CP(theta) gadget on control [c] and
    target [t]. *)

val circuit : ?approximation:int -> ?reverse:bool -> n:int -> unit -> Circuit.t
(** [circuit ~n ()]: QFT on [n >= 1] qubits.  [approximation] (default 0 =
    exact) drops controlled phases with angle below [pi / 2^approximation],
    the standard approximate-QFT truncation; [reverse] (default true)
    includes the final bit-reversal SWAPs.
    @raise Invalid_argument if [n < 1] or [approximation < 0]. *)
