let validate ?(layers = 2) ~n () =
  if n < 2 then invalid_arg "Qgan.circuit: needs at least 2 qubits";
  if layers < 1 then invalid_arg "Qgan.circuit: needs at least 1 layer";
  layers

let n_parameters ?layers ~n () =
  let layers = validate ?layers ~n () in
  (* initial Ry layer + per block (Ry + Rz) on every qubit *)
  n + (layers * 2 * n)

let circuit rng ?layers ~n () =
  let layers = validate ?layers ~n () in
  let b = Circuit.builder n in
  let angle () = Rng.uniform rng 0.0 (2.0 *. Float.pi) in
  for q = 0 to n - 1 do
    Circuit.add b (Gate.Ry (angle ())) [ q ]
  done;
  for _ = 1 to layers do
    (* entangling ladder *)
    for q = 0 to n - 2 do
      Circuit.add b Gate.Cnot [ q; q + 1 ]
    done;
    for q = 0 to n - 1 do
      Circuit.add b (Gate.Ry (angle ())) [ q ];
      Circuit.add b (Gate.Rz (angle ())) [ q ]
    done
  done;
  Circuit.finish b
