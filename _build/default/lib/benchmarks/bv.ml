let default_secret n = (1 lsl (n - 1)) - 1

let validate ?secret ~n () =
  if n < 2 then invalid_arg "Bv.circuit: needs at least 2 qubits";
  match secret with
  | Some s when s < 0 -> invalid_arg "Bv.circuit: negative secret"
  | Some s -> s land default_secret n
  | None -> default_secret n

let circuit ?secret ~n () =
  let secret = validate ?secret ~n () in
  let ancilla = n - 1 in
  let b = Circuit.builder n in
  Circuit.add b Gate.X [ ancilla ];
  for q = 0 to n - 1 do
    Circuit.add b Gate.H [ q ]
  done;
  for q = 0 to n - 2 do
    if secret land (1 lsl q) <> 0 then Circuit.add b Gate.Cnot [ q; ancilla ]
  done;
  for q = 0 to n - 1 do
    Circuit.add b Gate.H [ q ]
  done;
  Circuit.finish b

let expected_outcome ?secret ~n () =
  let secret = validate ?secret ~n () in
  secret lor (1 lsl (n - 1))
