let circuit ?(fanout = false) ~n () =
  if n < 2 then invalid_arg "Ghz.circuit: needs at least 2 qubits";
  let b = Circuit.builder n in
  Circuit.add b Gate.H [ 0 ];
  if fanout then begin
    (* double the entangled prefix each round: 0 -> 1, {0,1} -> {2,3}, ... *)
    let entangled = ref 1 in
    while !entangled < n do
      let sources = min !entangled (n - !entangled) in
      for k = 0 to sources - 1 do
        Circuit.add b Gate.Cnot [ k; !entangled + k ]
      done;
      entangled := !entangled + sources
    done
  end
  else
    for q = 0 to n - 2 do
      Circuit.add b Gate.Cnot [ q; q + 1 ]
    done;
  Circuit.finish b

let expected_probabilities ~n = [ (0, 0.5); ((1 lsl n) - 1, 0.5) ]
