type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buffer = Buffer.create (String.length s + 2) in
  Buffer.add_char buffer '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\r' -> Buffer.add_string buffer "\\r"
      | '\t' -> Buffer.add_string buffer "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.add_char buffer '"';
  Buffer.contents buffer

let float_repr f =
  if Float.is_finite f then begin
    (* ensure the token is a valid JSON number (needs . or e for floats) *)
    let s = Printf.sprintf "%.17g" f in
    if String.contains s '.' || String.contains s 'e' || String.contains s 'n' then s
    else s ^ ".0"
  end
  else escape (Printf.sprintf "%h" f)

let to_string ?(pretty = true) value =
  let buffer = Buffer.create 256 in
  let newline depth =
    if pretty then begin
      Buffer.add_char buffer '\n';
      Buffer.add_string buffer (String.make (2 * depth) ' ')
    end
  in
  let rec emit depth = function
    | Null -> Buffer.add_string buffer "null"
    | Bool b -> Buffer.add_string buffer (if b then "true" else "false")
    | Int i -> Buffer.add_string buffer (string_of_int i)
    | Float f -> Buffer.add_string buffer (float_repr f)
    | String s -> Buffer.add_string buffer (escape s)
    | List [] -> Buffer.add_string buffer "[]"
    | List items ->
      Buffer.add_char buffer '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buffer ',';
          newline (depth + 1);
          emit (depth + 1) item)
        items;
      newline depth;
      Buffer.add_char buffer ']'
    | Obj [] -> Buffer.add_string buffer "{}"
    | Obj fields ->
      Buffer.add_char buffer '{';
      List.iteri
        (fun i (key, item) ->
          if i > 0 then Buffer.add_char buffer ',';
          newline (depth + 1);
          Buffer.add_string buffer (escape key);
          Buffer.add_string buffer (if pretty then ": " else ":");
          emit (depth + 1) item)
        fields;
      newline depth;
      Buffer.add_char buffer '}'
  in
  emit 0 value;
  Buffer.contents buffer
