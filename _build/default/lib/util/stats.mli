(** Descriptive statistics over float sequences.

    Used throughout the benchmark harness to aggregate success rates, depths
    and error terms — in particular the paper's headline aggregates: the
    arithmetic-mean improvement over Baseline U (13.3x, §VII-A) and the
    geometric-mean improvement across connectivities (3.97x, §VII-F). *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val geomean : float list -> float
(** Geometric mean of positive values, computed in log space for stability;
    0 on the empty list.
    @raise Invalid_argument if any element is non-positive. *)

val variance : float list -> float
(** Population variance; 0 on lists shorter than 2. *)

val stddev : float list -> float
(** Square root of {!variance}. *)

val median : float list -> float
(** Median; 0 on the empty list. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0,100\]], linear interpolation between
    order statistics; 0 on the empty list. *)

val min_max : float list -> float * float
(** Smallest and largest element.
    @raise Invalid_argument on the empty list. *)

val sum : float list -> float
(** Kahan-compensated sum. *)

val product : float list -> float
(** Product of all elements; 1 on the empty list. *)
