let sum xs =
  (* Kahan summation: success rates span many orders of magnitude. *)
  let total = ref 0.0 and compensation = ref 0.0 in
  List.iter
    (fun x ->
      let y = x -. !compensation in
      let t = !total +. y in
      compensation := t -. !total -. y;
      total := t)
    xs;
  !total

let mean = function
  | [] -> 0.0
  | xs -> sum xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.0
  | xs ->
    let logs =
      List.map
        (fun x ->
          if x <= 0.0 then invalid_arg "Stats.geomean: non-positive element"
          else log x)
        xs
    in
    exp (mean logs)

let variance = function
  | [] | [ _ ] -> 0.0
  | xs ->
    let m = mean xs in
    mean (List.map (fun x -> (x -. m) ** 2.0) xs)

let stddev xs = sqrt (variance xs)

let percentile p xs =
  match List.sort compare xs with
  | [] -> 0.0
  | sorted ->
    let arr = Array.of_list sorted in
    let n = Array.length arr in
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then arr.(lo)
    else
      let w = rank -. float_of_int lo in
      ((1.0 -. w) *. arr.(lo)) +. (w *. arr.(hi))

let median xs = percentile 50.0 xs

let min_max = function
  | [] -> invalid_arg "Stats.min_max: empty list"
  | x :: xs ->
    List.fold_left (fun (lo, hi) v -> (Float.min lo v, Float.max hi v)) (x, x) xs

let product xs = List.fold_left ( *. ) 1.0 xs
