type align = Left | Right

type row = Cells of string list | Separator

type t = {
  headers : string list;
  aligns : align list;
  mutable rows : row list; (* reversed *)
}

let create ?aligns headers =
  let aligns =
    match aligns with
    | Some a -> a
    | None -> (
      match headers with
      | [] -> []
      | _ :: rest -> Left :: List.map (fun _ -> Right) rest)
  in
  { headers; aligns; rows = [] }

let width t = List.length t.headers

let add_row t cells =
  let n = List.length cells in
  if n > width t then invalid_arg "Tablefmt.add_row: too many cells";
  let padded = cells @ List.init (width t - n) (fun _ -> "") in
  t.rows <- Cells padded :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let pad align w s =
  let n = String.length s in
  if n >= w then s
  else
    let fill = String.make (w - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row ->
            match row with
            | Separator -> acc
            | Cells cells -> max acc (String.length (List.nth cells i)))
          (String.length h) rows)
      t.headers
  in
  let rule =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "+"
  in
  let render_cells cells =
    let padded =
      List.mapi
        (fun i c ->
          let w = List.nth widths i in
          let a = try List.nth t.aligns i with Failure _ -> Left in
          " " ^ pad a w c ^ " ")
        cells
    in
    "|" ^ String.concat "|" padded ^ "|"
  in
  let body =
    List.map (function Separator -> rule | Cells cells -> render_cells cells) rows
  in
  String.concat "\n" ((rule :: render_cells t.headers :: rule :: body) @ [ rule ])

let print t = print_endline (render t)

let cell_float ?(digits = 4) x = Printf.sprintf "%.*f" digits x

let cell_sci ?(digits = 3) x = Printf.sprintf "%.*e" digits x

let cell_int = string_of_int
