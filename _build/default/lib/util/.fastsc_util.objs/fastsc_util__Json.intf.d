lib/util/json.mli:
