lib/util/rng.mli:
