lib/util/tablefmt.mli:
