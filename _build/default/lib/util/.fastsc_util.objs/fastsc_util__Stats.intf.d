lib/util/stats.mli:
