(** ASCII table rendering for the benchmark harness.

    Every figure and table of the paper is regenerated as a textual series;
    this module renders them with aligned columns so the bench output is
    directly comparable with the paper's plots. *)

type align = Left | Right

type t
(** A table under construction. *)

val create : ?aligns:align list -> string list -> t
(** [create headers] starts a table with the given column headers.  [aligns]
    defaults to [Left] for the first column and [Right] for the rest (the
    common label-then-numbers layout). *)

val add_row : t -> string list -> unit
(** Append a row.  Rows shorter than the header are padded with empty cells;
    longer rows raise [Invalid_argument]. *)

val add_separator : t -> unit
(** Append a horizontal rule between row groups. *)

val render : t -> string
(** Render the table with a box-drawing frame. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)

val cell_float : ?digits:int -> float -> string
(** Fixed-point cell, default 4 digits. *)

val cell_sci : ?digits:int -> float -> string
(** Scientific-notation cell (e.g. [1.23e-05]), default 3 digits; the natural
    format for log-scale success rates. *)

val cell_int : int -> string
