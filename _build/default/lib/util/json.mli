(** Minimal JSON emitter.

    Just enough JSON to hand schedules, metrics and control waveforms to
    external tooling (plotters, control stacks) without adding a dependency.
    Writer only; strings are escaped per RFC 8259, floats printed with
    round-trip precision, and non-finite floats encoded as strings (JSON has
    no Infinity/NaN literals). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Serialize; [pretty] (default true) indents with two spaces. *)

val escape : string -> string
(** The quoted, escaped form of a string (exposed for tests). *)
