(** Device topology generators.

    The paper evaluates on a 2-D mesh (the primary target, §IV-B), and on a
    family of increasingly dense "express cube" connectivities (Dally 1991)
    for the generality study of §VII-F: a 1-D path or 2-D grid augmented with
    an express link every [k] nodes.  The Sycamore ABCD coupler tiling used by
    Baseline G (§VI-A) is also a property of the grid and lives here. *)

type t = {
  name : string;  (** e.g. ["2D-5x5"], ["1EX-4"]. *)
  graph : Graph.t;
  coords : (int * int) array option;
      (** Planar coordinates (row, col) when the topology has a natural
          embedding; used for pretty-printing frequency maps (Fig 14). *)
}

val grid : int -> int -> t
(** [grid rows cols]: nearest-neighbour mesh; vertex [(r, c)] has id
    [r * cols + c]. *)

val square_grid : int -> t
(** [square_grid n] for a perfect square [n] is [grid √n √n]; otherwise the
    most balanced [r x c] grid with [r * c = n] (falling back to a path when
    [n] is prime). *)

val path : int -> t
(** 1-D chain of [n] qubits. *)

val ring : int -> t
(** Cycle of [n >= 3] qubits. *)

val complete : int -> t
(** All-to-all coupling (unrealistic; upper bound for density sweeps). *)

val express_1d : int -> int -> t
(** [express_1d n k] ("1EX-k"): path of [n] nodes plus an express channel
    between node [i] and [i + k] for every [i] divisible by [k]
    (requires [k >= 2]). *)

val express_2d : int -> int -> int -> t
(** [express_2d rows cols k] ("2EX-k"): grid plus express channels every [k]
    nodes along every row and every column (requires [k >= 2]). *)

val honeycomb : int -> int -> t
(** [honeycomb rows cols]: a brick-wall honeycomb lattice of hexagonal cells
    ([rows] x [cols] bricks), every vertex of degree <= 3 — the skeleton of
    IBM's heavy-hexagon devices. *)

val subdivide : t -> t
(** Replace every coupling by a path of length 2 through a fresh vertex.
    [subdivide (honeycomb r c)] is the IBM {e heavy-hex} lattice; applied to
    any topology it halves the maximum degree pressure at the cost of extra
    qubits.  Coordinates are dropped (no planar embedding is maintained). *)

val heavy_hex : int -> int -> t
(** [heavy_hex rows cols] = [subdivide (honeycomb rows cols)], named
    ["HH-<rows>x<cols>"]. *)

val octagonal : int -> int -> t
(** [octagonal rows cols]: a grid of 8-qubit rings with two inter-ring
    couplings per adjacent pair — the Rigetti Aspen lattice family. *)

type tiling_class = A | B | C | D

val tiling_class_to_string : tiling_class -> string

val grid_edge_classes : int -> int -> ((int * int) * tiling_class) list
(** [grid_edge_classes rows cols] assigns every mesh edge to one of the four
    Sycamore-style activation classes; each class is a matching, so activating
    one class at a time never drives two couplers on the same qubit. *)

val coords_exn : t -> int -> int * int
(** Coordinates of a vertex.
    @raise Invalid_argument if the topology has no embedding. *)
