let bfs_distances g src =
  let n = Graph.n_vertices g in
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(src) <- 0;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
      (Graph.neighbors g u)
  done;
  dist

let all_pairs g =
  Array.init (Graph.n_vertices g) (fun src -> bfs_distances g src)

let distance g u v = (bfs_distances g u).(v)

let shortest_path g u v =
  let dist = bfs_distances g v in
  if dist.(u) < 0 then None
  else begin
    (* Walk downhill from [u] toward [v]; neighbours are sorted, so picking
       the first strictly-closer neighbour makes routing deterministic. *)
    let rec walk current acc =
      if current = v then Some (List.rev (v :: acc))
      else
        let next =
          List.find_opt (fun w -> dist.(w) = dist.(current) - 1) (Graph.neighbors g current)
        in
        match next with
        | None -> None (* unreachable by construction of [dist] *)
        | Some w -> walk w (current :: acc)
    in
    walk u []
  end

let eccentricity g v =
  Array.fold_left max 0 (bfs_distances g v)

let diameter g =
  let n = Graph.n_vertices g in
  if n = 0 || not (Graph.is_connected g) then -1
  else
    let best = ref 0 in
    for v = 0 to n - 1 do
      best := max !best (eccentricity g v)
    done;
    !best

let edge_distance g (u1, v1) (u2, v2) =
  let d_from src =
    let dist = bfs_distances g src in
    fun target -> dist.(target)
  in
  let d1 = d_from u1 and d2 = d_from v1 in
  let candidates = [ d1 u2; d1 v2; d2 u2; d2 v2 ] in
  let reachable = List.filter (fun d -> d >= 0) candidates in
  match reachable with [] -> -1 | ds -> List.fold_left min max_int ds
