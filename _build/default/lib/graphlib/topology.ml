type t = {
  name : string;
  graph : Graph.t;
  coords : (int * int) array option;
}

let grid rows cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Topology.grid: dimensions must be positive";
  let id r c = (r * cols) + c in
  let g = Graph.create (rows * cols) in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then Graph.add_edge g (id r c) (id r (c + 1));
      if r + 1 < rows then Graph.add_edge g (id r c) (id (r + 1) c)
    done
  done;
  let coords = Array.init (rows * cols) (fun v -> (v / cols, v mod cols)) in
  { name = Printf.sprintf "2D-%dx%d" rows cols; graph = g; coords = Some coords }

let path n =
  if n <= 0 then invalid_arg "Topology.path: size must be positive";
  let g = Graph.create n in
  for i = 0 to n - 2 do
    Graph.add_edge g i (i + 1)
  done;
  let coords = Array.init n (fun v -> (0, v)) in
  { name = Printf.sprintf "1D-%d" n; graph = g; coords = Some coords }

let square_grid n =
  if n <= 0 then invalid_arg "Topology.square_grid: size must be positive";
  (* Most balanced factorisation r * c = n with r <= c. *)
  let rec best r = if r >= 1 && n mod r = 0 then r else best (r - 1) in
  let r = best (int_of_float (sqrt (float_of_int n))) in
  if r = 1 then path n else grid r (n / r)

let ring n =
  if n < 3 then invalid_arg "Topology.ring: needs at least 3 vertices";
  let g = Graph.create n in
  for i = 0 to n - 1 do
    Graph.add_edge g i ((i + 1) mod n)
  done;
  { name = Printf.sprintf "RING-%d" n; graph = g; coords = None }

let complete n =
  if n <= 0 then invalid_arg "Topology.complete: size must be positive";
  let g = Graph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      Graph.add_edge g u v
    done
  done;
  { name = Printf.sprintf "FULL-%d" n; graph = g; coords = None }

let express_1d n k =
  if k < 2 then invalid_arg "Topology.express_1d: k must be >= 2";
  let base = path n in
  let g = base.graph in
  let i = ref 0 in
  while !i + k <= n - 1 do
    Graph.add_edge g !i (!i + k);
    i := !i + k
  done;
  { base with name = Printf.sprintf "1EX-%d" k }

let express_2d rows cols k =
  if k < 2 then invalid_arg "Topology.express_2d: k must be >= 2";
  let base = grid rows cols in
  let g = base.graph in
  let id r c = (r * cols) + c in
  for r = 0 to rows - 1 do
    let c = ref 0 in
    while !c + k <= cols - 1 do
      Graph.add_edge g (id r !c) (id r (!c + k));
      c := !c + k
    done
  done;
  for c = 0 to cols - 1 do
    let r = ref 0 in
    while !r + k <= rows - 1 do
      Graph.add_edge g (id !r c) (id (!r + k) c);
      r := !r + k
    done
  done;
  { base with name = Printf.sprintf "2EX-%d" k }

let honeycomb rows cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Topology.honeycomb: dimensions must be positive";
  (* brick-wall drawing: (rows+1) rows of (2*cols + 2) vertices, all
     horizontal edges, vertical rungs every 2 columns with alternating
     offset so every face is a hexagon and every degree is <= 3 *)
  let vrows = rows + 1 and vcols = (2 * cols) + 2 in
  let id r c = (r * vcols) + c in
  let g = Graph.create (vrows * vcols) in
  for r = 0 to vrows - 1 do
    for c = 0 to vcols - 1 do
      if c + 1 < vcols then Graph.add_edge g (id r c) (id r (c + 1));
      if r + 1 < vrows && c mod 2 = r mod 2 then Graph.add_edge g (id r c) (id (r + 1) c)
    done
  done;
  let coords = Array.init (vrows * vcols) (fun v -> (v / vcols, v mod vcols)) in
  { name = Printf.sprintf "HEX-%dx%d" rows cols; graph = g; coords = Some coords }

let subdivide t =
  let g = t.graph in
  let n = Graph.n_vertices g in
  let edges = Graph.edges g in
  let g' = Graph.create (n + List.length edges) in
  List.iteri
    (fun i (u, v) ->
      let middle = n + i in
      Graph.add_edge g' u middle;
      Graph.add_edge g' middle v)
    edges;
  { name = "SUB-" ^ t.name; graph = g'; coords = None }

let heavy_hex rows cols =
  let t = subdivide (honeycomb rows cols) in
  { t with name = Printf.sprintf "HH-%dx%d" rows cols }

let octagonal rows cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Topology.octagonal: dimensions must be positive";
  let cell r c = ((r * cols) + c) * 8 in
  let g = Graph.create (rows * cols * 8) in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let base = cell r c in
      (* the 8-qubit ring *)
      for k = 0 to 7 do
        Graph.add_edge g (base + k) (base + ((k + 1) mod 8))
      done;
      (* two couplings to the ring on the right (Aspen style) *)
      if c + 1 < cols then begin
        let right = cell r (c + 1) in
        Graph.add_edge g (base + 1) (right + 6);
        Graph.add_edge g (base + 2) (right + 5)
      end;
      (* two couplings to the ring below *)
      if r + 1 < rows then begin
        let below = cell (r + 1) c in
        Graph.add_edge g (base + 3) (below + 0);
        Graph.add_edge g (base + 4) (below + 7)
      end
    done
  done;
  { name = Printf.sprintf "OCT-%dx%d" rows cols; graph = g; coords = None }

type tiling_class = A | B | C | D

let tiling_class_to_string = function A -> "A" | B -> "B" | C -> "C" | D -> "D"

let grid_edge_classes rows cols =
  let id r c = (r * cols) + c in
  let classes = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      (* Vertical couplers alternate A/B by row parity; horizontal couplers
         alternate C/D by column parity.  Within a class no qubit repeats. *)
      if r + 1 < rows then begin
        let cls = if r mod 2 = 0 then A else B in
        classes := ((id r c, id (r + 1) c), cls) :: !classes
      end;
      if c + 1 < cols then begin
        let cls = if c mod 2 = 0 then C else D in
        classes := ((id r c, id r (c + 1)), cls) :: !classes
      end
    done
  done;
  List.rev !classes

let coords_exn t v =
  match t.coords with
  | None -> invalid_arg (Printf.sprintf "Topology.coords_exn: %s has no embedding" t.name)
  | Some coords -> coords.(v)
