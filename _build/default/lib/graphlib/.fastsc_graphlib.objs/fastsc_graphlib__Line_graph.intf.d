lib/graphlib/line_graph.mli: Graph
