lib/graphlib/paths.ml: Array Graph List Queue
