lib/graphlib/line_graph.ml: Array Graph List
