lib/graphlib/graph.ml: Array Format Fun Int List Printf Queue Set
