lib/graphlib/coloring.ml: Array Graph Int List Queue Set
