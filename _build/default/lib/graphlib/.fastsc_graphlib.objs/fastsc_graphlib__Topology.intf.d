lib/graphlib/topology.mli: Graph
