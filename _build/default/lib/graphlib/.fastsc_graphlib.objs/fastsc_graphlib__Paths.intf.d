lib/graphlib/paths.mli: Graph
