lib/graphlib/topology.ml: Array Graph List Printf
