let build g =
  let edge_list = Graph.edges g in
  let edge_of_vertex = Array.of_list edge_list in
  let m = Array.length edge_of_vertex in
  let lg = Graph.create m in
  (* Group edge indices by endpoint: edges sharing an endpoint are pairwise
     adjacent in the line graph. *)
  let incident = Array.make (Graph.n_vertices g) [] in
  Array.iteri
    (fun i (u, v) ->
      incident.(u) <- i :: incident.(u);
      incident.(v) <- i :: incident.(v))
    edge_of_vertex;
  Array.iter
    (fun edge_ids ->
      let rec pairs = function
        | [] -> ()
        | i :: rest ->
          List.iter (fun j -> Graph.add_edge lg i j) rest;
          pairs rest
      in
      pairs edge_ids)
    incident;
  (lg, edge_of_vertex)

let vertex_of_edge edge_of_vertex (u, v) =
  let canonical = (min u v, max u v) in
  let found = ref (-1) in
  Array.iteri (fun i e -> if e = canonical then found := i) edge_of_vertex;
  if !found < 0 then raise Not_found else !found
