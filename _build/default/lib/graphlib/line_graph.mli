(** Line graphs.

    The crosstalk graph of the paper (§IV-C2) is built on top of the line
    graph of the device connectivity graph: every coupling (edge) becomes a
    vertex, and couplings sharing a qubit become adjacent.  Algorithm 2 then
    densifies this with distance-[d] edges; that step lives in
    [Fastsc_core.Crosstalk_graph], while the pure line-graph construction is
    here. *)

val build : Graph.t -> Graph.t * (int * int) array
(** [build g] returns [(lg, edge_of_vertex)] where vertex [i] of [lg]
    corresponds to the canonical edge [edge_of_vertex.(i)] of [g], and two
    vertices of [lg] are adjacent iff their edges share an endpoint in [g].
    The edge array is in the order of {!Graph.edges}, so indices are stable
    and reproducible. *)

val vertex_of_edge : (int * int) array -> int * int -> int
(** Inverse lookup into the [edge_of_vertex] array; accepts either endpoint
    order.
    @raise Not_found if the pair is not an edge of the original graph. *)
