(** Shortest paths and distances on unweighted graphs.

    Distances drive two parts of the system: the crosstalk-graph construction
    (Algorithm 2 connects couplings whose endpoints are within crosstalk
    distance [d]) and the SWAP router (non-adjacent two-qubit gates travel
    along a shortest path of the connectivity graph). *)

val bfs_distances : Graph.t -> int -> int array
(** [bfs_distances g src] gives the hop distance from [src] to every vertex;
    [-1] marks unreachable vertices. *)

val all_pairs : Graph.t -> int array array
(** [all_pairs g] is the full distance matrix ([-1] for unreachable pairs);
    O(n·(n+m)) via repeated BFS. *)

val distance : Graph.t -> int -> int -> int
(** Single-pair distance, [-1] if unreachable. *)

val shortest_path : Graph.t -> int -> int -> int list option
(** [shortest_path g u v] is a minimum-hop vertex sequence from [u] to [v]
    (inclusive), or [None] if disconnected.  Ties are broken toward smaller
    vertex ids so routing is deterministic. *)

val eccentricity : Graph.t -> int -> int
(** Greatest distance from the vertex to any reachable vertex. *)

val diameter : Graph.t -> int
(** Largest eccentricity over all vertices; [-1] for a disconnected or empty
    graph. *)

val edge_distance : Graph.t -> int * int -> int * int -> int
(** [edge_distance g (u1,v1) (u2,v2)] is the length of the shortest path
    connecting the two edges, i.e. the minimum pairwise endpoint distance
    (footnote 3 of the paper).  Edges sharing a vertex are at distance 0. *)
