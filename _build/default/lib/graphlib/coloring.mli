(** Vertex coloring heuristics.

    The compiler maps frequency assignment to graph coloring (§IV-C): idle
    frequencies come from coloring the connectivity graph, interaction
    frequencies from coloring the active subgraph of the crosstalk graph.
    Coloring is NP-complete; the paper uses the Welsh–Powell polynomial-time
    greedy heuristic.  We also provide DSATUR and natural-order greedy for
    the ablation benches. *)

type coloring = int array
(** [coloring.(v)] is the color of vertex [v], a small non-negative integer.
    Isolated vertices still receive a color. *)

val greedy : order:int list -> Graph.t -> coloring
(** First-fit greedy in the supplied vertex order.  Every vertex of the graph
    must appear exactly once in [order].
    @raise Invalid_argument otherwise. *)

val natural : Graph.t -> coloring
(** Greedy in increasing vertex-id order. *)

val welsh_powell : Graph.t -> coloring
(** Greedy in order of non-increasing degree (Welsh & Powell 1967) — the
    heuristic named by the paper (§V-B2). *)

val dsatur : Graph.t -> coloring
(** Brélaz's DSATUR: repeatedly color the vertex with the highest color
    saturation, breaking ties by degree then id. *)

val n_colors : coloring -> int
(** Number of distinct colors used ([max + 1]); 0 for the empty coloring. *)

val is_proper : Graph.t -> coloring -> bool
(** No edge joins two same-colored vertices. *)

val two_color : Graph.t -> coloring option
(** BFS bipartition: [Some c] with colors in {0,1} iff the graph is
    bipartite.  Used for idle frequencies on meshes, which are 2-colorable
    (§IV-C1). *)

val k_colorable : ?budget:int -> Graph.t -> int -> coloring option
(** Exact backtracking search for a proper coloring with at most [k] colors
    (DSATUR-style vertex ordering, symmetry-broken so each new color index is
    introduced in order).  [budget] bounds the search nodes (default 10^7).
    @raise Exit never; instead
    @raise Failure if the budget is exhausted before the search decides. *)

val chromatic_number : ?budget:int -> Graph.t -> int
(** Exact chromatic number, by trying increasing [k] with {!k_colorable}
    starting from the clique-free lower bound 1.  Exponential in general —
    intended for the small graphs the paper reasons about (e.g. validating
    that mesh crosstalk graphs need exactly 8 colors, Fig 7).
    @raise Failure if the budget is exhausted. *)

val color_classes : coloring -> int list array
(** [color_classes c].(k) lists vertices with color [k], ascending. *)

val restrict : coloring -> int list -> (int * int) list
(** [restrict c vs] pairs each vertex of [vs] with its color — convenient for
    reporting per-subgraph assignments. *)
