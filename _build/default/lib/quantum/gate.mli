(** Quantum gate set.

    The native gates of the frequency-tunable transmon architecture are
    single-qubit rotations (microwave/flux driven) plus the resonance-driven
    two-qubit gates CZ, iSWAP and sqrt-iSWAP (paper §II-B).  CNOT and SWAP
    are program-level gates that the compiler decomposes ({!Decompose}).
    XEB circuits additionally use the sqrt-X/sqrt-Y/sqrt-W single-qubit set
    of the supremacy experiment. *)

type t =
  | I  (** Explicit idle. *)
  | X
  | Y
  | Z
  | H
  | S
  | Sdg
  | T
  | Tdg
  | Sx  (** sqrt-X. *)
  | Sy  (** sqrt-Y. *)
  | Sw  (** sqrt-W, W = (X+Y)/sqrt 2; XEB gate set. *)
  | Rx of float
  | Ry of float
  | Rz of float
  | Cz
  | Iswap
  | Sqrt_iswap
  | Xy of float
      (** Partial excitation exchange by angle theta in (0, 2pi): the
          XY(theta) family native to resonance-driven hardware —
          [Xy pi = Iswap], [Xy (pi/2) = Sqrt_iswap] (paper's iSWAP sign
          convention). *)
  | Cnot  (** Non-native; control is the first operand. *)
  | Swap  (** Non-native. *)

type application = { id : int; gate : t; qubits : int array }
(** A gate applied to specific qubits.  [id] is the position in its circuit,
    stable across slicing and used to attach criticality. *)

val arity : t -> int
(** 1 or 2. *)

val is_two_qubit : t -> bool

val is_native : t -> bool
(** True for everything except [Cnot] and [Swap]. *)

val is_entangling : t -> bool
(** True for all two-qubit gates (they all create entanglement here). *)

val name : t -> string
(** Short lowercase mnemonic, e.g. ["rz(0.79)"], ["sqrt_iswap"]. *)

val equal : t -> t -> bool
(** Structural equality with float tolerance on rotation angles. *)

val unitary : t -> Matrix.t
(** The gate's matrix: 2x2 for single-qubit gates, 4x4 for two-qubit gates in
    the basis |q_first q_second> with the first operand as the
    most-significant bit.  Follows the paper's iSWAP sign convention
    (amplitude [-i] on the exchanged states). *)

val dagger : t -> t option
(** Inverse within the gate set, when representable. *)
