type t =
  | I
  | X
  | Y
  | Z
  | H
  | S
  | Sdg
  | T
  | Tdg
  | Sx
  | Sy
  | Sw
  | Rx of float
  | Ry of float
  | Rz of float
  | Cz
  | Iswap
  | Sqrt_iswap
  | Xy of float
  | Cnot
  | Swap

type application = { id : int; gate : t; qubits : int array }

let arity = function
  | I | X | Y | Z | H | S | Sdg | T | Tdg | Sx | Sy | Sw | Rx _ | Ry _ | Rz _ -> 1
  | Cz | Iswap | Sqrt_iswap | Xy _ | Cnot | Swap -> 2

let is_two_qubit g = arity g = 2

let is_native = function Cnot | Swap -> false | _ -> true

let is_entangling = is_two_qubit

let name = function
  | I -> "i"
  | X -> "x"
  | Y -> "y"
  | Z -> "z"
  | H -> "h"
  | S -> "s"
  | Sdg -> "sdg"
  | T -> "t"
  | Tdg -> "tdg"
  | Sx -> "sx"
  | Sy -> "sy"
  | Sw -> "sw"
  | Rx theta -> Printf.sprintf "rx(%.2f)" theta
  | Ry theta -> Printf.sprintf "ry(%.2f)" theta
  | Rz theta -> Printf.sprintf "rz(%.2f)" theta
  | Cz -> "cz"
  | Iswap -> "iswap"
  | Sqrt_iswap -> "sqrt_iswap"
  | Xy theta -> Printf.sprintf "xy(%.2f)" theta
  | Cnot -> "cnot"
  | Swap -> "swap"

let equal a b =
  let close x y = Float.abs (x -. y) <= 1e-12 in
  match (a, b) with
  | Rx x, Rx y | Ry x, Ry y | Rz x, Rz y | Xy x, Xy y -> close x y
  | _ -> a = b

let c re im = { Complex.re; im }

let z0 = Complex.zero

let z1 = Complex.one

let mi = c 0.0 (-1.0) (* -i, the paper's iSWAP convention *)

(* Square root of an involution A: sqrt(A) = ((1+i) I + (1-i) A) / 2. *)
let sqrt_involution a =
  let id = Matrix.identity (Matrix.rows a) in
  Matrix.scale_re 0.5 (Matrix.add (Matrix.scale (c 1.0 1.0) id) (Matrix.scale (c 1.0 (-1.0)) a))

let pauli_x = Matrix.of_arrays [| [| z0; z1 |]; [| z1; z0 |] |]

let pauli_y = Matrix.of_arrays [| [| z0; c 0.0 (-1.0) |]; [| c 0.0 1.0; z0 |] |]

let pauli_w =
  let s = 1.0 /. sqrt 2.0 in
  Matrix.of_arrays [| [| z0; c s (-.s) |]; [| c s s; z0 |] |]

let unitary = function
  | I -> Matrix.identity 2
  | X -> pauli_x
  | Y -> pauli_y
  | Z -> Matrix.of_arrays [| [| z1; z0 |]; [| z0; c (-1.0) 0.0 |] |]
  | H ->
    let s = 1.0 /. sqrt 2.0 in
    Matrix.of_arrays [| [| c s 0.0; c s 0.0 |]; [| c s 0.0; c (-.s) 0.0 |] |]
  | S -> Matrix.of_arrays [| [| z1; z0 |]; [| z0; c 0.0 1.0 |] |]
  | Sdg -> Matrix.of_arrays [| [| z1; z0 |]; [| z0; c 0.0 (-1.0) |] |]
  | T ->
    let s = 1.0 /. sqrt 2.0 in
    Matrix.of_arrays [| [| z1; z0 |]; [| z0; c s s |] |]
  | Tdg ->
    let s = 1.0 /. sqrt 2.0 in
    Matrix.of_arrays [| [| z1; z0 |]; [| z0; c s (-.s) |] |]
  | Sx -> sqrt_involution pauli_x
  | Sy -> sqrt_involution pauli_y
  | Sw -> sqrt_involution pauli_w
  | Rx theta ->
    let ch = cos (theta /. 2.0) and sh = sin (theta /. 2.0) in
    Matrix.of_arrays [| [| c ch 0.0; c 0.0 (-.sh) |]; [| c 0.0 (-.sh); c ch 0.0 |] |]
  | Ry theta ->
    let ch = cos (theta /. 2.0) and sh = sin (theta /. 2.0) in
    Matrix.of_arrays [| [| c ch 0.0; c (-.sh) 0.0 |]; [| c sh 0.0; c ch 0.0 |] |]
  | Rz theta ->
    let half = theta /. 2.0 in
    Matrix.of_arrays
      [| [| Complex_ext.exp_i (-.half); z0 |]; [| z0; Complex_ext.exp_i half |] |]
  | Cz ->
    Matrix.of_arrays
      [|
        [| z1; z0; z0; z0 |];
        [| z0; z1; z0; z0 |];
        [| z0; z0; z1; z0 |];
        [| z0; z0; z0; c (-1.0) 0.0 |];
      |]
  | Iswap ->
    Matrix.of_arrays
      [|
        [| z1; z0; z0; z0 |];
        [| z0; z0; mi; z0 |];
        [| z0; mi; z0; z0 |];
        [| z0; z0; z0; z1 |];
      |]
  | Sqrt_iswap ->
    let s = 1.0 /. sqrt 2.0 in
    Matrix.of_arrays
      [|
        [| z1; z0; z0; z0 |];
        [| z0; c s 0.0; c 0.0 (-.s); z0 |];
        [| z0; c 0.0 (-.s); c s 0.0; z0 |];
        [| z0; z0; z0; z1 |];
      |]
  | Xy theta ->
    let ch = cos (theta /. 2.0) and sh = sin (theta /. 2.0) in
    Matrix.of_arrays
      [|
        [| z1; z0; z0; z0 |];
        [| z0; c ch 0.0; c 0.0 (-.sh); z0 |];
        [| z0; c 0.0 (-.sh); c ch 0.0; z0 |];
        [| z0; z0; z0; z1 |];
      |]
  | Cnot ->
    Matrix.of_arrays
      [|
        [| z1; z0; z0; z0 |];
        [| z0; z1; z0; z0 |];
        [| z0; z0; z0; z1 |];
        [| z0; z0; z1; z0 |];
      |]
  | Swap ->
    Matrix.of_arrays
      [|
        [| z1; z0; z0; z0 |];
        [| z0; z0; z1; z0 |];
        [| z0; z1; z0; z0 |];
        [| z0; z0; z0; z1 |];
      |]

let dagger = function
  | I -> Some I
  | X -> Some X
  | Y -> Some Y
  | Z -> Some Z
  | H -> Some H
  | S -> Some Sdg
  | Sdg -> Some S
  | T -> Some Tdg
  | Tdg -> Some T
  | Rx theta -> Some (Rx (-.theta))
  | Ry theta -> Some (Ry (-.theta))
  | Rz theta -> Some (Rz (-.theta))
  | Cz -> Some Cz
  | Cnot -> Some Cnot
  | Swap -> Some Swap
  | Sx | Sy | Sw | Iswap | Sqrt_iswap | Xy _ -> None
