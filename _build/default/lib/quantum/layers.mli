(** Circuit slicing and criticality analysis (paper §V-A, Algorithm 1 line 7
    and §V-B6).

    Slicing partitions a circuit into layers (time steps) of
    qubit-disjoint gates, as-soon-as-possible: each gate lands in the first
    layer after all gates it depends on (i.e. earlier gates sharing a qubit).
    The criticality of a gate is its height above the end of the program
    along the dependency DAG — the scheduler serializes low-criticality
    gates first so the critical path is preserved (§V-B6). *)

val slice : Circuit.t -> Gate.application list list
(** ASAP layers, in time order; the concatenation is a permutation of the
    circuit's instructions. *)

val depth : Circuit.t -> int
(** Number of ASAP layers. *)

val layer_index : Circuit.t -> int array
(** [layer_index c].(id) is the ASAP layer of instruction [id]. *)

val criticality : Circuit.t -> int array
(** [criticality c].(id) = length of the longest dependency chain from this
    instruction (inclusive) to the end of the circuit.  Gates on the program
    critical path have the largest values in their layer. *)

val qubit_busy_layers : Circuit.t -> int array
(** For each qubit, the number of layers in which it executes a gate —
    used by decoherence accounting for idle-time estimation. *)
