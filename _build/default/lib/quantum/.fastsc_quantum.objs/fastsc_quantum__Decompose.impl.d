lib/quantum/decompose.ml: Array Circuit Float Gate List
