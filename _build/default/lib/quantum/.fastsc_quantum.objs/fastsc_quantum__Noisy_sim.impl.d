lib/quantum/noisy_sim.ml: Complex Gate List Matrix Rng Statevector
