lib/quantum/density.ml: Array Complex Float Gate List Matrix Noisy_sim Printf Statevector
