lib/quantum/draw.mli: Circuit
