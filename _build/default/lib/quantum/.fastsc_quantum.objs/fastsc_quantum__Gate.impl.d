lib/quantum/gate.ml: Complex Complex_ext Float Matrix Printf
