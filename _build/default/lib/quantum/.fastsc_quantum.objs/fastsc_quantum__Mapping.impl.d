lib/quantum/mapping.ml: Array Circuit Fun Gate Graph List Option Paths Printf Queue
