lib/quantum/gate.mli: Matrix
