lib/quantum/layers.ml: Array Circuit Gate Int Set
