lib/quantum/unitary.ml: Array Circuit Complex Float Matrix Statevector
