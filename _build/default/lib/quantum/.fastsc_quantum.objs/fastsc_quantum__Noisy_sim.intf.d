lib/quantum/noisy_sim.mli: Gate Matrix Rng Statevector
