lib/quantum/density.mli: Gate Matrix Noisy_sim Statevector
