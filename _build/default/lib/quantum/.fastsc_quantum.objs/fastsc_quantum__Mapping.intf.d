lib/quantum/mapping.mli: Circuit Graph
