lib/quantum/circuit.ml: Array Format Gate Hashtbl List Printf Set String
