lib/quantum/statevector.ml: Array Circuit Complex Complex_ext Gate List Matrix Printf Rng
