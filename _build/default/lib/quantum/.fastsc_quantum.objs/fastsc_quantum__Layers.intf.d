lib/quantum/layers.mli: Circuit Gate
