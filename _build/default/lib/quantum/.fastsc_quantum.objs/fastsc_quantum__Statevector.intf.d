lib/quantum/statevector.mli: Circuit Complex Gate Matrix Rng
