lib/quantum/draw.ml: Array Circuit Gate Layers List Printf String
