lib/quantum/unitary.mli: Circuit Complex Gate Matrix
