(** ASCII circuit rendering.

    Terminal-friendly diagrams for the CLI and examples: one row per qubit,
    one column per ASAP layer, two-qubit gates drawn with a vertical link
    between their operands ([*] marks the first operand — the control for
    CNOT).  Long circuits wrap into banks of [max_width] columns. *)

val circuit : ?max_width:int -> Circuit.t -> string
(** Render the whole circuit; [max_width] (default 20) bounds the layers per
    bank. *)

val layer : Circuit.t -> int -> string
(** Render a single ASAP layer (0-based).
    @raise Invalid_argument if the index is out of range. *)
