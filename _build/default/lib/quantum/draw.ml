(* Each layer renders into one fixed-width column; wires are '-', idle
   crossings of a two-qubit link are '|'. *)

let label_of app =
  match app.Gate.qubits with
  | [| _ |] -> Gate.name app.Gate.gate
  | _ -> Gate.name app.Gate.gate

let render_layers n_qubits layers =
  List.map
    (fun layer ->
      (* cell text per qubit for this column *)
      let cells = Array.make n_qubits "" in
      let links = Array.make n_qubits false in
      List.iter
        (fun app ->
          match app.Gate.qubits with
          | [| q |] -> cells.(q) <- label_of app
          | [| a; b |] ->
            cells.(a) <- "*";
            cells.(b) <- label_of app;
            for q = min a b + 1 to max a b - 1 do
              if cells.(q) = "" then links.(q) <- true
            done
          | _ -> ())
        layer;
      let width =
        Array.fold_left (fun acc cell -> max acc (String.length cell)) 1 cells
      in
      Array.init n_qubits (fun q ->
          if cells.(q) <> "" then begin
            let pad = width - String.length cells.(q) in
            let left = pad / 2 and right = pad - (pad / 2) in
            String.make left '-' ^ cells.(q) ^ String.make right '-'
          end
          else if links.(q) then begin
            let left = (width - 1) / 2 in
            String.make left '-' ^ "|" ^ String.make (width - 1 - left) '-'
          end
          else String.make width '-'))
    layers

let assemble n_qubits columns =
  let rows =
    List.init n_qubits (fun q ->
        Printf.sprintf "q%-2d: -%s-" q
          (String.concat "-" (List.map (fun col -> col.(q)) columns)))
  in
  String.concat "\n" rows

let circuit ?(max_width = 20) c =
  if max_width < 1 then invalid_arg "Draw.circuit: max_width must be positive";
  let n = Circuit.n_qubits c in
  let layers = Layers.slice c in
  if layers = [] then
    String.concat "\n" (List.init n (fun q -> Printf.sprintf "q%-2d: ---" q))
  else begin
    let columns = render_layers n layers in
    (* split into banks of max_width columns *)
    let rec banks acc current count = function
      | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
      | col :: rest ->
        if count = max_width then banks (List.rev current :: acc) [ col ] 1 rest
        else banks acc (col :: current) (count + 1) rest
    in
    String.concat "\n\n" (List.map (assemble n) (banks [] [] 0 columns))
  end

let layer c index =
  let layers = Layers.slice c in
  if index < 0 || index >= List.length layers then
    invalid_arg "Draw.layer: index out of range";
  assemble (Circuit.n_qubits c) [ List.nth (render_layers (Circuit.n_qubits c) layers) index ]
