let tau = 2.0 *. Float.pi

(* Normalise a rotation angle into (-pi, pi]. *)
let normalize_angle theta =
  let t = Float.rem theta tau in
  let t = if t > Float.pi then t -. tau else if t <= -.Float.pi then t +. tau else t in
  t

let negligible theta = Float.abs (normalize_angle theta) < 1e-12

(* Outcome of trying to merge two adjacent gates on the same qubits. *)
type merge =
  | Cancel  (** The pair is the identity (up to global phase). *)
  | Replace of (Gate.t * int list) list  (** The pair rewrites to these gates. *)
  | Keep  (** No rule applies. *)

let same_set a b =
  List.sort compare a = List.sort compare b

let combine (g1, qs1) (g2, qs2) =
  let fused axis a b qs =
    let total = normalize_angle (a +. b) in
    if negligible total then Cancel else Replace [ (axis total, qs) ]
  in
  match (g1, g2) with
  | Gate.Rx a, Gate.Rx b -> fused (fun t -> Gate.Rx t) a b qs1
  | Gate.Ry a, Gate.Ry b -> fused (fun t -> Gate.Ry t) a b qs1
  | Gate.Rz a, Gate.Rz b -> fused (fun t -> Gate.Rz t) a b qs1
  | Gate.H, Gate.H | Gate.X, Gate.X | Gate.Y, Gate.Y | Gate.Z, Gate.Z -> Cancel
  | Gate.S, Gate.Sdg | Gate.Sdg, Gate.S | Gate.T, Gate.Tdg | Gate.Tdg, Gate.T -> Cancel
  | Gate.S, Gate.S -> Replace [ (Gate.Z, qs1) ]
  | Gate.Sdg, Gate.Sdg -> Replace [ (Gate.Z, qs1) ]
  | Gate.T, Gate.T -> Replace [ (Gate.S, qs1) ]
  | Gate.Tdg, Gate.Tdg -> Replace [ (Gate.Sdg, qs1) ]
  | Gate.Cz, Gate.Cz when same_set qs1 qs2 -> Cancel
  | Gate.Swap, Gate.Swap when same_set qs1 qs2 -> Cancel
  | Gate.Cnot, Gate.Cnot when qs1 = qs2 -> Cancel
  | Gate.Sqrt_iswap, Gate.Sqrt_iswap when same_set qs1 qs2 ->
    Replace [ (Gate.Iswap, qs1) ]
  | Gate.Xy a, Gate.Xy b when same_set qs1 qs2 ->
    (* XY angles compose on the exchange axis (period 4pi overall, but the
       computational block repeats at 4pi in theta/2 = 2pi in theta with a
       sign handled by the unitary itself) *)
    let total = a +. b in
    if negligible (total /. 2.0) then Cancel else Replace [ (Gate.Xy total, qs1) ]
  | Gate.Iswap, Gate.Iswap when same_set qs1 qs2 -> (
    (* iSWAP^2 = Z (x) Z up to global phase: two cheap 1q gates *)
    match qs1 with
    | [ a; b ] -> Replace [ (Gate.Z, [ a ]); (Gate.Z, [ b ]) ]
    | _ -> Keep)
  | _ -> Keep

(* One forward pass.  [out] holds surviving gates (None = deleted);
   [last.(q)] indexes the latest surviving gate touching qubit [q]. *)
let pass gates n_qubits =
  (* slots are never reused after deletion, and each merge appends at most
     two replacement gates, so 2n + 2 slots always suffice *)
  let out : (Gate.t * int list) option array =
    Array.make ((2 * List.length gates) + 2) None
  in
  let filled = ref 0 in
  let last = Array.make n_qubits (-1) in
  let changed = ref false in
  let clear_last qs = List.iter (fun q -> last.(q) <- -1) qs in
  let append (g, qs) =
    out.(!filled) <- Some (g, qs);
    List.iter (fun q -> last.(q) <- !filled) qs;
    incr filled
  in
  let emit (g, qs) =
    let skip =
      match g with
      | Gate.I -> true
      | Gate.Rx t | Gate.Ry t | Gate.Rz t -> negligible t
      | _ -> false
    in
    if skip then changed := true
    else begin
      let prev_indices = List.map (fun q -> last.(q)) qs in
      let mergeable =
        match prev_indices with
        | idx :: rest when idx >= 0 && List.for_all (fun i -> i = idx) rest -> (
          match out.(idx) with
          | Some (pg, pqs) when same_set pqs qs -> Some (idx, (pg, pqs))
          | _ -> None)
        | _ -> None
      in
      match mergeable with
      | Some (idx, prev) -> (
        match combine prev (g, qs) with
        | Cancel ->
          out.(idx) <- None;
          clear_last qs;
          changed := true
        | Replace replacements ->
          out.(idx) <- None;
          clear_last qs;
          List.iter append replacements;
          changed := true
        | Keep -> append (g, qs))
      | None -> append (g, qs)
    end
  in
  List.iter emit gates;
  let survivors = List.filter_map Fun.id (Array.to_list out) in
  (survivors, !changed)

let run circuit =
  let n = Circuit.n_qubits circuit in
  let gates =
    Array.to_list
      (Array.map
         (fun app -> (app.Gate.gate, Array.to_list app.Gate.qubits))
         (Circuit.instructions circuit))
  in
  let rec fixpoint gates iterations =
    if iterations = 0 then gates
    else
      let gates', changed = pass gates n in
      if changed then fixpoint gates' (iterations - 1) else gates'
  in
  (* gate count strictly decreases on every changing pass except rotation
     refusions, so length + 1 passes always suffice; cap generously *)
  Circuit.of_gates n (fixpoint gates (List.length gates + 2))

let removed before after = Circuit.length before - Circuit.length after
