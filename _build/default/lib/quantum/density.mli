(** Density-matrix simulation with Kraus channels.

    The exact open-system counterpart of the Monte-Carlo trajectory
    simulator: instead of sampling Pauli errors per trajectory, the full
    density matrix evolves through the channels, so the simulated success
    probability carries no sampling noise.  Exponential in memory
    (4^n complex entries), practical to ~6 qubits — exactly the regime of
    the paper's §VI-C validation.

    Supported processes mirror {!Noisy_sim.event}: intended unitaries,
    coherent spectator exchanges, and per-slice decoherence — here as the
    proper amplitude-damping + pure-dephasing channels rather than their
    Pauli twirl, making this the reference the twirled trajectory model is
    checked against. *)

type t
(** A density matrix on [n] qubits; mutable in place. *)

val create : int -> t
(** |0..0><0..0| on [n] qubits (supported range 1..10). *)

val of_statevector : Statevector.t -> t
(** The pure state |psi><psi|. *)

val n_qubits : t -> int

val trace : t -> float
(** Real part of the trace; 1 up to numerical error for valid states. *)

val purity : t -> float
(** [Tr(rho^2)]; 1 for pure states, 1/2^n for the maximally mixed state. *)

val population : t -> int -> float
(** Diagonal entry: probability of a basis outcome. *)

val apply_unitary1 : t -> Matrix.t -> int -> unit
(** Conjugate by a 2x2 unitary on one qubit. *)

val apply_unitary2 : t -> Matrix.t -> int -> int -> unit
(** Conjugate by a 4x4 unitary on an ordered qubit pair (first operand most
    significant, as in {!Statevector}). *)

val apply_gate : t -> Gate.t -> int list -> unit

val apply_kraus1 : t -> Matrix.t list -> int -> unit
(** Apply a single-qubit channel given by its Kraus operators
    [rho -> sum_k K rho K†].  The operators must satisfy
    [sum K† K = I] (checked to 1e-6).
    @raise Invalid_argument otherwise. *)

val amplitude_damping : gamma:float -> Matrix.t list
(** Kraus operators of T1 relaxation with decay probability [gamma]. *)

val phase_damping : lambda:float -> Matrix.t list
(** Kraus operators of pure dephasing with probability [lambda]. *)

val thermal_relaxation : t -> q:int -> t1:float -> t2:float -> time:float -> unit
(** Amplitude damping + pure dephasing of one qubit over [time] ns, with the
    pure-dephasing rate [1/T2 - 1/(2 T1)] floored at zero (same physics as
    {!Fastsc_noise.Decoherence.pauli_rates}, untwirled). *)

val run_steps : n_qubits:int -> Noisy_sim.step list -> t
(** Evolve |0..0> through lowered schedule steps: [Unitary] and
    [Partial_exchange] events apply exactly; each [Pauli_noise] event is
    applied as the corresponding Pauli channel (matching the trajectory
    simulator's model, so the two agree in expectation). *)

val fidelity_pure : t -> Statevector.t -> float
(** [<psi| rho |psi>] — success probability against an ideal pure state. *)
