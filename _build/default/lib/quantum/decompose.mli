(** Two-qubit gate decomposition into the native transmon gate set
    (paper §V-B5, Fig 8).

    The frequency-tunable architecture natively implements CZ, iSWAP and
    sqrt-iSWAP via frequency resonance; CNOT and SWAP must be rewritten.
    The cost asymmetry drives the paper's {e hybrid} strategy: CNOT is
    cheapest through CZ (one native two-qubit gate), while SWAP is cheapest
    through sqrt-iSWAP (three native gates, against three CZs with many more
    single-qubit corrections) — so the hybrid strategy decomposes CNOT with
    CZ and SWAP with sqrt-iSWAP.

    All identities are exact up to global phase and are verified against the
    state-vector simulator in the test suite; the iSWAP-based CNOT constants
    were derived with [bin/search_decomp.exe]. *)

type strategy =
  | All_cz  (** CNOT and SWAP through CZ. *)
  | All_iswap  (** CNOT through iSWAP, SWAP through sqrt-iSWAP. *)
  | Hybrid  (** CNOT through CZ, SWAP through sqrt-iSWAP (the paper's choice). *)

val strategy_to_string : strategy -> string

val cnot_via_cz : int -> int -> (Gate.t * int list) list
(** [cnot_via_cz c t]: H(t); CZ; H(t). *)

val cnot_via_iswap : int -> int -> (Gate.t * int list) list
(** Two iSWAPs plus single-qubit corrections (Fig 8a). *)

val swap_via_cz : int -> int -> (Gate.t * int list) list
(** Three CNOTs, each through CZ (Fig 8d). *)

val swap_via_sqrt_iswap : int -> int -> (Gate.t * int list) list
(** Three sqrt-iSWAPs plus single-qubit corrections (Fig 8b). *)

val gate : strategy -> Gate.t -> int list -> (Gate.t * int list) list
(** Decompose one application; native gates pass through unchanged. *)

val run : strategy -> Circuit.t -> Circuit.t
(** Rewrite every non-native gate of the circuit.  The result contains only
    native gates ({!Gate.is_native}). *)
