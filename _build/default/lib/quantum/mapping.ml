type result = {
  circuit : Circuit.t;
  initial : int array;
  final : int array;
  n_swaps : int;
}

let check_fits device circuit =
  if Graph.n_vertices device < Circuit.n_qubits circuit then
    invalid_arg
      (Printf.sprintf "Mapping: device has %d qubits, circuit needs %d"
         (Graph.n_vertices device) (Circuit.n_qubits circuit))

let identity_placement device circuit =
  check_fits device circuit;
  Array.init (Circuit.n_qubits circuit) Fun.id

let degree_placement device circuit =
  check_fits device circuit;
  let n_logical = Circuit.n_qubits circuit in
  let n_physical = Graph.n_vertices device in
  (* Interaction degree of each logical qubit. *)
  let partners = Array.make n_logical 0 in
  List.iter
    (fun (a, b) ->
      partners.(a) <- partners.(a) + 1;
      partners.(b) <- partners.(b) + 1)
    (Circuit.two_qubit_pairs circuit);
  let logical_order =
    List.sort
      (fun a b ->
        match compare partners.(b) partners.(a) with 0 -> compare a b | c -> c)
      (List.init n_logical Fun.id)
  in
  let placement = Array.make n_logical (-1) in
  let taken = Array.make n_physical false in
  let interaction_pairs = Circuit.two_qubit_pairs circuit in
  let placed_partner logical =
    (* A physical neighbour slot next to an already-placed interaction partner. *)
    List.find_map
      (fun (a, b) ->
        let other = if a = logical then Some b else if b = logical then Some a else None in
        match other with
        | Some o when placement.(o) >= 0 ->
          List.find_opt (fun p -> not taken.(p)) (Graph.neighbors device placement.(o))
        | _ -> None)
      interaction_pairs
  in
  let highest_free_degree () =
    let best = ref (-1) in
    for p = 0 to n_physical - 1 do
      if
        (not taken.(p))
        && (!best < 0 || Graph.degree device p > Graph.degree device !best)
      then best := p
    done;
    !best
  in
  List.iter
    (fun logical ->
      let spot =
        match placed_partner logical with Some p -> p | None -> highest_free_degree ()
      in
      placement.(logical) <- spot;
      taken.(spot) <- true)
    logical_order;
  placement

let quality_placement ~quality device circuit =
  check_fits device circuit;
  let n_logical = Circuit.n_qubits circuit in
  let n_physical = Graph.n_vertices device in
  let partners = Array.make n_logical 0 in
  List.iter
    (fun (a, b) ->
      partners.(a) <- partners.(a) + 1;
      partners.(b) <- partners.(b) + 1)
    (Circuit.two_qubit_pairs circuit);
  let logical_order =
    List.sort
      (fun a b -> match compare partners.(b) partners.(a) with 0 -> compare a b | c -> c)
      (List.init n_logical Fun.id)
  in
  let placement = Array.make n_logical (-1) in
  let taken = Array.make n_physical false in
  let interaction_pairs = Circuit.two_qubit_pairs circuit in
  let best_of candidates =
    List.fold_left
      (fun best p ->
        match best with
        | Some b when quality b >= quality p -> best
        | _ -> Some p)
      None candidates
  in
  let neighbour_spot logical =
    let placed_partner_spots =
      List.filter_map
        (fun (a, b) ->
          let other =
            if a = logical then Some b else if b = logical then Some a else None
          in
          match other with
          | Some o when placement.(o) >= 0 -> Some placement.(o)
          | _ -> None)
        interaction_pairs
    in
    best_of
      (List.concat_map
         (fun spot -> List.filter (fun p -> not taken.(p)) (Graph.neighbors device spot))
         placed_partner_spots)
  in
  let best_free () =
    best_of (List.filter (fun p -> not taken.(p)) (List.init n_physical Fun.id))
  in
  List.iter
    (fun logical ->
      let spot =
        match neighbour_spot logical with
        | Some p -> p
        | None -> Option.get (best_free ())
      in
      placement.(logical) <- spot;
      taken.(spot) <- true)
    logical_order;
  placement

let route ?placement device circuit =
  let placement =
    match placement with Some p -> p | None -> identity_placement device circuit
  in
  check_fits device circuit;
  let n_logical = Circuit.n_qubits circuit in
  if Array.length placement <> n_logical then
    invalid_arg "Mapping.route: placement size mismatch";
  let n_physical = Graph.n_vertices device in
  let phys_of_log = Array.copy placement in
  let log_of_phys = Array.make n_physical (-1) in
  Array.iteri
    (fun logical physical ->
      if physical < 0 || physical >= n_physical || log_of_phys.(physical) >= 0 then
        invalid_arg "Mapping.route: placement is not injective into the device";
      log_of_phys.(physical) <- logical)
    phys_of_log;
  let b = Circuit.builder n_physical in
  let n_swaps = ref 0 in
  let swap_physical p q =
    Circuit.add b Gate.Swap [ p; q ];
    incr n_swaps;
    let lp = log_of_phys.(p) and lq = log_of_phys.(q) in
    log_of_phys.(p) <- lq;
    log_of_phys.(q) <- lp;
    if lq >= 0 then phys_of_log.(lq) <- p;
    if lp >= 0 then phys_of_log.(lp) <- q
  in
  Array.iter
    (fun app ->
      match app.Gate.qubits with
      | [| q |] -> Circuit.add b app.Gate.gate [ phys_of_log.(q) ]
      | [| a; bq |] ->
        let pa = phys_of_log.(a) and pb = phys_of_log.(bq) in
        if Graph.mem_edge device pa pb then Circuit.add b app.Gate.gate [ pa; pb ]
        else begin
          match Paths.shortest_path device pa pb with
          | None ->
            invalid_arg
              (Printf.sprintf "Mapping.route: qubits %d and %d are disconnected" pa pb)
          | Some path ->
            (* Move operand [a] along the path until adjacent to [b]. *)
            let rec hop = function
              | p :: (q :: rest2 as rest) ->
                if rest2 = [] then (p, q)
                else begin
                  swap_physical p q;
                  hop rest
                end
              | _ -> assert false
            in
            let p_final, p_target = hop path in
            Circuit.add b app.Gate.gate [ p_final; p_target ]
        end
      | _ -> assert false)
    (Circuit.instructions circuit);
  {
    circuit = Circuit.finish b;
    initial = placement;
    final = Array.copy phys_of_log;
    n_swaps = !n_swaps;
  }

let route_lookahead ?placement ?(window = 8) device circuit =
  let placement =
    match placement with Some p -> p | None -> identity_placement device circuit
  in
  check_fits device circuit;
  let n_logical = Circuit.n_qubits circuit in
  if Array.length placement <> n_logical then
    invalid_arg "Mapping.route_lookahead: placement size mismatch";
  let n_physical = Graph.n_vertices device in
  let phys_of_log = Array.copy placement in
  let log_of_phys = Array.make n_physical (-1) in
  Array.iteri
    (fun logical physical ->
      if physical < 0 || physical >= n_physical || log_of_phys.(physical) >= 0 then
        invalid_arg "Mapping.route_lookahead: placement is not injective into the device";
      log_of_phys.(physical) <- logical)
    phys_of_log;
  let dist = Paths.all_pairs device in
  let instrs = Circuit.instructions circuit in
  (* per-qubit program-order queues: an instruction is ready when it heads
     the queue of each of its operands *)
  let queues = Array.init n_logical (fun _ -> Queue.create ()) in
  Array.iter
    (fun app -> Array.iter (fun q -> Queue.add app.Gate.id queues.(q)) app.Gate.qubits)
    instrs;
  let ready app =
    Array.for_all
      (fun q -> (not (Queue.is_empty queues.(q))) && Queue.peek queues.(q) = app.Gate.id)
      app.Gate.qubits
  in
  let remaining = ref (Array.length instrs) in
  let b = Circuit.builder n_physical in
  let n_swaps = ref 0 in
  let last_swap = ref (-1, -1) in
  let emit app =
    Circuit.add b app.Gate.gate
      (List.map (fun q -> phys_of_log.(q)) (Array.to_list app.Gate.qubits));
    Array.iter (fun q -> ignore (Queue.pop queues.(q))) app.Gate.qubits;
    decr remaining
  in
  let apply_swap p q =
    Circuit.add b Gate.Swap [ p; q ];
    incr n_swaps;
    last_swap := (min p q, max p q);
    let lp = log_of_phys.(p) and lq = log_of_phys.(q) in
    log_of_phys.(p) <- lq;
    log_of_phys.(q) <- lp;
    if lq >= 0 then phys_of_log.(lq) <- p;
    if lp >= 0 then phys_of_log.(lp) <- q
  in
  let pair_distance (a, bq) = dist.(phys_of_log.(a)).(phys_of_log.(bq)) in
  let gate_pair app = (app.Gate.qubits.(0), app.Gate.qubits.(1)) in
  let swap_budget = 4 * Array.length instrs * (Paths.diameter device + n_physical + 2) in
  while !remaining > 0 do
    (* flush everything currently executable *)
    let progress = ref true in
    while !progress do
      progress := false;
      Array.iter
        (fun app ->
          if ready app then
            match app.Gate.qubits with
            | [| _ |] ->
              emit app;
              progress := true
            | [| a; bq |] ->
              let d = dist.(phys_of_log.(a)).(phys_of_log.(bq)) in
              if d < 0 then
                invalid_arg "Mapping.route_lookahead: operands are disconnected"
              else if d = 1 then begin
                emit app;
                progress := true
              end
            | _ -> ())
        instrs
    done;
    if !remaining > 0 then begin
      if !n_swaps > swap_budget then
        failwith "Mapping.route_lookahead: swap budget exhausted (routing livelock)";
      (* blocked on distant two-qubit gates: pick a SWAP *)
      let front =
        Array.to_list instrs
        |> List.filter (fun app ->
               Array.length app.Gate.qubits = 2 && ready app && pair_distance (gate_pair app) > 1)
        |> List.map gate_pair
      in
      assert (front <> []);
      (* the next [window] two-qubit gates still pending, in program order *)
      let upcoming =
        let acc = ref [] and count = ref 0 in
        Array.iter
          (fun app ->
            if
              !count < window
              && Array.length app.Gate.qubits = 2
              && (not (Queue.is_empty queues.(app.Gate.qubits.(0))))
              && Queue.peek queues.(app.Gate.qubits.(0)) <= app.Gate.id
            then begin
              acc := gate_pair app :: !acc;
              incr count
            end)
          instrs;
        List.rev !acc
      in
      let score () =
        List.fold_left (fun acc pair -> acc +. float_of_int (pair_distance pair)) 0.0 front
        +. (0.5
           *. List.fold_left
                (fun acc pair -> acc +. float_of_int (pair_distance pair))
                0.0 upcoming)
      in
      let current = score () in
      (* candidate SWAPs: device edges touching a front-gate operand *)
      let candidates =
        List.concat_map
          (fun (a, bq) ->
            List.concat_map
              (fun logical ->
                let p = phys_of_log.(logical) in
                List.map (fun q -> (min p q, max p q)) (Graph.neighbors device p))
              [ a; bq ])
          front
        |> List.sort_uniq compare
        |> List.filter (fun pq -> pq <> !last_swap)
      in
      let trial (p, q) =
        (* evaluate the score with the swap virtually applied *)
        let lp = log_of_phys.(p) and lq = log_of_phys.(q) in
        log_of_phys.(p) <- lq;
        log_of_phys.(q) <- lp;
        if lq >= 0 then phys_of_log.(lq) <- p;
        if lp >= 0 then phys_of_log.(lp) <- q;
        let s = score () in
        log_of_phys.(p) <- lp;
        log_of_phys.(q) <- lq;
        if lq >= 0 then phys_of_log.(lq) <- q;
        if lp >= 0 then phys_of_log.(lp) <- p;
        s
      in
      let best =
        List.fold_left
          (fun acc pq ->
            let s = trial pq in
            match acc with Some (_, s') when s' <= s -> acc | _ -> Some (pq, s))
          None candidates
      in
      match best with
      | Some ((p, q), s) when s < current -. 1e-9 -> apply_swap p q
      | _ -> (
        (* no improving candidate: guarantee progress by walking the first
           front gate one step along a shortest path *)
        let a, bq = List.hd front in
        match Paths.shortest_path device phys_of_log.(a) phys_of_log.(bq) with
        | Some (p0 :: p1 :: _) ->
          last_swap := (-1, -1);
          apply_swap p0 p1
        | _ -> invalid_arg "Mapping.route_lookahead: operands are disconnected")
    end
  done;
  {
    circuit = Circuit.finish b;
    initial = placement;
    final = Array.copy phys_of_log;
    n_swaps = !n_swaps;
  }

let verify device circuit =
  Array.for_all
    (fun app ->
      match app.Gate.qubits with
      | [| a; b |] -> Graph.mem_edge device a b
      | _ -> true)
    (Circuit.instructions circuit)
