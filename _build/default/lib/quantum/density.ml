type t = { n : int; rho : Matrix.t }

let create n =
  if n < 1 || n > 10 then invalid_arg "Density.create: supported range is 1..10 qubits";
  let dim = 1 lsl n in
  let rho = Matrix.create dim dim in
  Matrix.set rho 0 0 Complex.one;
  { n; rho }

let of_statevector sv =
  let n = Statevector.n_qubits sv in
  if n > 10 then invalid_arg "Density.of_statevector: too many qubits";
  let amps = Statevector.amplitudes sv in
  let dim = Array.length amps in
  let rho = Matrix.init dim dim (fun i j -> Complex.mul amps.(i) (Complex.conj amps.(j))) in
  { n; rho }

let n_qubits t = t.n

let dim t = 1 lsl t.n

let trace t = (Matrix.trace t.rho).Complex.re

let purity t = (Matrix.trace (Matrix.mul t.rho t.rho)).Complex.re

let population t k = (Matrix.get t.rho k k).Complex.re

let check_qubit t q =
  if q < 0 || q >= t.n then invalid_arg (Printf.sprintf "Density: qubit %d out of range" q)

(* rho <- (M on qubit q) rho : mixes row pairs *)
let left_mul1 t m q =
  check_qubit t q;
  let mask = 1 lsl q in
  let d = dim t in
  let m00 = Matrix.get m 0 0 and m01 = Matrix.get m 0 1 in
  let m10 = Matrix.get m 1 0 and m11 = Matrix.get m 1 1 in
  for i = 0 to d - 1 do
    if i land mask = 0 then
      for j = 0 to d - 1 do
        let a = Matrix.get t.rho i j and b = Matrix.get t.rho (i lor mask) j in
        Matrix.set t.rho i j (Complex.add (Complex.mul m00 a) (Complex.mul m01 b));
        Matrix.set t.rho (i lor mask) j (Complex.add (Complex.mul m10 a) (Complex.mul m11 b))
      done
  done

(* rho <- rho (M on qubit q) : mixes column pairs *)
let right_mul1 t m q =
  check_qubit t q;
  let mask = 1 lsl q in
  let d = dim t in
  let m00 = Matrix.get m 0 0 and m01 = Matrix.get m 0 1 in
  let m10 = Matrix.get m 1 0 and m11 = Matrix.get m 1 1 in
  for j = 0 to d - 1 do
    if j land mask = 0 then
      for i = 0 to d - 1 do
        let a = Matrix.get t.rho i j and b = Matrix.get t.rho i (j lor mask) in
        Matrix.set t.rho i j (Complex.add (Complex.mul a m00) (Complex.mul b m10));
        Matrix.set t.rho i (j lor mask) (Complex.add (Complex.mul a m01) (Complex.mul b m11))
      done
  done

let apply_unitary1 t u q =
  if Matrix.rows u <> 2 || Matrix.cols u <> 2 then
    invalid_arg "Density.apply_unitary1: expected 2x2";
  left_mul1 t u q;
  right_mul1 t (Matrix.adjoint u) q

let pair_indices hi lo i = (i, i lor lo, i lor hi, i lor hi lor lo)

let left_mul2 t m q_first q_second =
  let hi = 1 lsl q_first and lo = 1 lsl q_second in
  let d = dim t in
  for i = 0 to d - 1 do
    if i land hi = 0 && i land lo = 0 then
      for j = 0 to d - 1 do
        let i0, i1, i2, i3 = pair_indices hi lo i in
        let rows = [| i0; i1; i2; i3 |] in
        let old = Array.map (fun r -> Matrix.get t.rho r j) rows in
        Array.iteri
          (fun r row ->
            let acc = ref Complex.zero in
            for c = 0 to 3 do
              acc := Complex.add !acc (Complex.mul (Matrix.get m r c) old.(c))
            done;
            Matrix.set t.rho row j !acc)
          rows
      done
  done

let right_mul2 t m q_first q_second =
  let hi = 1 lsl q_first and lo = 1 lsl q_second in
  let d = dim t in
  for j = 0 to d - 1 do
    if j land hi = 0 && j land lo = 0 then
      for i = 0 to d - 1 do
        let j0, j1, j2, j3 = pair_indices hi lo j in
        let cols = [| j0; j1; j2; j3 |] in
        let old = Array.map (fun c -> Matrix.get t.rho i c) cols in
        Array.iteri
          (fun c col ->
            let acc = ref Complex.zero in
            for k = 0 to 3 do
              acc := Complex.add !acc (Complex.mul old.(k) (Matrix.get m k c))
            done;
            Matrix.set t.rho i col !acc)
          cols
      done
  done

let apply_unitary2 t u q_first q_second =
  if Matrix.rows u <> 4 || Matrix.cols u <> 4 then
    invalid_arg "Density.apply_unitary2: expected 4x4";
  check_qubit t q_first;
  check_qubit t q_second;
  if q_first = q_second then invalid_arg "Density.apply_unitary2: duplicate qubit";
  left_mul2 t u q_first q_second;
  right_mul2 t (Matrix.adjoint u) q_first q_second

let apply_gate t gate qubits =
  match (Gate.arity gate, qubits) with
  | 1, [ q ] -> apply_unitary1 t (Gate.unitary gate) q
  | 2, [ a; b ] -> apply_unitary2 t (Gate.unitary gate) a b
  | _ -> invalid_arg "Density.apply_gate: operand count mismatch"

let check_completeness kraus =
  let sum =
    List.fold_left
      (fun acc k -> Matrix.add acc (Matrix.mul (Matrix.adjoint k) k))
      (Matrix.create 2 2) kraus
  in
  if not (Matrix.approx_equal ~tol:1e-6 sum (Matrix.identity 2)) then
    invalid_arg "Density.apply_kraus1: Kraus operators do not sum to identity"

let apply_kraus1 t kraus q =
  check_qubit t q;
  check_completeness kraus;
  let original = Matrix.copy t.rho in
  let total = Matrix.create (dim t) (dim t) in
  let accumulate k =
    let term = { t with rho = Matrix.copy original } in
    left_mul1 term k q;
    right_mul1 term (Matrix.adjoint k) q;
    for i = 0 to dim t - 1 do
      for j = 0 to dim t - 1 do
        Matrix.set total i j (Complex.add (Matrix.get total i j) (Matrix.get term.rho i j))
      done
    done
  in
  List.iter accumulate kraus;
  for i = 0 to dim t - 1 do
    for j = 0 to dim t - 1 do
      Matrix.set t.rho i j (Matrix.get total i j)
    done
  done

let c re = { Complex.re; im = 0.0 }

let amplitude_damping ~gamma =
  if gamma < 0.0 || gamma > 1.0 then invalid_arg "Density.amplitude_damping: gamma in [0,1]";
  [
    Matrix.of_arrays [| [| Complex.one; Complex.zero |]; [| Complex.zero; c (sqrt (1.0 -. gamma)) |] |];
    Matrix.of_arrays [| [| Complex.zero; c (sqrt gamma) |]; [| Complex.zero; Complex.zero |] |];
  ]

let phase_damping ~lambda =
  if lambda < 0.0 || lambda > 1.0 then invalid_arg "Density.phase_damping: lambda in [0,1]";
  [
    Matrix.of_arrays [| [| Complex.one; Complex.zero |]; [| Complex.zero; c (sqrt (1.0 -. lambda)) |] |];
    Matrix.of_arrays [| [| Complex.zero; Complex.zero |]; [| Complex.zero; c (sqrt lambda) |] |];
  ]

let thermal_relaxation t ~q ~t1 ~t2 ~time =
  if t1 <= 0.0 || t2 <= 0.0 then invalid_arg "Density.thermal_relaxation: T1, T2 positive";
  if time < 0.0 then invalid_arg "Density.thermal_relaxation: negative time";
  let gamma = 1.0 -. exp (-.time /. t1) in
  let phi_rate = Float.max 0.0 ((1.0 /. t2) -. (1.0 /. (2.0 *. t1))) in
  (* off-diagonals decay by e^{-t phi_rate}: sqrt(1 - lambda) = e^{-t phi_rate} *)
  let lambda = 1.0 -. exp (-2.0 *. time *. phi_rate) in
  apply_kraus1 t (amplitude_damping ~gamma) q;
  apply_kraus1 t (phase_damping ~lambda) q

let pauli_channel ~p_x ~p_y ~p_z =
  let p0 = 1.0 -. p_x -. p_y -. p_z in
  if p0 < -1e-12 then invalid_arg "Density.pauli_channel: probabilities exceed 1";
  let scale p g = Matrix.scale_re (sqrt (Float.max 0.0 p)) (Gate.unitary g) in
  [ scale p0 Gate.I; scale p_x Gate.X; scale p_y Gate.Y; scale p_z Gate.Z ]

let run_steps ~n_qubits steps =
  let t = create n_qubits in
  List.iter
    (fun step ->
      List.iter
        (function
          | Noisy_sim.Unitary (gate, qubits) -> apply_gate t gate qubits
          | Noisy_sim.Partial_exchange { a; b; theta } ->
            apply_unitary2 t (Noisy_sim.exchange_unitary theta) a b
          | Noisy_sim.Pauli_noise { q; p_x; p_y; p_z } ->
            apply_kraus1 t (pauli_channel ~p_x ~p_y ~p_z) q)
        step)
    steps;
  t

let fidelity_pure t sv =
  if Statevector.n_qubits sv <> t.n then invalid_arg "Density.fidelity_pure: size mismatch";
  let amps = Statevector.amplitudes sv in
  let acc = ref Complex.zero in
  for i = 0 to dim t - 1 do
    for j = 0 to dim t - 1 do
      acc :=
        Complex.add !acc
          (Complex.mul (Complex.conj amps.(i)) (Complex.mul (Matrix.get t.rho i j) amps.(j)))
    done
  done;
  !acc.Complex.re
