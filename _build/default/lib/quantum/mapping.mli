(** Qubit placement and SWAP routing.

    Benchmark programs address logical qubits freely; the device only couples
    physically adjacent qubits.  This pass (the Qiskit-transpiler equivalent)
    pins each logical qubit to a physical one and inserts SWAP gates along
    shortest connectivity paths whenever a two-qubit gate targets non-adjacent
    qubits, updating the mapping as it goes.  The output circuit addresses
    physical qubits only and every two-qubit gate acts on a coupled pair.

    Routing is deterministic (shortest paths tie-break toward smaller ids) so
    compilations are reproducible. *)

type result = {
  circuit : Circuit.t;  (** Routed circuit on physical qubits. *)
  initial : int array;  (** [initial.(logical)] = physical qubit at start. *)
  final : int array;  (** Mapping after execution (SWAPs permute it). *)
  n_swaps : int;  (** Inserted SWAP count — the connectivity-reduction cost
                      discussed in §III. *)
}

val identity_placement : Graph.t -> Circuit.t -> int array
(** Logical qubit [i] on physical qubit [i].
    @raise Invalid_argument if the device is smaller than the circuit. *)

val degree_placement : Graph.t -> Circuit.t -> int array
(** Heuristic placement: logical qubits with the most two-qubit partners go
    on physical qubits of highest degree, neighbours packed first. *)

val quality_placement : quality:(int -> float) -> Graph.t -> Circuit.t -> int array
(** Variability-aware placement (after Tannu & Qureshi's case for
    variability-aware policies, cited by the paper): like
    {!degree_placement}, but spots are ranked by the supplied per-physical-
    qubit [quality] score (e.g. a combined coherence figure), so the busiest
    logical qubits land on the best fabricated qubits and spares absorb the
    duds.  Ties among free neighbours of already-placed partners also break
    by quality. *)

val route : ?placement:int array -> Graph.t -> Circuit.t -> result
(** Route the circuit onto the device graph; [placement] defaults to
    {!identity_placement}.
    @raise Invalid_argument if the device graph is disconnected where needed
    or smaller than the circuit. *)

val route_lookahead : ?placement:int array -> ?window:int -> Graph.t -> Circuit.t -> result
(** SABRE-style lookahead routing: instead of walking each distant gate along
    its own shortest path, candidate SWAPs are scored against the whole
    ready front {e and} a [window] (default 8) of upcoming two-qubit gates,
    so one SWAP serves several gates.  Falls back to a shortest-path move
    whenever no candidate improves the front (guaranteeing progress), so it
    never SWAPs more than {!route} on adversarial inputs by more than the
    window heuristic costs.  Same result contract as {!route}. *)

val verify : Graph.t -> Circuit.t -> bool
(** All two-qubit gates act on adjacent physical qubits. *)
