exception Parse_error of int * string

let gate_name = function
  | Gate.I -> "id"
  | Gate.X -> "x"
  | Gate.Y -> "y"
  | Gate.Z -> "z"
  | Gate.H -> "h"
  | Gate.S -> "s"
  | Gate.Sdg -> "sdg"
  | Gate.T -> "t"
  | Gate.Tdg -> "tdg"
  | Gate.Sx -> "sx"
  | Gate.Sy -> "sy"
  | Gate.Sw -> "sw"
  | Gate.Rx _ -> "rx"
  | Gate.Ry _ -> "ry"
  | Gate.Rz _ -> "rz"
  | Gate.Cz -> "cz"
  | Gate.Iswap -> "iswap"
  | Gate.Sqrt_iswap -> "siswap"
  | Gate.Xy _ -> "xy"
  | Gate.Cnot -> "cx"
  | Gate.Swap -> "swap"

let angle_of = function
  | Gate.Rx t | Gate.Ry t | Gate.Rz t | Gate.Xy t -> Some t
  | _ -> None

let to_string circuit =
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer "OPENQASM 2.0;\n";
  Buffer.add_string buffer "include \"qelib1.inc\";\n";
  (* natives that qelib1 does not define *)
  Buffer.add_string buffer "opaque iswap a, b;\n";
  Buffer.add_string buffer "opaque siswap a, b;\n";
  Buffer.add_string buffer "opaque xy(theta) a, b;\n";
  Buffer.add_string buffer "opaque sy a;\n";
  Buffer.add_string buffer "opaque sw a;\n";
  Buffer.add_string buffer (Printf.sprintf "qreg q[%d];\n" (Circuit.n_qubits circuit));
  Array.iter
    (fun app ->
      let name = gate_name app.Gate.gate in
      let params =
        match angle_of app.Gate.gate with
        | Some theta -> Printf.sprintf "(%.17g)" theta
        | None -> ""
      in
      let operands =
        String.concat ", "
          (List.map (Printf.sprintf "q[%d]") (Array.to_list app.Gate.qubits))
      in
      Buffer.add_string buffer (Printf.sprintf "%s%s %s;\n" name params operands))
    (Circuit.instructions circuit);
  Buffer.contents buffer

let gate_of_name line_no name param =
  let need_param () =
    match param with
    | Some theta -> theta
    | None -> raise (Parse_error (line_no, name ^ " needs an angle parameter"))
  in
  let no_param gate =
    match param with
    | None -> gate
    | Some _ -> raise (Parse_error (line_no, name ^ " takes no parameter"))
  in
  match name with
  | "id" -> no_param Gate.I
  | "x" -> no_param Gate.X
  | "y" -> no_param Gate.Y
  | "z" -> no_param Gate.Z
  | "h" -> no_param Gate.H
  | "s" -> no_param Gate.S
  | "sdg" -> no_param Gate.Sdg
  | "t" -> no_param Gate.T
  | "tdg" -> no_param Gate.Tdg
  | "sx" -> no_param Gate.Sx
  | "sy" -> no_param Gate.Sy
  | "sw" -> no_param Gate.Sw
  | "rx" -> Gate.Rx (need_param ())
  | "ry" -> Gate.Ry (need_param ())
  | "rz" -> Gate.Rz (need_param ())
  | "cz" -> no_param Gate.Cz
  | "iswap" -> no_param Gate.Iswap
  | "siswap" -> no_param Gate.Sqrt_iswap
  | "xy" -> Gate.Xy (need_param ())
  | "cx" -> no_param Gate.Cnot
  | "swap" -> no_param Gate.Swap
  | other -> raise (Parse_error (line_no, "unknown gate " ^ other))

let strip_comment line =
  match String.index_opt line '/' with
  | Some i when i + 1 < String.length line && line.[i + 1] = '/' -> String.sub line 0 i
  | _ -> line

let parse_operand line_no token =
  let token = String.trim token in
  let n = String.length token in
  if n >= 4 && String.sub token 0 2 = "q[" && token.[n - 1] = ']' then
    match int_of_string_opt (String.sub token 2 (n - 3)) with
    | Some q -> q
    | None -> raise (Parse_error (line_no, "bad operand " ^ token))
  else raise (Parse_error (line_no, "bad operand " ^ token))

let of_string text =
  let lines = String.split_on_char '\n' text in
  let n_qubits = ref 0 in
  let gates = ref [] in
  List.iteri
    (fun idx raw ->
      let line_no = idx + 1 in
      let line = String.trim (strip_comment raw) in
      if line <> "" then begin
        let starts_with prefix =
          String.length line >= String.length prefix
          && String.sub line 0 (String.length prefix) = prefix
        in
        if starts_with "OPENQASM" || starts_with "include" || starts_with "opaque" then ()
        else if starts_with "qreg" then begin
          if !n_qubits > 0 then raise (Parse_error (line_no, "multiple qreg declarations"));
          match String.index_opt line '[' with
          | None -> raise (Parse_error (line_no, "malformed qreg"))
          | Some open_idx -> (
            match String.index_from_opt line open_idx ']' with
            | None -> raise (Parse_error (line_no, "malformed qreg"))
            | Some close_idx -> (
              let size = String.sub line (open_idx + 1) (close_idx - open_idx - 1) in
              match int_of_string_opt size with
              | Some n when n > 0 -> n_qubits := n
              | _ -> raise (Parse_error (line_no, "bad register size"))))
        end
        else begin
          if !n_qubits = 0 then raise (Parse_error (line_no, "gate before qreg"));
          let line =
            if String.length line > 0 && line.[String.length line - 1] = ';' then
              String.sub line 0 (String.length line - 1)
            else raise (Parse_error (line_no, "missing trailing semicolon"))
          in
          (* split "name(param)? operands" *)
          let head, operand_text =
            match String.index_opt line ' ' with
            | None -> raise (Parse_error (line_no, "malformed statement"))
            | Some i ->
              (String.sub line 0 i, String.sub line (i + 1) (String.length line - i - 1))
          in
          let name, param =
            match String.index_opt head '(' with
            | None -> (head, None)
            | Some open_idx -> (
              match String.index_from_opt head open_idx ')' with
              | None -> raise (Parse_error (line_no, "unclosed parameter list"))
              | Some close_idx -> (
                let inside = String.sub head (open_idx + 1) (close_idx - open_idx - 1) in
                match float_of_string_opt (String.trim inside) with
                | Some theta -> (String.sub head 0 open_idx, Some theta)
                | None -> raise (Parse_error (line_no, "bad angle " ^ inside))))
          in
          let gate = gate_of_name line_no name param in
          let operands =
            List.map (parse_operand line_no) (String.split_on_char ',' operand_text)
          in
          if List.length operands <> Gate.arity gate then
            raise (Parse_error (line_no, "operand count mismatch for " ^ name));
          List.iter
            (fun q ->
              if q < 0 || q >= !n_qubits then
                raise (Parse_error (line_no, Printf.sprintf "qubit %d out of register" q)))
            operands;
          gates := (gate, operands) :: !gates
        end
      end)
    lines;
  if !n_qubits = 0 then raise (Parse_error (0, "no qreg declaration"));
  Circuit.of_gates !n_qubits (List.rev !gates)
