type strategy = All_cz | All_iswap | Hybrid

let strategy_to_string = function
  | All_cz -> "all-cz"
  | All_iswap -> "all-iswap"
  | Hybrid -> "hybrid"

let half_pi = Float.pi /. 2.0

let cnot_via_cz c t = [ (Gate.H, [ t ]); (Gate.Cz, [ c; t ]); (Gate.H, [ t ]) ]

(* CNOT = L2 . iSWAP . M . iSWAP . L1 with
   L1 = Y (x) Y,
   M  = [Rz(-pi/2) Ry(pi/2) Rz(pi)] (x) Rz(-pi/2),
   L2 = Y (x) [Rx(pi/2) Sdg],
   derived by bin/search_decomp.exe (exact up to global phase). *)
let cnot_via_iswap c t =
  [
    (Gate.Y, [ c ]);
    (Gate.Y, [ t ]);
    (Gate.Iswap, [ c; t ]);
    (Gate.Rz Float.pi, [ c ]);
    (Gate.Ry half_pi, [ c ]);
    (Gate.Rz (-.half_pi), [ c ]);
    (Gate.Rz (-.half_pi), [ t ]);
    (Gate.Iswap, [ c; t ]);
    (Gate.Y, [ c ]);
    (Gate.Sdg, [ t ]);
    (Gate.Rx half_pi, [ t ]);
  ]

let swap_via_cz a b =
  cnot_via_cz a b @ cnot_via_cz b a @ cnot_via_cz a b

(* SWAP = sqrtiSWAP . (Rx(pi/2) (x) Rx(pi/2)) . sqrtiSWAP
          . (Rx(-pi/2) (x) Rx(-pi/2)) . (H (x) H) . sqrtiSWAP . (H (x) H):
   the three sqrt-iSWAP applications contribute the XX+YY, XX+ZZ and YY+ZZ
   thirds of the SWAP interaction (exact up to global phase). *)
let swap_via_sqrt_iswap a b =
  [
    (Gate.H, [ a ]);
    (Gate.H, [ b ]);
    (Gate.Sqrt_iswap, [ a; b ]);
    (Gate.H, [ a ]);
    (Gate.H, [ b ]);
    (Gate.Rx (-.half_pi), [ a ]);
    (Gate.Rx (-.half_pi), [ b ]);
    (Gate.Sqrt_iswap, [ a; b ]);
    (Gate.Rx half_pi, [ a ]);
    (Gate.Rx half_pi, [ b ]);
    (Gate.Sqrt_iswap, [ a; b ]);
  ]

let gate strategy g qubits =
  match (g, qubits, strategy) with
  | Gate.Cnot, [ c; t ], (All_cz | Hybrid) -> cnot_via_cz c t
  | Gate.Cnot, [ c; t ], All_iswap -> cnot_via_iswap c t
  | Gate.Swap, [ a; b ], All_cz -> swap_via_cz a b
  | Gate.Swap, [ a; b ], (All_iswap | Hybrid) -> swap_via_sqrt_iswap a b
  | (Gate.Cnot | Gate.Swap), _, _ -> invalid_arg "Decompose.gate: bad operand count"
  | _ -> [ (g, qubits) ]

let run strategy circuit =
  let b = Circuit.builder (Circuit.n_qubits circuit) in
  Array.iter
    (fun app ->
      List.iter
        (fun (g, qs) -> Circuit.add b g qs)
        (gate strategy app.Gate.gate (Array.to_list app.Gate.qubits)))
    (Circuit.instructions circuit);
  Circuit.finish b
