let layer_index circuit =
  let instrs = Circuit.instructions circuit in
  let layer = Array.make (Array.length instrs) 0 in
  (* frontier.(q): first layer at which qubit q is free *)
  let frontier = Array.make (Circuit.n_qubits circuit) 0 in
  Array.iter
    (fun app ->
      let earliest = Array.fold_left (fun acc q -> max acc frontier.(q)) 0 app.Gate.qubits in
      layer.(app.Gate.id) <- earliest;
      Array.iter (fun q -> frontier.(q) <- earliest + 1) app.Gate.qubits)
    instrs;
  layer

let slice circuit =
  let instrs = Circuit.instructions circuit in
  let layer = layer_index circuit in
  let n_layers = Array.fold_left (fun acc l -> max acc (l + 1)) 0 layer in
  let buckets = Array.make n_layers [] in
  (* reverse iteration keeps each bucket in program order *)
  for i = Array.length instrs - 1 downto 0 do
    let app = instrs.(i) in
    buckets.(layer.(app.Gate.id)) <- app :: buckets.(layer.(app.Gate.id))
  done;
  Array.to_list buckets

let depth circuit =
  Array.fold_left (fun acc l -> max acc (l + 1)) 0 (layer_index circuit)

let criticality circuit =
  let instrs = Circuit.instructions circuit in
  let n = Array.length instrs in
  let crit = Array.make n 0 in
  (* height.(q): longest chain hanging below the current frontier of qubit q *)
  let height = Array.make (Circuit.n_qubits circuit) 0 in
  for i = n - 1 downto 0 do
    let app = instrs.(i) in
    let below = Array.fold_left (fun acc q -> max acc height.(q)) 0 app.Gate.qubits in
    crit.(app.Gate.id) <- below + 1;
    Array.iter (fun q -> height.(q) <- below + 1) app.Gate.qubits
  done;
  crit

let qubit_busy_layers circuit =
  let layer = layer_index circuit in
  let busy = Array.make (Circuit.n_qubits circuit) 0 in
  let module ISet = Set.Make (Int) in
  let seen = Array.make (Circuit.n_qubits circuit) ISet.empty in
  Array.iter
    (fun app ->
      Array.iter
        (fun q ->
          let l = layer.(app.Gate.id) in
          if not (ISet.mem l seen.(q)) then begin
            seen.(q) <- ISet.add l seen.(q);
            busy.(q) <- busy.(q) + 1
          end)
        app.Gate.qubits)
    (Circuit.instructions circuit);
  busy
