(** Peephole circuit optimization.

    Gate-level cleanups applied before scheduling: every gate removed is a
    control-error term and a time slice the device never pays for.  The
    passes are semantics-preserving (unitary equivalence up to global phase,
    property-tested against the state-vector simulator):

    - {e rotation fusion}: adjacent same-axis rotations on one qubit merge,
      [Rz a; Rz b -> Rz (a+b)]; angles are normalised into (-pi, pi] and
      near-zero rotations (and explicit [I] gates) are dropped;
    - {e involution cancellation}: adjacent self-inverse pairs vanish —
      [H H], [X X], [Y Y], [Z Z], [CZ CZ], [CNOT CNOT], [SWAP SWAP] on
      identical operands;
    - {e inverse cancellation}: adjacent [S Sdg], [T Tdg] (either order).

    "Adjacent" means no intervening gate touches the shared qubits, so the
    passes commute gates past unrelated wires implicitly.  Passes iterate to
    a fixed point. *)

val run : Circuit.t -> Circuit.t
(** Optimize to fixpoint.  The result has the same qubit count and acts as
    the same unitary up to global phase. *)

val removed : Circuit.t -> Circuit.t -> int
(** Convenience: gate-count difference between input and output. *)
