(** OpenQASM 2.0 interchange.

    Lets circuits flow between this compiler and the wider ecosystem
    (Qiskit-era toolchains speak QASM 2.0).  The writer emits standard
    [qelib1]-style gate names, defining the non-standard natives
    ([iswap], [siswap], [sw]) as opaque gates in the header; the reader
    accepts exactly the subset the writer produces (one register, one gate
    per line), so [of_string (to_string c)] round-trips every circuit this
    system can build. *)

val to_string : Circuit.t -> string
(** Serialize; deterministic, one instruction per line. *)

exception Parse_error of int * string
(** Line number (1-based) and message. *)

val of_string : string -> Circuit.t
(** Parse the supported subset: the [OPENQASM]/[include] headers and
    [opaque]/[gate] declarations are accepted and ignored; a single
    [qreg q[n];] sizes the circuit; each following line is one application
    [name(params?) q[i](, q[j])?;].  Comments ([// ...]) and blank lines are
    skipped.
    @raise Parse_error on anything else. *)
