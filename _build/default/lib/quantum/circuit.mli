(** Quantum circuits as ordered gate sequences.

    The intermediate representation of the compiler: a circuit is a number of
    qubits plus a program-ordered list of gate applications.  Construction is
    append-only through a builder so benchmark generators stay O(n); the
    finished circuit is immutable. *)

type t

type builder

val builder : int -> builder
(** [builder n] starts an empty circuit on [n] qubits.
    @raise Invalid_argument if [n <= 0]. *)

val add : builder -> Gate.t -> int list -> unit
(** [add b gate qubits] appends an application.  The operand count must match
    the gate arity, operands must be distinct and in range.
    @raise Invalid_argument otherwise. *)

val finish : builder -> t

val of_gates : int -> (Gate.t * int list) list -> t
(** One-shot construction. *)

val n_qubits : t -> int

val instructions : t -> Gate.application array
(** Program order; [ids] run [0 .. length - 1]. *)

val length : t -> int
(** Number of gate applications. *)

val count : (Gate.t -> bool) -> t -> int
(** Number of applications whose gate satisfies the predicate. *)

val n_two_qubit : t -> int

val two_qubit_pairs : t -> (int * int) list
(** Distinct qubit pairs (canonical order) touched by two-qubit gates. *)

val map_qubits : (int -> int) -> t -> t
(** Relabel qubits (e.g. after placement); the function must be injective on
    the used qubits. *)

val append : t -> t -> t
(** Concatenate two circuits on the same qubit count. *)

val concat_gates : t -> (Gate.t * int list) list -> t
(** Append raw gates to an existing circuit. *)

val pp : Format.formatter -> t -> unit
(** One line per instruction: [cz 3 4]. *)
