type t = { n_qubits : int; instrs : Gate.application array }

type builder = { n : int; mutable rev : Gate.application list; mutable next_id : int }

let builder n =
  if n <= 0 then invalid_arg "Circuit.builder: qubit count must be positive";
  { n; rev = []; next_id = 0 }

let add b gate qubits =
  let expected = Gate.arity gate in
  if List.length qubits <> expected then
    invalid_arg
      (Printf.sprintf "Circuit.add: %s expects %d operand(s)" (Gate.name gate) expected);
  List.iter
    (fun q ->
      if q < 0 || q >= b.n then
        invalid_arg (Printf.sprintf "Circuit.add: qubit %d out of range [0,%d)" q b.n))
    qubits;
  (match qubits with
  | [ a; b ] when a = b -> invalid_arg "Circuit.add: duplicate operand"
  | _ -> ());
  let app = { Gate.id = b.next_id; gate; qubits = Array.of_list qubits } in
  b.rev <- app :: b.rev;
  b.next_id <- b.next_id + 1

let finish b = { n_qubits = b.n; instrs = Array.of_list (List.rev b.rev) }

let of_gates n gates =
  let b = builder n in
  List.iter (fun (gate, qubits) -> add b gate qubits) gates;
  finish b

let n_qubits t = t.n_qubits

let instructions t = t.instrs

let length t = Array.length t.instrs

let count pred t =
  Array.fold_left (fun acc app -> if pred app.Gate.gate then acc + 1 else acc) 0 t.instrs

let n_two_qubit t = count Gate.is_two_qubit t

let two_qubit_pairs t =
  let module PSet = Set.Make (struct
    type t = int * int

    let compare = compare
  end) in
  let pairs =
    Array.fold_left
      (fun acc app ->
        if Gate.is_two_qubit app.Gate.gate then
          let a = app.Gate.qubits.(0) and b = app.Gate.qubits.(1) in
          PSet.add (min a b, max a b) acc
        else acc)
      PSet.empty t.instrs
  in
  PSet.elements pairs

let map_qubits f t =
  let seen = Hashtbl.create 16 in
  let remap q =
    let q' = f q in
    (match Hashtbl.find_opt seen q' with
    | Some original when original <> q ->
      invalid_arg "Circuit.map_qubits: relabeling is not injective"
    | _ -> Hashtbl.replace seen q' q);
    if q' < 0 || q' >= t.n_qubits then
      invalid_arg "Circuit.map_qubits: target qubit out of range";
    q'
  in
  {
    t with
    instrs = Array.map (fun app -> { app with Gate.qubits = Array.map remap app.Gate.qubits }) t.instrs;
  }

let append a b =
  if a.n_qubits <> b.n_qubits then invalid_arg "Circuit.append: qubit count mismatch";
  let shifted =
    Array.map (fun app -> { app with Gate.id = app.Gate.id + Array.length a.instrs }) b.instrs
  in
  { a with instrs = Array.append a.instrs shifted }

let concat_gates t gates =
  let b = builder t.n_qubits in
  Array.iter (fun app -> add b app.Gate.gate (Array.to_list app.Gate.qubits)) t.instrs;
  List.iter (fun (gate, qubits) -> add b gate qubits) gates;
  finish b

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  Array.iter
    (fun app ->
      Format.fprintf fmt "%s %s@,"
        (Gate.name app.Gate.gate)
        (String.concat " " (Array.to_list (Array.map string_of_int app.Gate.qubits))))
    t.instrs;
  Format.fprintf fmt "@]"
