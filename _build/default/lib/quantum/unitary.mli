(** Circuit unitaries and equivalence checking.

    Builds the full 2^n x 2^n matrix of a circuit through the state-vector
    simulator (column k = the circuit applied to |k>), and compares operators
    modulo global phase — the notion of equality under which all the
    decomposition and optimization identities of this code base hold.
    Exponential in qubits; meant for verification at n <= ~10. *)

val of_circuit : Circuit.t -> Matrix.t
(** The circuit's unitary in the computational basis (qubit 0 = least
    significant bit). *)

val of_gate : Gate.t -> int list -> n_qubits:int -> Matrix.t
(** A single application embedded into the full register. *)

val equal_up_to_phase : ?tol:float -> Matrix.t -> Matrix.t -> bool
(** Operator equality modulo a global phase (default tolerance 1e-7). *)

val global_phase_between : ?tol:float -> Matrix.t -> Matrix.t -> Complex.t option
(** [Some p] with [a * p = b] entrywise and [|p| = 1], if such a phase
    exists. *)

val equivalent : ?tol:float -> Circuit.t -> Circuit.t -> bool
(** Two circuits implement the same operator up to global phase.
    @raise Invalid_argument on qubit-count mismatch. *)
