lib/smt/smt.mli:
