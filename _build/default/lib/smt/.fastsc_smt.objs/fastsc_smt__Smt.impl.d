lib/smt/smt.ml: Array Float Fun List
