type t = {
  parking_lo : float;
  parking_hi : float;
  exclusion_lo : float;
  exclusion_hi : float;
  interaction_lo : float;
  interaction_hi : float;
}

let make ~lo ~hi =
  if lo >= hi then invalid_arg "Partition.make: lo >= hi";
  let width = hi -. lo in
  (* 12 : 43 : 45 split, parking at the bottom: the paper parks near the low
     sweet spot and interacts near the high one (Appendix A).  The exclusion
     band is kept wider than the anharmonicity by a comfortable margin so
     that active gates stay far detuned from every parked qubit on both the
     direct and the sideband channels. *)
  let parking_hi = lo +. (0.12 *. width) in
  let exclusion_hi = lo +. (0.55 *. width) in
  {
    parking_lo = lo;
    parking_hi;
    exclusion_lo = parking_hi;
    exclusion_hi;
    interaction_lo = exclusion_hi;
    interaction_hi = hi;
  }

let custom ~parking:(plo, phi) ~exclusion:(elo, ehi) ~interaction:(ilo, ihi) =
  if not (plo < phi && phi <= elo && elo < ehi && ehi <= ilo && ilo < ihi) then
    invalid_arg "Partition.custom: bands must be disjoint and ordered";
  {
    parking_lo = plo;
    parking_hi = phi;
    exclusion_lo = elo;
    exclusion_hi = ehi;
    interaction_lo = ilo;
    interaction_hi = ihi;
  }

let in_parking t f = f >= t.parking_lo && f <= t.parking_hi

let in_exclusion t f = f > t.exclusion_lo && f < t.exclusion_hi

let in_interaction t f = f >= t.interaction_lo && f <= t.interaction_hi

let parking_width t = t.parking_hi -. t.parking_lo

let interaction_width t = t.interaction_hi -. t.interaction_lo

let pp fmt t =
  Format.fprintf fmt "parking [%.3f, %.3f] / exclusion (%.3f, %.3f) / interaction [%.3f, %.3f]"
    t.parking_lo t.parking_hi t.exclusion_lo t.exclusion_hi t.interaction_lo t.interaction_hi
