lib/device/device.ml: Array Coupled_pair Fastsc_quantum Float Format Gate Graph List Partition Paths Printf Rng Topology Transmon
