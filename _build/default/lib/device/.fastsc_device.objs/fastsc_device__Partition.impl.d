lib/device/partition.ml: Format
