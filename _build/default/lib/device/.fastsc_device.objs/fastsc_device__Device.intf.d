lib/device/device.mli: Fastsc_quantum Format Graph Partition Topology Transmon
