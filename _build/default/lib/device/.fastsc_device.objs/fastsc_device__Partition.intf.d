lib/device/partition.mli: Format
