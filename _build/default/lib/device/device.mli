(** Device model: a topology populated with frequency-tunable transmons
    (paper §VI-C, "Architectural features").

    A device is the compiler's complete view of the hardware: the coupling
    graph, per-qubit transmon parameters with fabrication variation
    (maximum frequencies sampled from a Gaussian N(omega, 0.1 GHz)),
    coherence times, the nearest-neighbour coupling strength
    (g/2pi ~ 30 MHz), gate/flux timing, and control-error magnitudes.
    Everything downstream — frequency partitioning, gate-time costing,
    crosstalk and decoherence estimation — reads from here, which is what
    makes the stack a simulator-backed substitute for real hardware. *)

type params = {
  omega_max_mean : float;  (** Mean upper sweet spot, GHz (default 7.0). *)
  omega_min_mean : float;  (** Mean lower sweet spot, GHz (default 5.0). *)
  omega_sigma : float;  (** Fabrication spread, GHz (default 0.1). *)
  anharmonicity : float;  (** |alpha| = E_C, GHz (default 0.2). *)
  g0 : float;  (** Nearest-neighbour coupling, GHz (default 0.007, giving the paper's
          ~50 ns CZ and ~36 ns iSWAP, Appendix C). *)
  parasitic_ratio : float;
      (** Stray coupling between qubits at graph distance 2, as a fraction of
          [g0] (default 0.05); drives distance-2 crosstalk. *)
  t1_mean : float;  (** Mean T1, ns (default 6_000; early-NISQ transmons). *)
  t2_mean : float;  (** Mean T2, ns (default 4_500). *)
  coherence_sigma : float;  (** Relative spread of T1/T2 (default 0.1). *)
  single_qubit_time : float;  (** 1q gate duration, ns (default 25). *)
  flux_tuning_time : float;
      (** Per-step frequency retuning overhead, ns (default 2, Appendix C). *)
  base_error_1q : float;  (** Control error per 1q gate (default 5e-4). *)
  base_error_2q : float;  (** Control error per 2q gate (default 2e-3). *)
  flux_noise : float;
      (** RMS flux noise in flux quanta (default 1e-5); multiplied by the
          transmon's flux sensitivity to obtain a dephasing-style error for
          operating points away from sweet spots. *)
}

val default_params : params
(** The evaluation's early-NISQ configuration (see DESIGN.md). *)

val preset : [ `Early_nisq | `Sycamore_era | `Modern ] -> params
(** Named hardware generations for sensitivity studies:
    - [`Early_nisq]: {!default_params} (T1 = 6 us, the paper's regime);
    - [`Sycamore_era]: T1 = 15 us / T2 = 10 us, g/2pi = 10 MHz;
    - [`Modern]: T1 = 100 us / T2 = 60 us, tighter fabrication (sigma =
      0.05 GHz) and 1e-4-class gate errors.
    The crosstalk physics is unchanged — only coherence, coupling and
    control quality move, which is exactly the axis along which the value
    of parallelism (and hence of frequency-aware scheduling) shifts. *)

type t

val create : ?params:params -> seed:int -> Topology.t -> t
(** Fabricate a device: sample per-qubit transmons and coherence times with
    the given seed (deterministic). *)

val params : t -> params
val topology : t -> Topology.t
val graph : t -> Graph.t
val n_qubits : t -> int
val seed : t -> int

val transmon : t -> int -> Transmon.t
val t1 : t -> int -> float
val t2 : t -> int -> float

val tunable_range : t -> int -> float * float
(** [omega_min, omega_max] of one qubit. *)

val common_range : t -> float * float
(** The frequency window reachable by {e every} qubit — the intersection of
    all tunable ranges; frequency assignment is confined to it. *)

val partition : t -> Partition.t
(** The 2:1:2 split of {!common_range}. *)

val coupling : t -> int -> int -> float
(** Effective coupling strength between two qubits: [g0] for coupled pairs,
    [parasitic_ratio * g0] for pairs at graph distance 2, [0] beyond.
    Symmetric. *)

val gate_time : t -> Fastsc_quantum.Gate.t -> float
(** Duration of one native gate at coupling [g0], plus the flux-retuning
    overhead for two-qubit gates. *)

val coupled_pairs : t -> (int * int) list
(** Edges of the connectivity graph. *)

val distance2_pairs : t -> (int * int) list
(** Pairs at graph distance exactly 2 (parasitic crosstalk partners). *)

val pp_summary : Format.formatter -> t -> unit
