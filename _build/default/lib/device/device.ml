type params = {
  omega_max_mean : float;
  omega_min_mean : float;
  omega_sigma : float;
  anharmonicity : float;
  g0 : float;
  parasitic_ratio : float;
  t1_mean : float;
  t2_mean : float;
  coherence_sigma : float;
  single_qubit_time : float;
  flux_tuning_time : float;
  base_error_1q : float;
  base_error_2q : float;
  flux_noise : float;
}

let default_params =
  {
    omega_max_mean = 7.0;
    omega_min_mean = 5.0;
    omega_sigma = 0.1;
    anharmonicity = 0.2;
    g0 = 0.007;
    parasitic_ratio = 0.05;
    t1_mean = 6_000.0;
    t2_mean = 4_500.0;
    coherence_sigma = 0.1;
    single_qubit_time = 25.0;
    flux_tuning_time = 2.0;
    base_error_1q = 5e-4;
    base_error_2q = 2e-3;
    flux_noise = 1e-5;
  }

let preset = function
  | `Early_nisq -> default_params
  | `Sycamore_era ->
    {
      default_params with
      g0 = 0.010;
      t1_mean = 15_000.0;
      t2_mean = 10_000.0;
      base_error_1q = 2e-4;
      base_error_2q = 1e-3;
    }
  | `Modern ->
    {
      default_params with
      omega_sigma = 0.05;
      g0 = 0.010;
      t1_mean = 100_000.0;
      t2_mean = 60_000.0;
      base_error_1q = 1e-4;
      base_error_2q = 5e-4;
      flux_noise = 5e-6;
    }

type qubit = { transmon : Transmon.t; t1 : float; t2 : float }

type t = {
  params : params;
  topology : Topology.t;
  seed : int;
  qubits : qubit array;
  distances : int array array;
}

let create ?(params = default_params) ~seed topology =
  let rng = Rng.create seed in
  let n = Graph.n_vertices topology.Topology.graph in
  let sample_positive ~mean ~sigma =
    (* Clamp fabrication outliers at +-3 sigma to keep devices physical. *)
    let v = Rng.gaussian ~mean ~std:sigma rng in
    Float.max (mean -. (3.0 *. sigma)) (Float.min (mean +. (3.0 *. sigma)) v)
  in
  let qubits =
    Array.init n (fun _ ->
        let omega_max = sample_positive ~mean:params.omega_max_mean ~sigma:params.omega_sigma in
        let omega_min = sample_positive ~mean:params.omega_min_mean ~sigma:params.omega_sigma in
        let transmon =
          Transmon.create ~e_c:params.anharmonicity ~omega_max ~omega_min ()
        in
        let rel = params.coherence_sigma in
        let t1 = sample_positive ~mean:params.t1_mean ~sigma:(rel *. params.t1_mean) in
        let t2 = sample_positive ~mean:params.t2_mean ~sigma:(rel *. params.t2_mean) in
        { transmon; t1; t2 })
  in
  let distances = Paths.all_pairs topology.Topology.graph in
  { params; topology; seed; qubits; distances }

let params t = t.params

let topology t = t.topology

let graph t = t.topology.Topology.graph

let n_qubits t = Array.length t.qubits

let seed t = t.seed

let check_qubit t q =
  if q < 0 || q >= n_qubits t then invalid_arg (Printf.sprintf "Device: qubit %d out of range" q)

let transmon t q =
  check_qubit t q;
  t.qubits.(q).transmon

let t1 t q =
  check_qubit t q;
  t.qubits.(q).t1

let t2 t q =
  check_qubit t q;
  t.qubits.(q).t2

let tunable_range t q =
  let tr = transmon t q in
  (tr.Transmon.omega_min, tr.Transmon.omega_max)

let common_range t =
  Array.fold_left
    (fun (lo, hi) qb ->
      (Float.max lo qb.transmon.Transmon.omega_min, Float.min hi qb.transmon.Transmon.omega_max))
    (neg_infinity, infinity) t.qubits

let partition t =
  let lo, hi = common_range t in
  Partition.make ~lo ~hi

let coupling t a b =
  check_qubit t a;
  check_qubit t b;
  if a = b then 0.0
  else
    match t.distances.(a).(b) with
    | 1 -> t.params.g0
    | 2 -> t.params.parasitic_ratio *. t.params.g0
    | _ -> 0.0

let gate_time t gate =
  let open Fastsc_quantum in
  let g = t.params.g0 in
  match gate with
  | Gate.Cz -> Coupled_pair.cz_time ~g +. t.params.flux_tuning_time
  | Gate.Iswap -> Coupled_pair.iswap_time ~g +. t.params.flux_tuning_time
  | Gate.Sqrt_iswap -> Coupled_pair.sqrt_iswap_time ~g +. t.params.flux_tuning_time
  | Gate.Xy theta ->
    (* exchange angle theta/2 at Rabi rate 2 pi g: hold for theta / (4 pi g),
       i.e. the iSWAP time scaled by theta / pi *)
    (Float.abs theta /. Float.pi *. Coupled_pair.iswap_time ~g) +. t.params.flux_tuning_time
  | Gate.Cnot | Gate.Swap ->
    invalid_arg "Device.gate_time: non-native gate (decompose first)"
  | _ -> t.params.single_qubit_time

let coupled_pairs t = Graph.edges (graph t)

let distance2_pairs t =
  let n = n_qubits t in
  let acc = ref [] in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      if t.distances.(a).(b) = 2 then acc := (a, b) :: !acc
    done
  done;
  List.rev !acc

let pp_summary fmt t =
  let lo, hi = common_range t in
  Format.fprintf fmt "device %s: %d qubits, %d couplings, range [%.3f, %.3f] GHz, g0 = %g GHz"
    t.topology.Topology.name (n_qubits t)
    (Graph.n_edges (graph t))
    lo hi t.params.g0
