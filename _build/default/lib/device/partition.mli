(** Frequency-spectrum partitioning (paper §V-B4).

    The tunable range of the device is split into three bands:

    - a {e parking} region near the lower sweet spot, holding idle
      frequencies;
    - an {e exclusion} region in the middle where no frequency is ever
      assigned (it is the most flux-noise-sensitive part of the tuning curve,
      cf. Fig 4), which also guarantees idle qubits stay detuned from every
      interaction frequency;
    - an {e interaction} region near the upper sweet spot, holding the
      resonance frequencies of two-qubit gates.

    The paper's reference design for a [5, 7] GHz window keeps parking near
    the 5 GHz sweet spot and interaction near the 7 GHz one (Appendix A)
    with an exclusion band between; we use a 12 : 43 : 45 proportion of the
    device's common window so that active gates stay far detuned from every
    parked qubit. *)

type t = {
  parking_lo : float;
  parking_hi : float;
  exclusion_lo : float;
  exclusion_hi : float;
  interaction_lo : float;
  interaction_hi : float;
}

val make : lo:float -> hi:float -> t
(** Split [\[lo, hi\]] in the 12:43:45 proportion (parking low, interaction
    high).
    @raise Invalid_argument if [lo >= hi]. *)

val custom :
  parking:float * float -> exclusion:float * float -> interaction:float * float -> t
(** Explicit bands; they must be disjoint and ordered
    parking < exclusion < interaction.
    @raise Invalid_argument otherwise. *)

val in_parking : t -> float -> bool
val in_exclusion : t -> float -> bool
val in_interaction : t -> float -> bool

val parking_width : t -> float
val interaction_width : t -> float

val pp : Format.formatter -> t -> unit
