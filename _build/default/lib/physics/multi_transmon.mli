(** Multi-transmon Hamiltonian simulation at the qutrit level.

    The gold-standard microscopic model behind the compiler's noise
    heuristics: [n] transmons, each truncated to three levels, with exchange
    couplings — the full device physics of §II including the leakage channel
    through |2> that two-level simulators cannot express.  States live in the
    3^n-dimensional product space (qutrit [i] is digit [i], base 3, little
    endian); evolution integrates the Schroedinger equation with a classical
    RK4 stepper (the Hamiltonian is applied matrix-free, so dimensions up to
    ~3^7 are practical).

    Basis-state {e populations} are invariant under the diagonal
    rotating-frame transformation, so transfer probabilities and leakage
    measured here are frame-independent physical quantities — they can be
    compared directly against {!Coupled_pair}/{!Evolution} results and
    against the compiler's per-channel error estimates. *)

type spec = {
  freqs : float array;  (** omega_01 per transmon, GHz. *)
  alphas : float array;  (** Anharmonicity per transmon, GHz (negative). *)
  couplings : (int * int * float) list;  (** [(a, b, g)] exchange pairs, GHz. *)
}

val n_transmons : spec -> int

val dimension : spec -> int
(** [3^n].
    @raise Invalid_argument if any coupling index is out of range or the
    array lengths disagree (checked on first use of the spec). *)

val basis_index : spec -> int array -> int
(** Index of a product state given per-transmon levels (each 0..2). *)

val levels_of_index : spec -> int -> int array

val basis_state : spec -> int array -> Complex.t array

val apply_hamiltonian : spec -> Complex.t array -> Complex.t array
(** [H |psi>] in angular units (rad/ns), matrix-free. *)

val evolve : ?dt:float -> spec -> Complex.t array -> t:float -> Complex.t array
(** RK4 integration of [-i H psi] for [t] ns; [dt] defaults to 0.02 ns
    (well below the fastest phase period at 7 GHz... in the rotating terms
    that matter the error is O(dt^4); halve it to check convergence). *)

val population : Complex.t array -> int -> float

val subspace_population : spec -> Complex.t array -> (int array -> bool) -> float
(** Total population over basis states whose level vector satisfies the
    predicate. *)

val leakage : spec -> Complex.t array -> float
(** Population outside the computational (all digits <= 1) subspace. *)

val transfer_probability :
  ?dt:float -> spec -> from_levels:int array -> to_levels:int array -> t:float -> float
(** Evolve a basis state and read one population — the Fig 15 primitive for
    arbitrarily many transmons. *)
