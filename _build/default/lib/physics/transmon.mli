(** Flux-tunable asymmetric transmon model (paper §II-A, Fig 4).

    A transmon with two asymmetric Josephson junctions has a flux-dependent
    effective Josephson energy

    {v E_J(phi) = E_J_sum * |cos(pi phi)| * sqrt(1 + d^2 tan^2(pi phi)) v}

    where [phi] is the external flux in units of the flux quantum and [d] the
    junction asymmetry.  In the transmon limit the qubit frequency is
    [omega_01 = sqrt(8 E_J E_C) - E_C] and the anharmonicity is [-E_C], so the
    frequency sweeps between two {e sweet spots} — [omega_max] at [phi = 0]
    and [omega_min] at [phi = 1/2] — where it is first-order insensitive to
    flux noise.

    Unit conventions (used across the whole repository): frequencies and
    energies in GHz (linear frequency, divide by 2pi already applied), flux in
    units of the flux quantum, time in ns. *)

type t = {
  omega_max : float;  (** 0-1 frequency at the upper sweet spot (GHz). *)
  omega_min : float;  (** 0-1 frequency at the lower sweet spot (GHz). *)
  e_c : float;  (** Charging energy = |anharmonicity| (GHz). *)
  asymmetry : float;  (** Junction asymmetry [d], derived. *)
  e_j_sum : float;  (** Total Josephson energy (GHz), derived. *)
}

val create : ?e_c:float -> omega_max:float -> omega_min:float -> unit -> t
(** [create ~omega_max ~omega_min ()] builds a transmon whose sweet spots sit
    at the given frequencies; [e_c] defaults to 0.2 GHz in line with the
    paper's ~200 MHz anharmonicity.
    @raise Invalid_argument unless [0 < omega_min < omega_max] and
    [e_c > 0]. *)

val anharmonicity : t -> float
(** Negative; [omega_12 - omega_01 = -e_c]. *)

val freq_01 : t -> flux:float -> float
(** 0-1 transition frequency at the given external flux (periodic in flux
    with period 1). *)

val freq_12 : t -> flux:float -> float
(** 1-2 transition frequency, [freq_01 + anharmonicity]. *)

val freq_02 : t -> flux:float -> float
(** 0-2 two-photon transition frequency, [2 * freq_01 + anharmonicity]. *)

val flux_for_freq : t -> float -> float
(** [flux_for_freq t omega] inverts {!freq_01} on the branch [\[0, 1/2\]] by
    bisection.
    @raise Invalid_argument if [omega] is outside
    [\[omega_min, omega_max\]]. *)

val flux_sensitivity : t -> flux:float -> float
(** Numerical [|d omega_01 / d flux|]; vanishes at the sweet spots and is the
    reason the compiler parks frequencies near them (§V-B4). *)
