type params = {
  omega_a : float;
  omega_b : float;
  alpha_a : float;
  alpha_b : float;
  g : float;
}

let two_pi = 2.0 *. Float.pi

let state_index ~levels la lb = (la * levels) + lb

let hamiltonian ?(levels = 3) p =
  if levels < 2 then invalid_arg "Coupled_pair.hamiltonian: levels must be >= 2";
  let dim = levels * levels in
  let h = Matrix.create dim dim in
  (* Diagonal Duffing terms: omega * n + alpha/2 * n (n - 1), per transmon. *)
  let duffing omega alpha n =
    let nf = float_of_int n in
    (omega *. nf) +. (alpha /. 2.0 *. nf *. (nf -. 1.0))
  in
  for la = 0 to levels - 1 do
    for lb = 0 to levels - 1 do
      let idx = state_index ~levels la lb in
      let energy = duffing p.omega_a p.alpha_a la +. duffing p.omega_b p.alpha_b lb in
      Matrix.set h idx idx (Complex_ext.re (two_pi *. energy))
    done
  done;
  (* Exchange coupling g (a† b + a b†): connects |la, lb> and |la+1, lb-1>
     with amplitude g sqrt(la+1) sqrt(lb). *)
  for la = 0 to levels - 2 do
    for lb = 1 to levels - 1 do
      let from_idx = state_index ~levels la lb in
      let to_idx = state_index ~levels (la + 1) (lb - 1) in
      let amp = p.g *. sqrt (float_of_int (la + 1)) *. sqrt (float_of_int lb) in
      Matrix.set h from_idx to_idx (Complex_ext.re (two_pi *. amp));
      Matrix.set h to_idx from_idx (Complex_ext.re (two_pi *. amp))
    done
  done;
  h

let exchange_strength ~omega_a ~omega_b ~g =
  let d = Float.abs (omega_a -. omega_b) in
  (sqrt ((d *. d) +. (4.0 *. g *. g)) -. d) /. 2.0

let iswap_time ~g = 1.0 /. (4.0 *. g)

let sqrt_iswap_time ~g = 1.0 /. (8.0 *. g)

let cz_time ~g = 1.0 /. (2.0 *. sqrt 2.0 *. g)
