type spec = {
  freqs : float array;
  alphas : float array;
  couplings : (int * int * float) list;
}

let two_pi = 2.0 *. Float.pi

let n_transmons spec = Array.length spec.freqs

let validate spec =
  let n = n_transmons spec in
  if Array.length spec.alphas <> n then
    invalid_arg "Multi_transmon: freqs and alphas lengths disagree";
  List.iter
    (fun (a, b, _) ->
      if a < 0 || a >= n || b < 0 || b >= n || a = b then
        invalid_arg "Multi_transmon: bad coupling pair")
    spec.couplings

let dimension spec =
  validate spec;
  let rec pow acc k = if k = 0 then acc else pow (acc * 3) (k - 1) in
  pow 1 (n_transmons spec)

let pow3 q =
  let rec go acc k = if k = 0 then acc else go (acc * 3) (k - 1) in
  go 1 q

let digit index q = index / pow3 q mod 3

let basis_index spec levels =
  let n = n_transmons spec in
  if Array.length levels <> n then invalid_arg "Multi_transmon.basis_index: length mismatch";
  let idx = ref 0 in
  for q = n - 1 downto 0 do
    let d = levels.(q) in
    if d < 0 || d > 2 then invalid_arg "Multi_transmon.basis_index: level out of 0..2";
    idx := (!idx * 3) + d
  done;
  !idx

let levels_of_index spec index =
  Array.init (n_transmons spec) (fun q -> digit index q)

let basis_state spec levels =
  let dim = dimension spec in
  let psi = Array.make dim Complex.zero in
  psi.(basis_index spec levels) <- Complex.one;
  psi

(* The total excitation number commutes with the Hamiltonian, so shifting all
   frequencies by their mean only changes sector-global phases — populations
   are untouched and the integrator sees detunings (MHz..GHz scale) instead
   of absolute frequencies, which keeps RK4 accurate at practical step
   sizes. *)
let reference spec =
  if Array.length spec.freqs = 0 then 0.0
  else Array.fold_left ( +. ) 0.0 spec.freqs /. float_of_int (Array.length spec.freqs)

let apply_hamiltonian spec psi =
  validate spec;
  let n = n_transmons spec in
  let dim = dimension spec in
  if Array.length psi <> dim then invalid_arg "Multi_transmon.apply_hamiltonian: bad state size";
  let omega_ref = reference spec in
  let out = Array.make dim Complex.zero in
  (* diagonal part *)
  for i = 0 to dim - 1 do
    if psi.(i) <> Complex.zero then begin
      let energy = ref 0.0 in
      for q = 0 to n - 1 do
        let d = float_of_int (digit i q) in
        energy :=
          !energy
          +. ((spec.freqs.(q) -. omega_ref) *. d)
          +. (spec.alphas.(q) /. 2.0 *. d *. (d -. 1.0))
      done;
      out.(i) <- Complex.add out.(i) (Complex_ext.scale (two_pi *. !energy) psi.(i))
    end
  done;
  (* exchange couplings: g (a† b + a b†) per pair *)
  List.iter
    (fun (a, b, g) ->
      if g <> 0.0 then begin
        let pa = pow3 a and pb = pow3 b in
        for i = 0 to dim - 1 do
          if psi.(i) <> Complex.zero then begin
            let da = digit i a and db = digit i b in
            if da < 2 && db > 0 then begin
              let j = i + pa - pb in
              let amp =
                two_pi *. g *. sqrt (float_of_int (da + 1)) *. sqrt (float_of_int db)
              in
              out.(j) <- Complex.add out.(j) (Complex_ext.scale amp psi.(i))
            end;
            if db < 2 && da > 0 then begin
              let j = i - pa + pb in
              let amp =
                two_pi *. g *. sqrt (float_of_int (db + 1)) *. sqrt (float_of_int da)
              in
              out.(j) <- Complex.add out.(j) (Complex_ext.scale amp psi.(i))
            end
          end
        done
      end)
    spec.couplings;
  out

let evolve ?(dt = 0.01) spec psi0 ~t =
  if t < 0.0 then invalid_arg "Multi_transmon.evolve: negative time";
  if dt <= 0.0 then invalid_arg "Multi_transmon.evolve: non-positive dt";
  let dim = Array.length psi0 in
  let minus_i_h psi =
    Array.map (fun z -> Complex.mul { Complex.re = 0.0; im = -1.0 } z) (apply_hamiltonian spec psi)
  in
  let axpy alpha x y = Array.init dim (fun k -> Complex.add y.(k) (Complex_ext.scale alpha x.(k))) in
  let psi = ref (Array.copy psi0) in
  let remaining = ref t in
  while !remaining > 1e-12 do
    let h = Float.min dt !remaining in
    let k1 = minus_i_h !psi in
    let k2 = minus_i_h (axpy (h /. 2.0) k1 !psi) in
    let k3 = minus_i_h (axpy (h /. 2.0) k2 !psi) in
    let k4 = minus_i_h (axpy h k3 !psi) in
    psi :=
      Array.init dim (fun k ->
          let weighted =
            Complex.add
              (Complex.add k1.(k) (Complex_ext.scale 2.0 k2.(k)))
              (Complex.add (Complex_ext.scale 2.0 k3.(k)) k4.(k))
          in
          Complex.add !psi.(k) (Complex_ext.scale (h /. 6.0) weighted));
    remaining := !remaining -. h
  done;
  (* RK4 drifts the norm at O(dt^4); project back to the unit sphere *)
  let norm = sqrt (Array.fold_left (fun acc z -> acc +. Complex_ext.norm2 z) 0.0 !psi) in
  if norm > 0.0 then Array.map (Complex_ext.scale (1.0 /. norm)) !psi else !psi

let population psi k = Complex_ext.norm2 psi.(k)

let subspace_population spec psi predicate =
  let acc = ref 0.0 in
  Array.iteri
    (fun i z -> if predicate (levels_of_index spec i) then acc := !acc +. Complex_ext.norm2 z)
    psi;
  !acc

let leakage spec psi =
  subspace_population spec psi (fun levels -> Array.exists (fun d -> d >= 2) levels)

let transfer_probability ?dt spec ~from_levels ~to_levels ~t =
  let psi = evolve ?dt spec (basis_state spec from_levels) ~t in
  population psi (basis_index spec to_levels)
