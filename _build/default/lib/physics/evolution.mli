(** Exact unitary time evolution of small closed systems.

    Schroedinger evolution [psi(t) = exp(-i H t) psi(0)] computed through the
    eigendecomposition of the (time-independent) Hamiltonian — exact for the
    piecewise-constant control schedules this system deals with, with no
    integrator error to tune.  Drives the Fig 15 transition-probability maps
    and the microscopic validation of the crosstalk error law (eq 6). *)

val evolve : Matrix.t -> Complex.t array -> float -> Complex.t array
(** [evolve h psi0 t] is the state after evolving [psi0] under Hamiltonian
    [h] (angular units, rad/ns) for [t] ns.
    @raise Invalid_argument on dimension mismatch. *)

val basis_state : int -> int -> Complex.t array
(** [basis_state dim k] is the computational basis vector |k>. *)

val transition_probability : Matrix.t -> src:int -> dst:int -> t:float -> float
(** [transition_probability h ~src ~dst ~t] is [|<dst| exp(-iHt) |src>|^2]. *)

val transition_series :
  Matrix.t -> src:int -> dst:int -> times:float list -> (float * float) list
(** The transition probability sampled at several hold times; a column of the
    Fig 15 heat maps.  The eigendecomposition is computed once. *)

val population : Complex.t array -> int -> float
(** [|<k|psi>|^2]. *)

val norm : Complex.t array -> float
(** Euclidean norm; preserved (=1) by {!evolve} up to numerical error. *)
