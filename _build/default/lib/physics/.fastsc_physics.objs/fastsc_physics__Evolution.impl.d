lib/physics/evolution.ml: Array Complex Complex_ext Eig List Matrix
