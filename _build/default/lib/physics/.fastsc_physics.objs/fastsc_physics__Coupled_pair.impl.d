lib/physics/coupled_pair.ml: Complex_ext Float Matrix
