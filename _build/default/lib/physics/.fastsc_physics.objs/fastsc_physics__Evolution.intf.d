lib/physics/evolution.mli: Complex Matrix
