lib/physics/transmon.ml: Float Printf
