lib/physics/transmon.mli:
