lib/physics/multi_transmon.ml: Array Complex Complex_ext Float List
