lib/physics/coupled_pair.mli: Matrix
