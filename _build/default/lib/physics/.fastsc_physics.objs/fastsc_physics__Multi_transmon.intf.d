lib/physics/multi_transmon.mli: Complex
