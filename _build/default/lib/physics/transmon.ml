type t = {
  omega_max : float;
  omega_min : float;
  e_c : float;
  asymmetry : float;
  e_j_sum : float;
}

(* omega = sqrt(8 E_J E_C) - E_C   =>   E_J = (omega + E_C)^2 / (8 E_C) *)
let e_j_of_freq ~e_c omega = ((omega +. e_c) ** 2.0) /. (8.0 *. e_c)

let freq_of_e_j ~e_c e_j = sqrt (8.0 *. e_j *. e_c) -. e_c

let create ?(e_c = 0.2) ~omega_max ~omega_min () =
  if e_c <= 0.0 then invalid_arg "Transmon.create: e_c must be positive";
  if not (0.0 < omega_min && omega_min < omega_max) then
    invalid_arg "Transmon.create: need 0 < omega_min < omega_max";
  let e_j_sum = e_j_of_freq ~e_c omega_max in
  let e_j_min = e_j_of_freq ~e_c omega_min in
  (* At phi = 1/2 the effective Josephson energy is d * E_J_sum. *)
  let asymmetry = e_j_min /. e_j_sum in
  { omega_max; omega_min; e_c; asymmetry; e_j_sum }

let anharmonicity t = -.t.e_c

let effective_e_j t ~flux =
  let phase = Float.pi *. flux in
  let c = cos phase and s = sin phase in
  t.e_j_sum *. sqrt ((c *. c) +. (t.asymmetry *. t.asymmetry *. s *. s))

let freq_01 t ~flux = freq_of_e_j ~e_c:t.e_c (effective_e_j t ~flux)

let freq_12 t ~flux = freq_01 t ~flux -. t.e_c

let freq_02 t ~flux = (2.0 *. freq_01 t ~flux) -. t.e_c

let flux_for_freq t omega =
  if omega < t.omega_min -. 1e-9 || omega > t.omega_max +. 1e-9 then
    invalid_arg
      (Printf.sprintf "Transmon.flux_for_freq: %g outside [%g, %g]" omega t.omega_min
         t.omega_max);
  (* freq_01 decreases monotonically on [0, 1/2]. *)
  let lo = ref 0.0 and hi = ref 0.5 in
  for _ = 1 to 60 do
    let mid = (!lo +. !hi) /. 2.0 in
    if freq_01 t ~flux:mid >= omega then lo := mid else hi := mid
  done;
  (!lo +. !hi) /. 2.0

let flux_sensitivity t ~flux =
  let h = 1e-6 in
  Float.abs ((freq_01 t ~flux:(flux +. h) -. freq_01 t ~flux:(flux -. h)) /. (2.0 *. h))
