(** Two capacitively coupled transmons (paper §II-B, Appendix B).

    Each transmon is modelled as a Duffing oscillator truncated to [levels]
    states; the capacitive coupling exchanges excitations
    ([g (a† b + a b†)], rotating-wave approximation).  The basis of the
    composite Hilbert space indexes states as [|l_a l_b> = l_a * levels +
    l_b].

    This is the substrate behind three results of the paper:
    - Fig 2: interaction strength vs detuning (avoided crossing of the
      single-excitation manifold);
    - Fig 15: population transfer |01>-|10> (iSWAP channel) and |11>-|20>
      (CZ channel) as a function of flux and hold time;
    - the gate-time relations t_iSWAP = pi/2g and t_CZ = pi/sqrt(2)g of
      Appendix B, which the device model uses to cost every two-qubit gate.

    Frequencies in GHz, times in ns; the Hamiltonian carries the 2pi
    conversion internally so evolution phases are [2 pi f t]. *)

type params = {
  omega_a : float;  (** 0-1 frequency of transmon A (GHz). *)
  omega_b : float;  (** 0-1 frequency of transmon B (GHz). *)
  alpha_a : float;  (** Anharmonicity of A (GHz, negative). *)
  alpha_b : float;  (** Anharmonicity of B (GHz, negative). *)
  g : float;  (** Exchange coupling strength (GHz). *)
}

val hamiltonian : ?levels:int -> params -> Matrix.t
(** Composite Hamiltonian in angular units (rad/ns); [levels] defaults to 3,
    the minimum needed to see the |11>-|20> CZ resonance.
    @raise Invalid_argument if [levels < 2]. *)

val state_index : levels:int -> int -> int -> int
(** [state_index ~levels la lb] is the basis index of |la lb>. *)

val exchange_strength : omega_a:float -> omega_b:float -> g:float -> float
(** Effective interaction strength between |01> and |10> as a function of
    detuning: half the excess splitting of the dressed single-excitation
    doublet, [(sqrt(d^2 + 4g^2) - |d|) / 2] with [d = omega_a - omega_b].
    Equals [g] on resonance and decays as [g^2/|d|] far away — the curve of
    Fig 2 and the physical origin of the residual-coupling law (eq 5). *)

val iswap_time : g:float -> float
(** Full population exchange |01> -> |10>: [t = 1 / (4 g)] ns (i.e. a pi/2
    rotation at angular rate 2 pi g). *)

val sqrt_iswap_time : g:float -> float
(** Half exchange, [t_iSWAP / 2]. *)

val cz_time : g:float -> float
(** |11> -> |20> -> |11> round trip at the sqrt(2)-enhanced coupling:
    [t = 1 / (2 sqrt 2 g)] ns. *)
