(* Physics figures: Fig 2 (interaction strength vs detuning), Fig 4 (transmon
   spectrum vs flux), Fig 15 (two-transmon transition-probability maps). *)

let fig2 () =
  Exp_common.heading "Fig 2: interaction strength between two coupled transmons";
  Printf.printf
    "omega_B fixed at 6.0 GHz, g0 = 30 MHz; exact = half excess splitting of the\n\
     dressed doublet; eq5 = dispersive residual-coupling law g0^2/delta.\n";
  let t = Tablefmt.create [ "omega_A (GHz)"; "exact g_eff (MHz)"; "eq 5 (MHz)" ] in
  let omega_b = 6.0 and g0 = 0.030 in
  List.iter
    (fun step ->
      let omega_a = 5.0 +. (0.1 *. float_of_int step) in
      let exact = Coupled_pair.exchange_strength ~omega_a ~omega_b ~g:g0 in
      let eq5 = Crosstalk.residual_coupling ~g0 ~delta:(omega_a -. omega_b) in
      Tablefmt.add_row t
        [
          Tablefmt.cell_float ~digits:1 omega_a;
          Tablefmt.cell_float ~digits:3 (exact *. 1000.0);
          Tablefmt.cell_float ~digits:3 (eq5 *. 1000.0);
        ])
    (List.init 21 Fun.id);
  Tablefmt.print t;
  Printf.printf "Shape check: peak at resonance (6.0), 1/delta tail on both sides.\n"

let fig4 () =
  Exp_common.heading "Fig 4: transmon spectrum vs external flux";
  let tr = Transmon.create ~omega_max:7.0 ~omega_min:5.0 () in
  let t =
    Tablefmt.create
      [ "flux (Phi0)"; "omega_01 (GHz)"; "omega_12 (GHz)"; "|d omega/d flux| (GHz/Phi0)" ]
  in
  List.iter
    (fun step ->
      let flux = 0.05 *. float_of_int step in
      Tablefmt.add_row t
        [
          Tablefmt.cell_float ~digits:2 flux;
          Tablefmt.cell_float ~digits:4 (Transmon.freq_01 tr ~flux);
          Tablefmt.cell_float ~digits:4 (Transmon.freq_12 tr ~flux);
          Tablefmt.cell_float ~digits:3 (Transmon.flux_sensitivity tr ~flux);
        ])
    (List.init 21 Fun.id);
  Tablefmt.print t;
  Printf.printf
    "Sweet spots at flux 0 and 0.5 (sensitivity ~ 0); the shaded flux-sensitive\n\
     region of the paper is the slope in between.\n"

let fig15 () =
  Exp_common.heading "Fig 15: two-transmon transition probabilities vs flux and time";
  let tr = Transmon.create ~omega_max:7.0 ~omega_min:5.0 () in
  let omega_b = 6.0 and alpha = -0.2 and g = 0.030 in
  let times = [ 5.0; 10.0; 15.0; 20.0; 25.0; 30.0 ] in
  let fluxes = List.init 13 (fun i -> 0.10 +. (0.02 *. float_of_int i)) in
  let print_map ~title ~src ~dst =
    Printf.printf "\n%s\n" title;
    let t =
      Tablefmt.create
        ("flux \\ t(ns)" :: List.map (fun tm -> Printf.sprintf "%.0f" tm) times)
    in
    List.iter
      (fun flux ->
        let omega_a = Transmon.freq_01 tr ~flux in
        let h =
          Coupled_pair.hamiltonian
            { Coupled_pair.omega_a; omega_b; alpha_a = alpha; alpha_b = alpha; g }
        in
        let series = Evolution.transition_series h ~src ~dst ~times in
        Tablefmt.add_row t
          (Printf.sprintf "%.2f (%.2f GHz)" flux omega_a
          :: List.map (fun (_, p) -> Tablefmt.cell_float ~digits:2 p) series))
      fluxes;
    Tablefmt.print t
  in
  let idx = Coupled_pair.state_index ~levels:3 in
  print_map ~title:"P(|01> -> |10>)  [iSWAP channel: resonance at omega_A = 6.0]"
    ~src:(idx 0 1) ~dst:(idx 1 0);
  print_map ~title:"P(|11> -> |20>)  [CZ channel: resonance at omega_A = 6.0 - alpha = 6.2]"
    ~src:(idx 1 1) ~dst:(idx 2 0)
