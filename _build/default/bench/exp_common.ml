(* Shared infrastructure for the experiment drivers: devices, the benchmark
   suite of Table II, and compile-and-evaluate helpers. *)

let device_seed = 2020 (* MICRO 2020 *)

let circuit_seed = 7

let mesh_device ?(seed = device_seed) n_qubits =
  Device.create ~seed (Topology.square_grid n_qubits)

let device_of_topology ?(seed = device_seed) topology = Device.create ~seed topology

(* XEB needs the device's coupler activation classes. *)
let xeb_for_device ?(cycles = 5) ?(seed = circuit_seed) device =
  let classes = Baseline_gmon.edge_classes device in
  Xeb.circuit (Rng.create seed) ~graph:(Device.graph device) ~classes ~cycles ()

type benchmark = { label : string; n : int; make : Device.t -> Circuit.t }

let benchmark ?(seed = circuit_seed) name n =
  match name with
  | "bv" -> { label = Printf.sprintf "bv(%d)" n; n; make = (fun _ -> Bv.circuit ~n ()) }
  | "qaoa" ->
    {
      label = Printf.sprintf "qaoa(%d)" n;
      n;
      make = (fun _ -> Qaoa.circuit (Rng.create seed) ~n ());
    }
  | "ising" ->
    { label = Printf.sprintf "ising(%d)" n; n; make = (fun _ -> Ising.circuit ~n ()) }
  | "qgan" ->
    {
      label = Printf.sprintf "qgan(%d)" n;
      n;
      make = (fun _ -> Qgan.circuit (Rng.create seed) ~n ());
    }
  | "xeb" ->
    {
      label = Printf.sprintf "xeb(%d,5)" n;
      n;
      make = (fun device -> xeb_for_device ~seed device);
    }
  | other -> invalid_arg ("unknown benchmark: " ^ other)

(* The paper's suite (§VI-B): n = 4, 9, 16; qaoa(16)/ising(16) are kept here
   even though the paper omits their Fig 9 bars (success < 1e-4) — we print
   them and mark the cutoff in the driver. *)
let suite_sizes = [ 4; 9; 16 ]

let suite_names = [ "bv"; "qaoa"; "ising"; "qgan"; "xeb" ]

let full_suite () =
  List.concat_map (fun name -> List.map (fun n -> benchmark name n) suite_sizes) suite_names

let compile_and_evaluate ?(options = Compile.default_options) ~algorithm device bench =
  let circuit = bench.make device in
  let schedule = Compile.run ~options algorithm device circuit in
  (match Schedule.check schedule with
  | Ok () -> ()
  | Error msg ->
    failwith
      (Printf.sprintf "invalid schedule from %s on %s: %s"
         (Compile.algorithm_to_string algorithm) bench.label msg));
  Schedule.evaluate ~crosstalk_distance:options.Compile.crosstalk_distance schedule

let log_cell value =
  if value = neg_infinity then "-inf" else Tablefmt.cell_float ~digits:2 value

let heading title =
  let rule = String.make (String.length title) '=' in
  Printf.printf "\n%s\n%s\n" title rule
