(* Microscopic audit: integrate the full three-level device Hamiltonian over
   the busiest scheduled step of each algorithm and measure, per gate, the
   intended transfer, the population stolen by spectators, and the leakage
   through |2> — ground truth for the Fig 6 collision narrative. *)

let busiest schedule =
  List.fold_left
    (fun best step ->
      match best with
      | Some b
        when List.length b.Schedule.interacting >= List.length step.Schedule.interacting ->
        best
      | _ -> Some step)
    None schedule.Schedule.steps

let audit () =
  Exp_common.heading
    "Microscopic audit: 3-level Hamiltonian integration of the busiest step";
  let device = Exp_common.mesh_device 9 in
  let circuit = Exp_common.xeb_for_device ~cycles:2 device in
  let t =
    Tablefmt.create
      [
        "algorithm"; "parallel 2q"; "mean intended"; "worst spectator"; "worst leakage";
      ]
  in
  List.iter
    (fun algorithm ->
      let schedule = Compile.run algorithm device circuit in
      match busiest schedule with
      | None -> ()
      | Some step ->
        let audits = Leakage_audit.audit_step device step in
        let mean_intended =
          Stats.mean (List.map (fun a -> a.Leakage_audit.intended_transfer) audits)
        in
        let pickup, leak =
          match Leakage_audit.worst_of audits with Some w -> w | None -> (0.0, 0.0)
        in
        Tablefmt.add_row t
          [
            Compile.algorithm_to_string algorithm;
            Tablefmt.cell_int (List.length step.Schedule.interacting);
            Tablefmt.cell_float ~digits:3 mean_intended;
            Tablefmt.cell_float ~digits:3 pickup;
            Tablefmt.cell_float ~digits:3 leak;
          ])
    [ Compile.Naive; Compile.Static; Compile.Color_dynamic ];
  Tablefmt.print t;
  Printf.printf
    "(baseline-n runs parallel gates on one frequency: spectators resonantly\n\
     steal population — the microscopic Fig 6 collision.  ColorDynamic's\n\
     colored frequencies keep intended transfer near 1 with quiet spectators)\n"
