(* Fig 12: Baseline G's sensitivity to residual coupling through deactivated
   couplers, against ColorDynamic on fixed couplers. *)

let fig12 () =
  Exp_common.heading "Fig 12: log10 success vs residual coupling (gmon sensitivity)";
  let etas = [ 0.0; 0.01; 0.02; 0.05; 0.1; 0.2; 0.3; 0.5 ] in
  let bench = Exp_common.benchmark "xeb" 16 in
  let device = Exp_common.mesh_device bench.Exp_common.n in
  let cd =
    Exp_common.compile_and_evaluate ~algorithm:Compile.Color_dynamic device bench
  in
  let t =
    Tablefmt.create
      [
        "residual coupling (x g0)"; "baseline-g"; "color-dynamic (fixed coupler)";
        "gmon-dynamic (extension)";
      ]
  in
  List.iter
    (fun eta ->
      let options = { Compile.default_options with Compile.residual_coupling = eta } in
      let g = Exp_common.compile_and_evaluate ~options ~algorithm:Compile.Gmon device bench in
      let gd =
        Exp_common.compile_and_evaluate ~options ~algorithm:Compile.Gmon_dynamic device bench
      in
      Tablefmt.add_row t
        [
          Tablefmt.cell_float ~digits:2 eta;
          Exp_common.log_cell g.Schedule.log10_success;
          Exp_common.log_cell cd.Schedule.log10_success;
          Exp_common.log_cell gd.Schedule.log10_success;
        ])
    etas;
  Tablefmt.print t;
  Printf.printf
    "(baseline-g decays as residual coupling grows, while ColorDynamic needs no\n\
     couplers at all — the paper's argument for strategic frequency tuning.\n\
     gmon-dynamic composes both mechanisms, the extension proposed in §VIII:\n\
     its decay is far flatter than the tiling-scheduled baseline-g)\n"
