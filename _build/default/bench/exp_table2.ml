(* Table II: the benchmark zoo, characterised — logical gate counts plus the
   physical cost after routing and hybrid decomposition on the mesh. *)

let table2 () =
  Exp_common.heading "Table II: NISQ benchmark characteristics";
  let t =
    Tablefmt.create
      [
        "benchmark"; "qubits"; "logical gates"; "logical 2q"; "logical depth";
        "physical gates"; "physical 2q"; "physical depth";
      ]
  in
  List.iter
    (fun bench ->
      let device = Exp_common.mesh_device bench.Exp_common.n in
      let circuit = bench.Exp_common.make device in
      let native = Compile.prepare Compile.default_options device circuit in
      Tablefmt.add_row t
        [
          bench.Exp_common.label;
          Tablefmt.cell_int bench.Exp_common.n;
          Tablefmt.cell_int (Circuit.length circuit);
          Tablefmt.cell_int (Circuit.n_two_qubit circuit);
          Tablefmt.cell_int (Layers.depth circuit);
          Tablefmt.cell_int (Circuit.length native);
          Tablefmt.cell_int (Circuit.n_two_qubit native);
          Tablefmt.cell_int (Layers.depth native);
        ])
    (Exp_common.full_suite ());
  Tablefmt.print t
