(* Fig 11: sweet spot of tunability — success rate as the number of colors
   (distinct per-step interaction frequencies) is capped at 1..6. *)

let fig11 () =
  Exp_common.heading
    "Fig 11: success vs max number of colors (spectral vs temporal optimization)";
  let caps = [ 1; 2; 3; 4; 5; 6 ] in
  let benches =
    [
      Exp_common.benchmark "bv" 9;
      Exp_common.benchmark "qaoa" 9;
      Exp_common.benchmark "ising" 9;
      Exp_common.benchmark "qgan" 9;
      Exp_common.benchmark "xeb" 9;
      Exp_common.benchmark "xeb" 16;
    ]
  in
  let t =
    Tablefmt.create
      ("benchmark" :: List.map (fun k -> Printf.sprintf "%d colors" k) caps @ [ "best" ])
  in
  List.iter
    (fun bench ->
      let device = Exp_common.mesh_device bench.Exp_common.n in
      let series =
        List.map
          (fun cap ->
            let options = { Compile.default_options with Compile.max_colors = Some cap } in
            let m =
              Exp_common.compile_and_evaluate ~options ~algorithm:Compile.Color_dynamic device
                bench
            in
            (cap, m.Schedule.log10_success))
          caps
      in
      let best_cap, _ =
        List.fold_left
          (fun (bk, bv) (k, v) -> if v > bv then (k, v) else (bk, bv))
          (0, neg_infinity) series
      in
      Tablefmt.add_row t
        (bench.Exp_common.label
        :: (List.map (fun (_, v) -> Exp_common.log_cell v) series
           @ [ string_of_int best_cap ])))
    benches;
  Tablefmt.print t;
  Printf.printf
    "(log10 success; paper finds the optimum at 1-2 colors for NISQ benchmarks,\n\
     with diminishing returns beyond)\n"
