bench/main.mli:
