bench/exp_connectivity.ml: Circuit Color_dynamic Compile Exp_common Graph List Printf Schedule Stats Tablefmt Topology Unix
