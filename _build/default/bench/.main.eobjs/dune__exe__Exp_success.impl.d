bench/exp_success.ml: Compile Exp_common List Printf Schedule Stats Tablefmt
