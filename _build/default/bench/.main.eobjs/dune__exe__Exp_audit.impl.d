bench/exp_audit.ml: Compile Exp_common Leakage_audit List Printf Schedule Stats Tablefmt
