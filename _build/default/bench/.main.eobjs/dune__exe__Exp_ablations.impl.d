bench/exp_ablations.ml: Circuit Color_dynamic Coloring Compile Decompose Exp_common List Printf Schedule Tablefmt
