bench/exp_physics.ml: Coupled_pair Crosstalk Evolution Exp_common Fun List Printf Tablefmt Transmon
