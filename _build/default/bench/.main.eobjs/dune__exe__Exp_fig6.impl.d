bench/exp_fig6.ml: Array Circuit Compile Device Draw Exp_common Format Gate List Printf Schedule String
