bench/exp_common.ml: Baseline_gmon Bv Circuit Compile Device Ising List Printf Qaoa Qgan Rng Schedule String Tablefmt Topology Xeb
