bench/exp_tunability.ml: Compile Exp_common List Printf Schedule Tablefmt
