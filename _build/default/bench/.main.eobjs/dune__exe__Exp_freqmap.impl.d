bench/exp_freqmap.ml: Array Buffer Color_dynamic Compile Device Exp_common Freq_alloc List Option Printf Schedule Topology
