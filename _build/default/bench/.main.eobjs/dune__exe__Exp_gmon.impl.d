bench/exp_gmon.ml: Compile Exp_common List Printf Schedule Tablefmt
