bench/exp_extensions.ml: Array Color_dynamic Compile Control Device Exp_common Float Ghz Graph Ising List Printf Qft Schedule Tablefmt Topology Unix
