bench/exp_validate.ml: Bv Compile Density Device Exp_common Float Ising List Noisy_sim Printf Qaoa Qgan Rng Schedule Stats Tablefmt
