bench/exp_seeds.ml: Compile Exp_common List Printf Schedule Stats Tablefmt
