bench/exp_table2.ml: Circuit Compile Exp_common Layers List Tablefmt
