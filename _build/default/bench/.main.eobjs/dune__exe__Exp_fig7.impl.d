bench/exp_fig7.ml: Coloring Crosstalk_graph Exp_common Graph List Printf Tablefmt Topology
