bench/exp_generations.ml: Compile Device Exp_common List Printf Schedule Tablefmt Topology
