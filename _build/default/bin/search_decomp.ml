(* Derivation tool for the two-qubit gate decompositions of paper Fig 8.

   Finds single-qubit correction layers L1, M, L2 such that
     CNOT = L2 . iSWAP . M . iSWAP . L1          (Fig 8a)
   by meet-in-the-middle search over tensor products of the 24 single-qubit
   Clifford gates, accepting any middle layer M that factors as a tensor
   product (which is then reported through its ZYZ Euler angles).  It also
   verifies the algebraically derived SWAP-from-sqrt-iSWAP identity used by
   Decompose (Fig 8b).

   This program is a development utility: its output was used once to fix the
   constants hardcoded in Fastsc_quantum.Decompose, and it remains in the
   repository so that derivation is reproducible (`dune exec
   bin/search_decomp.exe`). *)

open Fastsc_linalg

let kron = Matrix.kron

let mul3 a b c = Matrix.mul a (Matrix.mul b c)

(* Global-phase-insensitive comparison. *)
let equal_up_to_phase a b =
  let n = Matrix.rows a in
  (* find largest entry of b to fix the phase *)
  let best = ref (0, 0) in
  let best_norm = ref 0.0 in
  for r = 0 to n - 1 do
    for c = 0 to n - 1 do
      let v = Complex.norm (Matrix.get b r c) in
      if v > !best_norm then begin
        best_norm := v;
        best := (r, c)
      end
    done
  done;
  let r, c = !best in
  if Complex.norm (Matrix.get a r c) < 1e-9 then false
  else begin
    let phase = Complex.div (Matrix.get b r c) (Matrix.get a r c) in
    Matrix.approx_equal ~tol:1e-7 (Matrix.scale phase a) b
  end

(* The 24 single-qubit Cliffords as shortest products over {H, S}. *)
let cliffords () =
  let h = Gate.unitary Fastsc_quantum.Gate.H
  and s = Gate.unitary Fastsc_quantum.Gate.S in
  ignore h;
  ignore s;
  []

(* placeholder replaced below *)

let () = ignore (cliffords ())

let () =
  let open Fastsc_quantum in
  let u g = Gate.unitary g in
  let id2 = Matrix.identity 2 in
  (* BFS closure of {H, S} up to global phase gives the 24 Cliffords. *)
  let generators = [ ("H", u Gate.H); ("S", u Gate.S) ] in
  let found : (string * Matrix.t) list ref = ref [ ("I", id2) ] in
  let is_new m = not (List.exists (fun (_, m') -> equal_up_to_phase m m') !found) in
  let frontier = ref !found in
  while !frontier <> [] do
    let next = ref [] in
    List.iter
      (fun (name, m) ->
        List.iter
          (fun (gname, gm) ->
            let candidate = Matrix.mul gm m in
            let cname = gname ^ name in
            if is_new candidate then begin
              found := (cname, candidate) :: !found;
              next := (cname, candidate) :: !next
            end)
          generators)
      !frontier;
    frontier := !next
  done;
  let cliffords = Array.of_list !found in
  Printf.printf "single-qubit cliffords: %d\n%!" (Array.length cliffords);

  (* Tensor-product separability: M =? A (x) B. *)
  let separate m =
    let block i j = Array.init 4 (fun k -> Matrix.get m ((2 * i) + (k / 2)) ((2 * j) + (k mod 2))) in
    let norm2 v = Array.fold_left (fun acc z -> acc +. Complex_ext.norm2 z) 0.0 v in
    let blocks = Array.init 4 (fun idx -> block (idx / 2) (idx mod 2)) in
    let ref_idx = ref 0 in
    for idx = 1 to 3 do
      if norm2 blocks.(idx) > norm2 blocks.(!ref_idx) then ref_idx := idx
    done;
    let bref = blocks.(!ref_idx) in
    let bnorm = sqrt (norm2 bref) in
    if bnorm < 1e-9 then None
    else begin
      let b = Array.map (fun z -> Complex_ext.scale (1.0 /. bnorm) z) bref in
      let a =
        Matrix.init 2 2 (fun i j ->
            let blk = blocks.((2 * i) + j) in
            let acc = ref Complex.zero in
            Array.iteri (fun k z -> acc := Complex.add !acc (Complex.mul (Complex.conj b.(k)) z)) blk;
            !acc)
      in
      let bm = Matrix.init 2 2 (fun i j -> b.((2 * i) + j)) in
      if Matrix.approx_equal ~tol:1e-7 (kron a bm) m then Some (a, bm) else None
    end
  in

  let zyz v =
    (* U = e^{i phase} Rz(alpha) Ry(beta) Rz(gamma) *)
    let det =
      Complex.sub
        (Complex.mul (Matrix.get v 0 0) (Matrix.get v 1 1))
        (Complex.mul (Matrix.get v 0 1) (Matrix.get v 1 0))
    in
    let phase = Complex.arg det /. 2.0 in
    let scale = Complex.polar 1.0 (-.phase) in
    let w = Matrix.scale scale v in
    let w00 = Matrix.get w 0 0 and w10 = Matrix.get w 1 0 in
    let beta = 2.0 *. atan2 (Complex.norm w10) (Complex.norm w00) in
    let arg00 = if Complex.norm w00 > 1e-9 then Complex.arg w00 else 0.0 in
    let arg10 = if Complex.norm w10 > 1e-9 then Complex.arg w10 else 0.0 in
    let alpha = arg10 -. arg00 and gamma = -.arg10 -. arg00 in
    (phase, alpha, beta, gamma)
  in

  let cnot = u Gate.Cnot and iswap = u Gate.Iswap in
  let adj = Matrix.adjoint in
  (* meet in the middle: M = iSWAP^ . L2^ . CNOT . L1^ . iSWAP^ *)
  let n = Array.length cliffords in
  (try
     for i1a = 0 to n - 1 do
       for i1b = 0 to n - 1 do
         let l1 = kron (snd cliffords.(i1a)) (snd cliffords.(i1b)) in
         let right = mul3 cnot (adj l1) (adj iswap) in
         for i2a = 0 to n - 1 do
           for i2b = 0 to n - 1 do
             let l2 = kron (snd cliffords.(i2a)) (snd cliffords.(i2b)) in
             let m = mul3 (adj iswap) (adj l2) right in
             match separate m with
             | None -> ()
             | Some (ma, mb) ->
               Printf.printf "FOUND CNOT decomposition:\n";
               Printf.printf "  L1 = %s (x) %s\n" (fst cliffords.(i1a)) (fst cliffords.(i1b));
               Printf.printf "  L2 = %s (x) %s\n" (fst cliffords.(i2a)) (fst cliffords.(i2b));
               let report label v =
                 let phase, alpha, beta, gamma = zyz v in
                 Printf.printf "  %s: phase=%.6f zyz=(%.6f, %.6f, %.6f)\n" label phase alpha
                   beta gamma
               in
               report "Ma" ma;
               report "Mb" mb;
               raise Exit
           done
         done
       done
     done;
     Printf.printf "no CNOT decomposition found in the Clifford search space\n"
   with Exit -> ());

  (* Verify SWAP = sqrtiSWAP . (Rx pi/2 (x) Rx pi/2) sqrtiSWAP (Rx -pi/2 (x) Rx -pi/2)
                   . (H (x) H) sqrtiSWAP (H (x) H), up to global phase. *)
  let sq = u Gate.Sqrt_iswap in
  let rx t = u (Gate.Rx t) in
  let hh = kron (u Gate.H) (u Gate.H) in
  let rxp = kron (rx (Float.pi /. 2.0)) (rx (Float.pi /. 2.0)) in
  let rxm = kron (rx (-.Float.pi /. 2.0)) (rx (-.Float.pi /. 2.0)) in
  let candidate = mul3 sq rxp (mul3 sq rxm (mul3 hh sq hh)) in
  Printf.printf "SWAP-from-sqrt-iSWAP identity holds: %b\n"
    (equal_up_to_phase candidate (u Gate.Swap))
