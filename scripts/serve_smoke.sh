#!/bin/sh
# Serve-daemon smoke test (make serve-smoke).
#
# Three legs:
#   1. batch      a JSONL batch — a plain request, an over-deadline request
#                 (budget 0 ms, unique cache key) and a malformed line — runs
#                 under FASTSC_JOBS=1 and FASTSC_JOBS=4; the over-deadline
#                 request must come back as a structured greedy-tier response,
#                 the malformed line as a bad_request error, and the sorted,
#                 scrubbed response sets must be byte-identical across the
#                 two job counts (the determinism contract).
#   2. drain      SIGTERM mid-session must answer the in-flight work, write a
#                 cache snapshot and exit 0.
#   3. corrupt    a snapshot with a flipped checksum digit must be
#                 quarantined to .corrupt on the next boot — never a crash.
#
# Everything runs inside _build/serve_smoke/; the working tree is untouched.

set -eu

FASTSC=${FASTSC:-_build/default/bin/fastsc.exe}
D=_build/serve_smoke
rm -rf "$D"
mkdir -p "$D/jobs1" "$D/jobs4" "$D/drain"

fail() { echo "serve-smoke: FAIL: $*" >&2; exit 1; }

BATCH='{"id":"r1","bench":"bv","n":5,"topology":"path"}
{"id":"r2","bench":"qaoa","n":6,"topology":"ring","seed":31,"deadline_ms":0}
{"id":"r3","this is not json'

# --- leg 1: batch determinism across job counts -----------------------------

for jobs in 1 4; do
  printf '%s\n' "$BATCH" \
    | FASTSC_JOBS=$jobs FASTSC_SERVE_SCRUB=1 \
      "$FASTSC" serve --snapshot-dir "$D/jobs$jobs" \
      > "$D/jobs$jobs/out.jsonl" 2> "$D/jobs$jobs/err.log" \
    || fail "daemon exited non-zero at jobs=$jobs"
  sort "$D/jobs$jobs/out.jsonl" > "$D/jobs$jobs/out.sorted"
done

grep -q '"id":"r1".*"status":"ok".*"tier":"full"' "$D/jobs1/out.jsonl" \
  || fail "r1 did not compile at the full tier"
grep -q '"id":"r2".*"tier":"greedy"' "$D/jobs1/out.jsonl" \
  || fail "over-deadline request did not degrade to the greedy tier"
grep -q '"id":"r2".*"outcome":"expired"' "$D/jobs1/out.jsonl" \
  || fail "degraded response does not trace the expired SMT attempts"
grep -q '"status":"error".*"code":"bad_request"' "$D/jobs1/out.jsonl" \
  || fail "malformed line did not produce a structured bad_request error"
cmp -s "$D/jobs1/out.sorted" "$D/jobs4/out.sorted" \
  || fail "responses differ between FASTSC_JOBS=1 and 4"

# --- leg 2: SIGTERM drains in-flight work and snapshots ----------------------

mkfifo "$D/drain/in"
FASTSC_JOBS=1 FASTSC_SERVE_SCRUB=1 \
  "$FASTSC" serve --snapshot-dir "$D/drain" --drain-grace-ms 5000 \
  < "$D/drain/in" > "$D/drain/out.jsonl" 2> "$D/drain/err.log" &
pid=$!
exec 9> "$D/drain/in"
printf '%s\n' '{"id":"d1","bench":"bv","n":5,"topology":"path"}' >&9

ok=0
i=0
while [ $i -lt 100 ]; do
  if grep -q '"id":"d1"' "$D/drain/out.jsonl" 2>/dev/null; then ok=1; break; fi
  i=$((i + 1))
  sleep 0.1
done
[ $ok -eq 1 ] || { kill "$pid" 2>/dev/null || true; fail "no response before SIGTERM"; }

kill -TERM "$pid"
status=0
wait "$pid" || status=$?
exec 9>&-
[ "$status" -eq 0 ] || fail "daemon exited $status after SIGTERM"
[ -f "$D/drain/solver_cache.json" ] || fail "no snapshot written at drain"

# --- leg 3: corrupt snapshot is quarantined on reboot ------------------------

sed 's/"checksum":"./"checksum":"~/' "$D/drain/solver_cache.json" \
  > "$D/drain/solver_cache.json.bad"
mv "$D/drain/solver_cache.json.bad" "$D/drain/solver_cache.json"

: | FASTSC_JOBS=1 "$FASTSC" serve --snapshot-dir "$D/drain" \
    > /dev/null 2> "$D/drain/reboot.log" \
  || fail "daemon crashed booting from a corrupt snapshot"
grep -q "quarantined" "$D/drain/reboot.log" \
  || fail "corrupt snapshot was not quarantined"
[ -f "$D/drain/solver_cache.json.corrupt" ] \
  || fail "quarantined snapshot not preserved as .corrupt"

echo "serve-smoke: OK (batch determinism, SIGTERM drain, corrupt-snapshot quarantine)"
