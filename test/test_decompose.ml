open Helpers

(* Every decomposition must reproduce the original two-qubit unitary up to a
   global phase, checked through the state-vector simulator. *)
let check_equivalent name original replacement =
  check_gates_equivalent name [ original ] replacement

let test_cnot_via_cz () =
  check_equivalent "cnot via cz" (Gate.Cnot, [ 1; 0 ]) (Decompose.cnot_via_cz 1 0);
  check_equivalent "cnot via cz reversed" (Gate.Cnot, [ 0; 1 ]) (Decompose.cnot_via_cz 0 1)

let test_cnot_via_iswap () =
  check_equivalent "cnot via iswap" (Gate.Cnot, [ 1; 0 ]) (Decompose.cnot_via_iswap 1 0);
  check_equivalent "cnot via iswap reversed" (Gate.Cnot, [ 0; 1 ]) (Decompose.cnot_via_iswap 0 1)

let test_swap_via_cz () =
  check_equivalent "swap via cz" (Gate.Swap, [ 0; 1 ]) (Decompose.swap_via_cz 0 1)

let test_swap_via_sqrt_iswap () =
  check_equivalent "swap via sqrt-iswap" (Gate.Swap, [ 0; 1 ]) (Decompose.swap_via_sqrt_iswap 0 1);
  check_equivalent "swap via sqrt-iswap reversed" (Gate.Swap, [ 1; 0 ])
    (Decompose.swap_via_sqrt_iswap 1 0)

let test_native_pass_through () =
  Alcotest.(check (list (pair (module struct
    type t = Gate.t

    let equal = Gate.equal

    let pp fmt g = Format.pp_print_string fmt (Gate.name g)
  end) (list int))))
    "native untouched"
    [ (Gate.Cz, [ 0; 1 ]) ]
    (Decompose.gate Decompose.Hybrid Gate.Cz [ 0; 1 ])

let test_strategy_gate_choice () =
  let two_qubit_count gates =
    List.length (List.filter (fun (g, _) -> Gate.is_two_qubit g) gates)
  in
  let czs gates = List.length (List.filter (fun (g, _) -> g = Gate.Cz) gates) in
  let cnot_cz = Decompose.gate Decompose.All_cz Gate.Cnot [ 0; 1 ] in
  check_int "all-cz cnot uses 1 cz" 1 (czs cnot_cz);
  let cnot_iswap = Decompose.gate Decompose.All_iswap Gate.Cnot [ 0; 1 ] in
  check_int "all-iswap cnot uses 2 two-qubit gates" 2 (two_qubit_count cnot_iswap);
  let swap_hybrid = Decompose.gate Decompose.Hybrid Gate.Swap [ 0; 1 ] in
  check_int "hybrid swap uses 3 sqrt-iswaps" 3
    (List.length (List.filter (fun (g, _) -> g = Gate.Sqrt_iswap) swap_hybrid))

let test_run_only_native () =
  let c =
    Circuit.of_gates 3
      [ (Gate.H, [ 0 ]); (Gate.Cnot, [ 0; 1 ]); (Gate.Swap, [ 1; 2 ]); (Gate.Cz, [ 0; 1 ]) ]
  in
  List.iter
    (fun strategy ->
      let out = Decompose.run strategy c in
      check_true
        (Decompose.strategy_to_string strategy ^ " all native")
        (Array.for_all (fun app -> Gate.is_native app.Gate.gate) (Circuit.instructions out)))
    [ Decompose.All_cz; Decompose.All_iswap; Decompose.Hybrid ]

let test_run_preserves_semantics () =
  let c =
    Circuit.of_gates 3
      [ (Gate.H, [ 0 ]); (Gate.Cnot, [ 0; 1 ]); (Gate.Swap, [ 1; 2 ]); (Gate.T, [ 2 ]) ]
  in
  let u_ref = circuit_unitary c in
  List.iter
    (fun strategy ->
      let out = Decompose.run strategy c in
      check_true
        (Decompose.strategy_to_string strategy ^ " semantics")
        (equal_up_to_phase (circuit_unitary out) u_ref))
    [ Decompose.All_cz; Decompose.All_iswap; Decompose.Hybrid ]

let test_hybrid_cheaper_than_uniform () =
  (* the motivation for the hybrid strategy (paper Fig 8 / §V-B5):
     CNOT is cheaper through CZ (one native two-qubit gate vs two iSWAPs),
     and SWAP spends less total interaction time through sqrt-iSWAPs *)
  let count_2q gates = List.length (List.filter (fun (g, _) -> Gate.is_two_qubit g) gates) in
  check_int "cnot via cz: 1 two-qubit gate" 1 (count_2q (Decompose.cnot_via_cz 0 1));
  check_int "cnot via iswap: 2 two-qubit gates" 2 (count_2q (Decompose.cnot_via_iswap 0 1));
  let g = 0.03 in
  let time_via_cz = 3.0 *. Coupled_pair.cz_time ~g in
  let time_via_sqrt = 3.0 *. Coupled_pair.sqrt_iswap_time ~g in
  check_true "swap interaction time shorter via sqrt-iswap" (time_via_sqrt < time_via_cz)

let prop_arbitrary_circuits_preserved =
  qcheck_case ~count:30 "random circuits survive decomposition" QCheck.(int_range 1 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let b = Circuit.builder 3 in
      for _ = 1 to 6 do
        match Rng.int rng 4 with
        | 0 ->
          let a = Rng.int rng 3 in
          Circuit.add b Gate.Cnot [ a; (a + 1 + Rng.int rng 2) mod 3 ]
        | 1 -> Circuit.add b Gate.Swap [ 0; 1 + Rng.int rng 2 ]
        | 2 -> Circuit.add b Gate.H [ Rng.int rng 3 ]
        | _ -> Circuit.add b (Gate.Rz (Rng.float rng)) [ Rng.int rng 3 ]
      done;
      let c = Circuit.finish b in
      let u_ref = circuit_unitary c in
      equal_up_to_phase (circuit_unitary (Decompose.run Decompose.Hybrid c)) u_ref)

let suite =
  [
    Alcotest.test_case "cnot via cz" `Quick test_cnot_via_cz;
    Alcotest.test_case "cnot via iswap" `Quick test_cnot_via_iswap;
    Alcotest.test_case "swap via cz" `Quick test_swap_via_cz;
    Alcotest.test_case "swap via sqrt-iswap" `Quick test_swap_via_sqrt_iswap;
    Alcotest.test_case "native pass-through" `Quick test_native_pass_through;
    Alcotest.test_case "strategy gate choice" `Quick test_strategy_gate_choice;
    Alcotest.test_case "run only native" `Quick test_run_only_native;
    Alcotest.test_case "run preserves semantics" `Quick test_run_preserves_semantics;
    Alcotest.test_case "hybrid motivation" `Quick test_hybrid_cheaper_than_uniform;
    prop_arbitrary_circuits_preserved;
  ]
