(* Property-based oracles for the coloring heuristics: every algorithm must
   return a proper coloring (the paper's frequency-assignment correctness
   rests on it, SIV-C), and the greedy family must respect the classical
   max_degree + 1 bound. *)
open Helpers

let g_arb = Proptest.graph ~max_vertices:12 ~edge_prob:0.35 ()

let greedy_bound g coloring =
  Graph.n_vertices g = 0 || Coloring.n_colors coloring <= Graph.max_degree g + 1

let prop_welsh_powell =
  prop_case "welsh-powell is proper and bounded" g_arb (fun g ->
      let c = Coloring.welsh_powell g in
      Coloring.is_proper g c && greedy_bound g c)

let prop_dsatur =
  prop_case "dsatur is proper and bounded" g_arb (fun g ->
      let c = Coloring.dsatur g in
      Coloring.is_proper g c && greedy_bound g c)

let prop_natural =
  prop_case "natural greedy is proper and bounded" g_arb (fun g ->
      let c = Coloring.natural g in
      Coloring.is_proper g c && greedy_bound g c)

let prop_greedy_any_order =
  prop_case "greedy is proper in reversed order too" g_arb (fun g ->
      let order = List.rev (Graph.vertices g) in
      Coloring.is_proper g (Coloring.greedy ~order g))

let prop_two_color_bipartite =
  prop_case "two_color succeeds on constructed bipartite graphs"
    (Proptest.bipartite_graph ~max_side:6 ~edge_prob:0.4 ())
    (fun g ->
      match Coloring.two_color g with
      | None -> false
      | Some c -> Coloring.is_proper g c && Coloring.n_colors c <= 2)

let prop_color_classes_partition =
  prop_case "color_classes partitions the vertex set" g_arb (fun g ->
      let c = Coloring.welsh_powell g in
      let classes = Coloring.color_classes c in
      let total = Array.fold_left (fun acc vs -> acc + List.length vs) 0 classes in
      total = Graph.n_vertices g
      && Array.to_list classes
         |> List.concat
         |> List.sort compare
         |> ( = ) (Graph.vertices g))

let suite =
  [
    prop_welsh_powell;
    prop_dsatur;
    prop_natural;
    prop_greedy_any_order;
    prop_two_color_bipartite;
    prop_color_classes_partition;
  ]
