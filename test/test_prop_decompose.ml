(* Property-based oracles for circuit rewriting: on random circuits over the
   full gate set, every decomposition strategy must produce native-only
   output that is unitary-equal to the input up to global phase (paper
   SV-B5), and the peephole optimizer must preserve semantics while never
   growing the circuit.  Qubit counts stay <= 3 so the 2^n x 2^n oracle
   matrices stay cheap. *)
open Helpers

let c_arb = Proptest.circuit ~max_qubits:3 ~max_gates:6 ()

let all_native c =
  Array.for_all (fun app -> Gate.is_native app.Gate.gate) (Circuit.instructions c)

let strategies = [ Decompose.All_cz; Decompose.All_iswap; Decompose.Hybrid ]

let prop_decompose_native =
  prop_case ~count:30 "decomposition emits only native gates" c_arb (fun c ->
      List.for_all (fun strategy -> all_native (Decompose.run strategy c)) strategies)

let prop_decompose_preserves_unitary =
  prop_case ~count:30 "decomposition preserves the unitary" c_arb (fun c ->
      let u_ref = circuit_unitary c in
      List.for_all
        (fun strategy -> equal_up_to_phase (circuit_unitary (Decompose.run strategy c)) u_ref)
        strategies)

let prop_optimize_preserves_unitary =
  prop_case ~count:30 "peephole optimization preserves the unitary" c_arb (fun c ->
      let o = Optimize.run c in
      Circuit.length o <= Circuit.length c
      && equal_up_to_phase (circuit_unitary o) (circuit_unitary c))

let prop_decompose_then_optimize =
  prop_case ~count:20 "decompose + optimize composes soundly" c_arb (fun c ->
      let o = Optimize.run (Decompose.run Decompose.Hybrid c) in
      all_native o && equal_up_to_phase (circuit_unitary o) (circuit_unitary c))

let suite =
  [
    prop_decompose_native;
    prop_decompose_preserves_unitary;
    prop_optimize_preserves_unitary;
    prop_decompose_then_optimize;
  ]
