open Helpers

let test_initial_state () =
  let s = Statevector.create 3 in
  check_float "amp |000> = 1" 1.0 (Statevector.probability s 0);
  check_float "others zero" 0.0 (Statevector.probability s 5);
  check_float "norm" 1.0 (Statevector.norm s)

let test_x_flips () =
  let s = Statevector.create 2 in
  Statevector.apply s Gate.X [ 0 ];
  check_float "now |01>" 1.0 (Statevector.probability s 1);
  Statevector.apply s Gate.X [ 1 ];
  check_float "now |11>" 1.0 (Statevector.probability s 3)

let test_h_superposition () =
  let s = Statevector.create 1 in
  Statevector.apply s Gate.H [ 0 ];
  check_float ~eps:1e-12 "p0" 0.5 (Statevector.probability s 0);
  check_float ~eps:1e-12 "p1" 0.5 (Statevector.probability s 1)

let test_bell_state () =
  let s = Statevector.create 2 in
  Statevector.apply s Gate.H [ 0 ];
  Statevector.apply s Gate.Cnot [ 0; 1 ];
  check_float ~eps:1e-12 "p(00)" 0.5 (Statevector.probability s 0);
  check_float ~eps:1e-12 "p(11)" 0.5 (Statevector.probability s 3);
  check_float ~eps:1e-12 "p(01)" 0.0 (Statevector.probability s 1)

let test_cnot_control_msb_convention () =
  (* Cnot [a; b]: a is the control *)
  let s = Statevector.create 2 in
  Statevector.apply s Gate.X [ 1 ];
  (* |10> : qubit1 = 1 *)
  Statevector.apply s Gate.Cnot [ 1; 0 ];
  (* control qubit 1 set, so target flips: |11> *)
  check_float "controlled flip" 1.0 (Statevector.probability s 3);
  let s2 = Statevector.create 2 in
  Statevector.apply s2 Gate.X [ 1 ];
  Statevector.apply s2 Gate.Cnot [ 0; 1 ];
  (* control qubit 0 clear: nothing happens *)
  check_float "no flip" 1.0 (Statevector.probability s2 2)

let test_iswap_action () =
  let s = Statevector.create 2 in
  Statevector.apply s Gate.X [ 0 ];
  (* |01> *)
  Statevector.apply s Gate.Iswap [ 1; 0 ];
  (* paper convention: |01> -> -i |10> *)
  check_float ~eps:1e-12 "moved" 1.0 (Statevector.probability s 2);
  let amp = Statevector.amplitude s 2 in
  check_true "-i phase" (Complex_ext.approx_equal amp (Complex_ext.make 0.0 (-1.0)))

let test_swap_gate () =
  let s = Statevector.create 3 in
  Statevector.apply s Gate.X [ 0 ];
  Statevector.apply s Gate.Swap [ 0; 2 ];
  check_float "excitation moved to qubit 2" 1.0 (Statevector.probability s 4)

let test_run_circuit_ghz () =
  let c =
    Circuit.of_gates 3 [ (Gate.H, [ 0 ]); (Gate.Cnot, [ 0; 1 ]); (Gate.Cnot, [ 1; 2 ]) ]
  in
  let s = Statevector.of_circuit c in
  check_float ~eps:1e-12 "p(000)" 0.5 (Statevector.probability s 0);
  check_float ~eps:1e-12 "p(111)" 0.5 (Statevector.probability s 7)

let test_fidelity () =
  let a = Statevector.create 2 in
  let b = Statevector.create 2 in
  check_float ~eps:1e-12 "identical" 1.0 (Statevector.fidelity a b);
  Statevector.apply b Gate.X [ 0 ];
  check_float ~eps:1e-12 "orthogonal" 0.0 (Statevector.fidelity a b);
  let c = Statevector.create 2 in
  Statevector.apply c Gate.H [ 0 ];
  check_float ~eps:1e-12 "half overlap" 0.5 (Statevector.fidelity a c)

let test_global_phase_invisible_in_fidelity () =
  let a = Statevector.create 1 in
  let b = Statevector.create 1 in
  Statevector.apply b (Gate.Rz 1.3) [ 0 ];
  (* Rz only adds phase on |0> component *)
  check_float ~eps:1e-12 "phase invariant" 1.0 (Statevector.fidelity a b)

let test_measure_distribution () =
  let rng = Rng.create 99 in
  let s = Statevector.create 1 in
  Statevector.apply s Gate.H [ 0 ];
  let ones = ref 0 in
  for _ = 1 to 2000 do
    if Statevector.measure rng s = 1 then incr ones
  done;
  check_true "roughly balanced" (!ones > 850 && !ones < 1150)

let test_of_amplitudes_validation () =
  Alcotest.check_raises "not power of two"
    (Invalid_argument "Statevector.of_amplitudes: length must be a power of two") (fun () ->
      ignore (Statevector.of_amplitudes (Array.make 3 Complex.zero)))

let test_of_amplitudes_copies () =
  (* Regression: the boxed predecessor stored the caller's array, so mutating
     it after construction silently corrupted the state. *)
  let amps = [| Complex.zero; Complex.one |] in
  let s = Statevector.of_amplitudes amps in
  amps.(1) <- { Complex.re = 0.25; im = -0.75 };
  check_float ~eps:0.0 "caller mutation does not reach the state" 1.0 (Statevector.probability s 1);
  check_float ~eps:0.0 "basis-0 amplitude untouched" 0.0 (Statevector.probability s 0)

let test_reset () =
  let s = Statevector.create 2 in
  Statevector.apply s Gate.H [ 0 ];
  Statevector.apply s Gate.Cz [ 0; 1 ];
  Statevector.reset s;
  check_float ~eps:0.0 "back to |00>" 1.0 (Statevector.probability s 0);
  check_float ~eps:0.0 "norm restored" 1.0 (Statevector.norm s)

let test_apply_validation () =
  let s = Statevector.create 2 in
  Alcotest.check_raises "duplicate qubits"
    (Invalid_argument "Statevector.apply_matrix2: duplicate qubit") (fun () ->
      Statevector.apply s Gate.Cz [ 1; 1 ])

let test_matrix_apply_matches_gate () =
  let s1 = Statevector.create 3 in
  let s2 = Statevector.create 3 in
  Statevector.apply s1 Gate.H [ 1 ];
  Statevector.apply_matrix1 s2 (Gate.unitary Gate.H) 1;
  check_float ~eps:1e-12 "same state" 1.0 (Statevector.fidelity s1 s2)

let prop_unitarity_preserves_norm =
  qcheck_case "norm preserved by random circuits" QCheck.(int_range 1 2000) (fun seed ->
      let rng = Rng.create seed in
      let s = Statevector.create 4 in
      for _ = 1 to 12 do
        match Rng.int rng 5 with
        | 0 -> Statevector.apply s Gate.H [ Rng.int rng 4 ]
        | 1 -> Statevector.apply s (Gate.Rx (Rng.float rng)) [ Rng.int rng 4 ]
        | 2 -> Statevector.apply s Gate.T [ Rng.int rng 4 ]
        | 3 ->
          let a = Rng.int rng 4 in
          Statevector.apply s Gate.Cz [ a; (a + 1 + Rng.int rng 3) mod 4 ]
        | _ ->
          let a = Rng.int rng 4 in
          Statevector.apply s Gate.Iswap [ a; (a + 1 + Rng.int rng 3) mod 4 ]
      done;
      Float.abs (Statevector.norm s -. 1.0) < 1e-9)

let prop_probabilities_sum_to_one =
  qcheck_case "probabilities sum to 1" QCheck.(int_range 1 2000) (fun seed ->
      let rng = Rng.create seed in
      let s = Statevector.create 3 in
      for _ = 1 to 8 do
        Statevector.apply s (Gate.Ry (Rng.float rng *. 6.28)) [ Rng.int rng 3 ]
      done;
      let total = Array.fold_left ( +. ) 0.0 (Statevector.probabilities s) in
      Float.abs (total -. 1.0) < 1e-9)

let suite =
  [
    Alcotest.test_case "initial state" `Quick test_initial_state;
    Alcotest.test_case "x flips" `Quick test_x_flips;
    Alcotest.test_case "h superposition" `Quick test_h_superposition;
    Alcotest.test_case "bell state" `Quick test_bell_state;
    Alcotest.test_case "cnot convention" `Quick test_cnot_control_msb_convention;
    Alcotest.test_case "iswap action" `Quick test_iswap_action;
    Alcotest.test_case "swap gate" `Quick test_swap_gate;
    Alcotest.test_case "ghz circuit" `Quick test_run_circuit_ghz;
    Alcotest.test_case "fidelity" `Quick test_fidelity;
    Alcotest.test_case "phase invariance" `Quick test_global_phase_invisible_in_fidelity;
    Alcotest.test_case "measure distribution" `Quick test_measure_distribution;
    Alcotest.test_case "of_amplitudes validation" `Quick test_of_amplitudes_validation;
    Alcotest.test_case "of_amplitudes copies" `Quick test_of_amplitudes_copies;
    Alcotest.test_case "reset" `Quick test_reset;
    Alcotest.test_case "apply validation" `Quick test_apply_validation;
    Alcotest.test_case "matrix apply" `Quick test_matrix_apply_matches_gate;
    prop_unitarity_preserves_norm;
    prop_probabilities_sum_to_one;
  ]
