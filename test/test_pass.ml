(* The pass-manager pipeline (lib/core/pass.ml): context threading, the
   instrumentation trail, registry semantics, and parity with the direct
   scheduler entry points it replaced. *)
open Helpers
open Fastsc_device
open Fastsc_core
open Fastsc_benchmarks

let device () = Device.create ~seed:2020 (Topology.grid 3 3)

let bv9 () = Bv.circuit ~n:9 ()

(* Referencing Compile forces the built-in registrations to have run. *)
let cd_name = Compile.algorithm_to_string Compile.Color_dynamic

let test_execute_through_evaluate () =
  let ctx = Pass.execute ~algorithm:cd_name (device ()) (bv9 ()) in
  let trail = Pass.Context.trail ctx in
  check_int "six passes executed" 6 (List.length trail);
  let order = List.map (fun r -> r.Pass.Context.pass) trail in
  check_true "pipeline order"
    (order = [ "place"; "route"; "decompose"; "optimize"; "schedule"; "evaluate" ]);
  check_true "schedule valid" (Result.is_ok (Schedule.check (Pass.Context.schedule_exn ctx)));
  check_true "metrics present" ((Pass.Context.metrics_exn ctx).Schedule.success > 0.0);
  check_true "algorithm recorded" (ctx.Pass.Context.algorithm = Some cd_name)

let test_execute_through_schedule () =
  let ctx = Pass.execute ~through:`Schedule ~algorithm:cd_name (device ()) (bv9 ()) in
  check_int "five passes executed" 5 (List.length (Pass.Context.trail ctx));
  check_true "no metrics yet" (ctx.Pass.Context.metrics = None);
  match Pass.Context.metrics_exn ctx with
  | _ -> Alcotest.fail "metrics_exn should raise before evaluate"
  | exception Invalid_argument msg -> check_true "names the stage" (contains msg "evaluate")

let test_matches_direct_scheduler () =
  (* the pipeline is a refactor, not a behaviour change: same schedule and
     stats as calling the scheduler by hand on the prepared circuit *)
  let d = device () in
  let circuit = bv9 () in
  let native = Compile.prepare Compile.default_options d circuit in
  let direct, stats = Color_dynamic.run d native in
  let ctx = Pass.execute ~through:`Schedule ~algorithm:"cd" d circuit in
  let piped = Pass.Context.schedule_exn ctx in
  check_int "same depth" (Schedule.depth direct) (Schedule.depth piped);
  let md = Schedule.evaluate direct and mp = Schedule.evaluate piped in
  check_float "same success" md.Schedule.log10_success mp.Schedule.log10_success;
  check_int "same colors stat" stats.Color_dynamic.max_colors_used
    (Pass.Context.stat_int ctx "max_colors_used");
  check_float "same delta stat" stats.Color_dynamic.min_delta
    (Pass.Context.stat_float ctx "min_delta")

let test_alias_resolves_to_canonical_name () =
  let ctx = Pass.execute ~through:`Schedule ~algorithm:"cd" (device ()) (bv9 ()) in
  check_true "canonical name recorded" (ctx.Pass.Context.algorithm = Some "color-dynamic")

let test_unknown_algorithm_rejected () =
  match Pass.execute ~algorithm:"nonsense" (device ()) (bv9 ()) with
  | _ -> Alcotest.fail "unknown algorithm should raise"
  | exception Invalid_argument msg ->
    check_true "names the stray" (contains msg "nonsense");
    check_true "lists the registry" (contains msg "color-dynamic")

let test_instrumentation_counts () =
  let ctx = Pass.execute ~algorithm:cd_name (device ()) (bv9 ()) in
  let by_name name =
    List.find (fun r -> r.Pass.Context.pass = name) (Pass.Context.trail ctx)
  in
  check_true "wall clock non-negative"
    (List.for_all (fun r -> r.Pass.Context.wall_ns >= 0.0) (Pass.Context.trail ctx));
  (* routing and decomposition never call the SMT solver *)
  check_int "route makes no solves" 0 (by_name "route").Pass.Context.smt_solves;
  check_int "decompose makes no solves" 0 (by_name "decompose").Pass.Context.smt_solves;
  (* ColorDynamic allocates frequencies: solver activity lands in schedule *)
  let sched = by_name "schedule" in
  check_true "schedule touches the solver cache"
    (sched.Pass.Context.solver_hits + sched.Pass.Context.solver_misses > 0);
  (* evaluation scores crosstalk pairs *)
  let ev = by_name "evaluate" in
  check_true "evaluate touches the pair cache"
    (ev.Pass.Context.pair_hits + ev.Pass.Context.pair_misses > 0)

let test_report_is_valid_json () =
  let ctx = Pass.execute ~algorithm:cd_name (device ()) (bv9 ()) in
  let text = Json.to_string (Pass.Context.report ctx) in
  List.iter
    (fun key -> check_true ("report has " ^ key) (contains text ("\"" ^ key ^ "\"")))
    [ "algorithm"; "passes"; "stats"; "caches"; "smt_solves_total"; "metrics"; "wall_ms" ]

let test_stat_lookup_errors () =
  let ctx = Pass.execute ~algorithm:cd_name (device ()) (bv9 ()) in
  (match Pass.Context.stat_int ctx "no_such_stat" with
  | _ -> Alcotest.fail "missing stat should raise"
  | exception Invalid_argument msg ->
    check_true "lists reported labels" (contains msg "max_colors_used"));
  (* Float widens Int, not the other way round *)
  check_float "int widens to float" (float_of_int (Pass.Context.stat_int ctx "cycles"))
    (Pass.Context.stat_float ctx "cycles");
  match Pass.Context.stat_int ctx "min_delta" with
  | _ -> Alcotest.fail "float stat read as int should raise"
  | exception Invalid_argument _ -> ()

let test_register_replaces_in_place () =
  (* a custom scheduler is usable by name; re-registering the same name
     replaces the entry without growing the registry *)
  let before = Pass.scheduler_names () in
  let make label =
    (module struct
      let name = "test-fixed"
      let aliases = [ "tf" ]
      let table1 = false
      let consumes = `Native
      let schedule options device native =
        ignore options;
        let sched = Baseline_uniform.run device native in
        (sched, [ ("label", Pass.Text label) ])
    end : Pass.SCHEDULER)
  in
  Pass.register (make "v1");
  let after = Pass.scheduler_names () in
  check_int "registry grew by one" (List.length before + 1) (List.length after);
  Pass.register (make "v2");
  check_int "replace does not grow" (List.length after) (List.length (Pass.scheduler_names ()));
  let ctx = Pass.execute ~through:`Schedule ~algorithm:"tf" (device ()) (bv9 ()) in
  check_true "replacement ran" (List.assoc "label" ctx.Pass.Context.stats = Pass.Text "v2");
  check_true "valid schedule from custom scheduler"
    (Result.is_ok (Schedule.check (Pass.Context.schedule_exn ctx)))

let test_compile_run_is_thin_wrapper () =
  let d = device () in
  let circuit = bv9 () in
  let via_compile = Compile.run Compile.Uniform d circuit in
  let via_pass =
    Pass.Context.schedule_exn
      (Pass.execute ~through:`Schedule ~algorithm:"uniform" d circuit)
  in
  check_int "same depth" (Schedule.depth via_compile) (Schedule.depth via_pass);
  check_float "same success" (Schedule.evaluate via_compile).Schedule.log10_success
    (Schedule.evaluate via_pass).Schedule.log10_success

let suite =
  [
    Alcotest.test_case "execute through evaluate" `Quick test_execute_through_evaluate;
    Alcotest.test_case "execute through schedule" `Quick test_execute_through_schedule;
    Alcotest.test_case "matches direct scheduler" `Quick test_matches_direct_scheduler;
    Alcotest.test_case "alias resolves" `Quick test_alias_resolves_to_canonical_name;
    Alcotest.test_case "unknown algorithm" `Quick test_unknown_algorithm_rejected;
    Alcotest.test_case "instrumentation counts" `Quick test_instrumentation_counts;
    Alcotest.test_case "report is valid json" `Quick test_report_is_valid_json;
    Alcotest.test_case "stat lookup errors" `Quick test_stat_lookup_errors;
    Alcotest.test_case "register replaces in place" `Quick test_register_replaces_in_place;
    Alcotest.test_case "compile.run is a thin wrapper" `Quick test_compile_run_is_thin_wrapper;
  ]
