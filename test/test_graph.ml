open Helpers

let triangle () = Graph.of_edges 3 [ (0, 1); (1, 2); (0, 2) ]

let test_create_empty () =
  let g = Graph.create 4 in
  check_int "vertices" 4 (Graph.n_vertices g);
  check_int "edges" 0 (Graph.n_edges g);
  check_true "not connected" (not (Graph.is_connected g))

let test_add_edge () =
  let g = Graph.create 3 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 0;
  (* duplicate, reversed *)
  check_int "one edge" 1 (Graph.n_edges g);
  check_true "mem both ways" (Graph.mem_edge g 0 1 && Graph.mem_edge g 1 0);
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_edge: self-loop")
    (fun () -> Graph.add_edge g 1 1)

let test_remove_edge () =
  let g = triangle () in
  Graph.remove_edge g 0 1;
  check_int "edges after removal" 2 (Graph.n_edges g);
  check_true "edge gone" (not (Graph.mem_edge g 0 1));
  Graph.remove_edge g 0 1;
  check_int "idempotent" 2 (Graph.n_edges g)

let test_neighbors_degree () =
  let g = triangle () in
  Alcotest.(check (list int)) "neighbors sorted" [ 1; 2 ] (Graph.neighbors g 0);
  check_int "degree" 2 (Graph.degree g 0);
  check_int "max degree" 2 (Graph.max_degree g)

let test_edges_canonical () =
  let g = Graph.of_edges 4 [ (3, 1); (2, 0); (1, 0) ] in
  Alcotest.(check (list (pair int int)))
    "canonical sorted" [ (0, 1); (0, 2); (1, 3) ] (Graph.edges g)

let test_copy_isolated () =
  let g = triangle () in
  let h = Graph.copy g in
  Graph.remove_edge h 0 1;
  check_true "original untouched" (Graph.mem_edge g 0 1)

let test_subgraph () =
  let g = triangle () in
  let h = Graph.subgraph g [ 0; 1 ] in
  check_int "same vertex count" 3 (Graph.n_vertices h);
  check_int "only internal edge" 1 (Graph.n_edges h);
  check_true "kept edge" (Graph.mem_edge h 0 1)

let test_connected () =
  check_true "triangle connected" (Graph.is_connected (triangle ()));
  let g = Graph.of_edges 4 [ (0, 1); (2, 3) ] in
  check_true "two components" (not (Graph.is_connected g))

let test_complement_vertices () =
  let g = Graph.create 5 in
  Alcotest.(check (list int)) "complement" [ 0; 2; 4 ] (Graph.complement_vertices g [ 1; 3 ])

let test_out_of_range () =
  let g = Graph.create 2 in
  Alcotest.check_raises "bad vertex" (Invalid_argument "Graph: vertex 5 out of range [0,2)")
    (fun () -> ignore (Graph.neighbors g 5))

let test_components () =
  let g = Graph.of_edges 7 [ (0, 1); (1, 2); (4, 5) ] in
  Alcotest.(check (list (list int)))
    "components sorted by smallest vertex, isolated as singletons"
    [ [ 0; 1; 2 ]; [ 3 ]; [ 4; 5 ]; [ 6 ] ]
    (Graph.components g);
  let ids, k = Graph.component_ids g in
  check_int "four components" 4 k;
  Alcotest.(check (list int)) "ids follow component order" [ 0; 0; 0; 1; 2; 2; 3 ]
    (Array.to_list ids);
  Alcotest.(check (list (list int))) "empty graph has no components" []
    (Graph.components (Graph.create 0))

let test_biconnected_two_triangles () =
  (* two triangles sharing vertex 2: 2 is the articulation point and the
     edge set splits into the two triangle components *)
  let g = Graph.of_edges 5 [ (0, 1); (1, 2); (0, 2); (2, 3); (3, 4); (2, 4) ] in
  Alcotest.(check (list int)) "cut vertex" [ 2 ] (Graph.articulation_points g);
  let comps = List.sort compare (Graph.biconnected_components g) in
  Alcotest.(check (list (list (pair int int))))
    "two triangle components"
    [ [ (0, 1); (0, 2); (1, 2) ]; [ (2, 3); (2, 4); (3, 4) ] ]
    comps

let test_biconnected_bridges () =
  (* a path is all bridges: every edge is its own biconnected component and
     every internal vertex is an articulation point *)
  let g = Graph.of_edges 4 [ (0, 1); (1, 2); (2, 3) ] in
  Alcotest.(check (list int)) "internal vertices cut" [ 1; 2 ] (Graph.articulation_points g);
  Alcotest.(check (list (list (pair int int))))
    "each bridge alone"
    [ [ (0, 1) ]; [ (1, 2) ]; [ (2, 3) ] ]
    (List.sort compare (Graph.biconnected_components g))

let test_biconnected_cycle () =
  let g = Graph.of_edges 4 [ (0, 1); (1, 2); (2, 3); (0, 3) ] in
  Alcotest.(check (list int)) "cycle has no cut vertex" [] (Graph.articulation_points g);
  Alcotest.(check (list (list (pair int int))))
    "one component holding the whole cycle"
    [ [ (0, 1); (0, 3); (1, 2); (2, 3) ] ]
    (Graph.biconnected_components g)

let prop_components_partition =
  qcheck_case "components partition the vertices and never split an edge"
    QCheck.(pair (int_range 1 20) (list_of_size (Gen.int_range 0 40) (pair small_nat small_nat)))
    (fun (n, pairs) ->
      let g = Graph.create n in
      List.iter (fun (a, b) -> if a mod n <> b mod n then Graph.add_edge g (a mod n) (b mod n)) pairs;
      let comps = Graph.components g in
      let flattened = List.sort compare (List.concat comps) in
      let ids, _ = Graph.component_ids g in
      flattened = Graph.vertices g
      && List.for_all (fun (u, v) -> ids.(u) = ids.(v)) (Graph.edges g))

let prop_biconnected_covers_edges =
  qcheck_case "biconnected components partition the edges"
    QCheck.(pair (int_range 1 15) (list_of_size (Gen.int_range 0 30) (pair small_nat small_nat)))
    (fun (n, pairs) ->
      let g = Graph.create n in
      List.iter (fun (a, b) -> if a mod n <> b mod n then Graph.add_edge g (a mod n) (b mod n)) pairs;
      let all = List.sort compare (List.concat (Graph.biconnected_components g)) in
      all = Graph.edges g)

let prop_handshake =
  qcheck_case "sum of degrees = 2m"
    QCheck.(pair (int_range 2 20) (list_of_size (Gen.int_range 0 60) (pair small_nat small_nat)))
    (fun (n, pairs) ->
      let g = Graph.create n in
      List.iter (fun (a, b) -> if a mod n <> b mod n then Graph.add_edge g (a mod n) (b mod n)) pairs;
      let degree_sum = List.fold_left (fun acc v -> acc + Graph.degree g v) 0 (Graph.vertices g) in
      degree_sum = 2 * Graph.n_edges g)

let prop_edges_match_mem =
  qcheck_case "edges list matches mem_edge"
    QCheck.(pair (int_range 2 15) (list_of_size (Gen.int_range 0 40) (pair small_nat small_nat)))
    (fun (n, pairs) ->
      let g = Graph.create n in
      List.iter (fun (a, b) -> if a mod n <> b mod n then Graph.add_edge g (a mod n) (b mod n)) pairs;
      List.for_all (fun (u, v) -> Graph.mem_edge g u v) (Graph.edges g)
      && List.length (Graph.edges g) = Graph.n_edges g)

let suite =
  [
    Alcotest.test_case "create empty" `Quick test_create_empty;
    Alcotest.test_case "add edge" `Quick test_add_edge;
    Alcotest.test_case "remove edge" `Quick test_remove_edge;
    Alcotest.test_case "neighbors/degree" `Quick test_neighbors_degree;
    Alcotest.test_case "edges canonical" `Quick test_edges_canonical;
    Alcotest.test_case "copy isolated" `Quick test_copy_isolated;
    Alcotest.test_case "subgraph" `Quick test_subgraph;
    Alcotest.test_case "connectivity" `Quick test_connected;
    Alcotest.test_case "complement vertices" `Quick test_complement_vertices;
    Alcotest.test_case "out of range" `Quick test_out_of_range;
    Alcotest.test_case "components" `Quick test_components;
    Alcotest.test_case "biconnected: shared vertex" `Quick test_biconnected_two_triangles;
    Alcotest.test_case "biconnected: bridges" `Quick test_biconnected_bridges;
    Alcotest.test_case "biconnected: cycle" `Quick test_biconnected_cycle;
    prop_components_partition;
    prop_biconnected_covers_edges;
    prop_handshake;
    prop_edges_match_mem;
  ]
