(* Shared assertion helpers for the test suites. *)

let check_float ?(eps = 1e-9) name expected actual =
  Alcotest.check (Alcotest.float eps) name expected actual

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let check_true name actual = check_bool name true actual

(* Re-exports of the library's own equivalence tooling (kept under the old
   helper names so the suites read naturally). *)
let equal_up_to_phase ?tol a b = Unitary.equal_up_to_phase ?tol a b

let circuit_unitary = Unitary.of_circuit

(* Substring search, shared by every suite that greps captured output. *)
let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  scan 0

(* Seeded Erdos-Renyi graph, shared by the graph/coloring suites. *)
let random_graph seed n p =
  let rng = Rng.create seed in
  let g = Graph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Rng.float rng < p then Graph.add_edge g u v
    done
  done;
  g

(* Two gate lists on the same register implement the same operator up to
   global phase — the contract of every decomposition identity. *)
let check_gates_equivalent ?(n = 2) name original replacement =
  let c_orig = Circuit.of_gates n original in
  let c_new = Circuit.of_gates n replacement in
  check_true name (equal_up_to_phase (circuit_unitary c_new) (circuit_unitary c_orig))

let check_circuits_equivalent name expected actual =
  check_true name (equal_up_to_phase (circuit_unitary actual) (circuit_unitary expected))

let qcheck_case ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* In-house engine: package a Proptest property as an Alcotest case.  On a
   counterexample the raised message carries the shrunk value, the seed and
   the FASTSC_PROPTEST_SEED replay line. *)
let prop_case ?count ?seed name arb prop =
  Alcotest.test_case name `Quick (fun () ->
      Proptest.check ?seed (Proptest.test ~name ?count arb prop))
