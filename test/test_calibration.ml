open Helpers
open Fastsc_device
open Fastsc_core

let calibration ?(seed = 2020) ?(n = 3) () =
  Calibration.generate (Device.create ~seed (Topology.grid n n))

let test_shape () =
  let cal = calibration () in
  check_int "per-qubit entries" 9 (Array.length cal.Calibration.qubits);
  check_int "per-coupling entries" 12 (List.length cal.Calibration.pairs);
  check_true "mesh needs several colors" (cal.Calibration.n_colors >= 4)

let test_check_passes () =
  match Calibration.check (calibration ()) with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_idle_at_low_sensitivity () =
  let cal = calibration () in
  (* parking sits at the common-window floor, toward (not at) each qubit's
     lower sweet spot; sensitivity must stay below the slope's peak *)
  Array.iter
    (fun qc ->
      let tr = Device.transmon cal.Calibration.device qc.Calibration.qubit in
      let peak = ref 0.0 in
      for k = 1 to 49 do
        peak :=
          Float.max !peak
            (Fastsc_physics.Transmon.flux_sensitivity tr ~flux:(0.01 *. float_of_int k))
      done;
      check_true "idle sensitivity below the slope peak"
        (qc.Calibration.idle_sensitivity < 0.95 *. !peak);
      (* and the parking flux is on the lower half of the tuning branch *)
      check_true "parked toward the low sweet spot" (qc.Calibration.idle_flux > 0.3))
    cal.Calibration.qubits

let test_cz_resonance_condition () =
  let cal = calibration () in
  List.iter
    (fun pc ->
      let _, b = pc.Calibration.pair in
      let alpha =
        Fastsc_physics.Transmon.anharmonicity (Device.transmon cal.Calibration.device b)
      in
      let first, second = pc.Calibration.cz_freqs in
      check_float ~eps:1e-9 "omega_a = omega_b + alpha_b" (second +. alpha) first)
    cal.Calibration.pairs

let test_gate_times_ordered () =
  let cal = calibration () in
  List.iter
    (fun pc ->
      check_true "sqrt-iswap fastest"
        (pc.Calibration.sqrt_iswap_time < pc.Calibration.iswap_time
        && pc.Calibration.iswap_time < pc.Calibration.cz_time))
    cal.Calibration.pairs

let test_check_detects_tampering () =
  let cal = calibration () in
  let tampered =
    {
      cal with
      Calibration.qubits =
        Array.map
          (fun qc -> { qc with Calibration.idle_flux = qc.Calibration.idle_flux +. 0.05 })
          cal.Calibration.qubits;
    }
  in
  check_true "flux tampering detected" (Result.is_error (Calibration.check tampered))

let test_json_and_pp () =
  let cal = calibration ~n:2 () in
  let text = Export.to_string (Calibration.to_json cal) in
  check_true "json nonempty" (String.length text > 100);
  check_true "pp renders" (String.length (Format.asprintf "%a" Calibration.pp cal) > 100)

let prop_all_seeds_check =
  qcheck_case ~count:20 "calibration checks on random devices" QCheck.(int_range 1 1000)
    (fun seed ->
      Result.is_ok (Calibration.check (calibration ~seed ())))

let test_coherence_backed_evaluation () =
  let cal = calibration () in
  (* flux-noise dephasing only ever shortens T2, never lengthens it, and
     leaves T1 alone *)
  Array.iter
    (fun qc ->
      let t1, t2 = Calibration.coherence cal qc.Calibration.qubit in
      check_float "t1 untouched" qc.Calibration.t1 t1;
      check_true "t2 shortened" (t2 <= qc.Calibration.t2 && t2 > 0.0))
    cal.Calibration.qubits;
  check_true "out of range rejected"
    (try
       ignore (Calibration.coherence cal 99);
       false
     with Invalid_argument _ -> true);
  (* threading it through evaluate can only lower the success estimate *)
  let d = cal.Calibration.device in
  let s = Compile.run Compile.Color_dynamic d (Fastsc_benchmarks.Bv.circuit ~n:9 ()) in
  let bare = Schedule.evaluate s in
  let backed = Schedule.evaluate ~coherence:(Calibration.coherence cal) s in
  check_true "calibration noise costs success"
    (backed.Schedule.success <= bare.Schedule.success && backed.Schedule.success > 0.0)

let suite =
  [
    Alcotest.test_case "shape" `Quick test_shape;
    Alcotest.test_case "coherence-backed evaluation" `Quick test_coherence_backed_evaluation;
    Alcotest.test_case "check passes" `Quick test_check_passes;
    Alcotest.test_case "idle sensitivity" `Quick test_idle_at_low_sensitivity;
    Alcotest.test_case "cz resonance" `Quick test_cz_resonance_condition;
    Alcotest.test_case "gate times ordered" `Quick test_gate_times_ordered;
    Alcotest.test_case "tampering detected" `Quick test_check_detects_tampering;
    Alcotest.test_case "json and pp" `Quick test_json_and_pp;
    prop_all_seeds_check;
  ]
