(* Self-tests of the property-based testing engine: shrinking reaches minimal
   counterexamples, failures carry a seed, and replaying that seed reproduces
   the exact same failure (the contract printed in every report). *)
open Helpers

(* A deliberately broken invariant over ints: "everything is below 10".
   The greedy shrinker must walk any failing case down to exactly 10, the
   smallest value that still refutes the property. *)
let broken_int_test ?count () =
  Proptest.test ~name:"ints stay below 10" ?count (Proptest.int_range 0 1000) (fun x -> x < 10)

let test_shrinks_to_minimum () =
  match Proptest.run (broken_int_test ()) with
  | Proptest.Pass _ -> Alcotest.fail "property over 0..1000 should have failed"
  | Proptest.Fail f ->
    check_true "shrunk to the minimal counterexample" (f.Proptest.shrunk = "10");
    check_true "shrinking did some work" (f.Proptest.shrink_steps > 0);
    check_true "report prints the replay line"
      (contains f.Proptest.message "FASTSC_PROPTEST_SEED=");
    check_true "report prints the seed"
      (contains f.Proptest.message (string_of_int f.Proptest.seed));
    (* shrink ergonomics: the replay line quantifies the shrink so a reader
       can tell a hard-won minimal case from a lucky first draw *)
    check_int "final generator size recorded" 10 f.Proptest.shrunk_size;
    check_true "replay line shows steps and size"
      (contains f.Proptest.message
         (Printf.sprintf "(%d shrink steps, final size %d)" f.Proptest.shrink_steps
            f.Proptest.shrunk_size))

let test_seed_replays_exact_failure () =
  match Proptest.run (broken_int_test ()) with
  | Proptest.Pass _ -> Alcotest.fail "expected a failure to replay"
  | Proptest.Fail f -> (
    (* replaying with the failing seed as base makes it case 1 of the rerun *)
    match Proptest.run ~seed:f.Proptest.seed (broken_int_test ~count:1 ()) with
    | Proptest.Pass _ -> Alcotest.fail "replay seed did not reproduce the failure"
    | Proptest.Fail replay ->
      check_int "replayed as the first case" 1 replay.Proptest.case;
      check_true "identical generated counterexample"
        (replay.Proptest.original = f.Proptest.original);
      check_true "identical shrunk counterexample" (replay.Proptest.shrunk = f.Proptest.shrunk))

(* A deliberately broken invariant over a real compiler structure: claim that
   Welsh-Powell never needs a fourth color.  K4 refutes it, and edge/vertex
   shrinking must strip any failing graph down to the 6 edges of a K4. *)
let broken_coloring_test =
  Proptest.test ~name:"welsh-powell uses at most 3 colors" ~count:200
    (Proptest.graph ~max_vertices:8 ~edge_prob:0.5 ())
    (fun g -> Coloring.n_colors (Coloring.welsh_powell g) <= 3)

let test_structural_shrinking () =
  match Proptest.run broken_coloring_test with
  | Proptest.Pass _ -> Alcotest.fail "4-chromatic graphs exist at 8 vertices, p=0.5"
  | Proptest.Fail f ->
    (* the minimal witness needing 4 colors is K4: exactly 6 edges survive *)
    check_true "shrunk to a K4 witness" (contains f.Proptest.shrunk "m=6");
    check_true "seed printed" (f.Proptest.seed <> 0)

let test_passing_property_passes () =
  let t =
    Proptest.test ~name:"reverse is involutive" ~count:50
      (Proptest.list ~max_len:20 (Proptest.int_range (-100) 100))
      (fun xs -> List.rev (List.rev xs) = xs)
  in
  match Proptest.run t with
  | Proptest.Pass n -> check_int "all cases ran" 50 n
  | Proptest.Fail f -> Alcotest.fail f.Proptest.message

let test_raising_property_is_a_failure () =
  let t =
    Proptest.test ~name:"raises past 9" ~count:100 (Proptest.int_range 0 50)
      (fun x -> if x >= 10 then failwith "boom" else true)
  in
  match Proptest.run t with
  | Proptest.Pass _ -> Alcotest.fail "the raise should have surfaced as a failure"
  | Proptest.Fail f ->
    check_true "exception recorded of the shrunk case" (f.Proptest.exn <> None);
    check_true "shrunk to the raise threshold" (f.Proptest.shrunk = "10")

let test_generation_is_deterministic () =
  let arb = Proptest.graph ~max_vertices:10 ~edge_prob:0.4 () in
  let once () = arb.Proptest.print (arb.Proptest.gen (Rng.create 12345)) in
  check_true "same seed, same graph" (once () = once ());
  let carb = Proptest.circuit ~max_qubits:4 ~max_gates:10 () in
  let conce () = carb.Proptest.print (carb.Proptest.gen (Rng.create 999)) in
  check_true "same seed, same circuit" (conce () = conce ())

let test_count_env_override () =
  let t = Proptest.test ~name:"trivial" (Proptest.int_range 0 5) (fun _ -> true) in
  Unix.putenv "FASTSC_PROPTEST_COUNT" "7";
  let seven = Proptest.run t in
  Unix.putenv "FASTSC_PROPTEST_COUNT" "";
  (match seven with
  | Proptest.Pass n -> check_int "FASTSC_PROPTEST_COUNT respected" 7 n
  | Proptest.Fail f -> Alcotest.fail f.Proptest.message);
  check_int "default count without the variable" 100 (Proptest.default_count ())

let test_list_shrinking_drops_elements () =
  let t =
    Proptest.test ~name:"lists stay short" ~count:100
      (Proptest.list ~max_len:30 (Proptest.int_range 0 9))
      (fun xs -> List.length xs <= 4)
  in
  match Proptest.run t with
  | Proptest.Pass _ -> Alcotest.fail "length-30 lists exist"
  | Proptest.Fail f ->
    (* minimal refutation is 5 elements, each shrunk to the range floor *)
    check_true "shrunk to five zeros" (f.Proptest.shrunk = "[0; 0; 0; 0; 0]")

let suite =
  [
    Alcotest.test_case "shrinks to minimum" `Quick test_shrinks_to_minimum;
    Alcotest.test_case "seed replays exact failure" `Quick test_seed_replays_exact_failure;
    Alcotest.test_case "structural graph shrinking" `Quick test_structural_shrinking;
    Alcotest.test_case "passing property" `Quick test_passing_property_passes;
    Alcotest.test_case "raising property" `Quick test_raising_property_is_a_failure;
    Alcotest.test_case "deterministic generation" `Quick test_generation_is_deterministic;
    Alcotest.test_case "count env override" `Quick test_count_env_override;
    Alcotest.test_case "list shrinking" `Quick test_list_shrinking_drops_elements;
  ]
