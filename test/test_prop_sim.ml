(* Differential properties for the flat-float simulation kernels: the
   unboxed Statevector must agree with the boxed Statevector_ref oracle on
   random full-gate-set circuits, the density-matrix evolution must agree
   with a noise-free trajectory, and the parallel Monte-Carlo mean must be
   bit-identical at any job count. *)
open Helpers

let circuits = Proptest.circuit ~max_qubits:5 ~max_gates:25 ()

let prop_flat_matches_boxed =
  prop_case "flat kernels match boxed reference on random circuits" circuits (fun c ->
      let flat = Statevector.amplitudes (Statevector.of_circuit c) in
      let boxed = Statevector_ref.amplitudes (Statevector_ref.of_circuit c) in
      let worst = ref 0.0 in
      Array.iteri
        (fun k a -> worst := Float.max !worst (Complex.norm (Complex.sub a boxed.(k))))
        flat;
      !worst <= 1e-9)

let prop_fused_matches_unfused =
  prop_case "fused plan is unitary-equivalent to the source circuit" circuits (fun c ->
      Fusion.verify ~tol:1e-9 c (Fusion.plan c))

(* Bitwise plane comparison: sharded execution must be indistinguishable
   from serial down to the last ulp, whatever the shard count. *)
let planes_bit_identical a b =
  let are, aim = Statevector.buffers a and bre, bim = Statevector.buffers b in
  let ok = ref true in
  for k = 0 to Bigarray.Array1.dim are - 1 do
    if
      Int64.bits_of_float are.{k} <> Int64.bits_of_float bre.{k}
      || Int64.bits_of_float aim.{k} <> Int64.bits_of_float bim.{k}
    then ok := false
  done;
  !ok

let prop_sharded_bit_identical =
  prop_case "sharded gate application bit-identical to serial at any job count" circuits
    (fun c ->
      let n = Circuit.n_qubits c in
      let run jobs =
        let sv = Statevector.create n in
        Statevector.run ~jobs sv c;
        sv
      in
      let serial = run 1 in
      (* Non-power-of-two widths included: shard boundaries must partition
         the index space exactly whatever the split. *)
      List.for_all (fun jobs -> planes_bit_identical serial (run jobs)) [ 2; 3; 4; 5 ])

(* Lower a circuit to unitary-only noisy steps (one event per step). *)
let steps_of_circuit c =
  Array.to_list
    (Array.map
       (fun app -> [ Noisy_sim.Unitary (app.Gate.gate, Array.to_list app.Gate.qubits) ])
       (Circuit.instructions c))

let prop_density_matches_trajectory =
  prop_case ~count:60 "density evolution matches statevector on unitary-only steps" circuits
    (fun c ->
      let n_qubits = Circuit.n_qubits c in
      let steps = steps_of_circuit c in
      let rho = Density.run_steps ~n_qubits steps in
      (* No noise events: one trajectory is exact and rng-independent. *)
      let psi = Noisy_sim.run_trajectory (Rng.create 0) ~n_qubits steps in
      Float.abs (Density.purity rho -. 1.0) <= 1e-9
      && Float.abs (Density.fidelity_pure rho psi -. 1.0) <= 1e-9)

let noisy_steps =
  [
    [ Noisy_sim.Unitary (Gate.H, [ 0 ]); Noisy_sim.Unitary (Gate.Cz, [ 0; 1 ]) ];
    [
      Noisy_sim.Partial_exchange { a = 1; b = 2; theta = 0.2 };
      Noisy_sim.Pauli_noise { q = 0; p_x = 0.05; p_y = 0.03; p_z = 0.02 };
    ];
    [
      Noisy_sim.Unitary (Gate.Sx, [ 2 ]);
      Noisy_sim.Pauli_noise { q = 1; p_x = 0.02; p_y = 0.02; p_z = 0.08 };
      Noisy_sim.Pauli_noise { q = 2; p_x = 0.04; p_y = 0.01; p_z = 0.03 };
    ];
  ]

let test_average_fidelity_jobs_invariant () =
  let ideal = Noisy_sim.ideal_of_steps ~n_qubits:3 noisy_steps in
  let mean_at jobs =
    Pool.set_default_jobs jobs;
    let rng = Rng.create 42 in
    let mean = Noisy_sim.average_fidelity rng ~n_qubits:3 ~ideal ~steps:noisy_steps ~trials:40 in
    (* The caller's generator must also end in the same state. *)
    (mean, Rng.int64 rng)
  in
  let before = Pool.default_jobs () in
  Fun.protect
    ~finally:(fun () -> Pool.set_default_jobs before)
    (fun () ->
      let serial, state1 = mean_at 1 in
      let parallel, state4 = mean_at 4 in
      check_true "mean bit-identical at jobs=1 and jobs=4"
        (Int64.bits_of_float serial = Int64.bits_of_float parallel);
      check_true "caller rng advanced identically" (Int64.equal state1 state4);
      check_true "mean is a fidelity" (serial >= 0.0 && serial <= 1.0 +. 1e-9))

let test_average_fidelity_rejects_zero_trials () =
  let ideal = Noisy_sim.ideal_of_steps ~n_qubits:3 noisy_steps in
  Alcotest.check_raises "trials must be positive"
    (Invalid_argument "Noisy_sim.average_fidelity: trials must be positive") (fun () ->
      ignore
        (Noisy_sim.average_fidelity (Rng.create 1) ~n_qubits:3 ~ideal ~steps:noisy_steps ~trials:0))

let suite =
  [
    prop_flat_matches_boxed;
    prop_fused_matches_unfused;
    prop_sharded_bit_identical;
    prop_density_matches_trajectory;
    Alcotest.test_case "average_fidelity jobs invariance" `Quick
      test_average_fidelity_jobs_invariant;
    Alcotest.test_case "average_fidelity zero trials" `Quick
      test_average_fidelity_rejects_zero_trials;
  ]
