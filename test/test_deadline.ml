open Helpers
open Fastsc_util

(* Monotonic deadlines: the budget machinery the serve layer threads through
   Pass and Smt.  The last test is the sentinel for the seeded
   smt-deadline-skip fault: with the cooperative polls disabled, an expired
   budget no longer aborts the solve. *)

let test_clock_monotonic () =
  let a = Deadline.now_ns () in
  let b = Deadline.now_ns () in
  check_true "now_ns never goes backwards" (Int64.compare b a >= 0);
  let s0 = Deadline.now_s () in
  let s1 = Deadline.now_s () in
  check_true "now_s never goes backwards" (s1 >= s0)

let test_after_ms_validation () =
  let rejects budget =
    match Deadline.after_ms budget with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  check_true "negative budget rejected" (rejects (-1.0));
  check_true "nan budget rejected" (rejects Float.nan);
  check_true "infinite budget rejected" (rejects Float.infinity);
  check_true "zero budget accepted" (not (rejects 0.0))

let test_remaining_and_expired () =
  let d = Deadline.after_ms ~label:"long" 60_000.0 in
  check_true "fresh deadline not expired" (not (Deadline.expired d));
  let r = Deadline.remaining_ms d in
  check_true "remaining within budget" (r > 0.0 && r <= 60_000.0);
  check_true "label kept" (Deadline.label d = "long");
  let z = Deadline.after_ms 0.0 in
  check_true "zero budget is expired" (Deadline.expired z);
  check_true "remaining goes negative" (Deadline.remaining_ms z <= 0.0)

let test_check_raises_when_expired () =
  (* no ambient deadline: check is a no-op *)
  Deadline.check ~site:"unit" ();
  let z = Deadline.after_ms ~label:"unit" 0.0 in
  let raised =
    Deadline.with_deadline z (fun () ->
        match Deadline.check ~site:"unit" () with
        | () -> false
        | exception Deadline.Expired msg ->
          check_true "payload names the label" (contains msg "unit");
          true)
  in
  check_true "check raises on expired ambient deadline" raised;
  (* the ambient state must be restored on the way out *)
  Deadline.check ();
  check_true "ambient cleared after with_deadline" (Deadline.current () = None)

let test_nesting_tightens () =
  (* an inner, looser deadline must not loosen the outer one *)
  let tight = Deadline.after_ms ~label:"tight" 0.0 in
  let raised =
    Deadline.with_deadline tight (fun () ->
        let loose = Deadline.after_ms ~label:"loose" 60_000.0 in
        Deadline.with_deadline loose (fun () ->
            match Deadline.check () with
            | () -> false
            | exception Deadline.Expired msg ->
              check_true "the tight deadline stayed in force" (contains msg "tight");
              true))
  in
  check_true "nesting keeps the sooner deadline" raised

let test_inherit_ambient_crosses_domains () =
  let z = Deadline.after_ms ~label:"cross" 0.0 in
  let saw_deadline =
    Deadline.with_deadline z (fun () ->
        Deadline.inherit_ambient (fun () ->
            match Deadline.check () with
            | () -> false
            | exception Deadline.Expired _ -> true))
  in
  (* fresh domains have no ambient state of their own; the wrapper must
     carry the caller's in *)
  check_true "worker domain sees the caller's deadline"
    (Domain.join (Domain.spawn (fun () -> saw_deadline ())))

(* Sentinel for FASTSC_FAULT=smt-deadline-skip: with the polls disabled, an
   already-expired budget no longer aborts find_max_delta and the solve runs
   to completion instead of raising. *)
let test_smt_aborts_on_expired_budget () =
  let t = Fastsc_smt.Smt.create ~lo:5.0 ~hi:7.0 8 in
  for i = 0 to 6 do
    Fastsc_smt.Smt.add_separation t i (i + 1)
  done;
  let z = Deadline.after_ms ~label:"smt budget" 0.0 in
  let aborted =
    Deadline.with_deadline z (fun () ->
        match Fastsc_smt.Smt.find_max_delta ~tolerance:1e-9 t with
        | _ -> false
        | exception Deadline.Expired _ -> true)
  in
  check_true "expired budget aborts the solve via Expired" aborted

let test_smt_portfolio_aborts_on_expired_budget () =
  let t = Fastsc_smt.Smt.create ~lo:5.0 ~hi:7.0 8 in
  for i = 0 to 6 do
    Fastsc_smt.Smt.add_separation t i (i + 1)
  done;
  let forward = List.init 8 Fun.id in
  let z = Deadline.after_ms ~label:"portfolio budget" 0.0 in
  let aborted =
    Deadline.with_deadline z (fun () ->
        match
          Fastsc_smt.Smt.find_max_delta_portfolio ~jobs:2 ~tolerance:1e-9
            ~orders:[ forward; List.rev forward ] t
        with
        | _ -> false
        | exception Deadline.Expired _ -> true)
  in
  check_true "expired budget aborts the portfolio solve" aborted

let suite =
  [
    Alcotest.test_case "clock is monotonic" `Quick test_clock_monotonic;
    Alcotest.test_case "after_ms validates budgets" `Quick test_after_ms_validation;
    Alcotest.test_case "remaining and expired" `Quick test_remaining_and_expired;
    Alcotest.test_case "check raises when expired" `Quick test_check_raises_when_expired;
    Alcotest.test_case "nesting tightens" `Quick test_nesting_tightens;
    Alcotest.test_case "inherit_ambient crosses domains" `Quick
      test_inherit_ambient_crosses_domains;
    Alcotest.test_case "smt aborts on expired budget" `Quick
      test_smt_aborts_on_expired_budget;
    Alcotest.test_case "smt portfolio aborts on expired budget" `Quick
      test_smt_portfolio_aborts_on_expired_budget;
  ]
