open Helpers
open Fastsc_device
open Fastsc_core
open Fastsc_benchmarks

let device ?(seed = 21) ?(n = 3) () = Device.create ~seed (Topology.grid n n)

let bv9 () = Bv.circuit ~n:9 ()

let parallel_heavy () =
  (* XEB-like: dense simultaneous two-qubit gates on the 3x3 grid *)
  let rng = Rng.create 42 in
  let topo = Topology.grid 3 3 in
  let classes = Topology.grid_edge_classes 3 3 in
  let classes =
    List.map
      (fun (e, c) ->
        (e, match c with Topology.A -> 0 | Topology.B -> 1 | Topology.C -> 2 | Topology.D -> 3))
      classes
  in
  Xeb.circuit rng ~graph:topo.Topology.graph ~classes ~cycles:4 ()

let all_run_and_check name circuit =
  let d = device () in
  List.iter
    (fun algorithm ->
      let s = Compile.run algorithm d circuit in
      (match Schedule.check s with
      | Ok () -> ()
      | Error msg ->
        Alcotest.failf "%s/%s: %s" name (Compile.algorithm_to_string algorithm) msg);
      let m = Schedule.evaluate s in
      if not (m.Schedule.success >= 0.0 && m.Schedule.success <= 1.0) then
        Alcotest.failf "%s/%s: bad success %f" name
          (Compile.algorithm_to_string algorithm)
          m.Schedule.success)
    Compile.all_algorithms

let test_all_algorithms_valid_bv () = all_run_and_check "bv" (bv9 ())

let test_all_algorithms_valid_xeb () = all_run_and_check "xeb" (parallel_heavy ())

let test_gate_counts_preserved () =
  let d = device () in
  let circuit = bv9 () in
  let native = Compile.prepare Compile.default_options d circuit in
  List.iter
    (fun algorithm ->
      let s = Compile.schedule_native Compile.default_options algorithm d native in
      check_int
        (Compile.algorithm_to_string algorithm ^ " keeps every gate")
        (Circuit.length native) (Schedule.n_gates s))
    Compile.all_algorithms

let test_uniform_serializes_conflicts () =
  let d = device () in
  let s = Compile.run Compile.Uniform d (parallel_heavy ()) in
  (* single interaction frequency: no two crosstalk-adjacent two-qubit gates
     may share a step *)
  let xg = Crosstalk_graph.build (Device.graph d) in
  List.iter
    (fun step ->
      let vertices =
        List.filter_map
          (fun app ->
            match app.Gate.qubits with
            | [| a; b |] -> Some (Crosstalk_graph.vertex_of_pair xg (a, b))
            | _ -> None)
          step.Schedule.gates
      in
      List.iter
        (fun v -> check_int "no conflicts" 0 (Crosstalk_graph.conflict_count xg v vertices))
        vertices)
    s.Schedule.steps

let test_colordynamic_beats_naive_on_crosstalk () =
  let d = device () in
  let circuit = parallel_heavy () in
  let naive = Schedule.evaluate (Compile.run Compile.Naive d circuit) in
  let cd = Schedule.evaluate (Compile.run Compile.Color_dynamic d circuit) in
  check_true "less crosstalk error"
    (cd.Schedule.crosstalk_error < naive.Schedule.crosstalk_error);
  check_true "better success" (cd.Schedule.success > naive.Schedule.success)

let test_colordynamic_shallower_than_uniform () =
  let d = device () in
  let circuit = parallel_heavy () in
  let u = Compile.run Compile.Uniform d circuit in
  let cd = Compile.run Compile.Color_dynamic d circuit in
  check_true "less serialization" (Schedule.depth cd <= Schedule.depth u)

let test_gmon_perfect_couplers_no_crosstalk () =
  let d = device () in
  let s = Compile.run Compile.Gmon d (parallel_heavy ()) in
  let m = Schedule.evaluate s in
  (* distance-1 crosstalk is zero with eta = 0 (only parasitic distance-2
     remains, excluded at the default distance 1) *)
  check_float ~eps:1e-12 "no crosstalk" 0.0 m.Schedule.crosstalk_error

let test_gmon_residual_degrades () =
  let d = device () in
  let circuit = parallel_heavy () in
  let success eta =
    let options = { Compile.default_options with Compile.residual_coupling = eta } in
    (Schedule.evaluate (Compile.run ~options Compile.Gmon d circuit)).Schedule.success
  in
  let s0 = success 0.0 and s1 = success 0.05 and s2 = success 0.2 in
  check_true "monotone decay" (s0 > s1 && s1 > s2)

let test_gmon_steps_single_class () =
  let d = device () in
  let s = Compile.run Compile.Gmon d (parallel_heavy ()) in
  let classes = Baseline_gmon.edge_classes d in
  List.iter
    (fun step ->
      let step_classes =
        List.filter_map
          (fun app ->
            match app.Gate.qubits with
            | [| a; b |] -> List.assoc_opt (min a b, max a b) classes
            | _ -> None)
          step.Schedule.gates
      in
      check_true "at most one coupler class per step"
        (List.length (List.sort_uniq compare step_classes) <= 1))
    s.Schedule.steps

let test_color_cap_respected () =
  let d = device () in
  let circuit = parallel_heavy () in
  let options = { Compile.default_options with Compile.max_colors = Some 1 } in
  let native = Compile.prepare options d circuit in
  let _, stats =
    Color_dynamic.run ~max_colors:(Some 1) d native
  in
  check_true "cap respected" (stats.Color_dynamic.max_colors_used <= 1)

let test_color_cap_increases_depth () =
  let d = device () in
  let circuit = parallel_heavy () in
  let run cap =
    let options = { Compile.default_options with Compile.max_colors = cap } in
    Schedule.depth (Compile.run ~options Compile.Color_dynamic d circuit)
  in
  check_true "capping serializes" (run (Some 1) >= run None)

let test_colordynamic_stats () =
  let d = device () in
  let native = Compile.prepare Compile.default_options d (parallel_heavy ()) in
  let s, stats = Color_dynamic.run d native in
  check_int "cycles = depth" (Schedule.depth s) stats.Color_dynamic.cycles;
  check_true "colors used" (stats.Color_dynamic.max_colors_used >= 1);
  check_true "delta recorded" (stats.Color_dynamic.min_delta > 0.0)

let test_static_uses_fixed_table () =
  let d = device () in
  let freq_of_pair, n_colors = Baseline_static.static_assignment d in
  check_true "mesh needs several colors" (n_colors >= 4);
  (* the same pair always maps to the same frequency *)
  let f1 = freq_of_pair (0, 1) and f2 = freq_of_pair (0, 1) in
  check_float "deterministic" f1 f2

let test_algorithm_string_roundtrip () =
  (* every registered algorithm, not just the Table I five *)
  List.iter
    (fun a ->
      match Compile.algorithm_of_string (Compile.algorithm_to_string a) with
      | Some a' -> check_true "roundtrip" (a = a')
      | None -> Alcotest.fail "parse failed")
    Compile.extended_algorithms;
  check_true "extended covers all" (List.length Compile.extended_algorithms = 9);
  check_true "unknown rejected" (Compile.algorithm_of_string "nonsense" = None)

let test_registry_names_and_aliases () =
  (* the registry agrees with the Compile wrapper: each canonical name
     resolves, and every alias resolves to the same scheduler *)
  List.iter
    (fun a ->
      let name = Compile.algorithm_to_string a in
      match Pass.find_scheduler name with
      | None -> Alcotest.failf "%s not in registry" name
      | Some (module S : Pass.SCHEDULER) ->
        check_true "canonical name matches" (String.equal S.name name);
        List.iter
          (fun alias ->
            match Pass.find_scheduler alias with
            | Some (module A : Pass.SCHEDULER) ->
              check_true (alias ^ " resolves to " ^ name) (String.equal A.name name)
            | None -> Alcotest.failf "alias %s of %s does not resolve" alias name)
          S.aliases)
    Compile.extended_algorithms;
  (* nine Compile-variant algorithms plus greedy-spread, which is
     registry-only (the serve ladder's deadline-free floor, reached by name) *)
  check_int "registry holds the ten built-ins" 10
    (List.length (Pass.scheduler_names ()));
  (match Pass.find_scheduler "greedy-spread" with
  | Some (module S : Pass.SCHEDULER) ->
    check_true "greedy resolves" (Pass.find_scheduler "greedy" <> None);
    check_true "greedy-spread has no Compile variant"
      (Compile.algorithm_of_string S.name = None)
  | None -> Alcotest.fail "greedy-spread not in registry")

let test_decomposition_strategies_compile () =
  let d = device () in
  let circuit = bv9 () in
  List.iter
    (fun decomposition ->
      let options = { Compile.default_options with Compile.decomposition } in
      let s = Compile.run ~options Compile.Color_dynamic d circuit in
      match Schedule.check s with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s: %s" (Decompose.strategy_to_string decomposition) msg)
    [ Decompose.All_cz; Decompose.All_iswap; Decompose.Hybrid ]

let test_identity_placement_option () =
  let d = device () in
  let options = { Compile.default_options with Compile.placement = `Identity } in
  let s = Compile.run ~options Compile.Color_dynamic d (bv9 ()) in
  check_true "valid" (Result.is_ok (Schedule.check s))

let prop_all_algorithms_all_seeds =
  qcheck_case ~count:15 "every algorithm validates on random devices" QCheck.(int_range 1 1000)
    (fun seed ->
      let d = Device.create ~seed (Topology.grid 3 3) in
      let circuit = Bv.circuit ~n:6 () in
      List.for_all
        (fun algorithm -> Result.is_ok (Schedule.check (Compile.run algorithm d circuit)))
        Compile.all_algorithms)

let test_warm_decomposed_schedules_valid () =
  (* the opt-in warm-start / per-component allocation paths must still emit
     valid schedules, and their stats must account for every moment *)
  let d = device () in
  let circuit = parallel_heavy () in
  List.iter
    (fun (warm_start, decompose) ->
      let s, stats = Color_dynamic.run ~warm_start ~decompose d circuit in
      (match Schedule.check s with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "warm=%b decompose=%b: %s" warm_start decompose msg);
      check_true "components tracked" (stats.Color_dynamic.components > 0);
      check_true "solves paid" (stats.Color_dynamic.component_solves > 0);
      check_true "histogram rendered" (stats.Color_dynamic.component_sizes <> "");
      if warm_start && not decompose then
        check_true "warm attempts counted"
          (stats.Color_dynamic.warm_hits + stats.Color_dynamic.warm_misses > 0))
    [ (true, false); (false, true); (true, true) ];
  (* the defaults leave the paper-mode schedule bit-identical *)
  let reference, _ = Color_dynamic.run d circuit in
  let explicit, _ = Color_dynamic.run ~warm_start:false ~decompose:false d circuit in
  check_true "defaults unchanged" (reference = explicit)

let suite =
  [
    Alcotest.test_case "all algorithms valid on bv" `Quick test_all_algorithms_valid_bv;
    Alcotest.test_case "all algorithms valid on xeb" `Quick test_all_algorithms_valid_xeb;
    Alcotest.test_case "gate counts preserved" `Quick test_gate_counts_preserved;
    Alcotest.test_case "uniform serializes conflicts" `Quick test_uniform_serializes_conflicts;
    Alcotest.test_case "cd beats naive on crosstalk" `Quick test_colordynamic_beats_naive_on_crosstalk;
    Alcotest.test_case "cd shallower than uniform" `Quick test_colordynamic_shallower_than_uniform;
    Alcotest.test_case "gmon perfect couplers" `Quick test_gmon_perfect_couplers_no_crosstalk;
    Alcotest.test_case "gmon residual degrades" `Quick test_gmon_residual_degrades;
    Alcotest.test_case "gmon single class per step" `Quick test_gmon_steps_single_class;
    Alcotest.test_case "color cap respected" `Quick test_color_cap_respected;
    Alcotest.test_case "color cap increases depth" `Quick test_color_cap_increases_depth;
    Alcotest.test_case "colordynamic stats" `Quick test_colordynamic_stats;
    Alcotest.test_case "static fixed table" `Quick test_static_uses_fixed_table;
    Alcotest.test_case "algorithm string roundtrip" `Quick test_algorithm_string_roundtrip;
    Alcotest.test_case "registry names and aliases" `Quick test_registry_names_and_aliases;
    Alcotest.test_case "decomposition strategies" `Quick test_decomposition_strategies_compile;
    Alcotest.test_case "identity placement" `Quick test_identity_placement_option;
    Alcotest.test_case "warm/decomposed schedules valid" `Quick
      test_warm_decomposed_schedules_valid;
    prop_all_algorithms_all_seeds;
  ]
