(* Property-based oracles for the separation solver: any assignment the
   search returns must re-verify against the problem's own constraints via
   Smt.verify, independently of the backtracking path that produced it
   (paper eq 1-3, the |xi - xj| >= delta and sideband separations). *)
open Helpers
module Smt = Fastsc_smt.Smt

(* A randomly generated problem instance, kept as plain data so it can be
   printed and shrunk (dropping separations only ever relaxes the problem,
   so shrinking preserves "solver returned an invalid witness" failures). *)
type spec = {
  n : int;
  bounds : (float * float) array;
  seps : (int * int * float) list;  (* i, j, offset *)
  delta : float;
}

let print_spec s =
  Printf.sprintf "{n=%d; bounds=[%s]; seps=[%s]; delta=%.4f}" s.n
    (String.concat "; "
       (Array.to_list (Array.map (fun (lo, hi) -> Printf.sprintf "%.3f..%.3f" lo hi) s.bounds)))
    (String.concat "; "
       (List.map (fun (i, j, o) -> Printf.sprintf "(%d,%d,%+.2f)" i j o) s.seps))
    s.delta

let gen_spec rng =
  let n = Proptest.Gen.int_range 1 4 rng in
  let bound _ =
    let lo = Rng.uniform rng 0.0 8.0 in
    (lo, lo +. Rng.uniform rng 0.5 4.0)
  in
  let sep _ =
    let i = Rng.int rng n in
    let j = Rng.int rng n in
    let offset = Rng.choose rng [| 0.0; 0.3; -0.3 |] in
    (* i = j with offset 0 is rejected by the API; nudge to a sideband *)
    if i = j && offset = 0.0 then (i, j, 0.3) else (i, j, offset)
  in
  let bounds = Proptest.Gen.array ~min_len:n ~max_len:n bound rng in
  let seps = Proptest.Gen.list ~max_len:(2 * n * n - 1) sep rng in
  { n; bounds; seps; delta = Rng.uniform rng 0.0 1.5 }

let shrink_spec s =
  Seq.map (fun seps -> { s with seps }) (Proptest.Shrink.list s.seps)

let spec_arb = Proptest.make ~shrink:shrink_spec ~print:print_spec gen_spec

let build s =
  let t = Smt.create s.n in
  Array.iteri (fun v (lo, hi) -> Smt.set_bounds t v ~lo ~hi) s.bounds;
  List.iter (fun (i, j, offset) -> Smt.add_separation ~offset t i j) s.seps;
  t

let prop_solve_verifies =
  prop_case "solve witnesses re-verify" spec_arb (fun s ->
      let t = build s in
      match Smt.solve t ~delta:s.delta with
      | None -> true
      | Some xs -> Smt.verify t ~delta:s.delta xs)

let prop_max_delta_verifies =
  prop_case "find_max_delta witnesses re-verify at their delta" spec_arb (fun s ->
      let t = build s in
      match Smt.find_max_delta ~tolerance:1e-5 t with
      | None ->
        (* the search gives up only when even delta = 0 is infeasible *)
        Smt.solve t ~delta:0.0 = None
      | Some (delta, xs) -> Smt.verify t ~delta xs)

let prop_ordered_solve_is_monotone =
  prop_case "ordered solve respects the order and verifies" spec_arb (fun s ->
      let t = build s in
      let order = List.init s.n Fun.id in
      match Smt.solve ~order t ~delta:s.delta with
      | None -> true
      | Some xs ->
        let rec ascending = function
          | a :: b :: rest -> xs.(a) <= xs.(b) +. 1e-9 && ascending (b :: rest)
          | _ -> true
        in
        ascending order && Smt.verify t ~delta:s.delta xs)

let prop_verify_rejects_nan =
  (* regression for the edge case Smt.verify fixed: float comparisons against
     NaN are all false, so the old check accepted an all-NaN assignment *)
  prop_case "verify rejects non-finite assignments" spec_arb (fun s ->
      let t = build s in
      not (Smt.verify t ~delta:s.delta (Array.make s.n nan)))

let prop_verify_rejects_corrupted =
  prop_case "corrupting a witness onto a resonance breaks verify" spec_arb (fun s ->
      let t = build s in
      if s.delta < 0.05 then true
      else
        match Smt.solve t ~delta:s.delta with
        | None -> true
        | Some xs -> (
          match List.find_opt (fun (i, j, _) -> i <> j) s.seps with
          | None -> true
          | Some (i, j, offset) ->
            let corrupted = Array.copy xs in
            corrupted.(i) <- corrupted.(j) -. offset;
            (* x_i + offset - x_j = 0 < delta: the separation is now broken
               (the move may also leave the bounds; either way, a violation) *)
            not (Smt.verify t ~delta:s.delta corrupted)))

(* -- decomposition and warm-start properties ------------------------------- *)

(* Sparser instances than [gen_spec]: up to 10 variables with only ~n random
   separations, so the constraint graph routinely splits into several
   components — the regime the decomposed solvers exist for. *)
let gen_sparse_spec rng =
  let n = Proptest.Gen.int_range 2 10 rng in
  let bound _ =
    let lo = Rng.uniform rng 0.0 8.0 in
    (lo, lo +. Rng.uniform rng 0.5 4.0)
  in
  let sep _ =
    let i = Rng.int rng n in
    let j = Rng.int rng n in
    let offset = Rng.choose rng [| 0.0; 0.3; -0.3 |] in
    if i = j && offset = 0.0 then (i, j, 0.3) else (i, j, offset)
  in
  let bounds = Proptest.Gen.array ~min_len:n ~max_len:n bound rng in
  let seps = Proptest.Gen.list ~max_len:n sep rng in
  { n; bounds; seps; delta = Rng.uniform rng 0.0 1.5 }

let sparse_arb = Proptest.make ~shrink:shrink_spec ~print:print_spec gen_sparse_spec

let prop_decomposed_solve_identical =
  prop_case "solve_components is byte-identical to solve at any jobs" sparse_arb (fun s ->
      let t = build s in
      let reference = Smt.solve t ~delta:s.delta in
      List.for_all
        (fun jobs -> Smt.solve_components ~jobs t ~delta:s.delta = reference)
        [ 1; 2; 4 ]
      && match reference with None -> true | Some w -> Smt.verify t ~delta:s.delta w)

let prop_decomposed_max_delta_min_merge =
  prop_case "find_max_delta_components min-merges verified witnesses" sparse_arb (fun s ->
      let t = build s in
      match Smt.find_max_delta_components ~jobs:4 ~tolerance:1e-5 t with
      | None -> Smt.solve t ~delta:0.0 = None
      | Some ((delta, w), infos) ->
        let members = List.concat_map (fun (i : Smt.component_solution) -> i.Smt.members) infos in
        List.sort compare members = List.init s.n Fun.id
        && List.for_all
             (fun (i : Smt.component_solution) -> i.Smt.local_delta >= delta -. 1e-9)
             infos
        && Smt.verify t ~delta w
        (* the sequentially-decomposed search agrees within tolerance *)
        && (match Smt.find_max_delta ~tolerance:1e-5 t with
           | None -> false
           | Some (ds, _) -> Float.abs (ds -. delta) <= 3e-5))

let prop_warm_never_beats_cold =
  prop_case "warm-started search verifies and never beats cold" sparse_arb (fun s ->
      let t = build s in
      match Smt.find_max_delta ~tolerance:1e-5 t with
      | None -> true
      | Some (dc, wc) -> (
        (* seeding with the cold witness never changes feasibility, and both
           searches land within tolerance of the same maximum *)
        match Smt.find_max_delta ~tolerance:1e-5 ~warm:wc t with
        | None -> false
        | Some (dw, ww) ->
          Smt.verify t ~delta:dw ww && Float.abs (dw -. dc) <= 3e-5))

let test_violations_reporting () =
  let t = Smt.create ~lo:0.0 ~hi:1.0 2 in
  Smt.add_separation t 0 1;
  check_true "satisfying assignment: no violations"
    (Smt.violations t ~delta:0.5 [| 0.0; 0.8 |] = []);
  check_true "boundary assignment exactly at delta verifies"
    (Smt.verify t ~delta:0.5 [| 0.0; 0.5 |]);
  check_int "separation violation reported" 1
    (List.length (Smt.violations t ~delta:0.5 [| 0.0; 0.2 |]));
  check_true "wrong length reported"
    (Smt.violations t ~delta:0.5 [| 0.0 |] = [ Smt.Length_mismatch 1 ]);
  check_true "out of bounds reported"
    (List.mem (Smt.Out_of_bounds 1) (Smt.violations t ~delta:0.5 [| 0.0; 2.0 |]));
  check_true "nan reported"
    (List.mem (Smt.Not_finite 0) (Smt.violations t ~delta:0.5 [| nan; 0.8 |]))

let prop_portfolio_lowest_index_wins =
  prop_case "portfolio winner is the lowest-index feasible order at any jobs"
    spec_arb (fun s ->
      let t = build s in
      let idx = List.init s.n Fun.id in
      let rotate = function [] -> [] | x :: rest -> rest @ [ x ] in
      let orders = [ idx; List.rev idx; rotate idx ] in
      (* the scheduling-independent oracle: try each order sequentially *)
      let expected =
        List.find_index
          (fun order -> Smt.solve ~order t ~delta:s.delta <> None)
          orders
      in
      List.for_all
        (fun jobs ->
          match (Smt.solve_portfolio ~jobs t ~delta:s.delta ~orders, expected) with
          | None, None -> true
          | Some (i, w), Some e -> i = e && Smt.verify t ~delta:s.delta w
          | Some _, None | None, Some _ -> false)
        [ 1; 2; 4 ])

let suite =
  [
    prop_solve_verifies;
    prop_max_delta_verifies;
    prop_ordered_solve_is_monotone;
    prop_verify_rejects_nan;
    prop_verify_rejects_corrupted;
    prop_decomposed_solve_identical;
    prop_decomposed_max_delta_min_merge;
    prop_warm_never_beats_cold;
    prop_portfolio_lowest_index_wins;
    Alcotest.test_case "violations reporting" `Quick test_violations_reporting;
  ]
