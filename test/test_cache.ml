(* The memo caches behind Freq_alloc and Crosstalk: stats count hits and
   misses correctly, reset really empties the tables, the size bound recycles
   the table rather than growing without limit, and returned values are
   copies (mutating a result must never poison the cache). *)
open Helpers
open Fastsc_device
open Fastsc_noise
open Fastsc_core

let device () = Device.create ~seed:11 (Topology.grid 3 3)

(* -- Freq_alloc solver cache ----------------------------------------------- *)

let test_solver_stats_zero_after_reset () =
  Freq_alloc.reset_solver_cache ();
  let s = Freq_alloc.solver_cache_stats () in
  check_int "hits" 0 s.Freq_alloc.hits;
  check_int "misses" 0 s.Freq_alloc.misses;
  check_int "entries" 0 s.Freq_alloc.entries

let test_solver_hit_miss_counting () =
  let d = device () in
  Freq_alloc.reset_solver_cache ();
  let _, a1 = Freq_alloc.idle d in
  let s1 = Freq_alloc.solver_cache_stats () in
  check_int "first idle solve misses" 1 s1.Freq_alloc.misses;
  check_int "no hits yet" 0 s1.Freq_alloc.hits;
  check_int "one entry" 1 s1.Freq_alloc.entries;
  let _, a2 = Freq_alloc.idle d in
  let s2 = Freq_alloc.solver_cache_stats () in
  check_int "second idle solve hits" 1 s2.Freq_alloc.hits;
  check_int "no extra miss" 1 s2.Freq_alloc.misses;
  check_true "hit equals miss result" (a1.Freq_alloc.freqs = a2.Freq_alloc.freqs);
  check_float "same delta" a1.Freq_alloc.delta a2.Freq_alloc.delta

let test_solver_entries_grow_with_distinct_problems () =
  let d = device () in
  Freq_alloc.reset_solver_cache ();
  ignore (Freq_alloc.idle d);
  ignore (Freq_alloc.interaction d ~n_colors:2 ~multiplicity:[| 1; 2 |]);
  ignore (Freq_alloc.interaction d ~n_colors:3 ~multiplicity:[| 1; 2; 3 |]);
  let s = Freq_alloc.solver_cache_stats () in
  check_int "three distinct problems, three entries" 3 s.Freq_alloc.entries;
  check_int "three misses" 3 s.Freq_alloc.misses

let test_solver_key_discriminates_alpha () =
  (* two devices identical but for anharmonicity: the idle separation
     problems then share (n, band, order) and differ only in the sideband
     offset, so the memo key must keep them apart — a collision would hand
     the second device the first one's frequencies *)
  Freq_alloc.reset_solver_cache ();
  let with_alpha anharmonicity =
    Device.create
      ~params:{ Device.default_params with Device.anharmonicity }
      ~seed:11 (Topology.grid 3 3)
  in
  let _, a1 = Freq_alloc.idle (with_alpha 0.2) in
  let _, a2 = Freq_alloc.idle (with_alpha 0.34) in
  let s = Freq_alloc.solver_cache_stats () in
  check_int "distinct sideband offsets are distinct keys" 2 s.Freq_alloc.misses;
  check_int "no false hit across offsets" 0 s.Freq_alloc.hits;
  check_int "both stored" 2 s.Freq_alloc.entries;
  check_true "sideband offset changes the achievable separation"
    (a1.Freq_alloc.delta <> a2.Freq_alloc.delta)

let test_solver_copy_on_hit () =
  let d = device () in
  Freq_alloc.reset_solver_cache ();
  let _, first = Freq_alloc.idle d in
  let reference = Array.copy first.Freq_alloc.freqs in
  (* smash the returned array; the cache must hold its own copy *)
  let _, vandal = Freq_alloc.idle d in
  Array.fill vandal.Freq_alloc.freqs 0 (Array.length vandal.Freq_alloc.freqs) 999.0;
  let _, again = Freq_alloc.idle d in
  check_true "cache unpoisoned by caller mutation" (again.Freq_alloc.freqs = reference)

let test_solver_cache_size_bound () =
  (* fill the table to its 2^16 bound with distinct keys (the interaction
     band's lower edge is part of the key), then push past it: the table
     recycles rather than growing without limit *)
  let d = device () in
  Freq_alloc.reset_solver_cache ();
  let bound = 1 lsl 16 in
  let probe i =
    Freq_alloc.interaction d
      ~lo:(4.0 +. (float_of_int i *. 1e-7))
      ~n_colors:1 ~multiplicity:[| 1 |]
  in
  for i = 0 to bound - 1 do
    ignore (probe i)
  done;
  let full = Freq_alloc.solver_cache_stats () in
  check_int "table filled to the bound" bound full.Freq_alloc.entries;
  check_int "every fill was a miss" bound full.Freq_alloc.misses;
  ignore (probe bound);
  let recycled = Freq_alloc.solver_cache_stats () in
  check_int "hitting the bound recycles the table" 1 recycled.Freq_alloc.entries;
  check_int "counters keep counting across the recycle" (bound + 1) recycled.Freq_alloc.misses;
  ignore (probe 0);
  let refilled = Freq_alloc.solver_cache_stats () in
  check_int "the evicted key recomputes as a miss" (bound + 2) refilled.Freq_alloc.misses

let test_solver_warm_bypasses_cache () =
  (* warm solves depend on the seed, not just the key, so they must neither
     read nor write the memo table — cached values stay pure functions of
     the key (the any-jobs determinism contract) *)
  let d = device () in
  Freq_alloc.reset_solver_cache ();
  let cold = Freq_alloc.interaction d ~n_colors:2 ~multiplicity:[| 1; 2 |] in
  let s1 = Freq_alloc.solver_cache_stats () in
  check_int "cold solve missed once" 1 s1.Freq_alloc.misses;
  check_int "cold solve stored" 1 s1.Freq_alloc.entries;
  check_int "no warm traffic yet" 0 (s1.Freq_alloc.warm_hits + s1.Freq_alloc.warm_misses);
  let warm_used = ref false in
  let warm =
    Freq_alloc.interaction d ~warm:cold.Freq_alloc.freqs ~warm_used ~n_colors:2
      ~multiplicity:[| 1; 2 |]
  in
  let s2 = Freq_alloc.solver_cache_stats () in
  check_int "warm solve neither hits" s1.Freq_alloc.hits s2.Freq_alloc.hits;
  check_int "nor misses" s1.Freq_alloc.misses s2.Freq_alloc.misses;
  check_int "nor stores" s1.Freq_alloc.entries s2.Freq_alloc.entries;
  check_int "usable seed counted as a warm hit" 1 s2.Freq_alloc.warm_hits;
  check_true "per-call channel reports the hit" !warm_used;
  check_true "warm delta within tolerance of cold"
    (Float.abs (warm.Freq_alloc.delta -. cold.Freq_alloc.delta) <= 2e-4);
  (* the cached entry is untouched: the same key without a seed still hits *)
  ignore (Freq_alloc.interaction d ~n_colors:2 ~multiplicity:[| 1; 2 |]);
  let s3 = Freq_alloc.solver_cache_stats () in
  check_int "cached path unaffected by the warm solve" (s1.Freq_alloc.hits + 1) s3.Freq_alloc.hits;
  (* a length-mismatched seed is not a warm attempt: it uses the cache *)
  ignore (Freq_alloc.interaction d ~warm:[| 5.0 |] ~n_colors:2 ~multiplicity:[| 1; 2 |]);
  let s4 = Freq_alloc.solver_cache_stats () in
  check_int "mismatched seed falls back to the cache" (s3.Freq_alloc.hits + 1) s4.Freq_alloc.hits;
  check_int "and is not counted as warm traffic" 1
    (s4.Freq_alloc.warm_hits + s4.Freq_alloc.warm_misses)

(* -- Crosstalk pair cache -------------------------------------------------- *)

let pair ?(omega_b = 5.6) () =
  Crosstalk.pair_error ~alpha_a:(-0.3) ~alpha_b:(-0.3) ~g:0.015 ~omega_a:5.0 ~omega_b
    ~t:50.0 ()

let test_pair_hit_miss_counting () =
  Crosstalk.reset_pair_cache ();
  let p1 = pair () in
  let s1 = Crosstalk.pair_cache_stats () in
  check_int "cold call misses" 1 s1.Crosstalk.misses;
  check_int "cold call no hit" 0 s1.Crosstalk.hits;
  check_int "one entry" 1 s1.Crosstalk.entries;
  let p2 = pair () in
  let s2 = Crosstalk.pair_cache_stats () in
  check_int "warm call hits" 1 s2.Crosstalk.hits;
  check_true "hit is bit-identical" (Int64.bits_of_float p1 = Int64.bits_of_float p2);
  let _ = pair ~omega_b:5.7 () in
  let s3 = Crosstalk.pair_cache_stats () in
  check_int "distinct key misses" 2 s3.Crosstalk.misses;
  check_int "two entries" 2 s3.Crosstalk.entries;
  Crosstalk.reset_pair_cache ();
  let s4 = Crosstalk.pair_cache_stats () in
  check_int "reset zeroes hits" 0 s4.Crosstalk.hits;
  check_int "reset zeroes misses" 0 s4.Crosstalk.misses;
  check_int "reset empties the table" 0 s4.Crosstalk.entries

let test_pair_cache_survives_size_bound () =
  (* fill the table to its 2^16 bound with distinct keys, then push past it:
     the table recycles (reset, not unbounded growth) and stays correct *)
  Crosstalk.reset_pair_cache ();
  let bound = 1 lsl 16 in
  let probe i = pair ~omega_b:(5.0 +. (float_of_int i *. 1e-6)) () in
  let first = probe 0 in
  for i = 1 to bound - 1 do
    ignore (probe i)
  done;
  let full = Crosstalk.pair_cache_stats () in
  check_int "table filled to the bound" bound full.Crosstalk.entries;
  check_int "every fill was a miss" bound full.Crosstalk.misses;
  let _ = probe bound in
  let recycled = Crosstalk.pair_cache_stats () in
  check_int "hitting the bound recycles the table" 1 recycled.Crosstalk.entries;
  check_int "counters keep counting across the recycle" (bound + 1) recycled.Crosstalk.misses;
  (* the evicted key recomputes to the same bits *)
  check_true "recomputed after eviction, bit-identical"
    (Int64.bits_of_float first = Int64.bits_of_float (probe 0))

let suite =
  [
    Alcotest.test_case "solver stats zero after reset" `Quick test_solver_stats_zero_after_reset;
    Alcotest.test_case "solver hit/miss counting" `Quick test_solver_hit_miss_counting;
    Alcotest.test_case "solver entries per distinct problem" `Quick
      test_solver_entries_grow_with_distinct_problems;
    Alcotest.test_case "solver key discriminates alpha" `Quick
      test_solver_key_discriminates_alpha;
    Alcotest.test_case "solver copy-on-hit" `Quick test_solver_copy_on_hit;
    Alcotest.test_case "solver cache size bound" `Quick test_solver_cache_size_bound;
    Alcotest.test_case "solver warm bypasses cache" `Quick test_solver_warm_bypasses_cache;
    Alcotest.test_case "pair hit/miss counting" `Quick test_pair_hit_miss_counting;
    Alcotest.test_case "pair cache size bound" `Quick test_pair_cache_survives_size_bound;
  ]
