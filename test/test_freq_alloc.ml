open Helpers
open Fastsc_device
open Fastsc_core

let device () = Device.create ~seed:11 (Topology.grid 3 3)

let test_idle_two_colors () =
  let d = device () in
  let coloring, assignment = Freq_alloc.idle d in
  check_int "mesh is 2-colored" 2 (Coloring.n_colors coloring);
  check_int "two idle frequencies" 2 (Array.length assignment.Freq_alloc.freqs);
  check_true "separated" (assignment.Freq_alloc.delta > 0.05)

let test_idle_in_parking_region () =
  let d = device () in
  let p = Device.partition d in
  let _, assignment = Freq_alloc.idle d in
  Array.iter
    (fun f -> check_true "in parking region" (Partition.in_parking p f))
    assignment.Freq_alloc.freqs

let test_idle_respects_sidebands () =
  let d = device () in
  let alpha = (Device.params d).Device.anharmonicity in
  let _, assignment = Freq_alloc.idle d in
  let freqs = assignment.Freq_alloc.freqs in
  let delta = assignment.Freq_alloc.delta in
  Array.iteri
    (fun i fi ->
      Array.iteri
        (fun j fj ->
          if i <> j then begin
            check_true "direct separation" (Float.abs (fi -. fj) +. 1e-6 >= delta);
            check_true "sideband separation" (Float.abs (fi -. alpha -. fj) +. 1e-6 >= delta)
          end)
        freqs)
    freqs

let test_idle_per_qubit () =
  let d = device () in
  let per_qubit = Freq_alloc.idle_per_qubit d in
  check_int "one per qubit" 9 (Array.length per_qubit);
  (* neighbours on the mesh never share an idle frequency *)
  Graph.iter_edges
    (fun a b -> check_true "neighbours differ" (per_qubit.(a) <> per_qubit.(b)))
    (Device.graph d)

let test_interaction_ordering () =
  let d = device () in
  (* color 1 is busiest, then 0, then 2: frequencies must order accordingly *)
  let assignment = Freq_alloc.interaction d ~n_colors:3 ~multiplicity:[| 2; 5; 1 |] in
  let f = assignment.Freq_alloc.freqs in
  check_true "busiest highest" (f.(1) >= f.(0) && f.(0) >= f.(2));
  check_true "positive delta" (assignment.Freq_alloc.delta > 0.0)

let test_interaction_in_region () =
  let d = device () in
  let p = Device.partition d in
  let assignment = Freq_alloc.interaction d ~n_colors:4 ~multiplicity:[| 1; 1; 1; 1 |] in
  Array.iter
    (fun f -> check_true "in interaction region" (Partition.in_interaction p f))
    assignment.Freq_alloc.freqs

let test_interaction_zero_colors () =
  let d = device () in
  let assignment = Freq_alloc.interaction d ~n_colors:0 ~multiplicity:[||] in
  check_int "empty" 0 (Array.length assignment.Freq_alloc.freqs)

let test_interaction_size_mismatch () =
  let d = device () in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Freq_alloc.interaction: multiplicity size mismatch") (fun () ->
      ignore (Freq_alloc.interaction d ~n_colors:2 ~multiplicity:[| 1 |]))

let test_delta_shrinks_with_colors () =
  let d = device () in
  let delta n =
    (Freq_alloc.interaction d ~n_colors:n ~multiplicity:(Array.make n 1)).Freq_alloc.delta
  in
  check_true "more colors, less separation" (delta 2 > delta 4 && delta 4 > delta 8)

let test_custom_region_override () =
  let d = device () in
  let assignment =
    Freq_alloc.interaction ~lo:6.5 ~hi:6.6 d ~n_colors:2 ~multiplicity:[| 1; 1 |]
  in
  Array.iter
    (fun f -> check_true "in override window" (f >= 6.5 -. 1e-9 && f <= 6.6 +. 1e-9))
    assignment.Freq_alloc.freqs

let test_spread () =
  let f = Freq_alloc.spread ~lo:5.0 ~hi:7.0 3 in
  Alcotest.(check (array (float 1e-9))) "even" [| 5.0; 6.0; 7.0 |] f;
  Alcotest.(check (array (float 1e-9))) "single centered" [| 6.0 |] (Freq_alloc.spread ~lo:5.0 ~hi:7.0 1);
  check_int "empty" 0 (Array.length (Freq_alloc.spread ~lo:5.0 ~hi:7.0 0))

(* --- the memoized separation solver --- *)

let test_cache_hit_and_identical_result () =
  Freq_alloc.reset_solver_cache ();
  let d = device () in
  let solve () = Freq_alloc.interaction d ~n_colors:3 ~multiplicity:[| 2; 5; 1 |] in
  let fresh = solve () in
  let stats = Freq_alloc.solver_cache_stats () in
  check_true "first solve misses" (stats.Freq_alloc.misses >= 1);
  let memoized = solve () in
  let stats' = Freq_alloc.solver_cache_stats () in
  check_true "second solve hits" (stats'.Freq_alloc.hits > stats.Freq_alloc.hits);
  check_float "same delta" fresh.Freq_alloc.delta memoized.Freq_alloc.delta;
  Alcotest.(check (array (float 0.0))) "same assignment" fresh.Freq_alloc.freqs
    memoized.Freq_alloc.freqs

let test_cache_result_isolated () =
  (* a cached hit must hand back a private array: mutating one caller's
     assignment must not corrupt later solves of the same key *)
  Freq_alloc.reset_solver_cache ();
  let d = device () in
  let first = Freq_alloc.interaction d ~n_colors:2 ~multiplicity:[| 1; 1 |] in
  let saved = Array.copy first.Freq_alloc.freqs in
  first.Freq_alloc.freqs.(0) <- 0.0;
  let second = Freq_alloc.interaction d ~n_colors:2 ~multiplicity:[| 1; 1 |] in
  Alcotest.(check (array (float 0.0))) "hit unaffected by caller mutation" saved
    second.Freq_alloc.freqs

let test_cache_keys_distinguish_problems () =
  Freq_alloc.reset_solver_cache ();
  let d = device () in
  ignore (Freq_alloc.interaction d ~n_colors:3 ~multiplicity:[| 1; 2; 3 |]);
  (* different multiplicity vector => different placement order => new key *)
  ignore (Freq_alloc.interaction d ~n_colors:3 ~multiplicity:[| 3; 2; 1 |]);
  let stats = Freq_alloc.solver_cache_stats () in
  check_int "two distinct problems, two misses" 2 stats.Freq_alloc.misses;
  check_int "no false hits" 0 stats.Freq_alloc.hits

let xeb16_compile () =
  let d16 = Device.create ~seed:2020 (Topology.grid 4 4) in
  let classes = Fastsc_core.Baseline_gmon.edge_classes d16 in
  let circuit =
    Fastsc_benchmarks.Xeb.circuit (Rng.create 7) ~graph:(Device.graph d16) ~classes ~cycles:5 ()
  in
  let native = Compile.prepare Compile.default_options d16 circuit in
  let schedule, _ = Color_dynamic.run d16 native in
  Schedule.evaluate schedule

let test_colordynamic_xeb16_reuses_cache () =
  (* the acceptance check of the memoization layer: a single ColorDynamic
     compile of xeb(16) re-solves structurally identical SMT subproblems
     across cycles, so the cache must see hits even from cold — and the
     emitted metrics must not change between a cold and a warm compile *)
  Freq_alloc.reset_solver_cache ();
  let cold = xeb16_compile () in
  let stats = Freq_alloc.solver_cache_stats () in
  check_true "cold compile already hits the cache" (stats.Freq_alloc.hits >= 1);
  check_true "and misses at least once" (stats.Freq_alloc.misses >= 1);
  let warm = xeb16_compile () in
  check_float "log10 success unchanged by memoization" cold.Schedule.log10_success
    warm.Schedule.log10_success;
  check_float "crosstalk error unchanged" cold.Schedule.crosstalk_error
    warm.Schedule.crosstalk_error;
  check_float "decoherence error unchanged" cold.Schedule.decoherence_error
    warm.Schedule.decoherence_error;
  check_int "depth unchanged" cold.Schedule.depth warm.Schedule.depth

let test_infeasible_failure_is_diagnostic () =
  (* a NaN band bound poisons every placement comparison, so even delta = 0
     is infeasible; the Failure must spell out the whole problem — color
     count, band, sideband offset, placement order, best delta tried — not
     just "no feasible assignment" *)
  let d = device () in
  match Freq_alloc.interaction ~lo:Float.nan d ~n_colors:2 ~multiplicity:[| 1; 1 |] with
  | _ -> Alcotest.fail "nan band should be infeasible"
  | exception Failure msg ->
    check_true "counts the colors" (contains msg "2 colors");
    check_true "names the band" (contains msg "band [nan");
    check_true "names the sideband offset" (contains msg "sideband offset");
    check_true "carries the placement order" (contains msg "placement order");
    check_true "carries the best delta tried" (contains msg "best delta tried")

let prop_interaction_separations_hold =
  qcheck_case ~count:50 "all pairwise separations honored" QCheck.(int_range 1 6) (fun n ->
      let d = device () in
      let assignment = Freq_alloc.interaction d ~n_colors:n ~multiplicity:(Array.make n 1) in
      let f = assignment.Freq_alloc.freqs and delta = assignment.Freq_alloc.delta in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          if Float.abs (f.(i) -. f.(j)) +. 1e-6 < delta then ok := false
        done
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "idle two colors" `Quick test_idle_two_colors;
    Alcotest.test_case "idle in parking" `Quick test_idle_in_parking_region;
    Alcotest.test_case "idle sidebands" `Quick test_idle_respects_sidebands;
    Alcotest.test_case "idle per qubit" `Quick test_idle_per_qubit;
    Alcotest.test_case "interaction ordering" `Quick test_interaction_ordering;
    Alcotest.test_case "interaction in region" `Quick test_interaction_in_region;
    Alcotest.test_case "interaction zero colors" `Quick test_interaction_zero_colors;
    Alcotest.test_case "interaction size mismatch" `Quick test_interaction_size_mismatch;
    Alcotest.test_case "delta shrinks with colors" `Quick test_delta_shrinks_with_colors;
    Alcotest.test_case "custom region" `Quick test_custom_region_override;
    Alcotest.test_case "spread" `Quick test_spread;
    Alcotest.test_case "solver cache hit, identical result" `Quick
      test_cache_hit_and_identical_result;
    Alcotest.test_case "solver cache isolates results" `Quick test_cache_result_isolated;
    Alcotest.test_case "solver cache keys distinguish" `Quick
      test_cache_keys_distinguish_problems;
    Alcotest.test_case "colordynamic xeb16 reuses cache" `Quick
      test_colordynamic_xeb16_reuses_cache;
    Alcotest.test_case "infeasible failure is diagnostic" `Quick
      test_infeasible_failure_is_diagnostic;
    prop_interaction_separations_hold;
  ]
