open Helpers
open Fastsc_noise

let test_residual_coupling () =
  (* eq 5: g' = g0^2 / delta in the dispersive regime *)
  check_float ~eps:1e-12 "dispersive" 9e-4 (Crosstalk.residual_coupling ~g0:0.03 ~delta:1.0);
  check_float ~eps:1e-12 "capped on resonance" 0.03 (Crosstalk.residual_coupling ~g0:0.03 ~delta:0.0);
  check_float ~eps:1e-12 "sign insensitive" 9e-4 (Crosstalk.residual_coupling ~g0:0.03 ~delta:(-1.0))

let test_transfer_envelope () =
  check_float ~eps:1e-12 "resonant peak = 1" 1.0 (Crosstalk.transfer_envelope ~g:0.03 ~delta:0.0);
  let env = Crosstalk.transfer_envelope ~g:0.03 ~delta:0.3 in
  check_true "detuned peak < 1" (env < 0.05);
  check_float ~eps:1e-9 "formula" (4.0 *. 0.03 ** 2.0 /. ((4.0 *. 0.03 ** 2.0) +. 0.09)) env

let test_transfer_probability_bounds () =
  for i = 0 to 50 do
    let t = float_of_int i in
    let p = Crosstalk.transfer_probability ~g:0.03 ~delta:0.1 ~t in
    check_true "within envelope"
      (p >= -.1e-12 && p <= Crosstalk.transfer_envelope ~g:0.03 ~delta:0.1 +. 1e-12)
  done

let test_transfer_resonant_full () =
  (* on resonance, full transfer at t = 1/(4g) *)
  check_float ~eps:1e-9 "full swap" 1.0
    (Crosstalk.transfer_probability ~g:0.03 ~delta:0.0 ~t:(1.0 /. 0.12))

let test_channels () =
  let chs = Crosstalk.channels ~alpha_a:(-0.2) ~alpha_b:(-0.2) ~g:0.03 ~omega_a:6.0 ~omega_b:5.8 in
  check_int "three channels" 3 (List.length chs);
  (* omega_a + alpha_a = 5.8 = omega_b: the 12-01 channel is resonant *)
  let resonant = List.find (fun c -> c.Crosstalk.label = "12-01") chs in
  check_float ~eps:1e-12 "sideband resonance" 0.0 resonant.Crosstalk.delta;
  check_float ~eps:1e-12 "sqrt2 coupling" (sqrt 2.0 *. 0.03) resonant.Crosstalk.g

let test_pair_error_sideband_trap () =
  (* parking a qubit exactly one anharmonicity below its neighbour is a
     leakage trap: the worst-case error saturates, while a detuning far from
     every channel stays small *)
  let err omega_b =
    Crosstalk.pair_error ~worst_case:true ~alpha_a:(-0.2) ~alpha_b:(-0.2) ~g:0.03 ~omega_a:6.0
      ~omega_b ~t:10.0 ()
  in
  check_true "trap saturates" (err 5.8 > 0.9);
  check_true "generic detuning is mild" (err 5.5 < 0.3);
  check_true "trap dominates" (err 5.8 > 3.0 *. err 5.5)

let test_pair_error_zero_coupling () =
  check_float "no coupling, no error" 0.0
    (Crosstalk.pair_error ~alpha_a:(-0.2) ~alpha_b:(-0.2) ~g:0.0 ~omega_a:6.0 ~omega_b:6.0
       ~t:100.0 ())

let test_pair_error_worst_case_dominates () =
  let wc =
    Crosstalk.pair_error ~worst_case:true ~alpha_a:(-0.2) ~alpha_b:(-0.2) ~g:0.03 ~omega_a:6.0
      ~omega_b:5.9 ~t:7.0 ()
  in
  let timed =
    Crosstalk.pair_error ~alpha_a:(-0.2) ~alpha_b:(-0.2) ~g:0.03 ~omega_a:6.0 ~omega_b:5.9
      ~t:7.0 ()
  in
  check_true "envelope bounds the timed value" (wc >= timed -. 1e-12)

let test_pair_error_cache () =
  Crosstalk.reset_pair_cache ();
  let eval () =
    Crosstalk.pair_error ~alpha_a:(-0.2) ~alpha_b:(-0.2) ~g:0.03 ~omega_a:6.0 ~omega_b:5.8
      ~t:50.0 ()
  in
  let fresh = eval () in
  let stats = Crosstalk.pair_cache_stats () in
  check_true "first evaluation misses" (stats.Crosstalk.misses >= 1);
  let cached = eval () in
  let stats' = Crosstalk.pair_cache_stats () in
  check_true "second evaluation hits" (stats'.Crosstalk.hits > stats.Crosstalk.hits);
  (* hits must be bit-identical, not merely close *)
  check_true "cached value bit-identical" (Int64.bits_of_float fresh = Int64.bits_of_float cached);
  (* a different key is a miss, never a near-match hit *)
  let other =
    Crosstalk.pair_error ~alpha_a:(-0.2) ~alpha_b:(-0.2) ~g:0.03 ~omega_a:6.0 ~omega_b:5.80001
      ~t:50.0 ()
  in
  let stats'' = Crosstalk.pair_cache_stats () in
  check_true "perturbed key misses" (stats''.Crosstalk.misses > stats'.Crosstalk.misses);
  check_true "and computes its own value" (other <> fresh)

let test_decoherence_models () =
  let combined = Decoherence.error ~t1:30000.0 ~t2:20000.0 ~t:1000.0 () in
  let expected = (1.0 -. exp (-1000.0 /. 30000.0)) *. (1.0 -. exp (-1000.0 /. 20000.0)) in
  check_float ~eps:1e-12 "combined" expected combined;
  let expo = Decoherence.error ~model:Decoherence.Exponential ~t1:30000.0 ~t2:20000.0 ~t:1000.0 () in
  check_float ~eps:1e-12 "exponential"
    (1.0 -. (exp (-1000.0 /. 30000.0) *. exp (-1000.0 /. 20000.0)))
    expo;
  check_float "zero time" 0.0 (Decoherence.error ~t1:100.0 ~t2:100.0 ~t:0.0 ());
  check_true "monotone"
    (Decoherence.error ~t1:100.0 ~t2:100.0 ~t:50.0 ()
    < Decoherence.error ~t1:100.0 ~t2:100.0 ~t:100.0 ())

let test_decoherence_validation () =
  Alcotest.check_raises "bad t1" (Invalid_argument "Decoherence: T1 and T2 must be positive")
    (fun () -> ignore (Decoherence.error ~t1:0.0 ~t2:1.0 ~t:1.0 ()));
  Alcotest.check_raises "negative t" (Invalid_argument "Decoherence: negative duration")
    (fun () -> ignore (Decoherence.error ~t1:1.0 ~t2:1.0 ~t:(-1.0) ()))

let test_pauli_rates () =
  let p_x, p_y, p_z = Decoherence.pauli_rates ~t1:30000.0 ~t2:20000.0 ~t:100.0 in
  check_true "all non-negative" (p_x >= 0.0 && p_y >= 0.0 && p_z >= 0.0);
  check_float ~eps:1e-12 "x = y" p_x p_y;
  check_true "sub-unit total" (p_x +. p_y +. p_z < 1.0);
  (* T2 limited by 2*T1: pure dephasing floor at zero *)
  let _, _, p_z2 = Decoherence.pauli_rates ~t1:100.0 ~t2:200.0 ~t:50.0 in
  check_float "no negative dephasing" 0.0 p_z2

let test_success_accumulator () =
  let acc = Success.create () in
  Success.add_errors acc [ 0.1; 0.2 ];
  check_float ~eps:1e-12 "product" (0.9 *. 0.8) (Success.probability acc);
  check_int "terms" 2 (Success.n_terms acc);
  check_float ~eps:1e-12 "log10" (log10 0.72) (Success.log10_probability acc)

let test_success_saturation () =
  let acc = Success.create () in
  Success.add_error acc 1.0;
  check_float "zero" 0.0 (Success.probability acc);
  check_true "log is -inf" (Success.log10_probability acc = neg_infinity)

let test_success_clamps_negative () =
  let acc = Success.create () in
  Success.add_error acc (-0.5);
  check_float ~eps:1e-12 "clamped to 0" 1.0 (Success.probability acc)

let test_success_combine () =
  let a = Success.create () and b = Success.create () in
  Success.add_error a 0.5;
  Success.add_error b 0.5;
  check_float ~eps:1e-12 "combined" 0.25 (Success.probability (Success.combine a b))

let test_success_no_underflow () =
  (* 100k small errors: the log-space accumulator must not flush to zero *)
  let acc = Success.create () in
  for _ = 1 to 100_000 do
    Success.add_error acc 0.01
  done;
  check_true "finite log" (Float.is_finite (Success.log10_probability acc));
  check_float ~eps:1.0 "log value" (100_000.0 *. log10 0.99) (Success.log10_probability acc)

let prop_of_errors_matches_product =
  qcheck_case "of_errors = naive product" QCheck.(list_of_size (Gen.int_range 0 20) (float_range 0.0 0.5))
    (fun errors ->
      let expected = List.fold_left (fun acc e -> acc *. (1.0 -. e)) 1.0 errors in
      Float.abs (Success.of_errors errors -. expected) < 1e-9)

let suite =
  [
    Alcotest.test_case "residual coupling eq5" `Quick test_residual_coupling;
    Alcotest.test_case "transfer envelope" `Quick test_transfer_envelope;
    Alcotest.test_case "transfer bounds" `Quick test_transfer_probability_bounds;
    Alcotest.test_case "resonant full transfer" `Quick test_transfer_resonant_full;
    Alcotest.test_case "channels" `Quick test_channels;
    Alcotest.test_case "sideband trap" `Quick test_pair_error_sideband_trap;
    Alcotest.test_case "zero coupling" `Quick test_pair_error_zero_coupling;
    Alcotest.test_case "worst case dominates" `Quick test_pair_error_worst_case_dominates;
    Alcotest.test_case "pair error cache" `Quick test_pair_error_cache;
    Alcotest.test_case "decoherence models" `Quick test_decoherence_models;
    Alcotest.test_case "decoherence validation" `Quick test_decoherence_validation;
    Alcotest.test_case "pauli rates" `Quick test_pauli_rates;
    Alcotest.test_case "success accumulator" `Quick test_success_accumulator;
    Alcotest.test_case "success saturation" `Quick test_success_saturation;
    Alcotest.test_case "success clamps" `Quick test_success_clamps_negative;
    Alcotest.test_case "success combine" `Quick test_success_combine;
    Alcotest.test_case "success no underflow" `Quick test_success_no_underflow;
    prop_of_errors_matches_product;
  ]
