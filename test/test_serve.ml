open Helpers
module Protocol = Fastsc_serve.Protocol
module Ladder = Fastsc_serve.Ladder
module Telemetry = Fastsc_serve.Telemetry

(* The serve layer: wire protocol totality, the degradation ladder's tier
   walk, and the stale-witness cache.  The deadline-zero ladder test is the
   sentinel for the seeded serve-ladder-tier fault: with the fault on, the
   response reports the first tier attempted instead of the one that
   produced the witness. *)

let parse line = Protocol.parse_request line

let rejects line =
  match parse line with
  | _ -> false
  | exception Protocol.Bad_request _ -> true

let test_request_defaults () =
  let req = parse {|{"id":"r1"}|} in
  check_true "id" (req.Protocol.id = "r1");
  check_true "bench default" (req.Protocol.bench = "bv");
  check_int "n default" 9 req.Protocol.n;
  check_true "topology default" (req.Protocol.topology = "grid");
  check_int "seed default" 2020 req.Protocol.seed;
  check_true "algorithm default" (req.Protocol.algorithm = "color-dynamic");
  check_true "no deadline by default" (req.Protocol.deadline_ms = None);
  check_true "options default off"
    ((not req.Protocol.warm_start) && not req.Protocol.decompose_components);
  check_int "crosstalk distance default" 1 req.Protocol.crosstalk_distance

let test_request_fields () =
  let req =
    parse
      {|{"id":"r2","bench":"qaoa","n":12,"topology":"ring","seed":7,
         "algorithm":"static","deadline_ms":250,"warm_start":true,
         "decompose_components":true,"crosstalk_distance":2}|}
  in
  check_true "bench" (req.Protocol.bench = "qaoa");
  check_int "n" 12 req.Protocol.n;
  check_true "deadline accepted as int" (req.Protocol.deadline_ms = Some 250.0);
  check_true "flags" (req.Protocol.warm_start && req.Protocol.decompose_components)

let test_request_rejections () =
  check_true "invalid JSON" (rejects "{nope");
  check_true "non-object" (rejects "[1,2]");
  check_true "missing id" (rejects {|{"bench":"bv"}|});
  check_true "mistyped n" (rejects {|{"id":"x","n":"nine"}|});
  check_true "n below one" (rejects {|{"id":"x","n":0}|});
  check_true "negative deadline" (rejects {|{"id":"x","deadline_ms":-5}|});
  check_true "unknown benchmark" (rejects {|{"id":"x","bench":"frobnicate"}|});
  check_true "negative crosstalk distance" (rejects {|{"id":"x","crosstalk_distance":-1}|})

let test_cache_key_identity () =
  let base = {|{"id":"a","bench":"bv","n":6,"topology":"path"}|} in
  let key = Protocol.cache_key (parse base) in
  (* id and deadline do not change the compile problem *)
  check_true "id excluded"
    (Protocol.cache_key (parse {|{"id":"b","bench":"bv","n":6,"topology":"path"}|}) = key);
  check_true "deadline excluded"
    (Protocol.cache_key
       (parse {|{"id":"a","bench":"bv","n":6,"topology":"path","deadline_ms":0}|})
    = key);
  (* anything that does change the problem changes the key *)
  check_true "n included"
    (Protocol.cache_key (parse {|{"id":"a","bench":"bv","n":7,"topology":"path"}|}) <> key);
  check_true "seed included"
    (Protocol.cache_key (parse {|{"id":"a","bench":"bv","n":6,"topology":"path","seed":3}|})
    <> key);
  check_true "qasm hashed into key"
    (Protocol.cache_key
       (parse
          {|{"id":"a","bench":"bv","n":6,"topology":"path","qasm":"OPENQASM 2.0;"}|})
    <> key)

let test_realize_qasm_error_is_bad_request () =
  let req = parse {|{"id":"q","n":4,"topology":"path","qasm":"this is not qasm"}|} in
  check_true "qasm parse error maps to Bad_request"
    (match Protocol.realize req with
    | _ -> false
    | exception Protocol.Bad_request msg -> contains msg "qasm");
  let bad_topo = parse {|{"id":"q","n":4,"topology":"moebius"}|} in
  check_true "unknown topology maps to Bad_request"
    (match Protocol.realize bad_topo with
    | _ -> false
    | exception Protocol.Bad_request msg -> contains msg "topology")

let test_error_response_codes () =
  List.iter
    (fun (code, name) ->
      let resp =
        Protocol.Error_response { err_id = "e"; code; message = "m" }
      in
      let doc = Protocol.response_to_json resp in
      check_true ("code " ^ name)
        (Json.member "code" doc = Some (Json.String name));
      check_true "status error"
        (Json.member "status" doc = Some (Json.String "error")))
    [
      (Protocol.Overloaded, "overloaded");
      (Protocol.Bad_request_code, "bad_request");
      (Protocol.Internal, "internal");
    ]

(* -- the ladder -------------------------------------------------------------- *)

let small_request ?deadline_ms ?(seed = 2020) () =
  {
    Protocol.id = "t";
    bench = "bv";
    qasm = None;
    n = 5;
    topology = "path";
    seed;
    algorithm = "color-dynamic";
    deadline_ms;
    warm_start = false;
    decompose_components = false;
    crosstalk_distance = 1;
  }

let ok_body = function
  | Protocol.Ok_response b -> b
  | Protocol.Error_response { message; _ } -> Alcotest.fail ("error response: " ^ message)

let test_ladder_no_deadline_is_full () =
  Ladder.reset_stale_cache ();
  let b = ok_body (Ladder.compile (small_request ())) in
  check_true "tier full" (b.Protocol.tier = "full");
  check_int "no retries" 0 b.Protocol.retries;
  check_true "single ok attempt"
    (match b.Protocol.attempts with
    | [ a ] -> a.Protocol.a_tier = "full" && a.Protocol.a_outcome = "ok"
    | _ -> false);
  check_true "metrics populated" (b.Protocol.metrics.Fastsc_core.Schedule.n_gates > 0)

(* Sentinel for FASTSC_FAULT=serve-ladder-tier: the fault reports the first
   attempted tier ("full") instead of the producing one ("greedy"). *)
let test_ladder_deadline_zero_degrades_to_greedy () =
  Ladder.reset_stale_cache ();
  let b = ok_body (Ladder.compile (small_request ~deadline_ms:0.0 ~seed:31 ())) in
  check_true "tier greedy" (b.Protocol.tier = "greedy");
  check_true "greedy algorithm reported" (b.Protocol.algorithm = "greedy-spread");
  check_int "three rungs failed first" 3 b.Protocol.retries;
  let trail =
    List.map (fun a -> (a.Protocol.a_tier, a.Protocol.a_outcome)) b.Protocol.attempts
  in
  check_true "full trail recorded"
    (trail
    = [
        ("full", "expired");
        ("decomposed-warm", "expired");
        ("stale", "miss");
        ("greedy", "ok");
      ])

let test_ladder_stale_hit () =
  Ladder.reset_stale_cache ();
  (* prime: an unbudgeted compile stores its witness under the cache key *)
  let warm = ok_body (Ladder.compile (small_request ~seed:47 ())) in
  (* identical problem, zero budget: both SMT rungs expire, the stale rung
     returns the stored witness *)
  let b = ok_body (Ladder.compile (small_request ~deadline_ms:0.0 ~seed:47 ())) in
  check_true "tier stale" (b.Protocol.tier = "stale");
  check_true "same algorithm as the primed witness"
    (b.Protocol.algorithm = warm.Protocol.algorithm);
  check_true "identical metrics" (b.Protocol.metrics = warm.Protocol.metrics);
  let hits, _misses, entries = Ladder.stale_cache_stats () in
  check_true "cache hit counted" (hits >= 1 && entries >= 1)

let test_ladder_unknown_algorithm () =
  let req = { (small_request ()) with Protocol.algorithm = "no-such-scheduler" } in
  check_true "unknown algorithm raises Bad_request"
    (match Ladder.compile req with
    | _ -> false
    | exception Protocol.Bad_request msg -> contains msg "no-such-scheduler")

let test_scrub_zeroes_latency () =
  Ladder.reset_stale_cache ();
  let resp = Ladder.compile (small_request ~deadline_ms:0.0 ~seed:53 ()) in
  let doc = Protocol.response_to_json ~scrub:true resp in
  check_true "latency scrubbed"
    (Json.member "latency_ms" doc = Some (Json.Float 0.0));
  (match Json.member "attempts" doc with
  | Some (Json.List attempts) ->
    List.iter
      (fun a ->
        check_true "attempt ms scrubbed" (Json.member "ms" a = Some (Json.Float 0.0)))
      attempts
  | _ -> Alcotest.fail "attempts missing from response");
  (* scrubbed responses for the same request are byte-identical *)
  Ladder.reset_stale_cache ();
  let again = Ladder.compile (small_request ~deadline_ms:0.0 ~seed:53 ()) in
  check_true "scrubbed responses deterministic"
    (Protocol.response_line ~scrub:true resp = Protocol.response_line ~scrub:true again)

(* -- telemetry --------------------------------------------------------------- *)

let test_telemetry_format_line () =
  check_true "no solves yet shows a dash"
    (Telemetry.format_line ~served:0 ~errors:0 ~cache_hits:0 ~cache_misses:0
       ~tiers:[]
    = "stats: 0 served | solver cache -");
  check_true "hit rate and error suffix"
    (Telemetry.format_line ~served:10 ~errors:2 ~cache_hits:3 ~cache_misses:1
       ~tiers:[]
    = "stats: 10 served (2 errors) | solver cache 75% hit (3/4)");
  (* single-sample buckets pin p50 = p95 = the sample, independent of the
     percentile interpolation rule; tier order is preserved as given *)
  check_true "per-tier percentiles in order"
    (Telemetry.format_line ~served:3 ~errors:0 ~cache_hits:1 ~cache_misses:1
       ~tiers:[ ("full", [ 4.0 ]); ("greedy", [ 1.5; 1.5 ]) ]
    = "stats: 3 served | solver cache 50% hit (1/2) \
       | full n=1 p50 4.0ms p95 4.0ms | greedy n=2 p50 1.5ms p95 1.5ms")

let test_telemetry_recorder () =
  let t = Telemetry.create () in
  let body = ok_body (Ladder.compile (small_request ())) in
  Telemetry.record t
    (Protocol.Ok_response { body with Protocol.tier = "greedy"; latency_ms = 1.0 });
  Telemetry.record t
    (Protocol.Ok_response { body with Protocol.tier = "full"; latency_ms = 2.0 });
  Telemetry.record t
    (Protocol.Error_response
       { err_id = "e"; code = Protocol.Internal; message = "boom" });
  let line = Telemetry.line t in
  check_true "served count" (contains line "stats: 3 served");
  check_true "error count" (contains line "(1 errors)");
  check_true "solver cache section present" (contains line "| solver cache");
  check_true "full bucket" (contains line "| full n=1 p50 2.0ms p95 2.0ms");
  check_true "greedy bucket" (contains line "| greedy n=1 p50 1.0ms p95 1.0ms");
  (* ladder order: full is reported before greedy even though greedy was
     recorded first *)
  let idx sub =
    let rec go i =
      if i + String.length sub > String.length line then -1
      else if String.sub line i (String.length sub) = sub then i
      else go (i + 1)
    in
    go 0
  in
  check_true "ladder order" (idx "| full" < idx "| greedy")

let suite =
  [
    Alcotest.test_case "request defaults" `Quick test_request_defaults;
    Alcotest.test_case "request fields" `Quick test_request_fields;
    Alcotest.test_case "request rejections" `Quick test_request_rejections;
    Alcotest.test_case "cache key identity" `Quick test_cache_key_identity;
    Alcotest.test_case "realize maps errors to Bad_request" `Quick
      test_realize_qasm_error_is_bad_request;
    Alcotest.test_case "error response codes" `Quick test_error_response_codes;
    Alcotest.test_case "ladder: no deadline is full tier" `Quick
      test_ladder_no_deadline_is_full;
    Alcotest.test_case "ladder: zero budget degrades to greedy" `Quick
      test_ladder_deadline_zero_degrades_to_greedy;
    Alcotest.test_case "ladder: stale hit" `Quick test_ladder_stale_hit;
    Alcotest.test_case "ladder: unknown algorithm" `Quick test_ladder_unknown_algorithm;
    Alcotest.test_case "scrub zeroes latency" `Quick test_scrub_zeroes_latency;
    Alcotest.test_case "telemetry: pure formatter" `Quick test_telemetry_format_line;
    Alcotest.test_case "telemetry: recorder round-trip" `Quick
      test_telemetry_recorder;
  ]
