open Helpers
open Fastsc_util

(* The determinism contract: Pool.map at any job count equals List.map. *)

let squares n = List.init n (fun i -> i * i)

let test_map_matches_sequential () =
  let xs = List.init 500 Fun.id in
  let expected = List.map (fun x -> x * x) xs in
  List.iter
    (fun jobs ->
      check_true
        (Printf.sprintf "map ~jobs:%d == List.map" jobs)
        (Pool.map ~jobs (fun x -> x * x) xs = expected))
    [ 1; 2; 3; 4; 8 ]

let test_jobs_one_is_sequential_reference () =
  (* jobs = 1 must behave exactly like the list/array stdlib functions, and
     in particular must evaluate cells in order (the cells below detect any
     reordering through a side-effect log). *)
  let log = ref [] in
  let result = Pool.map ~jobs:1 (fun x -> log := x :: !log; x + 1) [ 1; 2; 3; 4 ] in
  check_true "results" (result = [ 2; 3; 4; 5 ]);
  check_true "in-order evaluation at jobs=1" (List.rev !log = [ 1; 2; 3; 4 ])

let test_empty_and_singleton () =
  check_true "empty list" (Pool.map ~jobs:4 (fun x -> x) [] = []);
  check_true "empty array" (Pool.map_array ~jobs:4 (fun x -> x) [||] = [||]);
  check_true "singleton list" (Pool.map ~jobs:4 string_of_int [ 7 ] = [ "7" ]);
  check_true "singleton array" (Pool.map_array ~jobs:4 succ [| 41 |] = [| 42 |])

let test_mapi_indices () =
  let xs = List.init 100 (fun i -> 100 - i) in
  let expected = List.mapi (fun i x -> (i, x)) xs in
  check_true "mapi carries correct indices" (Pool.mapi ~jobs:3 (fun i x -> (i, x)) xs = expected)

let test_ordering_determinism () =
  (* cells finish in scrambled wall-clock order (larger inputs do more work);
     results must still come back by input index *)
  let xs = List.init 64 (fun i -> 63 - i) in
  let work x =
    let acc = ref 0 in
    for _ = 1 to 1 + (x * 1000) do
      incr acc
    done;
    x + !acc - !acc
  in
  check_true "scrambled workloads, ordered results" (Pool.map ~jobs:4 work xs = xs)

exception Boom of int

let test_exception_propagation () =
  let raised =
    try
      ignore (Pool.map ~jobs:4 (fun x -> if x = 37 then raise (Boom x) else x) (List.init 100 Fun.id));
      None
    with Boom x -> Some x
  in
  check_true "exception re-raised on caller" (raised = Some 37)

let test_exception_at_jobs_one () =
  let raised =
    try
      ignore (Pool.map ~jobs:1 (fun x -> if x = 2 then failwith "seq" else x) [ 1; 2; 3 ]);
      false
    with Failure msg -> msg = "seq"
  in
  check_true "sequential fallback re-raises too" raised

let test_nested_map () =
  (* a map issued from inside another map's cell must complete (the caller
     executes its own batch), and the composite result must stay ordered *)
  let outer = List.init 6 (fun i -> List.init 20 (fun j -> (i * 20) + j)) in
  let expected = List.map (List.map (fun x -> x * 2)) outer in
  let result = Pool.map ~jobs:3 (fun row -> Pool.map ~jobs:2 (fun x -> x * 2) row) outer in
  check_true "nested maps complete and stay ordered" (result = expected)

let test_nested_map_on_shared_pool () =
  let pool = Pool.create ~jobs:3 () in
  let outer = List.init 8 (fun i -> i) in
  let expected = List.map (fun i -> squares (i + 1)) outer in
  let result =
    Pool.map ~pool (fun i -> Pool.map ~pool (fun j -> j * j) (List.init (i + 1) Fun.id)) outer
  in
  Pool.shutdown pool;
  check_true "nested maps on one shared pool do not deadlock" (result = expected)

let test_iter_collects_every_index () =
  let n = 200 in
  let seen = Array.make n false in
  (* each cell writes only its own slot: no synchronization needed *)
  Pool.iter ~jobs:4 (fun i -> seen.(i) <- true) (List.init n Fun.id);
  check_true "iter visited every cell exactly once" (Array.for_all Fun.id seen)

let test_explicit_pool_reuse () =
  let pool = Pool.create ~jobs:4 () in
  check_int "pool size" 4 (Pool.jobs pool);
  let a = Pool.map ~pool (fun x -> x + 1) (List.init 50 Fun.id) in
  let b = Pool.map ~pool (fun x -> x + 1) (List.init 50 Fun.id) in
  Pool.shutdown pool;
  check_true "two batches on one pool agree" (a = b && a = List.init 50 (fun i -> i + 1))

let test_default_jobs_override () =
  let before = Pool.default_jobs () in
  check_true "default is positive" (before >= 1);
  Pool.set_default_jobs 2;
  check_int "set_default_jobs sticks" 2 (Pool.default_jobs ());
  Alcotest.check_raises "rejects zero" (Invalid_argument "Pool.set_default_jobs: jobs must be >= 1")
    (fun () -> Pool.set_default_jobs 0);
  Pool.set_default_jobs before

(* -- deterministic range sharding ------------------------------------------- *)

let test_ranges_partition_exactly () =
  (* ranges must tile [0, n) exactly — non-empty, contiguous, in order —
     for power-of-two and ragged sizes alike.  This is also the test with
     teeth against the shard-boundary-off-by-one fault: a shifted interior
     start leaves a gap. *)
  List.iter
    (fun (n, jobs, align) ->
      let rs = Pool.ranges ~align ~jobs n in
      check_true
        (Printf.sprintf "ranges n=%d jobs=%d align=%d: at most jobs shards" n jobs align)
        (Array.length rs <= jobs && Array.length rs >= 1);
      let expected = ref 0 in
      Array.iter
        (fun (lo, hi) ->
          check_int (Printf.sprintf "n=%d jobs=%d align=%d: contiguous at %d" n jobs align lo)
            !expected lo;
          check_true "non-empty" (hi > lo);
          expected := hi)
        rs;
      check_int (Printf.sprintf "n=%d jobs=%d align=%d: covers to n" n jobs align) n !expected)
    [
      (100, 3, 1);
      (100, 3, 4);
      (16, 4, 1);
      (16, 5, 1);
      (1, 4, 1);
      (1024, 4, 256);
      (1000, 7, 8);
      (255, 2, 256);
    ]

let test_ranges_alignment_and_purity () =
  let rs = Pool.ranges ~align:8 ~jobs:4 1000 in
  Array.iteri
    (fun i (lo, _) -> if i > 0 then check_int "interior boundary aligned" 0 (lo mod 8))
    rs;
  (* pure function of (n, jobs, align): two calls agree *)
  check_true "ranges is deterministic" (rs = Pool.ranges ~align:8 ~jobs:4 1000);
  check_true "empty input" (Pool.ranges ~jobs:4 0 = [||]);
  Alcotest.check_raises "rejects jobs=0" (Invalid_argument "Pool.ranges: jobs must be >= 1")
    (fun () -> ignore (Pool.ranges ~jobs:0 10));
  Alcotest.check_raises "rejects align=0" (Invalid_argument "Pool.ranges: align must be >= 1")
    (fun () -> ignore (Pool.ranges ~align:0 ~jobs:2 10))

let test_run_ranges_visits_every_index_once () =
  (* each index must be touched exactly once, at every requested width —
     including widths above the pool size and non-powers of two *)
  let n = 999 in
  List.iter
    (fun jobs ->
      let hits = Array.make n (Atomic.make 0) in
      Array.iteri (fun i _ -> hits.(i) <- Atomic.make 0) hits;
      Pool.run_ranges ~jobs n (fun lo hi ->
          for i = lo to hi - 1 do
            Atomic.incr hits.(i)
          done);
      check_true
        (Printf.sprintf "run_ranges ~jobs:%d touches every index once" jobs)
        (Array.for_all (fun a -> Atomic.get a = 1) hits))
    [ 1; 2; 3; 5; 8; 64 ]

let test_run_ranges_boundaries_from_requested_width () =
  (* the cut depends on the *requested* width, not the pool's size: a 1-job
     pool executing a ~jobs:4 cut must see exactly the ranges of a 4-shard
     partition *)
  let pool = Pool.create ~jobs:1 () in
  let seen = ref [] in
  let mutex = Mutex.create () in
  Pool.run_ranges ~pool ~jobs:4 ~align:4 64 (fun lo hi ->
      Mutex.lock mutex;
      seen := (lo, hi) :: !seen;
      Mutex.unlock mutex);
  Pool.shutdown pool;
  let sorted = List.sort compare !seen in
  check_true "4 shards on a serial pool"
    (sorted = Array.to_list (Pool.ranges ~align:4 ~jobs:4 64))

(* -- teardown edges: submit, shutdown, and exceptions in flight -------------- *)

let test_submit_exception_does_not_kill_worker () =
  (* a raising fire-and-forget job must not take its worker down *)
  let pool = Pool.create ~jobs:2 () in
  Pool.submit pool (fun () -> failwith "boom");
  let r = Pool.map ~pool succ (List.init 20 Fun.id) in
  Pool.shutdown pool;
  check_true "workers survive a raising job" (r = List.init 20 succ)

let test_shutdown_drains_queued_submits () =
  (* jobs already queued when shutdown flips the stop flag still run:
     workers drain the queue before exiting *)
  let pool = Pool.create ~jobs:2 () in
  let ran = Atomic.make 0 in
  for _ = 1 to 50 do
    Pool.submit pool (fun () -> Atomic.incr ran)
  done;
  Pool.shutdown pool;
  check_int "every queued job ran before join" 50 (Atomic.get ran)

let test_exception_while_stopping () =
  (* raising jobs executed during the shutdown drain (stop already set) must
     neither wedge the join nor skip their queued siblings *)
  let pool = Pool.create ~jobs:2 () in
  let ran = Atomic.make 0 in
  for i = 1 to 20 do
    Pool.submit pool (fun () ->
        if i mod 2 = 0 then failwith "mid-drain boom" else Atomic.incr ran)
  done;
  Pool.shutdown pool;
  check_int "surviving siblings all ran" 10 (Atomic.get ran)

let test_submit_after_shutdown_raises () =
  let pool = Pool.create ~jobs:2 () in
  Pool.shutdown pool;
  check_true "submit after shutdown rejected"
    (match Pool.submit pool (fun () -> ()) with
    | () -> false
    | exception Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "map matches sequential" `Quick test_map_matches_sequential;
    Alcotest.test_case "jobs=1 is the sequential reference" `Quick
      test_jobs_one_is_sequential_reference;
    Alcotest.test_case "empty and singleton" `Quick test_empty_and_singleton;
    Alcotest.test_case "mapi indices" `Quick test_mapi_indices;
    Alcotest.test_case "ordering determinism" `Quick test_ordering_determinism;
    Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
    Alcotest.test_case "exception at jobs=1" `Quick test_exception_at_jobs_one;
    Alcotest.test_case "nested map" `Quick test_nested_map;
    Alcotest.test_case "nested map on shared pool" `Quick test_nested_map_on_shared_pool;
    Alcotest.test_case "iter visits every cell" `Quick test_iter_collects_every_index;
    Alcotest.test_case "explicit pool reuse" `Quick test_explicit_pool_reuse;
    Alcotest.test_case "default jobs override" `Quick test_default_jobs_override;
    Alcotest.test_case "ranges partition exactly" `Quick test_ranges_partition_exactly;
    Alcotest.test_case "ranges alignment and purity" `Quick test_ranges_alignment_and_purity;
    Alcotest.test_case "run_ranges visits every index once" `Quick
      test_run_ranges_visits_every_index_once;
    Alcotest.test_case "run_ranges boundaries from requested width" `Quick
      test_run_ranges_boundaries_from_requested_width;
    Alcotest.test_case "submit exception does not kill worker" `Quick
      test_submit_exception_does_not_kill_worker;
    Alcotest.test_case "shutdown drains queued submits" `Quick
      test_shutdown_drains_queued_submits;
    Alcotest.test_case "exception while stopping" `Quick test_exception_while_stopping;
    Alcotest.test_case "submit after shutdown raises" `Quick
      test_submit_after_shutdown_raises;
  ]
