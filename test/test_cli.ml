(* End-to-end tests of the fastsc CLI binary (declared as a test dependency
   in dune, so it is always built first and found relative to the test's
   working directory inside _build). *)
open Helpers
open Fastsc_core

let binary = Filename.concat (Filename.concat ".." "bin") "fastsc.exe"

let run_capture args =
  let out_file = Filename.temp_file "fastsc_cli" ".out" in
  let command =
    Printf.sprintf "%s %s > %s 2>&1" (Filename.quote binary) args (Filename.quote out_file)
  in
  let code = Sys.command command in
  let ic = open_in_bin out_file in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove out_file;
  (code, text)

let test_list () =
  let code, text = run_capture "list" in
  check_int "exit 0" 0 code;
  check_true "benchmarks listed" (contains text "xeb");
  check_true "algorithms listed" (contains text "color-dynamic")

let test_compile () =
  let code, text = run_capture "compile --bench bv --size 4 --algorithm cd" in
  check_int "exit 0" 0 code;
  check_true "metrics shown" (contains text "success probability");
  check_true "schedule summary" (contains text "color-dynamic schedule")

let test_compile_json () =
  let code, text = run_capture "compile --bench ghz --size 4 --json" in
  check_int "exit 0" 0 code;
  check_true "json artifact" (contains text "\"schedule\"");
  check_true "waveforms included" (contains text "\"waveforms\"")

let test_compile_draw () =
  let code, text = run_capture "compile --bench ghz --size 4 --draw" in
  check_int "exit 0" 0 code;
  check_true "wires drawn" (contains text "q0")

let test_sweep () =
  let code, text = run_capture "sweep --bench xeb --size 4" in
  check_int "exit 0" 0 code;
  check_true "all five columns" (contains text "baseline-u" && contains text "baseline-g")

let test_device () =
  let code, text = run_capture "device --size 4 --topology path" in
  check_int "exit 0" 0 code;
  check_true "frequency plan shown" (contains text "parking")

let test_qasm () =
  let code, text = run_capture "qasm --bench qft --size 3" in
  check_int "exit 0" 0 code;
  check_true "header" (contains text "OPENQASM 2.0;");
  check_true "parses back" (Circuit.length (Qasm.of_string text) > 0)

let test_qasm_native_is_native () =
  let code, text = run_capture "qasm --bench qft --size 3 --native --topology path" in
  check_int "exit 0" 0 code;
  let circuit = Qasm.of_string text in
  check_true "only native gates"
    (Array.for_all (fun app -> Gate.is_native app.Gate.gate) (Circuit.instructions circuit))

let test_validate () =
  let code, text = run_capture "validate --bench bv --size 4 --trials 50" in
  check_int "exit 0" 0 code;
  check_true "both estimates" (contains text "heuristic" && contains text "simulated")

let test_compile_qasm_input () =
  (* roundtrip through the CLI: export a circuit, compile it back in *)
  let qasm_file = Filename.temp_file "fastsc_cli" ".qasm" in
  let code, text = run_capture "qasm --bench ghz --size 4" in
  check_int "export ok" 0 code;
  let oc = open_out qasm_file in
  output_string oc text;
  close_out oc;
  let code, text =
    run_capture (Printf.sprintf "compile --input %s --size 4" (Filename.quote qasm_file))
  in
  Sys.remove qasm_file;
  check_int "compile ok" 0 code;
  check_true "metrics shown" (contains text "success probability")

let test_compile_chart () =
  let code, text = run_capture "compile --bench xeb --size 4 --chart" in
  check_int "exit 0" 0 code;
  check_true "legend shown" (contains text "interaction band")

let test_budget_command () =
  let code, text = run_capture "budget --bench xeb --size 4" in
  check_int "exit 0" 0 code;
  check_true "hotspots" (contains text "hotspot steps")

let test_calibrate_command () =
  let code, text = run_capture "calibrate --size 4 --topology path" in
  check_int "exit 0" 0 code;
  check_true "calibration shown" (contains text "iswap")

let test_bad_arguments () =
  let code, _ = run_capture "compile --bench nonsense" in
  check_true "nonzero exit" (code <> 0);
  let code, _ = run_capture "device --topology moebius" in
  check_true "nonzero exit" (code <> 0)

let test_unknown_algorithm_exit_2 () =
  List.iter
    (fun sub ->
      let code, text = run_capture (sub ^ " --bench bv --size 4 --algorithm nonsense") in
      check_int (sub ^ ": exit code 2") 2 code;
      check_true "names the bad algorithm" (contains text "nonsense");
      (* the error lists every registered algorithm *)
      List.iter
        (fun a ->
          let name = Compile.algorithm_to_string a in
          check_true (sub ^ " error lists " ^ name) (contains text name))
        Compile.extended_algorithms)
    [ "compile"; "validate"; "budget" ]

let test_compile_trace () =
  let code, text = run_capture "compile --bench bv --size 4 --algorithm cd --trace" in
  check_int "exit 0" 0 code;
  check_true "names the algorithm" (contains text "\"algorithm\": \"color-dynamic\"");
  (* one report object per executed pass, schedule included *)
  List.iter
    (fun pass -> check_true ("trace covers " ^ pass) (contains text ("\"" ^ pass ^ "\"")))
    [ "place"; "route"; "decompose"; "optimize"; "schedule"; "evaluate" ];
  check_true "per-pass solver cache deltas" (contains text "\"solver_cache\"");
  check_true "pair cache deltas" (contains text "\"pair_cache\"");
  check_true "scheduler stats travel in the report" (contains text "\"max_colors_used\"");
  check_true "process-wide cache counters" (contains text "\"smt_solves_total\"");
  check_true "metrics included" (contains text "\"log10_success\"")

let test_compile_trace_components () =
  let code, text =
    run_capture "compile --bench xeb --size 9 --algorithm cd --trace --warm-start --decompose"
  in
  check_int "exit 0" 0 code;
  (* per-component solver statistics travel in the scheduler's pass report *)
  List.iter
    (fun field -> check_true ("trace reports " ^ field) (contains text ("\"" ^ field ^ "\"")))
    [
      "components";
      "component_max_size";
      "component_sizes";
      "component_solves";
      "warm_hits";
      "warm_misses";
    ]

let bench_binary = Filename.concat (Filename.concat ".." "bench") "main.exe"

let test_bench_smt_scale_bad_topology () =
  let out_file = Filename.temp_file "fastsc_bench" ".out" in
  let command =
    Printf.sprintf "FASTSC_SMT_TOPOLOGY=moebius %s smt-scale > %s 2>&1"
      (Filename.quote bench_binary) (Filename.quote out_file)
  in
  let code = Sys.command command in
  let ic = open_in_bin out_file in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove out_file;
  check_int "unknown topology exits 2" 2 code;
  check_true "names the bad topology" (contains text "moebius");
  List.iter
    (fun name -> check_true ("error lists " ^ name) (contains text name))
    [ "grid"; "path"; "ring"; "heavy-hex"; "octagonal"; "express" ]

let suite =
  [
    Alcotest.test_case "list" `Quick test_list;
    Alcotest.test_case "compile" `Quick test_compile;
    Alcotest.test_case "compile --json" `Quick test_compile_json;
    Alcotest.test_case "compile --draw" `Quick test_compile_draw;
    Alcotest.test_case "sweep" `Quick test_sweep;
    Alcotest.test_case "device" `Quick test_device;
    Alcotest.test_case "qasm" `Quick test_qasm;
    Alcotest.test_case "qasm --native" `Quick test_qasm_native_is_native;
    Alcotest.test_case "validate" `Quick test_validate;
    Alcotest.test_case "compile --input qasm" `Quick test_compile_qasm_input;
    Alcotest.test_case "compile --chart" `Quick test_compile_chart;
    Alcotest.test_case "budget" `Quick test_budget_command;
    Alcotest.test_case "calibrate" `Quick test_calibrate_command;
    Alcotest.test_case "bad arguments" `Quick test_bad_arguments;
    Alcotest.test_case "unknown algorithm exit 2" `Quick test_unknown_algorithm_exit_2;
    Alcotest.test_case "compile --trace" `Quick test_compile_trace;
    Alcotest.test_case "compile --trace component stats" `Quick test_compile_trace_components;
    Alcotest.test_case "bench smt-scale unknown topology" `Quick test_bench_smt_scale_bad_topology;
  ]
