open Helpers

let test_basic_render () =
  let t = Tablefmt.create [ "name"; "value" ] in
  Tablefmt.add_row t [ "alpha"; "1" ];
  Tablefmt.add_row t [ "b"; "22" ];
  let out = Tablefmt.render t in
  let lines = String.split_on_char '\n' out in
  check_int "line count" 6 (List.length lines);
  (* all lines equal width *)
  let widths = List.map String.length lines in
  check_true "aligned" (List.for_all (fun w -> w = List.hd widths) widths);
  check_true "contains header" (contains out "name")

let test_short_row_padded () =
  let t = Tablefmt.create [ "a"; "b"; "c" ] in
  Tablefmt.add_row t [ "x" ];
  check_true "renders" (String.length (Tablefmt.render t) > 0)

let test_long_row_rejected () =
  let t = Tablefmt.create [ "a" ] in
  Alcotest.check_raises "too many" (Invalid_argument "Tablefmt.add_row: too many cells")
    (fun () -> Tablefmt.add_row t [ "1"; "2" ])

let test_separator () =
  let t = Tablefmt.create [ "a" ] in
  Tablefmt.add_row t [ "1" ];
  Tablefmt.add_separator t;
  Tablefmt.add_row t [ "2" ];
  let lines = String.split_on_char '\n' (Tablefmt.render t) in
  check_int "extra rule line" 7 (List.length lines)

let test_cells () =
  check_true "float" (Tablefmt.cell_float ~digits:2 3.14159 = "3.14");
  check_true "sci" (Tablefmt.cell_sci ~digits:2 0.000123 = "1.23e-04");
  check_true "int" (Tablefmt.cell_int 42 = "42")

let suite =
  [
    Alcotest.test_case "basic render" `Quick test_basic_render;
    Alcotest.test_case "short row padded" `Quick test_short_row_padded;
    Alcotest.test_case "long row rejected" `Quick test_long_row_rejected;
    Alcotest.test_case "separator" `Quick test_separator;
    Alcotest.test_case "cells" `Quick test_cells;
  ]
