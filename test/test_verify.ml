(* Meta-tests for the layered verification harness itself (docs/DESIGN.md
   §11): the seeded-fault catalog is actually caught by the suites it names,
   the perf-regression gate's classifier and verdicts behave as documented,
   the standalone perf_gate executable wires exit codes correctly, and the
   verify_report document round-trips through the in-tree JSON parser. *)
open Helpers
module Perf_gate = Fastsc_verify.Perf_gate
module Verify_report = Fastsc_verify.Verify_report

(* -- seeded-fault catalog --------------------------------------------------- *)

(* Re-spawn this very test binary with FASTSC_FAULT set; the faulted child
   runs one suite and its exit code says whether the suite caught the bug. *)
let run_suite ?fault suite =
  let fault_env =
    match fault with
    | None -> ""
    | Some name -> Printf.sprintf "FASTSC_FAULT=%s " (Filename.quote name)
  in
  Sys.command
    (Printf.sprintf "%sFASTSC_PROPTEST_COUNT=25 %s test %s > /dev/null 2>&1" fault_env
       (Filename.quote Sys.executable_name)
       (Filename.quote suite))

let test_every_fault_is_caught () =
  (* mutation-style self-check: for every cataloged fault, at least one of
     its listed suites must fail while the fault is active *)
  List.iter
    (fun spec ->
      check_true
        (Printf.sprintf "fault %s names at least one suite" spec.Fault.name)
        (spec.Fault.suites <> []);
      let caught = List.exists (fun suite -> run_suite ~fault:spec.Fault.name suite <> 0) in
      check_true
        (Printf.sprintf "fault %s (%s) caught by one of [%s]" spec.Fault.name spec.Fault.site
           (String.concat "; " spec.Fault.suites))
        (caught spec.Fault.suites))
    Fault.catalog

let test_clean_run_is_green () =
  (* the same suites pass with no fault active — the sweep above fails for
     the right reason, not because the suites are broken outright *)
  let suites =
    List.sort_uniq compare (List.concat_map (fun s -> s.Fault.suites) Fault.catalog)
  in
  List.iter
    (fun suite ->
      check_int (Printf.sprintf "suite %s green without faults" suite) 0 (run_suite suite))
    suites

let test_unknown_fault_exits_2 () =
  check_int "unknown fault name is a usage error, not a silent no-op" 2
    (run_suite ~fault:"no-such-fault" "rng")

(* -- perf gate: field classification ---------------------------------------- *)

let test_classify () =
  let check_class name key expected =
    check_true name (Perf_gate.classify key = expected)
  in
  check_class "jobs is machine shape" "jobs" Perf_gate.Ignored;
  check_class "speedup ratios are scheduling noise" "speedup_vs_serial" Perf_gate.Ignored;
  check_class "per_sec is throughput, higher better" "trials_per_sec"
    (Perf_gate.Timing { higher_better = true; noise_floor = 0.0 });
  check_class "ns token is a timing" "ns_per_op"
    (Perf_gate.Timing { higher_better = false; noise_floor = 20.0 });
  check_class "ms token is a timing" "warm_ms"
    (Perf_gate.Timing { higher_better = false; noise_floor = 2.0 });
  check_class "wall token is a timing" "wall_seconds"
    (Perf_gate.Timing { higher_better = false; noise_floor = 0.01 });
  check_class "counters are exact" "entries" Perf_gate.Exact;
  check_class "n_qubits is exact" "n_qubits" Perf_gate.Exact;
  (* token match, not substring: "msg" merely contains "ms" *)
  check_class "ms must be a whole token" "msg" Perf_gate.Exact

(* -- perf gate: document comparison ----------------------------------------- *)

let fixture name = Json.parse_file (Filename.concat "../bench/baselines" name)

let test_identical_docs_pass () =
  let doc = fixture "fixture_base.json" in
  let r = Perf_gate.compare_docs ~baseline:doc ~fresh:doc in
  check_true "no structural errors" (r.Perf_gate.structural_errors = []);
  check_true "no exact drift" (r.Perf_gate.exact_mismatches = []);
  check_float "median at parity" 1.0 (Perf_gate.median_regression r);
  check_true "gate passes" (Perf_gate.passes r);
  check_int "jobs and speedup ignored" 2 r.Perf_gate.ignored

let test_twofold_slowdown_fails () =
  let r =
    Perf_gate.compare_docs ~baseline:(fixture "fixture_base.json")
      ~fresh:(fixture "fixture_slow2x.json")
  in
  check_true "comparable" (r.Perf_gate.structural_errors = []);
  check_true "checksums unchanged" (r.Perf_gate.exact_mismatches = []);
  check_float "median regression is 2x" 2.0 (Perf_gate.median_regression r);
  (match Perf_gate.evaluate r with
  | Perf_gate.Regression _ -> ()
  | _ -> Alcotest.fail "expected Regression verdict");
  (* a slack gate would let it through; the default 25% must not *)
  check_true "fails at default tolerance" (not (Perf_gate.passes r));
  check_true "passes only with an absurd tolerance" (Perf_gate.passes ~tolerance:1.5 r)

let obj fields = Json.Obj fields

let test_exact_drift_fails () =
  let baseline = obj [ ("cycles", Json.Int 40); ("warm_ms", Json.Float 8.0) ] in
  let fresh = obj [ ("cycles", Json.Int 41); ("warm_ms", Json.Float 8.0) ] in
  let r = Perf_gate.compare_docs ~baseline ~fresh in
  check_int "one exact mismatch" 1 (List.length r.Perf_gate.exact_mismatches);
  match Perf_gate.evaluate r with
  | Perf_gate.Regression why -> check_true "names the field" (contains why "cycles")
  | _ -> Alcotest.fail "expected Regression verdict"

let test_structural_mismatch_fails () =
  let baseline = obj [ ("a", Json.Int 1); ("b", Json.Int 2) ] in
  let fresh = obj [ ("a", Json.Int 1); ("c", Json.Int 3) ] in
  let r = Perf_gate.compare_docs ~baseline ~fresh in
  check_int "missing and extra key both reported" 2
    (List.length r.Perf_gate.structural_errors);
  (match Perf_gate.evaluate r with
  | Perf_gate.Structural _ -> ()
  | _ -> Alcotest.fail "expected Structural verdict");
  let r_len =
    Perf_gate.compare_docs
      ~baseline:(obj [ ("xs", Json.List [ Json.Int 1 ]) ])
      ~fresh:(obj [ ("xs", Json.List [ Json.Int 1; Json.Int 2 ]) ])
  in
  check_true "array length mismatch is structural"
    (r_len.Perf_gate.structural_errors <> [])

let test_scrubbed_baseline_demands_scrubbed_fresh () =
  let doc v = obj [ ("wall_seconds", Json.Float v) ] in
  let ok = Perf_gate.compare_docs ~baseline:(doc 0.0) ~fresh:(doc 0.0) in
  check_true "scrubbed vs scrubbed passes" (Perf_gate.passes ok);
  check_true "scrubbed fields contribute no ratio" (ok.Perf_gate.timings = []);
  let bad = Perf_gate.compare_docs ~baseline:(doc 0.0) ~fresh:(doc 0.5) in
  check_true "unscrubbed fresh against scrubbed baseline fails"
    (not (Perf_gate.passes bad))

let test_noise_floor_snaps_to_parity () =
  let doc v = obj [ ("warm_ms", Json.Float v) ] in
  let near = Perf_gate.compare_docs ~baseline:(doc 1.0) ~fresh:(doc 2.5) in
  (* 2.5x slower, but only 1.5 ms absolute — under the 2 ms floor *)
  check_float "sub-floor difference is parity" 1.0 (Perf_gate.median_regression near);
  let far = Perf_gate.compare_docs ~baseline:(doc 10.0) ~fresh:(doc 25.0) in
  check_float "past the floor the true ratio shows" 2.5 (Perf_gate.median_regression far)

let test_median_math () =
  let doc vals =
    obj (List.mapi (fun i v -> (Printf.sprintf "t%d_ms" i, Json.Float v)) vals)
  in
  let median base fresh =
    Perf_gate.median_regression (Perf_gate.compare_docs ~baseline:(doc base) ~fresh:(doc fresh))
  in
  (* odd count: the middle ratio; one outlier cannot drag the gate *)
  check_float "odd median" 1.0 (median [ 10.0; 10.0; 10.0 ] [ 10.0; 10.0; 100.0 ]);
  (* even count: mean of the middle two *)
  check_float "even median" 1.5 (median [ 10.0; 10.0 ] [ 10.0; 20.0 ]);
  (* throughput fields invert: halved per_sec is a 2x regression *)
  let r =
    Perf_gate.compare_docs
      ~baseline:(obj [ ("ops_per_sec", Json.Float 100.0) ])
      ~fresh:(obj [ ("ops_per_sec", Json.Float 50.0) ])
  in
  check_float "higher-better ratio inverts" 2.0 (Perf_gate.median_regression r)

(* -- perf gate: standalone executable --------------------------------------- *)

let run_gate baseline fresh =
  Sys.command
    (Printf.sprintf "../bench/perf_gate.exe --baseline %s --fresh %s > /dev/null 2>&1"
       (Filename.quote (Filename.concat "../bench/baselines" baseline))
       (Filename.quote (Filename.concat "../bench/baselines" fresh)))

let test_gate_exe_exit_codes () =
  check_int "identical fixtures exit 0" 0 (run_gate "fixture_base.json" "fixture_base.json");
  check_int "2x slowdown exits 1" 1 (run_gate "fixture_base.json" "fixture_slow2x.json");
  check_int "unreadable file exits 2" 2 (run_gate "fixture_base.json" "no_such_fixture.json")

(* -- verify_report ----------------------------------------------------------- *)

let sample_cells =
  [
    Verify_report.cell ~tier:"R" ~name:"prop_smt seed=+0 jobs=1" ~seconds:0.5
      ~detail:[ ("jobs", Json.Int 1) ]
      Verify_report.Pass;
    Verify_report.cell ~tier:"R" ~name:"prop_smt seed=+1 jobs=4" ~seconds:0.25
      (Verify_report.Fail "exit 1");
    Verify_report.cell ~tier:"D" ~name:"fault smt-resolve-flip" ~seconds:1.0 Verify_report.Pass;
    Verify_report.cell ~tier:"W" ~name:"perf gate sim" ~seconds:2.25 Verify_report.Pass;
  ]

let test_report_round_trips () =
  let doc =
    Verify_report.to_json ~meta:[ ("mode", Json.String "full") ] sample_cells
  in
  (* through the emitter and back through the parser *)
  let parsed = Json.parse (Json.to_string doc) in
  check_true "meta survives" (Json.member "mode" parsed = Some (Json.String "full"));
  match Json.member "cells" parsed with
  | Some (Json.List cells) ->
    check_int "all cells serialized" (List.length sample_cells) (List.length cells);
    let first = List.hd cells in
    check_true "tier field" (Json.member "tier" first = Some (Json.String "R"));
    (match Json.member "detail" first with
    | Some detail -> check_true "replay material kept" (Json.member "jobs" detail = Some (Json.Int 1))
    | None -> Alcotest.fail "detail missing");
    let second = List.nth cells 1 in
    (match Json.member "outcome" second with
    | Some outcome ->
      check_true "failure status" (Json.member "status" outcome = Some (Json.String "fail"));
      (match Json.member "reason" outcome with
      | Some (Json.String s) -> check_true "failure carries its reason" (contains s "exit 1")
      | _ -> Alcotest.fail "reason missing")
    | None -> Alcotest.fail "outcome missing")
  | _ -> Alcotest.fail "cells list missing"

let test_report_summaries () =
  let summaries = Verify_report.summarize sample_cells in
  (match summaries with
  | [ r; d; w ] ->
    check_true "R first" (r.Verify_report.ts_tier = "R");
    check_int "R pass count" 1 r.Verify_report.ts_passed;
    check_int "R total" 2 r.Verify_report.ts_total;
    check_int "D all green" d.Verify_report.ts_passed d.Verify_report.ts_total;
    check_float "W seconds accumulated" 2.25 w.Verify_report.ts_seconds
  | _ -> Alcotest.fail "expected exactly tiers R, D, W");
  let line = Verify_report.summary_line sample_cells in
  check_true "one failed cell fails the line" (contains line "FAIL");
  check_true "per-tier counts shown" (contains line "R 1/2");
  let green = List.filter Verify_report.passed sample_cells in
  check_true "all-green line passes" (contains (Verify_report.summary_line green) "PASS")

let suite =
  [
    Alcotest.test_case "every cataloged fault is caught" `Slow test_every_fault_is_caught;
    Alcotest.test_case "fault suites green when clean" `Slow test_clean_run_is_green;
    Alcotest.test_case "unknown fault exits 2" `Quick test_unknown_fault_exits_2;
    Alcotest.test_case "classify by key name" `Quick test_classify;
    Alcotest.test_case "identical docs pass" `Quick test_identical_docs_pass;
    Alcotest.test_case "2x slowdown fails" `Quick test_twofold_slowdown_fails;
    Alcotest.test_case "exact drift fails" `Quick test_exact_drift_fails;
    Alcotest.test_case "structural mismatch fails" `Quick test_structural_mismatch_fails;
    Alcotest.test_case "scrubbed baseline convention" `Quick
      test_scrubbed_baseline_demands_scrubbed_fresh;
    Alcotest.test_case "noise floor snaps to parity" `Quick test_noise_floor_snaps_to_parity;
    Alcotest.test_case "median math" `Quick test_median_math;
    Alcotest.test_case "gate executable exit codes" `Quick test_gate_exe_exit_codes;
    Alcotest.test_case "report round-trips" `Quick test_report_round_trips;
    Alcotest.test_case "report summaries" `Quick test_report_summaries;
  ]
