(* Golden test for the `fastsc compile --trace` JSON artifact: the schema is
   a documented interface (docs/MANUAL.md) that downstream tooling parses, so
   every key and the cross-counter invariants are pinned here.  Parsed with
   the in-tree Json reader rather than string matching, so a formatting-only
   change cannot mask a dropped field. *)
open Helpers

let binary = Filename.concat (Filename.concat ".." "bin") "fastsc.exe"

let trace_doc () =
  let out_file = Filename.temp_file "fastsc_trace" ".json" in
  let command =
    Printf.sprintf "%s compile --bench ghz --size 4 --trace > %s 2> /dev/null"
      (Filename.quote binary) (Filename.quote out_file)
  in
  let code = Sys.command command in
  check_int "trace run exits 0" 0 code;
  let doc = Json.parse_file out_file in
  Sys.remove out_file;
  doc

let field name doc =
  match Json.member name doc with
  | Some v -> v
  | None -> Alcotest.failf "missing field %S" name

let as_int name doc =
  match field name doc with
  | Json.Int i -> i
  | v -> Alcotest.failf "field %S is not an int: %s" name (Json.to_string ~pretty:false v)

let as_number name doc =
  match field name doc with
  | Json.Int i -> float_of_int i
  | Json.Float f -> f
  | v -> Alcotest.failf "field %S is not a number: %s" name (Json.to_string ~pretty:false v)

(* The pipeline passes in execution order — the same six names Pass.Pipeline
   registers for every scheduler (place/route are identity for all-to-all
   benches but still traced). *)
let pipeline = [ "place"; "route"; "decompose"; "optimize"; "schedule"; "evaluate" ]

let pass_entries doc =
  match field "passes" doc with
  | Json.List entries -> entries
  | v -> Alcotest.failf "passes is not a list: %s" (Json.to_string ~pretty:false v)

let test_top_level_shape () =
  let doc = trace_doc () in
  (match field "algorithm" doc with
  | Json.String a -> check_true "algorithm named" (String.length a > 0)
  | v -> Alcotest.failf "algorithm is not a string: %s" (Json.to_string ~pretty:false v));
  List.iter
    (fun key -> ignore (field key doc))
    [ "passes"; "stats"; "caches"; "metrics" ]

let test_every_pass_traced () =
  let doc = trace_doc () in
  let names =
    List.map
      (fun entry ->
        match field "pass" entry with
        | Json.String s -> s
        | v -> Alcotest.failf "pass name is not a string: %s" (Json.to_string ~pretty:false v))
      (pass_entries doc)
  in
  check_true "all pipeline passes traced, in order" (names = pipeline)

let test_per_pass_fields () =
  let doc = trace_doc () in
  List.iter
    (fun entry ->
      check_true "wall_ms non-negative" (as_number "wall_ms" entry >= 0.0);
      check_true "smt_solves non-negative" (as_int "smt_solves" entry >= 0);
      let solver = field "solver_cache" entry in
      List.iter
        (fun k -> check_true (k ^ " non-negative") (as_int k solver >= 0))
        [ "hits"; "misses"; "warm_hits"; "warm_misses" ];
      let pair = field "pair_cache" entry in
      List.iter
        (fun k -> check_true (k ^ " non-negative") (as_int k pair >= 0))
        [ "hits"; "misses" ])
    (pass_entries doc)

let test_counter_invariants () =
  (* the per-pass numbers are deltas against counters reset at pipeline
     start, so they must reconcile exactly with the final totals *)
  let doc = trace_doc () in
  let passes = pass_entries doc in
  let caches = field "caches" doc in
  let sum f = List.fold_left (fun acc entry -> acc + f entry) 0 passes in
  check_int "smt_solves_total is the sum of per-pass solves"
    (as_int "smt_solves_total" caches)
    (sum (as_int "smt_solves"));
  check_true "the pipeline solved at least once" (as_int "smt_solves_total" caches > 0);
  let solver = field "solver" caches in
  List.iter
    (fun k ->
      check_int
        (Printf.sprintf "solver %s deltas sum to the final total" k)
        (as_int k solver)
        (sum (fun entry -> as_int k (field "solver_cache" entry))))
    [ "hits"; "misses"; "warm_hits"; "warm_misses" ];
  check_true "solver entries reported" (as_int "entries" solver >= 0);
  let pair = field "pair" caches in
  List.iter
    (fun k ->
      check_int
        (Printf.sprintf "pair %s deltas sum to the final total" k)
        (as_int k pair)
        (sum (fun entry -> as_int k (field "pair_cache" entry))))
    [ "hits"; "misses" ];
  check_true "pair entries reported" (as_int "entries" pair >= 0)

let test_metrics_fields () =
  let doc = trace_doc () in
  let metrics = field "metrics" doc in
  List.iter
    (fun k -> ignore (as_number k metrics))
    [
      "success";
      "log10_success";
      "gate_error";
      "crosstalk_error";
      "decoherence_error";
      "total_time_ns";
    ];
  List.iter
    (fun k -> check_true (k ^ " positive") (as_int k metrics > 0))
    [ "depth"; "n_gates"; "n_two_qubit" ];
  let stats = field "stats" doc in
  check_true "cycle count positive" (as_int "cycles" stats > 0)

let suite =
  [
    Alcotest.test_case "top-level shape" `Quick test_top_level_shape;
    Alcotest.test_case "every pass traced" `Quick test_every_pass_traced;
    Alcotest.test_case "per-pass fields" `Quick test_per_pass_fields;
    Alcotest.test_case "counter invariants" `Quick test_counter_invariants;
    Alcotest.test_case "metrics fields" `Quick test_metrics_fields;
  ]
