(* Differential properties: the memo caches and the domain pool are pure
   performance features, so their observable results must be bit-identical
   to the uncached / sequential reference on every input — the determinism
   contract PR 1 asserted in prose, now machine-checked on random inputs. *)
open Helpers
open Fastsc_device
open Fastsc_noise
open Fastsc_core

let bits = Int64.bits_of_float

let float_arrays_bit_identical a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> bits x = bits y) a b

(* -- Pool: jobs=1 vs jobs=N element-identical ------------------------------ *)

let xs_arb = Proptest.list ~max_len:60 (Proptest.int_range (-50) 50)

let prop_pool_matches_sequential =
  prop_case "Pool.map at any job count equals List.map" xs_arb (fun xs ->
      let f x = (x * x) - (3 * x) + 7 in
      let reference = List.map f xs in
      Pool.map ~jobs:1 f xs = reference && Pool.map ~jobs:4 f xs = reference)

let prop_pool_array_matches_sequential =
  prop_case "Pool.mapi_array at any job count equals Array.mapi"
    (Proptest.array ~max_len:60 (Proptest.float_range 0.0 1.0))
    (fun xs ->
      let f i x = (x *. float_of_int i) +. sin x in
      let reference = Array.mapi f xs in
      float_arrays_bit_identical (Pool.mapi_array ~jobs:1 f xs) reference
      && float_arrays_bit_identical (Pool.mapi_array ~jobs:4 f xs) reference)

(* -- Crosstalk: cache-on vs cache-off bit-identical ------------------------ *)

let pair_params =
  Proptest.make
    ~print:(fun (g, (oa, ob), t, wc) ->
      Printf.sprintf "g=%.4f omega_a=%.4f omega_b=%.4f t=%.1f worst_case=%b" g oa ob t wc)
    (fun rng ->
      let g = Rng.uniform rng 0.001 0.05 in
      let oa = Rng.uniform rng 4.5 6.5 in
      let ob = Rng.uniform rng 4.5 6.5 in
      let t = Rng.uniform rng 10.0 200.0 in
      let wc = Rng.bool rng in
      (g, (oa, ob), t, wc))

let prop_pair_error_cache_transparent =
  prop_case ~count:50 "pair_error: miss, hit and recompute are bit-identical" pair_params
    (fun (g, (omega_a, omega_b), t, worst_case) ->
      let compute () =
        Crosstalk.pair_error ~worst_case ~alpha_a:(-0.3) ~alpha_b:(-0.3) ~g ~omega_a ~omega_b
          ~t ()
      in
      Crosstalk.reset_pair_cache ();
      let cold = compute () in
      let hit = compute () in
      Crosstalk.reset_pair_cache ();
      let recomputed = compute () in
      bits cold = bits hit && bits cold = bits recomputed)

(* -- Freq_alloc: cached solves bit-identical to fresh solves --------------- *)

let device = Device.create ~seed:11 (Topology.grid 3 3)

let multiplicity_arb =
  Proptest.make
    ~print:(fun m ->
      "[|" ^ String.concat "; " (Array.to_list (Array.map string_of_int m)) ^ "|]")
    ~shrink:(Proptest.Shrink.array ~elt:Proptest.Shrink.int)
    (Proptest.Gen.array ~min_len:1 ~max_len:3 (Proptest.Gen.int_range 0 5))

let prop_interaction_cache_transparent =
  prop_case ~count:25 "interaction: hit and post-reset recompute are bit-identical"
    multiplicity_arb (fun multiplicity ->
      let n_colors = Array.length multiplicity in
      let solve () = Freq_alloc.interaction device ~n_colors ~multiplicity in
      Freq_alloc.reset_solver_cache ();
      let cold = solve () in
      let hit = solve () in
      Freq_alloc.reset_solver_cache ();
      let recomputed = solve () in
      float_arrays_bit_identical cold.Freq_alloc.freqs hit.Freq_alloc.freqs
      && float_arrays_bit_identical cold.Freq_alloc.freqs recomputed.Freq_alloc.freqs
      && bits cold.Freq_alloc.delta = bits hit.Freq_alloc.delta
      && bits cold.Freq_alloc.delta = bits recomputed.Freq_alloc.delta)

(* -- solved assignments satisfy the paper's separation constraints -------- *)

let prop_interaction_separations_hold =
  prop_case ~count:25 "interaction frequencies respect delta and the sidebands"
    multiplicity_arb (fun multiplicity ->
      let n_colors = Array.length multiplicity in
      let a = Freq_alloc.interaction device ~n_colors ~multiplicity in
      let alpha = -.(Device.params device).Device.anharmonicity in
      let freqs = a.Freq_alloc.freqs in
      let ok = ref true in
      Array.iteri
        (fun i fi ->
          Array.iteri
            (fun j fj ->
              if i <> j then begin
                if Float.abs (fi -. fj) +. 1e-9 < a.Freq_alloc.delta then ok := false;
                if Float.abs (fi +. alpha -. fj) +. 1e-9 < a.Freq_alloc.delta then ok := false
              end)
            freqs)
        freqs;
      !ok)

let suite =
  [
    prop_pool_matches_sequential;
    prop_pool_array_matches_sequential;
    prop_pair_error_cache_transparent;
    prop_interaction_cache_transparent;
    prop_interaction_separations_hold;
  ]
