(* Property suites for the rival-compiler zoo (ISSUE 9 satellites): legal
   interleaving (no two simultaneous gates share a qubit — part of
   Schedule.check), murali-delay output unitarily equivalent to its input,
   and cqc-synergy routed circuits respecting connectivity on a zoo of
   topologies. *)
open Helpers
open Fastsc_device
open Fastsc_core

(* All-to-all device: murali-delay consumes native circuits directly, so an
   all-to-all coupling lets random logical circuits schedule without any
   routing step in between. *)
let complete4 = lazy (Device.create ~seed:11 (Topology.complete 4))

let small_circuits = Proptest.circuit ~max_qubits:4 ~max_gates:12 ()

let flatten_schedule n sched =
  (* steps in order; within a step gates act on disjoint qubits (checked
     separately), so any within-step order yields the same operator *)
  Circuit.of_gates n
    (List.concat_map
       (fun step ->
         List.map
           (fun app -> (app.Gate.gate, Array.to_list app.Gate.qubits))
           step.Schedule.gates)
       sched.Schedule.steps)

let prop_murali_preserves_unitary =
  prop_case ~count:60 "murali-delay schedule is unitarily equivalent to its input"
    small_circuits (fun c ->
      let d = Lazy.force complete4 in
      let native = Decompose.run Decompose.Hybrid c in
      let sched, _delayed = Murali_delay.pack ~algorithm:"murali-delay" d native in
      Result.is_ok (Schedule.check sched)
      && Schedule.n_gates sched = Circuit.length native
      && equal_up_to_phase
           (circuit_unitary (flatten_schedule (Circuit.n_qubits native) sched))
           (circuit_unitary native))

let prop_murali_legal_interleaving =
  prop_case ~count:60 "murali-delay steps are qubit-disjoint" small_circuits (fun c ->
      let d = Lazy.force complete4 in
      let sched, _ =
        Murali_delay.pack ~algorithm:"murali-delay" d (Decompose.run Decompose.Hybrid c)
      in
      List.for_all
        (fun step ->
          let qubits =
            List.concat_map
              (fun app -> Array.to_list app.Gate.qubits)
              step.Schedule.gates
          in
          List.length qubits = List.length (List.sort_uniq compare qubits))
        sched.Schedule.steps)

(* The topology zoo for routing properties: connected graphs of assorted
   shapes, all at least 4 vertices so any generated circuit fits. *)
let topologies =
  lazy
    [|
      Topology.grid 2 2;
      Topology.grid 2 3;
      Topology.grid 3 3;
      Topology.ring 5;
      Topology.ring 8;
      Topology.path 6;
      Topology.heavy_hex 1 1;
      Topology.octagonal 1 1;
    |]

let widen device circuit =
  let n = Graph.n_vertices (Device.graph device) in
  let b = Circuit.builder n in
  Array.iter
    (fun app -> Circuit.add b app.Gate.gate (Array.to_list app.Gate.qubits))
    (Circuit.instructions circuit);
  Circuit.finish b

let topology_and_circuit =
  Proptest.pair (Proptest.int_range 0 (Array.length (Lazy.force topologies) - 1))
    small_circuits

let prop_cqc_respects_connectivity =
  prop_case ~count:50 "cqc-synergy routing respects connectivity on the topology zoo"
    topology_and_circuit (fun (i, c) ->
      let topo = (Lazy.force topologies).(i) in
      let d = Device.create ~seed:2020 topo in
      let result, _ = Cqc_synergy.route d (widen d c) in
      Mapping.verify (Device.graph d) result.Mapping.circuit)

let prop_cqc_schedule_legal =
  prop_case ~count:30 "cqc-synergy full run yields a valid, qubit-disjoint schedule"
    topology_and_circuit (fun (i, c) ->
      let topo = (Lazy.force topologies).(i) in
      let d = Device.create ~seed:2020 topo in
      let sched, _stats = Cqc_synergy.run d (widen d c) in
      Result.is_ok (Schedule.check sched))

let suite =
  [
    prop_murali_preserves_unitary;
    prop_murali_legal_interleaving;
    prop_cqc_respects_connectivity;
    prop_cqc_schedule_legal;
  ]
