open Helpers

let test_welsh_powell_proper () =
  let g = random_graph 1 30 0.3 in
  let c = Coloring.welsh_powell g in
  check_true "proper" (Coloring.is_proper g c)

let test_dsatur_proper () =
  let g = random_graph 2 30 0.3 in
  check_true "proper" (Coloring.is_proper g (Coloring.dsatur g))

let test_natural_proper () =
  let g = random_graph 3 30 0.3 in
  check_true "proper" (Coloring.is_proper g (Coloring.natural g))

let test_complete_graph_colors () =
  let g = (Topology.complete 6).Topology.graph in
  check_int "K6 needs 6 colors" 6 (Coloring.n_colors (Coloring.welsh_powell g));
  check_int "dsatur too" 6 (Coloring.n_colors (Coloring.dsatur g))

let test_bipartite_two_colors () =
  let g = (Topology.grid 4 4).Topology.graph in
  match Coloring.two_color g with
  | None -> Alcotest.fail "grid is bipartite"
  | Some c ->
    check_true "proper" (Coloring.is_proper g c);
    check_int "two colors" 2 (Coloring.n_colors c)

let test_two_color_rejects_odd_cycle () =
  let g = (Topology.ring 5).Topology.graph in
  check_true "odd ring not bipartite" (Coloring.two_color g = None)

let test_two_color_disconnected () =
  let g = Graph.of_edges 4 [ (0, 1); (2, 3) ] in
  match Coloring.two_color g with
  | None -> Alcotest.fail "forest is bipartite"
  | Some c -> check_true "proper" (Coloring.is_proper g c)

let test_welsh_powell_bound () =
  (* Welsh-Powell guarantee: at most (max degree + 1) colors. *)
  let g = random_graph 4 40 0.2 in
  let c = Coloring.welsh_powell g in
  check_true "within degree bound" (Coloring.n_colors c <= Graph.max_degree g + 1)

let test_greedy_order_validation () =
  let g = Graph.create 3 in
  Alcotest.check_raises "bad order"
    (Invalid_argument "Coloring.greedy: order must list every vertex exactly once")
    (fun () -> ignore (Coloring.greedy ~order:[ 0; 1 ] g));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Coloring.greedy: order must list every vertex exactly once")
    (fun () -> ignore (Coloring.greedy ~order:[ 0; 1; 1 ] g))

let test_color_classes () =
  let g = (Topology.path 4).Topology.graph in
  let c = Coloring.natural g in
  let classes = Coloring.color_classes c in
  let total = Array.fold_left (fun acc l -> acc + List.length l) 0 classes in
  check_int "classes cover all vertices" 4 total;
  Array.iteri
    (fun k members -> List.iter (fun v -> check_int "class matches color" k c.(v)) members)
    classes

let test_restrict () =
  let g = (Topology.path 4).Topology.graph in
  let c = Coloring.natural g in
  Alcotest.(check (list (pair int int)))
    "restrict" [ (1, c.(1)); (3, c.(3)) ] (Coloring.restrict c [ 1; 3 ])

let test_empty_coloring () =
  check_int "no colors" 0 (Coloring.n_colors [||])

let test_k_colorable_exact () =
  let k4 = (Topology.complete 4).Topology.graph in
  check_true "K4 not 3-colorable" (Coloring.k_colorable k4 3 = None);
  (match Coloring.k_colorable k4 4 with
  | Some c -> check_true "proper 4-coloring" (Coloring.is_proper k4 c && Coloring.n_colors c <= 4)
  | None -> Alcotest.fail "K4 is 4-colorable");
  let ring5 = (Topology.ring 5).Topology.graph in
  check_true "odd ring not 2-colorable" (Coloring.k_colorable ring5 2 = None);
  check_true "odd ring 3-colorable" (Coloring.k_colorable ring5 3 <> None)

let test_chromatic_number () =
  check_int "K6" 6 (Coloring.chromatic_number (Topology.complete 6).Topology.graph);
  check_int "even ring" 2 (Coloring.chromatic_number (Topology.ring 6).Topology.graph);
  check_int "odd ring" 3 (Coloring.chromatic_number (Topology.ring 7).Topology.graph);
  check_int "empty graph" 1 (Coloring.chromatic_number (Graph.create 5));
  check_int "zero vertices" 0 (Coloring.chromatic_number (Graph.create 0))

let test_budget_exhaustion () =
  let g = random_graph 9 25 0.5 in
  check_true "tiny budget fails loudly"
    (try
       ignore (Coloring.chromatic_number ~budget:3 g);
       false
     with Failure _ -> true)

let prop_greedy_never_beats_exact =
  qcheck_case ~count:25 "welsh-powell >= chromatic number" QCheck.(int_range 1 5000) (fun seed ->
      let g = random_graph seed 12 0.4 in
      Coloring.n_colors (Coloring.welsh_powell g) >= Coloring.chromatic_number g)

let prop_all_heuristics_proper =
  qcheck_case "all heuristics give proper colorings" QCheck.(pair (int_range 1 10_000) (int_range 2 25))
    (fun (seed, n) ->
      let g = random_graph seed n 0.4 in
      Coloring.is_proper g (Coloring.welsh_powell g)
      && Coloring.is_proper g (Coloring.dsatur g)
      && Coloring.is_proper g (Coloring.natural g))

let prop_dsatur_no_worse_on_bipartite =
  qcheck_case "dsatur is exact on even rings" QCheck.(int_range 2 12) (fun half ->
      let g = (Topology.ring (2 * half)).Topology.graph in
      Coloring.n_colors (Coloring.dsatur g) = 2)

let suite =
  [
    Alcotest.test_case "welsh-powell proper" `Quick test_welsh_powell_proper;
    Alcotest.test_case "dsatur proper" `Quick test_dsatur_proper;
    Alcotest.test_case "natural proper" `Quick test_natural_proper;
    Alcotest.test_case "complete graph" `Quick test_complete_graph_colors;
    Alcotest.test_case "bipartite 2 colors" `Quick test_bipartite_two_colors;
    Alcotest.test_case "odd cycle rejected" `Quick test_two_color_rejects_odd_cycle;
    Alcotest.test_case "disconnected bipartite" `Quick test_two_color_disconnected;
    Alcotest.test_case "welsh-powell bound" `Quick test_welsh_powell_bound;
    Alcotest.test_case "greedy order validation" `Quick test_greedy_order_validation;
    Alcotest.test_case "color classes" `Quick test_color_classes;
    Alcotest.test_case "restrict" `Quick test_restrict;
    Alcotest.test_case "empty coloring" `Quick test_empty_coloring;
    Alcotest.test_case "k-colorable exact" `Quick test_k_colorable_exact;
    Alcotest.test_case "chromatic number" `Quick test_chromatic_number;
    Alcotest.test_case "budget exhaustion" `Quick test_budget_exhaustion;
    prop_greedy_never_beats_exact;
    prop_all_heuristics_proper;
    prop_dsatur_no_worse_on_bipartite;
  ]
