(* The rival-compiler zoo (ISSUE 9): Murali-style delay scheduling and CQC
   synergistic routing+scheduling as registry schedulers, plus the
   pass-graph plumbing that lets cqc-synergy consume the unrouted circuit.
   The threshold-invariant and swap-score tests are the directed catchers
   for the murali-delay-threshold and cqc-swap-score fault entries. *)
open Helpers
open Fastsc_device
open Fastsc_core
open Fastsc_benchmarks

let device ?(seed = 21) ?(n = 3) () = Device.create ~seed (Topology.grid n n)

let qaoa9 () = Qaoa.circuit (Rng.create 7) ~n:9 ()

let xeb9 () =
  let rng = Rng.create 42 in
  let topo = Topology.grid 3 3 in
  let classes = Topology.grid_edge_classes 3 3 in
  let classes =
    List.map
      (fun (e, c) ->
        (e, match c with Topology.A -> 0 | Topology.B -> 1 | Topology.C -> 2 | Topology.D -> 3))
      classes
  in
  Xeb.circuit rng ~graph:topo.Topology.graph ~classes ~cycles:4 ()

(* -- murali-delay ------------------------------------------------------------ *)

let test_murali_valid_and_threshold_invariant () =
  (* The packer's acceptance invariant, re-checked from the outside exactly
     as the packer computes it: no two simultaneous two-qubit gates in any
     moment may exceed the delay threshold.  This is the directed catcher
     for FASTSC_FAULT=murali-delay-threshold (the flipped comparison packs
     conflicting pairs together, violating the invariant immediately). *)
  let d = device () in
  let threshold = Compile.default_options.Compile.delay_threshold in
  let ctx = Pass.execute ~algorithm:"murali-delay" d (qaoa9 ()) in
  let sched = Pass.Context.schedule_exn ctx in
  check_true "murali schedule valid" (Result.is_ok (Schedule.check sched));
  check_true "some gates were delayed" (Pass.Context.stat_int ctx "delayed" > 0);
  List.iter
    (fun step ->
      let two_qubit =
        List.filter_map
          (fun app ->
            match app.Gate.qubits with
            | [| a; b |] -> Some ((a, b), Device.gate_time d app.Gate.gate)
            | _ -> None)
          step.Schedule.gates
      in
      let rec pairs = function
        | [] -> ()
        | (p1, t1) :: rest ->
          List.iter
            (fun (p2, t2) ->
              let err =
                Murali_delay.simultaneous_error d ~t:(Float.max t1 t2) p1 p2
              in
              if err > threshold then
                Alcotest.failf
                  "simultaneous gates on (%d,%d) and (%d,%d) exceed the delay threshold \
                   (%.3e > %.3e)"
                  (fst p1) (snd p1) (fst p2) (snd p2) err threshold)
            rest;
          pairs rest
      in
      pairs two_qubit)
    sched.Schedule.steps

let test_murali_trace_is_native_pipeline () =
  (* murali-delay consumes native gates: it gets the classic six-pass
     front end, not the combined route-schedule stage *)
  let ctx = Pass.execute ~algorithm:"murali-delay" (device ()) (qaoa9 ()) in
  let passes = List.map (fun r -> r.Pass.Context.pass) (Pass.Context.trail ctx) in
  check_true "classic pipeline"
    (passes = [ "place"; "route"; "decompose"; "optimize"; "schedule"; "evaluate" ])

let test_headline_ordering () =
  (* the paper's headline comparison, in-repo (ISSUE 9 acceptance): on a
     parallelism-heavy mesh workload the frequency-aware scheduler beats
     Murali-style delays, which beat the naive uniform-frequency baseline *)
  let d = device () in
  let score algorithm =
    (Schedule.evaluate (Compile.run algorithm d (xeb9 ()))).Schedule.log10_success
  in
  let cd = score Compile.Color_dynamic in
  let md = score Compile.Murali_delay in
  let nv = score Compile.Naive in
  if not (cd > md && md > nv) then
    Alcotest.failf "headline ordering violated: color-dynamic %.3f, murali %.3f, naive %.3f"
      cd md nv

(* -- cqc-synergy ------------------------------------------------------------- *)

let widen device circuit =
  (* identity-place a logical circuit onto the full device width, as the
     route-schedule pass does *)
  let n = Graph.n_vertices (Device.graph device) in
  let b = Circuit.builder n in
  Array.iter
    (fun app -> Circuit.add b app.Gate.gate (Array.to_list app.Gate.qubits))
    (Circuit.instructions circuit);
  Circuit.finish b

let test_cqc_combined_pass_and_valid () =
  let d = device () in
  let ctx = Pass.execute ~algorithm:"cqc-synergy" d (qaoa9 ()) in
  let passes = List.map (fun r -> r.Pass.Context.pass) (Pass.Context.trail ctx) in
  check_true "pass-graph assembled from requirements"
    (passes = [ "place"; "route-schedule"; "evaluate" ]);
  check_true "canonical name recorded" (ctx.Pass.Context.algorithm = Some "cqc-synergy");
  let sched = Pass.Context.schedule_exn ctx in
  check_true "cqc schedule valid" (Result.is_ok (Schedule.check sched));
  check_true "metrics evaluated"
    ((Pass.Context.metrics_exn ctx).Schedule.success > 0.0)

let test_cqc_routing_respects_connectivity () =
  let d = device () in
  let placed = widen d (qaoa9 ()) in
  let result, _ = Cqc_synergy.route d placed in
  check_true "every two-qubit gate lands on a coupling"
    (Mapping.verify (Device.graph d) result.Mapping.circuit)

let test_cqc_conflict_pressure_matters () =
  (* The conflict-pressure term must actually steer SWAP selection: across a
     batch of mesh workloads, routing with the synergy weight must make
     strictly less total conflict pressure than depth-only routing, and at
     least one instance must differ.  FASTSC_FAULT=cqc-swap-score forces
     lambda to 0 inside route, which makes the two sides identical and
     fails this test. *)
  let total lambda =
    List.fold_left
      (fun acc seed ->
        let d = device ~seed () in
        let placed = widen d (Qaoa.circuit (Rng.create seed) ~n:9 ()) in
        let result, conflict = Cqc_synergy.route ~lambda d placed in
        check_true "routed circuit legal" (Mapping.verify (Device.graph d) result.Mapping.circuit);
        acc + conflict)
      0 [ 3; 5; 11; 21; 33 ]
  in
  let with_synergy = total 0.5 in
  let depth_only = total 0.0 in
  if not (with_synergy < depth_only) then
    Alcotest.failf
      "conflict-pressure term changed nothing (synergy total %d vs depth-only %d)"
      with_synergy depth_only

(* -- router registry --------------------------------------------------------- *)

let test_router_registry () =
  check_true "lookahead registered" (Pass.find_router "lookahead" <> None);
  check_true "sabre alias" (Pass.find_router "sabre" <> None);
  check_true "greedy registered" (Pass.find_router "greedy" <> None);
  (match Pass.find_router "nonsense" with
  | Some _ -> Alcotest.fail "nonsense router resolved"
  | None -> ());
  (match Pass.router_exn "nonsense" with
  | (module R : Pass.ROUTER) -> Alcotest.failf "router_exn returned %s" R.name
  | exception Invalid_argument msg ->
    check_true "error lists registered routers" (contains msg "lookahead"));
  (* both built-in routers produce a legal compilation end to end *)
  List.iter
    (fun router ->
      let options = { Compile.default_options with Compile.router } in
      let ctx = Pass.execute ~options ~algorithm:"color-dynamic" (device ()) (qaoa9 ()) in
      check_true (router ^ " router compiles")
        (Result.is_ok (Schedule.check (Pass.Context.schedule_exn ctx))))
    [ "greedy"; "lookahead" ]

let test_unknown_router_rejected () =
  let options = { Compile.default_options with Compile.router = "bogus" } in
  match Pass.execute ~options ~algorithm:"color-dynamic" (device ()) (qaoa9 ()) with
  | _ -> Alcotest.fail "unknown router accepted"
  | exception Invalid_argument msg -> check_true "names listed" (contains msg "greedy")

let suite =
  [
    Alcotest.test_case "murali valid + threshold invariant" `Quick
      test_murali_valid_and_threshold_invariant;
    Alcotest.test_case "murali uses the native pipeline" `Quick
      test_murali_trace_is_native_pipeline;
    Alcotest.test_case "headline: cd > murali > naive" `Quick test_headline_ordering;
    Alcotest.test_case "cqc combined pass + valid schedule" `Quick
      test_cqc_combined_pass_and_valid;
    Alcotest.test_case "cqc routing respects connectivity" `Quick
      test_cqc_routing_respects_connectivity;
    Alcotest.test_case "cqc conflict pressure matters" `Quick
      test_cqc_conflict_pressure_matters;
    Alcotest.test_case "router registry" `Quick test_router_registry;
    Alcotest.test_case "unknown router rejected" `Quick test_unknown_router_rejected;
  ]
