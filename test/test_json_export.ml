open Helpers
open Fastsc_device
open Fastsc_core

(* A tiny structural validator: balanced braces/brackets outside strings,
   and no trailing garbage — enough to catch emitter bugs. *)
let well_formed text =
  let depth = ref 0 and in_string = ref false and escaped = ref false and ok = ref true in
  String.iter
    (fun c ->
      if !in_string then begin
        if !escaped then escaped := false
        else if c = '\\' then escaped := true
        else if c = '"' then in_string := false
      end
      else
        match c with
        | '"' -> in_string := true
        | '{' | '[' -> incr depth
        | '}' | ']' ->
          decr depth;
          if !depth < 0 then ok := false
        | _ -> ())
    text;
  !ok && !depth = 0 && not !in_string

let test_json_scalars () =
  check_true "null" (Json.to_string Json.Null = "null");
  check_true "bool" (Json.to_string (Json.Bool true) = "true");
  check_true "int" (Json.to_string (Json.Int (-3)) = "-3");
  check_true "float has dot" (contains (Json.to_string (Json.Float 2.0)) "2.0");
  check_true "nan encoded as string" (contains (Json.to_string (Json.Float Float.nan)) "\"")

let test_json_escaping () =
  check_true "quote" (Json.escape "a\"b" = "\"a\\\"b\"");
  check_true "backslash" (Json.escape "a\\b" = "\"a\\\\b\"");
  check_true "newline" (Json.escape "a\nb" = "\"a\\nb\"");
  check_true "control" (Json.escape "\x01" = "\"\\u0001\"")

let test_json_compound () =
  let v = Json.Obj [ ("xs", Json.List [ Json.Int 1; Json.Int 2 ]); ("b", Json.Bool false) ] in
  let compact = Json.to_string ~pretty:false v in
  check_true "compact" (compact = "{\"xs\":[1,2],\"b\":false}");
  check_true "pretty well formed" (well_formed (Json.to_string v));
  check_true "empty containers" (Json.to_string (Json.List []) = "[]" && Json.to_string (Json.Obj []) = "{}")

(* -- the reader half: parse is the inverse of to_string --------------------- *)

let test_parse_round_trip () =
  let v =
    Json.Obj
      [
        ("null", Json.Null);
        ("flag", Json.Bool true);
        ("count", Json.Int (-7));
        ("ratio", Json.Float 0.125);
        ("label", Json.String "a\"b\\c\nd");
        ("xs", Json.List [ Json.Int 1; Json.Float 2.5; Json.String "x" ]);
        ("nested", Json.Obj [ ("empty_list", Json.List []); ("empty_obj", Json.Obj []) ]);
      ]
  in
  check_true "pretty round-trips" (Json.parse (Json.to_string v) = v);
  check_true "compact round-trips" (Json.parse (Json.to_string ~pretty:false v) = v);
  (* the emitter prints floats with a dot or exponent precisely so the
     reader can keep Int and Float apart *)
  check_true "2.0 stays a float" (Json.parse (Json.to_string (Json.Float 2.0)) = Json.Float 2.0);
  check_true "2 stays an int" (Json.parse "2" = Json.Int 2)

let test_parse_escapes () =
  check_true "escape sequences decode"
    (Json.parse {|"a\"b\\c\nd\teA"|} = Json.String "a\"b\\c\nd\teA");
  check_true "whitespace tolerated"
    (Json.parse " {\n \"a\" : [ 1 , 2 ] \n} " = Json.Obj [ ("a", Json.List [ Json.Int 1; Json.Int 2 ]) ]);
  check_true "exponent forms" (Json.parse "1e3" = Json.Float 1000.0)

let test_parse_rejects_garbage () =
  let rejects text =
    match Json.parse text with
    | exception Json.Parse_error _ -> true
    | _ -> false
  in
  check_true "empty input" (rejects "");
  check_true "trailing garbage" (rejects "{} x");
  check_true "unterminated string" (rejects "\"abc");
  check_true "unbalanced brace" (rejects "{\"a\": 1");
  check_true "bare word" (rejects "frobnicate");
  check_true "missing comma" (rejects "[1 2]")

let test_parse_depth_limit () =
  (* adversarial nesting must fail with a clear parse error, not a stack
     overflow: the serve daemon parses attacker-controlled request lines *)
  let deep k = String.make k '[' ^ "0" ^ String.make k ']' in
  check_true "nesting at the limit parses"
    (match Json.parse (deep Json.max_depth) with
    | _ -> true
    | exception Json.Parse_error _ -> false);
  (match Json.parse (deep (Json.max_depth + 1)) with
  | _ -> Alcotest.fail "over-deep input parsed"
  | exception Json.Parse_error msg ->
    check_true "error names the nesting limit" (contains msg "nesting"));
  (* objects count against the same limit *)
  let deep_obj k =
    String.concat "" (List.init k (fun _ -> "{\"a\":"))
    ^ "0"
    ^ String.make k '}'
  in
  check_true "deep objects also rejected"
    (match Json.parse (deep_obj (Json.max_depth + 1)) with
    | _ -> false
    | exception Json.Parse_error _ -> true)

let test_member () =
  let v = Json.Obj [ ("a", Json.Int 1); ("b", Json.Null) ] in
  check_true "present" (Json.member "a" v = Some (Json.Int 1));
  check_true "explicit null is present" (Json.member "b" v = Some Json.Null);
  check_true "absent" (Json.member "c" v = None);
  check_true "non-object" (Json.member "a" (Json.Int 3) = None)

let schedule () =
  let device = Device.create ~seed:8 (Topology.grid 2 2) in
  let circuit = Circuit.of_gates 4 [ (Gate.H, [ 0 ]); (Gate.Iswap, [ 0; 1 ]); (Gate.Cz, [ 2; 3 ]) ] in
  Compile.schedule_native Compile.default_options Compile.Color_dynamic device circuit

let test_schedule_export () =
  let text = Export.to_string (Export.schedule (schedule ())) in
  check_true "well formed" (well_formed text);
  check_true "algorithm recorded" (contains text "color-dynamic");
  check_true "steps present" (contains text "\"steps\"");
  check_true "interacting pairs" (contains text "\"interacting\"");
  check_true "gate names" (contains text "\"iswap\"")

let test_metrics_export () =
  let m = Schedule.evaluate (schedule ()) in
  let text = Export.to_string (Export.metrics m) in
  check_true "well formed" (well_formed text);
  check_true "has success" (contains text "\"success\"");
  check_true "has depth" (contains text "\"depth\"")

let test_bundle_export () =
  let text = Export.to_string (Export.bundle (schedule ())) in
  check_true "well formed" (well_formed text);
  check_true "has schedule" (contains text "\"schedule\"");
  check_true "has metrics" (contains text "\"metrics\"");
  check_true "has waveforms" (contains text "\"waveforms\"");
  check_true "ramp segments appear" (contains text "\"ramp_from\"");
  let without = Export.to_string (Export.bundle ~include_waveforms:false (schedule ())) in
  check_true "waveforms omitted" (not (contains without "\"waveforms\""))

let prop_escape_roundtrip_safe =
  qcheck_case "escape always yields well-formed strings" QCheck.(string_of_size (Gen.int_range 0 40))
    (fun s -> well_formed (Json.escape s))

let suite =
  [
    Alcotest.test_case "scalars" `Quick test_json_scalars;
    Alcotest.test_case "escaping" `Quick test_json_escaping;
    Alcotest.test_case "compound" `Quick test_json_compound;
    Alcotest.test_case "parse round trip" `Quick test_parse_round_trip;
    Alcotest.test_case "parse escapes" `Quick test_parse_escapes;
    Alcotest.test_case "parse rejects garbage" `Quick test_parse_rejects_garbage;
    Alcotest.test_case "parse depth limit" `Quick test_parse_depth_limit;
    Alcotest.test_case "member" `Quick test_member;
    Alcotest.test_case "schedule export" `Quick test_schedule_export;
    Alcotest.test_case "metrics export" `Quick test_metrics_export;
    Alcotest.test_case "bundle export" `Quick test_bundle_export;
    prop_escape_roundtrip_safe;
  ]
