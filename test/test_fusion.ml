(* Directed tests for the gate-fusion pass (docs/DESIGN.md §14): run
   collapsing, forward/backward absorption into two-qubit gates, bit-exact
   identity dropping, and the unitary-equivalence oracle.  The
   [fusion-identity-skip] fault (end-of-circuit flush silently dropping
   pending fused 2x2s) must be caught here: every test whose circuit ends in
   a single-qubit run checks the fused unitary against the unfused oracle. *)
open Helpers

let amplitudes_match a b =
  let worst = ref 0.0 in
  Array.iteri (fun k x -> worst := Float.max !worst (Complex.norm (Complex.sub x b.(k)))) a;
  !worst <= 1e-9

let test_run_collapses_to_one () =
  (* A run of single-qubit gates on one qubit fuses to a single 2x2. *)
  let c = Circuit.of_gates 2 [ (Gate.H, [ 0 ]); (Gate.T, [ 0 ]); (Gate.S, [ 0 ]) ] in
  let t = Fusion.plan c in
  check_int "one fused op" 1 (Fusion.length t);
  check_int "source gates" 3 (Fusion.source_gates t);
  check_true "unitary preserved" (Fusion.verify c t)

let test_forward_absorption () =
  (* Pending 2x2s on both operands are absorbed into the 2q gate: the whole
     circuit becomes one 4x4. *)
  let c =
    Circuit.of_gates 2
      [ (Gate.Rz 0.3, [ 0 ]); (Gate.H, [ 0 ]); (Gate.Ry 1.1, [ 1 ]); (Gate.Cz, [ 0; 1 ]) ]
  in
  let t = Fusion.plan c in
  check_int "one fused op" 1 (Fusion.length t);
  check_true "unitary preserved" (Fusion.verify c t)

let test_trailing_run_absorbed_backward () =
  (* Trailing single-qubit runs fold backward into the last 2q gate that
     touched the qubit — every intervening op is disjoint, so this is legal.
     Under fusion-identity-skip the trailing runs vanish and verify fails. *)
  let c =
    Circuit.of_gates 2
      [ (Gate.Cz, [ 0; 1 ]); (Gate.H, [ 0 ]); (Gate.T, [ 1 ]); (Gate.S, [ 0 ]) ]
  in
  let t = Fusion.plan c in
  check_int "everything in the cz slot" 1 (Fusion.length t);
  check_true "unitary preserved" (Fusion.verify c t)

let test_lone_trailing_run_emitted () =
  (* No 2q gate to absorb into: the run must be emitted as a lone 2x2, not
     dropped (the seeded-fault failure mode). *)
  let c = Circuit.of_gates 1 [ (Gate.H, [ 0 ]); (Gate.T, [ 0 ]) ] in
  let t = Fusion.plan c in
  check_int "one lone 2x2" 1 (Fusion.length t);
  check_true "unitary preserved" (Fusion.verify c t)

let test_exact_identity_run_dropped () =
  (* X·X is the bit-exact identity: the run disappears entirely. *)
  let c = Circuit.of_gates 1 [ (Gate.X, [ 0 ]); (Gate.X, [ 0 ]) ] in
  let t = Fusion.plan c in
  check_int "empty plan" 0 (Fusion.length t);
  check_float ~eps:0.0 "state untouched" 1.0
    (Statevector.probability (Fusion.of_circuit c) 0)

let test_rotation_pair_not_dropped () =
  (* Rz(t)·Rz(-t) is the identity only up to rounding — the bit-exact test
     must keep it (dropping would silently change the unitary by ulps). *)
  (* Half-angle 0.15: cos^2 + sin^2 rounds to 1 - 1ulp, not 1.0. *)
  let c = Circuit.of_gates 1 [ (Gate.Rz 0.3, [ 0 ]); (Gate.Rz (-0.3), [ 0 ]) ] in
  let t = Fusion.plan c in
  check_int "kept as one 2x2" 1 (Fusion.length t);
  check_true "unitary preserved" (Fusion.verify c t)

let test_fused_state_matches_unfused () =
  (* A structured deep circuit: Grover on 5 qubits mixes 1q runs, Toffoli
     gadgets and X-conjugated oracles. *)
  let c = Fastsc_benchmarks.Grover.circuit ~rounds:2 ~n:5 () in
  let t = Fusion.plan c in
  check_true "plan is shorter" (Fusion.length t < Fusion.source_gates t);
  check_int "qubits" 5 (Fusion.n_qubits t);
  check_true "amplitudes match"
    (amplitudes_match
       (Statevector.amplitudes (Fusion.of_circuit c))
       (Statevector.amplitudes (Statevector.of_circuit c)))

let test_apply_jobs_bit_identical () =
  (* Sharded replay of a fused plan is bit-identical to serial replay. *)
  let c = Fastsc_benchmarks.Vqe.circuit (Rng.create 7) ~layers:2 ~n:5 () in
  let t = Fusion.plan c in
  let run jobs =
    let sv = Statevector.create 5 in
    Fusion.apply ~jobs sv t;
    sv
  in
  let serial = run 1 and sharded = run 3 in
  let sre, sim = Statevector.buffers serial in
  let pre, pim = Statevector.buffers sharded in
  let ok = ref true in
  for k = 0 to (1 lsl 5) - 1 do
    if
      Int64.bits_of_float sre.{k} <> Int64.bits_of_float pre.{k}
      || Int64.bits_of_float sim.{k} <> Int64.bits_of_float pim.{k}
    then ok := false
  done;
  check_true "bit-identical at jobs=1 vs 3" !ok

let test_apply_rejects_mismatched_state () =
  let t = Fusion.plan (Circuit.of_gates 3 [ (Gate.H, [ 0 ]) ]) in
  Alcotest.check_raises "qubit mismatch"
    (Invalid_argument "Fusion.apply: qubit count mismatch") (fun () ->
      Fusion.apply (Statevector.create 2) t)

let prop_verify_random_circuits =
  prop_case "fused plan matches unfused unitary on random circuits"
    (Proptest.circuit ~max_qubits:4 ~max_gates:20 ())
    (fun c -> Fusion.verify c (Fusion.plan c))

let suite =
  [
    Alcotest.test_case "run collapses" `Quick test_run_collapses_to_one;
    Alcotest.test_case "forward absorption" `Quick test_forward_absorption;
    Alcotest.test_case "backward absorption" `Quick test_trailing_run_absorbed_backward;
    Alcotest.test_case "lone trailing run" `Quick test_lone_trailing_run_emitted;
    Alcotest.test_case "identity run dropped" `Quick test_exact_identity_run_dropped;
    Alcotest.test_case "rotation pair kept" `Quick test_rotation_pair_not_dropped;
    Alcotest.test_case "fused state matches" `Quick test_fused_state_matches_unfused;
    Alcotest.test_case "sharded replay bit-identical" `Quick test_apply_jobs_bit_identical;
    Alcotest.test_case "mismatched state rejected" `Quick test_apply_rejects_mismatched_state;
    prop_verify_random_circuits;
  ]
