open Helpers
open Fastsc_util

(* Crash-safe snapshots: atomic write, checksummed load, quarantine instead
   of crash.  The corrupt-checksum test is the sentinel for the seeded
   snapshot-checksum-skip fault: with validation disabled, a flipped digit
   loads as if nothing were wrong. *)

let in_tmp name f =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "fastsc_snap_%d_%s" (Unix.getpid ()) name)
  in
  let cleanup () =
    List.iter
      (fun p -> try Sys.remove p with Sys_error _ -> ())
      [ path; path ^ ".tmp"; path ^ ".corrupt" ]
  in
  cleanup ();
  Fun.protect ~finally:cleanup (fun () -> f path)

let payload =
  Json.Obj [ ("cache", Json.List [ Json.Int 1; Json.Int 2; Json.Int 3 ]) ]

let test_fnv64_vectors () =
  (* published FNV-1a 64-bit vectors *)
  check_true "fnv64 of empty" (Snapshot.fnv64 "" = "cbf29ce484222325");
  check_true "fnv64 of \"a\"" (Snapshot.fnv64 "a" = "af63dc4c8601ec8c");
  check_true "fnv64 of \"foobar\"" (Snapshot.fnv64 "foobar" = "85944171f73967e8")

let test_round_trip () =
  in_tmp "round_trip" (fun path ->
      Snapshot.save ~path ~version:3 payload;
      check_true "no tmp file left behind" (not (Sys.file_exists (path ^ ".tmp")));
      match Snapshot.load ~path ~version:3 with
      | Snapshot.Loaded got -> check_true "payload survives" (got = payload)
      | Snapshot.Missing -> Alcotest.fail "snapshot missing after save"
      | Snapshot.Quarantined reason -> Alcotest.fail ("quarantined: " ^ reason))

let test_missing () =
  in_tmp "missing" (fun path ->
      check_true "absent file is Missing" (Snapshot.load ~path ~version:1 = Snapshot.Missing))

(* Sentinel for FASTSC_FAULT=snapshot-checksum-skip: with validation
   disabled, the flipped checksum digit loads as Loaded instead of being
   quarantined. *)
let test_corrupt_checksum_quarantined () =
  in_tmp "corrupt" (fun path ->
      Snapshot.save ~path ~version:1 payload;
      let text = In_channel.with_open_bin path In_channel.input_all in
      let marker = "\"checksum\":\"" in
      let index_of hay needle =
        let n = String.length needle in
        let rec go i =
          if i + n > String.length hay then Alcotest.fail "marker not found"
          else if String.sub hay i n = needle then i
          else go (i + 1)
        in
        go 0
      in
      let i = index_of text marker + String.length marker in
      let flipped = if text.[i] = '0' then '1' else '0' in
      let corrupted = String.mapi (fun j c -> if j = i then flipped else c) text in
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc corrupted);
      match Snapshot.load ~path ~version:1 with
      | Snapshot.Quarantined reason ->
        check_true "reason names the checksum" (contains reason "checksum");
        check_true "file moved aside" (Sys.file_exists (path ^ ".corrupt"));
        check_true "original gone" (not (Sys.file_exists path))
      | Snapshot.Loaded _ -> Alcotest.fail "corrupt snapshot loaded"
      | Snapshot.Missing -> Alcotest.fail "corrupt snapshot reported missing")

let test_garbage_quarantined () =
  in_tmp "garbage" (fun path ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc "not json at all {{{");
      match Snapshot.load ~path ~version:1 with
      | Snapshot.Quarantined _ -> check_true "file moved aside" (Sys.file_exists (path ^ ".corrupt"))
      | _ -> Alcotest.fail "garbage file not quarantined")

let test_version_mismatch_quarantined () =
  in_tmp "version" (fun path ->
      Snapshot.save ~path ~version:1 payload;
      match Snapshot.load ~path ~version:2 with
      | Snapshot.Quarantined reason -> check_true "reason names the version" (contains reason "version")
      | Snapshot.Loaded _ -> Alcotest.fail "wrong-version snapshot loaded"
      | Snapshot.Missing -> Alcotest.fail "wrong-version snapshot reported missing")

let test_save_overwrites_atomically () =
  in_tmp "overwrite" (fun path ->
      Snapshot.save ~path ~version:1 payload;
      let bigger = Json.Obj [ ("cache", Json.List (List.init 64 (fun i -> Json.Int i))) ] in
      Snapshot.save ~path ~version:1 bigger;
      match Snapshot.load ~path ~version:1 with
      | Snapshot.Loaded got -> check_true "second save wins" (got = bigger)
      | _ -> Alcotest.fail "overwritten snapshot unreadable")

(* Retry backs the snapshot writer; its schedule must be deterministic *)
let test_retry_backoff_schedule () =
  let b = Retry.backoff_ms ~base_ms:10.0 ~factor:2.0 ~max_ms:100.0 ~jitter:0.25 in
  check_true "deterministic" (b 3 = b 3);
  for k = 0 to 8 do
    let v = b k in
    check_true "non-negative" (v >= 0.0);
    check_true "bounded by jittered max" (v <= 100.0 *. 1.25)
  done;
  check_true "first backoff near base" (b 0 >= 7.5 && b 0 <= 12.5)

let test_retry_with_backoff () =
  let sleeps = ref [] in
  let sleep ms = sleeps := ms :: !sleeps in
  let calls = ref 0 in
  let r =
    Retry.with_backoff ~attempts:5 ~sleep (fun k ->
        incr calls;
        if k < 2 then failwith "flaky" else k)
  in
  check_int "succeeds on the third call" 2 r;
  check_int "two failures before" 3 !calls;
  check_int "slept between attempts" 2 (List.length !sleeps);
  (* exhausted attempts re-raise the last exception *)
  let fails = ref 0 in
  check_true "re-raises after attempts"
    (match Retry.with_backoff ~attempts:3 ~sleep (fun _ -> incr fails; failwith "never") with
    | _ -> false
    | exception Failure msg -> msg = "never");
  check_int "called exactly attempts times" 3 !fails;
  (* should_retry can veto *)
  let vetoed = ref 0 in
  check_true "veto stops retrying"
    (match
       Retry.with_backoff ~attempts:5 ~sleep
         ~should_retry:(function Failure _ -> false | _ -> true)
         (fun _ -> incr vetoed; failwith "fatal")
     with
    | _ -> false
    | exception Failure _ -> true);
  check_int "no retry after veto" 1 !vetoed

let test_solver_cache_export_import () =
  (* the daemon's actual payload: Freq_alloc's memo table codec *)
  let exported = Fastsc_core.Freq_alloc.export_cache () in
  let n = Fastsc_core.Freq_alloc.import_cache exported in
  check_true "import accepts its own export" (n >= 0);
  check_true "empty document imports zero entries"
    (Fastsc_core.Freq_alloc.import_cache (Json.Obj []) = 0)

let suite =
  [
    Alcotest.test_case "fnv64 vectors" `Quick test_fnv64_vectors;
    Alcotest.test_case "round trip" `Quick test_round_trip;
    Alcotest.test_case "missing file" `Quick test_missing;
    Alcotest.test_case "corrupt checksum quarantined" `Quick test_corrupt_checksum_quarantined;
    Alcotest.test_case "garbage quarantined" `Quick test_garbage_quarantined;
    Alcotest.test_case "version mismatch quarantined" `Quick test_version_mismatch_quarantined;
    Alcotest.test_case "save overwrites atomically" `Quick test_save_overwrites_atomically;
    Alcotest.test_case "retry backoff schedule" `Quick test_retry_backoff_schedule;
    Alcotest.test_case "retry with_backoff" `Quick test_retry_with_backoff;
    Alcotest.test_case "solver cache export/import" `Quick test_solver_cache_export_import;
  ]
