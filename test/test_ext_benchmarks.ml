open Helpers
open Fastsc_benchmarks

let test_cp_gadget_unitary () =
  (* CP(theta) = diag(1,1,1,e^{i theta}) up to global phase *)
  let theta = 0.9 in
  let gadget = Circuit.of_gates 2 (Qft.controlled_phase theta 1 0) in
  let expected =
    Matrix.of_arrays
      [|
        [| Complex.one; Complex.zero; Complex.zero; Complex.zero |];
        [| Complex.zero; Complex.one; Complex.zero; Complex.zero |];
        [| Complex.zero; Complex.zero; Complex.one; Complex.zero |];
        [| Complex.zero; Complex.zero; Complex.zero; Complex_ext.exp_i theta |];
      |]
  in
  check_true "cp gadget" (equal_up_to_phase (circuit_unitary gadget) expected)

let test_qft_unitary () =
  (* QFT matrix: entry (j,k) = omega^{jk} / sqrt(N) *)
  let n = 3 in
  let dim = 1 lsl n in
  let expected =
    Matrix.init dim dim (fun j k ->
        Complex_ext.scale
          (1.0 /. sqrt (float_of_int dim))
          (Complex_ext.exp_i (2.0 *. Float.pi *. float_of_int (j * k) /. float_of_int dim)))
  in
  let c = Qft.circuit ~n () in
  check_true "qft matrix" (equal_up_to_phase (circuit_unitary c) expected)

let test_qft_without_reversal () =
  let c = Qft.circuit ~reverse:false ~n:4 () in
  check_int "no swaps" 0 (Circuit.count (fun g -> g = Gate.Swap) c)

let test_qft_approximation_drops_gates () =
  let exact = Qft.circuit ~n:6 () in
  let approx = Qft.circuit ~approximation:2 ~n:6 () in
  check_true "fewer gates" (Circuit.length approx < Circuit.length exact)

let test_qft_validation () =
  check_true "n=0 rejected"
    (try
       ignore (Qft.circuit ~n:0 ());
       false
     with Invalid_argument _ -> true)

let test_ghz_chain_state () =
  let c = Ghz.circuit ~n:4 () in
  let sv = Statevector.of_circuit c in
  List.iter
    (fun (outcome, p) -> check_float ~eps:1e-12 "ghz outcome" p (Statevector.probability sv outcome))
    (Ghz.expected_probabilities ~n:4);
  check_float ~eps:1e-12 "nothing else" 0.0 (Statevector.probability sv 5)

let test_ghz_fanout_state_and_depth () =
  let chain = Ghz.circuit ~n:8 () in
  let tree = Ghz.circuit ~fanout:true ~n:8 () in
  (* same state *)
  check_float ~eps:1e-12 "same state" 1.0
    (Statevector.fidelity (Statevector.of_circuit chain) (Statevector.of_circuit tree));
  (* logarithmic vs linear depth *)
  check_true "tree shallower" (Layers.depth tree < Layers.depth chain);
  check_int "tree depth" 4 (Layers.depth tree)

let test_ghz_compiles_everywhere () =
  let device = Fastsc_device.Device.create ~seed:5 (Topology.grid 3 3) in
  List.iter
    (fun algorithm ->
      let s = Fastsc_core.Compile.run algorithm device (Ghz.circuit ~fanout:true ~n:9 ()) in
      check_true "valid" (Result.is_ok (Fastsc_core.Schedule.check s)))
    Fastsc_core.Compile.extended_algorithms

let test_qft_compiles () =
  let device = Fastsc_device.Device.create ~seed:5 (Topology.grid 3 3) in
  let s = Fastsc_core.Compile.run Fastsc_core.Compile.Color_dynamic device (Qft.circuit ~n:6 ()) in
  check_true "valid" (Result.is_ok (Fastsc_core.Schedule.check s))

let test_grover_data_qubits () =
  (* d data qubits + max 0 (d-3) v-chain ancillas must fit in n. *)
  List.iter
    (fun (n, d) -> check_int (Printf.sprintf "data_qubits %d" n) d (Grover.data_qubits ~n))
    [ (1, 1); (3, 3); (4, 3); (9, 6); (16, 9) ]

let test_grover_amplifies_marked_state () =
  (* n=4 hosts d=3 data qubits: success probability after the optimal two
     rounds is sin^2(5 asin(1/sqrt 8)) ~ 0.945. *)
  check_int "optimal rounds" 2 (Grover.optimal_rounds ~n:4);
  let sv = Statevector.of_circuit (Grover.circuit ~rounds:2 ~n:4 ()) in
  let marked = Statevector.probability sv 7 in
  check_true "marked state amplified" (marked > 0.9);
  (* sin^2(5 asin(1/sqrt 8)) = (2.75)^2 / 8 exactly. *)
  check_float ~eps:1e-9 "exact success probability" 0.9453125 marked

let test_grover_ancillas_restored () =
  (* Qubits >= data_qubits come back to |0>: no probability mass on any
     basis state with an ancilla bit set. *)
  let n = 9 in
  let d = Grover.data_qubits ~n in
  let sv = Statevector.of_circuit (Grover.circuit ~n ()) in
  let leaked = ref 0.0 in
  for k = 0 to (1 lsl n) - 1 do
    if k lsr d <> 0 then leaked := !leaked +. Statevector.probability sv k
  done;
  check_float ~eps:1e-9 "ancillas restored" 0.0 !leaked

let test_grover_custom_mark () =
  let sv = Statevector.of_circuit (Grover.circuit ~marked:2 ~rounds:2 ~n:4 ()) in
  check_true "custom mark amplified" (Statevector.probability sv 2 > 0.9)

let test_vqe_shape_and_determinism () =
  (* layers * (2n rotations + (n-1) cz) + closing 2n rotations. *)
  let n = 4 and layers = 2 in
  let c = Vqe.circuit (Rng.create 5) ~layers ~n () in
  check_int "gate count" ((layers * ((2 * n) + (n - 1))) + (2 * n)) (Circuit.length c);
  check_int "cz count" (layers * (n - 1)) (Circuit.n_two_qubit c);
  (* Same seed, same circuit: the ansatz is reproducible. *)
  let c' = Vqe.circuit (Rng.create 5) ~layers ~n () in
  check_float ~eps:1e-12 "same seed same state" 1.0
    (Statevector.fidelity (Statevector.of_circuit c) (Statevector.of_circuit c'))

let test_vqe_validation () =
  check_true "n=1 rejected"
    (try
       ignore (Vqe.circuit (Rng.create 0) ~n:1 ());
       false
     with Invalid_argument _ -> true)

let prop_qft_sizes =
  qcheck_case "qft gate count formula" QCheck.(int_range 1 8) (fun n ->
      let c = Qft.circuit ~reverse:false ~n () in
      (* n Hadamards + 5 gates per controlled phase, n(n-1)/2 phases *)
      Circuit.length c = n + (5 * n * (n - 1) / 2))

let prop_ghz_fanout_always_ghz =
  qcheck_case "fanout ghz correct for all sizes" QCheck.(int_range 2 10) (fun n ->
      let sv = Statevector.of_circuit (Ghz.circuit ~fanout:true ~n ()) in
      Float.abs (Statevector.probability sv 0 -. 0.5) < 1e-9
      && Float.abs (Statevector.probability sv ((1 lsl n) - 1) -. 0.5) < 1e-9)

let suite =
  [
    Alcotest.test_case "cp gadget" `Quick test_cp_gadget_unitary;
    Alcotest.test_case "qft unitary" `Quick test_qft_unitary;
    Alcotest.test_case "qft without reversal" `Quick test_qft_without_reversal;
    Alcotest.test_case "qft approximation" `Quick test_qft_approximation_drops_gates;
    Alcotest.test_case "qft validation" `Quick test_qft_validation;
    Alcotest.test_case "ghz chain state" `Quick test_ghz_chain_state;
    Alcotest.test_case "ghz fanout" `Quick test_ghz_fanout_state_and_depth;
    Alcotest.test_case "ghz compiles everywhere" `Quick test_ghz_compiles_everywhere;
    Alcotest.test_case "qft compiles" `Quick test_qft_compiles;
    Alcotest.test_case "grover data qubits" `Quick test_grover_data_qubits;
    Alcotest.test_case "grover amplification" `Quick test_grover_amplifies_marked_state;
    Alcotest.test_case "grover ancillas restored" `Quick test_grover_ancillas_restored;
    Alcotest.test_case "grover custom mark" `Quick test_grover_custom_mark;
    Alcotest.test_case "vqe shape" `Quick test_vqe_shape_and_determinism;
    Alcotest.test_case "vqe validation" `Quick test_vqe_validation;
    prop_qft_sizes;
    prop_ghz_fanout_always_ghz;
  ]
