open Helpers

let check_equivalent name circuit =
  let optimized = Optimize.run circuit in
  check_circuits_equivalent (name ^ " semantics") circuit optimized;
  optimized

let test_double_h_cancels () =
  let c = Circuit.of_gates 2 [ (Gate.H, [ 0 ]); (Gate.H, [ 0 ]); (Gate.X, [ 1 ]) ] in
  let o = check_equivalent "hh" c in
  check_int "only x survives" 1 (Circuit.length o)

let test_pauli_pairs_cancel () =
  let c =
    Circuit.of_gates 1
      [ (Gate.X, [ 0 ]); (Gate.X, [ 0 ]); (Gate.Y, [ 0 ]); (Gate.Y, [ 0 ]); (Gate.Z, [ 0 ]); (Gate.Z, [ 0 ]) ]
  in
  check_int "all gone" 0 (Circuit.length (check_equivalent "paulis" c))

let test_rotation_fusion () =
  let c = Circuit.of_gates 1 [ (Gate.Rz 0.4, [ 0 ]); (Gate.Rz 0.5, [ 0 ]) ] in
  let o = check_equivalent "rz fusion" c in
  check_int "one gate" 1 (Circuit.length o);
  match (Circuit.instructions o).(0).Gate.gate with
  | Gate.Rz t -> check_float ~eps:1e-12 "angle" 0.9 t
  | g -> Alcotest.failf "expected rz, got %s" (Gate.name g)

let test_rotation_fusion_to_zero () =
  let c = Circuit.of_gates 1 [ (Gate.Rx 0.7, [ 0 ]); (Gate.Rx (-0.7), [ 0 ]) ] in
  check_int "vanishes" 0 (Circuit.length (check_equivalent "rx zero" c))

let test_full_turn_removed () =
  let c = Circuit.of_gates 1 [ (Gate.Ry (2.0 *. Float.pi), [ 0 ]) ] in
  check_int "2pi rotation dropped" 0 (Circuit.length (Optimize.run c))

let test_identity_dropped () =
  let c = Circuit.of_gates 2 [ (Gate.I, [ 0 ]); (Gate.Cz, [ 0; 1 ]) ] in
  check_int "i dropped" 1 (Circuit.length (check_equivalent "identity" c))

let test_s_t_chains () =
  let c = Circuit.of_gates 1 [ (Gate.T, [ 0 ]); (Gate.T, [ 0 ]); (Gate.S, [ 0 ]) ] in
  (* T T -> S; S S -> Z *)
  let o = check_equivalent "tts" c in
  check_int "one gate" 1 (Circuit.length o);
  check_true "is z" ((Circuit.instructions o).(0).Gate.gate = Gate.Z)

let test_s_sdg_cancel () =
  let c = Circuit.of_gates 1 [ (Gate.S, [ 0 ]); (Gate.Sdg, [ 0 ]) ] in
  check_int "cancels" 0 (Circuit.length (check_equivalent "s sdg" c))

let test_cz_cancel_any_order () =
  let c = Circuit.of_gates 2 [ (Gate.Cz, [ 0; 1 ]); (Gate.Cz, [ 1; 0 ]) ] in
  check_int "cz pair" 0 (Circuit.length (check_equivalent "cz" c))

let test_cnot_orientation_matters () =
  let c = Circuit.of_gates 2 [ (Gate.Cnot, [ 0; 1 ]); (Gate.Cnot, [ 1; 0 ]) ] in
  let o = check_equivalent "cnot reversed" c in
  check_int "not cancelled" 2 (Circuit.length o);
  let c2 = Circuit.of_gates 2 [ (Gate.Cnot, [ 0; 1 ]); (Gate.Cnot, [ 0; 1 ]) ] in
  check_int "same orientation cancels" 0 (Circuit.length (check_equivalent "cnot same" c2))

let test_sqrt_iswap_fuses_to_iswap () =
  let c = Circuit.of_gates 2 [ (Gate.Sqrt_iswap, [ 0; 1 ]); (Gate.Sqrt_iswap, [ 0; 1 ]) ] in
  let o = check_equivalent "sqrt fuse" c in
  check_int "one gate" 1 (Circuit.length o);
  check_true "is iswap" ((Circuit.instructions o).(0).Gate.gate = Gate.Iswap)

let test_iswap_pair_to_zz () =
  let c = Circuit.of_gates 2 [ (Gate.Iswap, [ 0; 1 ]); (Gate.Iswap, [ 0; 1 ]) ] in
  let o = check_equivalent "iswap pair" c in
  check_int "two 1q gates" 2 (Circuit.length o);
  check_int "no 2q left" 0 (Circuit.n_two_qubit o)

let test_blocked_by_intervening_gate () =
  (* H . X . H on the same qubit must NOT cancel the Hs *)
  let c = Circuit.of_gates 1 [ (Gate.H, [ 0 ]); (Gate.X, [ 0 ]); (Gate.H, [ 0 ]) ] in
  check_int "nothing removed" 3 (Circuit.length (check_equivalent "blocked" c))

let test_commuting_past_other_wires () =
  (* H0 . X1 . H0: the X on qubit 1 does not block cancellation on qubit 0 *)
  let c = Circuit.of_gates 2 [ (Gate.H, [ 0 ]); (Gate.X, [ 1 ]); (Gate.H, [ 0 ]) ] in
  check_int "hs cancel across wires" 1 (Circuit.length (check_equivalent "wires" c))

let test_partial_2q_overlap_blocks () =
  (* CZ(0,1) . H(1) . CZ(0,1): the H blocks the CZ pair *)
  let c =
    Circuit.of_gates 2 [ (Gate.Cz, [ 0; 1 ]); (Gate.H, [ 1 ]); (Gate.Cz, [ 0; 1 ]) ]
  in
  check_int "blocked" 3 (Circuit.length (check_equivalent "2q blocked" c))

let test_chain_collapse () =
  (* a long alternating chain collapses to nothing over several passes *)
  let c =
    Circuit.of_gates 1
      [ (Gate.H, [ 0 ]); (Gate.X, [ 0 ]); (Gate.X, [ 0 ]); (Gate.H, [ 0 ]) ]
  in
  check_int "nested cancellation" 0 (Circuit.length (check_equivalent "chain" c))

let test_removed_helper () =
  let c = Circuit.of_gates 1 [ (Gate.H, [ 0 ]); (Gate.H, [ 0 ]) ] in
  check_int "removed" 2 (Optimize.removed c (Optimize.run c))

let test_decomposed_swap_shrinks () =
  (* CZ-decomposed SWAP.SWAP collapses completely through cascading
     H/H and CZ/CZ cancellations at the junction *)
  let c = Circuit.of_gates 2 [ (Gate.Swap, [ 0; 1 ]); (Gate.Swap, [ 0; 1 ]) ] in
  let native = Decompose.run Decompose.All_cz c in
  let o = check_equivalent "double swap" native in
  check_int "fully cancelled" 0 (Circuit.length o)

let random_circuit seed =
  let rng = Rng.create seed in
  let b = Circuit.builder 3 in
  for _ = 1 to 25 do
    match Rng.int rng 8 with
    | 0 -> Circuit.add b Gate.H [ Rng.int rng 3 ]
    | 1 -> Circuit.add b Gate.X [ Rng.int rng 3 ]
    | 2 -> Circuit.add b (Gate.Rz (Rng.uniform rng (-4.0) 4.0)) [ Rng.int rng 3 ]
    | 3 -> Circuit.add b (Gate.Rx (Rng.uniform rng (-4.0) 4.0)) [ Rng.int rng 3 ]
    | 4 -> Circuit.add b Gate.S [ Rng.int rng 3 ]
    | 5 -> Circuit.add b Gate.T [ Rng.int rng 3 ]
    | 6 ->
      let a = Rng.int rng 3 in
      Circuit.add b Gate.Cz [ a; (a + 1 + Rng.int rng 2) mod 3 ]
    | _ ->
      let a = Rng.int rng 3 in
      Circuit.add b Gate.Cnot [ a; (a + 1 + Rng.int rng 2) mod 3 ]
  done;
  Circuit.finish b

let prop_semantics_preserved =
  qcheck_case ~count:60 "optimization preserves unitaries" QCheck.(int_range 1 100_000)
    (fun seed ->
      let c = random_circuit seed in
      equal_up_to_phase (circuit_unitary (Optimize.run c)) (circuit_unitary c))

let prop_never_grows =
  qcheck_case ~count:60 "optimization never grows a circuit" QCheck.(int_range 1 100_000)
    (fun seed ->
      let c = random_circuit seed in
      Circuit.length (Optimize.run c) <= Circuit.length c)

let prop_idempotent =
  qcheck_case ~count:60 "optimization is idempotent" QCheck.(int_range 1 100_000)
    (fun seed ->
      let once = Optimize.run (random_circuit seed) in
      Circuit.length (Optimize.run once) = Circuit.length once)

let suite =
  [
    Alcotest.test_case "double h" `Quick test_double_h_cancels;
    Alcotest.test_case "pauli pairs" `Quick test_pauli_pairs_cancel;
    Alcotest.test_case "rotation fusion" `Quick test_rotation_fusion;
    Alcotest.test_case "rotation fusion to zero" `Quick test_rotation_fusion_to_zero;
    Alcotest.test_case "full turn removed" `Quick test_full_turn_removed;
    Alcotest.test_case "identity dropped" `Quick test_identity_dropped;
    Alcotest.test_case "s/t chains" `Quick test_s_t_chains;
    Alcotest.test_case "s sdg cancel" `Quick test_s_sdg_cancel;
    Alcotest.test_case "cz any order" `Quick test_cz_cancel_any_order;
    Alcotest.test_case "cnot orientation" `Quick test_cnot_orientation_matters;
    Alcotest.test_case "sqrt iswap fusion" `Quick test_sqrt_iswap_fuses_to_iswap;
    Alcotest.test_case "iswap pair to zz" `Quick test_iswap_pair_to_zz;
    Alcotest.test_case "blocked by gate" `Quick test_blocked_by_intervening_gate;
    Alcotest.test_case "commutes past wires" `Quick test_commuting_past_other_wires;
    Alcotest.test_case "partial overlap blocks" `Quick test_partial_2q_overlap_blocks;
    Alcotest.test_case "chain collapse" `Quick test_chain_collapse;
    Alcotest.test_case "removed helper" `Quick test_removed_helper;
    Alcotest.test_case "double swap shrinks" `Quick test_decomposed_swap_shrinks;
    prop_semantics_preserved;
    prop_never_grows;
    prop_idempotent;
  ]
