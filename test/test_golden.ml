(* Golden-output regression: the sweep engine's determinism contract says
   stdout is byte-identical at any job count (docs/MANUAL.md, Exp_common).
   Run the paper's worked example (fig6) and the decomposition study (fig7)
   through the real bench driver at jobs=1 and jobs=4 and diff the bytes. *)
open Helpers

let bench = Filename.concat (Filename.concat ".." "bench") "main.exe"

let run_driver ?(env = "") driver jobs =
  let out_file = Filename.temp_file "fastsc_golden" ".out" in
  (* stderr is not part of the contract (it carries the jobs note) *)
  let command =
    Printf.sprintf "%s%s --jobs %d %s > %s 2> /dev/null" env (Filename.quote bench) jobs driver
      (Filename.quote out_file)
  in
  let code = Sys.command command in
  let ic = open_in_bin out_file in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove out_file;
  check_int (Printf.sprintf "%s --jobs %d exits 0" driver jobs) 0 code;
  text

let test_fig6_byte_identical () =
  let serial = run_driver "fig6" 1 in
  let parallel = run_driver "fig6" 4 in
  check_true "fig6 produced the worked example" (contains serial "Fig 6");
  check_true "schedules printed" (contains serial "ColorDynamic");
  check_true "stdout byte-identical at jobs=1 and jobs=4" (String.equal serial parallel)

let test_fig6_stable_across_repeats () =
  let a = run_driver "fig6" 4 in
  let b = run_driver "fig6" 4 in
  check_true "repeat runs are byte-identical" (String.equal a b)

let test_fig7_byte_identical () =
  let serial = run_driver "fig7" 1 in
  let parallel = run_driver "fig7" 4 in
  check_true "fig7 produced the decomposition study" (contains serial "Fig 7");
  check_true "stdout byte-identical at jobs=1 and jobs=4" (String.equal serial parallel)

(* The validate driver runs Monte-Carlo trajectories through the parallel
   average_fidelity path; its stdout (fidelity columns included) must not
   depend on the job count.  FASTSC_VALIDATE_TRIALS keeps the golden run
   cheap. *)
let test_validate_byte_identical () =
  let env = "FASTSC_VALIDATE_TRIALS=25 " in
  let serial = run_driver ~env "validate" 1 in
  let parallel = run_driver ~env "validate" 4 in
  check_true "validate produced the heuristic table" (contains serial "Heuristic validation");
  check_true "trajectory column present" (contains serial "trajectories P");
  check_true "stdout byte-identical at jobs=1 and jobs=4" (String.equal serial parallel)

let suite =
  [
    Alcotest.test_case "fig6 jobs=1 vs jobs=4" `Quick test_fig6_byte_identical;
    Alcotest.test_case "fig6 repeatability" `Quick test_fig6_stable_across_repeats;
    Alcotest.test_case "fig7 jobs=1 vs jobs=4" `Quick test_fig7_byte_identical;
    Alcotest.test_case "validate jobs=1 vs jobs=4" `Quick test_validate_byte_identical;
  ]
