(* Golden-output regression: the sweep engine's determinism contract says
   stdout is byte-identical at any job count (docs/MANUAL.md, Exp_common).
   Run the paper's worked example (fig6) through the real bench driver at
   jobs=1 and jobs=4 and diff the bytes. *)
open Helpers

let bench = Filename.concat (Filename.concat ".." "bench") "main.exe"

let run_fig6 jobs =
  let out_file = Filename.temp_file "fastsc_golden" ".out" in
  (* stderr is not part of the contract (it carries the jobs note) *)
  let command =
    Printf.sprintf "%s --jobs %d fig6 > %s 2> /dev/null" (Filename.quote bench) jobs
      (Filename.quote out_file)
  in
  let code = Sys.command command in
  let ic = open_in_bin out_file in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove out_file;
  check_int (Printf.sprintf "fig6 --jobs %d exits 0" jobs) 0 code;
  text

let test_fig6_byte_identical () =
  let serial = run_fig6 1 in
  let parallel = run_fig6 4 in
  check_true "fig6 produced the worked example" (contains serial "Fig 6");
  check_true "schedules printed" (contains serial "ColorDynamic");
  check_true "stdout byte-identical at jobs=1 and jobs=4" (String.equal serial parallel)

let test_fig6_stable_across_repeats () =
  let a = run_fig6 4 in
  let b = run_fig6 4 in
  check_true "repeat runs are byte-identical" (String.equal a b)

let suite =
  [
    Alcotest.test_case "fig6 jobs=1 vs jobs=4" `Quick test_fig6_byte_identical;
    Alcotest.test_case "fig6 repeatability" `Quick test_fig6_stable_across_repeats;
  ]
