open Helpers

let solver_feasible () =
  let t = Fastsc_smt.Smt.create ~lo:5.0 ~hi:7.0 3 in
  Fastsc_smt.Smt.add_separation t 0 1;
  Fastsc_smt.Smt.add_separation t 1 2;
  Fastsc_smt.Smt.add_separation t 0 2;
  t

let test_solve_simple () =
  let t = solver_feasible () in
  match Fastsc_smt.Smt.solve t ~delta:0.5 with
  | None -> Alcotest.fail "expected feasible"
  | Some xs ->
    check_true "check passes" (Fastsc_smt.Smt.check t ~delta:0.5 xs);
    Array.iter (fun x -> check_true "bounds" (x >= 5.0 -. 1e-9 && x <= 7.0 +. 1e-9)) xs

let test_solve_infeasible () =
  let t = solver_feasible () in
  (* three values pairwise >= 1.5 apart cannot fit in a width-2 window *)
  check_true "infeasible" (Fastsc_smt.Smt.solve t ~delta:1.5 = None)

let test_solve_boundary () =
  let t = solver_feasible () in
  (* exactly delta = 1.0: values 5, 6, 7 *)
  match Fastsc_smt.Smt.solve t ~delta:1.0 with
  | None -> Alcotest.fail "boundary case should be feasible"
  | Some xs -> check_true "check" (Fastsc_smt.Smt.check t ~delta:1.0 xs)

let test_find_max_delta () =
  let t = solver_feasible () in
  match Fastsc_smt.Smt.find_max_delta ~tolerance:1e-6 t with
  | None -> Alcotest.fail "expected solution"
  | Some (delta, xs) ->
    check_float ~eps:1e-4 "max separation for 3 in [5,7]" 1.0 delta;
    check_true "witness valid" (Fastsc_smt.Smt.check t ~delta:(delta -. 1e-5) xs)

let test_find_max_delta_infeasible_bounds () =
  let t = Fastsc_smt.Smt.create ~lo:5.0 ~hi:7.0 2 in
  Fastsc_smt.Smt.set_bounds t 0 ~lo:6.0 ~hi:6.0;
  Fastsc_smt.Smt.set_bounds t 1 ~lo:6.0 ~hi:6.0;
  Fastsc_smt.Smt.add_separation t 0 1;
  (* delta = 0 is fine (both pinned to 6), any positive delta is not *)
  match Fastsc_smt.Smt.find_max_delta t with
  | None -> Alcotest.fail "delta = 0 is feasible"
  | Some (delta, _) -> check_float ~eps:1e-3 "only zero" 0.0 delta

let test_anharmonicity_offset () =
  (* |x0 + alpha - x1| >= delta with alpha = -0.2: x1 must avoid both x0 and
     the sideband x0 - 0.2 *)
  let t = Fastsc_smt.Smt.create ~lo:5.0 ~hi:5.5 2 in
  Fastsc_smt.Smt.add_separation t 0 1;
  Fastsc_smt.Smt.add_separation ~offset:(-0.2) t 0 1;
  match Fastsc_smt.Smt.solve t ~delta:0.15 with
  | None -> Alcotest.fail "feasible with sidebands"
  | Some xs ->
    check_true "plain separation" (Float.abs (xs.(0) -. xs.(1)) >= 0.15 -. 1e-6);
    check_true "sideband separation" (Float.abs (xs.(0) -. 0.2 -. xs.(1)) >= 0.15 -. 1e-6)

let test_self_sideband () =
  let t = Fastsc_smt.Smt.create ~lo:5.0 ~hi:7.0 1 in
  Fastsc_smt.Smt.add_separation ~offset:(-0.2) t 0 0;
  check_true "delta below |alpha| ok" (Fastsc_smt.Smt.solve t ~delta:0.1 <> None);
  check_true "delta above |alpha| unsat" (Fastsc_smt.Smt.solve t ~delta:0.3 = None)

let test_self_separation_rejected () =
  let t = Fastsc_smt.Smt.create 2 in
  Alcotest.check_raises "zero offset self constraint"
    (Invalid_argument "Smt.add_separation: |x - x| >= delta is unsatisfiable") (fun () ->
      Fastsc_smt.Smt.add_separation t 0 0)

let test_order_respected () =
  let t = Fastsc_smt.Smt.create ~lo:0.0 ~hi:10.0 3 in
  Fastsc_smt.Smt.add_separation t 0 1;
  Fastsc_smt.Smt.add_separation t 1 2;
  Fastsc_smt.Smt.add_separation t 0 2;
  match Fastsc_smt.Smt.solve ~order:[ 2; 0; 1 ] t ~delta:1.0 with
  | None -> Alcotest.fail "feasible"
  | Some xs ->
    check_true "x2 <= x0" (xs.(2) <= xs.(0) +. 1e-9);
    check_true "x0 <= x1" (xs.(0) <= xs.(1) +. 1e-9)

let test_order_wrong_length () =
  let t = Fastsc_smt.Smt.create 3 in
  Alcotest.check_raises "short order"
    (Invalid_argument "Smt.solve: order must list every variable exactly once") (fun () ->
      ignore (Fastsc_smt.Smt.solve ~order:[ 0 ] t ~delta:0.1))

let test_forbidden_zone () =
  let t = Fastsc_smt.Smt.create ~lo:5.0 ~hi:6.0 1 in
  let t = Fastsc_smt.Smt.add_forbidden t 0 ~center:5.5 in
  match Fastsc_smt.Smt.solve t ~delta:0.4 with
  | None -> Alcotest.fail "feasible outside the zone"
  | Some xs -> check_true "avoids center" (Float.abs (xs.(0) -. 5.5) >= 0.4 -. 1e-6)

let test_zero_vars () =
  let t = Fastsc_smt.Smt.create 0 in
  check_true "empty assignment" (Fastsc_smt.Smt.solve t ~delta:1.0 = Some [||])

let test_unordered_search_backtracks () =
  (* heterogeneous bounds force a specific value ordering *)
  let t = Fastsc_smt.Smt.create ~lo:0.0 ~hi:10.0 3 in
  Fastsc_smt.Smt.set_bounds t 0 ~lo:8.0 ~hi:10.0;
  Fastsc_smt.Smt.set_bounds t 1 ~lo:0.0 ~hi:2.0;
  Fastsc_smt.Smt.set_bounds t 2 ~lo:4.0 ~hi:6.0;
  Fastsc_smt.Smt.add_separation t 0 1;
  Fastsc_smt.Smt.add_separation t 1 2;
  Fastsc_smt.Smt.add_separation t 0 2;
  match Fastsc_smt.Smt.solve t ~delta:2.0 with
  | None -> Alcotest.fail "feasible via ordering 1 < 2 < 0"
  | Some xs -> check_true "valid" (Fastsc_smt.Smt.check t ~delta:2.0 xs)

let prop_max_delta_scales_inverse =
  (* k colors in [0, w]: max separation is w / (k - 1) *)
  qcheck_case "max delta equals width/(k-1)" QCheck.(pair (int_range 2 6) (float_range 1.0 4.0))
    (fun (k, w) ->
      let t = Fastsc_smt.Smt.create ~lo:0.0 ~hi:w k in
      for i = 0 to k - 1 do
        for j = i + 1 to k - 1 do
          Fastsc_smt.Smt.add_separation t i j
        done
      done;
      match Fastsc_smt.Smt.find_max_delta ~tolerance:1e-5 t with
      | None -> false
      | Some (delta, _) -> Float.abs (delta -. (w /. float_of_int (k - 1))) < 1e-3)

let prop_witness_always_checks =
  qcheck_case "solve witnesses always pass check"
    QCheck.(pair (int_range 1 5) (float_range 0.01 0.8))
    (fun (k, delta) ->
      let t = Fastsc_smt.Smt.create ~lo:0.0 ~hi:2.0 k in
      for i = 0 to k - 1 do
        for j = i + 1 to k - 1 do
          Fastsc_smt.Smt.add_separation t i j
        done
      done;
      match Fastsc_smt.Smt.solve t ~delta with
      | None -> true
      | Some xs -> Fastsc_smt.Smt.check t ~delta xs)

(* The single-pass resolver must land on exactly the floats the old
   retry-until-stable loop produced: witnesses are part of the golden
   determinism surface, so these pin exact values (eps 0), not tolerances. *)
let test_resolver_chained_zones_exact () =
  (* Overlapping forbidden zones around 1.0, 1.8, 2.6 with delta 0.5 chain
     into (0.5,1.5)(1.3,2.3)(2.1,3.1): starting at lo=1.0 the resolver hops
     endpoint to endpoint and stops exactly at 2.6 +. 0.5. *)
  let t = Fastsc_smt.Smt.create ~lo:1.0 ~hi:10.0 1 in
  let t = Fastsc_smt.Smt.add_forbidden t 0 ~center:1.0 in
  let t = Fastsc_smt.Smt.add_forbidden t 0 ~center:1.8 in
  let t = Fastsc_smt.Smt.add_forbidden t 0 ~center:2.6 in
  (match Fastsc_smt.Smt.solve t ~delta:0.5 with
  | None -> Alcotest.fail "chain is escapable"
  | Some xs -> check_float ~eps:0.0 "exact upper endpoint of the chain" (2.6 +. 0.5) xs.(0));
  (* A gap between zones is kept: disjoint zones stop the walk early. *)
  let t = Fastsc_smt.Smt.create ~lo:1.0 ~hi:10.0 1 in
  let t = Fastsc_smt.Smt.add_forbidden t 0 ~center:1.0 in
  let t = Fastsc_smt.Smt.add_forbidden t 0 ~center:4.0 in
  match Fastsc_smt.Smt.solve t ~delta:0.5 with
  | None -> Alcotest.fail "gap is reachable"
  | Some xs -> check_float ~eps:0.0 "lands in the first gap" (1.0 +. 0.5) xs.(0)

let test_resolver_separation_chain_exact () =
  (* Greedy placement under ~order with touching separation intervals:
     the witness is exactly 5, 6, 7. *)
  let t = solver_feasible () in
  match Fastsc_smt.Smt.solve ~order:[ 0; 1; 2 ] t ~delta:1.0 with
  | None -> Alcotest.fail "boundary chain is feasible"
  | Some xs ->
    check_float ~eps:0.0 "x0 at lo" 5.0 xs.(0);
    check_float ~eps:0.0 "x1 pushed one delta up" 6.0 xs.(1);
    check_float ~eps:0.0 "x2 pushed through both intervals" 7.0 xs.(2)

(* -- component decomposition, warm starts, ordering portfolio -------------- *)

let two_component_problem () =
  (* vars 0-1: a pair in [0,1]; vars 2-4: a triangle in [0,1] *)
  let t = Fastsc_smt.Smt.create ~lo:0.0 ~hi:1.0 5 in
  Fastsc_smt.Smt.add_separation t 0 1;
  Fastsc_smt.Smt.add_separation t 2 3;
  Fastsc_smt.Smt.add_separation t 3 4;
  Fastsc_smt.Smt.add_separation t 2 4;
  t

let test_component_partition () =
  let t = two_component_problem () in
  check_true "two components, members ascending"
    (Fastsc_smt.Smt.component_partition t = [ [ 0; 1 ]; [ 2; 3; 4 ] ]);
  let sparse = Fastsc_smt.Smt.create 3 in
  Fastsc_smt.Smt.add_separation sparse 0 2;
  check_true "unconstrained vars are singleton components"
    (Fastsc_smt.Smt.component_partition sparse = [ [ 0; 2 ]; [ 1 ] ])

let test_margin () =
  let t = solver_feasible () in
  (match Fastsc_smt.Smt.margin t [| 5.0; 6.0; 7.0 |] with
  | Some m -> check_float ~eps:1e-12 "margin is the smallest slack" 1.0 m
  | None -> Alcotest.fail "valid assignment has a margin");
  check_true "wrong length has no margin" (Fastsc_smt.Smt.margin t [| 5.0 |] = None);
  check_true "nan has no margin" (Fastsc_smt.Smt.margin t [| nan; 6.0; 7.0 |] = None);
  check_true "out of bounds has no margin" (Fastsc_smt.Smt.margin t [| 4.0; 6.0; 7.0 |] = None);
  (* the margin is exactly the largest delta at which the witness verifies *)
  check_true "verifies at the margin" (Fastsc_smt.Smt.verify t ~delta:1.0 [| 5.0; 6.0; 7.0 |]);
  check_true "fails just above it" (not (Fastsc_smt.Smt.verify t ~delta:1.01 [| 5.0; 6.0; 7.0 |]))

let test_solve_components_matches_solve () =
  let t = two_component_problem () in
  List.iter
    (fun delta ->
      let reference = Fastsc_smt.Smt.solve t ~delta in
      List.iter
        (fun jobs ->
          check_true
            (Printf.sprintf "jobs=%d delta=%.2f byte-identical to solve" jobs delta)
            (Fastsc_smt.Smt.solve_components ~jobs t ~delta = reference))
        [ 1; 3 ];
      match reference with
      | Some w -> check_true "witness verifies" (Fastsc_smt.Smt.verify t ~delta w)
      | None -> ())
    [ 0.0; 0.3; 0.5; 1.0 ]

let test_find_max_delta_components_min_merge () =
  let t = two_component_problem () in
  match Fastsc_smt.Smt.find_max_delta_components ~jobs:2 ~tolerance:1e-6 t with
  | None -> Alcotest.fail "feasible problem"
  | Some ((delta, w), infos) -> (
    (* the pair reaches 1.0 alone; the triangle caps the merge at 0.5 *)
    check_float ~eps:1e-4 "merged delta is the min over components" 0.5 delta;
    check_true "merged witness verifies" (Fastsc_smt.Smt.verify t ~delta w);
    match infos with
    | [ a; b ] ->
      check_true "pair members" (a.Fastsc_smt.Smt.members = [ 0; 1 ]);
      check_true "triangle members" (b.Fastsc_smt.Smt.members = [ 2; 3; 4 ]);
      check_float ~eps:1e-4 "pair local delta" 1.0 a.Fastsc_smt.Smt.local_delta;
      check_float ~eps:1e-4 "triangle local delta" 0.5 b.Fastsc_smt.Smt.local_delta
    | _ -> Alcotest.fail "expected two component solutions")

let test_warm_seeding () =
  let t = solver_feasible () in
  let dc, wc = Option.get (Fastsc_smt.Smt.find_max_delta ~tolerance:1e-6 t) in
  let dw, ww = Option.get (Fastsc_smt.Smt.find_max_delta ~tolerance:1e-6 ~warm:wc t) in
  check_true "warm witness verifies" (Fastsc_smt.Smt.verify t ~delta:dw ww);
  check_true "warm result within tolerance of cold" (Float.abs (dw -. dc) <= 1e-5);
  (* an invalid seed silently falls back to the cold path *)
  let df, _ =
    Option.get (Fastsc_smt.Smt.find_max_delta ~tolerance:1e-6 ~warm:[| nan; nan; nan |] t)
  in
  check_float ~eps:0.0 "garbage seed reproduces the cold result" dc df

let test_portfolio_winner () =
  (* order [0;1] forces x0 <= x1, impossible with these bounds; [1;0] wins *)
  let t = Fastsc_smt.Smt.create 2 in
  Fastsc_smt.Smt.set_bounds t 0 ~lo:0.5 ~hi:1.0;
  Fastsc_smt.Smt.set_bounds t 1 ~lo:0.0 ~hi:0.5;
  Fastsc_smt.Smt.add_separation t 0 1;
  (match Fastsc_smt.Smt.solve_portfolio ~jobs:2 t ~delta:0.6 ~orders:[ [ 0; 1 ]; [ 1; 0 ] ] with
  | Some (winner, w) ->
    check_int "first feasible order wins" 1 winner;
    check_true "winner witness verifies" (Fastsc_smt.Smt.verify t ~delta:0.6 w)
  | None -> Alcotest.fail "the second order is feasible");
  (match Fastsc_smt.Smt.solve_portfolio ~jobs:2 t ~delta:0.1 ~orders:[ [ 1; 0 ]; [ 1; 0 ] ] with
  | Some (winner, _) -> check_int "ties break to the lowest index" 0 winner
  | None -> Alcotest.fail "feasible either way");
  check_true "empty portfolio rejected"
    (try
       ignore (Fastsc_smt.Smt.solve_portfolio t ~delta:0.1 ~orders:[]);
       false
     with Invalid_argument _ -> true)

let test_find_max_delta_portfolio () =
  let t = Fastsc_smt.Smt.create 2 in
  Fastsc_smt.Smt.set_bounds t 0 ~lo:0.5 ~hi:1.0;
  Fastsc_smt.Smt.set_bounds t 1 ~lo:0.0 ~hi:0.5;
  Fastsc_smt.Smt.add_separation t 0 1;
  match
    Fastsc_smt.Smt.find_max_delta_portfolio ~jobs:2 ~tolerance:1e-6 ~delta_hi:2.0
      ~orders:[ [ 0; 1 ]; [ 1; 0 ] ] t
  with
  | None -> Alcotest.fail "feasible"
  | Some (winner, (delta, w)) ->
    check_int "the descending order carries the search" 1 winner;
    check_float ~eps:1e-4 "endpoints give the full width" 1.0 delta;
    check_true "final witness verifies" (Fastsc_smt.Smt.verify t ~delta w)

let test_portfolio_tie_break () =
  (* both orders feasible: the lowest index must win at any job count, no
     matter which pool task happens to finish first *)
  let t = Fastsc_smt.Smt.create ~lo:0.0 ~hi:1.0 2 in
  Fastsc_smt.Smt.add_separation t 0 1;
  List.iter
    (fun jobs ->
      match
        Fastsc_smt.Smt.solve_portfolio ~jobs t ~delta:0.3 ~orders:[ [ 0; 1 ]; [ 1; 0 ] ]
      with
      | Some (0, w) ->
        check_true "tie-break witness verifies" (Fastsc_smt.Smt.verify t ~delta:0.3 w)
      | Some (i, _) -> Alcotest.failf "expected winner 0, got %d at jobs=%d" i jobs
      | None -> Alcotest.failf "expected a feasible portfolio at jobs=%d" jobs)
    [ 1; 2; 4 ]

let test_portfolio_skips_infeasible_order () =
  (* x0 in [0.8, 1], x1 in [0, 0.2]: the ascending order [0;1] demands
     x0 <= x1 and is infeasible, so the race must fall through to [1;0] *)
  let t = Fastsc_smt.Smt.create 2 in
  Fastsc_smt.Smt.set_bounds t 0 ~lo:0.8 ~hi:1.0;
  Fastsc_smt.Smt.set_bounds t 1 ~lo:0.0 ~hi:0.2;
  Fastsc_smt.Smt.add_separation t 0 1;
  check_true "ascending order alone is infeasible"
    (Fastsc_smt.Smt.solve ~order:[ 0; 1 ] t ~delta:0.3 = None);
  List.iter
    (fun jobs ->
      match
        Fastsc_smt.Smt.solve_portfolio ~jobs t ~delta:0.3 ~orders:[ [ 0; 1 ]; [ 1; 0 ] ]
      with
      | Some (1, w) ->
        check_true "fallback witness verifies" (Fastsc_smt.Smt.verify t ~delta:0.3 w)
      | Some (i, _) -> Alcotest.failf "expected winner 1, got %d at jobs=%d" i jobs
      | None -> Alcotest.failf "expected order [1;0] feasible at jobs=%d" jobs)
    [ 1; 2; 4 ]

let suite =
  [
    Alcotest.test_case "solve simple" `Quick test_solve_simple;
    Alcotest.test_case "resolver chained zones exact" `Quick test_resolver_chained_zones_exact;
    Alcotest.test_case "resolver separation chain exact" `Quick test_resolver_separation_chain_exact;
    Alcotest.test_case "solve infeasible" `Quick test_solve_infeasible;
    Alcotest.test_case "solve boundary" `Quick test_solve_boundary;
    Alcotest.test_case "find max delta" `Quick test_find_max_delta;
    Alcotest.test_case "max delta with pinned bounds" `Quick test_find_max_delta_infeasible_bounds;
    Alcotest.test_case "anharmonicity offset" `Quick test_anharmonicity_offset;
    Alcotest.test_case "self sideband" `Quick test_self_sideband;
    Alcotest.test_case "self separation rejected" `Quick test_self_separation_rejected;
    Alcotest.test_case "order respected" `Quick test_order_respected;
    Alcotest.test_case "order wrong length" `Quick test_order_wrong_length;
    Alcotest.test_case "forbidden zone" `Quick test_forbidden_zone;
    Alcotest.test_case "zero vars" `Quick test_zero_vars;
    Alcotest.test_case "unordered backtracking" `Quick test_unordered_search_backtracks;
    Alcotest.test_case "component partition" `Quick test_component_partition;
    Alcotest.test_case "margin" `Quick test_margin;
    Alcotest.test_case "solve_components matches solve" `Quick test_solve_components_matches_solve;
    Alcotest.test_case "decomposed max delta min-merge" `Quick
      test_find_max_delta_components_min_merge;
    Alcotest.test_case "warm seeding" `Quick test_warm_seeding;
    Alcotest.test_case "portfolio winner" `Quick test_portfolio_winner;
    Alcotest.test_case "portfolio max delta" `Quick test_find_max_delta_portfolio;
    Alcotest.test_case "portfolio tie-break" `Quick test_portfolio_tie_break;
    Alcotest.test_case "portfolio skips infeasible order" `Quick
      test_portfolio_skips_infeasible_order;
    prop_max_delta_scales_inverse;
    prop_witness_always_checks;
  ]
