open Helpers

let sample () =
  Circuit.of_gates 3 [ (Gate.H, [ 0 ]); (Gate.Cnot, [ 0; 2 ]); (Gate.X, [ 1 ]) ]

let test_structure () =
  let text = Draw.circuit (sample ()) in
  let lines = String.split_on_char '\n' text in
  check_int "one row per qubit" 3 (List.length lines);
  check_true "labels wires" (contains text "q0");
  check_true "h drawn" (contains (List.nth lines 0) "h");
  check_true "control marker" (contains (List.nth lines 0) "*");
  check_true "target drawn" (contains (List.nth lines 2) "cnot");
  (* the middle qubit carries the link and its own gate *)
  check_true "link through q1" (contains (List.nth lines 1) "|");
  check_true "x drawn" (contains (List.nth lines 1) "x")

let test_rows_aligned () =
  let text = Draw.circuit (sample ()) in
  let widths = List.map String.length (String.split_on_char '\n' text) in
  check_true "equal widths" (List.for_all (fun w -> w = List.hd widths) widths)

let test_empty_circuit () =
  let text = Draw.circuit (Circuit.of_gates 2 []) in
  check_int "two bare wires" 2 (List.length (String.split_on_char '\n' text))

let test_wrapping () =
  let b = Circuit.builder 1 in
  for _ = 1 to 25 do
    Circuit.add b Gate.H [ 0 ]
  done;
  let text = Draw.circuit ~max_width:10 (Circuit.finish b) in
  (* 25 layers at 10 per bank = 3 banks separated by blank lines *)
  let banks = String.split_on_char '\n' text |> List.filter (fun l -> l = "") in
  check_int "bank separators" 2 (List.length banks)

let test_layer () =
  let text = Draw.layer (sample ()) 0 in
  check_true "layer 0 has h" (contains text "h");
  check_true "layer 0 lacks cnot" (not (contains text "cnot"));
  check_true "out of range"
    (try
       ignore (Draw.layer (sample ()) 99);
       false
     with Invalid_argument _ -> true)

let prop_row_count =
  qcheck_case "always one row per qubit per bank" QCheck.(pair (int_range 1 5) (int_range 0 30))
    (fun (n, gates) ->
      let b = Circuit.builder n in
      for i = 1 to gates do
        Circuit.add b (Gate.Rz (float_of_int i)) [ i mod n ]
      done;
      let text = Draw.circuit ~max_width:7 (Circuit.finish b) in
      let lines = String.split_on_char '\n' text in
      let non_blank = List.filter (fun l -> l <> "") lines in
      List.length non_blank mod n = 0)

let suite =
  [
    Alcotest.test_case "structure" `Quick test_structure;
    Alcotest.test_case "rows aligned" `Quick test_rows_aligned;
    Alcotest.test_case "empty circuit" `Quick test_empty_circuit;
    Alcotest.test_case "wrapping" `Quick test_wrapping;
    Alcotest.test_case "single layer" `Quick test_layer;
    prop_row_count;
  ]
