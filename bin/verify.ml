(* Tiered verification driver behind `make verify` (docs/DESIGN.md §11).

   Three tiers, each a list of report cells:

   - R (random): every property-based suite across a sweep matrix of base
     seeds x FASTSC_JOBS x FASTSC_PROPTEST_COUNT, so a property that only
     fails off the default seed, under a parallel pool, or at a larger case
     count still fails somewhere in the grid.
   - D (directed): the full unit + golden suite at serial and parallel job
     counts, the worked examples, and the seeded-fault sweep: every fault in
     Fault.catalog is injected via FASTSC_FAULT and at least one of its
     listed suites must fail — the mutation-style proof that the tests would
     catch a regression of that shape.
   - W (workload): end-to-end determinism of the paper experiments (fig6,
     fig7, table2, and the smt-scale sweep across topologies, byte-identical
     at FASTSC_JOBS=1 vs 4), then the perf gate: fresh pinned benchmark runs
     compared against bench/baselines/*.json.

   `--quick` is the pre-commit subset (R with a reduced matrix + D without
   the example programs; W skipped).  Every run writes a machine-readable
   verify_report.json; each failed cell's detail carries the exact command
   and environment to replay it. *)

let repo = Sys.getcwd ()

let test_exe = Filename.concat repo "_build/default/test/main.exe"

(* The golden and cli suites locate the bench and fastsc drivers by relative
   path (../bench/main.exe), so test cells run from the built test directory
   exactly like `dune runtest` does. *)
let test_dir = Filename.concat repo "_build/default/test"

let bench_exe = Filename.concat repo "_build/default/bench/main.exe"

let example_exe name = Filename.concat repo ("_build/default/examples/" ^ name ^ ".exe")

let examples = [ "quickstart"; "qaoa_maxcut"; "xeb_calibration"; "topology_explorer"; "error_diagnosis" ]

let scratch_root = Filename.concat repo "_build/verify"

let baseline_dir = Filename.concat repo "bench/baselines"

(* The proptest engine's fixed base seed lives in lib/proptest; the alternate
   sweep seed only has to be deterministic and different. *)
let alt_seed = 0x5eedc0de + 101

let prop_suites =
  [
    "proptest";
    "prop_smt";
    "prop_coloring";
    "prop_decompose";
    "prop_differential";
    "prop_sim";
    "prop_rivals";
  ]

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  end

let read_file path = In_channel.with_open_bin path In_channel.input_all

let tail ?(lines = 15) s =
  let all = String.split_on_char '\n' s in
  let n = List.length all in
  if n <= lines then s
  else String.concat "\n" (List.filteri (fun i _ -> i >= n - lines) all)

(* Run one shell command with an environment prefix.  By default stderr is
   merged into the captured output; determinism cells pass [~stdout_only:true]
   because only stdout is the byte-identity surface (the bench driver
   announces its job count on stderr).  Everything the driver spawns goes
   through here so a failed cell can always print how to reproduce itself. *)
let spawn ?dir ?(stdout_only = false) ~env cmd =
  mkdir_p scratch_root;
  let out = Filename.temp_file ~temp_dir:scratch_root "cell" ".log" in
  let assigns = String.concat " " (List.map (fun (k, v) -> Printf.sprintf "%s='%s'" k v) env) in
  let shown = (if assigns = "" then "" else assigns ^ " ") ^ cmd in
  let full =
    Printf.sprintf "%s%s > '%s' %s"
      (match dir with None -> "" | Some d -> Printf.sprintf "cd '%s' && " d)
      shown out
      (if stdout_only then "2> /dev/null" else "2>&1")
  in
  let t0 = Deadline.now_s () in
  let code = Sys.command full in
  let seconds = Deadline.now_s () -. t0 in
  let log = read_file out in
  Sys.remove out;
  (code, log, seconds, shown)

let cells : Fastsc_verify.Verify_report.cell list ref = ref []

let add c =
  let open Fastsc_verify.Verify_report in
  Printf.printf "  [%s] %-52s %s (%.1fs)\n%!" c.tier c.name
    (match c.outcome with Pass -> "ok" | Fail _ -> "FAIL")
    c.seconds;
  (match c.outcome with
  | Pass -> ()
  | Fail why -> Printf.printf "        %s\n%!" why);
  cells := !cells @ [ c ]

let fail_detail ~command log =
  [ ("command", Json.String command); ("log_tail", Json.String (tail log)) ]

(* -- tier R ---------------------------------------------------------------- *)

let tier_r ~quick () =
  let seeds = if quick then [ None ] else [ None; Some alt_seed ] in
  let jobses = if quick then [ 1; 4 ] else [ 1; 2; 4 ] in
  let counts = if quick then [ 25 ] else [ 60; 150 ] in
  List.iter
    (fun suite ->
      List.iter
        (fun seed ->
          List.iter
            (fun jobs ->
              List.iter
                (fun count ->
                  let env =
                    (match seed with
                    | None -> []
                    | Some s -> [ ("FASTSC_PROPTEST_SEED", string_of_int s) ])
                    @ [
                        ("FASTSC_JOBS", string_of_int jobs);
                        ("FASTSC_PROPTEST_COUNT", string_of_int count);
                      ]
                  in
                  let cmd = Printf.sprintf "'%s' test %s" test_exe suite in
                  let code, log, seconds, command = spawn ~dir:test_dir ~env cmd in
                  let name =
                    Printf.sprintf "%s seed=%s jobs=%d count=%d" suite
                      (match seed with None -> "default" | Some s -> string_of_int s)
                      jobs count
                  in
                  let outcome =
                    if code = 0 then Fastsc_verify.Verify_report.Pass
                    else
                      Fastsc_verify.Verify_report.Fail
                        (Printf.sprintf "exit %d — replay: %s" code command)
                  in
                  let detail =
                    if code = 0 then [] else fail_detail ~command log
                  in
                  add (Fastsc_verify.Verify_report.cell ~detail ~tier:"R" ~name ~seconds outcome))
                counts)
            jobses)
        seeds)
    prop_suites

(* -- tier D ---------------------------------------------------------------- *)

let suite_cell ?dir ~tier ~name ~env cmd =
  let code, log, seconds, command = spawn ?dir ~env cmd in
  let outcome =
    if code = 0 then Fastsc_verify.Verify_report.Pass
    else
      Fastsc_verify.Verify_report.Fail (Printf.sprintf "exit %d — replay: %s" code command)
  in
  let detail = if code = 0 then [] else fail_detail ~command log in
  add (Fastsc_verify.Verify_report.cell ~detail ~tier ~name ~seconds outcome)

let fault_sweep () =
  List.iter
    (fun spec ->
      let open Fault in
      (* run the fault's suites in order until one catches it; a fault nobody
         catches is the failure this tier exists to expose *)
      let t0 = Deadline.now_s () in
      let caught = ref None in
      let tried = ref [] in
      List.iter
        (fun suite ->
          if !caught = None then begin
            let env =
              [ ("FASTSC_FAULT", spec.name); ("FASTSC_PROPTEST_COUNT", "30") ]
            in
            let cmd = Printf.sprintf "'%s' test %s" test_exe suite in
            let code, _log, _dt, command = spawn ~dir:test_dir ~env cmd in
            tried := !tried @ [ (suite, code) ];
            if code <> 0 then caught := Some (suite, command)
          end)
        spec.suites;
      let seconds = Deadline.now_s () -. t0 in
      let name = Printf.sprintf "fault %s" spec.name in
      match !caught with
      | Some (suite, command) ->
        add
          (Fastsc_verify.Verify_report.cell
             ~detail:
               [ ("site", Json.String spec.site); ("caught_by", Json.String suite);
                 ("command", Json.String command) ]
             ~tier:"D" ~name ~seconds Fastsc_verify.Verify_report.Pass)
      | None ->
        add
          (Fastsc_verify.Verify_report.cell
             ~detail:[ ("site", Json.String spec.site) ]
             ~tier:"D" ~name ~seconds
             (Fastsc_verify.Verify_report.Fail
                (Printf.sprintf "no suite caught it (tried %s) — the fault at %s is invisible \
                                 to the tests"
                   (String.concat ", "
                      (List.map (fun (s, c) -> Printf.sprintf "%s:exit %d" s c) !tried))
                   spec.site))))
    Fault.catalog;
  (* a typo in FASTSC_FAULT must refuse to run, not silently inject nothing *)
  let env = [ ("FASTSC_FAULT", "no-such-fault") ] in
  let code, log, seconds, command =
    spawn ~dir:test_dir ~env (Printf.sprintf "'%s' test rng" test_exe)
  in
  add
    (Fastsc_verify.Verify_report.cell
       ~detail:(if code = 2 then [] else fail_detail ~command log)
       ~tier:"D" ~name:"fault (unknown name rejected)" ~seconds
       (if code = 2 then Fastsc_verify.Verify_report.Pass
        else
          Fastsc_verify.Verify_report.Fail
            (Printf.sprintf "expected exit 2 on an unknown fault name, got %d" code)))

let tier_d ~quick () =
  if not quick then
    suite_cell ~dir:test_dir ~tier:"D" ~name:"full suite jobs=1"
      ~env:[ ("FASTSC_JOBS", "1") ]
      (Printf.sprintf "'%s'" test_exe);
  suite_cell ~dir:test_dir ~tier:"D" ~name:"full suite jobs=4"
    ~env:[ ("FASTSC_JOBS", "4") ]
    (Printf.sprintf "'%s'" test_exe);
  if not quick then
    List.iter
      (fun e ->
        suite_cell ~tier:"D" ~name:(Printf.sprintf "example %s" e) ~env:[]
          (Printf.sprintf "'%s'" (example_exe e)))
      examples;
  fault_sweep ()

(* -- tier W ---------------------------------------------------------------- *)

let fresh_dir name =
  let dir = Filename.concat scratch_root name in
  let cmd = Printf.sprintf "rm -rf '%s'" dir in
  ignore (Sys.command cmd : int);
  mkdir_p dir;
  dir

let determinism_cell ~name ~env cmd =
  (* byte-compare stdout of a serial and a parallel leg — the determinism
     contract says the job count must be unobservable in the output *)
  let t0 = Deadline.now_s () in
  let dir1 = fresh_dir (name ^ ".jobs1") and dir4 = fresh_dir (name ^ ".jobs4") in
  let code1, log1, _, command1 =
    spawn ~dir:dir1 ~stdout_only:true ~env:(env @ [ ("FASTSC_JOBS", "1") ]) cmd
  in
  let code4, log4, _, command4 =
    spawn ~dir:dir4 ~stdout_only:true ~env:(env @ [ ("FASTSC_JOBS", "4") ]) cmd
  in
  let seconds = Deadline.now_s () -. t0 in
  let outcome =
    if code1 <> 0 then
      Fastsc_verify.Verify_report.Fail
        (Printf.sprintf "serial leg exit %d — replay: %s" code1 command1)
    else if code4 <> 0 then
      Fastsc_verify.Verify_report.Fail
        (Printf.sprintf "parallel leg exit %d — replay: %s" code4 command4)
    else if log1 <> log4 then
      Fastsc_verify.Verify_report.Fail "stdout differs between FASTSC_JOBS=1 and 4"
    else Fastsc_verify.Verify_report.Pass
  in
  let detail =
    match outcome with
    | Pass -> []
    | Fail _ ->
      [
        ("command_jobs1", Json.String command1);
        ("command_jobs4", Json.String command4);
        ("jobs1_tail", Json.String (tail log1));
        ("jobs4_tail", Json.String (tail log4));
      ]
  in
  add
    (Fastsc_verify.Verify_report.cell ~detail ~tier:"W"
       ~name:(Printf.sprintf "determinism %s" name)
       ~seconds outcome)

let smt_scale_determinism topology =
  let env =
    [
      ("FASTSC_SMT_SIZES", "5,7");
      ("FASTSC_SMT_MOMENTS", "2");
      ("FASTSC_SMT_DENSITY", "10");
      ("FASTSC_SMT_TOPOLOGY", topology);
      ("FASTSC_SMT_SCRUB", "1");
    ]
  in
  let name = Printf.sprintf "smt-scale %s" topology in
  let t0 = Deadline.now_s () in
  let dir1 = fresh_dir (name ^ ".jobs1") and dir4 = fresh_dir (name ^ ".jobs4") in
  let cmd = Printf.sprintf "'%s' smt-scale" bench_exe in
  let code1, log1, _, command1 =
    spawn ~dir:dir1 ~stdout_only:true ~env:(env @ [ ("FASTSC_JOBS", "1") ]) cmd
  in
  let code4, log4, _, command4 =
    spawn ~dir:dir4 ~stdout_only:true ~env:(env @ [ ("FASTSC_JOBS", "4") ]) cmd
  in
  let seconds = Deadline.now_s () -. t0 in
  let json1 = Filename.concat dir1 "BENCH_smt_scale.json"
  and json4 = Filename.concat dir4 "BENCH_smt_scale.json" in
  let outcome =
    if code1 <> 0 then
      Fastsc_verify.Verify_report.Fail
        (Printf.sprintf "serial leg exit %d — replay: %s" code1 command1)
    else if code4 <> 0 then
      Fastsc_verify.Verify_report.Fail
        (Printf.sprintf "parallel leg exit %d — replay: %s" code4 command4)
    else if not (Sys.file_exists json1 && Sys.file_exists json4) then
      Fastsc_verify.Verify_report.Fail "BENCH_smt_scale.json was not produced"
    else if read_file json1 <> read_file json4 then
      Fastsc_verify.Verify_report.Fail
        "scrubbed BENCH_smt_scale.json differs between FASTSC_JOBS=1 and 4"
    else if log1 <> log4 then
      Fastsc_verify.Verify_report.Fail "stdout differs between FASTSC_JOBS=1 and 4"
    else Fastsc_verify.Verify_report.Pass
  in
  let detail =
    match outcome with
    | Pass -> []
    | Fail _ ->
      [ ("command_jobs1", Json.String command1); ("command_jobs4", Json.String command4) ]
  in
  add
    (Fastsc_verify.Verify_report.cell ~detail ~tier:"W"
       ~name:(Printf.sprintf "determinism %s" name)
       ~seconds outcome)

(* Pinned knobs: small enough to finish in about a second, large enough that
   the timing fields clear the gate's noise floors.  The committed baselines
   under bench/baselines/ were produced by exactly these runs. *)
let sim_bench_env =
  [
    ("FASTSC_SIM_QUBITS", "8");
    ("FASTSC_SIM_BIG_QUBITS", "10");
    ("FASTSC_SIM_CYCLES", "2");
    ("FASTSC_SIM_TRIALS", "40");
    ("FASTSC_SIM_TRAJ_QUBITS", "4");
    ("FASTSC_SIM_DENSITY_QUBITS", "4");
    ("FASTSC_SIM_BUDGET_MS", "60");
    ("FASTSC_JOBS", "4");
  ]

let smt_bench_env =
  [
    ("FASTSC_SMT_SIZES", "5,7");
    ("FASTSC_SMT_MOMENTS", "2");
    ("FASTSC_SMT_DENSITY", "10");
    ("FASTSC_SMT_TOPOLOGY", "grid");
    ("FASTSC_JOBS", "4");
  ]

let perf_gate_cell ~tolerance ~write_baselines ~label ~env ~experiment ~bench_file ~baseline =
  let t0 = Deadline.now_s () in
  let dir = fresh_dir ("bench." ^ label) in
  let cmd = Printf.sprintf "'%s' %s" bench_exe experiment in
  let code, log, _, command = spawn ~dir ~env cmd in
  let fresh_path = Filename.concat dir bench_file in
  let finish outcome detail =
    let seconds = Deadline.now_s () -. t0 in
    add
      (Fastsc_verify.Verify_report.cell ~detail ~tier:"W"
         ~name:(Printf.sprintf "perf gate %s" label)
         ~seconds outcome)
  in
  if code <> 0 then
    finish
      (Fastsc_verify.Verify_report.Fail
         (Printf.sprintf "benchmark run exit %d — replay: %s" code command))
      (fail_detail ~command log)
  else if not (Sys.file_exists fresh_path) then
    finish
      (Fastsc_verify.Verify_report.Fail (Printf.sprintf "%s was not produced" bench_file))
      (fail_detail ~command log)
  else if write_baselines then begin
    mkdir_p baseline_dir;
    let data = read_file fresh_path in
    Out_channel.with_open_bin baseline (fun oc -> Out_channel.output_string oc data);
    finish Fastsc_verify.Verify_report.Pass
      [ ("baseline_written", Json.String baseline) ]
  end
  else if not (Sys.file_exists baseline) then
    finish
      (Fastsc_verify.Verify_report.Fail
         (Printf.sprintf "no baseline at %s — run `make verify-baselines` once and commit it"
            baseline))
      []
  else begin
    match
      ( Json.parse_file baseline,
        Json.parse_file fresh_path )
    with
    | exception Json.Parse_error msg ->
      finish (Fastsc_verify.Verify_report.Fail msg) []
    | baseline_doc, fresh_doc ->
      let result =
        Fastsc_verify.Perf_gate.compare_docs ~baseline:baseline_doc ~fresh:fresh_doc
      in
      let rendered = Fastsc_verify.Perf_gate.render ~tolerance ~label result in
      print_string rendered;
      let detail =
        [
          ("median_regression", Json.Float (Fastsc_verify.Perf_gate.median_regression result));
          ("timing_fields", Json.Int (List.length result.Fastsc_verify.Perf_gate.timings));
          ("report", Json.String rendered);
        ]
      in
      (match Fastsc_verify.Perf_gate.evaluate ~tolerance result with
      | Fastsc_verify.Perf_gate.Ok -> finish Fastsc_verify.Verify_report.Pass detail
      | Fastsc_verify.Perf_gate.Regression why ->
        finish (Fastsc_verify.Verify_report.Fail why) detail
      | Fastsc_verify.Perf_gate.Structural errs ->
        finish
          (Fastsc_verify.Verify_report.Fail
             (Printf.sprintf "not comparable: %s" (String.concat "; " errs)))
          detail)
  end

let tier_w ~tolerance ~write_baselines () =
  List.iter
    (fun exp -> determinism_cell ~name:exp ~env:[] (Printf.sprintf "'%s' %s" bench_exe exp))
    [ "fig6"; "fig7"; "table2" ];
  List.iter smt_scale_determinism [ "grid"; "heavy-hex" ];
  perf_gate_cell ~tolerance ~write_baselines ~label:"sim" ~env:sim_bench_env ~experiment:"sim"
    ~bench_file:"BENCH_sim.json"
    ~baseline:(Filename.concat baseline_dir "sim.json");
  perf_gate_cell ~tolerance ~write_baselines ~label:"smt_scale" ~env:smt_bench_env
    ~experiment:"smt-scale" ~bench_file:"BENCH_smt_scale.json"
    ~baseline:(Filename.concat baseline_dir "smt_scale.json")

(* -- entry point ----------------------------------------------------------- *)

let () =
  let quick = ref false in
  let report = ref (Filename.concat repo "verify_report.json") in
  let write_baselines = ref false in
  let tolerance = ref Fastsc_verify.Perf_gate.default_tolerance in
  let spec =
    [
      ("--quick", Arg.Set quick, " pre-commit subset: reduced tier R matrix, no tier W");
      ("--report", Arg.Set_string report, "PATH where to write verify_report.json");
      ( "--write-baselines",
        Arg.Set write_baselines,
        " record fresh benchmark runs as bench/baselines/*.json instead of gating" );
      ( "--tolerance",
        Arg.Set_float tolerance,
        Printf.sprintf "FRACTION perf-gate median tolerance (default %.2f)"
          Fastsc_verify.Perf_gate.default_tolerance );
    ]
  in
  Arg.parse spec
    (fun anon -> raise (Arg.Bad ("unexpected argument " ^ anon)))
    "verify [--quick] [--report PATH] [--write-baselines] [--tolerance FRACTION]";
  List.iter
    (fun exe ->
      if not (Sys.file_exists exe) then begin
        Printf.eprintf "verify: %s is missing — run `dune build @all` first\n" exe;
        exit 2
      end)
    [ test_exe; bench_exe ];
  let t0 = Deadline.now_s () in
  let mode = if !quick then "quick" else "full" in
  Printf.printf "verify (%s): tier R — randomized property sweep\n%!" mode;
  tier_r ~quick:!quick ();
  Printf.printf "verify (%s): tier D — directed suites and seeded faults\n%!" mode;
  tier_d ~quick:!quick ();
  if not !quick then begin
    Printf.printf "verify (%s): tier W — workloads and perf gate\n%!" mode;
    tier_w ~tolerance:!tolerance ~write_baselines:!write_baselines ()
  end;
  let all = !cells in
  let meta =
    [
      ("mode", Json.String mode);
      ("alt_seed", Json.Int alt_seed);
      ("tolerance", Json.Float !tolerance);
      ("total_seconds", Json.Float (Deadline.now_s () -. t0));
    ]
  in
  Fastsc_verify.Verify_report.write ~meta !report all;
  print_newline ();
  print_string (Fastsc_verify.Verify_report.summary_table all);
  print_endline (Fastsc_verify.Verify_report.summary_line all);
  Printf.printf "report: %s\n" !report;
  if List.for_all Fastsc_verify.Verify_report.passed all then exit 0 else exit 1
