(* fastsc — command-line front end of the crosstalk-mitigation compiler.

   Subcommands:
     fastsc device   ... inspect a fabricated device and its frequency plan
     fastsc compile  ... compile one benchmark with one algorithm
     fastsc sweep    ... compare all algorithms on one benchmark
     fastsc validate ... check the success heuristic against noisy simulation
     fastsc list     ... enumerate benchmarks, algorithms, topologies *)

open Cmdliner

let parse_topology spec n =
  let fail msg = `Error (false, msg) in
  match String.split_on_char ':' spec with
  | [ "grid" ] -> `Ok (Topology.square_grid n)
  | [ "path" ] -> `Ok (Topology.path n)
  | [ "ring" ] -> `Ok (Topology.ring n)
  | [ "complete" ] -> `Ok (Topology.complete n)
  | [ "1ex"; k ] -> (
    match int_of_string_opt k with
    | Some k when k >= 2 -> `Ok (Topology.express_1d n k)
    | _ -> fail "1ex:<k> needs an integer k >= 2")
  | [ "2ex"; k ] -> (
    match int_of_string_opt k with
    | Some k when k >= 2 ->
      let side = int_of_float (sqrt (float_of_int n)) in
      if side * side <> n then fail "2ex needs a square qubit count"
      else `Ok (Topology.express_2d side side k)
    | _ -> fail "2ex:<k> needs an integer k >= 2")
  | _ -> fail (Printf.sprintf "unknown topology %S (try grid, path, ring, 1ex:4, 2ex:2)" spec)

let benchmark_names = [ "bv"; "qaoa"; "ising"; "qgan"; "xeb"; "ghz"; "qft" ]

let make_benchmark name n seed device =
  let rng = Rng.create seed in
  match name with
  | "bv" -> Bv.circuit ~n ()
  | "qaoa" -> Qaoa.circuit rng ~n ()
  | "ising" -> Ising.circuit ~n ()
  | "qgan" -> Qgan.circuit rng ~n ()
  | "xeb" ->
    let classes = Baseline_gmon.edge_classes device in
    Xeb.circuit rng ~graph:(Device.graph device) ~classes ~cycles:5 ()
  | "ghz" -> Ghz.circuit ~fanout:true ~n ()
  | "qft" -> Qft.circuit ~n ()
  | other -> invalid_arg (Printf.sprintf "unknown benchmark %S" other)

(* shared options *)
let seed_arg =
  Arg.(value & opt int 2020 & info [ "seed" ] ~docv:"SEED" ~doc:"Device fabrication seed.")

let size_arg =
  Arg.(value & opt int 9 & info [ "n"; "size" ] ~docv:"N" ~doc:"Number of qubits.")

let topology_arg =
  Arg.(
    value
    & opt string "grid"
    & info [ "topology" ] ~docv:"TOPO" ~doc:"Device topology: grid, path, ring, 1ex:k, 2ex:k, complete.")

let bench_arg =
  Arg.(
    value
    & opt string "bv"
    & info [ "bench" ] ~docv:"BENCH" ~doc:"Benchmark: bv, qaoa, ising, qgan, xeb.")

(* The algorithm list in --help comes from the scheduler registry, so a
   newly registered scheduler shows up without touching the CLI. *)
let algorithm_doc =
  let describe (module S : Pass.SCHEDULER) =
    match S.aliases with
    | [] -> S.name
    | aliases -> S.name ^ "/" ^ String.concat "/" aliases
  in
  let runnable =
    List.filter
      (fun (module S : Pass.SCHEDULER) -> Compile.algorithm_of_string S.name <> None)
      (Pass.schedulers ())
  in
  "Algorithm: " ^ String.concat ", " (List.map describe runnable) ^ "."

let algorithm_arg =
  Arg.(
    value
    & opt string "cd"
    & info [ "algorithm"; "a" ] ~docv:"ALG" ~doc:algorithm_doc)

(* Algorithm names come from the scheduler registry; reject unknown ones with
   exit code 2 and the list of valid names (tested by the CLI suite). *)
let parse_algorithm alg =
  match Compile.algorithm_of_string alg with
  | Some algorithm -> algorithm
  | None ->
    Printf.eprintf "fastsc: unknown algorithm %S (valid: %s)\n%!" alg
      (String.concat " " (List.map Compile.algorithm_to_string Compile.extended_algorithms));
    exit 2

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for parallel work (default: cores - 1, overridable by \
           $(b,FASTSC_JOBS)). Output is byte-identical at any job count.")

let apply_jobs = function
  | None -> `Ok ()
  | Some j when j >= 1 ->
    Pool.set_default_jobs j;
    `Ok ()
  | Some _ -> `Error (false, "--jobs needs a positive integer")

let with_device topology_spec n seed k =
  match parse_topology topology_spec n with
  | `Error _ as e -> e
  | `Ok topology -> k (Device.create ~seed topology)

let print_metrics metrics =
  let t = Tablefmt.create [ "metric"; "value" ] in
  Tablefmt.add_row t [ "success probability"; Tablefmt.cell_sci metrics.Schedule.success ];
  Tablefmt.add_row t
    [ "log10 success"; Tablefmt.cell_float ~digits:2 metrics.Schedule.log10_success ];
  Tablefmt.add_row t [ "gate error"; Tablefmt.cell_sci metrics.Schedule.gate_error ];
  Tablefmt.add_row t [ "crosstalk error"; Tablefmt.cell_sci metrics.Schedule.crosstalk_error ];
  Tablefmt.add_row t
    [ "decoherence error"; Tablefmt.cell_sci metrics.Schedule.decoherence_error ];
  Tablefmt.add_row t [ "depth (steps)"; Tablefmt.cell_int metrics.Schedule.depth ];
  Tablefmt.add_row t
    [ "total time (ns)"; Tablefmt.cell_float ~digits:1 metrics.Schedule.total_time ];
  Tablefmt.add_row t [ "gates"; Tablefmt.cell_int metrics.Schedule.n_gates ];
  Tablefmt.add_row t [ "two-qubit gates"; Tablefmt.cell_int metrics.Schedule.n_two_qubit ];
  Tablefmt.print t

(* fastsc device *)
let device_cmd =
  let run topology_spec n seed =
    with_device topology_spec n seed (fun device ->
        Format.printf "%a@." Device.pp_summary device;
        let partition = Device.partition device in
        Format.printf "frequency plan: %a@." Partition.pp partition;
        let coloring, assignment = Freq_alloc.idle device in
        Printf.printf "idle coloring: %d colors, separation %.3f GHz\n"
          (Coloring.n_colors coloring) assignment.Freq_alloc.delta;
        let t = Tablefmt.create [ "qubit"; "omega_min"; "omega_max"; "T1 (us)"; "T2 (us)"; "idle (GHz)" ] in
        for q = 0 to Device.n_qubits device - 1 do
          let lo, hi = Device.tunable_range device q in
          Tablefmt.add_row t
            [
              Tablefmt.cell_int q;
              Tablefmt.cell_float ~digits:3 lo;
              Tablefmt.cell_float ~digits:3 hi;
              Tablefmt.cell_float ~digits:1 (Device.t1 device q /. 1000.0);
              Tablefmt.cell_float ~digits:1 (Device.t2 device q /. 1000.0);
              Tablefmt.cell_float ~digits:3 assignment.Freq_alloc.freqs.(coloring.(q));
            ]
        done;
        Tablefmt.print t;
        `Ok ())
  in
  Cmd.v
    (Cmd.info "device" ~doc:"Fabricate and inspect a device")
    Term.(ret (const run $ topology_arg $ size_arg $ seed_arg))

let read_file path =
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  text

(* fastsc compile *)
let compile_cmd =
  let verbose_arg =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every schedule step.")
  in
  let input_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "input"; "i" ] ~docv:"FILE"
          ~doc:"Compile an OpenQASM 2.0 circuit from FILE instead of a built-in benchmark.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the full compilation artifact (schedule, metrics, pulses) as JSON.")
  in
  let draw_arg =
    Arg.(value & flag & info [ "draw" ] ~doc:"Draw the routed native circuit as ASCII.")
  in
  let chart_arg =
    Arg.(
      value & flag
      & info [ "chart" ] ~doc:"Print the schedule's frequency chart (qubits x steps).")
  in
  let trace_arg =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:
            "Emit the pass-manager report as JSON instead of the human-readable output: \
             per-pass wall-clock, SMT solve counts, solver/pair cache deltas, scheduler \
             statistics (including per-moment crosstalk component counts and warm-start \
             hits), and the evaluation metrics.")
  in
  let warm_start_arg =
    Arg.(
      value & flag
      & info [ "warm-start" ]
          ~doc:
            "Seed each moment's frequency solve with the previous moment's witness \
             (ColorDynamic family).  Witnesses may differ from the cold path within the \
             solver tolerance.")
  in
  let decompose_arg =
    Arg.(
      value & flag
      & info [ "decompose" ]
          ~doc:
            "Allocate each connected component of a moment's active crosstalk subgraph \
             independently on the domain pool (deterministic at any --jobs).")
  in
  let run topology_spec n seed bench alg verbose json draw chart trace warm_start decompose
      input jobs =
    match apply_jobs jobs with
    | `Error _ as e -> e
    | `Ok () ->
      let algorithm = parse_algorithm alg in
      let options =
        { Compile.default_options with Compile.warm_start; decompose_components = decompose }
      in
      let external_circuit =
        match input with
        | None -> Ok None
        | Some path -> (
          try Ok (Some (Qasm.of_string (read_file path))) with
          | Qasm.Parse_error (line, msg) ->
            Error (Printf.sprintf "%s:%d: %s" path line msg)
          | Sys_error msg -> Error msg)
      in
      match external_circuit with
      | Error msg -> `Error (false, msg)
      | Ok external_circuit ->
        let n =
          match external_circuit with Some c -> max n (Circuit.n_qubits c) | None -> n
        in
        with_device topology_spec n seed (fun device ->
            if external_circuit = None && not (List.mem bench benchmark_names) then
              `Error (false, Printf.sprintf "unknown benchmark %S" bench)
            else begin
              let circuit =
                match external_circuit with
                | Some c -> c
                | None -> make_benchmark bench n seed device
              in
            if trace then begin
              let ctx =
                Pass.execute ~options ~algorithm:(Compile.algorithm_to_string algorithm)
                  device circuit
              in
              (match Schedule.check (Pass.Context.schedule_exn ctx) with
              | Ok () -> ()
              | Error msg -> failwith ("invalid schedule: " ^ msg));
              print_endline (Json.to_string (Pass.Context.report ctx));
              `Ok ()
            end
            else begin
            let schedule = Compile.run ~options algorithm device circuit in
            (match Schedule.check schedule with
            | Ok () -> ()
            | Error msg -> failwith ("invalid schedule: " ^ msg));
            if json then print_endline (Export.to_string (Export.bundle schedule))
            else begin
              Format.printf "%a@." Device.pp_summary device;
              Format.printf "%a@." Schedule.pp_summary schedule;
              print_metrics (Schedule.evaluate schedule);
              if draw then begin
                let native = Compile.prepare Compile.default_options device circuit in
                print_endline (Draw.circuit native)
              end;
              if chart then print_endline (Freq_chart.render schedule);
              if verbose then
                List.iter
                  (fun step -> Format.printf "%a@." (Schedule.pp_step device) step)
                  schedule.Schedule.steps
            end;
              `Ok ()
            end
            end)
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile one benchmark (or a QASM file) with one algorithm")
    Term.(
      ret
        (const run $ topology_arg $ size_arg $ seed_arg $ bench_arg $ algorithm_arg
       $ verbose_arg $ json_arg $ draw_arg $ chart_arg $ trace_arg $ warm_start_arg
       $ decompose_arg $ input_arg $ jobs_arg))

(* fastsc qasm *)
let qasm_cmd =
  let native_arg =
    Arg.(
      value & flag
      & info [ "native" ]
          ~doc:"Emit the routed, decomposed physical circuit instead of the logical one.")
  in
  let run topology_spec n seed bench native =
    with_device topology_spec n seed (fun device ->
        if not (List.mem bench benchmark_names) then
          `Error (false, Printf.sprintf "unknown benchmark %S" bench)
        else begin
          let circuit = make_benchmark bench n seed device in
          let circuit =
            if native then Compile.prepare Compile.default_options device circuit
            else circuit
          in
          print_string (Qasm.to_string circuit);
          `Ok ()
        end)
  in
  Cmd.v
    (Cmd.info "qasm" ~doc:"Emit a benchmark circuit as OpenQASM 2.0")
    Term.(ret (const run $ topology_arg $ size_arg $ seed_arg $ bench_arg $ native_arg))

(* fastsc sweep *)
let sweep_cmd =
  let run topology_spec n seed bench jobs =
    match apply_jobs jobs with
    | `Error _ as e -> e
    | `Ok () ->
      with_device topology_spec n seed (fun device ->
          if not (List.mem bench benchmark_names) then
            `Error (false, Printf.sprintf "unknown benchmark %S" bench)
          else begin
            let circuit = make_benchmark bench n seed device in
            let t =
              Tablefmt.create
                [ "algorithm"; "log10 P"; "crosstalk"; "decoherence"; "depth"; "time (ns)" ]
            in
            (* one pool cell per algorithm; rows print in algorithm order *)
            let rows =
              Pool.map
                (fun algorithm ->
                  let schedule = Compile.run algorithm device circuit in
                  let m = Schedule.evaluate schedule in
                  [
                    Compile.algorithm_to_string algorithm;
                    Tablefmt.cell_float ~digits:2 m.Schedule.log10_success;
                    Tablefmt.cell_sci ~digits:2 m.Schedule.crosstalk_error;
                    Tablefmt.cell_sci ~digits:2 m.Schedule.decoherence_error;
                    Tablefmt.cell_int m.Schedule.depth;
                    Tablefmt.cell_float ~digits:0 m.Schedule.total_time;
                  ])
                Compile.all_algorithms
            in
            List.iter (Tablefmt.add_row t) rows;
            Tablefmt.print t;
            `Ok ()
          end)
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Compare all algorithms on one benchmark")
    Term.(ret (const run $ topology_arg $ size_arg $ seed_arg $ bench_arg $ jobs_arg))

(* fastsc validate *)
let validate_cmd =
  let trials_arg =
    Arg.(value & opt int 300 & info [ "trials" ] ~docv:"K" ~doc:"Monte-Carlo trajectories.")
  in
  let run topology_spec n seed bench alg trials =
    let algorithm = parse_algorithm alg in
    if n > 10 then `Error (false, "validation simulates exactly; use --n <= 10")
      else
        with_device topology_spec n seed (fun device ->
            let circuit = make_benchmark bench n seed device in
            let schedule = Compile.run algorithm device circuit in
            let metrics = Schedule.evaluate schedule in
            let steps = Schedule.to_noisy_steps schedule in
            let n_qubits = Device.n_qubits device in
            let ideal = Noisy_sim.ideal_of_steps ~n_qubits steps in
            let simulated =
              Noisy_sim.average_fidelity (Rng.create (seed + 1)) ~n_qubits ~ideal ~steps
                ~trials
            in
            Printf.printf "heuristic success (eq 4): %.3e\n" metrics.Schedule.success;
            Printf.printf "simulated success (%d trajectories): %.3e\n" trials simulated;
            `Ok ())
  in
  Cmd.v
    (Cmd.info "validate" ~doc:"Heuristic vs Monte-Carlo noisy simulation")
    Term.(
      ret (const run $ topology_arg $ size_arg $ seed_arg $ bench_arg $ algorithm_arg $ trials_arg))

(* fastsc budget *)
let budget_cmd =
  let run topology_spec n seed bench alg =
    let algorithm = parse_algorithm alg in
    with_device topology_spec n seed (fun device ->
        if not (List.mem bench benchmark_names) then
          `Error (false, Printf.sprintf "unknown benchmark %S" bench)
        else begin
          let circuit = make_benchmark bench n seed device in
          let schedule = Compile.run algorithm device circuit in
          Format.printf "%a@." Error_budget.pp (Error_budget.compute schedule);
          `Ok ()
        end)
  in
  Cmd.v
    (Cmd.info "budget" ~doc:"Per-step error budget of a compiled benchmark")
    Term.(ret (const run $ topology_arg $ size_arg $ seed_arg $ bench_arg $ algorithm_arg))

(* fastsc calibrate *)
let calibrate_cmd =
  let json_arg = Arg.(value & flag & info [ "json" ] ~doc:"Emit the calibration as JSON.") in
  let run topology_spec n seed json =
    with_device topology_spec n seed (fun device ->
        let cal = Calibration.generate device in
        (match Calibration.check cal with
        | Ok () -> ()
        | Error msg -> failwith ("invalid calibration: " ^ msg));
        if json then print_endline (Export.to_string (Calibration.to_json cal))
        else Format.printf "%a@." Calibration.pp cal;
        `Ok ())
  in
  Cmd.v
    (Cmd.info "calibrate" ~doc:"Produce the device's frequency calibration tables")
    Term.(ret (const run $ topology_arg $ size_arg $ seed_arg $ json_arg))

(* fastsc serve *)
let serve_cmd =
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Listen on a Unix-domain socket at $(docv) instead of stdin/stdout.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Default per-request compile budget in milliseconds; requests may override \
             with their own $(b,deadline_ms). Expired budgets degrade down the ladder \
             (full, decomposed-warm, stale, greedy) instead of failing.")
  in
  let max_inflight_arg =
    Arg.(
      value
      & opt int 64
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:
            "Admission-control bound: requests beyond $(docv) in flight are shed with a \
             structured $(b,overloaded) error.")
  in
  let snapshot_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "snapshot-dir" ] ~docv:"DIR"
          ~doc:
            "Persist checksummed solver-cache snapshots under $(docv); loaded at boot, \
             corrupt files quarantined as $(b,.corrupt) and rebuilt cold.")
  in
  let snapshot_every_arg =
    Arg.(
      value
      & opt int 32
      & info [ "snapshot-every" ] ~docv:"N"
          ~doc:"Snapshot the caches every $(docv) completed requests (0: only at drain).")
  in
  let stats_every_arg =
    Arg.(
      value
      & opt int 0
      & info [ "stats-every" ] ~docv:"N"
          ~doc:
            "Print an operational stats line to stderr every $(docv) completed requests \
             — solver-cache hit rate and per-tier latency p50/p95 (0: disabled).")
  in
  let drain_grace_arg =
    Arg.(
      value
      & opt float 2000.0
      & info [ "drain-grace-ms" ] ~docv:"MS"
          ~doc:"How long SIGTERM/SIGINT waits for in-flight requests before exiting.")
  in
  let scrub_arg =
    Arg.(
      value
      & flag
      & info [ "scrub" ]
          ~doc:
            "Zero latency fields in responses so output is byte-deterministic across \
             job counts (also $(b,FASTSC_SERVE_SCRUB=1)).")
  in
  let run jobs socket deadline_ms max_inflight snapshot_dir snapshot_every stats_every
      drain_grace_ms scrub =
    match apply_jobs jobs with
    | `Error _ as e -> e
    | `Ok () ->
      if max_inflight < 1 then `Error (false, "--max-inflight needs a positive integer")
      else if snapshot_every < 0 then
        `Error (false, "--snapshot-every needs a non-negative integer")
      else if stats_every < 0 then
        `Error (false, "--stats-every needs a non-negative integer")
      else if not (Float.is_finite drain_grace_ms && drain_grace_ms >= 0.0) then
        `Error (false, "--drain-grace-ms needs a non-negative number")
      else if
        match deadline_ms with
        | Some d -> not (Float.is_finite d && d >= 0.0)
        | None -> false
      then `Error (false, "--deadline-ms needs a non-negative number")
      else begin
        Fastsc_serve.Server.run
          {
            Fastsc_serve.Server.socket;
            deadline_ms;
            max_inflight;
            snapshot_dir;
            snapshot_every;
            stats_every;
            drain_grace_ms;
            scrub;
          };
        `Ok ()
      end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Long-running JSONL compile daemon with deadline-budgeted degradation")
    Term.(
      ret
        (const run $ jobs_arg $ socket_arg $ deadline_arg $ max_inflight_arg
       $ snapshot_dir_arg $ snapshot_every_arg $ stats_every_arg $ drain_grace_arg
       $ scrub_arg))

(* fastsc list *)
let list_cmd =
  let run () =
    print_endline ("benchmarks: " ^ String.concat " " benchmark_names);
    print_endline
      ("algorithms: "
      ^ String.concat " "
          (List.map Compile.algorithm_to_string Compile.extended_algorithms));
    print_endline "topologies: grid path ring complete 1ex:<k> 2ex:<k>";
    `Ok ()
  in
  Cmd.v (Cmd.info "list" ~doc:"Enumerate benchmarks, algorithms, topologies")
    Term.(ret (const run $ const ()))

let () =
  let info =
    Cmd.info "fastsc" ~version:"1.0.0"
      ~doc:"Frequency-aware crosstalk-mitigating compilation for superconducting qubits"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            device_cmd; compile_cmd; sweep_cmd; validate_cmd; qasm_cmd; calibrate_cmd;
            budget_cmd; serve_cmd; list_cmd;
          ]))
