type coloring = int array

let smallest_free used =
  let rec scan k = if List.mem k used then scan (k + 1) else k in
  scan 0

(* Seeded fault for the verification harness (docs/DESIGN.md §11). *)
let fault_greedy_clash = lazy (Fastsc_util.Fault.enabled "color-greedy-clash")

let greedy ~order g =
  let n = Graph.n_vertices g in
  if List.length order <> n then
    invalid_arg "Coloring.greedy: order must list every vertex exactly once";
  let seen = Array.make n false in
  List.iter
    (fun v ->
      if v < 0 || v >= n || seen.(v) then
        invalid_arg "Coloring.greedy: order must list every vertex exactly once";
      seen.(v) <- true)
    order;
  let colors = Array.make n (-1) in
  List.iter
    (fun v ->
      let used =
        List.filter_map
          (fun u -> if colors.(u) >= 0 then Some colors.(u) else None)
          (Graph.neighbors g v)
      in
      colors.(v) <- (if Lazy.force fault_greedy_clash then 0 else smallest_free used))
    order;
  colors

let natural g = greedy ~order:(Graph.vertices g) g

let welsh_powell g =
  let by_degree_desc u v =
    match compare (Graph.degree g v) (Graph.degree g u) with
    | 0 -> compare u v
    | c -> c
  in
  greedy ~order:(List.sort by_degree_desc (Graph.vertices g)) g

let dsatur g =
  let n = Graph.n_vertices g in
  let colors = Array.make n (-1) in
  let module ISet = Set.Make (Int) in
  (* saturation.(v): set of distinct neighbour colors *)
  let saturation = Array.make n ISet.empty in
  let pick_next () =
    let best = ref (-1) in
    for v = 0 to n - 1 do
      if colors.(v) < 0 then
        match !best with
        | -1 -> best := v
        | b ->
          let sat_v = ISet.cardinal saturation.(v)
          and sat_b = ISet.cardinal saturation.(b) in
          if
            sat_v > sat_b
            || (sat_v = sat_b && Graph.degree g v > Graph.degree g b)
          then best := v
    done;
    !best
  in
  for _ = 1 to n do
    let v = pick_next () in
    let used = ISet.elements saturation.(v) in
    let c = smallest_free used in
    colors.(v) <- c;
    List.iter
      (fun u -> if colors.(u) < 0 then saturation.(u) <- ISet.add c saturation.(u))
      (Graph.neighbors g v)
  done;
  colors

let n_colors coloring =
  Array.fold_left (fun acc c -> max acc (c + 1)) 0 coloring

let is_proper g coloring =
  let ok = ref true in
  Graph.iter_edges (fun u v -> if coloring.(u) = coloring.(v) then ok := false) g;
  !ok

let two_color g =
  let n = Graph.n_vertices g in
  let colors = Array.make n (-1) in
  let queue = Queue.create () in
  let ok = ref true in
  for start = 0 to n - 1 do
    if colors.(start) < 0 then begin
      colors.(start) <- 0;
      Queue.add start queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        List.iter
          (fun v ->
            if colors.(v) < 0 then begin
              colors.(v) <- 1 - colors.(u);
              Queue.add v queue
            end
            else if colors.(v) = colors.(u) then ok := false)
          (Graph.neighbors g u)
      done
    end
  done;
  if !ok then Some colors else None

exception Decided of int array option

let k_colorable ?(budget = 10_000_000) g k =
  let n = Graph.n_vertices g in
  if k < 0 then invalid_arg "Coloring.k_colorable: negative k";
  if n = 0 then Some [||]
  else begin
    let colors = Array.make n (-1) in
    let nodes = ref 0 in
    (* DSATUR-style dynamic ordering: always branch on the uncolored vertex
       with the most distinctly-colored neighbours (ties by degree). *)
    let module ISet = Set.Make (Int) in
    let saturation = Array.make n ISet.empty in
    let pick () =
      let best = ref (-1) in
      for v = 0 to n - 1 do
        if colors.(v) < 0 then
          match !best with
          | -1 -> best := v
          | b ->
            let sv = ISet.cardinal saturation.(v) and sb = ISet.cardinal saturation.(b) in
            if sv > sb || (sv = sb && Graph.degree g v > Graph.degree g b) then best := v
      done;
      !best
    in
    let rec search colored max_used =
      incr nodes;
      if !nodes > budget then failwith "Coloring.k_colorable: search budget exhausted";
      if colored = n then raise (Decided (Some (Array.copy colors)))
      else begin
        let v = pick () in
        (* symmetry breaking: allow at most one fresh color *)
        let limit = min (k - 1) (max_used + 1) in
        for c = 0 to limit do
          if not (ISet.mem c saturation.(v)) then begin
            colors.(v) <- c;
            let touched =
              List.filter_map
                (fun u ->
                  if colors.(u) < 0 && not (ISet.mem c saturation.(u)) then begin
                    saturation.(u) <- ISet.add c saturation.(u);
                    Some u
                  end
                  else None)
                (Graph.neighbors g v)
            in
            search (colored + 1) (max max_used c);
            List.iter (fun u -> saturation.(u) <- ISet.remove c saturation.(u)) touched;
            colors.(v) <- -1
          end
        done
      end
    in
    try
      if k = 0 then None
      else begin
        search 0 (-1);
        None
      end
    with Decided answer -> answer
  end

let chromatic_number ?budget g =
  let rec try_k k =
    if k > Graph.n_vertices g then Graph.n_vertices g
    else
      match k_colorable ?budget g k with
      | Some _ -> k
      | None -> try_k (k + 1)
  in
  if Graph.n_vertices g = 0 then 0 else try_k 1

let color_classes coloring =
  let k = n_colors coloring in
  let classes = Array.make k [] in
  for v = Array.length coloring - 1 downto 0 do
    let c = coloring.(v) in
    classes.(c) <- v :: classes.(c)
  done;
  classes

let restrict coloring vs = List.map (fun v -> (v, coloring.(v))) vs
