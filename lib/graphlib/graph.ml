module ISet = Set.Make (Int)

type t = { n : int; adj : ISet.t array; mutable m : int }

let create n =
  if n < 0 then invalid_arg "Graph.create: negative vertex count";
  { n; adj = Array.make n ISet.empty; m = 0 }

let n_vertices g = g.n

let n_edges g = g.m

let check_vertex g v =
  if v < 0 || v >= g.n then
    invalid_arg (Printf.sprintf "Graph: vertex %d out of range [0,%d)" v g.n)

let mem_edge g u v =
  check_vertex g u;
  check_vertex g v;
  ISet.mem v g.adj.(u)

let add_edge g u v =
  check_vertex g u;
  check_vertex g v;
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  if not (ISet.mem v g.adj.(u)) then begin
    g.adj.(u) <- ISet.add v g.adj.(u);
    g.adj.(v) <- ISet.add u g.adj.(v);
    g.m <- g.m + 1
  end

let remove_edge g u v =
  check_vertex g u;
  check_vertex g v;
  if ISet.mem v g.adj.(u) then begin
    g.adj.(u) <- ISet.remove v g.adj.(u);
    g.adj.(v) <- ISet.remove u g.adj.(v);
    g.m <- g.m - 1
  end

let of_edges n edge_list =
  let g = create n in
  List.iter (fun (u, v) -> add_edge g u v) edge_list;
  g

let copy g = { n = g.n; adj = Array.copy g.adj; m = g.m }

let neighbors g v =
  check_vertex g v;
  ISet.elements g.adj.(v)

let degree g v =
  check_vertex g v;
  ISet.cardinal g.adj.(v)

let max_degree g =
  Array.fold_left (fun acc s -> max acc (ISet.cardinal s)) 0 g.adj

let iter_edges f g =
  for u = 0 to g.n - 1 do
    ISet.iter (fun v -> if u < v then f u v) g.adj.(u)
  done

let edges g =
  let acc = ref [] in
  iter_edges (fun u v -> acc := (u, v) :: !acc) g;
  List.rev !acc

let vertices g = List.init g.n Fun.id

let fold_vertices f init g =
  let acc = ref init in
  for v = 0 to g.n - 1 do
    acc := f !acc v
  done;
  !acc

let subgraph g vs =
  let keep = Array.make g.n false in
  List.iter
    (fun v ->
      check_vertex g v;
      keep.(v) <- true)
    vs;
  let h = create g.n in
  iter_edges (fun u v -> if keep.(u) && keep.(v) then add_edge h u v) g;
  h

let is_connected g =
  if g.n = 0 then true
  else begin
    let seen = Array.make g.n false in
    let queue = Queue.create () in
    Queue.add 0 queue;
    seen.(0) <- true;
    let count = ref 1 in
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      ISet.iter
        (fun v ->
          if not seen.(v) then begin
            seen.(v) <- true;
            incr count;
            Queue.add v queue
          end)
        g.adj.(u)
    done;
    !count = g.n
  end

let components g =
  let seen = Array.make g.n false in
  let queue = Queue.create () in
  let comps = ref [] in
  for start = 0 to g.n - 1 do
    if not seen.(start) then begin
      seen.(start) <- true;
      Queue.add start queue;
      let members = ref [] in
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        members := u :: !members;
        ISet.iter
          (fun v ->
            if not seen.(v) then begin
              seen.(v) <- true;
              Queue.add v queue
            end)
          g.adj.(u)
      done;
      comps := List.sort compare !members :: !comps
    end
  done;
  List.rev !comps

let component_ids g =
  let ids = Array.make g.n (-1) in
  let count = ref 0 in
  List.iter
    (fun members ->
      List.iter (fun v -> ids.(v) <- !count) members;
      incr count)
    (components g);
  (ids, !count)

(* Hopcroft-Tarjan lowpoint search, iterative so deep paths cannot blow the
   OCaml stack.  Children are visited in ascending id order (ISet.elements is
   sorted), so discovery numbers — and hence the emitted component order —
   are a pure function of the graph. *)
let biconnected_scan g =
  let disc = Array.make g.n (-1) in
  let low = Array.make g.n 0 in
  let parent = Array.make g.n (-1) in
  let is_cut = Array.make g.n false in
  let edge_stack = ref [] in
  let comps = ref [] in
  let counter = ref 0 in
  let pop_component u v =
    (* pop stacked edges down to and including (u, v) *)
    let rec pop acc =
      match !edge_stack with
      | [] -> acc
      | (a, b) :: rest ->
        edge_stack := rest;
        let acc = (min a b, max a b) :: acc in
        if (a = u && b = v) || (a = v && b = u) then acc else pop acc
    in
    comps := List.sort compare (pop []) :: !comps
  in
  for root = 0 to g.n - 1 do
    if disc.(root) = -1 then begin
      let root_children = ref 0 in
      (* explicit DFS stack: (vertex, neighbours still to try) *)
      let stack = ref [ (root, ISet.elements g.adj.(root)) ] in
      disc.(root) <- !counter;
      low.(root) <- !counter;
      incr counter;
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | (u, next) :: rest -> (
          match next with
          | [] ->
            stack := rest;
            if parent.(u) >= 0 then begin
              let p = parent.(u) in
              if low.(u) < low.(p) then low.(p) <- low.(u);
              if low.(u) >= disc.(p) then begin
                pop_component p u;
                if p = root then (if !root_children > 1 then is_cut.(p) <- true)
                else is_cut.(p) <- true
              end
            end
          | v :: more ->
            stack := (u, more) :: rest;
            if disc.(v) = -1 then begin
              parent.(v) <- u;
              if u = root then incr root_children;
              edge_stack := (u, v) :: !edge_stack;
              disc.(v) <- !counter;
              low.(v) <- !counter;
              incr counter;
              stack := (v, ISet.elements g.adj.(v)) :: !stack
            end
            else if v <> parent.(u) && disc.(v) < disc.(u) then begin
              edge_stack := (u, v) :: !edge_stack;
              if disc.(v) < low.(u) then low.(u) <- disc.(v)
            end)
      done
    end
  done;
  (List.rev !comps, is_cut)

let biconnected_components g = fst (biconnected_scan g)

let articulation_points g =
  let _, is_cut = biconnected_scan g in
  let acc = ref [] in
  for v = g.n - 1 downto 0 do
    if is_cut.(v) then acc := v :: !acc
  done;
  !acc

let complement_vertices g vs =
  let inside = Array.make g.n false in
  List.iter
    (fun v ->
      check_vertex g v;
      inside.(v) <- true)
    vs;
  List.filter (fun v -> not inside.(v)) (vertices g)

let pp fmt g =
  Format.fprintf fmt "graph(n=%d, m=%d, edges=[%a])" g.n g.m
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
       (fun fmt (u, v) -> Format.fprintf fmt "%d-%d" u v))
    (edges g)
