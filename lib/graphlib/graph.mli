(** Undirected simple graphs over integer vertices [0 .. n-1].

    This is the in-house replacement for the NetworkX graphs used by the
    paper's reference implementation: device connectivity graphs, their line
    graphs and the derived crosstalk graphs are all values of this type.
    Vertices are dense integers so adjacency is an array of sorted sets, which
    keeps neighbourhood queries cheap for the coloring inner loops.

    The structure is mutable during construction ({!add_edge}) and treated as
    immutable afterwards; all analysis functions are pure. *)

type t

val create : int -> t
(** [create n] is the edgeless graph on [n] vertices.
    @raise Invalid_argument if [n < 0]. *)

val n_vertices : t -> int

val n_edges : t -> int

val add_edge : t -> int -> int -> unit
(** [add_edge g u v] inserts the undirected edge [{u,v}].  Inserting an
    existing edge is a no-op.
    @raise Invalid_argument on self-loops or out-of-range vertices. *)

val remove_edge : t -> int -> int -> unit
(** Removes the edge if present; no-op otherwise. *)

val of_edges : int -> (int * int) list -> t
(** [of_edges n edges] builds a graph on [n] vertices with the given edges. *)

val copy : t -> t

val mem_edge : t -> int -> int -> bool

val neighbors : t -> int -> int list
(** Sorted list of neighbours. *)

val degree : t -> int -> int

val max_degree : t -> int

val edges : t -> (int * int) list
(** All edges in canonical form [(u, v)] with [u < v], sorted
    lexicographically. *)

val vertices : t -> int list

val iter_edges : (int -> int -> unit) -> t -> unit
(** Iterates each edge once, in canonical orientation. *)

val fold_vertices : ('a -> int -> 'a) -> 'a -> t -> 'a

val subgraph : t -> int list -> t
(** [subgraph g vs] keeps only vertices in [vs] (edges between them survive);
    the result still has [n_vertices g] vertices so indices are stable —
    vertices outside [vs] are simply isolated. *)

val is_connected : t -> bool
(** True when every vertex is reachable from vertex 0 (vacuously true for the
    empty graph). *)

val components : t -> int list list
(** Connected components.  Each component is sorted ascending and the
    components are ordered by their smallest vertex, so the partition is a
    pure function of the graph — the determinism anchor for everything that
    fans components out over the domain pool.  Isolated vertices appear as
    singleton components. *)

val component_ids : t -> int array * int
(** [(ids, k)] where [ids.(v)] is the index of [v]'s component in
    {!components} order and [k] the component count. *)

val biconnected_components : t -> (int * int) list list
(** Partition of the {e edges} into biconnected components (Hopcroft–Tarjan
    lowpoint search).  Each component's edges are canonical [(u, v)], [u < v],
    sorted; component order follows DFS completion from vertex 0 upward and is
    deterministic.  Bridges appear as single-edge components; isolated
    vertices appear in none (the partition covers edges, not vertices). *)

val articulation_points : t -> int list
(** Sorted list of cut vertices — vertices whose removal disconnects their
    component.  A cheap decomposability signal for the solver benches: a
    constraint graph rich in articulation points splits further under edge
    removal than its component count alone suggests. *)

val complement_vertices : t -> int list -> int list
(** [complement_vertices g vs] is the sorted list of vertices not in [vs]. *)

val pp : Format.formatter -> t -> unit
(** Debug printer: [graph(n=#, m=#, edges=...)]. *)
