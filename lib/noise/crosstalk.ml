let residual_coupling ~g0 ~delta =
  let d = Float.abs delta in
  if d < g0 then g0 else g0 *. g0 /. d

let transfer_envelope ~g ~delta =
  let four_g2 = 4.0 *. g *. g in
  four_g2 /. (four_g2 +. (delta *. delta))

let transfer_probability ~g ~delta ~t =
  let rabi = sqrt ((delta *. delta) +. (4.0 *. g *. g)) in
  transfer_envelope ~g ~delta *. (sin (Float.pi *. rabi *. t) ** 2.0)

type channel = { label : string; delta : float; g : float }

let channels ~alpha_a ~alpha_b ~g ~omega_a ~omega_b =
  [
    (* |01> <-> |10> exchange *)
    { label = "01-01"; delta = Float.abs (omega_a -. omega_b); g };
    (* |11> <-> |20>: omega_a's 1->2 ladder meets omega_b's 0->1 *)
    { label = "12-01"; delta = Float.abs (omega_a +. alpha_a -. omega_b); g = sqrt 2.0 *. g };
    (* |11> <-> |02> *)
    { label = "01-12"; delta = Float.abs (omega_a -. (omega_b +. alpha_b)); g = sqrt 2.0 *. g };
  ]

type cache_stats = { hits : int; misses : int; entries : int }

(* Schedule evaluation charges every two-qubit gate for all its spectator
   couplings, and the same (frequencies, coupling, duration) tuples recur
   across steps: idle frequencies are fixed per device and interaction
   frequencies are quantized by color.  The key is the exact float tuple —
   no rounding — so a hit returns bit-identical output and a near-miss is
   just a miss.  Mutex-protected so pool domains can evaluate in parallel. *)
let cache : (bool * float * float * float * float * float * float, float) Hashtbl.t =
  Hashtbl.create 1024

let cache_mutex = Mutex.create ()

let cache_hits = ref 0

let cache_misses = ref 0

let max_cache_entries = 1 lsl 16

let pair_cache_stats () =
  Mutex.lock cache_mutex;
  let stats = { hits = !cache_hits; misses = !cache_misses; entries = Hashtbl.length cache } in
  Mutex.unlock cache_mutex;
  stats

let reset_pair_cache () =
  Mutex.lock cache_mutex;
  Hashtbl.reset cache;
  cache_hits := 0;
  cache_misses := 0;
  Mutex.unlock cache_mutex

let pair_error_uncached ~worst_case ~alpha_a ~alpha_b ~g ~omega_a ~omega_b ~t =
  let survive =
    List.fold_left
      (fun acc { delta; g; _ } ->
        let p =
          if worst_case then transfer_envelope ~g ~delta
          else transfer_probability ~g ~delta ~t
        in
        acc *. (1.0 -. p))
      1.0
      (channels ~alpha_a ~alpha_b ~g ~omega_a ~omega_b)
  in
  1.0 -. survive

let pair_error ?(worst_case = false) ~alpha_a ~alpha_b ~g ~omega_a ~omega_b ~t () =
  if g <= 0.0 then 0.0
  else begin
    let key = (worst_case, alpha_a, alpha_b, g, omega_a, omega_b, t) in
    Mutex.lock cache_mutex;
    let cached = Hashtbl.find_opt cache key in
    (match cached with
    | Some _ -> incr cache_hits
    | None -> incr cache_misses);
    Mutex.unlock cache_mutex;
    match cached with
    | Some p -> p
    | None ->
      let p = pair_error_uncached ~worst_case ~alpha_a ~alpha_b ~g ~omega_a ~omega_b ~t in
      Mutex.lock cache_mutex;
      if Hashtbl.length cache >= max_cache_entries then Hashtbl.reset cache;
      Hashtbl.replace cache key p;
      Mutex.unlock cache_mutex;
      p
  end
