(** Crosstalk error model (paper §II-B2, Appendix B).

    Two detuned, coupled transmons exchange population at the residual rate
    of eq 5; holding them for time [t] transfers probability according to the
    detuned-Rabi law.  The paper's eq 6 is the dispersive limit of this; we
    implement the exact two-level expression, which is finite on resonance
    and reduces to [sin^2(2 pi (g^2/delta) t)] for large detuning:

    {v P(t) = 4g^2 / (4g^2 + d^2) * sin^2(pi sqrt(d^2 + 4 g^2) t) v}

    (frequencies in GHz, time in ns).  A CZ-channel variant scales the
    coupling by sqrt 2 (the |11>-|20> matrix element).

    For a pair of idle/parked qubits all three relevant resonance channels
    are combined: the 01-01 exchange and the two 01-12 sideband (leakage)
    channels displaced by the anharmonicity. *)

val residual_coupling : g0:float -> delta:float -> float
(** Eq 5 exactly as printed, [g0^2 / delta], capped at [g0] so it stays
    physical on resonance.  Exposed for the Fig 2 comparison. *)

val transfer_probability : g:float -> delta:float -> t:float -> float
(** Exact detuned-Rabi transfer probability after holding for [t] ns. *)

val transfer_envelope : g:float -> delta:float -> float
(** Worst-case (peak) transfer probability [4g^2 / (4g^2 + d^2)] — the
    [sin^2 = 1] envelope, used by the worst-case success metric. *)

type channel = {
  label : string;  (** e.g. ["01-01"], ["01-12"]. *)
  delta : float;  (** Detuning of the channel, GHz. *)
  g : float;  (** Coupling of the channel, GHz. *)
}

val channels :
  alpha_a:float -> alpha_b:float -> g:float -> omega_a:float -> omega_b:float ->
  channel list
(** The resonance channels between two transmons parked at the given 0-1
    frequencies: direct exchange plus the two anharmonicity sidebands with
    sqrt-2-enhanced coupling. *)

val pair_error :
  ?worst_case:bool ->
  alpha_a:float -> alpha_b:float -> g:float -> omega_a:float -> omega_b:float ->
  t:float -> unit -> float
(** Combined unwanted-interaction error for a spectator pair over one time
    slice: [1 - prod_channels (1 - P_channel)].  With [worst_case] the
    envelope is used instead of the time-dependent probability.

    Results are memoized on the exact argument tuple (idle frequencies are
    fixed per device and interaction frequencies quantized by color, so the
    same tuples recur across every step of a schedule); the cache is
    mutex-protected and therefore safe under [Pool] parallelism, and a hit
    returns a bit-identical float. *)

type cache_stats = { hits : int; misses : int; entries : int }

val pair_cache_stats : unit -> cache_stats
(** Counters of the {!pair_error} memo table. *)

val reset_pair_cache : unit -> unit
(** Drop all memoized pair errors and zero the counters. *)
