(* Bounded retry with exponential backoff and deterministic jitter.

   The serve layer uses this around snapshot IO (a concurrent reader, a
   filesystem hiccup) — places where one transient failure should not lose a
   warm cache.  Jitter is derived from the attempt number with a splitmix
   hash rather than a random draw, so a retried test run replays the exact
   same schedule. *)

let splitmix x =
  let open Int64 in
  let z = add x 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* in [0, 1), deterministic per attempt *)
let unit_float attempt =
  let bits = Int64.shift_right_logical (splitmix (Int64.of_int attempt)) 11 in
  Int64.to_float bits /. 9007199254740992.0 (* 2^53 *)

let backoff_ms ~base_ms ~factor ~max_ms ~jitter attempt =
  let raw = base_ms *. (factor ** float_of_int attempt) in
  let capped = Float.min raw max_ms in
  (* jittered multiplicatively into [1-j, 1+j] *)
  let scale = 1.0 +. (jitter *. ((2.0 *. unit_float attempt) -. 1.0)) in
  Float.max 0.0 (capped *. scale)

let with_backoff ?(attempts = 3) ?(base_ms = 10.0) ?(factor = 2.0) ?(max_ms = 1000.0)
    ?(jitter = 0.25) ?(sleep = fun ms -> Unix.sleepf (ms /. 1000.0))
    ?(should_retry = fun _ -> true) f =
  if attempts < 1 then invalid_arg "Retry.with_backoff: attempts must be >= 1";
  let rec go attempt =
    match f attempt with
    | v -> v
    | exception exn ->
      let bt = Printexc.get_raw_backtrace () in
      if attempt + 1 >= attempts || not (should_retry exn) then
        Printexc.raise_with_backtrace exn bt
      else begin
        sleep (backoff_ms ~base_ms ~factor ~max_ms ~jitter attempt);
        go (attempt + 1)
      end
  in
  go 0
