(** Crash-safe snapshot files for warm-cache persistence.

    The serve daemon persists its memo caches so a restart boots warm.  A
    snapshot is a versioned, checksummed JSON envelope written atomically
    (temp file + [rename]); loading validates everything and {b never
    raises} on a bad file — it quarantines the file to [path ^ ".corrupt"]
    and reports the reason, so a corrupt snapshot costs a cold cache, not a
    boot failure. *)

type load_result =
  | Loaded of Json.t  (** Envelope valid; the decoded payload. *)
  | Missing  (** No file at [path] — first boot. *)
  | Quarantined of string
      (** The file was unreadable, failed its checksum, or carried the wrong
          version; it has been renamed to [path ^ ".corrupt"] and the reason
          is given.  Boot cold. *)

val format_version : int
(** Version of the envelope itself (distinct from the caller's payload
    [~version]). *)

val fnv64 : string -> string
(** FNV-1a 64-bit hash as 16 hex digits — the snapshot checksum (exposed
    for tests). *)

val save : ?attempts:int -> path:string -> version:int -> Json.t -> unit
(** [save ~path ~version payload] serializes the envelope to
    [path ^ ".tmp"] and renames it over [path] (atomic on POSIX).  IO
    errors are retried with backoff ([attempts], default 3) and the last
    one re-raised. *)

val load : path:string -> version:int -> load_result
(** Validate and decode the snapshot at [path].  Does not raise on bad
    input — see {!load_result}. *)
