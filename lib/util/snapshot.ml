(* Crash-safe snapshot files for warm-cache persistence.

   A snapshot is a JSON envelope around a compact JSON payload string:

     { "fastsc_snapshot": 1,          -- envelope format
       "version": <caller version>,   -- payload schema version
       "checksum": "<fnv1a-64 hex>",  -- over the payload string
       "payload": "<compact JSON>" }

   Writes go to [path ^ ".tmp"] and land with [Unix.rename], so a crash
   mid-write leaves either the previous snapshot or none — never a torn
   file at [path].  Loads validate the envelope and checksum; anything
   wrong (truncation, bit rot, a stale schema) moves the file aside to
   [path ^ ".corrupt"] and reports why, so the caller reboots with a cold
   cache instead of crashing — and the evidence survives for inspection. *)

type load_result =
  | Loaded of Json.t
  | Missing
  | Quarantined of string

let format_version = 1

(* FNV-1a, 64-bit: tiny, dependency-free, and plenty to catch torn writes
   and bit rot (this is an integrity check, not an authentication one). *)
let fnv64 s =
  let open Int64 in
  let h = ref 0xCBF29CE484222325L in
  String.iter (fun c -> h := mul (logxor !h (of_int (Char.code c))) 0x100000001B3L) s;
  Printf.sprintf "%016Lx" !h

let save ?(attempts = 3) ~path ~version payload =
  let body = Json.to_string ~pretty:false payload in
  let doc =
    Json.Obj
      [
        ("fastsc_snapshot", Json.Int format_version);
        ("version", Json.Int version);
        ("checksum", Json.String (fnv64 body));
        ("payload", Json.String body);
      ]
  in
  let text = Json.to_string ~pretty:false doc in
  let tmp = path ^ ".tmp" in
  Retry.with_backoff ~attempts
    ~sleep:(fun ms -> Unix.sleepf (ms /. 1000.0))
    (fun _attempt ->
      let oc = open_out_bin tmp in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc text;
          output_char oc '\n');
      Unix.rename tmp path)

(* Seeded fault for the verification harness (docs/DESIGN.md §11): load a
   snapshot without validating its checksum. *)
let fault_checksum_skip = lazy (Fault.enabled "snapshot-checksum-skip")

let quarantine ~path reason =
  (try Unix.rename path (path ^ ".corrupt") with Unix.Unix_error _ | Sys_error _ -> ());
  Quarantined reason

let load ~path ~version =
  if not (Sys.file_exists path) then Missing
  else
    match Json.parse_file path with
    | exception Json.Parse_error msg -> quarantine ~path msg
    | exception Sys_error msg -> quarantine ~path msg
    | doc -> (
      match
        ( Json.member "fastsc_snapshot" doc,
          Json.member "version" doc,
          Json.member "checksum" doc,
          Json.member "payload" doc )
      with
      | Some (Json.Int fmt), Some (Json.Int v), Some (Json.String sum), Some (Json.String body)
        ->
        if fmt <> format_version then
          quarantine ~path (Printf.sprintf "unsupported snapshot format %d" fmt)
        else if v <> version then
          quarantine ~path (Printf.sprintf "payload version %d (expected %d)" v version)
        else if (not (Lazy.force fault_checksum_skip)) && fnv64 body <> sum then
          quarantine ~path "checksum mismatch"
        else (
          match Json.parse body with
          | payload -> Loaded payload
          | exception Json.Parse_error msg -> quarantine ~path ("payload: " ^ msg))
      | _ -> quarantine ~path "missing or mistyped envelope field")
