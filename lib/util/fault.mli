(** Deliberate-fault injection for the layered verification harness.

    A catalog of seeded bugs, each at one named site in the code base,
    activated one at a time via [FASTSC_FAULT=<name>].  Tier D of
    [make verify] (and the [test_verify] meta-suite) runs each fault's listed
    suites and asserts at least one of them fails — a mutation-style check
    that the test suite would actually catch a regression of that shape.

    With [FASTSC_FAULT] unset every site takes its correct path; sites cache
    the decision in a module-level [lazy], so the correct path pays one
    forced-lazy read per call and nothing re-reads the environment in a hot
    loop. *)

type spec = {
  name : string;  (** The [FASTSC_FAULT] value that activates the fault. *)
  site : string;  (** [Module.function] the fault lives in. *)
  description : string;  (** What the seeded bug does. *)
  suites : string list;
      (** Test suites (alcotest suite names) expected to catch it; the fault
          sweep runs these and demands at least one failure. *)
}

val catalog : spec list
(** Every seeded fault, in a stable order. *)

val names : string list
(** The catalog's fault names. *)

val find : string -> spec option

val active : unit -> string option
(** The fault selected by [FASTSC_FAULT], resolved once per process.  Exits
    with code 2 on an unknown name — a typo must not silently inject
    nothing. *)

val enabled : string -> bool
(** [enabled name] is true when [FASTSC_FAULT] selects [name].
    @raise Invalid_argument if [name] is not in the catalog (a site guarding
    itself with a misspelled name would otherwise never fire). *)
