(** Monotonic deadlines for budget-bounded compilation.

    The serve layer gives every request a wall-clock budget; passes and SMT
    solves poll the deadline at chunk boundaries and abandon work by raising
    {!Expired}, which the degradation ladder catches to fall back to a
    cheaper tier.  All arithmetic is on [CLOCK_MONOTONIC] nanoseconds, so
    budgets survive NTP steps and wall-clock jumps.

    Two ways to consume a deadline:

    - {b explicit}: a {!t} is an immutable record, safe to hand to any
      domain and check with {!expired}/{!remaining_ms};
    - {b ambient}: {!with_deadline} installs a deadline in per-domain
      storage for the dynamic extent of a call, and {!check} (sprinkled
      through passes and solver loops) raises when it has passed.  Pool
      fan-outs re-install the caller's ambient deadline on worker domains
      via {!inherit_ambient}. *)

exception Expired of string
(** Raised by {!check} when the ambient deadline has passed.  The payload
    names the deadline's label and, when given, the site that noticed. *)

type t
(** An instant on the monotonic timeline. *)

val now_ns : unit -> int64
(** [CLOCK_MONOTONIC] now, in nanoseconds. *)

val now_s : unit -> float
(** Monotonic now in seconds — the drop-in replacement for
    [Unix.gettimeofday] in elapsed-time instrumentation. *)

val after_ms : ?label:string -> float -> t
(** [after_ms ~label b] is the deadline [b] milliseconds from now.
    @raise Invalid_argument when the budget is negative or not finite. *)

val label : t -> string

val remaining_ms : t -> float
(** Milliseconds until the deadline; negative once it has passed. *)

val expired : t -> bool

val with_deadline : t -> (unit -> 'a) -> 'a
(** [with_deadline d f] runs [f] with [d] as the ambient deadline of the
    current domain, restoring the previous one afterwards (exceptions
    included).  Nesting tightens: if an enclosing ambient deadline expires
    sooner than [d], it stays in force. *)

val current : unit -> t option
(** The ambient deadline of the calling domain, if any. *)

val inherit_ambient : ('a -> 'b) -> 'a -> 'b
(** [inherit_ambient f] captures the caller's ambient deadline and returns
    [f] wrapped so each call re-installs it — the bridge for work shipped to
    pool worker domains, which have their own (empty) ambient state. *)

val check : ?site:string -> unit -> unit
(** Poll the ambient deadline; a no-op when none is installed or time
    remains.
    @raise Expired when the ambient deadline has passed. *)
