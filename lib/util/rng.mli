(** Deterministic pseudo-random number generation.

    The paper's evaluation samples device parameters (maximum transmon
    frequencies) from a Gaussian distribution and generates random benchmark
    circuits (QAOA graphs, XEB single-qubit gates).  To make every experiment
    reproducible we use an explicit-state splitmix64 generator rather than the
    global [Random] module: every consumer receives a [t] and identical seeds
    yield identical devices, circuits and results on any platform. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds give equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator that will produce the same future
    stream as [t]. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t].  Streams of the
    parent and child are independent for practical purposes; used to give each
    subsystem (device, circuit, noise) its own stream. *)

val split_n : t -> int -> t array
(** [split_n t n] draws [n] child generators from [t] in index order,
    advancing [t] exactly [n] times.  Parallel drivers derive one child per
    cell up front, so each cell's stream — and hence the result — does not
    depend on how cells are scheduled over domains.
    @raise Invalid_argument on a negative count. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform in [\[lo, hi)]. *)

val bool : t -> bool
(** Fair coin flip. *)

val gaussian : ?mean:float -> ?std:float -> t -> float
(** Normal deviate via the Box–Muller transform. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniformly random element of a non-empty array.
    @raise Invalid_argument on an empty array. *)

val sample : t -> int -> 'a list -> 'a list
(** [sample t k xs] draws [k] distinct elements of [xs] uniformly (reservoir
    sampling); returns all of [xs] when [k >= List.length xs]. *)
