(** Bounded retry with exponential backoff and deterministic jitter.

    Used by the serve layer around snapshot IO.  Backoff for attempt [k] is
    [min (base_ms * factor^k) max_ms], scaled by a jitter factor in
    [1-jitter, 1+jitter] that is a pure hash of [k] — deterministic, so test
    runs replay identical schedules. *)

val backoff_ms :
  base_ms:float -> factor:float -> max_ms:float -> jitter:float -> int -> float
(** The sleep (in milliseconds) before retrying after attempt [k] failed.
    Exposed for tests; always [>= 0]. *)

val with_backoff :
  ?attempts:int ->
  ?base_ms:float ->
  ?factor:float ->
  ?max_ms:float ->
  ?jitter:float ->
  ?sleep:(float -> unit) ->
  ?should_retry:(exn -> bool) ->
  (int -> 'a) ->
  'a
(** [with_backoff f] calls [f 0]; on an exception it sleeps per the backoff
    schedule and calls [f 1], [f 2], … up to [attempts] (default 3) total
    calls, then re-raises the last exception with its backtrace.
    [should_retry] (default: retry everything) can veto a retry for
    exceptions that will never heal; [sleep] (default [Unix.sleepf],
    argument in milliseconds) is injectable for tests.
    @raise Invalid_argument when [attempts < 1]. *)
