(** Minimal JSON emitter and reader.

    Just enough JSON to hand schedules, metrics and control waveforms to
    external tooling (plotters, control stacks) without adding a dependency.
    Strings are escaped per RFC 8259, floats printed with round-trip
    precision, and non-finite floats encoded as strings (JSON has no
    Infinity/NaN literals).  The reader exists for the verification harness:
    the perf gate parses committed BENCH_*.json baselines, and the schema
    tests parse [fastsc compile --trace] reports. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Serialize; [pretty] (default true) indents with two spaces. *)

val escape : string -> string
(** The quoted, escaped form of a string (exposed for tests). *)

exception Parse_error of string
(** Raised by the reader on malformed input, with an offset and reason. *)

val max_depth : int
(** Maximum container nesting {!parse} accepts (512).  Deeper input raises
    {!Parse_error} instead of overflowing the stack — the reader sits on the
    serve daemon's request path, where bodies are adversarial. *)

val parse : string -> t
(** Parse one JSON value (surrounding whitespace allowed; anything after the
    value is an error).  Number tokens without ['.'], ['e'] or ['E'] become
    {!Int}, all others {!Float}; [\u] escapes decode to UTF-8, surrogate
    pairs included.
    @raise Parse_error on malformed input or nesting beyond {!max_depth}. *)

val parse_file : string -> t
(** {!parse} the entire contents of a file; errors are prefixed with the
    path. *)

val member : string -> t -> t option
(** [member key json] is the field [key] of an {!Obj}, and [None] on a
    missing key or any non-object value. *)
