(* Fixed-size domain pool with chunked, deterministic map/iter.

   Execution model: a batch of [n] cells is cut into at most [jobs * chunks_per_job]
   index ranges.  Executors — the calling domain plus any idle workers — claim
   chunks from an atomic counter and write results back by index.  The caller
   always executes chunks itself until the counter is exhausted and only then
   blocks on the batch latch, so a batch completes even if every worker is
   busy (or the pool has none) — this is what makes nested maps safe. *)

let chunks_per_job = 4

(* --- the process-wide parallelism default --- *)

let env_jobs () =
  match Sys.getenv_opt "FASTSC_JOBS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some j when j >= 1 -> Some j
    | _ -> None)

let override = Atomic.make None

let default_jobs () =
  match Atomic.get override with
  | Some j -> j
  | None -> (
    match env_jobs () with
    | Some j -> j
    | None -> max 1 (Domain.recommended_domain_count () - 1))

let set_default_jobs j =
  if j < 1 then invalid_arg "Pool.set_default_jobs: jobs must be >= 1";
  Atomic.set override (Some j)

(* --- the pool proper --- *)

type t = {
  pool_jobs : int;
  mutex : Mutex.t;
  wake : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let jobs t = t.pool_jobs

let worker_loop t =
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.queue && not t.stop do
      Condition.wait t.wake t.mutex
    done;
    if t.stop && Queue.is_empty t.queue then Mutex.unlock t.mutex
    else begin
      let job = Queue.pop t.queue in
      Mutex.unlock t.mutex;
      (* a raising job must not kill the worker: batch jobs capture their own
         failures (see run_batch), so anything escaping here is a directly
         [submit]ted job whose error belongs to that job alone — the pool
         keeps serving, and shutdown's Domain.join never re-raises *)
      (try job () with _ -> ());
      loop ()
    end
  in
  loop ()

let create ?jobs () =
  let pool_jobs = match jobs with Some j -> j | None -> default_jobs () in
  if pool_jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      pool_jobs;
      mutex = Mutex.create ();
      wake = Condition.create ();
      queue = Queue.create ();
      stop = false;
      workers = [];
    }
  in
  t.workers <- List.init (pool_jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.wake;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let submit t job =
  Mutex.lock t.mutex;
  if t.stop then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool: batch submitted to a pool after shutdown"
  end;
  Queue.push job t.queue;
  Condition.signal t.wake;
  Mutex.unlock t.mutex

(* The shared global pool, (re)created lazily so `set_default_jobs` and
   FASTSC_JOBS take effect on next use.  Guarded by its own mutex. *)

let global_mutex = Mutex.create ()

let global : t option ref = ref None

let exit_hook_installed = ref false

let with_global_pool k =
  Mutex.lock global_mutex;
  let want = default_jobs () in
  let pool =
    match !global with
    | Some p when p.pool_jobs = want -> p
    | prev ->
      (match prev with Some p -> shutdown p | None -> ());
      let p = create ~jobs:want () in
      global := Some p;
      if not !exit_hook_installed then begin
        exit_hook_installed := true;
        at_exit (fun () ->
            Mutex.lock global_mutex;
            let p = !global in
            global := None;
            Mutex.unlock global_mutex;
            Option.iter shutdown p)
      end;
      p
  in
  Mutex.unlock global_mutex;
  k pool

(* --- chunked batch execution --- *)

type batch = {
  b_mutex : Mutex.t;
  b_done : Condition.t;
  mutable remaining : int;  (* chunks not yet finished *)
  mutable failure : (exn * Printexc.raw_backtrace) option;
}

(* Run [work i] for every [i] in [0, n); [width] executors in total. *)
let run_batch ~width ~submit_helper n work =
  if n > 0 then begin
    if width <= 1 || n = 1 then
      for i = 0 to n - 1 do
        work i
      done
    else begin
      let n_chunks = min n (width * chunks_per_job) in
      let next = Atomic.make 0 in
      let failed = Atomic.make false in
      let batch =
        { b_mutex = Mutex.create (); b_done = Condition.create (); remaining = n_chunks; failure = None }
      in
      let chunk_bounds c = (c * n / n_chunks, (c + 1) * n / n_chunks) in
      let record_failure exn bt =
        Atomic.set failed true;
        Mutex.lock batch.b_mutex;
        if batch.failure = None then batch.failure <- Some (exn, bt);
        Mutex.unlock batch.b_mutex
      in
      let finish_chunk () =
        Mutex.lock batch.b_mutex;
        batch.remaining <- batch.remaining - 1;
        if batch.remaining = 0 then Condition.broadcast batch.b_done;
        Mutex.unlock batch.b_mutex
      in
      let rec execute () =
        let c = Atomic.fetch_and_add next 1 in
        if c < n_chunks then begin
          (* after a failure remaining chunks are claimed but skipped, so the
             latch still drains and the caller can re-raise promptly *)
          if not (Atomic.get failed) then begin
            let lo, hi = chunk_bounds c in
            try
              for i = lo to hi - 1 do
                work i
              done
            with exn -> record_failure exn (Printexc.get_raw_backtrace ())
          end;
          finish_chunk ();
          execute ()
        end
      in
      for _ = 1 to width - 1 do
        submit_helper execute
      done;
      execute ();
      Mutex.lock batch.b_mutex;
      while batch.remaining > 0 do
        Condition.wait batch.b_done batch.b_mutex
      done;
      let failure = batch.failure in
      Mutex.unlock batch.b_mutex;
      match failure with
      | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
      | None -> ()
    end
  end

let run ?pool ?jobs n work =
  match (pool, jobs) with
  | _, Some 1 -> run_batch ~width:1 ~submit_helper:(fun _ -> ()) n work
  | Some p, _ ->
    let width = match jobs with Some j -> j | None -> p.pool_jobs in
    run_batch ~width ~submit_helper:(submit p) n work
  | None, Some j when j >= 2 ->
    (* explicit jobs without a pool: ephemeral helper domains for this batch *)
    let helpers = ref [] in
    let spawn job = helpers := Domain.spawn job :: !helpers in
    Fun.protect
      ~finally:(fun () -> List.iter Domain.join !helpers)
      (fun () -> run_batch ~width:j ~submit_helper:spawn n work)
  | None, Some j ->
    if j < 1 then invalid_arg "Pool: jobs must be >= 1";
    run_batch ~width:1 ~submit_helper:(fun _ -> ()) n work
  | None, None ->
    if default_jobs () = 1 then run_batch ~width:1 ~submit_helper:(fun _ -> ()) n work
    else
      with_global_pool (fun p -> run_batch ~width:p.pool_jobs ~submit_helper:(submit p) n work)

(* --- deterministic range sharding --- *)

(* Seeded fault for the verification harness (docs/DESIGN.md §11): interior
   shard starts shifted up by one, so one element per boundary is skipped. *)
let fault_shard = lazy (Fault.enabled "shard-boundary-off-by-one")

let ranges ?(align = 1) ~jobs n =
  if align < 1 then invalid_arg "Pool.ranges: align must be >= 1";
  if jobs < 1 then invalid_arg "Pool.ranges: jobs must be >= 1";
  if n <= 0 then [||]
  else begin
    (* Boundaries are a pure function of (n, jobs, align): cut the index
       space into align-sized blocks and spread whole blocks evenly over at
       most [jobs] shards.  Execution never feeds back into the cut, which
       is what lets range-sharded kernels promise identical results at any
       actual parallelism. *)
    let blocks = (n + align - 1) / align in
    let w = min jobs blocks in
    let skew = if Lazy.force fault_shard then 1 else 0 in
    let bound i = if i = w then n else min n (i * blocks / w * align) in
    Array.init w (fun i ->
        let lo = bound i and hi = bound (i + 1) in
        ((if i > 0 then min hi (lo + skew) else lo), hi))
  end

let run_ranges ?pool ?jobs ?align n f =
  (* The *requested* width fixes the shard boundaries; the pool's actual
     size only caps how many executors run them.  A bit-identity test can
     therefore ask for [~jobs:4] shards on a serial pool and still exercise
     exactly the boundaries a 4-domain run would use. *)
  let requested =
    match (jobs, pool) with
    | Some j, _ ->
      if j < 1 then invalid_arg "Pool.run_ranges: jobs must be >= 1";
      j
    | None, Some p -> p.pool_jobs
    | None, None -> default_jobs ()
  in
  let rs = ranges ?align ~jobs:requested n in
  let k = Array.length rs in
  let work i =
    let lo, hi = rs.(i) in
    f lo hi
  in
  if k = 0 then ()
  else if k = 1 then work 0
  else begin
    let go p = run_batch ~width:(min k p.pool_jobs) ~submit_helper:(submit p) k work in
    match pool with Some p -> go p | None -> with_global_pool go
  end

(* --- combinators --- *)

(* Seeded fault for the verification harness (docs/DESIGN.md §11). *)
let fault_scramble = lazy (Fault.enabled "pool-scramble")

let mapi_array ?pool ?jobs f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let scrambled = Lazy.force fault_scramble in
    let results = Array.make n None in
    run ?pool ?jobs n (fun i ->
        let slot = if scrambled then n - 1 - i else i in
        results.(slot) <- Some (f i xs.(i)));
    Array.map (function Some v -> v | None -> assert false) results
  end

let map_array ?pool ?jobs f xs = mapi_array ?pool ?jobs (fun _ x -> f x) xs

let iter_array ?pool ?jobs f xs = run ?pool ?jobs (Array.length xs) (fun i -> f xs.(i))

let mapi ?pool ?jobs f xs = Array.to_list (mapi_array ?pool ?jobs f (Array.of_list xs))

let map ?pool ?jobs f xs = mapi ?pool ?jobs (fun _ x -> f x) xs

let iter ?pool ?jobs f xs = iter_array ?pool ?jobs f (Array.of_list xs)
