(* Monotonic deadlines for budget-bounded compilation.

   A deadline is an immutable instant on the CLOCK_MONOTONIC timeline (via
   bechamel's clock stub — Unix.gettimeofday would make budgets jump with
   NTP steps).  Being a plain record it can be checked from any domain; the
   *ambient* deadline below is per-domain state, installed around a
   computation by [with_deadline] and re-installed on pool workers with
   [inherit_ambient] so fan-out solves stay cancellable. *)

exception Expired of string

type t = { label : string; expires_at_ns : int64 }

let label t = t.label

let now_ns () = Monotonic_clock.now ()

let now_s () = Int64.to_float (now_ns ()) *. 1e-9

let after_ms ?(label = "deadline") ms =
  if not (Float.is_finite ms) || ms < 0.0 then
    invalid_arg "Deadline.after_ms: budget must be finite and >= 0";
  { label; expires_at_ns = Int64.add (now_ns ()) (Int64.of_float (ms *. 1e6)) }

let remaining_ms t = Int64.to_float (Int64.sub t.expires_at_ns (now_ns ())) *. 1e-6

let expired t = Int64.compare (now_ns ()) t.expires_at_ns >= 0

(* --- the ambient per-domain deadline --- *)

let ambient : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let current () = Domain.DLS.get ambient

let with_deadline d f =
  let prev = Domain.DLS.get ambient in
  (* nesting tightens, never loosens: an inner, longer deadline cannot
     outlive the budget already imposed by an enclosing one *)
  let effective =
    match prev with
    | Some p when Int64.compare p.expires_at_ns d.expires_at_ns <= 0 -> p
    | _ -> d
  in
  Domain.DLS.set ambient (Some effective);
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient prev) f

let inherit_ambient f =
  match current () with
  | None -> f
  | Some d -> fun x -> with_deadline d (fun () -> f x)

let check ?site () =
  match Domain.DLS.get ambient with
  | Some d when expired d ->
    let where = match site with None -> d.label | Some s -> d.label ^ " at " ^ s in
    raise (Expired where)
  | _ -> ()

let () =
  Printexc.register_printer (function
    | Expired label -> Some (Printf.sprintf "Deadline.Expired(%s)" label)
    | _ -> None)
