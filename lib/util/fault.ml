(* Deliberate-fault injection for the layered verification harness.

   Each catalog entry names one seeded bug at one specific site in the code
   base (a flipped comparison, a dropped cache invalidation, an off-by-one in
   an index computation).  The site stays on its correct path unless the
   process was started with FASTSC_FAULT=<name>, in which case exactly that
   fault activates.  Tier D of `make verify` (and the test_verify meta-suite)
   runs the listed suites under each fault and demands that at least one of
   them fails — measuring that the test suite has teeth, not just that it is
   green.

   Sites guard themselves with a module-level [lazy] around {!enabled}, so
   the cost on the correct path is one forced-lazy read per call — nothing in
   a kernel's inner loop ever re-reads the environment. *)

type spec = {
  name : string;
  site : string;
  description : string;
  suites : string list;
}

let catalog =
  [
    {
      name = "smt-resolve-flip";
      site = "Smt.resolve_upward";
      description =
        "dominated-interval comparison flipped: no blocked interval ever bumps the running \
         value, so infeasible placements are reported feasible";
      suites = [ "smt"; "prop_smt" ];
    };
    {
      name = "smt-sideband-skip";
      site = "Smt.self_constraints_ok";
      description = "self-sideband constraints reported satisfiable at any delta";
      suites = [ "smt" ];
    };
    {
      name = "freq-cache-stale-reset";
      site = "Freq_alloc.reset_solver_cache";
      description =
        "cache invalidation dropped: reset zeroes the counters but leaves stale entries in \
         the memo table";
      suites = [ "cache" ];
    };
    {
      name = "freq-cache-key-alpha";
      site = "Freq_alloc.solve_separated";
      description =
        "memo key built with alpha = 0: problems differing only in the sideband offset \
         share a cache entry";
      suites = [ "cache" ];
    };
    {
      name = "sim-scatter-off-by-one";
      site = "Statevector.apply_matrix1";
      description =
        "bit-scatter index shift off by one: amplitude pairs overlap and the kernel \
         overwrites amplitudes it still needs";
      suites = [ "statevector"; "prop_sim" ];
    };
    {
      name = "sim-operand-swap";
      site = "Statevector.apply_matrix2";
      description = "operand bit masks swapped: the 4x4 gate acts with its qubits reversed";
      suites = [ "statevector"; "prop_sim" ];
    };
    {
      name = "pool-scramble";
      site = "Pool.mapi_array";
      description = "results written back in reverse index order instead of by input index";
      suites = [ "pool" ];
    };
    {
      name = "rng-split-alias";
      site = "Rng.split";
      description =
        "child generator aliases the parent's future stream instead of being seeded from a \
         fresh draw";
      suites = [ "rng" ];
    };
    {
      name = "color-greedy-clash";
      site = "Coloring.greedy";
      description = "neighbour colors ignored: every vertex is assigned color 0";
      suites = [ "coloring"; "prop_coloring" ];
    };
    {
      name = "sched-xtalk-drop";
      site = "Schedule.evaluate";
      description = "crosstalk accumulator dropped: metrics report zero crosstalk error";
      suites = [ "algorithms" ];
    };
    {
      name = "smt-deadline-skip";
      site = "Smt.deadline_check";
      description =
        "cooperative deadline polls in the solver loops skipped: a solve past its budget \
         runs to completion instead of raising Deadline.Expired";
      suites = [ "deadline" ];
    };
    {
      name = "serve-ladder-tier";
      site = "Ladder.compile";
      description =
        "degradation ladder labels the response with the first tier attempted instead of \
         the tier that actually produced the witness";
      suites = [ "serve" ];
    };
    {
      name = "snapshot-checksum-skip";
      site = "Snapshot.load";
      description =
        "snapshot loaded without checksum validation: a corrupted payload is deserialized \
         into the warm cache instead of being quarantined";
      suites = [ "snapshot" ];
    };
    {
      name = "fusion-identity-skip";
      site = "Fusion.plan";
      description =
        "end-of-circuit flush drops every pending fused 2x2 as if it were the identity: \
         trailing 1q gate runs vanish from the fused program";
      suites = [ "fusion"; "prop_sim" ];
    };
    {
      name = "shard-boundary-off-by-one";
      site = "Pool.ranges";
      description =
        "interior shard starts shifted up by one: each boundary skips one amplitude index, \
         so sharded gate application diverges from the serial reference";
      suites = [ "pool"; "prop_sim" ];
    };
    {
      name = "murali-delay-threshold";
      site = "Murali_delay.pack";
      description =
        "delay-threshold comparison flipped: conflicting simultaneous gates pack together \
         and harmless distant pairs serialize";
      suites = [ "rivals" ];
    };
    {
      name = "cqc-swap-score";
      site = "Cqc_synergy.route";
      description =
        "conflict-pressure term dropped from SWAP scoring: routing degenerates to plain \
         depth lookahead and ignores spectrum collisions with concurrent gates";
      suites = [ "rivals" ];
    };
  ]

let names = List.map (fun s -> s.name) catalog

let find name = List.find_opt (fun s -> s.name = name) catalog

(* The active fault is resolved once per process.  An unknown name is a hard
   error: a typo in FASTSC_FAULT silently injecting nothing would make the
   meta-suite green for the wrong reason. *)
let active_fault =
  lazy
    (match Sys.getenv_opt "FASTSC_FAULT" with
    | None | Some "" -> None
    | Some name ->
      if List.mem name names then Some name
      else begin
        Printf.eprintf "FASTSC_FAULT=%s: unknown fault (catalog: %s)\n%!" name
          (String.concat " " names);
        exit 2
      end)

let active () = Lazy.force active_fault

let enabled name =
  if not (List.mem name names) then
    invalid_arg (Printf.sprintf "Fault.enabled: %S is not in the catalog" name);
  active () = Some name
