type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators" (OOPSLA 2014).  Tiny state, excellent statistical quality for
   simulation purposes, and trivially reproducible across platforms. *)
let int64 t =
  let z = Int64.add t.state golden_gamma in
  t.state <- z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Seeded fault for the verification harness (docs/DESIGN.md §11). *)
let fault_split_alias = lazy (Fault.enabled "rng-split-alias")

let split t =
  if Lazy.force fault_split_alias then { state = t.state }
  else begin
    let seed = int64 t in
    { state = seed }
  end

let split_n t n =
  if n < 0 then invalid_arg "Rng.split_n: negative count";
  (* Explicit loop: Array.init's evaluation order is unspecified, and the
     children must be drawn from the parent stream in index order. *)
  let out = Array.init n (fun _ -> { state = 0L }) in
  for i = 0 to n - 1 do
    out.(i) <- split t
  done;
  out

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let bound64 = Int64.of_int bound in
  let rec draw () =
    let raw = Int64.shift_right_logical (int64 t) 1 in
    let value = Int64.rem raw bound64 in
    if Int64.sub (Int64.sub raw value) (Int64.sub Int64.max_int bound64) > 0L
    then draw ()
    else Int64.to_int value
  in
  draw ()

let float t =
  (* 53 random mantissa bits scaled into [0,1). *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let uniform t lo hi = lo +. ((hi -. lo) *. float t)

let bool t = Int64.logand (int64 t) 1L = 1L

let gaussian ?(mean = 0.0) ?(std = 1.0) t =
  let rec nonzero () =
    let u = float t in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float t in
  let radius = sqrt (-2.0 *. log u1) in
  mean +. (std *. radius *. cos (2.0 *. Float.pi *. u2))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))

let sample t k xs =
  let n = List.length xs in
  if k >= n then xs
  else begin
    let reservoir = Array.make k (List.hd xs) in
    List.iteri
      (fun i x ->
        if i < k then reservoir.(i) <- x
        else
          let j = int t (i + 1) in
          if j < k then reservoir.(j) <- x)
      xs;
    Array.to_list reservoir
  end
