type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buffer = Buffer.create (String.length s + 2) in
  Buffer.add_char buffer '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\r' -> Buffer.add_string buffer "\\r"
      | '\t' -> Buffer.add_string buffer "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.add_char buffer '"';
  Buffer.contents buffer

let float_repr f =
  if Float.is_finite f then begin
    (* ensure the token is a valid JSON number (needs . or e for floats) *)
    let s = Printf.sprintf "%.17g" f in
    if String.contains s '.' || String.contains s 'e' || String.contains s 'n' then s
    else s ^ ".0"
  end
  else escape (Printf.sprintf "%h" f)

let to_string ?(pretty = true) value =
  let buffer = Buffer.create 256 in
  let newline depth =
    if pretty then begin
      Buffer.add_char buffer '\n';
      Buffer.add_string buffer (String.make (2 * depth) ' ')
    end
  in
  let rec emit depth = function
    | Null -> Buffer.add_string buffer "null"
    | Bool b -> Buffer.add_string buffer (if b then "true" else "false")
    | Int i -> Buffer.add_string buffer (string_of_int i)
    | Float f -> Buffer.add_string buffer (float_repr f)
    | String s -> Buffer.add_string buffer (escape s)
    | List [] -> Buffer.add_string buffer "[]"
    | List items ->
      Buffer.add_char buffer '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buffer ',';
          newline (depth + 1);
          emit (depth + 1) item)
        items;
      newline depth;
      Buffer.add_char buffer ']'
    | Obj [] -> Buffer.add_string buffer "{}"
    | Obj fields ->
      Buffer.add_char buffer '{';
      List.iteri
        (fun i (key, item) ->
          if i > 0 then Buffer.add_char buffer ',';
          newline (depth + 1);
          Buffer.add_string buffer (escape key);
          Buffer.add_string buffer (if pretty then ": " else ":");
          emit (depth + 1) item)
        fields;
      newline depth;
      Buffer.add_char buffer '}'
  in
  emit 0 value;
  Buffer.contents buffer

(* -- parsing --------------------------------------------------------------- *)

exception Parse_error of string

(* A recursive-descent reader for the subset of JSON the emitter above
   produces (which is all of RFC 8259 minus nothing: the verify harness reads
   back BENCH_*.json benchmark records, perf baselines and `--trace`
   reports).  Numbers without '.', 'e' or 'E' parse as [Int], everything else
   as [Float]; \u escapes decode to UTF-8 (surrogate pairs included).

   Nesting is capped at [max_depth]: the reader also sits on the serve
   daemon's request path, where an adversarial body like 100k unclosed '['
   must produce a Parse_error, not a stack overflow that kills the
   process. *)

let max_depth = 512

let parse text =
  let len = String.length text in
  let pos = ref 0 in
  let error fmt =
    Printf.ksprintf (fun msg -> raise (Parse_error (Printf.sprintf "at offset %d: %s" !pos msg))) fmt
  in
  let peek () = if !pos < len then Some text.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < len && (match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | Some got -> error "expected %C, found %C" c got
    | None -> error "expected %C, found end of input" c
  in
  let literal word value =
    let n = String.length word in
    if !pos + n <= len && String.sub text !pos n = word then begin
      pos := !pos + n;
      value
    end
    else error "invalid literal (expected %s)" word
  in
  let add_utf8 buffer code =
    if code < 0x80 then Buffer.add_char buffer (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buffer (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buffer (Char.chr (0x80 lor (code land 0x3F)))
    end
    else if code < 0x10000 then begin
      Buffer.add_char buffer (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buffer (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buffer (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buffer (Char.chr (0xF0 lor (code lsr 18)));
      Buffer.add_char buffer (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
      Buffer.add_char buffer (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buffer (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > len then error "truncated \\u escape";
    let value = ref 0 in
    for _ = 1 to 4 do
      let digit =
        match text.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | c -> error "invalid hex digit %C in \\u escape" c
      in
      value := (!value lsl 4) lor digit;
      advance ()
    done;
    !value
  in
  let parse_string () =
    expect '"';
    let buffer = Buffer.create 16 in
    let rec scan () =
      if !pos >= len then error "unterminated string";
      match text.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= len then error "unterminated escape";
         match text.[!pos] with
         | '"' -> Buffer.add_char buffer '"'; advance ()
         | '\\' -> Buffer.add_char buffer '\\'; advance ()
         | '/' -> Buffer.add_char buffer '/'; advance ()
         | 'b' -> Buffer.add_char buffer '\b'; advance ()
         | 'f' -> Buffer.add_char buffer '\012'; advance ()
         | 'n' -> Buffer.add_char buffer '\n'; advance ()
         | 'r' -> Buffer.add_char buffer '\r'; advance ()
         | 't' -> Buffer.add_char buffer '\t'; advance ()
         | 'u' ->
           advance ();
           let code = hex4 () in
           let code =
             (* a high surrogate must combine with the following \uXXXX low
                surrogate into one scalar value *)
             if code >= 0xD800 && code <= 0xDBFF
                && !pos + 1 < len && text.[!pos] = '\\' && text.[!pos + 1] = 'u'
             then begin
               pos := !pos + 2;
               let low = hex4 () in
               if low >= 0xDC00 && low <= 0xDFFF then
                 0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00)
               else error "unpaired surrogate in \\u escape"
             end
             else code
           in
           add_utf8 buffer code
         | c -> error "invalid escape \\%C" c);
        scan ()
      | c ->
        Buffer.add_char buffer c;
        advance ();
        scan ()
    in
    scan ();
    Buffer.contents buffer
  in
  let parse_number () =
    let start = !pos in
    let number_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < len && number_char text.[!pos] do
      advance ()
    done;
    let token = String.sub text start (!pos - start) in
    let is_float = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') token in
    if is_float then
      match float_of_string_opt token with
      | Some f -> Float f
      | None -> error "invalid number %S" token
    else
      match int_of_string_opt token with
      | Some i -> Int i
      | None -> (
        (* out-of-range integer literals still parse, as floats *)
        match float_of_string_opt token with
        | Some f -> Float f
        | None -> error "invalid number %S" token)
  in
  let rec parse_value depth =
    if depth > max_depth then
      error "nesting deeper than %d levels (adversarial input?)" max_depth;
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let item = parse_value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (item :: acc)
          | Some ']' ->
            advance ();
            List.rev (item :: acc)
          | Some c -> error "expected ',' or ']', found %C" c
          | None -> error "unterminated array"
        in
        List (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let value = parse_value (depth + 1) in
          (key, value)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields (kv :: acc)
          | Some '}' ->
            advance ();
            List.rev (kv :: acc)
          | Some c -> error "expected ',' or '}', found %C" c
          | None -> error "unterminated object"
        in
        Obj (fields [])
      end
    | Some ('0' .. '9' | '-') -> parse_number ()
    | Some c -> error "unexpected character %C" c
  in
  let value = parse_value 0 in
  skip_ws ();
  if !pos <> len then error "trailing garbage after value";
  value

let parse_file path =
  let ic = open_in_bin path in
  let text =
    Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
        really_input_string ic (in_channel_length ic))
  in
  try parse text
  with Parse_error msg -> raise (Parse_error (Printf.sprintf "%s: %s" path msg))

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
