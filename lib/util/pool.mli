(** Fixed-size domain pool for data-parallel sweeps.

    The experiment drivers fan large grids of independent
    compile-and-evaluate cells over OCaml 5 domains.  This module is the
    from-scratch substitute for [domainslib]: a pool of worker domains plus
    chunked [map]/[iter] combinators over lists and arrays with

    - {b deterministic results}: outputs are stored by input index, so
      [map f xs] equals [List.map f xs] element for element regardless of
      execution order or the number of domains;
    - {b exception transparency}: the first exception raised by any cell is
      captured (with its backtrace) and re-raised on the calling domain once
      the batch has drained;
    - {b a strict sequential fallback} at [jobs = 1] (or on empty/singleton
      inputs): the combinators reduce to plain [Array.map]/[List.map], so a
      single-job run is the reference semantics, not a special case;
    - {b nested-map safety}: the caller always participates in executing its
      own batch, so a [map] issued from inside another [map]'s cell can
      always complete itself even when every worker is busy — there is no
      configuration that deadlocks.

    Parallelism is chosen per call: an explicit [~jobs] wins, then the
    [~pool]'s size, then the process-wide default ({!default_jobs}: the
    [FASTSC_JOBS] environment variable when set, otherwise
    [Domain.recommended_domain_count () - 1], at least 1).  Cells must be
    independent: they run on arbitrary domains in arbitrary order, so any
    shared state they touch must be synchronized (the solver caches in
    [Freq_alloc] and [Crosstalk] are mutex-protected for exactly this
    reason). *)

type t
(** A pool of worker domains.  A pool of size [j] holds [j - 1] workers;
    the domain that submits a batch is the [j]-th executor. *)

val default_jobs : unit -> int
(** The process-wide parallelism default: the value given to
    {!set_default_jobs} if any, else a positive integer parsed from
    [FASTSC_JOBS], else [max 1 (Domain.recommended_domain_count () - 1)]. *)

val set_default_jobs : int -> unit
(** Override {!default_jobs} (the [--jobs] CLI flag lands here).  The shared
    global pool is re-sized lazily on next use.
    @raise Invalid_argument if the argument is [< 1]. *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns a pool with [jobs - 1] worker domains
    (default {!default_jobs}).  [jobs = 1] spawns no domains at all.
    @raise Invalid_argument if [jobs < 1]. *)

val jobs : t -> int
(** The parallelism the pool was created with. *)

val shutdown : t -> unit
(** Stop and join the pool's workers.  Idempotent.  Jobs already queued are
    still drained before the workers exit; batches and jobs may no longer be
    submitted afterwards.  The implicit global pool is shut down
    automatically at exit. *)

val submit : t -> (unit -> unit) -> unit
(** [submit t job] enqueues one fire-and-forget job for a worker domain (the
    serve daemon's request dispatch).  The job owns its error handling: an
    exception it raises is swallowed by the worker, which keeps serving.
    With [jobs = 1] the pool has no workers and a submitted job would never
    run — callers must execute inline in that configuration (see {!jobs}).
    @raise Invalid_argument after {!shutdown}. *)

val ranges : ?align:int -> jobs:int -> int -> (int * int) array
(** [ranges ~align ~jobs n] cuts the index space [0, n) into at most [jobs]
    contiguous half-open ranges [(lo, hi)].  Every interior boundary is a
    multiple of [align] (default 1), ranges are non-empty and cover [0, n)
    exactly, and the cut is a pure function of [(n, jobs, align)] — it never
    depends on pool size or execution order, which is what lets
    range-sharded kernels stay bit-identical at any actual parallelism.
    Returns [[||]] when [n <= 0].
    @raise Invalid_argument if [align < 1] or [jobs < 1]. *)

val run_ranges : ?pool:t -> ?jobs:int -> ?align:int -> int -> (int -> int -> unit) -> unit
(** [run_ranges ~jobs ~align n f] partitions [0, n) with {!ranges} and runs
    [f lo hi] on each range in parallel.  The {e requested} width ([~jobs]
    when given, else the [~pool]'s size, else {!default_jobs}) fixes the
    shard boundaries; the pool's actual size only caps how many executors
    run them — so results are identical whether the shards run on one
    domain or many.  A single-range cut runs inline on the caller. *)

val map_array : ?pool:t -> ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map] with deterministic ordering.  Uses [~pool] when
    given, else the shared global pool (created on first use); [~jobs] caps
    or raises the parallelism for this one batch. *)

val mapi_array : ?pool:t -> ?jobs:int -> (int -> 'a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.mapi]; the index identifies the cell (drivers derive
    per-cell RNG seeds from it). *)

val iter_array : ?pool:t -> ?jobs:int -> ('a -> unit) -> 'a array -> unit
(** Parallel [Array.iter] (effects only; no ordering guarantee between
    cells, which is why drivers compute in [map] and print afterwards). *)

val map : ?pool:t -> ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel [List.map] with deterministic ordering. *)

val mapi : ?pool:t -> ?jobs:int -> (int -> 'a -> 'b) -> 'a list -> 'b list
(** Parallel [List.mapi]. *)

val iter : ?pool:t -> ?jobs:int -> ('a -> unit) -> 'a list -> unit
(** Parallel [List.iter]. *)
