(* Grover search over d data qubits, with the multi-controlled-Z phase
   oracle compiled down to the gate set via a v-chain of Toffolis (each
   Toffoli in the standard 7-T/6-CNOT decomposition).  A device with n
   qubits hosts the largest d such that d data qubits plus the max 0 (d-3)
   clean ancillas the v-chain needs fit: d + max 0 (d-3) <= n. *)

let data_qubits ~n =
  if n < 1 then invalid_arg "Grover.data_qubits: needs at least 1 qubit";
  let d = ref 1 in
  while !d + 1 + max 0 (!d + 1 - 3) <= n do
    incr d
  done;
  !d

(* Standard 7-T Toffoli: controls a b, target t. *)
let toffoli b a c t =
  Circuit.add b Gate.H [ t ];
  Circuit.add b Gate.Cnot [ c; t ];
  Circuit.add b Gate.Tdg [ t ];
  Circuit.add b Gate.Cnot [ a; t ];
  Circuit.add b Gate.T [ t ];
  Circuit.add b Gate.Cnot [ c; t ];
  Circuit.add b Gate.Tdg [ t ];
  Circuit.add b Gate.Cnot [ a; t ];
  Circuit.add b Gate.T [ c ];
  Circuit.add b Gate.T [ t ];
  Circuit.add b Gate.H [ t ];
  Circuit.add b Gate.Cnot [ a; c ];
  Circuit.add b Gate.T [ a ];
  Circuit.add b Gate.Tdg [ c ];
  Circuit.add b Gate.Cnot [ a; c ]

(* Phase flip on |1...1> of data qubits [0, d).  Ancillas (clean, restored)
   start at index d. *)
let mcz b ~d =
  match d with
  | 1 -> Circuit.add b Gate.Z [ 0 ]
  | 2 -> Circuit.add b Gate.Cz [ 0; 1 ]
  | 3 ->
    (* CCZ = H on the target around a Toffoli *)
    Circuit.add b Gate.H [ 2 ];
    toffoli b 0 1 2;
    Circuit.add b Gate.H [ 2 ]
  | _ ->
    (* v-chain: AND the d-1 controls pairwise into ancillas, CCZ off the
       last ancilla onto the target, then uncompute in reverse. *)
    let n_anc = d - 3 in
    let anc i = d + i in
    let compute () =
      toffoli b 0 1 (anc 0);
      for i = 1 to n_anc - 1 do
        toffoli b (i + 1) (anc (i - 1)) (anc i)
      done
    in
    (* Each Toffoli is self-inverse, but the chain is not: later stages read
       ancillas earlier ones wrote, so uncomputation must run in reverse. *)
    let uncompute () =
      for i = n_anc - 1 downto 1 do
        toffoli b (i + 1) (anc (i - 1)) (anc i)
      done;
      toffoli b 0 1 (anc 0)
    in
    compute ();
    Circuit.add b Gate.H [ d - 1 ];
    toffoli b (d - 2) (anc (n_anc - 1)) (d - 1);
    Circuit.add b Gate.H [ d - 1 ];
    uncompute ()

let optimal_rounds ~n =
  let d = data_qubits ~n in
  max 1 (int_of_float (Float.round (Float.pi /. 4.0 *. sqrt (float_of_int (1 lsl d)))))

let circuit ?marked ?(rounds = 1) ~n () =
  let d = data_qubits ~n in
  let marked = match marked with Some m -> m | None -> (1 lsl d) - 1 in
  if marked < 0 || marked >= 1 lsl d then
    invalid_arg (Printf.sprintf "Grover.circuit: marked state out of range for %d data qubits" d);
  if rounds < 1 then invalid_arg "Grover.circuit: needs at least 1 round";
  let b = Circuit.builder n in
  let flip_unmarked () =
    for q = 0 to d - 1 do
      if marked land (1 lsl q) = 0 then Circuit.add b Gate.X [ q ]
    done
  in
  let h_data () =
    for q = 0 to d - 1 do
      Circuit.add b Gate.H [ q ]
    done
  in
  let x_data () =
    for q = 0 to d - 1 do
      Circuit.add b Gate.X [ q ]
    done
  in
  h_data ();
  for _ = 1 to rounds do
    (* oracle: phase flip on |marked> *)
    flip_unmarked ();
    mcz b ~d;
    flip_unmarked ();
    (* diffusion: reflect about the uniform superposition *)
    h_data ();
    x_data ();
    mcz b ~d;
    x_data ();
    h_data ()
  done;
  Circuit.finish b
