let circuit rng ?(layers = 2) ~n () =
  if n < 2 then invalid_arg "Vqe.circuit: needs at least 2 qubits";
  if layers < 1 then invalid_arg "Vqe.circuit: needs at least 1 layer";
  let b = Circuit.builder n in
  let angle () = Rng.float rng *. 2.0 *. Float.pi in
  let rotation_layer () =
    for q = 0 to n - 1 do
      Circuit.add b (Gate.Ry (angle ())) [ q ];
      Circuit.add b (Gate.Rz (angle ())) [ q ]
    done
  in
  for _ = 1 to layers do
    rotation_layer ();
    (* linear CZ entangler chain *)
    for q = 0 to n - 2 do
      Circuit.add b Gate.Cz [ q; q + 1 ]
    done
  done;
  (* closing rotation layer so every entangler is sandwiched *)
  rotation_layer ();
  Circuit.finish b
