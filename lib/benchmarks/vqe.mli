(** Hardware-efficient VQE ansatz benchmark family.

    The circuit shape of variational eigensolvers on superconducting
    hardware: [layers] repetitions of a parameterised rotation layer
    (Ry, Rz on every qubit) followed by a linear CZ entangler chain, closed
    by one final rotation layer.  Angles are drawn from the supplied
    generator, so circuits are reproducible per seed.  Rotation-dense with
    long same-qubit 1q runs — the best case for gate fusion, and a
    per-round workload representative of variational outer loops. *)

val circuit : Rng.t -> ?layers:int -> n:int -> unit -> Circuit.t
(** [circuit rng ~layers ~n ()] ([layers] defaults to 2).
    @raise Invalid_argument if [n < 2] or [layers < 1]. *)
