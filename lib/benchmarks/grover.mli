(** Grover search benchmark family.

    Amplitude amplification toward one marked basis state: uniform
    superposition over [d] data qubits, then [rounds] iterations of phase
    oracle + diffusion operator.  The multi-controlled-Z at the heart of
    both is compiled to the gate set via a v-chain of Toffolis (standard
    7-T/6-CNOT decomposition), which consumes [max 0 (d-3)] clean, restored
    ancilla qubits — so an [n]-qubit device hosts {!data_qubits}[ ~n] data
    qubits.  Deep, Toffoli-heavy circuits: the stress workload for the fused
    simulation path and a standard entry in the compiler shootout. *)

val data_qubits : n:int -> int
(** Largest [d] with [d + max 0 (d-3) <= n] — the search-space width an
    [n]-qubit device supports.
    @raise Invalid_argument if [n < 1]. *)

val optimal_rounds : n:int -> int
(** Round(pi/4 * sqrt 2{^d}) for [d = data_qubits ~n], at least 1 — the
    iteration count maximising success probability. *)

val circuit : ?marked:int -> ?rounds:int -> n:int -> unit -> Circuit.t
(** [circuit ~marked ~rounds ~n ()] — [marked] defaults to the all-ones
    data state, [rounds] to 1.  Qubits [>= data_qubits ~n] are ancillas and
    return to |0>.
    @raise Invalid_argument if [marked] is out of range or [rounds < 1]. *)
