let jacobi_symmetric ?(max_sweeps = 100) ?(tol = 1e-12) a =
  let n = Array.length a in
  Array.iter
    (fun row -> if Array.length row <> n then invalid_arg "Eig.jacobi_symmetric: not square")
    a;
  let m = Array.map Array.copy a in
  (* v.(r).(c): accumulated orthogonal transform; column c converges to the
     eigenvector of eigenvalue m.(c).(c). *)
  let v = Array.init n (fun r -> Array.init n (fun c -> if r = c then 1.0 else 0.0)) in
  let off_diagonal_norm () =
    let acc = ref 0.0 in
    for p = 0 to n - 1 do
      for q = p + 1 to n - 1 do
        acc := !acc +. (m.(p).(q) *. m.(p).(q))
      done
    done;
    sqrt !acc
  in
  let rotate p q =
    let apq = m.(p).(q) in
    if Float.abs apq > 1e-300 then begin
      let theta = (m.(q).(q) -. m.(p).(p)) /. (2.0 *. apq) in
      let t =
        let sign = if theta >= 0.0 then 1.0 else -1.0 in
        sign /. (Float.abs theta +. sqrt ((theta *. theta) +. 1.0))
      in
      let c = 1.0 /. sqrt ((t *. t) +. 1.0) in
      let s = t *. c in
      for k = 0 to n - 1 do
        let mkp = m.(k).(p) and mkq = m.(k).(q) in
        m.(k).(p) <- (c *. mkp) -. (s *. mkq);
        m.(k).(q) <- (s *. mkp) +. (c *. mkq)
      done;
      for k = 0 to n - 1 do
        let mpk = m.(p).(k) and mqk = m.(q).(k) in
        m.(p).(k) <- (c *. mpk) -. (s *. mqk);
        m.(q).(k) <- (s *. mpk) +. (c *. mqk)
      done;
      for k = 0 to n - 1 do
        let vkp = v.(k).(p) and vkq = v.(k).(q) in
        v.(k).(p) <- (c *. vkp) -. (s *. vkq);
        v.(k).(q) <- (s *. vkp) +. (c *. vkq)
      done
    end
  in
  let sweeps = ref 0 in
  while off_diagonal_norm () > tol && !sweeps < max_sweeps do
    incr sweeps;
    for p = 0 to n - 1 do
      for q = p + 1 to n - 1 do
        rotate p q
      done
    done
  done;
  let order = List.init n Fun.id in
  let sorted = List.sort (fun i j -> compare m.(i).(i) m.(j).(j)) order in
  let eigenvalues = Array.of_list (List.map (fun i -> m.(i).(i)) sorted) in
  let eigenvectors =
    Array.of_list (List.map (fun i -> Array.init n (fun r -> v.(r).(i))) sorted)
  in
  (eigenvalues, eigenvectors)

let eigh h =
  if not (Matrix.is_hermitian ~tol:1e-8 h) then invalid_arg "Eig.eigh: matrix is not Hermitian";
  let n = Matrix.rows h in
  (* Real-symmetric embedding [[A, -B]; [B, A]] of H = A + iB. *)
  let embedded =
    Array.init (2 * n) (fun r ->
        Array.init (2 * n) (fun c ->
            let entry rr cc = Matrix.get h rr cc in
            if r < n && c < n then (entry r c).Complex.re
            else if r < n then -.(entry r (c - n)).Complex.im
            else if c < n then (entry (r - n) c).Complex.im
            else (entry (r - n) (c - n)).Complex.re))
  in
  let eigenvalues, eigenvectors = jacobi_symmetric embedded in
  (* Every eigenpair of H appears twice; take one representative per pair. *)
  let values = Array.init n (fun k -> eigenvalues.(2 * k)) in
  let vectors = Matrix.create n n in
  for k = 0 to n - 1 do
    let w = eigenvectors.(2 * k) in
    let z = Array.init n (fun r -> { Complex.re = w.(r); im = w.(r + n) }) in
    let norm = sqrt (Array.fold_left (fun acc c -> acc +. Complex_ext.norm2 c) 0.0 z) in
    for r = 0 to n - 1 do
      Matrix.set vectors r k (Complex_ext.scale (1.0 /. norm) z.(r))
    done
  done;
  (values, vectors)

let expm_hermitian h t =
  let values, vectors = eigh h in
  let n = Matrix.rows h in
  (* The two n^3 products run on the flat fast path; boxed only at the rim. *)
  let v = Fmatrix.of_matrix vectors in
  let phases = Fmatrix.create n n in
  for r = 0 to n - 1 do
    Fmatrix.set phases r r (Complex_ext.exp_i (-.values.(r) *. t))
  done;
  Fmatrix.to_matrix (Fmatrix.mul (Fmatrix.mul v phases) (Fmatrix.adjoint v))
