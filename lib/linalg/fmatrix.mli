(** Flat-float complex matrices: the unboxed fast path beside {!Matrix}.

    {!Matrix} stores one boxed [Complex.t] record per entry, so every
    [Complex.add]/[Complex.mul] in a hot loop allocates.  This sibling keeps
    the real and imaginary parts in two flat [float array]s (row-major), which
    OCaml stores unboxed — kernels written against it run allocation-free over
    scalar floats.  The boxed {!Matrix} API remains the reference
    implementation; conversions at the boundary are explicit, and consumers
    ({!Fastsc_quantum.Density} storage, [Eig.expm_hermitian], [Unitary])
    adopt the flat path incrementally. *)

type t
(** Row-major dense matrix with split re/im [float array] storage. *)

val create : int -> int -> t
(** [create rows cols] is the zero matrix.
    @raise Invalid_argument on non-positive dimensions. *)

val identity : int -> t

val of_matrix : Matrix.t -> t
(** Unbox a boxed matrix (copies). *)

val to_matrix : t -> Matrix.t
(** Box back into the reference representation (copies). *)

val rows : t -> int
val cols : t -> int

val buffers : t -> float array * float array
(** [(re, im)] — the {e live} flat buffers, row-major ([r * cols + c]).
    Mutating them mutates the matrix; this is the kernel-level access path
    for consumers that implement their own unboxed loops (e.g. the density
    superoperator kernels).  Bounds are the caller's responsibility. *)

val get : t -> int -> int -> Complex.t
val set : t -> int -> int -> Complex.t -> unit

val copy : t -> t

val adjoint : t -> t
(** Conjugate transpose. *)

val mul : t -> t -> t
(** Allocation-free-inner-loop matrix product (one result allocation).
    @raise Invalid_argument on dimension mismatch. *)

val kron : t -> t -> t
(** [kron a b] is the Kronecker product with [a] on the most-significant
    index bits: entry at row [ra * rows b + rb], col [ca * cols b + cb] is
    [a(ra,ca) * b(rb,cb)].  Matches the statevector convention that a
    two-qubit gate's first operand owns the high bit. *)

val interleaved : t -> float array
(** Row-major interleaved [[|re; im; re; im; ...|]] copy of the entries —
    the layout the statevector kernels consume. *)

val mat_vec : t -> Complex.t array -> Complex.t array
(** Matrix–vector product; boxed at the boundary, flat inside. *)

val trace : t -> Complex.t

val frobenius_norm : t -> float

val max_abs_diff : t -> t -> float

val approx_equal : ?tol:float -> t -> t -> bool
(** Entrywise comparison with absolute tolerance (default [1e-9]). *)
