type t = { rows : int; cols : int; re : float array; im : float array }

let create rows cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Fmatrix.create: non-positive dimension";
  { rows; cols; re = Array.make (rows * cols) 0.0; im = Array.make (rows * cols) 0.0 }

let rows m = m.rows

let cols m = m.cols

let buffers m = (m.re, m.im)

let index m r c =
  if r < 0 || r >= m.rows || c < 0 || c >= m.cols then
    invalid_arg (Printf.sprintf "Fmatrix: index (%d,%d) out of %dx%d" r c m.rows m.cols);
  (r * m.cols) + c

let get m r c =
  let k = index m r c in
  { Complex.re = m.re.(k); im = m.im.(k) }

let set m r c v =
  let k = index m r c in
  m.re.(k) <- v.Complex.re;
  m.im.(k) <- v.Complex.im

let copy m = { m with re = Array.copy m.re; im = Array.copy m.im }

let identity n =
  let m = create n n in
  for k = 0 to n - 1 do
    m.re.((k * n) + k) <- 1.0
  done;
  m

let of_matrix a =
  let m = create (Matrix.rows a) (Matrix.cols a) in
  for r = 0 to m.rows - 1 do
    for c = 0 to m.cols - 1 do
      let z = Matrix.get a r c in
      let k = (r * m.cols) + c in
      m.re.(k) <- z.Complex.re;
      m.im.(k) <- z.Complex.im
    done
  done;
  m

let to_matrix m =
  Matrix.init m.rows m.cols (fun r c ->
      let k = (r * m.cols) + c in
      { Complex.re = m.re.(k); im = m.im.(k) })

let adjoint m =
  let a = create m.cols m.rows in
  for r = 0 to m.rows - 1 do
    for c = 0 to m.cols - 1 do
      let src = (r * m.cols) + c and dst = (c * m.rows) + r in
      a.re.(dst) <- m.re.(src);
      a.im.(dst) <- -.m.im.(src)
    done
  done;
  a

(* Unboxed i-k-j product: the accumulation runs over scalar floats held in
   registers, with the [a.(i,k)] entry hoisted out of the inner loop. *)
let mul a b =
  if a.cols <> b.rows then invalid_arg "Fmatrix.mul: dimension mismatch";
  let out = create a.rows b.cols in
  let n = b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let ar = a.re.((i * a.cols) + k) and ai = a.im.((i * a.cols) + k) in
      if ar <> 0.0 || ai <> 0.0 then begin
        let brow = k * n and orow = i * n in
        for j = 0 to n - 1 do
          let br = b.re.(brow + j) and bi = b.im.(brow + j) in
          out.re.(orow + j) <- out.re.(orow + j) +. ((ar *. br) -. (ai *. bi));
          out.im.(orow + j) <- out.im.(orow + j) +. ((ar *. bi) +. (ai *. br))
        done
      end
    done
  done;
  out

(* Kronecker product with the first factor on the most-significant index
   bits: [kron a b] at row (ra*b.rows + rb), col (ca*b.cols + cb) is
   a(ra,ca) * b(rb,cb).  The fusion pass uses this to lift per-qubit 2x2s
   into the 4x4 basis of a following two-qubit gate, where the first
   operand owns the high bit (see Statevector.apply_matrix2). *)
let kron a b =
  let out = create (a.rows * b.rows) (a.cols * b.cols) in
  for ra = 0 to a.rows - 1 do
    for ca = 0 to a.cols - 1 do
      let ar = a.re.((ra * a.cols) + ca) and ai = a.im.((ra * a.cols) + ca) in
      if ar <> 0.0 || ai <> 0.0 then
        for rb = 0 to b.rows - 1 do
          let orow = (((ra * b.rows) + rb) * out.cols) + (ca * b.cols) in
          let brow = rb * b.cols in
          for cb = 0 to b.cols - 1 do
            let br = b.re.(brow + cb) and bi = b.im.(brow + cb) in
            out.re.(orow + cb) <- (ar *. br) -. (ai *. bi);
            out.im.(orow + cb) <- (ar *. bi) +. (ai *. br)
          done
        done
    done
  done;
  out

(* Row-major interleaved [|re; im; re; im; ...|] — the entries layout the
   statevector kernels hoist into scalar lets. *)
let interleaved m =
  let n = m.rows * m.cols in
  let e = Array.make (2 * n) 0.0 in
  for k = 0 to n - 1 do
    e.(2 * k) <- m.re.(k);
    e.((2 * k) + 1) <- m.im.(k)
  done;
  e

let mat_vec m v =
  if Array.length v <> m.cols then invalid_arg "Fmatrix.mat_vec: dimension mismatch";
  (* Split the boxed input once, run the product on scalar floats. *)
  let vr = Array.map (fun z -> z.Complex.re) v in
  let vi = Array.map (fun z -> z.Complex.im) v in
  Array.init m.rows (fun r ->
      let row = r * m.cols in
      let accr = ref 0.0 and acci = ref 0.0 in
      for c = 0 to m.cols - 1 do
        let ar = m.re.(row + c) and ai = m.im.(row + c) in
        accr := !accr +. ((ar *. vr.(c)) -. (ai *. vi.(c)));
        acci := !acci +. ((ar *. vi.(c)) +. (ai *. vr.(c)))
      done;
      { Complex.re = !accr; im = !acci })

let trace m =
  let n = min m.rows m.cols in
  let accr = ref 0.0 and acci = ref 0.0 in
  for k = 0 to n - 1 do
    accr := !accr +. m.re.((k * m.cols) + k);
    acci := !acci +. m.im.((k * m.cols) + k)
  done;
  { Complex.re = !accr; im = !acci }

let frobenius_norm m =
  let acc = ref 0.0 in
  for k = 0 to Array.length m.re - 1 do
    acc := !acc +. ((m.re.(k) *. m.re.(k)) +. (m.im.(k) *. m.im.(k)))
  done;
  sqrt !acc

let max_abs_diff a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Fmatrix: dimension mismatch";
  let worst = ref 0.0 in
  for k = 0 to Array.length a.re - 1 do
    let dr = a.re.(k) -. b.re.(k) and di = a.im.(k) -. b.im.(k) in
    let d = sqrt ((dr *. dr) +. (di *. di)) in
    if d > !worst then worst := d
  done;
  !worst

let approx_equal ?(tol = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols && max_abs_diff a b <= tol
