type outcome = Pass | Fail of string

type cell = {
  tier : string;
  name : string;
  detail : (string * Json.t) list;
  outcome : outcome;
  seconds : float;
}

let cell ?(detail = []) ~tier ~name ~seconds outcome =
  { tier; name; detail; outcome; seconds }

let passed c = match c.outcome with Pass -> true | Fail _ -> false

(* Tier order is the execution order of the harness, not alphabetical. *)
let tier_order = [ "R"; "D"; "W" ]

let tiers cells =
  let seen = List.filter (fun t -> List.exists (fun c -> c.tier = t) cells) tier_order in
  let extra =
    List.filter_map
      (fun c -> if List.mem c.tier tier_order || List.mem c.tier seen then None else Some c.tier)
      cells
  in
  seen @ List.sort_uniq compare extra

type tier_summary = { ts_tier : string; ts_passed : int; ts_total : int; ts_seconds : float }

let summarize cells =
  List.map
    (fun t ->
      let mine = List.filter (fun c -> c.tier = t) cells in
      {
        ts_tier = t;
        ts_passed = List.length (List.filter passed mine);
        ts_total = List.length mine;
        ts_seconds = List.fold_left (fun acc c -> acc +. c.seconds) 0.0 mine;
      })
    (tiers cells)

let tier_label = function
  | "R" -> "random"
  | "D" -> "directed"
  | "W" -> "workload"
  | other -> other

let summary_table cells =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "tier        cells  passed  failed  seconds\n";
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "%-2s %-8s %6d %7d %7d %8.1f\n" s.ts_tier
           (tier_label s.ts_tier) s.ts_total s.ts_passed (s.ts_total - s.ts_passed)
           s.ts_seconds))
    (summarize cells);
  Buffer.contents buf

let summary_line cells =
  let per_tier =
    List.map
      (fun s -> Printf.sprintf "%s %d/%d" s.ts_tier s.ts_passed s.ts_total)
      (summarize cells)
  in
  let failed = List.filter (fun c -> not (passed c)) cells in
  let seconds = List.fold_left (fun acc c -> acc +. c.seconds) 0.0 cells in
  Printf.sprintf "verify: %s | %s (%d cell%s, %.1fs)"
    (if failed = [] then "PASS" else "FAIL")
    (String.concat ", " per_tier) (List.length cells)
    (if List.length cells = 1 then "" else "s")
    seconds

let outcome_to_json = function
  | Pass -> Json.Obj [ ("status", Json.String "pass") ]
  | Fail why -> Json.Obj [ ("status", Json.String "fail"); ("reason", Json.String why) ]

let cell_to_json c =
  Json.Obj
    ([
       ("tier", Json.String c.tier);
       ("name", Json.String c.name);
       ("outcome", outcome_to_json c.outcome);
       ("seconds", Json.Float c.seconds);
     ]
    @ match c.detail with [] -> [] | d -> [ ("detail", Json.Obj d) ])

let to_json ?(meta = []) cells =
  let failed = List.filter (fun c -> not (passed c)) cells in
  Json.Obj
    (meta
    @ [
        ("pass", Json.Bool (failed = []));
        ( "tiers",
          Json.List
            (List.map
               (fun s ->
                 Json.Obj
                   [
                     ("tier", Json.String s.ts_tier);
                     ("label", Json.String (tier_label s.ts_tier));
                     ("cells", Json.Int s.ts_total);
                     ("passed", Json.Int s.ts_passed);
                     ("seconds", Json.Float s.ts_seconds);
                   ])
               (summarize cells)) );
        ("cells", Json.List (List.map cell_to_json cells));
      ])

let write ?meta path cells =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (to_json ?meta cells));
      output_char oc '\n')
