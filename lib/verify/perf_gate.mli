(** The performance-regression gate of [make verify] tier W.

    Compares a freshly produced benchmark document (BENCH_sim.json,
    BENCH_smt_scale.json) against a committed baseline under
    [bench/baselines/], walking both JSON trees in lockstep.  Leaf fields are
    classified by key name:

    - [jobs] and any [*speedup*] field are ignored — they record machine
      shape, and parallel-speedup ratios on a single-core CI box are
      scheduling noise;
    - fields with a [ms]/[ns] unit token, [seconds], [secs] or [wall] are
      wall-clock timings, lower better; [*per_sec*] fields are throughput,
      higher better.  Each timing field contributes a regression ratio
      (1.0 = parity), with small absolute differences snapped to parity by a
      per-unit noise floor;
    - everything else (counters, deltas, fidelities, labels, flags) is
      deterministic output and must match the baseline exactly.

    The gate fails on any structural mismatch (different keys, array lengths
    or value shapes), on any exact-field drift, or when the {e median} of the
    timing ratios exceeds [1 + tolerance] (default 25%).  A median over many
    fields is what makes a single-core machine workable: one noisy field
    cannot fail the gate, a systemic slowdown shifts the whole distribution.

    A baseline timing field holding [0.0] is taken as scrubbed (the
    determinism benches zero wall-clock fields before comparing); the fresh
    field must then be [0.0] too. *)

type field_class =
  | Ignored
  | Exact
  | Timing of { higher_better : bool; noise_floor : float }

val classify : string -> field_class
(** Classification of a JSON object key, as described above. *)

type comparison = {
  path : string;  (** JSONPath-style location, e.g. [$.sim[2].ns_per_gate_flat]. *)
  higher_better : bool;
  baseline : float;
  fresh : float;
  ratio : float;  (** Regression ratio: 1.0 is parity, above 1.0 is slower. *)
}

type result = {
  timings : comparison list;
  exact_mismatches : string list;
  structural_errors : string list;
  ignored : int;
}

val compare_docs : baseline:Json.t -> fresh:Json.t -> result

val median_regression : result -> float
(** Median of the timing ratios; [1.0] when there are none. *)

val default_tolerance : float
(** [0.25]: fail beyond a 25% median regression. *)

type verdict =
  | Ok
  | Regression of string  (** Timing past tolerance, or exact-field drift. *)
  | Structural of string list  (** Documents are not comparable. *)

val evaluate : ?tolerance:float -> result -> verdict

val passes : ?tolerance:float -> result -> bool

val render : ?tolerance:float -> label:string -> result -> string
(** Human-readable verdict: header, any errors, the five worst timing
    fields, and the PASS/FAIL line. *)
