type field_class =
  | Ignored
  | Exact
  | Timing of { higher_better : bool; noise_floor : float }

let tokens key = String.split_on_char '_' key

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  at 0

(* Classification is by key name alone, so the gate needs no schema knowledge
   of individual experiments: benchmark JSON in this repo spells wall-clock
   fields with an explicit unit token (ms_jobs1, warm_ms, ns_per_gate_flat,
   seconds, trials_per_sec) and everything else it emits — counters, deltas,
   fidelities, labels — is deterministic at any FASTSC_JOBS and must match the
   baseline exactly. *)
let classify key =
  if key = "jobs" then Ignored
  else if contains_sub ~sub:"speedup" key then
    (* single-core CI makes parallel-speedup ratios pure scheduling noise *)
    Ignored
  else if contains_sub ~sub:"per_sec" key then
    Timing { higher_better = true; noise_floor = 0.0 }
  else begin
    let toks = tokens key in
    if List.mem "ns" toks then Timing { higher_better = false; noise_floor = 20.0 }
    else if List.mem "ms" toks then Timing { higher_better = false; noise_floor = 2.0 }
    else if List.mem "wall" toks || List.mem "seconds" toks || List.mem "secs" toks then
      Timing { higher_better = false; noise_floor = 0.01 }
    else Exact
  end

type comparison = {
  path : string;
  higher_better : bool;
  baseline : float;
  fresh : float;
  ratio : float;  (** Regression ratio: 1.0 is parity, above 1.0 is slower. *)
}

type result = {
  timings : comparison list;
  exact_mismatches : string list;
  structural_errors : string list;
  ignored : int;
}

let empty = { timings = []; exact_mismatches = []; structural_errors = []; ignored = 0 }

let number = function
  | Json.Int i -> Some (float_of_int i)
  | Json.Float f -> Some f
  | _ -> None

let json_brief = function
  | Json.Null -> "null"
  | Json.Bool b -> string_of_bool b
  | Json.Int i -> string_of_int i
  | Json.Float f -> Printf.sprintf "%g" f
  | Json.String s -> Printf.sprintf "%S" s
  | Json.List l -> Printf.sprintf "<array of %d>" (List.length l)
  | Json.Obj o -> Printf.sprintf "<object of %d>" (List.length o)

let compare_timing ~path ~higher_better ~noise_floor ~baseline ~fresh acc =
  if baseline = 0.0 then
    (* scrubbed-field convention: a zeroed baseline field only gates a doc
       scrubbed the same way, so the comparison degrades to exactness *)
    if fresh = 0.0 then acc
    else
      {
        acc with
        exact_mismatches =
          Printf.sprintf "%s: baseline scrubbed (0) but fresh is %g" path fresh
          :: acc.exact_mismatches;
      }
  else begin
    let ratio =
      if Float.abs (fresh -. baseline) <= noise_floor then 1.0
      else if higher_better then baseline /. fresh
      else fresh /. baseline
    in
    { acc with timings = { path; higher_better; baseline; fresh; ratio } :: acc.timings }
  end

let rec compare_values ~path ~key acc (baseline : Json.t) (fresh : Json.t) =
  match (baseline, fresh) with
  | (Json.Int _ | Json.Float _), (Json.Int _ | Json.Float _) -> (
    let b = Option.get (number baseline) and f = Option.get (number fresh) in
    match classify key with
    | Ignored -> { acc with ignored = acc.ignored + 1 }
    | Timing { higher_better; noise_floor } ->
      compare_timing ~path ~higher_better ~noise_floor ~baseline:b ~fresh:f acc
    | Exact ->
      if b = f then acc
      else
        {
          acc with
          exact_mismatches =
            Printf.sprintf "%s: baseline %s, fresh %s" path (json_brief baseline)
              (json_brief fresh)
            :: acc.exact_mismatches;
        })
  | Json.Obj bs, Json.Obj fs ->
    let missing =
      List.filter_map
        (fun (k, _) -> if List.mem_assoc k fs then None else Some (k, "missing from fresh"))
        bs
    and extra =
      List.filter_map
        (fun (k, _) -> if List.mem_assoc k bs then None else Some (k, "not in baseline"))
        fs
    in
    let acc =
      List.fold_left
        (fun acc (k, why) ->
          {
            acc with
            structural_errors = Printf.sprintf "%s.%s: %s" path k why :: acc.structural_errors;
          })
        acc (missing @ extra)
    in
    List.fold_left
      (fun acc (k, bv) ->
        match List.assoc_opt k fs with
        | None -> acc
        | Some fv -> compare_values ~path:(path ^ "." ^ k) ~key:k acc bv fv)
      acc bs
  | Json.List bs, Json.List fs ->
    if List.length bs <> List.length fs then
      {
        acc with
        structural_errors =
          Printf.sprintf "%s: baseline has %d elements, fresh has %d" path (List.length bs)
            (List.length fs)
          :: acc.structural_errors;
      }
    else
      List.fold_left
        (fun (i, acc) (bv, fv) ->
          ( i + 1,
            compare_values ~path:(Printf.sprintf "%s[%d]" path i) ~key acc bv fv ))
        (0, acc) (List.combine bs fs)
      |> snd
  | (Json.String _ | Json.Bool _ | Json.Null), _ when baseline = fresh -> acc
  | _ ->
    {
      acc with
      structural_errors =
        Printf.sprintf "%s: baseline %s, fresh %s" path (json_brief baseline) (json_brief fresh)
        :: acc.structural_errors;
    }

let compare_docs ~baseline ~fresh =
  let acc = compare_values ~path:"$" ~key:"" empty baseline fresh in
  {
    timings = List.rev acc.timings;
    exact_mismatches = List.rev acc.exact_mismatches;
    structural_errors = List.rev acc.structural_errors;
    ignored = acc.ignored;
  }

let median_regression r =
  match r.timings with
  | [] -> 1.0
  | ts ->
    let ratios = List.sort compare (List.map (fun c -> c.ratio) ts) in
    let n = List.length ratios in
    if n mod 2 = 1 then List.nth ratios (n / 2)
    else (List.nth ratios ((n / 2) - 1) +. List.nth ratios (n / 2)) /. 2.0

let default_tolerance = 0.25

type verdict = Ok | Regression of string | Structural of string list

let evaluate ?(tolerance = default_tolerance) r =
  if r.structural_errors <> [] then Structural r.structural_errors
  else if r.exact_mismatches <> [] then
    Regression
      (Printf.sprintf "%d deterministic field(s) drifted: %s"
         (List.length r.exact_mismatches)
         (String.concat "; " r.exact_mismatches))
  else begin
    let median = median_regression r in
    if median > 1.0 +. tolerance then
      Regression
        (Printf.sprintf "median timing regression %.1f%% exceeds tolerance %.0f%%"
           ((median -. 1.0) *. 100.0) (tolerance *. 100.0))
    else Ok
  end

let passes ?tolerance r = match evaluate ?tolerance r with Ok -> true | _ -> false

let render ?(tolerance = default_tolerance) ~label r =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "perf gate [%s]: %d timing field(s), %d exact field(s) checked, %d ignored\n" label
    (List.length r.timings)
    (List.length r.exact_mismatches)
    r.ignored;
  List.iter (fun e -> add "  structural: %s\n" e) r.structural_errors;
  List.iter (fun e -> add "  drift: %s\n" e) r.exact_mismatches;
  let worst =
    List.sort (fun a b -> compare b.ratio a.ratio) r.timings |> fun l ->
    List.filteri (fun i _ -> i < 5) l
  in
  List.iter
    (fun c ->
      add "  %-8s %s: baseline %g, fresh %g (%+.1f%%)\n"
        (if c.ratio > 1.0 +. tolerance then "SLOW" else "ok")
        c.path c.baseline c.fresh
        ((c.ratio -. 1.0) *. 100.0))
    worst;
  (match evaluate ~tolerance r with
  | Ok ->
    add "  PASS: median timing regression %+.1f%% within %.0f%% tolerance\n"
      ((median_regression r -. 1.0) *. 100.0)
      (tolerance *. 100.0)
  | Regression why -> add "  FAIL: %s\n" why
  | Structural errs -> add "  FAIL: %d structural mismatch(es) — not comparable\n" (List.length errs));
  Buffer.contents buf
