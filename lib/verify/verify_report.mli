(** The machine-readable record of a [make verify] run.

    A run is a flat list of {e cells}: one spawned check each (a test-suite
    invocation at a specific seed/jobs/count point, one seeded fault, one
    workload determinism sweep, one perf-gate evaluation), tagged with the
    tier it belongs to — R (random), D (directed), W (workload).  The driver
    in [bin/verify.ml] appends cells as it goes and serializes the lot to
    [verify_report.json] so CI and the next session can see exactly which
    point of the sweep matrix failed and how to replay it. *)

type outcome = Pass | Fail of string  (** [Fail reason] carries a one-line diagnosis. *)

type cell = {
  tier : string;  (** ["R"], ["D"] or ["W"]. *)
  name : string;  (** Human-readable cell identity, e.g. ["prop_smt seed=+1 jobs=2"]. *)
  detail : (string * Json.t) list;
      (** Replay material: seed, jobs, count, command line, captured tail... *)
  outcome : outcome;
  seconds : float;  (** Wall-clock cost of the cell. *)
}

val cell :
  ?detail:(string * Json.t) list ->
  tier:string ->
  name:string ->
  seconds:float ->
  outcome ->
  cell

val passed : cell -> bool

type tier_summary = { ts_tier : string; ts_passed : int; ts_total : int; ts_seconds : float }

val summarize : cell list -> tier_summary list
(** Per-tier counts in R, D, W order (unknown tiers after, sorted). *)

val summary_table : cell list -> string
(** The aligned per-tier table [make verify] prints at the end. *)

val summary_line : cell list -> string
(** One line: overall PASS/FAIL, per-tier pass counts, total cells, seconds. *)

val to_json : ?meta:(string * Json.t) list -> cell list -> Json.t
(** The full report document; [meta] fields (mode, matrix, versions) are
    prepended to the top-level object. *)

val write : ?meta:(string * Json.t) list -> string -> cell list -> unit
(** Serialize {!to_json} to a file, trailing newline included. *)
