(* Periodic operational stats for the serve daemon (ROADMAP item 1
   follow-on): every N completed requests the daemon prints one stderr line
   with the solver-cache hit rate and per-tier latency percentiles, so an
   operator watching the log can see cache decay or a tier drifting toward
   its deadline without attaching a profiler.

   The recorder is a mutex-guarded accumulator fed from pool workers; the
   formatter is a pure function of a snapshot, unit-tested in isolation. *)

(* The degradation ladder's rungs, in ladder order, so the stats line lists
   tiers in the order requests fall through them. *)
let tier_order = [ "full"; "decomposed-warm"; "stale"; "greedy" ]

type t = {
  mutex : Mutex.t;
  mutable served : int;
  mutable errors : int;
  samples : (string, float list) Hashtbl.t;  (* tier -> latency samples *)
}

let create () = { mutex = Mutex.create (); served = 0; errors = 0; samples = Hashtbl.create 8 }

let record t response =
  Mutex.lock t.mutex;
  t.served <- t.served + 1;
  (match response with
  | Protocol.Ok_response body ->
    let prev = Option.value ~default:[] (Hashtbl.find_opt t.samples body.Protocol.tier) in
    Hashtbl.replace t.samples body.Protocol.tier (body.Protocol.latency_ms :: prev)
  | Protocol.Error_response _ -> t.errors <- t.errors + 1);
  Mutex.unlock t.mutex

let snapshot t =
  Mutex.lock t.mutex;
  let tiers =
    List.filter_map
      (fun tier ->
        match Hashtbl.find_opt t.samples tier with
        | None | Some [] -> None
        | Some samples -> Some (tier, samples))
      (tier_order
      @ List.filter
          (fun k -> not (List.mem k tier_order))
          (List.sort_uniq compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.samples [])))
  in
  let served = t.served and errors = t.errors in
  Mutex.unlock t.mutex;
  (served, errors, tiers)

(* Pure formatter: everything it reports arrives as arguments. *)
let format_line ~served ~errors ~cache_hits ~cache_misses ~tiers =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "stats: %d served" served);
  if errors > 0 then Buffer.add_string buf (Printf.sprintf " (%d errors)" errors);
  let solves = cache_hits + cache_misses in
  Buffer.add_string buf
    (if solves = 0 then " | solver cache -"
     else
       Printf.sprintf " | solver cache %.0f%% hit (%d/%d)"
         (100.0 *. float_of_int cache_hits /. float_of_int solves)
         cache_hits solves);
  List.iter
    (fun (tier, samples) ->
      Buffer.add_string buf
        (Printf.sprintf " | %s n=%d p50 %.1fms p95 %.1fms" tier (List.length samples)
           (Stats.percentile 50.0 samples)
           (Stats.percentile 95.0 samples)))
    tiers;
  Buffer.contents buf

let line t =
  let served, errors, tiers = snapshot t in
  let cache = Freq_alloc.solver_cache_stats () in
  format_line ~served ~errors ~cache_hits:cache.Freq_alloc.hits
    ~cache_misses:cache.Freq_alloc.misses ~tiers
