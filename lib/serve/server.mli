(** The [fastsc serve] daemon loop.

    Reads JSONL compile requests from stdin (default) or a Unix-domain
    socket, schedules them on a {!Fastsc_util.Pool} (inline when
    [FASTSC_JOBS=1] — a one-job pool has no workers), and writes one
    compact JSON response line per request.  Admission control sheds load
    beyond [max_inflight] with structured [overloaded] errors; SIGTERM and
    SIGINT stop intake and drain in-flight requests for at most
    [drain_grace_ms] before the daemon exits cleanly.

    When [snapshot_dir] is set, the solver memo cache is loaded from a
    checksummed snapshot at boot (corrupt files are quarantined, never a
    crash) and re-saved every [snapshot_every] completed requests and at
    drain. *)

type config = {
  socket : string option;  (** Unix-socket path; [None] = stdin/stdout. *)
  deadline_ms : float option;
      (** Default per-request budget for requests that carry none. *)
  max_inflight : int;  (** Admission-control bound; excess is shed. *)
  snapshot_dir : string option;  (** Where solver-cache snapshots live. *)
  snapshot_every : int;  (** Snapshot period in completed requests; 0 = only at drain. *)
  stats_every : int;
      (** Emit the {!Telemetry} stats line to stderr every this many
          completed requests; 0 (the default) disables it. *)
  drain_grace_ms : float;  (** Grace for in-flight requests at shutdown. *)
  scrub : bool;
      (** Zero latency fields in responses (also [FASTSC_SERVE_SCRUB=1]). *)
}

val default_config : config
(** stdin transport, no default deadline, [max_inflight = 64],
    no snapshots, [snapshot_every = 32], stats line off, 2 s drain grace,
    no scrub. *)

val run : config -> unit
(** Run the daemon until EOF on its transport or SIGTERM/SIGINT, then
    drain and return.  Installs signal handlers for the duration. *)
