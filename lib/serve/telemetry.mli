(** Periodic operational stats for [fastsc serve].

    A mutex-guarded recorder accumulates one latency sample per completed
    request, bucketed by the degradation-ladder tier that produced the
    witness; {!line} snapshots the recorder, reads the solver-cache
    counters, and formats the single stderr line the daemon emits every
    [--stats-every] requests. *)

type t

val create : unit -> t

val record : t -> Protocol.response -> unit
(** Count one completed request.  [Ok_response]s contribute their
    [latency_ms] to their [tier]'s bucket; errors only bump the error
    count.  Safe to call from concurrent pool workers. *)

val format_line :
  served:int ->
  errors:int ->
  cache_hits:int ->
  cache_misses:int ->
  tiers:(string * float list) list ->
  string
(** The pure formatter behind {!line}: [served] total requests, solver-cache
    hit rate (["-"] when no solves happened yet), then per-tier sample
    count and p50/p95 latency, in the given order.  Exposed for unit
    tests. *)

val line : t -> string
(** Snapshot + {!Fastsc_core.Freq_alloc.solver_cache_stats} + {!format_line};
    tiers appear in ladder order (full, decomposed-warm, stale, greedy). *)
