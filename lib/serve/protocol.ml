(* Wire protocol of the compile service: JSONL requests and responses.

   One request or response per line, compact JSON.  Requests describe a
   compile problem the same way the CLI does (benchmark + device topology +
   options, or an inline QASM circuit); responses carry either the
   evaluation metrics with the degradation-ladder trace (tier, retries,
   per-tier latency) or a structured error.  Parsing is total: every
   malformed input maps to [Bad_request] with a reason, never an
   exception escaping into the daemon loop. *)

exception Bad_request of string

let bad fmt = Printf.ksprintf (fun msg -> raise (Bad_request msg)) fmt

type request = {
  id : string;
  bench : string;
  qasm : string option;
  n : int;
  topology : string;
  seed : int;
  algorithm : string;
  deadline_ms : float option;
  warm_start : bool;
  decompose_components : bool;
  crosstalk_distance : int;
}

(* -- request decoding -------------------------------------------------------- *)

let benchmark_names = [ "bv"; "qaoa"; "ising"; "qgan"; "xeb"; "ghz"; "qft" ]

let get_string ?default doc key =
  match Json.member key doc with
  | Some (Json.String s) -> s
  | Some _ -> bad "field %S must be a string" key
  | None -> ( match default with Some d -> d | None -> bad "missing field %S" key)

let get_int ~default doc key =
  match Json.member key doc with
  | Some (Json.Int i) -> i
  | Some _ -> bad "field %S must be an integer" key
  | None -> default

let get_bool ~default doc key =
  match Json.member key doc with
  | Some (Json.Bool b) -> b
  | Some _ -> bad "field %S must be a boolean" key
  | None -> default

let get_float_opt doc key =
  match Json.member key doc with
  | Some (Json.Float f) -> Some f
  | Some (Json.Int i) -> Some (float_of_int i)
  | Some Json.Null | None -> None
  | Some _ -> bad "field %S must be a number" key

let request_of_json doc =
  (match doc with Json.Obj _ -> () | _ -> bad "request must be a JSON object");
  let qasm =
    match Json.member "qasm" doc with
    | Some (Json.String s) -> Some s
    | Some Json.Null | None -> None
    | Some _ -> bad "field \"qasm\" must be a string"
  in
  let deadline_ms = get_float_opt doc "deadline_ms" in
  (match deadline_ms with
  | Some d when (not (Float.is_finite d)) || d < 0.0 ->
    bad "field \"deadline_ms\" must be finite and >= 0"
  | _ -> ());
  let req =
    {
      id = get_string doc "id";
      bench = get_string ~default:"bv" doc "bench";
      qasm;
      n = get_int ~default:9 doc "n";
      topology = get_string ~default:"grid" doc "topology";
      seed = get_int ~default:2020 doc "seed";
      algorithm = get_string ~default:"color-dynamic" doc "algorithm";
      deadline_ms;
      warm_start = get_bool ~default:false doc "warm_start";
      decompose_components = get_bool ~default:false doc "decompose_components";
      crosstalk_distance = get_int ~default:1 doc "crosstalk_distance";
    }
  in
  if req.n < 1 then bad "field \"n\" must be >= 1";
  if req.crosstalk_distance < 0 then bad "field \"crosstalk_distance\" must be >= 0";
  if req.qasm = None && not (List.mem req.bench benchmark_names) then
    bad "unknown benchmark %S (valid: %s)" req.bench (String.concat " " benchmark_names);
  req

let parse_request line =
  match Json.parse line with
  | doc -> request_of_json doc
  | exception Json.Parse_error msg -> bad "invalid JSON: %s" msg

(* The canonical identity of the compile problem a request poses — everything
   that determines the answer, nothing that does not (id, deadline).  Keys
   the stale-witness cache. *)
let cache_key req =
  Printf.sprintf "%s|%d|%s|%d|%s|%b|%b|%d"
    (match req.qasm with None -> req.bench | Some q -> "qasm:" ^ Snapshot.fnv64 q)
    req.n req.topology req.seed req.algorithm req.warm_start
    req.decompose_components req.crosstalk_distance

(* -- realizing a request into a compile problem ------------------------------ *)

let parse_topology spec n =
  match String.split_on_char ':' spec with
  | [ "grid" ] -> Topology.square_grid n
  | [ "path" ] -> Topology.path n
  | [ "ring" ] -> Topology.ring n
  | [ "complete" ] -> Topology.complete n
  | [ "1ex"; k ] -> (
    match int_of_string_opt k with
    | Some k when k >= 2 -> Topology.express_1d n k
    | _ -> bad "topology 1ex:<k> needs an integer k >= 2")
  | [ "2ex"; k ] -> (
    match int_of_string_opt k with
    | Some k when k >= 2 ->
      let side = int_of_float (sqrt (float_of_int n)) in
      if side * side <> n then bad "topology 2ex needs a square qubit count"
      else Topology.express_2d side side k
    | _ -> bad "topology 2ex:<k> needs an integer k >= 2")
  | _ -> bad "unknown topology %S (try grid, path, ring, 1ex:4, 2ex:2)" spec

let make_benchmark name n seed device =
  let rng = Rng.create seed in
  match name with
  | "bv" -> Bv.circuit ~n ()
  | "qaoa" -> Qaoa.circuit rng ~n ()
  | "ising" -> Ising.circuit ~n ()
  | "qgan" -> Qgan.circuit rng ~n ()
  | "xeb" ->
    let classes = Baseline_gmon.edge_classes device in
    Xeb.circuit rng ~graph:(Device.graph device) ~classes ~cycles:5 ()
  | "ghz" -> Ghz.circuit ~fanout:true ~n ()
  | "qft" -> Qft.circuit ~n ()
  | other -> bad "unknown benchmark %S" other

let realize req =
  let device = Device.create ~seed:req.seed (parse_topology req.topology req.n) in
  let circuit =
    match req.qasm with
    | Some text -> (
      try Qasm.of_string text
      with Qasm.Parse_error (line, msg) -> bad "qasm line %d: %s" line msg)
    | None -> make_benchmark req.bench req.n req.seed device
  in
  (device, circuit)

(* -- responses --------------------------------------------------------------- *)

type attempt = { a_tier : string; a_ms : float; a_outcome : string }

type ok_body = {
  ok_id : string;
  tier : string;
  algorithm : string;
  retries : int;
  latency_ms : float;
  attempts : attempt list;
  metrics : Schedule.metrics;
}

type error_code = Overloaded | Bad_request_code | Internal

let error_code_name = function
  | Overloaded -> "overloaded"
  | Bad_request_code -> "bad_request"
  | Internal -> "internal"

type response =
  | Ok_response of ok_body
  | Error_response of { err_id : string; code : error_code; message : string }

let json_of_metrics (m : Schedule.metrics) =
  Json.Obj
    [
      ("success", Json.Float m.Schedule.success);
      ("log10_success", Json.Float m.Schedule.log10_success);
      ("gate_error", Json.Float m.Schedule.gate_error);
      ("crosstalk_error", Json.Float m.Schedule.crosstalk_error);
      ("decoherence_error", Json.Float m.Schedule.decoherence_error);
      ("depth", Json.Int m.Schedule.depth);
      ("total_time_ns", Json.Float m.Schedule.total_time);
      ("n_gates", Json.Int m.Schedule.n_gates);
      ("n_two_qubit", Json.Int m.Schedule.n_two_qubit);
    ]

(* [scrub] zeroes every latency field: the serve smoke test byte-compares
   responses across job counts, and wall-clock is the one legitimately
   nondeterministic part of a response. *)
let response_to_json ?(scrub = false) = function
  | Ok_response b ->
    let ms v = Json.Float (if scrub then 0.0 else v) in
    Json.Obj
      [
        ("id", Json.String b.ok_id);
        ("status", Json.String "ok");
        ("tier", Json.String b.tier);
        ("algorithm", Json.String b.algorithm);
        ("retries", Json.Int b.retries);
        ("latency_ms", ms b.latency_ms);
        ( "attempts",
          Json.List
            (List.map
               (fun a ->
                 Json.Obj
                   [
                     ("tier", Json.String a.a_tier);
                     ("ms", ms a.a_ms);
                     ("outcome", Json.String a.a_outcome);
                   ])
               b.attempts) );
        ("metrics", json_of_metrics b.metrics);
      ]
  | Error_response { err_id; code; message } ->
    Json.Obj
      [
        ("id", Json.String err_id);
        ("status", Json.String "error");
        ("code", Json.String (error_code_name code));
        ("message", Json.String message);
      ]

let response_line ?scrub resp = Json.to_string ~pretty:false (response_to_json ?scrub resp)
