(** The graceful-degradation ladder: budgeted compilation that always
    answers.

    A request walks four rungs until one produces a schedule within the
    remaining budget:

    + {b full} — the requested algorithm with its full SMT solve, given the
      first half of the budget;
    + {b decomposed-warm} — the same algorithm with component decomposition
      and warm starts forced on, given the rest of the budget;
    + {b stale} — a previously computed witness for the identical compile
      problem (in-memory cache, no SMT, deadline-immune);
    + {b greedy} — the [greedy-spread] scheduler: graph coloring only, runs
      without a deadline and always succeeds.

    SMT rungs abandon work via the cooperative [Deadline.Expired] polls in
    [Pass]/[Smt]; the ladder records every attempt (tier, wall-clock,
    outcome) in the response trace. *)

type tier = Full | Decomposed_warm | Stale | Greedy

val tier_name : tier -> string
(** ["full"], ["decomposed-warm"], ["stale"], ["greedy"]. *)

val compile : ?default_deadline_ms:float -> Protocol.request -> Protocol.response
(** Walk the ladder for one request.  The budget is the request's
    [deadline_ms] when present, else [default_deadline_ms], else unlimited
    (the first rung then always produces the answer).  Always returns
    [Ok_response] — errors that precede the ladder (unknown algorithm,
    unrealizable request) raise {!Protocol.Bad_request}; anything else
    escaping is a daemon-level internal error.

    Successful SMT-rung results are stored in the stale-witness cache under
    {!Protocol.cache_key}; greedy results are not (a stale hit must never be
    worse than what the greedy rung would recompute). *)

val stale_cache_stats : unit -> int * int * int
(** [(hits, misses, entries)] of the stale-witness cache. *)

val reset_stale_cache : unit -> unit
(** Empty the stale-witness cache and zero its counters (tests). *)
