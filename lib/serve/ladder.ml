(* The graceful-degradation ladder.

   A request walks four rungs, each cheaper than the last, until one
   produces a schedule within whatever budget remains:

     full             the requested algorithm, full SMT portfolio,
                      first half of the budget
     decomposed-warm  same algorithm with component decomposition and
                      warm starts on, the rest of the budget
     stale            a previously computed witness for the identical
                      compile problem (in-memory, no SMT, no deadline)
     greedy           the greedy-spread scheduler — graph coloring only,
                      runs without a deadline and always succeeds

   SMT rungs abandon work by raising Deadline.Expired from the cooperative
   polls inside Pass/Smt; the ladder catches it (and Failure, for genuinely
   infeasible problems) and steps down.  Every attempt is recorded with its
   wall-clock and outcome, so the response trace shows exactly how the
   request degraded. *)

type tier = Full | Decomposed_warm | Stale | Greedy

let tier_name = function
  | Full -> "full"
  | Decomposed_warm -> "decomposed-warm"
  | Stale -> "stale"
  | Greedy -> "greedy"

(* Seeded fault for the verification harness (DESIGN.md §11): label the
   response with the first tier attempted instead of the one that actually
   produced the witness. *)
let fault_ladder_tier = lazy (Fault.enabled "serve-ladder-tier")

(* -- the stale-witness cache ------------------------------------------------- *)

(* Completed SMT-tier results keyed by Protocol.cache_key: same bound and
   reset-on-full recycle discipline as the solver memo tables.  Greedy
   results are not stored — a stale hit must never be worse than what the
   greedy rung below it would recompute. *)

let max_stale_entries = 1024

let stale : (string, string * Schedule.metrics) Hashtbl.t = Hashtbl.create 64

let stale_mutex = Mutex.create ()

let stale_hits = ref 0

let stale_misses = ref 0

let stale_store key value =
  Mutex.lock stale_mutex;
  if Hashtbl.length stale >= max_stale_entries then Hashtbl.reset stale;
  Hashtbl.replace stale key value;
  Mutex.unlock stale_mutex

let stale_find key =
  Mutex.lock stale_mutex;
  let found = Hashtbl.find_opt stale key in
  (match found with Some _ -> incr stale_hits | None -> incr stale_misses);
  Mutex.unlock stale_mutex;
  found

let stale_cache_stats () =
  Mutex.lock stale_mutex;
  let stats = (!stale_hits, !stale_misses, Hashtbl.length stale) in
  Mutex.unlock stale_mutex;
  stats

let reset_stale_cache () =
  Mutex.lock stale_mutex;
  Hashtbl.reset stale;
  stale_hits := 0;
  stale_misses := 0;
  Mutex.unlock stale_mutex

(* -- walking the ladder ------------------------------------------------------ *)

let options_for (req : Protocol.request) ~warm ~decompose =
  {
    Pass.default_options with
    Pass.crosstalk_distance = req.crosstalk_distance;
    warm_start = req.warm_start || warm;
    decompose_components = req.decompose_components || decompose;
  }

let compile ?default_deadline_ms (req : Protocol.request) =
  (* registration side effect: referencing Compile guarantees the built-in
     schedulers (greedy-spread included) are in the registry *)
  ignore Compile.all_algorithms;
  (match Pass.find_scheduler req.algorithm with
  | Some _ -> ()
  | None ->
    raise
      (Protocol.Bad_request
         (Printf.sprintf "unknown algorithm %S (registered: %s)" req.algorithm
            (String.concat " " (Pass.scheduler_names ())))));
  let t_start = Deadline.now_s () in
  let budget_ms =
    match req.deadline_ms with Some d -> Some d | None -> default_deadline_ms
  in
  let overall =
    Option.map
      (fun b -> Deadline.after_ms ~label:("request " ^ req.id) b)
      budget_ms
  in
  let device, circuit = Protocol.realize req in
  let key = Protocol.cache_key req in
  let attempts = ref [] in
  let record t ms outcome =
    attempts :=
      { Protocol.a_tier = tier_name t; a_ms = ms; a_outcome = outcome } :: !attempts
  in
  let finish producing (algorithm, metrics) =
    let tried = List.rev !attempts in
    let reported =
      if Lazy.force fault_ladder_tier then
        match tried with a :: _ -> a.Protocol.a_tier | [] -> tier_name producing
      else tier_name producing
    in
    Protocol.Ok_response
      {
        Protocol.ok_id = req.id;
        tier = reported;
        algorithm;
        retries = List.length tried - 1;
        latency_ms = (Deadline.now_s () -. t_start) *. 1000.0;
        attempts = tried;
        metrics;
      }
  in
  let run_smt t ~options ~deadline =
    let t0 = Deadline.now_s () in
    let ms () = (Deadline.now_s () -. t0) *. 1000.0 in
    match Pass.execute ~options ?deadline ~algorithm:req.algorithm device circuit with
    | ctx ->
      let metrics = Pass.Context.metrics_exn ctx in
      let algorithm = Option.value ~default:req.algorithm ctx.Pass.Context.algorithm in
      record t (ms ()) "ok";
      stale_store key (algorithm, metrics);
      Some (algorithm, metrics)
    | exception Deadline.Expired _ ->
      record t (ms ()) "expired";
      None
    | exception Failure _ ->
      record t (ms ()) "error";
      None
  in
  (* rung 1: full solve on the first half of the budget — enough to succeed
     when the problem is easy, early enough to leave the fallback room *)
  let tier_full_deadline =
    Option.map
      (fun d ->
        Deadline.after_ms
          ~label:("request " ^ req.id ^ " tier full")
          (Float.max 0.0 (Deadline.remaining_ms d /. 2.0)))
      overall
  in
  match
    run_smt Full ~deadline:tier_full_deadline
      ~options:(options_for req ~warm:false ~decompose:false)
  with
  | Some result -> finish Full result
  | None -> (
    (* rung 2: decomposition + warm starts make much larger problems fit a
       budget; bounded by what remains of the whole request budget *)
    match
      run_smt Decomposed_warm ~deadline:overall
        ~options:(options_for req ~warm:true ~decompose:true)
    with
    | Some result -> finish Decomposed_warm result
    | None -> (
      (* rung 3: a witness computed for the identical problem earlier — pure
         table lookup, immune to the deadline *)
      match stale_find key with
      | Some (algorithm, metrics) ->
        record Stale 0.0 "hit";
        finish Stale (algorithm, metrics)
      | None ->
        record Stale 0.0 "miss";
        (* rung 4: no SMT, no deadline — cannot fail, so the ladder always
           returns a structured response *)
        let t0 = Deadline.now_s () in
        let ctx =
          Pass.execute
            ~options:(options_for req ~warm:false ~decompose:false)
            ~algorithm:"greedy-spread" device circuit
        in
        let metrics = Pass.Context.metrics_exn ctx in
        record Greedy ((Deadline.now_s () -. t0) *. 1000.0) "ok";
        finish Greedy ("greedy-spread", metrics)))
