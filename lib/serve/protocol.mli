(** Wire protocol of the compile service (JSONL requests and responses).

    A request line is a JSON object:

    {v
    { "id": "r1", "bench": "qaoa", "n": 9, "topology": "grid",
      "seed": 2020, "algorithm": "color-dynamic", "deadline_ms": 250,
      "warm_start": false, "decompose_components": false,
      "crosstalk_distance": 1 }
    v}

    Only ["id"] is mandatory; every other field has the CLI's default.  An
    inline ["qasm"] string replaces the named benchmark.  Responses are one
    compact JSON object per line: on success the evaluation metrics plus the
    degradation-ladder trace (tier, retries, per-tier latency); on failure a
    structured error with a stable [code]. *)

exception Bad_request of string
(** Raised by the decoders on any malformed request; the daemon maps it to
    an error response with code ["bad_request"].  Never escapes the serve
    loop. *)

type request = {
  id : string;
  bench : string;  (** Benchmark family (ignored when [qasm] is given). *)
  qasm : string option;  (** Inline OpenQASM circuit text. *)
  n : int;
  topology : string;  (** CLI topology spec: grid, path, ring, 1ex:k, 2ex:k, complete. *)
  seed : int;
  algorithm : string;  (** Scheduler registry name or alias. *)
  deadline_ms : float option;  (** Per-request budget; [None] = server default. *)
  warm_start : bool;
  decompose_components : bool;
  crosstalk_distance : int;
}

val benchmark_names : string list

val request_of_json : Json.t -> request
(** @raise Bad_request on a non-object, missing [id], mistyped field,
    unknown benchmark, or a negative/non-finite deadline. *)

val parse_request : string -> request
(** Decode one request line ({!Json.parse} + {!request_of_json}).
    @raise Bad_request also on invalid JSON (including bodies nested beyond
    [Json.max_depth]). *)

val cache_key : request -> string
(** Canonical identity of the compile problem the request poses — every
    field that determines the answer and nothing else (no [id], no
    deadline).  Keys the degradation ladder's stale-witness cache. *)

val realize : request -> Device.t * Circuit.t
(** Fabricate the device and build (or parse) the circuit.
    @raise Bad_request on an unknown topology/benchmark or QASM errors. *)

(** One rung of the degradation ladder as tried for a request. *)
type attempt = {
  a_tier : string;
  a_ms : float;  (** Wall-clock spent on the attempt, milliseconds. *)
  a_outcome : string;  (** ["ok"], ["expired"], ["miss"], ["hit"] or ["error"]. *)
}

type ok_body = {
  ok_id : string;
  tier : string;  (** The rung that produced the witness. *)
  algorithm : string;
  retries : int;  (** Rungs that failed before [tier] succeeded. *)
  latency_ms : float;
  attempts : attempt list;  (** In the order tried. *)
  metrics : Schedule.metrics;
}

type error_code = Overloaded | Bad_request_code | Internal

val error_code_name : error_code -> string

type response =
  | Ok_response of ok_body
  | Error_response of { err_id : string; code : error_code; message : string }

val response_to_json : ?scrub:bool -> response -> Json.t
(** [scrub] (default false) zeroes every latency field ([latency_ms], each
    attempt's [ms]) — wall-clock is the only legitimately nondeterministic
    part of a response, and the smoke test byte-compares responses across
    job counts. *)

val response_line : ?scrub:bool -> response -> string
(** The response as one compact JSON line (no trailing newline). *)
