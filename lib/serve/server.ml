(* The long-running compile daemon.

   Request lines arrive on stdin (default) or a Unix-domain socket;
   responses leave as compact JSONL on the corresponding output, one line
   per request, under a mutex (requests may complete out of order when the
   pool is wide — clients correlate by id).

   Lifecycle:
     boot      load the solver-cache snapshot (corrupt -> quarantined, cold)
     loop      poll input with a short select timeout so SIGTERM/SIGINT are
               noticed promptly; admit requests up to max_inflight, shed the
               rest with structured `overloaded` errors; dispatch to pool
               workers (jobs >= 2) or run inline (jobs = 1, where the pool
               has no workers)
     drain     stop accepting, wait for in-flight requests up to the grace
               period, snapshot the caches, exit 0

   Everything that can fail at runtime (snapshot IO, a poisoned request)
   degrades: logged to stderr, never a crash. *)

type config = {
  socket : string option;
  deadline_ms : float option;
  max_inflight : int;
  snapshot_dir : string option;
  snapshot_every : int;
  stats_every : int;
  drain_grace_ms : float;
  scrub : bool;
}

let default_config =
  {
    socket = None;
    deadline_ms = None;
    max_inflight = 64;
    snapshot_dir = None;
    snapshot_every = 32;
    stats_every = 0;
    drain_grace_ms = 2000.0;
    scrub = false;
  }

let snapshot_version = 1

let log fmt = Printf.eprintf ("fastsc serve: " ^^ fmt ^^ "\n%!")

(* -- snapshots --------------------------------------------------------------- *)

let snapshot_path dir = Filename.concat dir "solver_cache.json"

let load_snapshot dir =
  match Snapshot.load ~path:(snapshot_path dir) ~version:snapshot_version with
  | Snapshot.Missing -> log "snapshot: none found, booting cold"
  | Snapshot.Quarantined reason -> log "snapshot: quarantined (%s), booting cold" reason
  | Snapshot.Loaded payload ->
    let n = Freq_alloc.import_cache payload in
    log "snapshot: loaded %d solver-cache entr%s" n (if n = 1 then "y" else "ies")

let snapshot_mutex = Mutex.create ()

let save_snapshot dir =
  Mutex.lock snapshot_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock snapshot_mutex)
    (fun () ->
      try
        Snapshot.save ~path:(snapshot_path dir) ~version:snapshot_version
          (Freq_alloc.export_cache ())
      with exn -> log "snapshot: save failed (%s)" (Printexc.to_string exn))

(* -- input: line-at-a-time with prompt stop polling -------------------------- *)

(* Raw Unix reads (no Stdlib buffering) so select can tell us when data is
   available; the short timeout keeps the loop responsive to the stop flag
   set by the signal handlers.  EINTR is the signal arriving mid-call — loop
   and let the flag decide. *)
let make_line_reader ~stop fd =
  let pending : string Queue.t = Queue.create () in
  let partial = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let eof = ref false in
  let rec next () =
    if not (Queue.is_empty pending) then Some (Queue.pop pending)
    else if !eof || Atomic.get stop then None
    else begin
      (match Unix.select [ fd ] [] [] 0.05 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | [], _, _ -> ()
      | _ -> (
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | 0 ->
          eof := true;
          if Buffer.length partial > 0 then begin
            Queue.push (Buffer.contents partial) pending;
            Buffer.clear partial
          end
        | k ->
          for i = 0 to k - 1 do
            match Bytes.get chunk i with
            | '\n' ->
              Queue.push (Buffer.contents partial) pending;
              Buffer.clear partial
            | c -> Buffer.add_char partial c
          done));
      next ()
    end
  in
  next

(* -- the serve loop ---------------------------------------------------------- *)

type state = {
  stop : bool Atomic.t;
  inflight : int Atomic.t;
  completed : int Atomic.t;
  out_mutex : Mutex.t;
  pool : Pool.t option;  (* None when jobs = 1: requests run inline *)
  telemetry : Telemetry.t;
}

let scrub_enabled config =
  config.scrub || Sys.getenv_opt "FASTSC_SERVE_SCRUB" = Some "1"

let respond ~config ~state oc resp =
  let line = Protocol.response_line ~scrub:(scrub_enabled config) resp in
  Mutex.lock state.out_mutex;
  (try
     output_string oc line;
     output_char oc '\n';
     flush oc
   with Sys_error _ -> ());
  Mutex.unlock state.out_mutex

let error_response err_id code message =
  Protocol.Error_response { err_id; code; message }

let handle_line ~config ~state oc line =
  let line = String.trim line in
  if line <> "" then
    match Json.parse line with
    | exception Json.Parse_error msg ->
      respond ~config ~state oc
        (error_response "" Protocol.Bad_request_code ("invalid JSON: " ^ msg))
    | doc -> (
      (* salvage the id first so even a mistyped request gets a correlated
         error back *)
      let rid =
        match Json.member "id" doc with Some (Json.String s) -> s | _ -> ""
      in
      match Protocol.request_of_json doc with
      | exception Protocol.Bad_request msg ->
        respond ~config ~state oc (error_response rid Protocol.Bad_request_code msg)
      | req ->
        let admitted = Atomic.fetch_and_add state.inflight 1 in
        if admitted >= config.max_inflight then begin
          ignore (Atomic.fetch_and_add state.inflight (-1));
          respond ~config ~state oc
            (error_response req.Protocol.id Protocol.Overloaded
               (Printf.sprintf "%d requests in flight (max %d)" admitted
                  config.max_inflight))
        end
        else begin
          let job () =
            let resp =
              try Ladder.compile ?default_deadline_ms:config.deadline_ms req with
              | Protocol.Bad_request msg ->
                error_response req.Protocol.id Protocol.Bad_request_code msg
              | exn ->
                error_response req.Protocol.id Protocol.Internal
                  (Printexc.to_string exn)
            in
            respond ~config ~state oc resp;
            Telemetry.record state.telemetry resp;
            ignore (Atomic.fetch_and_add state.inflight (-1));
            let completed = 1 + Atomic.fetch_and_add state.completed 1 in
            if config.stats_every > 0 && completed mod config.stats_every = 0 then
              log "%s" (Telemetry.line state.telemetry);
            match config.snapshot_dir with
            | Some dir
              when config.snapshot_every > 0 && completed mod config.snapshot_every = 0
              ->
              save_snapshot dir
            | _ -> ()
          in
          match state.pool with
          | Some pool -> Pool.submit pool job
          | None -> job ()
        end)

let drain ~config ~state =
  let deadline = Deadline.after_ms ~label:"drain" config.drain_grace_ms in
  while Atomic.get state.inflight > 0 && not (Deadline.expired deadline) do
    try Unix.sleepf 0.01 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  let left = Atomic.get state.inflight in
  if left > 0 then log "drain: grace expired with %d request(s) in flight" left
  else begin
    (* only a clean drain joins the pool: joining with work still queued
       would wait past the grace the operator asked for *)
    match state.pool with Some pool -> Pool.shutdown pool | None -> ()
  end;
  Option.iter save_snapshot config.snapshot_dir;
  log "drained %d request(s) served" (Atomic.get state.completed)

let serve_channel ~config ~state fd oc =
  let next_line = make_line_reader ~stop:state.stop fd in
  let rec loop () =
    match next_line () with
    | Some line ->
      handle_line ~config ~state oc line;
      loop ()
    | None -> ()
  in
  loop ()

let serve_socket ~config ~state path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX path);
  Unix.listen listener 8;
  log "listening on %s" path;
  let rec accept_loop () =
    if not (Atomic.get state.stop) then begin
      (match Unix.select [ listener ] [] [] 0.05 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | [], _, _ -> ()
      | _ -> (
        match Unix.accept listener with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | client, _ ->
          let oc = Unix.out_channel_of_descr client in
          (* one client at a time: requests still fan across the pool, and
             this connection's responses must all land before close *)
          serve_channel ~config ~state client oc;
          let deadline = Deadline.after_ms ~label:"connection" config.drain_grace_ms in
          while Atomic.get state.inflight > 0 && not (Deadline.expired deadline) do
            try Unix.sleepf 0.01 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
          done;
          (try flush oc with Sys_error _ -> ());
          (try Unix.close client with Unix.Unix_error _ -> ())));
      accept_loop ()
    end
  in
  accept_loop ();
  (try Unix.close listener with Unix.Unix_error _ -> ());
  (try Unix.unlink path with Unix.Unix_error _ -> ())

let run config =
  let stop = Atomic.make false in
  let on_signal = Sys.Signal_handle (fun _ -> Atomic.set stop true) in
  Sys.set_signal Sys.sigterm on_signal;
  Sys.set_signal Sys.sigint on_signal;
  Option.iter load_snapshot config.snapshot_dir;
  let jobs = Pool.default_jobs () in
  let pool = if jobs >= 2 then Some (Pool.create ~jobs ()) else None in
  let state =
    {
      stop;
      inflight = Atomic.make 0;
      completed = Atomic.make 0;
      out_mutex = Mutex.create ();
      pool;
      telemetry = Telemetry.create ();
    }
  in
  log "ready (jobs=%d, max_inflight=%d%s)" jobs config.max_inflight
    (match config.deadline_ms with
    | None -> ""
    | Some d -> Printf.sprintf ", deadline=%gms" d);
  (match config.socket with
  | None -> serve_channel ~config ~state Unix.stdin stdout
  | Some path -> serve_socket ~config ~state path);
  drain ~config ~state
