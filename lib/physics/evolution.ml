let evolve h psi0 t =
  let u = Eig.expm_hermitian h t in
  Fmatrix.mat_vec (Fmatrix.of_matrix u) psi0

let basis_state dim k =
  if k < 0 || k >= dim then invalid_arg "Evolution.basis_state: index out of range";
  Array.init dim (fun j -> if j = k then Complex.one else Complex.zero)

let population psi k = Complex_ext.norm2 psi.(k)

let norm psi =
  sqrt (Array.fold_left (fun acc z -> acc +. Complex_ext.norm2 z) 0.0 psi)

let transition_probability h ~src ~dst ~t =
  let dim = Matrix.rows h in
  let psi = evolve h (basis_state dim src) t in
  population psi dst

let transition_series h ~src ~dst ~times =
  let dim = Matrix.rows h in
  let values, vectors = Eig.eigh h in
  (* <dst| V e^{-i lambda t} V† |src> = sum_k V_dst,k e^{-i lambda_k t} conj(V_src,k) *)
  let amplitudes =
    Array.init dim (fun k ->
        Complex.mul (Matrix.get vectors dst k) (Complex.conj (Matrix.get vectors src k)))
  in
  List.map
    (fun t ->
      let acc = ref Complex.zero in
      for k = 0 to dim - 1 do
        acc := Complex.add !acc (Complex.mul amplitudes.(k) (Complex_ext.exp_i (-.values.(k) *. t)))
      done;
      (t, Complex_ext.norm2 !acc))
    times
