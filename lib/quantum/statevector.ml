(* Amplitudes live in two Bigarray float64 planes (split re/im).  Bigarrays
   sit outside the OCaml heap, so domains share one state zero-copy: a single
   gate application can be sharded across the pool by amplitude range with no
   marshalling and no GC traffic.  The kernels below are allocation-free
   loops over scalar floats with the 2x2 / 4x4 gate entries hoisted out of
   the loop, and they walk the state run-structured: instead of re-scattering
   the counter around the operand bit(s) at every index, each maximal run of
   low counter bits becomes one contiguous inner loop — cache-friendly tiles
   at high qubit counts, identical arithmetic per amplitude pair.  The boxed
   implementation survives as Statevector_ref, the reference the differential
   suite checks this module against. *)

module A = Bigarray.Array1

type plane = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = { n : int; re : plane; im : plane }

(* Seeded faults for the verification harness (docs/DESIGN.md §11); resolved
   once, so the kernels pay one forced-lazy read per call, never per index. *)
let fault_scatter = lazy (Fault.enabled "sim-scatter-off-by-one")

let fault_operand_swap = lazy (Fault.enabled "sim-operand-swap")

(* Shard boundaries are aligned to this many counter values, so a shard cut
   never lands inside a kernel's contiguous inner run for operand bits below
   log2(kernel_block).  Alignment is a performance choice only — each
   amplitude pair is updated independently, so results are bit-identical at
   any shard count regardless (docs/DESIGN.md §14). *)
let kernel_block = 256

(* Below this state size a gate application is too small to amortize the
   pool handoff; the auto path stays serial and only across-trajectory
   parallelism applies. *)
let auto_shard_dim = 1 lsl 16

(* [shard ~jobs ~dim n body] runs [body lo hi] over a partition of [0, n).
   An explicit [~jobs] forces that shard count even on tiny states (the
   bit-identity tests need real shards at 5 qubits, hence the unaligned cut
   when the state is too small to give every shard a full block); the
   default path shards only when the state is large and the process-wide
   default asks for parallelism. *)
let shard ~jobs ~dim n body =
  let cut j = Pool.run_ranges ~jobs:j ~align:(if n >= j * kernel_block then kernel_block else 1) n body in
  match jobs with
  | Some 1 -> body 0 n
  | Some j -> cut j
  | None ->
    let j = Pool.default_jobs () in
    if j > 1 && dim >= auto_shard_dim then cut j else body 0 n

let create n =
  if n < 1 || n > 24 then invalid_arg "Statevector.create: supported range is 1..24 qubits";
  let dim = 1 lsl n in
  let re = A.create Bigarray.Float64 Bigarray.C_layout dim in
  let im = A.create Bigarray.Float64 Bigarray.C_layout dim in
  A.fill re 0.0;
  A.fill im 0.0;
  re.{0} <- 1.0;
  { n; re; im }

let dim t = 1 lsl t.n

let reset t =
  A.fill t.re 0.0;
  A.fill t.im 0.0;
  t.re.{0} <- 1.0

let of_amplitudes amps =
  let len = Array.length amps in
  if len = 0 || len land (len - 1) <> 0 then
    invalid_arg "Statevector.of_amplitudes: length must be a power of two";
  let n = ref 0 in
  while 1 lsl !n < len do
    incr n
  done;
  (* Unboxing copies: later mutation of the caller's array cannot alias the
     state (the boxed predecessor stored the array it was handed). *)
  let re = A.create Bigarray.Float64 Bigarray.C_layout len in
  let im = A.create Bigarray.Float64 Bigarray.C_layout len in
  for k = 0 to len - 1 do
    re.{k} <- amps.(k).Complex.re;
    im.{k} <- amps.(k).Complex.im
  done;
  { n = !n; re; im }

let n_qubits t = t.n

let copy t =
  let d = dim t in
  let re = A.create Bigarray.Float64 Bigarray.C_layout d in
  let im = A.create Bigarray.Float64 Bigarray.C_layout d in
  A.blit t.re re;
  A.blit t.im im;
  { t with re; im }

let buffers t = (t.re, t.im)

let amplitudes t = Array.init (dim t) (fun k -> { Complex.re = t.re.{k}; im = t.im.{k} })

let amplitude t k = { Complex.re = t.re.{k}; im = t.im.{k} }

let check_qubit t q =
  if q < 0 || q >= t.n then invalid_arg (Printf.sprintf "Statevector: qubit %d out of range" q)

(* --- gate entries in kernel form --- *)

(* The kernels consume gate matrices as interleaved [|re; im; ...|] rows, so
   a fused program can pre-extract every matrix once and replay it without
   touching boxed [Complex.t] again. *)

let entries1 m =
  if Matrix.rows m <> 2 || Matrix.cols m <> 2 then
    invalid_arg "Statevector.entries1: expected 2x2";
  Fmatrix.interleaved (Fmatrix.of_matrix m)

let entries2 m =
  if Matrix.rows m <> 4 || Matrix.cols m <> 4 then
    invalid_arg "Statevector.entries2: expected 4x4";
  Fmatrix.interleaved (Fmatrix.of_matrix m)

(* --- kernels --- *)

let apply_entries1 ?jobs t e q =
  if Array.length e <> 8 then invalid_arg "Statevector.apply_entries1: expected 8 entries";
  check_qubit t q;
  let m00r = e.(0) and m00i = e.(1) and m01r = e.(2) and m01i = e.(3) in
  let m10r = e.(4) and m10i = e.(5) and m11r = e.(6) and m11i = e.(7) in
  let re = t.re and im = t.im in
  let mask = 1 lsl q in
  let low = mask - 1 in
  let d = dim t in
  let pairs = d lsr 1 in
  let shift = if Lazy.force fault_scatter then q else q + 1 in
  let body lo hi =
    (* Run-structured walk: for all counter values sharing their high bits,
       the scattered index increments by exactly 1, so the scatter is
       computed once per run and the inner loop is contiguous. *)
    let k = ref lo in
    while !k < hi do
      let k0 = !k in
      let base = ((k0 lsr q) lsl shift) lor (k0 land low) in
      let run_end = min hi ((k0 lor low) + 1) in
      let len = run_end - k0 in
      for j = 0 to len - 1 do
        let i0 = base + j in
        let i1 = i0 lor mask in
        let a0r = A.unsafe_get re i0 and a0i = A.unsafe_get im i0 in
        let a1r = A.unsafe_get re i1 and a1i = A.unsafe_get im i1 in
        A.unsafe_set re i0 ((m00r *. a0r) -. (m00i *. a0i) +. ((m01r *. a1r) -. (m01i *. a1i)));
        A.unsafe_set im i0 ((m00r *. a0i) +. (m00i *. a0r) +. ((m01r *. a1i) +. (m01i *. a1r)));
        A.unsafe_set re i1 ((m10r *. a0r) -. (m10i *. a0i) +. ((m11r *. a1r) -. (m11i *. a1i)));
        A.unsafe_set im i1 ((m10r *. a0i) +. (m10i *. a0r) +. ((m11r *. a1i) +. (m11i *. a1r)))
      done;
      k := run_end
    done
  in
  shard ~jobs ~dim:d pairs body

let apply_entries2 ?jobs t e q_first q_second =
  if Array.length e <> 32 then invalid_arg "Statevector.apply_entries2: expected 32 entries";
  check_qubit t q_first;
  check_qubit t q_second;
  if q_first = q_second then invalid_arg "Statevector.apply_matrix2: duplicate qubit";
  (* Hoist the 32 scalar entries of the 4x4 gate out of the loop. *)
  let m00r = e.(0) and m00i = e.(1) and m01r = e.(2) and m01i = e.(3) in
  let m02r = e.(4) and m02i = e.(5) and m03r = e.(6) and m03i = e.(7) in
  let m10r = e.(8) and m10i = e.(9) and m11r = e.(10) and m11i = e.(11) in
  let m12r = e.(12) and m12i = e.(13) and m13r = e.(14) and m13i = e.(15) in
  let m20r = e.(16) and m20i = e.(17) and m21r = e.(18) and m21i = e.(19) in
  let m22r = e.(20) and m22i = e.(21) and m23r = e.(22) and m23i = e.(23) in
  let m30r = e.(24) and m30i = e.(25) and m31r = e.(26) and m31i = e.(27) in
  let m32r = e.(28) and m32i = e.(29) and m33r = e.(30) and m33i = e.(31) in
  let re = t.re and im = t.im in
  let hi_m, lo_m =
    if Lazy.force fault_operand_swap then (1 lsl q_second, 1 lsl q_first)
    else (1 lsl q_first, 1 lsl q_second)
  in
  (* Enumerate the indices with both operand bits clear by scattering the
     counter around the two bit positions (lowest position first). *)
  let p = min q_first q_second and r = max q_first q_second in
  let lowp = (1 lsl p) - 1 and lowr = (1 lsl r) - 1 in
  let d = dim t in
  let quarters = d lsr 2 in
  let body lo hi =
    (* Same run structure as the 1q kernel: within a run of the low [p]
       counter bits all four scattered indices increment by 1, giving four
       contiguous streams per run. *)
    let k = ref lo in
    while !k < hi do
      let k0 = !k in
      let s = ((k0 lsr p) lsl (p + 1)) lor (k0 land lowp) in
      let base = ((s lsr r) lsl (r + 1)) lor (s land lowr) in
      let run_end = min hi ((k0 lor lowp) + 1) in
      let len = run_end - k0 in
      for j = 0 to len - 1 do
        let i00 = base + j in
        let i01 = i00 lor lo_m in
        let i10 = i00 lor hi_m in
        let i11 = i00 lor hi_m lor lo_m in
        let a0r = A.unsafe_get re i00 and a0i = A.unsafe_get im i00 in
        let a1r = A.unsafe_get re i01 and a1i = A.unsafe_get im i01 in
        let a2r = A.unsafe_get re i10 and a2i = A.unsafe_get im i10 in
        let a3r = A.unsafe_get re i11 and a3i = A.unsafe_get im i11 in
        A.unsafe_set re i00
          ((m00r *. a0r) -. (m00i *. a0i)
          +. ((m01r *. a1r) -. (m01i *. a1i))
          +. ((m02r *. a2r) -. (m02i *. a2i))
          +. ((m03r *. a3r) -. (m03i *. a3i)));
        A.unsafe_set im i00
          ((m00r *. a0i) +. (m00i *. a0r)
          +. ((m01r *. a1i) +. (m01i *. a1r))
          +. ((m02r *. a2i) +. (m02i *. a2r))
          +. ((m03r *. a3i) +. (m03i *. a3r)));
        A.unsafe_set re i01
          ((m10r *. a0r) -. (m10i *. a0i)
          +. ((m11r *. a1r) -. (m11i *. a1i))
          +. ((m12r *. a2r) -. (m12i *. a2i))
          +. ((m13r *. a3r) -. (m13i *. a3i)));
        A.unsafe_set im i01
          ((m10r *. a0i) +. (m10i *. a0r)
          +. ((m11r *. a1i) +. (m11i *. a1r))
          +. ((m12r *. a2i) +. (m12i *. a2r))
          +. ((m13r *. a3i) +. (m13i *. a3r)));
        A.unsafe_set re i10
          ((m20r *. a0r) -. (m20i *. a0i)
          +. ((m21r *. a1r) -. (m21i *. a1i))
          +. ((m22r *. a2r) -. (m22i *. a2i))
          +. ((m23r *. a3r) -. (m23i *. a3i)));
        A.unsafe_set im i10
          ((m20r *. a0i) +. (m20i *. a0r)
          +. ((m21r *. a1i) +. (m21i *. a1r))
          +. ((m22r *. a2i) +. (m22i *. a2r))
          +. ((m23r *. a3i) +. (m23i *. a3r)));
        A.unsafe_set re i11
          ((m30r *. a0r) -. (m30i *. a0i)
          +. ((m31r *. a1r) -. (m31i *. a1i))
          +. ((m32r *. a2r) -. (m32i *. a2i))
          +. ((m33r *. a3r) -. (m33i *. a3i)));
        A.unsafe_set im i11
          ((m30r *. a0i) +. (m30i *. a0r)
          +. ((m31r *. a1i) +. (m31i *. a1r))
          +. ((m32r *. a2i) +. (m32i *. a2r))
          +. ((m33r *. a3i) +. (m33i *. a3r)))
      done;
      k := run_end
    done
  in
  shard ~jobs ~dim:d quarters body

let apply_matrix1 ?jobs t m q =
  if Matrix.rows m <> 2 || Matrix.cols m <> 2 then
    invalid_arg "Statevector.apply_matrix1: expected 2x2";
  apply_entries1 ?jobs t (entries1 m) q

let apply_matrix2 ?jobs t m q_first q_second =
  if Matrix.rows m <> 4 || Matrix.cols m <> 4 then
    invalid_arg "Statevector.apply_matrix2: expected 4x4";
  apply_entries2 ?jobs t (entries2 m) q_first q_second

let apply ?jobs t gate qubits =
  match (Gate.arity gate, qubits) with
  | 1, [ q ] -> apply_matrix1 ?jobs t (Gate.unitary gate) q
  | 2, [ a; b ] -> apply_matrix2 ?jobs t (Gate.unitary gate) a b
  | _ ->
    invalid_arg
      (Printf.sprintf "Statevector.apply: %s applied to %d operand(s)" (Gate.name gate)
         (List.length qubits))

let run ?jobs t circuit =
  if Circuit.n_qubits circuit <> t.n then invalid_arg "Statevector.run: qubit count mismatch";
  Array.iter
    (fun app -> apply ?jobs t app.Gate.gate (Array.to_list app.Gate.qubits))
    (Circuit.instructions circuit)

let of_circuit circuit =
  let t = create (Circuit.n_qubits circuit) in
  run t circuit;
  t

let probability t k = (t.re.{k} *. t.re.{k}) +. (t.im.{k} *. t.im.{k})

let probabilities t = Array.init (dim t) (fun k -> probability t k)

let fidelity a b =
  if a.n <> b.n then invalid_arg "Statevector.fidelity: qubit count mismatch";
  let or_ = ref 0.0 and oi = ref 0.0 in
  for k = 0 to dim a - 1 do
    (* conj(a_k) * b_k *)
    let ar = a.re.{k} and ai = -.a.im.{k} in
    let br = b.re.{k} and bi = b.im.{k} in
    or_ := !or_ +. ((ar *. br) -. (ai *. bi));
    oi := !oi +. ((ar *. bi) +. (ai *. br))
  done;
  (!or_ *. !or_) +. (!oi *. !oi)

let norm t =
  let acc = ref 0.0 in
  for k = 0 to dim t - 1 do
    acc := !acc +. ((t.re.{k} *. t.re.{k}) +. (t.im.{k} *. t.im.{k}))
  done;
  sqrt !acc

let normalize t =
  let n = norm t in
  if n > 0.0 then begin
    let s = 1.0 /. n in
    for k = 0 to dim t - 1 do
      t.re.{k} <- s *. t.re.{k};
      t.im.{k} <- s *. t.im.{k}
    done
  end

let measure rng t =
  let u = Rng.float rng in
  let d = dim t in
  let acc = ref 0.0 and result = ref (d - 1) and k = ref 0 in
  while !k < d do
    acc := !acc +. probability t !k;
    if !acc >= u then begin
      result := !k;
      k := d
    end
    else incr k
  done;
  !result
