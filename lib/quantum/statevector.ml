(* Amplitudes live in two flat float arrays (split re/im), which OCaml stores
   unboxed: the gate kernels below are allocation-free loops over scalar
   floats with the 2x2 / 4x4 gate entries hoisted out of the loop.  The boxed
   implementation survives as Statevector_ref, the reference the differential
   suite checks this module against. *)
type t = { n : int; re : float array; im : float array }

(* Seeded faults for the verification harness (docs/DESIGN.md §11); resolved
   once, so the kernels pay one forced-lazy read per call, never per index. *)
let fault_scatter = lazy (Fault.enabled "sim-scatter-off-by-one")

let fault_operand_swap = lazy (Fault.enabled "sim-operand-swap")

let create n =
  if n < 1 || n > 24 then invalid_arg "Statevector.create: supported range is 1..24 qubits";
  let dim = 1 lsl n in
  let re = Array.make dim 0.0 and im = Array.make dim 0.0 in
  re.(0) <- 1.0;
  { n; re; im }

let reset t =
  Array.fill t.re 0 (Array.length t.re) 0.0;
  Array.fill t.im 0 (Array.length t.im) 0.0;
  t.re.(0) <- 1.0

let of_amplitudes amps =
  let len = Array.length amps in
  if len = 0 || len land (len - 1) <> 0 then
    invalid_arg "Statevector.of_amplitudes: length must be a power of two";
  let n = ref 0 in
  while 1 lsl !n < len do
    incr n
  done;
  (* Unboxing copies: later mutation of the caller's array cannot alias the
     state (the boxed predecessor stored the array it was handed). *)
  {
    n = !n;
    re = Array.map (fun z -> z.Complex.re) amps;
    im = Array.map (fun z -> z.Complex.im) amps;
  }

let n_qubits t = t.n

let copy t = { t with re = Array.copy t.re; im = Array.copy t.im }

let buffers t = (t.re, t.im)

let amplitudes t = Array.init (Array.length t.re) (fun k -> { Complex.re = t.re.(k); im = t.im.(k) })

let amplitude t k = { Complex.re = t.re.(k); im = t.im.(k) }

let check_qubit t q =
  if q < 0 || q >= t.n then invalid_arg (Printf.sprintf "Statevector: qubit %d out of range" q)

let apply_matrix1 t m q =
  if Matrix.rows m <> 2 || Matrix.cols m <> 2 then
    invalid_arg "Statevector.apply_matrix1: expected 2x2";
  check_qubit t q;
  let m00 = Matrix.get m 0 0 and m01 = Matrix.get m 0 1 in
  let m10 = Matrix.get m 1 0 and m11 = Matrix.get m 1 1 in
  let m00r = m00.Complex.re and m00i = m00.Complex.im in
  let m01r = m01.Complex.re and m01i = m01.Complex.im in
  let m10r = m10.Complex.re and m10i = m10.Complex.im in
  let m11r = m11.Complex.re and m11i = m11.Complex.im in
  let re = t.re and im = t.im in
  let mask = 1 lsl q in
  let low = mask - 1 in
  let pairs = Array.length re lsr 1 in
  let shift = if Lazy.force fault_scatter then q else q + 1 in
  for k = 0 to pairs - 1 do
    let i0 = ((k lsr q) lsl shift) lor (k land low) in
    let i1 = i0 lor mask in
    let a0r = re.(i0) and a0i = im.(i0) in
    let a1r = re.(i1) and a1i = im.(i1) in
    re.(i0) <- (m00r *. a0r) -. (m00i *. a0i) +. ((m01r *. a1r) -. (m01i *. a1i));
    im.(i0) <- (m00r *. a0i) +. (m00i *. a0r) +. ((m01r *. a1i) +. (m01i *. a1r));
    re.(i1) <- (m10r *. a0r) -. (m10i *. a0i) +. ((m11r *. a1r) -. (m11i *. a1i));
    im.(i1) <- (m10r *. a0i) +. (m10i *. a0r) +. ((m11r *. a1i) +. (m11i *. a1r))
  done

let apply_matrix2 t m q_first q_second =
  if Matrix.rows m <> 4 || Matrix.cols m <> 4 then
    invalid_arg "Statevector.apply_matrix2: expected 4x4";
  check_qubit t q_first;
  check_qubit t q_second;
  if q_first = q_second then invalid_arg "Statevector.apply_matrix2: duplicate qubit";
  (* Hoist the 32 scalar entries of the 4x4 gate out of the loop. *)
  let er r c = (Matrix.get m r c).Complex.re and ei r c = (Matrix.get m r c).Complex.im in
  let m00r = er 0 0 and m00i = ei 0 0 and m01r = er 0 1 and m01i = ei 0 1 in
  let m02r = er 0 2 and m02i = ei 0 2 and m03r = er 0 3 and m03i = ei 0 3 in
  let m10r = er 1 0 and m10i = ei 1 0 and m11r = er 1 1 and m11i = ei 1 1 in
  let m12r = er 1 2 and m12i = ei 1 2 and m13r = er 1 3 and m13i = ei 1 3 in
  let m20r = er 2 0 and m20i = ei 2 0 and m21r = er 2 1 and m21i = ei 2 1 in
  let m22r = er 2 2 and m22i = ei 2 2 and m23r = er 2 3 and m23i = ei 2 3 in
  let m30r = er 3 0 and m30i = ei 3 0 and m31r = er 3 1 and m31i = ei 3 1 in
  let m32r = er 3 2 and m32i = ei 3 2 and m33r = er 3 3 and m33i = ei 3 3 in
  let re = t.re and im = t.im in
  let hi, lo =
    if Lazy.force fault_operand_swap then (1 lsl q_second, 1 lsl q_first)
    else (1 lsl q_first, 1 lsl q_second)
  in
  (* Enumerate the indices with both operand bits clear by scattering the
     counter around the two bit positions (lowest position first). *)
  let p = min q_first q_second and r = max q_first q_second in
  let lowp = (1 lsl p) - 1 and lowr = (1 lsl r) - 1 in
  let quarters = Array.length re lsr 2 in
  for k = 0 to quarters - 1 do
    let s = ((k lsr p) lsl (p + 1)) lor (k land lowp) in
    let i00 = ((s lsr r) lsl (r + 1)) lor (s land lowr) in
    let i01 = i00 lor lo in
    let i10 = i00 lor hi in
    let i11 = i00 lor hi lor lo in
    let a0r = re.(i00) and a0i = im.(i00) in
    let a1r = re.(i01) and a1i = im.(i01) in
    let a2r = re.(i10) and a2i = im.(i10) in
    let a3r = re.(i11) and a3i = im.(i11) in
    re.(i00) <-
      (m00r *. a0r) -. (m00i *. a0i)
      +. ((m01r *. a1r) -. (m01i *. a1i))
      +. ((m02r *. a2r) -. (m02i *. a2i))
      +. ((m03r *. a3r) -. (m03i *. a3i));
    im.(i00) <-
      (m00r *. a0i) +. (m00i *. a0r)
      +. ((m01r *. a1i) +. (m01i *. a1r))
      +. ((m02r *. a2i) +. (m02i *. a2r))
      +. ((m03r *. a3i) +. (m03i *. a3r));
    re.(i01) <-
      (m10r *. a0r) -. (m10i *. a0i)
      +. ((m11r *. a1r) -. (m11i *. a1i))
      +. ((m12r *. a2r) -. (m12i *. a2i))
      +. ((m13r *. a3r) -. (m13i *. a3i));
    im.(i01) <-
      (m10r *. a0i) +. (m10i *. a0r)
      +. ((m11r *. a1i) +. (m11i *. a1r))
      +. ((m12r *. a2i) +. (m12i *. a2r))
      +. ((m13r *. a3i) +. (m13i *. a3r));
    re.(i10) <-
      (m20r *. a0r) -. (m20i *. a0i)
      +. ((m21r *. a1r) -. (m21i *. a1i))
      +. ((m22r *. a2r) -. (m22i *. a2i))
      +. ((m23r *. a3r) -. (m23i *. a3i));
    im.(i10) <-
      (m20r *. a0i) +. (m20i *. a0r)
      +. ((m21r *. a1i) +. (m21i *. a1r))
      +. ((m22r *. a2i) +. (m22i *. a2r))
      +. ((m23r *. a3i) +. (m23i *. a3r));
    re.(i11) <-
      (m30r *. a0r) -. (m30i *. a0i)
      +. ((m31r *. a1r) -. (m31i *. a1i))
      +. ((m32r *. a2r) -. (m32i *. a2i))
      +. ((m33r *. a3r) -. (m33i *. a3i));
    im.(i11) <-
      (m30r *. a0i) +. (m30i *. a0r)
      +. ((m31r *. a1i) +. (m31i *. a1r))
      +. ((m32r *. a2i) +. (m32i *. a2r))
      +. ((m33r *. a3i) +. (m33i *. a3r))
  done

let apply t gate qubits =
  match (Gate.arity gate, qubits) with
  | 1, [ q ] -> apply_matrix1 t (Gate.unitary gate) q
  | 2, [ a; b ] -> apply_matrix2 t (Gate.unitary gate) a b
  | _ ->
    invalid_arg
      (Printf.sprintf "Statevector.apply: %s applied to %d operand(s)" (Gate.name gate)
         (List.length qubits))

let run t circuit =
  if Circuit.n_qubits circuit <> t.n then invalid_arg "Statevector.run: qubit count mismatch";
  Array.iter
    (fun app -> apply t app.Gate.gate (Array.to_list app.Gate.qubits))
    (Circuit.instructions circuit)

let of_circuit circuit =
  let t = create (Circuit.n_qubits circuit) in
  run t circuit;
  t

let probability t k = (t.re.(k) *. t.re.(k)) +. (t.im.(k) *. t.im.(k))

let probabilities t = Array.init (Array.length t.re) (fun k -> probability t k)

let fidelity a b =
  if a.n <> b.n then invalid_arg "Statevector.fidelity: qubit count mismatch";
  let or_ = ref 0.0 and oi = ref 0.0 in
  for k = 0 to Array.length a.re - 1 do
    (* conj(a_k) * b_k *)
    let ar = a.re.(k) and ai = -.a.im.(k) in
    let br = b.re.(k) and bi = b.im.(k) in
    or_ := !or_ +. ((ar *. br) -. (ai *. bi));
    oi := !oi +. ((ar *. bi) +. (ai *. br))
  done;
  (!or_ *. !or_) +. (!oi *. !oi)

let norm t =
  let acc = ref 0.0 in
  for k = 0 to Array.length t.re - 1 do
    acc := !acc +. ((t.re.(k) *. t.re.(k)) +. (t.im.(k) *. t.im.(k)))
  done;
  sqrt !acc

let normalize t =
  let n = norm t in
  if n > 0.0 then begin
    let s = 1.0 /. n in
    for k = 0 to Array.length t.re - 1 do
      t.re.(k) <- s *. t.re.(k);
      t.im.(k) <- s *. t.im.(k)
    done
  end

let measure rng t =
  let u = Rng.float rng in
  let dim = Array.length t.re in
  let acc = ref 0.0 and result = ref (dim - 1) and k = ref 0 in
  while !k < dim do
    acc := !acc +. probability t !k;
    if !acc >= u then begin
      result := !k;
      k := dim
    end
    else incr k
  done;
  !result
