type event =
  | Unitary of Gate.t * int list
  | Partial_exchange of { a : int; b : int; theta : float }
  | Pauli_noise of { q : int; p_x : float; p_y : float; p_z : float }

type step = event list

let exchange_unitary theta =
  let c = cos theta and s = sin theta in
  let z0 = Complex.zero and z1 = Complex.one in
  let cr = { Complex.re = c; im = 0.0 } and msi = { Complex.re = 0.0; im = -.s } in
  Matrix.of_arrays
    [|
      [| z1; z0; z0; z0 |];
      [| z0; cr; msi; z0 |];
      [| z0; msi; cr; z0 |];
      [| z0; z0; z0; z1 |];
    |]

(* Trajectory states are small and trials already fan out across the pool,
   so gate application inside a trial stays serial ([~jobs:1]) — nesting
   amplitude-range shards under trajectory parallelism would only contend
   for the same workers. *)
let apply_event rng state = function
  | Unitary (gate, qubits) -> Statevector.apply ~jobs:1 state gate qubits
  | Partial_exchange { a; b; theta } ->
    Statevector.apply_matrix2 ~jobs:1 state (exchange_unitary theta) a b
  | Pauli_noise { q; p_x; p_y; p_z } ->
    let u = Rng.float rng in
    if u < p_x then Statevector.apply ~jobs:1 state Gate.X [ q ]
    else if u < p_x +. p_y then Statevector.apply ~jobs:1 state Gate.Y [ q ]
    else if u < p_x +. p_y +. p_z then Statevector.apply ~jobs:1 state Gate.Z [ q ]

let run_trajectory_into state rng steps =
  Statevector.reset state;
  List.iter (fun step -> List.iter (apply_event rng state) step) steps

let run_trajectory rng ~n_qubits steps =
  let state = Statevector.create n_qubits in
  List.iter (fun step -> List.iter (apply_event rng state) step) steps;
  state

let ideal_of_steps ~n_qubits steps =
  let state = Statevector.create n_qubits in
  List.iter
    (fun step ->
      List.iter
        (function
          | Unitary (gate, qubits) -> Statevector.apply state gate qubits
          | Partial_exchange _ | Pauli_noise _ -> ())
        step)
    steps;
  state

(* One reusable trajectory state per domain: a worker allocates its state on
   the first trial it executes and resets it in place for every later one. *)
let trajectory_state = Domain.DLS.new_key (fun () -> ref None)

let average_fidelity rng ~n_qubits ~ideal ~steps ~trials =
  if trials <= 0 then invalid_arg "Noisy_sim.average_fidelity: trials must be positive";
  (* Each trial gets its own generator, split from the caller's in index
     order before the fan-out.  The trial->stream mapping (and the caller's
     final rng state) is therefore fixed before any scheduling happens, and
     the index-ordered sum below makes the mean bit-identical at any
     [--jobs]. *)
  let seeds = Rng.split_n rng trials in
  let fidelities =
    Pool.map_array
      (fun trial_rng ->
        let cache = Domain.DLS.get trajectory_state in
        let state =
          match !cache with
          | Some (n, st) when n = n_qubits -> st
          | _ ->
            let st = Statevector.create n_qubits in
            cache := Some (n_qubits, st);
            st
        in
        run_trajectory_into state trial_rng steps;
        Statevector.fidelity ideal state)
      seeds
  in
  let total = ref 0.0 in
  Array.iter (fun f -> total := !total +. f) fidelities;
  !total /. float_of_int trials
