(* The boxed Complex.t implementation the flat kernels replaced, kept
   verbatim as the differential-testing oracle and the bench baseline.
   Clarity over speed: every Complex.add/mul here allocates, which is
   exactly the cost the flat path removes. *)
type t = { n : int; amps : Complex.t array }

let create n =
  if n < 1 || n > 24 then invalid_arg "Statevector_ref.create: supported range is 1..24 qubits";
  let amps = Array.make (1 lsl n) Complex.zero in
  amps.(0) <- Complex.one;
  { n; amps }

let of_amplitudes amps =
  let len = Array.length amps in
  if len = 0 || len land (len - 1) <> 0 then
    invalid_arg "Statevector_ref.of_amplitudes: length must be a power of two";
  let n = ref 0 in
  while 1 lsl !n < len do
    incr n
  done;
  { n = !n; amps = Array.copy amps }

let n_qubits t = t.n

let amplitudes t = Array.copy t.amps

let amplitude t k = t.amps.(k)

let check_qubit t q =
  if q < 0 || q >= t.n then
    invalid_arg (Printf.sprintf "Statevector_ref: qubit %d out of range" q)

let apply_matrix1 t m q =
  if Matrix.rows m <> 2 || Matrix.cols m <> 2 then
    invalid_arg "Statevector_ref.apply_matrix1: expected 2x2";
  check_qubit t q;
  let mask = 1 lsl q in
  let m00 = Matrix.get m 0 0 and m01 = Matrix.get m 0 1 in
  let m10 = Matrix.get m 1 0 and m11 = Matrix.get m 1 1 in
  let dim = Array.length t.amps in
  let i = ref 0 in
  while !i < dim do
    if !i land mask = 0 then begin
      let a0 = t.amps.(!i) and a1 = t.amps.(!i lor mask) in
      t.amps.(!i) <- Complex.add (Complex.mul m00 a0) (Complex.mul m01 a1);
      t.amps.(!i lor mask) <- Complex.add (Complex.mul m10 a0) (Complex.mul m11 a1)
    end;
    incr i
  done

let apply_matrix2 t m q_first q_second =
  if Matrix.rows m <> 4 || Matrix.cols m <> 4 then
    invalid_arg "Statevector_ref.apply_matrix2: expected 4x4";
  check_qubit t q_first;
  check_qubit t q_second;
  if q_first = q_second then invalid_arg "Statevector_ref.apply_matrix2: duplicate qubit";
  let hi = 1 lsl q_first and lo = 1 lsl q_second in
  let dim = Array.length t.amps in
  let entry r c = Matrix.get m r c in
  for i = 0 to dim - 1 do
    if i land hi = 0 && i land lo = 0 then begin
      let i00 = i in
      let i01 = i lor lo in
      let i10 = i lor hi in
      let i11 = i lor hi lor lo in
      let a = [| t.amps.(i00); t.amps.(i01); t.amps.(i10); t.amps.(i11) |] in
      let out r =
        let acc = ref Complex.zero in
        for c = 0 to 3 do
          acc := Complex.add !acc (Complex.mul (entry r c) a.(c))
        done;
        !acc
      in
      t.amps.(i00) <- out 0;
      t.amps.(i01) <- out 1;
      t.amps.(i10) <- out 2;
      t.amps.(i11) <- out 3
    end
  done

let apply t gate qubits =
  match (Gate.arity gate, qubits) with
  | 1, [ q ] -> apply_matrix1 t (Gate.unitary gate) q
  | 2, [ a; b ] -> apply_matrix2 t (Gate.unitary gate) a b
  | _ ->
    invalid_arg
      (Printf.sprintf "Statevector_ref.apply: %s applied to %d operand(s)" (Gate.name gate)
         (List.length qubits))

let run t circuit =
  if Circuit.n_qubits circuit <> t.n then
    invalid_arg "Statevector_ref.run: qubit count mismatch";
  Array.iter
    (fun app -> apply t app.Gate.gate (Array.to_list app.Gate.qubits))
    (Circuit.instructions circuit)

let of_circuit circuit =
  let t = create (Circuit.n_qubits circuit) in
  run t circuit;
  t

let probability t k = Complex_ext.norm2 t.amps.(k)

let probabilities t = Array.map Complex_ext.norm2 t.amps

let fidelity a b =
  if a.n <> b.n then invalid_arg "Statevector_ref.fidelity: qubit count mismatch";
  let overlap = ref Complex.zero in
  for k = 0 to Array.length a.amps - 1 do
    overlap := Complex.add !overlap (Complex.mul (Complex.conj a.amps.(k)) b.amps.(k))
  done;
  Complex_ext.norm2 !overlap
