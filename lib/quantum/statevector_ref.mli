(** Boxed reference state-vector simulator.

    The [Complex.t array] implementation that {!Statevector} replaced with
    flat-float kernels, kept as an executable specification: the
    differential property suite runs random full-gate-set circuits through
    both and requires amplitudes to agree within 1e-9, and the simulation
    microbenchmark ([bench/main.exe sim]) reports the flat kernels' speedup
    against this baseline.  Same bit and operand-ordering conventions as
    {!Statevector}. *)

type t

val create : int -> t
(** [create n] is |0...0> on [n] qubits.
    @raise Invalid_argument unless [1 <= n <= 24]. *)

val of_amplitudes : Complex.t array -> t
(** Copies the array; length must be a power of two. *)

val n_qubits : t -> int

val amplitudes : t -> Complex.t array
(** A copy of the current amplitudes. *)

val amplitude : t -> int -> Complex.t

val apply : t -> Gate.t -> int list -> unit

val apply_matrix1 : t -> Matrix.t -> int -> unit

val apply_matrix2 : t -> Matrix.t -> int -> int -> unit

val run : t -> Circuit.t -> unit

val of_circuit : Circuit.t -> t

val probability : t -> int -> float

val probabilities : t -> float array

val fidelity : t -> t -> float
