(** Ideal state-vector simulation.

    Replaces Qiskit Aer for the scales this paper needs: verifying gate
    decompositions (unitary equivalence up to global phase), computing ideal
    output distributions for the success-rate validation (§VI-C), and the
    reference states against which noisy trajectories are scored.  Amplitude
    arrays are dense, so practical up to roughly 14 qubits.

    Bit convention: qubit [k] is bit [k] of the basis-state index (qubit 0 is
    least significant).  For two-qubit gates the {e first} operand is the
    most significant bit of the 4x4 matrix basis, matching
    {!Gate.unitary}.

    Amplitudes are stored unboxed in two flat [float array]s (split re/im),
    so the gate kernels allocate nothing; [Complex.t] appears only at the
    API boundary.  {!Statevector_ref} is the boxed reference implementation
    the differential tests compare against. *)

type t

val create : int -> t
(** [create n] is |0...0> on [n] qubits.
    @raise Invalid_argument unless [1 <= n <= 24]. *)

val reset : t -> unit
(** Return to |0...0> in place, reusing the buffers (the Monte-Carlo
    trajectory loop resets one state per worker instead of allocating one
    per trial). *)

val of_amplitudes : Complex.t array -> t
(** Copies the array (length must be a power of two); later caller mutation
    cannot corrupt the state.  The state is not renormalised. *)

val n_qubits : t -> int

val copy : t -> t

val buffers : t -> float array * float array
(** [(re, im)] — the {e live} flat amplitude buffers, indexed by basis
    state.  Mutating them mutates the state; intended for kernel-level
    consumers ({!Unitary}, {!Density}, the simulation benches) that want
    amplitude access without boxing.  Renormalisation is the caller's
    responsibility. *)

val amplitudes : t -> Complex.t array
(** A copy of the current amplitudes. *)

val amplitude : t -> int -> Complex.t

val apply : t -> Gate.t -> int list -> unit
(** Apply a gate in place.
    @raise Invalid_argument on arity/range errors. *)

val apply_matrix1 : t -> Matrix.t -> int -> unit
(** Apply an arbitrary 2x2 unitary to one qubit. *)

val apply_matrix2 : t -> Matrix.t -> int -> int -> unit
(** Apply an arbitrary 4x4 unitary to an ordered qubit pair (first operand =
    most significant). *)

val run : t -> Circuit.t -> unit
(** Apply every instruction of the circuit in order. *)

val of_circuit : Circuit.t -> t
(** Fresh |0..0> state with the circuit applied. *)

val probability : t -> int -> float
(** Probability of one basis outcome. *)

val probabilities : t -> float array

val fidelity : t -> t -> float
(** [|<a|b>|^2].
    @raise Invalid_argument on size mismatch. *)

val norm : t -> float

val normalize : t -> unit

val measure : Rng.t -> t -> int
(** Sample a basis state from the output distribution (state unchanged). *)
