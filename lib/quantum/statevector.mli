(** Ideal state-vector simulation.

    Replaces Qiskit Aer for the scales this paper needs: verifying gate
    decompositions (unitary equivalence up to global phase), computing ideal
    output distributions for the success-rate validation (§VI-C), and the
    reference states against which noisy trajectories are scored.  Amplitude
    arrays are dense, so practical up to roughly 24 qubits.

    Bit convention: qubit [k] is bit [k] of the basis-state index (qubit 0 is
    least significant).  For two-qubit gates the {e first} operand is the
    most significant bit of the 4x4 matrix basis, matching
    {!Gate.unitary}.

    Amplitudes are stored unboxed in two [Bigarray] float64 planes (split
    re/im), which live outside the OCaml heap so domains share one state
    zero-copy.  Gate kernels walk the state in contiguous runs
    (cache-blocked index enumeration) and a single gate application can be
    sharded across the pool by amplitude range: shard boundaries are a pure
    function of the requested job count (see {!Fastsc_util.Pool.ranges}),
    and each amplitude pair is written by exactly one shard, so results are
    {e bit-identical} at any [--jobs].  Every kernel takes [?jobs]: [~jobs:1]
    forces the serial walk, an explicit [~jobs:k] forces [k] shards even on
    tiny states (for bit-identity tests), and the default shards only when
    the state has at least 2{^16} amplitudes and {!Fastsc_util.Pool.default_jobs}
    asks for parallelism.  {!Statevector_ref} is the boxed reference
    implementation the differential tests compare against. *)

type t

type plane = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
(** One flat float64 amplitude plane, indexed by basis state. *)

val create : int -> t
(** [create n] is |0...0> on [n] qubits.
    @raise Invalid_argument unless [1 <= n <= 24]. *)

val reset : t -> unit
(** Return to |0...0> in place, reusing the buffers (the Monte-Carlo
    trajectory loop resets one state per worker instead of allocating one
    per trial). *)

val of_amplitudes : Complex.t array -> t
(** Copies the array (length must be a power of two); later caller mutation
    cannot corrupt the state.  The state is not renormalised. *)

val n_qubits : t -> int

val copy : t -> t

val buffers : t -> plane * plane
(** [(re, im)] — the {e live} amplitude planes, indexed by basis state.
    Mutating them mutates the state; intended for kernel-level consumers
    ({!Unitary}, {!Density}, the simulation benches) that want amplitude
    access without boxing.  Renormalisation is the caller's
    responsibility. *)

val amplitudes : t -> Complex.t array
(** A copy of the current amplitudes. *)

val amplitude : t -> int -> Complex.t

val entries1 : Matrix.t -> float array
(** Pre-extract a 2x2 gate into the interleaved [|re; im; ...|] kernel form
    consumed by {!apply_entries1} (8 floats, row-major).  The fusion pass
    extracts each matrix once and replays the float array.
    @raise Invalid_argument unless the matrix is 2x2. *)

val entries2 : Matrix.t -> float array
(** Kernel form of a 4x4 gate (32 floats, row-major interleaved).
    @raise Invalid_argument unless the matrix is 4x4. *)

val apply_entries1 : ?jobs:int -> t -> float array -> int -> unit
(** [apply_entries1 ~jobs t e q] applies the 2x2 gate [e] (in {!entries1}
    form) to qubit [q].  See the module preamble for the [?jobs] sharding
    contract.
    @raise Invalid_argument on entry-count or qubit-range errors. *)

val apply_entries2 : ?jobs:int -> t -> float array -> int -> int -> unit
(** [apply_entries2 ~jobs t e a b] applies the 4x4 gate [e] (in {!entries2}
    form) to the ordered pair [(a, b)] (first operand = most significant). *)

val apply : ?jobs:int -> t -> Gate.t -> int list -> unit
(** Apply a gate in place.
    @raise Invalid_argument on arity/range errors. *)

val apply_matrix1 : ?jobs:int -> t -> Matrix.t -> int -> unit
(** Apply an arbitrary 2x2 unitary to one qubit. *)

val apply_matrix2 : ?jobs:int -> t -> Matrix.t -> int -> int -> unit
(** Apply an arbitrary 4x4 unitary to an ordered qubit pair (first operand =
    most significant). *)

val run : ?jobs:int -> t -> Circuit.t -> unit
(** Apply every instruction of the circuit in order.  [?jobs] is threaded to
    every gate application; see {!Fusion.run} for the fused fast path. *)

val of_circuit : Circuit.t -> t
(** Fresh |0..0> state with the circuit applied. *)

val probability : t -> int -> float
(** Probability of one basis outcome. *)

val probabilities : t -> float array

val fidelity : t -> t -> float
(** [|<a|b>|^2].
    @raise Invalid_argument on size mismatch. *)

val norm : t -> float

val normalize : t -> unit

val measure : Rng.t -> t -> int
(** Sample a basis state from the output distribution (state unchanged). *)
