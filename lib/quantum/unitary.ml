let of_circuit circuit =
  let n = Circuit.n_qubits circuit in
  let dim = 1 lsl n in
  let u = Fmatrix.create dim dim in
  let ure, uim = Fmatrix.buffers u in
  (* One state reused for all basis columns: reset, place the 1 at |k>,
     simulate, and copy the flat amplitudes straight into column k. *)
  let state = Statevector.create n in
  let sre, sim = Statevector.buffers state in
  for k = 0 to dim - 1 do
    Statevector.reset state;
    sre.{0} <- 0.0;
    sre.{k} <- 1.0;
    Statevector.run state circuit;
    for r = 0 to dim - 1 do
      ure.((r * dim) + k) <- sre.{r};
      uim.((r * dim) + k) <- sim.{r}
    done
  done;
  Fmatrix.to_matrix u

let of_gate gate qubits ~n_qubits =
  of_circuit (Circuit.of_gates n_qubits [ (gate, qubits) ])

let largest_entry m =
  let best = ref (0, 0) and best_norm = ref 0.0 in
  for r = 0 to Matrix.rows m - 1 do
    for c = 0 to Matrix.cols m - 1 do
      let v = Complex.norm (Matrix.get m r c) in
      if v > !best_norm then begin
        best_norm := v;
        best := (r, c)
      end
    done
  done;
  !best

let global_phase_between ?(tol = 1e-7) a b =
  if Matrix.rows a <> Matrix.rows b || Matrix.cols a <> Matrix.cols b then None
  else begin
    let r, c = largest_entry b in
    if Complex.norm (Matrix.get a r c) < tol then None
    else begin
      let phase = Complex.div (Matrix.get b r c) (Matrix.get a r c) in
      if
        Float.abs (Complex.norm phase -. 1.0) < tol
        && Matrix.approx_equal ~tol (Matrix.scale phase a) b
      then Some phase
      else None
    end
  end

let equal_up_to_phase ?tol a b = global_phase_between ?tol a b <> None

let equivalent ?tol a b =
  if Circuit.n_qubits a <> Circuit.n_qubits b then
    invalid_arg "Unitary.equivalent: qubit count mismatch";
  equal_up_to_phase ?tol (of_circuit a) (of_circuit b)
