(** Noisy circuit simulation by Monte-Carlo trajectories.

    The paper's success-rate metric (eq 4) is a heuristic; §VI-C validates it
    against full noisy simulation on small circuits.  This module is that
    full simulation: a schedule is lowered to a sequence of steps, each
    containing the intended unitaries plus the physical noise processes of
    that time slice —

    - {e coherent crosstalk}: every spectator coupling detuned by
      [delta_omega] experiences a partial excitation exchange of angle
      [2 pi g'(delta_omega) t] during the slice (the microscopic process
      behind eq 6), applied as a deterministic unitary;
    - {e decoherence}: each qubit suffers a stochastic Pauli error with
      per-slice probability derived from T1/T2, sampled per trajectory.

    Averaging trajectory fidelities against the ideal state gives the
    simulated success probability that the heuristic is validated against. *)

type event =
  | Unitary of Gate.t * int list  (** An intended gate. *)
  | Partial_exchange of { a : int; b : int; theta : float }
      (** Coherent crosstalk: exchange |01>,|10> with mixing angle [theta]
          (full swap at [theta = pi/2]). *)
  | Pauli_noise of { q : int; p_x : float; p_y : float; p_z : float }
      (** Stochastic single-qubit Pauli channel for this slice. *)

type step = event list

val exchange_unitary : float -> Matrix.t
(** The 4x4 partial-iSWAP unitary for mixing angle [theta] (paper sign
    convention: [-i sin theta] off-diagonals). *)

val run_trajectory : Rng.t -> n_qubits:int -> step list -> Statevector.t
(** One stochastic trajectory from |0..0>. *)

val average_fidelity :
  Rng.t -> n_qubits:int -> ideal:Statevector.t -> steps:step list -> trials:int -> float
(** Mean fidelity of [trials] noisy trajectories against the ideal state —
    the simulated program success rate.  Trials fan out over the domain pool
    ({!Fastsc_util.Pool}), each with its own generator split from [rng] in
    index order before the fan-out and one reusable state buffer per worker,
    so the result (and the caller's final [rng] state) is bit-identical at
    any [--jobs] setting.
    @raise Invalid_argument unless [trials > 0]. *)

val ideal_of_steps : n_qubits:int -> step list -> Statevector.t
(** The noise-free reference: applies only the [Unitary] events. *)
