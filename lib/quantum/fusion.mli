(** Gate fusion: the circuit-level transform behind the tier-2 simulation
    engine (docs/DESIGN.md §14).

    {!plan} rewrites a circuit into a shorter program of fused operations:
    runs of adjacent single-qubit gates on the same qubit collapse into one
    2x2 (matrix product), and pending 2x2s are absorbed into neighbouring
    two-qubit gates as 4x4s (Kronecker lift, first operand = most
    significant bit).  Trailing runs at end of circuit are absorbed
    {e backward} into the last two-qubit gate touching the qubit — legal
    because every later operation is disjoint from it — or emitted as a lone
    2x2; a run whose product is the bit-exact identity (e.g. X·X) is dropped
    entirely.  Both rewrites preserve the circuit unitary {e exactly} (not
    merely up to global phase), which {!verify} checks against the unfused
    {!Unitary.of_circuit} oracle.

    Fused operations carry their matrices pre-extracted in kernel entries
    form, so replaying a plan touches no boxed [Complex.t].  Fusion is
    opt-in: {!Statevector.run} still applies gate-at-a-time; benches and
    callers that want the fast path go through {!run}/{!apply}. *)

type t
(** A fused program: an ordered sequence of 2x2/4x4 applications in
    {!Statevector.entries1}/[entries2] kernel form. *)

val plan : Circuit.t -> t
(** Fuse a circuit.  O(gates) matrix products; no amplitude is touched.
    @raise Invalid_argument on malformed gate applications. *)

val n_qubits : t -> int

val length : t -> int
(** Number of fused operations (the bench reports this beside
    {!source_gates} as the fusion ratio). *)

val source_gates : t -> int
(** Number of gate applications in the source circuit. *)

val apply : ?jobs:int -> Statevector.t -> t -> unit
(** Replay a fused program on a state.  [?jobs] follows the
    {!Statevector.apply_entries1} sharding contract.
    @raise Invalid_argument on qubit count mismatch. *)

val run : ?jobs:int -> Circuit.t -> Statevector.t -> unit
(** [run circuit sv] = [apply sv (plan circuit)]. *)

val of_circuit : Circuit.t -> Statevector.t
(** Fresh |0..0> state with the fused circuit applied. *)

val to_unitary : t -> Matrix.t
(** The unitary the fused program implements (basis-column application,
    mirroring {!Unitary.of_circuit}). *)

val verify : ?tol:float -> Circuit.t -> t -> bool
(** [verify circuit t] — entrywise comparison of {!to_unitary} against
    {!Unitary.of_circuit} at absolute tolerance [tol] (default [1e-9]).
    The equivalence oracle the property suite runs on random full-gate-set
    circuits. *)
