(* The density matrix lives in a flat-float Fmatrix (split re/im, row-major);
   the superoperator kernels below run allocation-free over its raw buffers
   with gate entries hoisted out of the loops, mirroring the Statevector
   kernels.  apply_kraus1 keeps two scratch planes on the state and reuses
   them across channel applications instead of copying full matrices per
   Kraus operator. *)

type scratch = {
  orig_re : float array;
  orig_im : float array;
  acc_re : float array;
  acc_im : float array;
}

type t = { n : int; rho : Fmatrix.t; mutable scratch : scratch option }

let create n =
  if n < 1 || n > 10 then invalid_arg "Density.create: supported range is 1..10 qubits";
  let dim = 1 lsl n in
  let rho = Fmatrix.create dim dim in
  Fmatrix.set rho 0 0 Complex.one;
  { n; rho; scratch = None }

let dim t = 1 lsl t.n

let of_statevector sv =
  let n = Statevector.n_qubits sv in
  if n > 10 then invalid_arg "Density.of_statevector: too many qubits";
  let ar, ai = Statevector.buffers sv in
  let d = 1 lsl n in
  let rho = Fmatrix.create d d in
  let re, im = Fmatrix.buffers rho in
  for i = 0 to d - 1 do
    let row = i * d in
    let air = ar.{i} and aii = ai.{i} in
    for j = 0 to d - 1 do
      (* a_i * conj(a_j) *)
      re.(row + j) <- (air *. ar.{j}) +. (aii *. ai.{j});
      im.(row + j) <- (aii *. ar.{j}) -. (air *. ai.{j})
    done
  done;
  { n; rho; scratch = None }

let n_qubits t = t.n

let trace t =
  let d = dim t in
  let re, _ = Fmatrix.buffers t.rho in
  let acc = ref 0.0 in
  for k = 0 to d - 1 do
    acc := !acc +. re.((k * d) + k)
  done;
  !acc

let purity t =
  (* Re(Tr rho^2) = sum_ij Re(rho_ij rho_ji), without assuming hermiticity. *)
  let d = dim t in
  let re, im = Fmatrix.buffers t.rho in
  let acc = ref 0.0 in
  for i = 0 to d - 1 do
    for j = 0 to d - 1 do
      acc := !acc +. ((re.((i * d) + j) *. re.((j * d) + i)) -. (im.((i * d) + j) *. im.((j * d) + i)))
    done
  done;
  !acc

let population t k =
  let re, _ = Fmatrix.buffers t.rho in
  re.((k * dim t) + k)

let check_qubit t q =
  if q < 0 || q >= t.n then invalid_arg (Printf.sprintf "Density: qubit %d out of range" q)

let hoist1 m =
  let e r c = Matrix.get m r c in
  ( (e 0 0).Complex.re, (e 0 0).Complex.im, (e 0 1).Complex.re, (e 0 1).Complex.im,
    (e 1 0).Complex.re, (e 1 0).Complex.im, (e 1 1).Complex.re, (e 1 1).Complex.im )

(* rho <- (M on qubit q) rho : mixes row pairs *)
let left_mul1 t m q =
  check_qubit t q;
  let m00r, m00i, m01r, m01i, m10r, m10i, m11r, m11i = hoist1 m in
  let d = dim t in
  let re, im = Fmatrix.buffers t.rho in
  let mask = 1 lsl q in
  let low = mask - 1 in
  for k = 0 to (d lsr 1) - 1 do
    let i0 = ((k lsr q) lsl (q + 1)) lor (k land low) in
    let r0 = i0 * d and r1 = (i0 lor mask) * d in
    for j = 0 to d - 1 do
      let ar = re.(r0 + j) and ai = im.(r0 + j) in
      let br = re.(r1 + j) and bi = im.(r1 + j) in
      re.(r0 + j) <- (m00r *. ar) -. (m00i *. ai) +. ((m01r *. br) -. (m01i *. bi));
      im.(r0 + j) <- (m00r *. ai) +. (m00i *. ar) +. ((m01r *. bi) +. (m01i *. br));
      re.(r1 + j) <- (m10r *. ar) -. (m10i *. ai) +. ((m11r *. br) -. (m11i *. bi));
      im.(r1 + j) <- (m10r *. ai) +. (m10i *. ar) +. ((m11r *. bi) +. (m11i *. br))
    done
  done

(* rho <- rho (M on qubit q) : mixes column pairs *)
let right_mul1 t m q =
  check_qubit t q;
  let m00r, m00i, m01r, m01i, m10r, m10i, m11r, m11i = hoist1 m in
  let d = dim t in
  let re, im = Fmatrix.buffers t.rho in
  let mask = 1 lsl q in
  let low = mask - 1 in
  for k = 0 to (d lsr 1) - 1 do
    let j0 = ((k lsr q) lsl (q + 1)) lor (k land low) in
    let j1 = j0 lor mask in
    for i = 0 to d - 1 do
      let row = i * d in
      let ar = re.(row + j0) and ai = im.(row + j0) in
      let br = re.(row + j1) and bi = im.(row + j1) in
      (* a*m00 + b*m10  |  a*m01 + b*m11 *)
      re.(row + j0) <- (ar *. m00r) -. (ai *. m00i) +. ((br *. m10r) -. (bi *. m10i));
      im.(row + j0) <- (ar *. m00i) +. (ai *. m00r) +. ((br *. m10i) +. (bi *. m10r));
      re.(row + j1) <- (ar *. m01r) -. (ai *. m01i) +. ((br *. m11r) -. (bi *. m11i));
      im.(row + j1) <- (ar *. m01i) +. (ai *. m01r) +. ((br *. m11i) +. (bi *. m11r))
    done
  done

let apply_unitary1 t u q =
  if Matrix.rows u <> 2 || Matrix.cols u <> 2 then
    invalid_arg "Density.apply_unitary1: expected 2x2";
  left_mul1 t u q;
  right_mul1 t (Matrix.adjoint u) q

let hoist2 m =
  Array.init 16 (fun k ->
      let z = Matrix.get m (k / 4) (k mod 4) in
      (z.Complex.re, z.Complex.im))

let left_mul2 t m q_first q_second =
  let hi = 1 lsl q_first and lo = 1 lsl q_second in
  let d = dim t in
  let g = hoist2 m in
  let re, im = Fmatrix.buffers t.rho in
  let p = min q_first q_second and r = max q_first q_second in
  let lowp = (1 lsl p) - 1 and lowr = (1 lsl r) - 1 in
  for k = 0 to (d lsr 2) - 1 do
    let s = ((k lsr p) lsl (p + 1)) lor (k land lowp) in
    let i00 = ((s lsr r) lsl (r + 1)) lor (s land lowr) in
    let r0 = i00 * d
    and r1 = (i00 lor lo) * d
    and r2 = (i00 lor hi) * d
    and r3 = (i00 lor hi lor lo) * d in
    for j = 0 to d - 1 do
      let a0r = re.(r0 + j) and a0i = im.(r0 + j) in
      let a1r = re.(r1 + j) and a1i = im.(r1 + j) in
      let a2r = re.(r2 + j) and a2i = im.(r2 + j) in
      let a3r = re.(r3 + j) and a3i = im.(r3 + j) in
      let out row base =
        let g0r, g0i = g.(row * 4)
        and g1r, g1i = g.((row * 4) + 1)
        and g2r, g2i = g.((row * 4) + 2)
        and g3r, g3i = g.((row * 4) + 3) in
        re.(base + j) <-
          (g0r *. a0r) -. (g0i *. a0i)
          +. ((g1r *. a1r) -. (g1i *. a1i))
          +. ((g2r *. a2r) -. (g2i *. a2i))
          +. ((g3r *. a3r) -. (g3i *. a3i));
        im.(base + j) <-
          (g0r *. a0i) +. (g0i *. a0r)
          +. ((g1r *. a1i) +. (g1i *. a1r))
          +. ((g2r *. a2i) +. (g2i *. a2r))
          +. ((g3r *. a3i) +. (g3i *. a3r))
      in
      out 0 r0;
      out 1 r1;
      out 2 r2;
      out 3 r3
    done
  done

let right_mul2 t m q_first q_second =
  let hi = 1 lsl q_first and lo = 1 lsl q_second in
  let d = dim t in
  let g = hoist2 m in
  let re, im = Fmatrix.buffers t.rho in
  let p = min q_first q_second and r = max q_first q_second in
  let lowp = (1 lsl p) - 1 and lowr = (1 lsl r) - 1 in
  for k = 0 to (d lsr 2) - 1 do
    let s = ((k lsr p) lsl (p + 1)) lor (k land lowp) in
    let j00 = ((s lsr r) lsl (r + 1)) lor (s land lowr) in
    let j0 = j00 and j1 = j00 lor lo and j2 = j00 lor hi and j3 = j00 lor hi lor lo in
    for i = 0 to d - 1 do
      let row = i * d in
      let a0r = re.(row + j0) and a0i = im.(row + j0) in
      let a1r = re.(row + j1) and a1i = im.(row + j1) in
      let a2r = re.(row + j2) and a2i = im.(row + j2) in
      let a3r = re.(row + j3) and a3i = im.(row + j3) in
      let out col j =
        (* sum_k old_k * m[k][col] *)
        let g0r, g0i = g.(col)
        and g1r, g1i = g.(4 + col)
        and g2r, g2i = g.(8 + col)
        and g3r, g3i = g.(12 + col) in
        re.(row + j) <-
          (a0r *. g0r) -. (a0i *. g0i)
          +. ((a1r *. g1r) -. (a1i *. g1i))
          +. ((a2r *. g2r) -. (a2i *. g2i))
          +. ((a3r *. g3r) -. (a3i *. g3i));
        im.(row + j) <-
          (a0r *. g0i) +. (a0i *. g0r)
          +. ((a1r *. g1i) +. (a1i *. g1r))
          +. ((a2r *. g2i) +. (a2i *. g2r))
          +. ((a3r *. g3i) +. (a3i *. g3r))
      in
      out 0 j0;
      out 1 j1;
      out 2 j2;
      out 3 j3
    done
  done

let apply_unitary2 t u q_first q_second =
  if Matrix.rows u <> 4 || Matrix.cols u <> 4 then
    invalid_arg "Density.apply_unitary2: expected 4x4";
  check_qubit t q_first;
  check_qubit t q_second;
  if q_first = q_second then invalid_arg "Density.apply_unitary2: duplicate qubit";
  left_mul2 t u q_first q_second;
  right_mul2 t (Matrix.adjoint u) q_first q_second

let apply_gate t gate qubits =
  match (Gate.arity gate, qubits) with
  | 1, [ q ] -> apply_unitary1 t (Gate.unitary gate) q
  | 2, [ a; b ] -> apply_unitary2 t (Gate.unitary gate) a b
  | _ -> invalid_arg "Density.apply_gate: operand count mismatch"

let check_completeness kraus =
  let sum =
    List.fold_left
      (fun acc k -> Matrix.add acc (Matrix.mul (Matrix.adjoint k) k))
      (Matrix.create 2 2) kraus
  in
  if not (Matrix.approx_equal ~tol:1e-6 sum (Matrix.identity 2)) then
    invalid_arg "Density.apply_kraus1: Kraus operators do not sum to identity"

let scratch t =
  match t.scratch with
  | Some s -> s
  | None ->
    let len = dim t * dim t in
    let s =
      {
        orig_re = Array.make len 0.0;
        orig_im = Array.make len 0.0;
        acc_re = Array.make len 0.0;
        acc_im = Array.make len 0.0;
      }
    in
    t.scratch <- Some s;
    s

let apply_kraus1 t kraus q =
  check_qubit t q;
  check_completeness kraus;
  let re, im = Fmatrix.buffers t.rho in
  let len = Array.length re in
  let s = scratch t in
  Array.blit re 0 s.orig_re 0 len;
  Array.blit im 0 s.orig_im 0 len;
  Array.fill s.acc_re 0 len 0.0;
  Array.fill s.acc_im 0 len 0.0;
  List.iter
    (fun k ->
      (* Reuse rho itself as the per-operator working plane: restore the
         original, conjugate by K, accumulate K rho K† into the scratch. *)
      Array.blit s.orig_re 0 re 0 len;
      Array.blit s.orig_im 0 im 0 len;
      left_mul1 t k q;
      right_mul1 t (Matrix.adjoint k) q;
      for i = 0 to len - 1 do
        s.acc_re.(i) <- s.acc_re.(i) +. re.(i);
        s.acc_im.(i) <- s.acc_im.(i) +. im.(i)
      done)
    kraus;
  Array.blit s.acc_re 0 re 0 len;
  Array.blit s.acc_im 0 im 0 len

let c re = { Complex.re; im = 0.0 }

let amplitude_damping ~gamma =
  if gamma < 0.0 || gamma > 1.0 then invalid_arg "Density.amplitude_damping: gamma in [0,1]";
  [
    Matrix.of_arrays [| [| Complex.one; Complex.zero |]; [| Complex.zero; c (sqrt (1.0 -. gamma)) |] |];
    Matrix.of_arrays [| [| Complex.zero; c (sqrt gamma) |]; [| Complex.zero; Complex.zero |] |];
  ]

let phase_damping ~lambda =
  if lambda < 0.0 || lambda > 1.0 then invalid_arg "Density.phase_damping: lambda in [0,1]";
  [
    Matrix.of_arrays [| [| Complex.one; Complex.zero |]; [| Complex.zero; c (sqrt (1.0 -. lambda)) |] |];
    Matrix.of_arrays [| [| Complex.zero; Complex.zero |]; [| Complex.zero; c (sqrt lambda) |] |];
  ]

let thermal_relaxation t ~q ~t1 ~t2 ~time =
  if t1 <= 0.0 || t2 <= 0.0 then invalid_arg "Density.thermal_relaxation: T1, T2 positive";
  if time < 0.0 then invalid_arg "Density.thermal_relaxation: negative time";
  let gamma = 1.0 -. exp (-.time /. t1) in
  let phi_rate = Float.max 0.0 ((1.0 /. t2) -. (1.0 /. (2.0 *. t1))) in
  (* off-diagonals decay by e^{-t phi_rate}: sqrt(1 - lambda) = e^{-t phi_rate} *)
  let lambda = 1.0 -. exp (-2.0 *. time *. phi_rate) in
  apply_kraus1 t (amplitude_damping ~gamma) q;
  apply_kraus1 t (phase_damping ~lambda) q

let pauli_channel ~p_x ~p_y ~p_z =
  let p0 = 1.0 -. p_x -. p_y -. p_z in
  if p0 < -1e-12 then invalid_arg "Density.pauli_channel: probabilities exceed 1";
  let scale p g = Matrix.scale_re (sqrt (Float.max 0.0 p)) (Gate.unitary g) in
  [ scale p0 Gate.I; scale p_x Gate.X; scale p_y Gate.Y; scale p_z Gate.Z ]

let run_steps ~n_qubits steps =
  let t = create n_qubits in
  List.iter
    (fun step ->
      List.iter
        (function
          | Noisy_sim.Unitary (gate, qubits) -> apply_gate t gate qubits
          | Noisy_sim.Partial_exchange { a; b; theta } ->
            apply_unitary2 t (Noisy_sim.exchange_unitary theta) a b
          | Noisy_sim.Pauli_noise { q; p_x; p_y; p_z } ->
            apply_kraus1 t (pauli_channel ~p_x ~p_y ~p_z) q)
        step)
    steps;
  t

let fidelity_pure t sv =
  if Statevector.n_qubits sv <> t.n then invalid_arg "Density.fidelity_pure: size mismatch";
  let ar, ai = Statevector.buffers sv in
  let d = dim t in
  let re, im = Fmatrix.buffers t.rho in
  (* Re( sum_ij conj(a_i) rho_ij a_j ) *)
  let acc = ref 0.0 in
  for i = 0 to d - 1 do
    let row = i * d in
    let cir = ar.{i} and cii = ai.{i} in
    for j = 0 to d - 1 do
      let rr = re.(row + j) and ri = im.(row + j) in
      let tr = (rr *. ar.{j}) -. (ri *. ai.{j}) in
      let ti = (rr *. ai.{j}) +. (ri *. ar.{j}) in
      acc := !acc +. ((cir *. tr) +. (cii *. ti))
    done
  done;
  !acc
