(* Gate fusion: collapse runs of adjacent single-qubit gates into one 2x2
   and absorb them into neighbouring two-qubit gates as 4x4s, so the fused
   program touches the amplitude planes once per *fused* operation instead
   of once per source gate.  On layered workloads (two 1q layers per 2q
   layer) this removes 80%+ of the full-state sweeps.

   Legality rests on two facts only: (1) matrix product — a run of 1q gates
   on qubit q equals the single 2x2 product applied once; (2) commutation of
   operations on disjoint qubits — a pending 2x2 on q may slide forward into
   the next gate touching q, or (at end of circuit) backward onto the last
   emitted operation touching q, because everything in between is disjoint
   from q.  Both rewrites are exact (same unitary, not merely up to phase),
   which is what {!verify} checks against the unfused {!Unitary.of_circuit}
   oracle. *)

type instr =
  | Apply1 of { q : int; e : float array }  (* Statevector.entries1 form *)
  | Apply2 of { a : int; b : int; e : float array }  (* entries2 form *)

type t = { n : int; instrs : instr array; source_gates : int }

(* Planning slots keep the live Fmatrix so backward absorption can keep
   multiplying; conversion to kernel entries happens once at the end. *)
type slot = S1 of int * Fmatrix.t | S2 of int * int * Fmatrix.t

(* Seeded fault for the verification harness (docs/DESIGN.md §11): the
   end-of-circuit flush treats every pending fused 2x2 as if it were the
   identity, so trailing 1q gate runs vanish from the fused program. *)
let fault_identity_skip = lazy (Fault.enabled "fusion-identity-skip")

(* Bit-exact identity only: skipping it is a numeric no-op, so the fused
   program stays *exactly* equivalent, not just within tolerance (X·X and
   friends produce exact identities; Rz(θ)·Rz(−θ) generally does not). *)
let is_exact_identity m =
  Fmatrix.rows m = 2
  && Fmatrix.cols m = 2
  &&
  let re, im = Fmatrix.buffers m in
  re.(0) = 1.0 && re.(3) = 1.0 && re.(1) = 0.0 && re.(2) = 0.0
  && im.(0) = 0.0 && im.(1) = 0.0 && im.(2) = 0.0 && im.(3) = 0.0

let id2 = Fmatrix.identity 2

let plan circuit =
  let n = Circuit.n_qubits circuit in
  let len = Circuit.length circuit in
  (* At most one slot per two-qubit source gate plus one flushed 2x2 per
     qubit. *)
  let out : slot option array = Array.make (len + n) None in
  let count = ref 0 in
  let emit s =
    out.(!count) <- Some s;
    incr count;
    !count - 1
  in
  (* pending.(q): the product of source 1q gates on q not yet attached to an
     emitted operation.  last2.(q): index of the last emitted slot touching
     q (always an S2 — emitting or absorbing into anything touching q clears
     or rewrites pending first), or -1. *)
  let pending = Array.make n None in
  let last2 = Array.make n (-1) in
  Array.iter
    (fun app ->
      let g = app.Gate.gate in
      match (Gate.arity g, app.Gate.qubits) with
      | 1, [| q |] ->
        let m = Fmatrix.of_matrix (Gate.unitary g) in
        pending.(q) <- Some (match pending.(q) with None -> m | Some p -> Fmatrix.mul m p)
      | 2, [| a; b |] ->
        let m = Fmatrix.of_matrix (Gate.unitary g) in
        let lifted =
          match (pending.(a), pending.(b)) with
          | None, None -> m
          | pa, pb ->
            (* first operand = most significant bit, so a's pending goes on
               the left of the Kronecker lift *)
            let ua = Option.value pa ~default:id2 and ub = Option.value pb ~default:id2 in
            Fmatrix.mul m (Fmatrix.kron ua ub)
        in
        pending.(a) <- None;
        pending.(b) <- None;
        let idx = emit (S2 (a, b, lifted)) in
        last2.(a) <- idx;
        last2.(b) <- idx
      | _ ->
        invalid_arg
          (Printf.sprintf "Fusion.plan: %s applied to %d operand(s)" (Gate.name g)
             (Array.length app.Gate.qubits)))
    (Circuit.instructions circuit);
  (* End-of-circuit flush: a pending 2x2 on q commutes backward past every
     later emitted operation (all disjoint from q, or last2.(q) would point
     at them), so it is absorbed into the last 4x4 touching q when one
     exists, else emitted as a lone 2x2 — unless it is the exact identity,
     which is a no-op. *)
  let skip_all = Lazy.force fault_identity_skip in
  for q = 0 to n - 1 do
    match pending.(q) with
    | None -> ()
    | Some p ->
      if skip_all || is_exact_identity p then ()
      else if last2.(q) >= 0 then begin
        match out.(last2.(q)) with
        | Some (S2 (a, b, m)) ->
          let lift = if q = a then Fmatrix.kron p id2 else Fmatrix.kron id2 p in
          out.(last2.(q)) <- Some (S2 (a, b, Fmatrix.mul lift m))
        | _ -> assert false
      end
      else ignore (emit (S1 (q, p)))
  done;
  let instrs =
    Array.init !count (fun i ->
        match out.(i) with
        | Some (S1 (q, m)) -> Apply1 { q; e = Fmatrix.interleaved m }
        | Some (S2 (a, b, m)) -> Apply2 { a; b; e = Fmatrix.interleaved m }
        | None -> assert false)
  in
  { n; instrs; source_gates = len }

let n_qubits t = t.n

let length t = Array.length t.instrs

let source_gates t = t.source_gates

let apply ?jobs sv t =
  if Statevector.n_qubits sv <> t.n then invalid_arg "Fusion.apply: qubit count mismatch";
  Array.iter
    (function
      | Apply1 { q; e } -> Statevector.apply_entries1 ?jobs sv e q
      | Apply2 { a; b; e } -> Statevector.apply_entries2 ?jobs sv e a b)
    t.instrs

let run ?jobs circuit sv = apply ?jobs sv (plan circuit)

let of_circuit circuit =
  let sv = Statevector.create (Circuit.n_qubits circuit) in
  apply sv (plan circuit);
  sv

let to_unitary t =
  let d = 1 lsl t.n in
  let u = Fmatrix.create d d in
  let ure, uim = Fmatrix.buffers u in
  let state = Statevector.create t.n in
  let sre, sim = Statevector.buffers state in
  for k = 0 to d - 1 do
    Statevector.reset state;
    sre.{0} <- 0.0;
    sre.{k} <- 1.0;
    apply ~jobs:1 state t;
    for r = 0 to d - 1 do
      ure.((r * d) + k) <- sre.{r};
      uim.((r * d) + k) <- sim.{r}
    done
  done;
  Fmatrix.to_matrix u

let verify ?(tol = 1e-9) circuit t =
  Circuit.n_qubits circuit = t.n
  && Matrix.approx_equal ~tol (Unitary.of_circuit circuit) (to_unitary t)
