type assignment = { freqs : float array; delta : float }

type cache_stats = { hits : int; misses : int; entries : int }

(* The separation problems solved here are fully determined by a canonical
   key: the variable count, the band, the anharmonicity offset, and the
   multiplicity-derived placement order.  `Smt.find_max_delta` binary-searches
   a backtracking solve per probe, so ColorDynamic re-paying it for the same
   (n_colors, order) layer after layer is the dominant compile cost (§VII-C);
   one mutex-protected table removes the repeats and stays safe when sweep
   cells run on pool domains. *)
type key = {
  k_n : int;
  k_lo : float;
  k_hi : float;
  k_alpha : float;
  k_order : int list option;
}

let cache : (key, float * float array) Hashtbl.t = Hashtbl.create 64

let cache_mutex = Mutex.create ()

let cache_hits = ref 0

let cache_misses = ref 0

let max_cache_entries = 4096

let solver_cache_stats () =
  Mutex.lock cache_mutex;
  let stats = { hits = !cache_hits; misses = !cache_misses; entries = Hashtbl.length cache } in
  Mutex.unlock cache_mutex;
  stats

let reset_solver_cache () =
  Mutex.lock cache_mutex;
  Hashtbl.reset cache;
  cache_hits := 0;
  cache_misses := 0;
  Mutex.unlock cache_mutex

let solve_separated_uncached ~lo ~hi ~alpha ~order n =
  let problem = Fastsc_smt.Smt.create ~lo ~hi n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      (* eq 2: direct separation; eq 3: anharmonicity sidebands both ways *)
      Fastsc_smt.Smt.add_separation problem i j;
      Fastsc_smt.Smt.add_separation ~offset:alpha problem i j;
      Fastsc_smt.Smt.add_separation ~offset:alpha problem j i
    done
  done;
  match Fastsc_smt.Smt.find_max_delta ?order problem with
  | Some (delta, freqs) -> { freqs; delta }
  | None ->
    (* find_max_delta only fails when even delta = 0 is infeasible, so that
       is the "best delta tried".  Spell the whole problem out: with
       registry-added algorithms driving this solver, "no feasible
       assignment" alone is undiagnosable. *)
    failwith
      (Printf.sprintf
         "Freq_alloc: no feasible frequency assignment for %d color%s in band [%.4f, %.4f] \
          GHz with sideband offset %.4f GHz%s (best delta tried: 0 — the band cannot hold \
          the colors at any separation)"
         n
         (if n = 1 then "" else "s")
         lo hi alpha
         (match order with
         | None -> ""
         | Some order ->
           Printf.sprintf ", placement order [%s]"
             (String.concat "; " (List.map string_of_int order))))

let solve_separated ~lo ~hi ~alpha ~order n =
  let key = { k_n = n; k_lo = lo; k_hi = hi; k_alpha = alpha; k_order = order } in
  Mutex.lock cache_mutex;
  let cached = Hashtbl.find_opt cache key in
  (match cached with
  | Some _ -> incr cache_hits
  | None -> incr cache_misses);
  Mutex.unlock cache_mutex;
  match cached with
  | Some (delta, freqs) -> { freqs = Array.copy freqs; delta }
  | None ->
    let assignment = solve_separated_uncached ~lo ~hi ~alpha ~order n in
    Mutex.lock cache_mutex;
    if Hashtbl.length cache >= max_cache_entries then Hashtbl.reset cache;
    (* another domain may have solved the same key meanwhile; both computed
       the same deterministic answer, so last-write-wins is fine *)
    Hashtbl.replace cache key (assignment.delta, Array.copy assignment.freqs);
    Mutex.unlock cache_mutex;
    assignment

(* Rigid translation preserves every pairwise separation and lets the
   assignment hug one end of its band: idle frequencies sink toward the low
   sweet spot, interaction frequencies rise toward the high one (faster
   gates, larger detuning from parked qubits — §V-B3). *)
let shift_to ~target_min:anchor freqs =
  match Array.length freqs with
  | 0 -> freqs
  | _ ->
    let current = Array.fold_left Float.min infinity freqs in
    Array.map (fun f -> f -. current +. anchor) freqs

let shift_to_max ~target_max:anchor freqs =
  match Array.length freqs with
  | 0 -> freqs
  | _ ->
    let current = Array.fold_left Float.max neg_infinity freqs in
    Array.map (fun f -> f -. current +. anchor) freqs

let idle device =
  let g = Device.graph device in
  let coloring =
    match Coloring.two_color g with
    | Some c -> c
    | None -> Coloring.welsh_powell g
  in
  let n = Coloring.n_colors coloring in
  let partition = Device.partition device in
  let alpha = -.(Device.params device).Device.anharmonicity in
  let assignment =
    solve_separated ~lo:partition.Partition.parking_lo ~hi:partition.Partition.parking_hi
      ~alpha ~order:None (max n 1)
  in
  ( coloring,
    {
      assignment with
      freqs = shift_to ~target_min:partition.Partition.parking_lo assignment.freqs;
    } )

let idle_per_qubit device =
  let coloring, assignment = idle device in
  Array.init (Device.n_qubits device) (fun q -> assignment.freqs.(coloring.(q)))

let interaction ?lo ?hi device ~n_colors ~multiplicity =
  if Array.length multiplicity <> n_colors then
    invalid_arg "Freq_alloc.interaction: multiplicity size mismatch";
  let partition = Device.partition device in
  (* The bottom |alpha| of the interaction region is reserved for CZ
     partner qubits (which sit one anharmonicity below their color), so
     no active qubit ever sags into the exclusion band toward the parked
     sidebands. *)
  let reserved = (Device.params device).Device.anharmonicity in
  let lo =
    Option.value lo ~default:(partition.Partition.interaction_lo +. reserved)
  in
  let hi = Option.value hi ~default:partition.Partition.interaction_hi in
  let lo = Float.min lo hi in
  let alpha = -.(Device.params device).Device.anharmonicity in
  if n_colors = 0 then { freqs = [||]; delta = hi -. lo }
  else begin
    (* Total ordering by multiplicity, ascending: the solver places variables
       in non-decreasing frequency order, so the busiest color ends highest. *)
    let order =
      List.sort
        (fun a b ->
          match compare multiplicity.(a) multiplicity.(b) with
          | 0 -> compare a b
          | c -> c)
        (List.init n_colors Fun.id)
    in
    let assignment = solve_separated ~lo ~hi ~alpha ~order:(Some order) n_colors in
    { assignment with freqs = shift_to_max ~target_max:hi assignment.freqs }
  end

let spread ~lo ~hi n =
  if n <= 0 then [||]
  else if n = 1 then [| (lo +. hi) /. 2.0 |]
  else Array.init n (fun k -> lo +. ((hi -. lo) *. float_of_int k /. float_of_int (n - 1)))
