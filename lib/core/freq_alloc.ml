type assignment = { freqs : float array; delta : float }

type cache_stats = {
  hits : int;
  misses : int;
  entries : int;
  warm_hits : int;
  warm_misses : int;
}

(* The separation problems solved here are fully determined by a canonical
   key: the variable count, the band, the anharmonicity offset, and the
   multiplicity-derived placement order.  `Smt.find_max_delta` binary-searches
   a backtracking solve per probe, so ColorDynamic re-paying it for the same
   (n_colors, order) layer after layer is the dominant compile cost (§VII-C);
   one mutex-protected table removes the repeats and stays safe when sweep
   cells run on pool domains. *)
type key = {
  k_n : int;
  k_lo : float;
  k_hi : float;
  k_alpha : float;
  k_order : int list option;
}

(* Seeded faults for the verification harness (docs/DESIGN.md §11). *)
let fault_stale_reset = lazy (Fault.enabled "freq-cache-stale-reset")

let fault_alpha_key = lazy (Fault.enabled "freq-cache-key-alpha")

let cache : (key, float * float array) Hashtbl.t = Hashtbl.create 64

let cache_mutex = Mutex.create ()

let cache_hits = ref 0

let cache_misses = ref 0

let warm_hits = ref 0

let warm_misses = ref 0

(* Same recycle discipline as Crosstalk.pair_error: at 2^16 entries the table
   is reset wholesale rather than evicted piecemeal, so a 100x100 sweep can
   never grow it without bound while the steady-state working set (a handful
   of color counts x bands x orders) always re-fills within a few solves. *)
let max_cache_entries = 1 lsl 16

let solver_cache_stats () =
  Mutex.lock cache_mutex;
  let stats =
    {
      hits = !cache_hits;
      misses = !cache_misses;
      entries = Hashtbl.length cache;
      warm_hits = !warm_hits;
      warm_misses = !warm_misses;
    }
  in
  Mutex.unlock cache_mutex;
  stats

let reset_solver_cache () =
  Mutex.lock cache_mutex;
  if not (Lazy.force fault_stale_reset) then Hashtbl.reset cache;
  cache_hits := 0;
  cache_misses := 0;
  warm_hits := 0;
  warm_misses := 0;
  Mutex.unlock cache_mutex

let build_problem ~lo ~hi ~alpha n =
  let problem = Fastsc_smt.Smt.create ~lo ~hi n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      (* eq 2: direct separation; eq 3: anharmonicity sidebands both ways *)
      Fastsc_smt.Smt.add_separation problem i j;
      Fastsc_smt.Smt.add_separation ~offset:alpha problem i j;
      Fastsc_smt.Smt.add_separation ~offset:alpha problem j i
    done
  done;
  problem

let solve_separated_uncached ?warm ?warm_used ~lo ~hi ~alpha ~order n =
  let problem = build_problem ~lo ~hi ~alpha n in
  (match warm with
  | None -> ()
  | Some w ->
    (* a seed is a "warm hit" when it is actually usable: positive margin,
       so the binary search opens there instead of at delta = 0 *)
    let usable = match Fastsc_smt.Smt.margin problem w with
      | Some m -> m > 0.0
      | None -> false
    in
    Option.iter (fun r -> r := usable) warm_used;
    Mutex.lock cache_mutex;
    if usable then incr warm_hits else incr warm_misses;
    Mutex.unlock cache_mutex);
  match Fastsc_smt.Smt.find_max_delta ?order ?warm problem with
  | Some (delta, freqs) -> { freqs; delta }
  | None ->
    (* find_max_delta only fails when even delta = 0 is infeasible, so that
       is the "best delta tried".  Spell the whole problem out: with
       registry-added algorithms driving this solver, "no feasible
       assignment" alone is undiagnosable. *)
    failwith
      (Printf.sprintf
         "Freq_alloc: no feasible frequency assignment for %d color%s in band [%.4f, %.4f] \
          GHz with sideband offset %.4f GHz%s (best delta tried: 0 — the band cannot hold \
          the colors at any separation)"
         n
         (if n = 1 then "" else "s")
         lo hi alpha
         (match order with
         | None -> ""
         | Some order ->
           Printf.sprintf ", placement order [%s]"
             (String.concat "; " (List.map string_of_int order))))

let solve_separated ?warm ?warm_used ~lo ~hi ~alpha ~order n =
  match warm with
  | Some _ ->
    (* Warm solves bypass the memo table in both directions: their result
       depends on the seed witness, not just the key, and cached values must
       stay pure functions of the key — otherwise whether a concurrent cell
       sees the cold or the warm answer would depend on domain scheduling,
       breaking the any-jobs byte-identity contract. *)
    solve_separated_uncached ?warm ?warm_used ~lo ~hi ~alpha ~order n
  | None ->
    let k_alpha = if Lazy.force fault_alpha_key then 0.0 else alpha in
    let key = { k_n = n; k_lo = lo; k_hi = hi; k_alpha; k_order = order } in
    Mutex.lock cache_mutex;
    let cached = Hashtbl.find_opt cache key in
    (match cached with
    | Some _ -> incr cache_hits
    | None -> incr cache_misses);
    Mutex.unlock cache_mutex;
    (match cached with
    | Some (delta, freqs) -> { freqs = Array.copy freqs; delta }
    | None ->
      let assignment = solve_separated_uncached ~lo ~hi ~alpha ~order n in
      Mutex.lock cache_mutex;
      if Hashtbl.length cache >= max_cache_entries then Hashtbl.reset cache;
      (* another domain may have solved the same key meanwhile; both computed
         the same deterministic answer, so last-write-wins is fine *)
      Hashtbl.replace cache key (assignment.delta, Array.copy assignment.freqs);
      Mutex.unlock cache_mutex;
      assignment)

(* Rigid translation preserves every pairwise separation and lets the
   assignment hug one end of its band: idle frequencies sink toward the low
   sweet spot, interaction frequencies rise toward the high one (faster
   gates, larger detuning from parked qubits — §V-B3). *)
let shift_to ~target_min:anchor freqs =
  match Array.length freqs with
  | 0 -> freqs
  | _ ->
    let current = Array.fold_left Float.min infinity freqs in
    Array.map (fun f -> f -. current +. anchor) freqs

let shift_to_max ~target_max:anchor freqs =
  match Array.length freqs with
  | 0 -> freqs
  | _ ->
    let current = Array.fold_left Float.max neg_infinity freqs in
    Array.map (fun f -> f -. current +. anchor) freqs

let idle device =
  let g = Device.graph device in
  let coloring =
    match Coloring.two_color g with
    | Some c -> c
    | None -> Coloring.welsh_powell g
  in
  let n = Coloring.n_colors coloring in
  let partition = Device.partition device in
  let alpha = -.(Device.params device).Device.anharmonicity in
  let assignment =
    solve_separated ~lo:partition.Partition.parking_lo ~hi:partition.Partition.parking_hi
      ~alpha ~order:None (max n 1)
  in
  ( coloring,
    {
      assignment with
      freqs = shift_to ~target_min:partition.Partition.parking_lo assignment.freqs;
    } )

let idle_per_qubit device =
  let coloring, assignment = idle device in
  Array.init (Device.n_qubits device) (fun q -> assignment.freqs.(coloring.(q)))

(* Re-aim a previous witness at a new placement order: the separation
   problem is a complete graph, symmetric under permutation of variables, so
   the same value multiset sorted ascending along the new order is feasible
   with the same margin — and monotone, which is what the ordered warm seed
   requires. *)
let warm_for_order ~order warm =
  let sorted = Array.copy warm in
  Array.sort compare sorted;
  let w = Array.make (Array.length warm) 0.0 in
  List.iteri (fun k v -> w.(v) <- sorted.(k)) order;
  w

let interaction ?lo ?hi ?warm ?warm_used device ~n_colors ~multiplicity =
  if Array.length multiplicity <> n_colors then
    invalid_arg "Freq_alloc.interaction: multiplicity size mismatch";
  let partition = Device.partition device in
  (* The bottom |alpha| of the interaction region is reserved for CZ
     partner qubits (which sit one anharmonicity below their color), so
     no active qubit ever sags into the exclusion band toward the parked
     sidebands. *)
  let reserved = (Device.params device).Device.anharmonicity in
  let lo =
    Option.value lo ~default:(partition.Partition.interaction_lo +. reserved)
  in
  let hi = Option.value hi ~default:partition.Partition.interaction_hi in
  let lo = Float.min lo hi in
  let alpha = -.(Device.params device).Device.anharmonicity in
  if n_colors = 0 then { freqs = [||]; delta = hi -. lo }
  else begin
    (* Total ordering by multiplicity, ascending: the solver places variables
       in non-decreasing frequency order, so the busiest color ends highest. *)
    let order =
      List.sort
        (fun a b ->
          match compare multiplicity.(a) multiplicity.(b) with
          | 0 -> compare a b
          | c -> c)
        (List.init n_colors Fun.id)
    in
    let warm =
      match warm with
      | Some w when Array.length w = n_colors -> Some (warm_for_order ~order w)
      | _ -> None
    in
    let assignment =
      solve_separated ?warm ?warm_used ~lo ~hi ~alpha ~order:(Some order) n_colors
    in
    { assignment with freqs = shift_to_max ~target_max:hi assignment.freqs }
  end

let spread ~lo ~hi n =
  if n <= 0 then [||]
  else if n = 1 then [| (lo +. hi) /. 2.0 |]
  else Array.init n (fun k -> lo +. ((hi -. lo) *. float_of_int k /. float_of_int (n - 1)))
