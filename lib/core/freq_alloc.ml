type assignment = { freqs : float array; delta : float }

type cache_stats = {
  hits : int;
  misses : int;
  entries : int;
  warm_hits : int;
  warm_misses : int;
}

(* The separation problems solved here are fully determined by a canonical
   key: the variable count, the band, the anharmonicity offset, and the
   multiplicity-derived placement order.  `Smt.find_max_delta` binary-searches
   a backtracking solve per probe, so ColorDynamic re-paying it for the same
   (n_colors, order) layer after layer is the dominant compile cost (§VII-C);
   one mutex-protected table removes the repeats and stays safe when sweep
   cells run on pool domains. *)
type key = {
  k_n : int;
  k_lo : float;
  k_hi : float;
  k_alpha : float;
  k_order : int list option;
}

(* Seeded faults for the verification harness (docs/DESIGN.md §11). *)
let fault_stale_reset = lazy (Fault.enabled "freq-cache-stale-reset")

let fault_alpha_key = lazy (Fault.enabled "freq-cache-key-alpha")

let cache : (key, float * float array) Hashtbl.t = Hashtbl.create 64

let cache_mutex = Mutex.create ()

let cache_hits = ref 0

let cache_misses = ref 0

let warm_hits = ref 0

let warm_misses = ref 0

(* Same recycle discipline as Crosstalk.pair_error: at 2^16 entries the table
   is reset wholesale rather than evicted piecemeal, so a 100x100 sweep can
   never grow it without bound while the steady-state working set (a handful
   of color counts x bands x orders) always re-fills within a few solves. *)
let max_cache_entries = 1 lsl 16

let solver_cache_stats () =
  Mutex.lock cache_mutex;
  let stats =
    {
      hits = !cache_hits;
      misses = !cache_misses;
      entries = Hashtbl.length cache;
      warm_hits = !warm_hits;
      warm_misses = !warm_misses;
    }
  in
  Mutex.unlock cache_mutex;
  stats

let reset_solver_cache () =
  Mutex.lock cache_mutex;
  if not (Lazy.force fault_stale_reset) then Hashtbl.reset cache;
  cache_hits := 0;
  cache_misses := 0;
  warm_hits := 0;
  warm_misses := 0;
  Mutex.unlock cache_mutex

(* Snapshot codec: the memo table as a JSON document, for the serve daemon's
   crash-safe cache persistence (Snapshot wraps this payload in a checksummed
   envelope).  Entries are emitted in sorted key order so the same cache
   state always serializes to the same bytes. *)

let json_of_entry (k, (delta, freqs)) =
  Json.Obj
    [
      ("n", Json.Int k.k_n);
      ("lo", Json.Float k.k_lo);
      ("hi", Json.Float k.k_hi);
      ("alpha", Json.Float k.k_alpha);
      ( "order",
        match k.k_order with
        | None -> Json.Null
        | Some o -> Json.List (List.map (fun i -> Json.Int i) o) );
      ("delta", Json.Float delta);
      ("freqs", Json.List (Array.to_list (Array.map (fun f -> Json.Float f) freqs)));
    ]

let export_cache () =
  Mutex.lock cache_mutex;
  let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) cache [] in
  Mutex.unlock cache_mutex;
  let entries = List.sort (fun (a, _) (b, _) -> compare a b) entries in
  Json.Obj [ ("solver_cache", Json.List (List.map json_of_entry entries)) ]

let entry_of_json json =
  let to_float = function
    | Json.Float f -> Some f
    | Json.Int i -> Some (float_of_int i)
    | _ -> None
  in
  let field name = Option.bind (Json.member name json) to_float in
  match (Json.member "n" json, field "lo", field "hi", field "alpha", field "delta") with
  | Some (Json.Int n), Some lo, Some hi, Some alpha, Some delta when n >= 0 -> (
    let order =
      match Json.member "order" json with
      | Some (Json.List items) ->
        let ints =
          List.filter_map (function Json.Int i -> Some i | _ -> None) items
        in
        if List.length ints = List.length items then Some (Some ints) else None
      | Some Json.Null | None -> Some None
      | Some _ -> None
    in
    let freqs =
      match Json.member "freqs" json with
      | Some (Json.List items) ->
        let fs = List.filter_map to_float items in
        if List.length fs = List.length items && List.length fs = n then
          Some (Array.of_list fs)
        else None
      | _ -> None
    in
    match (order, freqs) with
    | Some k_order, Some freqs
      when Float.is_finite delta && Array.for_all Float.is_finite freqs ->
      Some ({ k_n = n; k_lo = lo; k_hi = hi; k_alpha = alpha; k_order }, (delta, freqs))
    | _ -> None)
  | _ -> None

let import_cache doc =
  match Json.member "solver_cache" doc with
  | Some (Json.List items) ->
    (* malformed entries are skipped, not fatal: a snapshot from an older
       build costs only the entries it cannot express *)
    let entries = List.filter_map entry_of_json items in
    Mutex.lock cache_mutex;
    let imported = ref 0 in
    List.iter
      (fun (k, v) ->
        if Hashtbl.length cache < max_cache_entries then begin
          Hashtbl.replace cache k v;
          incr imported
        end)
      entries;
    Mutex.unlock cache_mutex;
    !imported
  | _ -> 0

let build_problem ~lo ~hi ~alpha n =
  let problem = Fastsc_smt.Smt.create ~lo ~hi n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      (* eq 2: direct separation; eq 3: anharmonicity sidebands both ways *)
      Fastsc_smt.Smt.add_separation problem i j;
      Fastsc_smt.Smt.add_separation ~offset:alpha problem i j;
      Fastsc_smt.Smt.add_separation ~offset:alpha problem j i
    done
  done;
  problem

let solve_separated_uncached ?warm ?warm_used ~lo ~hi ~alpha ~order n =
  let problem = build_problem ~lo ~hi ~alpha n in
  (match warm with
  | None -> ()
  | Some w ->
    (* a seed is a "warm hit" when it is actually usable: positive margin,
       so the binary search opens there instead of at delta = 0 *)
    let usable = match Fastsc_smt.Smt.margin problem w with
      | Some m -> m > 0.0
      | None -> false
    in
    Option.iter (fun r -> r := usable) warm_used;
    Mutex.lock cache_mutex;
    if usable then incr warm_hits else incr warm_misses;
    Mutex.unlock cache_mutex);
  match Fastsc_smt.Smt.find_max_delta ?order ?warm problem with
  | Some (delta, freqs) -> { freqs; delta }
  | None ->
    (* find_max_delta only fails when even delta = 0 is infeasible, so that
       is the "best delta tried".  Spell the whole problem out: with
       registry-added algorithms driving this solver, "no feasible
       assignment" alone is undiagnosable. *)
    failwith
      (Printf.sprintf
         "Freq_alloc: no feasible frequency assignment for %d color%s in band [%.4f, %.4f] \
          GHz with sideband offset %.4f GHz%s (best delta tried: 0 — the band cannot hold \
          the colors at any separation)"
         n
         (if n = 1 then "" else "s")
         lo hi alpha
         (match order with
         | None -> ""
         | Some order ->
           Printf.sprintf ", placement order [%s]"
             (String.concat "; " (List.map string_of_int order))))

let solve_separated ?warm ?warm_used ~lo ~hi ~alpha ~order n =
  match warm with
  | Some _ ->
    (* Warm solves bypass the memo table in both directions: their result
       depends on the seed witness, not just the key, and cached values must
       stay pure functions of the key — otherwise whether a concurrent cell
       sees the cold or the warm answer would depend on domain scheduling,
       breaking the any-jobs byte-identity contract. *)
    solve_separated_uncached ?warm ?warm_used ~lo ~hi ~alpha ~order n
  | None ->
    let k_alpha = if Lazy.force fault_alpha_key then 0.0 else alpha in
    let key = { k_n = n; k_lo = lo; k_hi = hi; k_alpha; k_order = order } in
    Mutex.lock cache_mutex;
    let cached = Hashtbl.find_opt cache key in
    (match cached with
    | Some _ -> incr cache_hits
    | None -> incr cache_misses);
    Mutex.unlock cache_mutex;
    (match cached with
    | Some (delta, freqs) -> { freqs = Array.copy freqs; delta }
    | None ->
      let assignment = solve_separated_uncached ~lo ~hi ~alpha ~order n in
      Mutex.lock cache_mutex;
      if Hashtbl.length cache >= max_cache_entries then Hashtbl.reset cache;
      (* another domain may have solved the same key meanwhile; both computed
         the same deterministic answer, so last-write-wins is fine *)
      Hashtbl.replace cache key (assignment.delta, Array.copy assignment.freqs);
      Mutex.unlock cache_mutex;
      assignment)

(* Rigid translation preserves every pairwise separation and lets the
   assignment hug one end of its band: idle frequencies sink toward the low
   sweet spot, interaction frequencies rise toward the high one (faster
   gates, larger detuning from parked qubits — §V-B3). *)
let shift_to ~target_min:anchor freqs =
  match Array.length freqs with
  | 0 -> freqs
  | _ ->
    let current = Array.fold_left Float.min infinity freqs in
    Array.map (fun f -> f -. current +. anchor) freqs

let shift_to_max ~target_max:anchor freqs =
  match Array.length freqs with
  | 0 -> freqs
  | _ ->
    let current = Array.fold_left Float.max neg_infinity freqs in
    Array.map (fun f -> f -. current +. anchor) freqs

let idle device =
  let g = Device.graph device in
  let coloring =
    match Coloring.two_color g with
    | Some c -> c
    | None -> Coloring.welsh_powell g
  in
  let n = Coloring.n_colors coloring in
  let partition = Device.partition device in
  let alpha = -.(Device.params device).Device.anharmonicity in
  let assignment =
    solve_separated ~lo:partition.Partition.parking_lo ~hi:partition.Partition.parking_hi
      ~alpha ~order:None (max n 1)
  in
  ( coloring,
    {
      assignment with
      freqs = shift_to ~target_min:partition.Partition.parking_lo assignment.freqs;
    } )

let idle_per_qubit device =
  let coloring, assignment = idle device in
  Array.init (Device.n_qubits device) (fun q -> assignment.freqs.(coloring.(q)))

(* Re-aim a previous witness at a new placement order: the separation
   problem is a complete graph, symmetric under permutation of variables, so
   the same value multiset sorted ascending along the new order is feasible
   with the same margin — and monotone, which is what the ordered warm seed
   requires. *)
let warm_for_order ~order warm =
  let sorted = Array.copy warm in
  Array.sort compare sorted;
  let w = Array.make (Array.length warm) 0.0 in
  List.iteri (fun k v -> w.(v) <- sorted.(k)) order;
  w

let interaction ?lo ?hi ?warm ?warm_used device ~n_colors ~multiplicity =
  if Array.length multiplicity <> n_colors then
    invalid_arg "Freq_alloc.interaction: multiplicity size mismatch";
  let partition = Device.partition device in
  (* The bottom |alpha| of the interaction region is reserved for CZ
     partner qubits (which sit one anharmonicity below their color), so
     no active qubit ever sags into the exclusion band toward the parked
     sidebands. *)
  let reserved = (Device.params device).Device.anharmonicity in
  let lo =
    Option.value lo ~default:(partition.Partition.interaction_lo +. reserved)
  in
  let hi = Option.value hi ~default:partition.Partition.interaction_hi in
  let lo = Float.min lo hi in
  let alpha = -.(Device.params device).Device.anharmonicity in
  if n_colors = 0 then { freqs = [||]; delta = hi -. lo }
  else begin
    (* Total ordering by multiplicity, ascending: the solver places variables
       in non-decreasing frequency order, so the busiest color ends highest. *)
    let order =
      List.sort
        (fun a b ->
          match compare multiplicity.(a) multiplicity.(b) with
          | 0 -> compare a b
          | c -> c)
        (List.init n_colors Fun.id)
    in
    let warm =
      match warm with
      | Some w when Array.length w = n_colors -> Some (warm_for_order ~order w)
      | _ -> None
    in
    let assignment =
      solve_separated ?warm ?warm_used ~lo ~hi ~alpha ~order:(Some order) n_colors
    in
    { assignment with freqs = shift_to_max ~target_max:hi assignment.freqs }
  end

let spread ~lo ~hi n =
  if n <= 0 then [||]
  else if n = 1 then [| (lo +. hi) /. 2.0 |]
  else Array.init n (fun k -> lo +. ((hi -. lo) *. float_of_int k /. float_of_int (n - 1)))
