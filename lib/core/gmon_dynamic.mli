(** GmonDynamic: ColorDynamic on tunable-coupler hardware — the extension the
    paper's conclusion proposes ("complementing Gmon architecture with
    ColorDynamic optimization would also be a natural extension", §VIII).

    The schedule is exactly ColorDynamic's — program-specific subgraph
    coloring, SMT frequency search, noise-aware serialization — but executes
    on a device whose couplers are deactivated for every non-interacting
    pair.  The two mitigation mechanisms then compose multiplicatively:
    residual coupler leakage (eta x g0) is further suppressed by the
    spectral separation the coloring guarantees, so the architecture
    tolerates far larger coupler imperfections than the tiling-scheduled
    Baseline G (Fig 12's decay flattens). *)

val run :
  ?crosstalk_distance:int ->
  ?max_colors:int option ->
  ?conflict_threshold:int ->
  ?residual_coupling:float ->
  ?warm_start:bool ->
  ?decompose:bool ->
  Device.t -> Circuit.t -> Schedule.t * Color_dynamic.stats
(** Same parameters as {!Color_dynamic.run} plus the coupler leakage
    [residual_coupling] (default 0). *)

val scheduler : Pass.scheduler
(** This algorithm as a registry entry (name ["gmon-dynamic"], aliases
    ["gmondynamic"]/["gd"]); same options as ColorDynamic plus
    [residual_coupling], reporting {!Color_dynamic.pass_stats}.  Registered
    by {!Compile}. *)
