type algorithm =
  | Naive
  | Gmon
  | Uniform
  | Static
  | Color_dynamic
  | Gmon_dynamic
  | Anneal_dynamic
  | Murali_delay
  | Cqc_synergy

(* Register the built-in zoo.  Referencing each module's [scheduler] here
   both performs the registration and guarantees the scheduler translation
   units are linked into any program that touches Compile (module
   initializers only run for linked units). *)
let () =
  List.iter Pass.register
    [
      Baseline_naive.scheduler;
      Baseline_gmon.scheduler;
      Baseline_uniform.scheduler;
      Baseline_static.scheduler;
      Color_dynamic.scheduler;
      Gmon_dynamic.scheduler;
      Anneal_dynamic.scheduler;
      Murali_delay.scheduler;
      Cqc_synergy.scheduler;
      Greedy_spread.scheduler;
    ]

(* The only per-algorithm table left: the closed public variant against the
   registry's canonical names.  Dispatch, parsing, and the algorithm lists
   all go through the registry. *)
let names =
  [
    (Naive, "baseline-n");
    (Gmon, "baseline-g");
    (Uniform, "baseline-u");
    (Static, "baseline-s");
    (Color_dynamic, "color-dynamic");
    (Gmon_dynamic, "gmon-dynamic");
    (Anneal_dynamic, "anneal-dynamic");
    (Murali_delay, "murali-delay");
    (Cqc_synergy, "cqc-synergy");
  ]

let algorithm_to_string algorithm = List.assoc algorithm names

let algorithm_of_name name =
  List.find_map (fun (a, n) -> if String.equal n name then Some a else None) names

let registered_algorithms ~all =
  List.filter_map
    (fun (module S : Pass.SCHEDULER) ->
      if all || S.table1 then algorithm_of_name S.name else None)
    (Pass.schedulers ())

let all_algorithms = registered_algorithms ~all:false

let extended_algorithms = registered_algorithms ~all:true

let algorithm_of_string spec =
  match Pass.find_scheduler spec with
  | Some (module S : Pass.SCHEDULER) -> algorithm_of_name S.name
  | None -> None

type options = Pass.options = {
  decomposition : Decompose.strategy;
  crosstalk_distance : int;
  max_colors : int option;
  conflict_threshold : int;
  residual_coupling : float;
  placement : [ `Identity | `Degree | `Coherence | `Auto ];
  optimize : bool;
  router : string;
  delay_threshold : float;
  warm_start : bool;
  decompose_components : bool;
}

let default_options = Pass.default_options

let prepare options device circuit =
  Pass.Context.native_exn
    (Pass.run_pipeline Pass.prepare_passes (Pass.Context.create ~options device circuit))

let schedule_native options algorithm device native =
  let (module S : Pass.SCHEDULER) = Pass.scheduler_exn (algorithm_to_string algorithm) in
  fst (S.schedule options device native)

let run ?(options = default_options) algorithm device circuit =
  Pass.Context.schedule_exn
    (Pass.execute ~options ~through:`Schedule ~algorithm:(algorithm_to_string algorithm)
       device circuit)
