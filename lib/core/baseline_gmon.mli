(** Baseline G: tunable-coupler ("gmon") architecture with a tiling scheduler
    (paper Table I, §VI-A).

    Reconstructs a Sycamore-like machine: every coupling has its own tunable
    coupler, deactivated except for the pairs gated in the current step.  On
    a 2-D grid the couplings are activated following the Sycamore A/B/C/D
    tiling pattern; on other topologies an equivalent matching partition is
    derived by edge coloring.  With perfect deactivation (residual coupling
    eta = 0) parallel gates never crosstalk; Fig 12 sweeps eta to show the
    exponential sensitivity of this design to coupler control noise. *)

val run : ?residual_coupling:float -> Device.t -> Circuit.t -> Schedule.t
(** [residual_coupling] is the fraction of [g0] leaking through deactivated
    couplers (default 0, the paper's conservative assumption). *)

val edge_classes : Device.t -> ((int * int) * int) list
(** The coupler-activation classes: Sycamore ABCD tiling on grids, greedy
    proper edge coloring elsewhere.  Each class is a matching. *)

val scheduler : Pass.scheduler
(** This algorithm as a registry entry (name ["baseline-g"], aliases
    ["gmon"]/["g"]); reads [residual_coupling] from the pipeline options.
    Registered by {!Compile}. *)
