(** Murali-style software-only crosstalk-adaptive scheduling (rival compiler
    zoo; PAPERS.md, ASPLOS 2020).

    Static uniform frequencies exactly like Baseline N, but simultaneous
    two-qubit gates whose modeled crosstalk error against the gates already
    in the moment exceeds a threshold are {e delayed} into later moments.
    The inserted idle time is costed through the existing decoherence model
    by {!Schedule.evaluate} — no special path.  Registered as
    ["murali-delay"] (aliases ["murali"], ["md"]); the threshold comes from
    [Pass.options.delay_threshold]. *)

val simultaneous_error :
  ?worst_case:bool -> Device.t -> t:float -> int * int -> int * int -> float
(** [simultaneous_error device ~t (a, b) (c, d)] — the summed crosstalk
    pair-error of running two-qubit gates on couplings [(a, b)] and [(c, d)]
    simultaneously for [t] ns with every operand at the shared interaction
    frequency: one {!Fastsc_noise.Crosstalk.pair_error} term per coupled
    spectator channel between the two operand sets.  Exposed so the directed
    tests can assert the scheduler's acceptance invariant. *)

val pack :
  ?threshold:float -> algorithm:string -> Device.t -> Circuit.t -> Schedule.t * int
(** Threshold-packing of a routed native circuit at uniform frequencies:
    criticality-ordered greedy moments where a two-qubit gate joins only if
    {!simultaneous_error} against every accepted gate stays within
    [threshold] (default [1e-4]).  Returns the schedule (labeled
    [algorithm]) and the number of delay events.  Shared with
    {!Cqc_synergy}, whose packing phase is identical. *)

val run : ?threshold:float -> Device.t -> Circuit.t -> Schedule.t
(** [pack] with the canonical ["murali-delay"] label, schedule only. *)

val scheduler : Pass.scheduler
(** The registry entry ({!Compile} registers it at load time). *)
