(** Device calibration tables.

    The paper's conclusion frames ColorDynamic's machinery as "a generic
    calibration problem for isolating or interacting qubits" (§VIII).  This
    module produces that calibration for a whole device, program-independent:
    per qubit, the parking frequency and its flux bias; per coupling, the
    statically-colored interaction frequencies for iSWAP and CZ with the flux
    pair each qubit must be driven to and the hold times — everything a
    bring-up procedure needs before any program is compiled. *)

type qubit_cal = {
  qubit : int;
  idle_freq : float;  (** GHz. *)
  idle_flux : float;  (** Flux quanta. *)
  idle_sensitivity : float;  (** |d omega/d flux| at the parking point. *)
  t1 : float;
  t2 : float;
}

type pair_cal = {
  pair : int * int;
  color : int;  (** Static crosstalk-graph color of this coupling. *)
  iswap_freq : float;  (** Shared resonance frequency for the iSWAP family. *)
  iswap_fluxes : float * float;
  iswap_time : float;  (** ns, including retuning overhead. *)
  sqrt_iswap_time : float;
  cz_freqs : float * float;  (** (first, second) 0-1 frequencies on CZ resonance. *)
  cz_fluxes : float * float;
  cz_time : float;
}

type t = {
  device : Device.t;
  qubits : qubit_cal array;
  pairs : pair_cal list;
  n_colors : int;  (** Colors of the full crosstalk graph. *)
}

val generate : ?crosstalk_distance:int -> Device.t -> t
(** Build the calibration: idle plan from the connectivity coloring,
    interaction plan from the static crosstalk-graph coloring. *)

val coherence : t -> int -> float * float
(** Calibration-backed per-qubit [(t1, t2)] for {!Schedule.evaluate}'s
    [?coherence] override: [t1] is the bare relaxation time, while [t2] is
    shortened by 1/f flux-noise dephasing at the parking point —
    [1/t2' = 1/t2 + 2 pi A S] with [A] the standard few-uPhi0 noise
    amplitude and [S] the qubit's [idle_sensitivity].  Qubits parked far
    from a sweet spot therefore decohere faster than the device's bare
    tables claim, which is what the shootout bench charges.
    @raise Invalid_argument if the qubit index is out of range. *)

val check : t -> (unit, string) result
(** Physical invariants: every frequency within its qubit's tunable range,
    every flux bias reproduces its frequency through the transmon model,
    same-color couplings share their iSWAP frequency, and couplings adjacent
    in the crosstalk graph never do. *)

val to_json : t -> Json.t

val pp : Format.formatter -> t -> unit
(** Human-readable calibration report. *)
