(** Pass-manager compiler pipeline.

    The compiler is a composable pass-graph assembled per algorithm.  A
    scheduler that consumes native gates ([consumes = `Native]) gets the
    classic front end

    {v place -> route -> decompose -> optimize -> schedule -> evaluate v}

    while a scheduler that owns its own routing ([consumes = `Logical], e.g.
    the CQC-style synergistic compiler) gets

    {v place -> route-schedule -> evaluate v}

    — {!pipeline} reads the chosen scheduler's declared requirements and
    assembles the stage list accordingly; there is no constant pipeline.
    Stages are threaded over a {!Context.t} record that carries the device,
    the options, every intermediate artifact (placement, routed circuit,
    native circuit, schedule, metrics) and an instrumentation trail:
    wall-clock per pass, {!Fastsc_smt.Smt.find_max_delta} solve-count deltas,
    and the hit/miss deltas of the {!Freq_alloc} and
    {!Fastsc_noise.Crosstalk} memo tables.

    Scheduling algorithms are first-class {!SCHEDULER} modules held in a
    registry; the built-in zoo is registered by {!Compile} (reference
    {!Compile} — e.g. any [Compile.algorithm_of_string] call — before using
    the registry so their registrations have run).  New algorithms register
    the same way and are immediately usable by name through {!execute},
    including per-compilation statistics via {!Context.stats} — there is no
    special-cased stats path.  SWAP-insertion strategies live in a parallel
    {!ROUTER} registry selected through [options.router]; the two built-ins
    ([lookahead], [greedy]) register at module-initialization time.

    [Compile.run] and friends are thin wrappers over this module and their
    output is bit-identical to the pre-pass-manager pipeline (golden tests
    enforce the bench drivers' stdout bytes). *)

type options = {
  decomposition : Decompose.strategy;  (** Default [Hybrid] (§V-B5). *)
  crosstalk_distance : int;  (** The [d] of G_x^(d); default 1. *)
  max_colors : int option;  (** Per-step color cap (Fig 11); default none. *)
  conflict_threshold : int;  (** noise_conflict neighbour cap; default 2. *)
  residual_coupling : float;  (** Gmon coupler leakage eta (Fig 12); default 0. *)
  placement : [ `Identity | `Degree | `Coherence | `Auto ];
      (** Initial mapping heuristic; [`Auto] (default) routes with identity
          and degree placements and keeps whichever inserts fewer SWAPs. *)
  optimize : bool;  (** Run the peephole optimizer after decomposition. *)
  router : string;
      (** Name (or alias) of the registered {!ROUTER} the route pass
          dispatches to; default ["lookahead"].  Unknown names raise when the
          route pass runs. *)
  delay_threshold : float;
      (** Crosstalk pair-error budget above which software-only schedulers
          (murali-delay, cqc-synergy) refuse to run two gates simultaneously
          and delay one instead; default [1e-4]. *)
  warm_start : bool;
      (** Seed each moment's frequency solve with the previous moment's
          witness (ColorDynamic family).  Off by default: warm-started solves
          may land on a different (equally valid) witness within the solver
          tolerance, and the defaults must keep golden outputs byte-identical. *)
  decompose_components : bool;
      (** Allocate each connected component of the active crosstalk subgraph
          independently (pool-parallel, merged in component order).  Off by
          default for the same golden-output reason. *)
}

val default_options : options

(** Per-compilation statistics a scheduler may report (e.g. ColorDynamic's
    cycle and color counts).  Kept as a flat label/value list so the registry
    needs no per-algorithm types and the trace report can serialize any
    scheduler's stats uniformly. *)
type stat_value =
  | Int of int
  | Float of float
  | Text of string

type stat = string * stat_value

(** A scheduling algorithm as the registry sees it. *)
module type SCHEDULER = sig
  val name : string
  (** Canonical name, e.g. ["color-dynamic"] — what
      [Compile.algorithm_to_string] prints and [--trace] reports. *)

  val aliases : string list
  (** Accepted spellings besides [name] (CLI shorthands like ["cd"]). *)

  val table1 : bool
  (** One of the paper's five Table I evaluation columns (drives
      [Compile.all_algorithms] vs [Compile.extended_algorithms]). *)

  val consumes : [ `Native | `Logical ]
  (** What the scheduler's [schedule] expects as its circuit argument.
      [`Native] (every paper scheduler): an already-routed native-gate
      circuit — {!pipeline} runs the classic front end first.  [`Logical]:
      the placement-applied but {e unrouted} program — the scheduler owns
      SWAP insertion and decomposition itself, and {!pipeline} hands it the
      circuit through the combined {!route_schedule} stage instead. *)

  val schedule : options -> Device.t -> Circuit.t -> Schedule.t * stat list
  (** Schedule the circuit (routed native gates for [`Native] consumers, the
      placed logical program for [`Logical] ones), picking whichever options
      apply; returns per-compilation stats ([[]] if none). *)
end

type scheduler = (module SCHEDULER)

val register : scheduler -> unit
(** Add a scheduler to the registry (appended in registration order).
    Re-registering a [name] replaces the previous entry in place, so tests
    can shadow a built-in without growing the registry. *)

val schedulers : unit -> scheduler list
(** All registered schedulers, in registration order. *)

val scheduler_names : unit -> string list
(** Canonical names, in registration order. *)

val find_scheduler : string -> scheduler option
(** Look up by canonical name or alias. *)

val scheduler_exn : string -> scheduler
(** Like {!find_scheduler}.
    @raise Invalid_argument with the list of registered names on a miss. *)

(** A SWAP-insertion strategy as the route pass sees it.  Routers form a
    registry parallel to the scheduler one; [options.router] selects by name
    or alias.  Built-ins: ["lookahead"] (SABRE-style windowed lookahead, the
    default) and ["greedy"] (shortest-path). *)
module type ROUTER = sig
  val name : string
  (** Canonical name, e.g. ["lookahead"]. *)

  val aliases : string list
  (** Accepted spellings besides [name]. *)

  val route : Graph.t -> placement:int array -> Circuit.t -> Mapping.result
  (** Insert SWAPs so every two-qubit gate lands on a coupled pair, starting
      from [placement]. *)
end

type router = (module ROUTER)

val register_router : router -> unit
(** Add a router to the registry; re-registering a [name] replaces it in
    place, like {!register}. *)

val routers : unit -> router list
(** All registered routers, in registration order. *)

val router_names : unit -> string list
(** Canonical router names, in registration order. *)

val find_router : string -> router option
(** Look up by canonical name or alias. *)

val router_exn : string -> router
(** Like {!find_router}.
    @raise Invalid_argument with the list of registered names on a miss. *)

module Context : sig
  (** Instrumentation record of one executed pass. *)
  type pass_report = {
    pass : string;  (** Stage name ([place], [route], ...). *)
    wall_ns : float;  (** Wall-clock spent in the pass, nanoseconds. *)
    smt_solves : int;  (** {!Fastsc_smt.Smt.find_max_delta} calls made. *)
    solver_hits : int;  (** {!Freq_alloc} solver-cache hits during the pass. *)
    solver_misses : int;
    warm_hits : int;  (** Warm-started solves whose seed was usable. *)
    warm_misses : int;  (** Warm-started solves that fell back cold. *)
    pair_hits : int;  (** {!Fastsc_noise.Crosstalk} pair-cache hits. *)
    pair_misses : int;
  }

  type t = {
    device : Device.t;
    options : options;
    circuit : Circuit.t;  (** The logical input circuit. *)
    deadline : Fastsc_util.Deadline.t option;
        (** The request budget this compilation runs under, when any.
            {!execute} installs it as the ambient deadline for the pipeline;
            it is recorded here so schedulers can read how much budget
            remains. *)
    placement : int array option;  (** Chosen initial mapping (after place). *)
    prerouted : Mapping.result option;
        (** [`Auto] placement decides by trial-routing both candidates; the
            winning routing is kept here so the route pass can adopt it
            instead of repeating the work.  Internal hand-off, consumed by
            route. *)
    routed : Mapping.result option;  (** After route. *)
    native : Circuit.t option;  (** After decompose (and optimize). *)
    schedule : Schedule.t option;  (** After schedule. *)
    metrics : Schedule.metrics option;  (** After evaluate. *)
    algorithm : string option;  (** Canonical scheduler name, set by schedule. *)
    stats : stat list;  (** The scheduler's per-compilation statistics. *)
    trail : pass_report list;  (** Executed passes, most recent first. *)
  }

  val create : ?options:options -> ?deadline:Fastsc_util.Deadline.t -> Device.t -> Circuit.t -> t
  (** A fresh context with no artifacts and an empty trail. *)

  val routed_exn : t -> Mapping.result
  val native_exn : t -> Circuit.t
  val schedule_exn : t -> Schedule.t
  val metrics_exn : t -> Schedule.metrics
  (** Artifact accessors.
      @raise Invalid_argument naming the missing stage when it has not run. *)

  val stat_int : t -> string -> int
  val stat_float : t -> string -> float
  (** Look up one scheduler statistic by label ({!stat_float} also accepts an
      [Int] stat, widening it).
      @raise Invalid_argument if the label is absent or of the wrong kind,
      listing the labels the scheduler did report. *)

  val trail : t -> pass_report list
  (** The executed passes in pipeline order (oldest first). *)

  val report : t -> Json.t
  (** The [--trace] document: algorithm, per-pass timings and cache/solver
      deltas, scheduler stats, current process-wide cache counters
      ({!Freq_alloc.solver_cache_stats}, [Crosstalk.pair_cache_stats]) and the
      evaluation metrics when present.  Valid JSON via {!Fastsc_util.Json}. *)
end

type pass = {
  pass_name : string;
  apply : Context.t -> Context.t;
}

val make_pass : string -> (Context.t -> Context.t) -> pass
(** Wrap a stage function with instrumentation: wall clock (monotonic —
    {!Fastsc_util.Deadline.now_s}), SMT solve count and cache hit/miss
    deltas are measured around the call and appended to the context's
    trail.  (Counters are process-wide, so concurrent compilations on pool
    domains see each other's deltas; per-pass numbers are exact when one
    compilation runs at a time, e.g. under [--trace].)  Every wrapped pass
    also polls the ambient deadline before starting and raises
    [Deadline.Expired] when the budget is already gone. *)

val place : pass
(** Resolve the placement option to a concrete initial mapping.  [`Auto]
    trial-routes the identity and degree placements and keeps the one with
    fewer SWAPs (the trial cost is attributed to this pass; the winning
    routing is handed to route). *)

val route : pass
(** SWAP-route the logical circuit onto the device with the chosen placement
    (adopting place's trial routing when available). *)

val decompose : pass
(** Decompose the routed circuit into native gates per
    [options.decomposition]. *)

val optimize : pass
(** Peephole-optimize the native circuit when [options.optimize] (recorded in
    the trail either way, as a no-op when disabled). *)

val schedule : string -> pass
(** Run the named registered scheduler on the native circuit; records the
    schedule, the canonical algorithm name and the scheduler's stats.
    @raise Invalid_argument (at application time) for an unknown name. *)

val route_schedule : string -> pass
(** The combined stage for [`Logical] consumers: apply the chosen placement
    (widening the program to the device's qubit count) and hand the unrouted
    circuit to the named scheduler, which owns SWAP insertion, decomposition
    and scheduling; records the schedule, algorithm name and stats.
    @raise Invalid_argument (at application time) for an unknown name. *)

val evaluate : pass
(** Evaluate the schedule ({!Schedule.evaluate} at
    [options.crosstalk_distance]) into {!Context.t.metrics}. *)

val prepare_passes : pass list
(** [place; route; decompose; optimize] — the shared front end every
    [`Native] scheduler consumes ({!Compile.prepare}). *)

val pipeline : ?through:[ `Schedule | `Evaluate ] -> algorithm:string -> unit -> pass list
(** The stage list for one algorithm, assembled from the scheduler's declared
    requirements ({!SCHEDULER.consumes}): [`Native] consumers get
    [prepare_passes @ [schedule]], [`Logical] ones get
    [[place; route_schedule]].  [through] (default [`Evaluate]) stops after
    scheduling when metrics are not needed.
    @raise Invalid_argument for an unknown algorithm name. *)

val run_pipeline : pass list -> Context.t -> Context.t

val execute :
  ?options:options ->
  ?deadline:Fastsc_util.Deadline.t ->
  ?through:[ `Schedule | `Evaluate ] ->
  algorithm:string ->
  Device.t -> Circuit.t -> Context.t
(** Build a fresh context and run the standard pipeline:
    [run_pipeline (pipeline ?through ~algorithm ()) (Context.create ...)].
    When [deadline] is given it is installed as the ambient
    {!Fastsc_util.Deadline} for the whole pipeline: passes poll it between
    stages and the SMT solver loops poll it at chunk boundaries, so the call
    raises [Deadline.Expired] (it never hangs past the budget by more than
    one chunk) — the serve layer's degradation ladder catches that and falls
    back to a cheaper tier.
    @raise Invalid_argument for an unknown algorithm name. *)
