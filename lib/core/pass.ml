type options = {
  decomposition : Decompose.strategy;
  crosstalk_distance : int;
  max_colors : int option;
  conflict_threshold : int;
  residual_coupling : float;
  placement : [ `Identity | `Degree | `Coherence | `Auto ];
  optimize : bool;
  router : string;
  delay_threshold : float;
  warm_start : bool;
  decompose_components : bool;
}

let default_options =
  {
    decomposition = Decompose.Hybrid;
    crosstalk_distance = 1;
    max_colors = None;
    conflict_threshold = 2;
    residual_coupling = 0.0;
    placement = `Auto;
    optimize = false;
    router = "lookahead";
    delay_threshold = 1e-4;
    warm_start = false;
    decompose_components = false;
  }

type stat_value =
  | Int of int
  | Float of float
  | Text of string

type stat = string * stat_value

module type SCHEDULER = sig
  val name : string

  val aliases : string list

  val table1 : bool

  val consumes : [ `Native | `Logical ]

  val schedule : options -> Device.t -> Circuit.t -> Schedule.t * stat list
end

type scheduler = (module SCHEDULER)

(* The registry.  Registration happens at module-initialization time (Compile
   registers the built-in zoo) and lookups happen from pool domains, so the
   list is guarded by a mutex like the memo caches. *)
let registry : scheduler list ref = ref []

let registry_mutex = Mutex.create ()

let name_of (module S : SCHEDULER) = S.name

let register (module S : SCHEDULER) =
  Mutex.lock registry_mutex;
  let replaced = ref false in
  let updated =
    List.map
      (fun entry ->
        if name_of entry = S.name then begin
          replaced := true;
          (module S : SCHEDULER)
        end
        else entry)
      !registry
  in
  registry := (if !replaced then updated else updated @ [ (module S) ]);
  Mutex.unlock registry_mutex

let schedulers () =
  Mutex.lock registry_mutex;
  let all = !registry in
  Mutex.unlock registry_mutex;
  all

let scheduler_names () = List.map name_of (schedulers ())

let find_scheduler name =
  List.find_opt
    (fun (module S : SCHEDULER) -> S.name = name || List.mem name S.aliases)
    (schedulers ())

let scheduler_exn name =
  match find_scheduler name with
  | Some s -> s
  | None ->
    invalid_arg
      (Printf.sprintf "Pass: unknown scheduler %S (registered: %s)" name
         (String.concat ", " (scheduler_names ())))

(* Routing is a registered pass of its own, mirroring the scheduler registry:
   [options.router] names the registered router the route stage dispatches
   to, and schedulers that own their routing ([consumes = `Logical]) simply
   never consult it. *)
module type ROUTER = sig
  val name : string

  val aliases : string list

  val route : Graph.t -> placement:int array -> Circuit.t -> Mapping.result
end

type router = (module ROUTER)

let router_registry : router list ref = ref []

let router_mutex = Mutex.create ()

let router_name_of (module R : ROUTER) = R.name

let register_router (module R : ROUTER) =
  Mutex.lock router_mutex;
  let replaced = ref false in
  let updated =
    List.map
      (fun entry ->
        if router_name_of entry = R.name then begin
          replaced := true;
          (module R : ROUTER)
        end
        else entry)
      !router_registry
  in
  router_registry := (if !replaced then updated else updated @ [ (module R) ]);
  Mutex.unlock router_mutex

let routers () =
  Mutex.lock router_mutex;
  let all = !router_registry in
  Mutex.unlock router_mutex;
  all

let router_names () = List.map router_name_of (routers ())

let find_router name =
  List.find_opt
    (fun (module R : ROUTER) -> R.name = name || List.mem name R.aliases)
    (routers ())

let router_exn name =
  match find_router name with
  | Some r -> r
  | None ->
    invalid_arg
      (Printf.sprintf "Pass: unknown router %S (registered: %s)" name
         (String.concat ", " (router_names ())))

(* The two built-in SWAP-insertion strategies, registered here so the route
   pass works before Compile's scheduler registrations have run. *)
let () =
  register_router
    (module struct
      let name = "lookahead"

      let aliases = [ "sabre"; "l" ]

      let route graph ~placement circuit = Mapping.route_lookahead ~placement graph circuit
    end);
  register_router
    (module struct
      let name = "greedy"

      let aliases = [ "shortest-path"; "g" ]

      let route graph ~placement circuit = Mapping.route ~placement graph circuit
    end)

module Context = struct
  type pass_report = {
    pass : string;
    wall_ns : float;
    smt_solves : int;
    solver_hits : int;
    solver_misses : int;
    warm_hits : int;
    warm_misses : int;
    pair_hits : int;
    pair_misses : int;
  }

  type t = {
    device : Device.t;
    options : options;
    circuit : Circuit.t;
    deadline : Deadline.t option;
    placement : int array option;
    prerouted : Mapping.result option;
    routed : Mapping.result option;
    native : Circuit.t option;
    schedule : Schedule.t option;
    metrics : Schedule.metrics option;
    algorithm : string option;
    stats : stat list;
    trail : pass_report list;
  }

  let create ?(options = default_options) ?deadline device circuit =
    {
      device;
      options;
      circuit;
      deadline;
      placement = None;
      prerouted = None;
      routed = None;
      native = None;
      schedule = None;
      metrics = None;
      algorithm = None;
      stats = [];
      trail = [];
    }

  let missing what stage =
    invalid_arg
      (Printf.sprintf "Pass.Context: no %s in the context (has the %s pass run?)" what stage)

  let routed_exn ctx =
    match ctx.routed with Some r -> r | None -> missing "routed circuit" "route"

  let native_exn ctx =
    match ctx.native with Some c -> c | None -> missing "native circuit" "decompose"

  let schedule_exn ctx =
    match ctx.schedule with Some s -> s | None -> missing "schedule" "schedule"

  let metrics_exn ctx =
    match ctx.metrics with Some m -> m | None -> missing "metrics" "evaluate"

  let stat_miss ctx label kind =
    invalid_arg
      (Printf.sprintf "Pass.Context: no %s stat %S (scheduler reported: %s)" kind label
         (match ctx.stats with
         | [] -> "none"
         | stats -> String.concat ", " (List.map fst stats)))

  let stat_int ctx label =
    match List.assoc_opt label ctx.stats with
    | Some (Int v) -> v
    | Some (Float _ | Text _) | None -> stat_miss ctx label "integer"

  let stat_float ctx label =
    match List.assoc_opt label ctx.stats with
    | Some (Float v) -> v
    | Some (Int v) -> float_of_int v
    | Some (Text _) | None -> stat_miss ctx label "float"

  let trail ctx = List.rev ctx.trail

  let json_of_stat = function
    | Int v -> Json.Int v
    | Float v -> Json.Float v
    | Text v -> Json.String v

  let json_of_cache (stats : Freq_alloc.cache_stats) =
    Json.Obj
      [
        ("hits", Json.Int stats.Freq_alloc.hits);
        ("misses", Json.Int stats.Freq_alloc.misses);
        ("entries", Json.Int stats.Freq_alloc.entries);
        ("warm_hits", Json.Int stats.Freq_alloc.warm_hits);
        ("warm_misses", Json.Int stats.Freq_alloc.warm_misses);
      ]

  let json_of_pair_cache (stats : Crosstalk.cache_stats) =
    Json.Obj
      [
        ("hits", Json.Int stats.Crosstalk.hits);
        ("misses", Json.Int stats.Crosstalk.misses);
        ("entries", Json.Int stats.Crosstalk.entries);
      ]

  let json_of_pass r =
    Json.Obj
      [
        ("pass", Json.String r.pass);
        ("wall_ms", Json.Float (r.wall_ns /. 1e6));
        ("smt_solves", Json.Int r.smt_solves);
        ( "solver_cache",
          Json.Obj
            [
              ("hits", Json.Int r.solver_hits);
              ("misses", Json.Int r.solver_misses);
              ("warm_hits", Json.Int r.warm_hits);
              ("warm_misses", Json.Int r.warm_misses);
            ] );
        ( "pair_cache",
          Json.Obj [ ("hits", Json.Int r.pair_hits); ("misses", Json.Int r.pair_misses) ] );
      ]

  let json_of_metrics (m : Schedule.metrics) =
    Json.Obj
      [
        ("success", Json.Float m.Schedule.success);
        ("log10_success", Json.Float m.Schedule.log10_success);
        ("gate_error", Json.Float m.Schedule.gate_error);
        ("crosstalk_error", Json.Float m.Schedule.crosstalk_error);
        ("decoherence_error", Json.Float m.Schedule.decoherence_error);
        ("depth", Json.Int m.Schedule.depth);
        ("total_time_ns", Json.Float m.Schedule.total_time);
        ("n_gates", Json.Int m.Schedule.n_gates);
        ("n_two_qubit", Json.Int m.Schedule.n_two_qubit);
      ]

  let report ctx =
    Json.Obj
      [
        ( "algorithm",
          match ctx.algorithm with Some a -> Json.String a | None -> Json.Null );
        ("passes", Json.List (List.map json_of_pass (trail ctx)));
        ("stats", Json.Obj (List.map (fun (k, v) -> (k, json_of_stat v)) ctx.stats));
        ( "caches",
          Json.Obj
            [
              ("solver", json_of_cache (Freq_alloc.solver_cache_stats ()));
              ("pair", json_of_pair_cache (Crosstalk.pair_cache_stats ()));
              ("smt_solves_total", Json.Int (Fastsc_smt.Smt.find_max_delta_count ()));
            ] );
        ("metrics", (match ctx.metrics with Some m -> json_of_metrics m | None -> Json.Null));
      ]
end

type pass = {
  pass_name : string;
  apply : Context.t -> Context.t;
}

let make_pass pass_name f =
  let apply ctx =
    (* Budget boundary: a request already past its deadline does not start
       another stage — this is where an expired budget surfaces between
       passes (the SMT loops poll the same ambient deadline within one). *)
    Deadline.check ~site:("pass:" ^ pass_name) ();
    (* monotonic, not gettimeofday: per-pass wall-clock must survive NTP
       steps, and it shares a timeline with the deadline math *)
    let t0 = Deadline.now_s () in
    let smt0 = Fastsc_smt.Smt.find_max_delta_count () in
    let solver0 = Freq_alloc.solver_cache_stats () in
    let pair0 = Crosstalk.pair_cache_stats () in
    let ctx = f ctx in
    let solver1 = Freq_alloc.solver_cache_stats () in
    let pair1 = Crosstalk.pair_cache_stats () in
    let report =
      {
        Context.pass = pass_name;
        wall_ns = (Deadline.now_s () -. t0) *. 1e9;
        smt_solves = Fastsc_smt.Smt.find_max_delta_count () - smt0;
        solver_hits = solver1.Freq_alloc.hits - solver0.Freq_alloc.hits;
        solver_misses = solver1.Freq_alloc.misses - solver0.Freq_alloc.misses;
        warm_hits = solver1.Freq_alloc.warm_hits - solver0.Freq_alloc.warm_hits;
        warm_misses = solver1.Freq_alloc.warm_misses - solver0.Freq_alloc.warm_misses;
        pair_hits = pair1.Crosstalk.hits - pair0.Crosstalk.hits;
        pair_misses = pair1.Crosstalk.misses - pair0.Crosstalk.misses;
      }
    in
    { ctx with Context.trail = report :: ctx.Context.trail }
  in
  { pass_name; apply }

let route_with ctx placement =
  let graph = Device.graph ctx.Context.device in
  let (module R : ROUTER) = router_exn ctx.Context.options.router in
  R.route graph ~placement ctx.Context.circuit

let place =
  make_pass "place" (fun ctx ->
      let graph = Device.graph ctx.Context.device in
      let circuit = ctx.Context.circuit in
      match ctx.Context.options.placement with
      | `Identity ->
        { ctx with Context.placement = Some (Mapping.identity_placement graph circuit) }
      | `Degree ->
        { ctx with Context.placement = Some (Mapping.degree_placement graph circuit) }
      | `Coherence ->
        let device = ctx.Context.device in
        let quality q =
          1.0 /. ((1.0 /. Device.t1 device q) +. (1.0 /. Device.t2 device q))
        in
        { ctx with Context.placement = Some (Mapping.quality_placement ~quality graph circuit) }
      | `Auto ->
        (* Decide by trial-routing both candidates (fewer SWAPs wins,
           identity on ties); hand the winning routing to the route pass so
           the work is not repeated. *)
        let identity = Mapping.identity_placement graph circuit in
        let degree = Mapping.degree_placement graph circuit in
        let by_identity = route_with ctx identity in
        let by_degree = route_with ctx degree in
        let placement, routed =
          if by_degree.Mapping.n_swaps < by_identity.Mapping.n_swaps then (degree, by_degree)
          else (identity, by_identity)
        in
        { ctx with Context.placement = Some placement; prerouted = Some routed })

let route =
  make_pass "route" (fun ctx ->
      match ctx.Context.prerouted with
      | Some routed -> { ctx with Context.routed = Some routed; prerouted = None }
      | None ->
        let placement =
          match ctx.Context.placement with
          | Some p -> p
          | None ->
            Mapping.identity_placement (Device.graph ctx.Context.device) ctx.Context.circuit
        in
        { ctx with Context.routed = Some (route_with ctx placement) })

let decompose =
  make_pass "decompose" (fun ctx ->
      let routed = Context.routed_exn ctx in
      {
        ctx with
        Context.native =
          Some (Decompose.run ctx.Context.options.decomposition routed.Mapping.circuit);
      })

let optimize =
  make_pass "optimize" (fun ctx ->
      if not ctx.Context.options.optimize then ctx
      else { ctx with Context.native = Some (Optimize.run (Context.native_exn ctx)) })

let schedule algorithm =
  make_pass "schedule" (fun ctx ->
      let (module S : SCHEDULER) = scheduler_exn algorithm in
      let sched, stats =
        S.schedule ctx.Context.options ctx.Context.device (Context.native_exn ctx)
      in
      { ctx with Context.schedule = Some sched; algorithm = Some S.name; stats })

(* The combined stage for [consumes = `Logical] schedulers: apply the chosen
   placement by widening the logical circuit to the device's qubit count and
   hand the scheduler the still-unrouted program — SWAP insertion, native
   decomposition and scheduling are then its responsibility (CQC-style
   synergistic compilation interleaves them by design). *)
let route_schedule algorithm =
  make_pass "route-schedule" (fun ctx ->
      let (module S : SCHEDULER) = scheduler_exn algorithm in
      let device = ctx.Context.device in
      let circuit = ctx.Context.circuit in
      let placement =
        match ctx.Context.placement with
        | Some p -> p
        | None -> Mapping.identity_placement (Device.graph device) circuit
      in
      let n_phys = Graph.n_vertices (Device.graph device) in
      let b = Circuit.builder n_phys in
      Array.iter
        (fun app ->
          Circuit.add b app.Gate.gate
            (List.map (fun q -> placement.(q)) (Array.to_list app.Gate.qubits)))
        (Circuit.instructions circuit);
      let placed = Circuit.finish b in
      let sched, stats = S.schedule ctx.Context.options device placed in
      {
        ctx with
        Context.prerouted = None;
        schedule = Some sched;
        algorithm = Some S.name;
        stats;
      })

let evaluate =
  make_pass "evaluate" (fun ctx ->
      let metrics =
        Schedule.evaluate ~crosstalk_distance:ctx.Context.options.crosstalk_distance
          (Context.schedule_exn ctx)
      in
      { ctx with Context.metrics = Some metrics })

let prepare_passes = [ place; route; decompose; optimize ]

let pipeline ?(through = `Evaluate) ~algorithm () =
  (* Assemble the stage list from the scheduler's declared requirements: a
     [`Native] consumer gets the classic routed/decomposed front end; a
     [`Logical] consumer gets placement only and owns everything after. *)
  let (module S : SCHEDULER) = scheduler_exn algorithm in
  let stages =
    match S.consumes with
    | `Native -> prepare_passes @ [ schedule S.name ]
    | `Logical -> [ place; route_schedule S.name ]
  in
  match through with `Schedule -> stages | `Evaluate -> stages @ [ evaluate ]

let run_pipeline passes ctx = List.fold_left (fun ctx p -> p.apply ctx) ctx passes

let execute ?options ?deadline ?through ~algorithm device circuit =
  (* Fail on an unknown algorithm before doing any routing work. *)
  let (module S : SCHEDULER) = scheduler_exn algorithm in
  let run () =
    run_pipeline
      (pipeline ?through ~algorithm:S.name ())
      (Context.create ?options ?deadline device circuit)
  in
  match deadline with
  | None -> run ()
  | Some d -> Deadline.with_deadline d run
