(* Per-step cost: the evaluator's own step error, so the annealer optimizes
   exactly the objective it is judged on. *)
let step_cost schedule_skeleton device ~idle_freqs ~freq_of gates =
  let step = Step_builder.make device ~idle_freqs ~freq_of_gate:freq_of gates in
  let gate_error, crosstalk_error = Schedule.step_errors schedule_skeleton step in
  gate_error +. crosstalk_error

let run ?(iterations = 400) ?(seed = 0) device circuit =
  let rng = Rng.create seed in
  let idle_freqs = Freq_alloc.idle_per_qubit device in
  let partition = Device.partition device in
  let band_lo =
    Float.min
      (partition.Partition.interaction_lo +. (Device.params device).Device.anharmonicity)
      partition.Partition.interaction_hi
  in
  let band_hi = partition.Partition.interaction_hi in
  let skeleton =
    {
      Schedule.device;
      algorithm = "anneal-dynamic";
      steps = [];
      idle_freqs;
      coupler = Schedule.Fixed_coupler;
    }
  in
  let pending = Pending.create circuit in
  let steps = ref [] in
  while not (Pending.is_empty pending) do
    (* maximum qubit-disjoint parallelism: the purely spectral strategy *)
    let used = Array.make (Device.n_qubits device) false in
    let chosen = ref [] in
    List.iter
      (fun app ->
        if Array.for_all (fun q -> not used.(q)) app.Gate.qubits then begin
          Array.iter (fun q -> used.(q) <- true) app.Gate.qubits;
          chosen := app :: !chosen
        end)
      (Pending.ready pending);
    let gates = List.rev !chosen in
    assert (gates <> []);
    let two_qubit = List.filter (fun g -> Gate.is_two_qubit g.Gate.gate) gates in
    let freq_table = Hashtbl.create 8 in
    let freq_of app =
      match Hashtbl.find_opt freq_table app.Gate.id with
      | Some f -> f
      | None -> (band_lo +. band_hi) /. 2.0
    in
    if two_qubit <> [] then begin
      (* init: spread across the band in gate order *)
      List.iteri
        (fun i app ->
          let k = List.length two_qubit in
          let f =
            if k = 1 then band_hi
            else band_lo +. ((band_hi -. band_lo) *. float_of_int i /. float_of_int (k - 1))
          in
          Hashtbl.replace freq_table app.Gate.id f)
        two_qubit;
      let cost () = step_cost skeleton device ~idle_freqs ~freq_of gates in
      let current = ref (cost ()) in
      let temperature = ref (0.1 *. Float.max !current 1e-6) in
      for _ = 1 to iterations do
        let victim = List.nth two_qubit (Rng.int rng (List.length two_qubit)) in
        let old_freq = freq_of victim in
        let proposal =
          Float.max band_lo
            (Float.min band_hi (old_freq +. Rng.gaussian ~std:0.08 rng))
        in
        Hashtbl.replace freq_table victim.Gate.id proposal;
        let next = cost () in
        let accept =
          next <= !current
          || Rng.float rng < exp (-.(next -. !current) /. Float.max !temperature 1e-12)
        in
        if accept then current := next
        else Hashtbl.replace freq_table victim.Gate.id old_freq;
        temperature := !temperature *. 0.985
      done
    end;
    List.iter (Pending.schedule pending) gates;
    steps := Step_builder.make device ~idle_freqs ~freq_of_gate:freq_of gates :: !steps
  done;
  { skeleton with Schedule.steps = List.rev !steps }

let scheduler : Pass.scheduler =
  (module struct
    let name = "anneal-dynamic"

    let aliases = [ "annealdynamic"; "ad" ]

    let table1 = false

    let consumes = `Native

    let schedule (_ : Pass.options) device native = (run device native, [])
  end)
