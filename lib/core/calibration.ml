open Fastsc_physics

type qubit_cal = {
  qubit : int;
  idle_freq : float;
  idle_flux : float;
  idle_sensitivity : float;
  t1 : float;
  t2 : float;
}

type pair_cal = {
  pair : int * int;
  color : int;
  iswap_freq : float;
  iswap_fluxes : float * float;
  iswap_time : float;
  sqrt_iswap_time : float;
  cz_freqs : float * float;
  cz_fluxes : float * float;
  cz_time : float;
}

type t = {
  device : Device.t;
  qubits : qubit_cal array;
  pairs : pair_cal list;
  n_colors : int;
}

let flux_of device q freq =
  let tr = Device.transmon device q in
  let clamped = Float.max tr.Transmon.omega_min (Float.min tr.Transmon.omega_max freq) in
  Transmon.flux_for_freq tr clamped

let generate ?(crosstalk_distance = 1) device =
  let idle_freqs = Freq_alloc.idle_per_qubit device in
  let qubits =
    Array.init (Device.n_qubits device) (fun q ->
        let idle_flux = flux_of device q idle_freqs.(q) in
        {
          qubit = q;
          idle_freq = idle_freqs.(q);
          idle_flux;
          idle_sensitivity =
            Transmon.flux_sensitivity (Device.transmon device q) ~flux:idle_flux;
          t1 = Device.t1 device q;
          t2 = Device.t2 device q;
        })
  in
  let xg = Crosstalk_graph.build ~distance:crosstalk_distance (Device.graph device) in
  let coloring = Coloring.welsh_powell xg.Crosstalk_graph.graph in
  let n_colors = Coloring.n_colors coloring in
  let multiplicity = Array.make n_colors 0 in
  Array.iter (fun c -> multiplicity.(c) <- multiplicity.(c) + 1) coloring;
  let assignment = Freq_alloc.interaction device ~n_colors ~multiplicity in
  let pairs =
    Array.to_list xg.Crosstalk_graph.edge_of_vertex
    |> List.mapi (fun v (a, b) ->
           let color = coloring.(v) in
           let freq = assignment.Freq_alloc.freqs.(color) in
           let alpha_b = Transmon.anharmonicity (Device.transmon device b) in
           let cz_first = freq +. alpha_b and cz_second = freq in
           {
             pair = (a, b);
             color;
             iswap_freq = freq;
             iswap_fluxes = (flux_of device a freq, flux_of device b freq);
             iswap_time = Device.gate_time device Gate.Iswap;
             sqrt_iswap_time = Device.gate_time device Gate.Sqrt_iswap;
             cz_freqs = (cz_first, cz_second);
             cz_fluxes = (flux_of device a cz_first, flux_of device b cz_second);
             cz_time = Device.gate_time device Gate.Cz;
           })
  in
  { device; qubits; pairs; n_colors }

(* 1/f flux-noise amplitude in flux quanta — the standard few-uPhi0 figure
   for planar transmons.  Together with the parking-point sensitivity it
   converts the idle plan into a dephasing penalty: a qubit parked on a
   steep part of its tuning curve pays for it in T2. *)
let flux_noise_amplitude = 1e-5

let coherence t q =
  if q < 0 || q >= Array.length t.qubits then
    invalid_arg (Printf.sprintf "Calibration.coherence: qubit %d out of range" q);
  let qc = t.qubits.(q) in
  let gamma_phi = 2.0 *. Float.pi *. flux_noise_amplitude *. qc.idle_sensitivity in
  (qc.t1, 1.0 /. ((1.0 /. qc.t2) +. gamma_phi))

let check t =
  let exception Bad of string in
  try
    let within q freq =
      let lo, hi = Device.tunable_range t.device q in
      if freq < lo -. 1e-9 || freq > hi +. 1e-9 then
        raise (Bad (Printf.sprintf "qubit %d: %.4f outside tunable range" q freq))
    in
    let flux_consistent q freq flux =
      let reproduced = Transmon.freq_01 (Device.transmon t.device q) ~flux in
      if Float.abs (reproduced -. freq) > 1e-6 then
        raise
          (Bad
             (Printf.sprintf "qubit %d: flux %.4f gives %.6f, expected %.6f" q flux reproduced
                freq))
    in
    Array.iter
      (fun qc ->
        within qc.qubit qc.idle_freq;
        flux_consistent qc.qubit qc.idle_freq qc.idle_flux)
      t.qubits;
    List.iter
      (fun pc ->
        let a, b = pc.pair in
        within a pc.iswap_freq;
        within b pc.iswap_freq;
        let fa, fb = pc.iswap_fluxes in
        flux_consistent a pc.iswap_freq fa;
        flux_consistent b pc.iswap_freq fb;
        let ca, cb = pc.cz_freqs in
        within a ca;
        within b cb;
        let cfa, cfb = pc.cz_fluxes in
        flux_consistent a ca cfa;
        flux_consistent b cb cfb)
      t.pairs;
    (* same color <-> same iSWAP frequency; crosstalk-adjacent couplings
       never share one *)
    let xg = Crosstalk_graph.build (Device.graph t.device) in
    let by_vertex = Array.of_list t.pairs in
    Array.iteri
      (fun v pc ->
        List.iter
          (fun u ->
            if u > v then begin
              let other = by_vertex.(u) in
              if Float.abs (pc.iswap_freq -. other.iswap_freq) < 1e-9 then
                raise
                  (Bad
                     (Printf.sprintf "crosstalk-adjacent couplings share frequency %.4f"
                        pc.iswap_freq))
            end)
          (Graph.neighbors xg.Crosstalk_graph.graph v))
      by_vertex;
    List.iter
      (fun pc ->
        List.iter
          (fun other ->
            if other.color = pc.color && Float.abs (other.iswap_freq -. pc.iswap_freq) > 1e-9
            then raise (Bad "same color, different frequency"))
          t.pairs)
      t.pairs;
    Ok ()
  with Bad msg -> Error msg

let to_json t =
  Json.Obj
    [
      ("topology", Json.String (Device.topology t.device).Topology.name);
      ("n_colors", Json.Int t.n_colors);
      ( "qubits",
        Json.List
          (Array.to_list
             (Array.map
                (fun qc ->
                  Json.Obj
                    [
                      ("qubit", Json.Int qc.qubit);
                      ("idle_freq_ghz", Json.Float qc.idle_freq);
                      ("idle_flux", Json.Float qc.idle_flux);
                      ("idle_sensitivity", Json.Float qc.idle_sensitivity);
                      ("t1_ns", Json.Float qc.t1);
                      ("t2_ns", Json.Float qc.t2);
                    ])
                t.qubits)) );
      ( "pairs",
        Json.List
          (List.map
             (fun pc ->
               let a, b = pc.pair in
               let fa, fb = pc.iswap_fluxes in
               let ca, cb = pc.cz_freqs in
               Json.Obj
                 [
                   ("pair", Json.List [ Json.Int a; Json.Int b ]);
                   ("color", Json.Int pc.color);
                   ("iswap_freq_ghz", Json.Float pc.iswap_freq);
                   ("iswap_fluxes", Json.List [ Json.Float fa; Json.Float fb ]);
                   ("iswap_time_ns", Json.Float pc.iswap_time);
                   ("sqrt_iswap_time_ns", Json.Float pc.sqrt_iswap_time);
                   ("cz_freqs_ghz", Json.List [ Json.Float ca; Json.Float cb ]);
                   ("cz_time_ns", Json.Float pc.cz_time);
                 ])
             t.pairs) );
    ]

let pp fmt t =
  Format.fprintf fmt "@[<v>calibration for %s (%d colors)@,"
    (Device.topology t.device).Topology.name t.n_colors;
  Array.iter
    (fun qc ->
      Format.fprintf fmt "q%-2d idle %.4f GHz @@ flux %.4f (T1 %.1f us, T2 %.1f us)@,"
        qc.qubit qc.idle_freq qc.idle_flux (qc.t1 /. 1000.0) (qc.t2 /. 1000.0))
    t.qubits;
  List.iter
    (fun pc ->
      let a, b = pc.pair in
      Format.fprintf fmt "(%d,%d) color %d: iswap %.4f GHz / %.1f ns, cz %.1f ns@," a b
        pc.color pc.iswap_freq pc.iswap_time pc.cz_time)
    t.pairs;
  Format.fprintf fmt "@]"
